// Benchmarks regenerating each table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index). Every BenchmarkFigN/BenchmarkTableN
// measures the workload behind the corresponding exhibit at bench scale;
// `go run ./cmd/benchrunner all` prints the full rows/series.
package recstep

import (
	"fmt"
	"testing"

	"recstep/internal/baselines/bigdatalog"
	"recstep/internal/baselines/native"
	"recstep/internal/bitmatrix"
	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/optimizer"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
)

var benchCfg = experiments.Config{Quick: true, Workers: 0}

func benchRun(b *testing.B, engine experiments.Engine, w experiments.Workload) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Run(engine, w, benchCfg)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(float64(r.Tuples), "tuples")
	}
}

// BenchmarkTable4CPUEfficiency measures the workloads behind the CPU
// efficiency table (ce = 1/(t·n)) for the RecStep engine.
func BenchmarkTable4CPUEfficiency(b *testing.B) {
	for _, w := range []experiments.Workload{
		experiments.TCWorkload(experiments.GnpSpec{Label: "G200", N: 200, P: 0.05}),
		experiments.RMATWorkload("cc", 1<<11),
		experiments.CSPAWorkload("httpd", benchCfg),
	} {
		b.Run(w.Name, func(b *testing.B) { benchRun(b, experiments.RecStep, w) })
	}
}

// BenchmarkFig2Ablation measures CSPA under every optimization-ablation
// configuration of Figure 2.
func BenchmarkFig2Ablation(b *testing.B) {
	w := experiments.CSPAWorkload("httpd", benchCfg)
	prog := programs.MustParse(programs.CSPA)
	for _, cfgc := range experiments.AblationConfigs(0) {
		opts := cfgc.Opts
		opts.DisableIO = true // pure-compute comparison in benches
		b.Run(cfgc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).Run(prog, w.EDBs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3MemoryAblation reports the peak heap of the two extreme
// Figure 3 configurations.
func BenchmarkFig3MemoryAblation(b *testing.B) {
	w := experiments.CSPAWorkload("httpd", benchCfg)
	for _, e := range []experiments.Engine{experiments.RecStep, experiments.Naive} {
		b.Run(string(e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSampled(e, w, benchCfg)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				b.ReportMetric(float64(r.PeakHeap)/(1<<20), "peakMiB")
			}
		})
	}
}

// BenchmarkFig4UIE compares unified vs individual IDB evaluation (the
// execution behaviour behind Figure 4's two SQL forms).
func BenchmarkFig4UIE(b *testing.B) {
	edbs := pa.AndersenSized(300, 3)
	prog := programs.MustParse(programs.Andersen)
	for _, uie := range []bool{true, false} {
		name := "unified"
		if !uie {
			name = "individual"
		}
		opts := core.DefaultOptions()
		opts.UIE = uie
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).Run(prog, edbs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Dedup compares the CCK-GSCHT fast dedup against the locked
// map and sort baselines (the data structure of Figure 5).
func BenchmarkFig5Dedup(b *testing.B) {
	in := storage.NewRelation("t", storage.NumberedColumns(2))
	rows := make([]int32, 0, 2<<17)
	for i := 0; i < 1<<17; i++ {
		rows = append(rows, int32(i%9973), int32(i%4211))
	}
	in.AppendRows(rows)
	pool := exec.NewPool(0)
	for _, s := range []exec.DedupStrategy{exec.DedupGSCHT, exec.DedupLockMap, exec.DedupSort} {
		b.Run(s.String(), func(b *testing.B) {
			b.SetBytes(int64(in.NumTuples() * 8))
			for i := 0; i < b.N; i++ {
				out := exec.Dedup(pool, in, s, in.NumTuples(), "d")
				_ = out
			}
		})
	}
}

// BenchmarkFig6PBME compares bit-matrix against hash-based TC evaluation
// (runtime dimension of Figure 6; the memory dimension is in benchrunner).
func BenchmarkFig6PBME(b *testing.B) {
	arc := graphs.GnP(400, 0.02, 1)
	m, err := bitmatrix.FromEdges(arc, 400)
	if err != nil {
		b.Fatal(err)
	}
	prog := programs.MustParse(programs.TC)
	b.Run("pbme", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tc := bitmatrix.TransitiveClosure(m, 0)
			b.ReportMetric(float64(tc.MemoryBytes())/(1<<20), "matrixMiB")
		}
	})
	b.Run("non-pbme", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.New(core.DefaultOptions()).Run(prog, map[string]*storage.Relation{"arc": arc}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7Coordination compares SG-PBME with and without work-order
// re-balancing on a skewed graph.
func BenchmarkFig7Coordination(b *testing.B) {
	arc := graphs.GnP(300, 0.03, 2)
	m, err := bitmatrix.FromEdges(arc, 300)
	if err != nil {
		b.Fatal(err)
	}
	for _, coord := range []bool{false, true} {
		name := "no-coord"
		if coord {
			name = "coord"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bitmatrix.SameGeneration(m, bitmatrix.SGOptions{Coordinate: coord, Threshold: 2048})
			}
		})
	}
}

// BenchmarkFig8Threads measures CSPA at increasing worker counts (the
// speedup curve of Figure 8).
func BenchmarkFig8Threads(b *testing.B) {
	w := experiments.CSPAWorkload("httpd", benchCfg)
	prog := programs.MustParse(programs.CSPA)
	for _, th := range []int{1, 2, 4} {
		opts := core.DefaultOptions()
		opts.Workers = th
		b.Run(fmt.Sprintf("threads-%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).Run(prog, w.EDBs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9DataScaling measures CC over growing RMAT graphs and AA over
// growing variable universes (Figure 9's two panels).
func BenchmarkFig9DataScaling(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 11, 1 << 12} {
		w := experiments.RMATWorkload("cc", n)
		b.Run(w.Name, func(b *testing.B) { benchRun(b, experiments.RecStep, w) })
	}
	for _, d := range []int{1, 2, 3} {
		w := experiments.AndersenWorkload(d, benchCfg)
		b.Run(w.Name, func(b *testing.B) { benchRun(b, experiments.RecStep, w) })
	}
}

// BenchmarkFig10TCSG compares the engines on TC and SG over a Gn-p graph.
func BenchmarkFig10TCSG(b *testing.B) {
	spec := experiments.GnpSpec{Label: "G200", N: 200, P: 0.05}
	for _, w := range []experiments.Workload{experiments.TCWorkload(spec), experiments.SGWorkload(spec)} {
		for _, e := range []experiments.Engine{experiments.RecStep, experiments.Native, experiments.Naive} {
			b.Run(w.Name+"/"+string(e), func(b *testing.B) { benchRun(b, e, w) })
		}
	}
}

// BenchmarkFig11Memory reports peak heap for TC across engines (Figure 11).
func BenchmarkFig11Memory(b *testing.B) {
	w := experiments.TCWorkload(experiments.GnpSpec{Label: "G200", N: 200, P: 0.05})
	for _, e := range []experiments.Engine{experiments.RecStep, experiments.RecStepNoPBME, experiments.Native} {
		b.Run(string(e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSampled(e, w, benchCfg)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				b.ReportMetric(float64(r.PeakHeap)/(1<<20), "peakMiB")
			}
		})
	}
}

// BenchmarkFig12RMAT compares the engines on REACH/CC/SSSP over one RMAT
// graph (the per-point work of Figure 12).
func BenchmarkFig12RMAT(b *testing.B) {
	for _, program := range []string{"reach", "cc", "sssp"} {
		w := experiments.RMATWorkload(program, 1<<11)
		for _, e := range experiments.AllEngines() {
			r := experiments.Run(e, w, benchCfg)
			if r.Err != nil {
				continue // n/a combinations are skipped, as in the figure
			}
			b.Run(w.Name+"/"+string(e), func(b *testing.B) { benchRun(b, e, w) })
		}
	}
}

// BenchmarkFig13RealWorld compares the engines on the livejournal-like
// graph (the per-bar work of Figure 13).
func BenchmarkFig13RealWorld(b *testing.B) {
	for _, program := range []string{"reach", "cc"} {
		w := experiments.RealWorldWorkload(program, "livejournal", benchCfg)
		for _, e := range []experiments.Engine{experiments.RecStep, experiments.Native} {
			r := experiments.Run(e, w, benchCfg)
			if r.Err != nil {
				continue
			}
			b.Run(w.Name+"/"+string(e), func(b *testing.B) { benchRun(b, e, w) })
		}
	}
}

// BenchmarkFig14Memory reports peak heap on the livejournal-like graph.
func BenchmarkFig14Memory(b *testing.B) {
	w := experiments.RealWorldWorkload("reach", "livejournal", benchCfg)
	for _, e := range []experiments.Engine{experiments.RecStep, experiments.Naive} {
		b.Run(string(e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSampled(e, w, benchCfg)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				b.ReportMetric(float64(r.PeakHeap)/(1<<20), "peakMiB")
			}
		})
	}
}

// BenchmarkFig15ProgramAnalyses compares the engines on AA, CSDA and CSPA.
func BenchmarkFig15ProgramAnalyses(b *testing.B) {
	ws := []experiments.Workload{
		experiments.AndersenWorkload(2, benchCfg),
		experiments.CSDAWorkload("httpd", benchCfg),
		experiments.CSPAWorkload("httpd", benchCfg),
	}
	for _, w := range ws {
		for _, e := range experiments.AllEngines() {
			r := experiments.Run(e, w, benchCfg)
			if r.Err != nil {
				continue
			}
			b.Run(w.Name+"/"+string(e), func(b *testing.B) { benchRun(b, e, w) })
		}
	}
}

// BenchmarkFig16CPUUtil reports average worker utilization on Andersen's
// analysis (Figure 16's series, collapsed to its mean).
func BenchmarkFig16CPUUtil(b *testing.B) {
	w := experiments.AndersenWorkload(3, benchCfg)
	for _, e := range []experiments.Engine{experiments.RecStep, experiments.Naive} {
		b.Run(string(e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSampled(e, w, benchCfg)
				if r.Err != nil {
					b.Fatal(r.Err)
				}
				b.ReportMetric(100*r.AvgCPU, "cpu%")
			}
		})
	}
}

// BenchmarkDSDCalibration measures the Appendix A offline α training run.
func BenchmarkDSDCalibration(b *testing.B) {
	pool := exec.NewPool(0)
	for i := 0; i < b.N; i++ {
		_ = benchCalibrate(pool)
	}
}

func benchCalibrate(pool *exec.Pool) float64 {
	// Small pair sizes keep the bench snappy while exercising eq. (7).
	return optimizer.CalibrateAlpha(pool, [][2]int{{1 << 10, 1 << 12}}, 1)
}

// BenchmarkEngineTC is the headline end-to-end number: full RecStep TC on a
// mid-density graph through the SQL pipeline.
func BenchmarkEngineTC(b *testing.B) {
	arc := graphs.GnP(300, 0.02, 5)
	prog := programs.MustParse(programs.TC)
	opts := core.DefaultOptions()
	b.SetBytes(int64(arc.NumTuples() * 8))
	for i := 0; i < b.N; i++ {
		res, err := core.New(opts).Run(prog, map[string]*storage.Relation{"arc": arc})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Relations["tc"].NumTuples()), "tuples")
	}
}

// BenchmarkJoinBuildScaling isolates the join build phase on a TC workload:
// the build side is the transitive closure of a mid-density graph, indexed
// on both columns (the shape of the engine's delta-cancellation joins, where
// every probe matches at most one build row, so hash construction dominates
// the measurement). The serial arm reproduces the shared-hash-table limiter
// the paper identifies; the partitioned arm is the radix-partitioned
// contention-free build; the carried arm hands the build a relation already
// carrying the join-key partitioning — the state ∆R is in when it exits the
// fused delta step — so the per-partition tables index the carried blocks
// in place with zero scatter (compare against partitioned, which is the
// -carry-join-parts=false regime). Each iteration re-wraps the build side
// in a fresh relation (block-sharing, no copy) so no cached view persists
// across iterations; the carried arm rebuilds its carried state per
// iteration outside the timer.
func BenchmarkJoinBuildScaling(b *testing.B) {
	arc := graphs.GnP(900, 0.02, 5)
	tc := native.TC(arc, 0)
	keys := []int{0, 1}
	spec := exec.JoinSpec{
		LeftKeys:  keys,
		RightKeys: keys,
		BuildLeft: false,
		Projs:     []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName:   "hit",
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pool := exec.NewPool(workers)
		for _, mode := range []string{"serial", "partitioned", "carried"} {
			s := spec
			switch mode {
			case "serial":
				s.BuildSerial = true
			default:
				s.Partitions = optimizer.ChoosePartitions(tc.NumTuples(), workers)
			}
			if mode == "carried" && s.Partitions <= 1 {
				continue // single worker never partitions; nothing to carry
			}
			b.Run(fmt.Sprintf("%s/workers-%d", mode, workers), func(b *testing.B) {
				b.SetBytes(int64(tc.NumTuples() * 8))
				for i := 0; i < b.N; i++ {
					build := storage.NewRelation("tc", tc.ColNames())
					build.AppendRelation(tc)
					if mode == "carried" {
						b.StopTimer()
						exec.PartitionRelationCarried(pool, build, keys, s.Partitions)
						b.StartTimer()
					}
					out := exec.HashJoin(pool, tc, build, s)
					b.ReportMetric(float64(out.NumTuples()), "tuples")
				}
			})
		}
	}
}

// BenchmarkDeltaStep isolates the tail of one fixpoint iteration — dedup of
// the join output plus set difference against the full relation plus delta
// materialization — comparing the fused partition-native DeltaStep against
// the staged Dedup + SetDifference pipeline it replaces, across worker
// counts and radix fan-outs, plus a fused-carried arm where both inputs
// arrive already scattered on a join-key partitioning (the fused-scatter
// steady state with -carry-join-parts): the pass consumes the carried
// partitions in place. A fused-row arm runs the same fused pass with batch
// kernels off (-columnar=false) — the row-layout tuple-at-a-time ablation
// the batched columnar inner loops are measured against. The join output is
// a duplicate-heavy TC-shaped
// relation; R overlaps about half of it (the mid-fixpoint regime where the
// delta pipeline dominates iteration cost). Inputs are re-wrapped in fresh
// relations every iteration so no carried or cached partitioning persists
// across iterations; the carried arm rebuilds its carried state per
// iteration outside the timer.
func BenchmarkDeltaStep(b *testing.B) {
	arc := graphs.GnP(900, 0.02, 5)
	tc := native.TC(arc, 0)
	tmpBase := storage.NewRelation("tmp", storage.NumberedColumns(2))
	tmpBase.AppendRelation(tc)
	tmpBase.AppendRelation(tc) // every tuple duplicated: dedup has real work
	fullBase := storage.NewRelation("r", storage.NumberedColumns(2))
	half := make([]int32, 0, tc.NumTuples())
	i := 0
	tc.ForEach(func(t []int32) {
		if i%2 == 0 {
			half = append(half, t...)
		}
		i++
	})
	fullBase.AppendRows(half)

	for _, workers := range []int{1, 4, 8} {
		pool := exec.NewPool(workers)
		// Operator output blocks allocate through the memory manager, and
		// each iteration releases its dead relations — the engine's epoch
		// reclamation — so with -benchmem the allocations/op show the block
		// recycling win (steady-state iterations run almost entirely on
		// pooled arrays).
		mem := memory.NewManager(memory.Config{})
		pool.SetAlloc(mem)
		for _, parts := range []int{1, 16, 64} {
			for _, mode := range []string{"fused", "fused-carried", "fused-row", "staged"} {
				if mode == "fused-carried" && parts <= 1 {
					continue // nothing to carry without a fan-out
				}
				name := fmt.Sprintf("%s/workers-%d/parts-%d", mode, workers, parts)
				deltaKeys := []int{1}
				b.Run(name, func(b *testing.B) {
					b.SetBytes(int64(tmpBase.NumTuples() * 8))
					for n := 0; n < b.N; n++ {
						tmp := storage.NewRelation("tmp", storage.NumberedColumns(2))
						tmp.AppendRelation(tmpBase)
						full := storage.NewRelation("r", storage.NumberedColumns(2))
						full.AppendRelation(fullBase)
						var delta *storage.Relation
						switch mode {
						case "fused":
							delta = exec.DeltaStep(pool, tmp, full, exec.OPSD, storage.Partitioning{Parts: parts}, tc.NumTuples(), "delta")
						case "fused-row":
							// The -columnar=false ablation: same fused pass,
							// row-layout tuple-at-a-time inner loops instead
							// of batch kernels over columnar slabs.
							pool.SetBatch(false)
							delta = exec.DeltaStep(pool, tmp, full, exec.OPSD, storage.Partitioning{Parts: parts}, tc.NumTuples(), "delta")
							pool.SetBatch(true)
						case "fused-carried":
							b.StopTimer()
							tmp.SetLifecycle(mem, storage.CatIntermediate)
							full.SetLifecycle(mem, storage.CatIDB)
							exec.PartitionRelationCarried(pool, tmp, deltaKeys, parts)
							exec.PartitionRelationCarried(pool, full, deltaKeys, parts)
							b.StartTimer()
							delta = exec.DeltaStep(pool, tmp, full, exec.OPSD, storage.Partitioning{KeyCols: deltaKeys, Parts: parts}, tc.NumTuples(), "delta")
						default:
							rdelta := exec.Dedup(pool, tmp, exec.DedupGSCHT, tc.NumTuples(), "rdelta")
							delta = exec.SetDifferencePartitioned(pool, rdelta, full, exec.OPSD, parts, "delta")
							rdelta.Release()
						}
						b.ReportMetric(float64(delta.NumTuples()), "tuples")
						// Epoch reclamation: this iteration's relations are
						// dead; their exclusive blocks (scatter views, ∆R)
						// return to the pool, the shared base blocks survive.
						delta.Release()
						tmp.Release()
						full.Release()
					}
				})
			}
		}
	}
}

// BenchmarkNativeTC is the same workload on the Soufflé-like comparator.
func BenchmarkNativeTC(b *testing.B) {
	arc := graphs.GnP(300, 0.02, 5)
	for i := 0; i < b.N; i++ {
		_ = native.TC(arc, 0)
	}
}

// BenchmarkAggregateMerge measures recursive-aggregate evaluation (CC).
func BenchmarkAggregateMerge(b *testing.B) {
	arc := graphs.Undirected(graphs.RMAT(1<<11, 1<<14, 9))
	prog := programs.MustParse(programs.CC)
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.DefaultOptions()).Run(prog, map[string]*storage.Relation{"arc": arc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStratifiedNegation measures NTC (negation) end to end.
func BenchmarkStratifiedNegation(b *testing.B) {
	arc := graphs.GnP(150, 0.03, 4)
	prog := programs.MustParse(programs.NTC)
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.DefaultOptions()).Run(prog, map[string]*storage.Relation{"arc": arc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOOFModes isolates the statistics-collection cost (Figure 2's
// OOF-FA vs selective vs none, on a statistics-sensitive workload).
func BenchmarkOOFModes(b *testing.B) {
	edbs := pa.CSDASized(4, 120, 4, 3)
	prog := programs.MustParse(programs.CSDA)
	for _, mode := range []stats.Mode{stats.ModeSelective, stats.ModeNone, stats.ModeFull} {
		opts := core.DefaultOptions()
		opts.OOF = mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.New(opts).Run(prog, edbs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedTC measures the BigDatalog-like partitioned engine,
// reporting shuffle volume alongside runtime (the distributed baseline of
// Figures 10-13, simulated in-process).
func BenchmarkDistributedTC(b *testing.B) {
	arc := graphs.GnP(300, 0.02, 5)
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("partitions-%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := bigdatalog.NewCluster(p)
				tc := c.TC(arc)
				b.ReportMetric(float64(c.ShuffleBytes())/(1<<20), "shuffleMiB")
				b.ReportMetric(float64(tc.NumTuples()), "tuples")
			}
		})
	}
}
