package recstep

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// Join-key-carried partitionings are a physical rewrite only: for every
// benchmark program, every relation it derives must be identical with
// carrying on and off, at every radix fan-out. The staged serial run is the
// reference, exactly as in the fused-vs-staged equivalence suite.
func TestCarriedMatchesRescatterAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := fuseTestEDBs(name)

			run := func(carry bool, parts int) map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.CarryJoinParts = carry
				opts.Partitions = parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			staged := func() map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.FuseDelta = false
				opts.CarryJoinParts = false
				opts.Partitions = 1
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			want := staged()
			for _, carry := range []bool{true, false} {
				for _, parts := range []int{1, 16, 64} {
					got := run(carry, parts)
					for rel, rows := range want {
						if !reflect.DeepEqual(got[rel], rows) {
							t.Fatalf("carry=%v parts=%d: %s (%d rows) diverges from staged serial (%d rows)",
								carry, parts, rel, len(got[rel]), len(rows))
						}
					}
				}
			}
		})
	}
}

// With carrying on, a TC fixpoint must never re-scatter the delta for a
// join build: ∆R exits the delta step carrying the join-key partitioning
// the next build wants, so across the whole run the only permissible build
// scatter is the EDB's one-time view-cache fill (it happens the first
// iteration the optimizer picks arc as the build side). The ablation must
// keep paying per-iteration delta re-scatters — otherwise the counters
// measure nothing.
func TestCarriedZeroDeltaBuildScatters(t *testing.T) {
	arc := graphs.GnP(150, 0.05, 23)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	run := func(carry bool) core.Stats {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.Partitions = 16
		opts.CarryJoinParts = carry
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	stats := run(true)
	// One EDB (arc) ⇒ at most one build scatter the whole run; every delta
	// build must be served in place.
	if stats.JoinBuildScatters > 1 {
		t.Fatalf("carried run paid %d join-build scatters, want ≤ 1 (the EDB cache fill)", stats.JoinBuildScatters)
	}
	if stats.JoinBuildScattersAvoided == 0 {
		t.Fatal("carried run reports no builds served from carried partitions; the counter is not measuring")
	}

	abl := run(false)
	if abl.JoinBuildScatters <= stats.JoinBuildScatters {
		t.Fatalf("ablation build scatters %d not above carried run's %d",
			abl.JoinBuildScatters, stats.JoinBuildScatters)
	}
}

// The carried keyset must be chosen per stratum and reported consistently:
// ∆R and R of a linear-TC predicate end the run carrying a partitioning
// keyed on the join column, not the whole tuple.
func TestCarriedKeysetIsJoinKeyed(t *testing.T) {
	arc := graphs.GnP(120, 0.05, 29)
	prog := programs.MustParse(programs.TC)
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.Partitions = 16
	res, err := core.New(opts).Run(prog, map[string]*storage.Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	tc := res.Relations["tc"]
	p, ok := tc.Partitioning()
	if !ok {
		t.Fatal("tc does not carry a partitioning at fixpoint")
	}
	// tc(x,y) :- tc(x,z), arc(z,y): the delta enters its join keyed on
	// column 1, so that is what the carried partitioning must route on.
	if want := []int32{1}; len(p.KeyCols) != 1 || p.KeyCols[0] != 1 {
		t.Fatalf("tc carries keyset %v, want %v", p.KeyCols, want)
	}
	if p.Parts != 16 {
		t.Fatalf("tc carries %d partitions, want 16", p.Parts)
	}
}

// Recursive aggregates ride the same machinery: with the partition-parallel
// merge the CC state, ∆R and the materialized relation are bucketed on the
// group column, and the equivalence with the serial merge must be exact.
func TestAggMergePartitionedMatchesSerial(t *testing.T) {
	arc := graphs.Undirected(graphs.GnP(150, 0.04, 31))
	for _, name := range []string{"cc", "sssp"} {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := map[string]*storage.Relation{"arc": arc}
			if name == "sssp" {
				edbs = map[string]*storage.Relation{
					"arc": graphs.Weighted(graphs.GnP(150, 0.04, 31), 100, 7),
					"id":  graphs.SingleSource(0),
				}
			}
			var want map[string][]int32
			for _, cfg := range []struct {
				fuse  bool
				parts int
			}{{false, 1}, {true, 1}, {true, 16}, {true, 64}} {
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.FuseDelta = cfg.fuse
				opts.Partitions = cfg.parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				got := make(map[string][]int32)
				for rel, r := range res.Relations {
					got[rel] = r.SortedRows()
				}
				if want == nil {
					want = got
					continue
				}
				for rel, rows := range want {
					if !reflect.DeepEqual(got[rel], rows) {
						t.Fatalf("fuse=%v parts=%d: %s diverges from serial merge (%d vs %d rows)",
							cfg.fuse, cfg.parts, rel, len(got[rel])/2, len(rows)/2)
					}
				}
			}
		})
	}
}

// Spilling composes with join-key-carried partitionings: a budgeted TC run
// whose carried partitions are keyed on the join column must still spill,
// fault transparently, and converge to the unbudgeted result.
func TestCarriedKeyedPartitionsSpillRoundTrip(t *testing.T) {
	arc := graphs.GnP(200, 0.04, 37)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	free := core.DefaultOptions()
	free.Workers = 4
	free.Partitions = 16
	ref, err := core.New(free).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}

	tight := free
	tight.MemBudgetBytes = 1 << 20
	tight.SpillDir = t.TempDir()
	got, err := core.New(tight).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Mem.Spills == 0 {
		t.Skip("budget did not trigger spilling at this scale")
	}
	if !reflect.DeepEqual(got.Relations["tc"].SortedRows(), ref.Relations["tc"].SortedRows()) {
		t.Fatal("budgeted keyed-carried run diverges from unbudgeted result")
	}
	t.Logf("spills=%d faults=%d", got.Stats.Mem.Spills, got.Stats.Mem.Faults)
}
