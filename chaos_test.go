package recstep

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/faultinject"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// chaosOpts is the shared configuration of the chaos suite: a real worker
// pool, radix partitioning, and a budget tiny enough that every program
// generates spill and fault traffic for the injector to bite on.
func chaosOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.Partitions = 16
	opts.MemBudgetBytes = 1 << 14
	return opts
}

// chaosRun evaluates prog under opts and enforces the suite's global
// invariants: the process never crashes (a panic escaping RunContext fails
// the test), an aborted run still returns partial Stats, and teardown always
// ends with zero live pooled bytes — no leaked blocks under any fault.
func chaosRun(t *testing.T, opts core.Options, name string, edbs map[string]*storage.Relation) (*core.Result, error) {
	t.Helper()
	prog, err := programs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := core.New(opts).RunContext(context.Background(), prog, edbs)
	if rerr != nil {
		if res == nil {
			t.Fatalf("aborted run returned a nil Result alongside %v", rerr)
		}
		if res.Stats.Mem.LiveTotal != 0 {
			t.Fatalf("aborted run leaked %d live pooled bytes (err: %v)", res.Stats.Mem.LiveTotal, rerr)
		}
	}
	return res, rerr
}

// sortedOutputs flattens a result into comparable per-relation sorted rows.
func sortedOutputs(res *core.Result) map[string][]int32 {
	out := make(map[string][]int32, len(res.Relations))
	for rel, r := range res.Relations {
		out[rel] = r.SortedRows()
	}
	return out
}

// The chaos suite: every benchmark program is run under each fault scenario
// with a spill-forcing budget. A scenario either completes with exactly the
// clean run's tuples or returns an error — never a crash, never silent
// corruption, never a leaked block.
func TestChaosAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	type scenario struct {
		name string
		inj  func() *faultinject.Injector
		// mustFail marks scenarios whose fault, once fired, is fatal by
		// design; they may still complete cleanly when the trigger is
		// never reached (no spill traffic, short runs).
		fatalSite faultinject.Site
	}
	scenarios := []scenario{
		{
			// Two transient write failures: absorbed by the retry loop, so
			// the run MUST complete with correct results.
			name: "spill-write-transient",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.SpillWrite, 2).Limit(faultinject.SpillWrite, 2)
			},
		},
		{
			// Every spill write fails: spilling parks and the engine
			// degrades to in-memory operation — still correct results.
			name: "spill-write-persistent",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.SpillWrite, 1)
			},
		},
		{
			name: "fault-read",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.FaultRead, 1)
			},
			fatalSite: faultinject.FaultRead,
		},
		{
			name: "alloc",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailNth(faultinject.Alloc, 100)
			},
			fatalSite: faultinject.Alloc,
		},
		{
			name: "worker-panic",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailNth(faultinject.WorkerPanic, 20)
			},
			fatalSite: faultinject.WorkerPanic,
		},
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			edbs := experiments.PeakMemEDBs(name, 40)

			clean := chaosOpts()
			ref, err := chaosRun(t, clean, name, edbs)
			if err != nil {
				t.Fatalf("clean budgeted run failed: %v", err)
			}
			want := sortedOutputs(ref)

			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) {
					inj := sc.inj()
					opts := chaosOpts()
					opts.FaultInject = inj
					res, rerr := chaosRun(t, opts, name, edbs)
					if rerr == nil {
						// Completed: results must be exactly the clean run's.
						got := sortedOutputs(res)
						for rel, rows := range want {
							if !reflect.DeepEqual(got[rel], rows) {
								t.Fatalf("%s completed under faults with wrong tuples in %s (%d vs %d rows)",
									sc.name, rel, len(got[rel])/2, len(rows)/2)
							}
						}
						// A fatal-site scenario may only complete cleanly if
						// its trigger never fired.
						if sc.fatalSite != "" && inj.Fires(sc.fatalSite) > 0 {
							t.Fatalf("%s fired %d times yet the run reported success",
								sc.fatalSite, inj.Fires(sc.fatalSite))
						}
						return
					}
					// Aborted: the error must carry the injected cause.
					if sc.fatalSite == "" {
						t.Fatalf("recoverable scenario aborted the run: %v", rerr)
					}
					if !errors.Is(rerr, faultinject.ErrInjected) {
						t.Fatalf("abort error %v does not wrap the injected fault", rerr)
					}
					if sc.fatalSite == faultinject.WorkerPanic && !strings.Contains(rerr.Error(), "panic") {
						t.Fatalf("worker-panic abort error does not mention the panic: %v", rerr)
					}
				})
			}
		})
	}
}

// Cancelling a running TC fixpoint from an iteration hook must abort within
// one iteration boundary, return the context error plus partial Stats, and
// tear down to zero live pooled bytes.
func TestCancelMidFixpointReleasesEverything(t *testing.T) {
	arc := cycleGraph(300)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	const cancelAt = 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := chaosOpts()
	opts.IterHook = func(ii core.IterInfo) {
		if ii.Iteration == cancelAt {
			cancel()
		}
	}
	res, err := core.New(opts).RunContext(ctx, prog, edbs)
	if err == nil {
		t.Fatal("cancelled fixpoint completed without error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v is not context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial Result")
	}
	// A 300-node cycle needs ~300 TC iterations; cancellation at iteration
	// 5 must stop the fixpoint at the next iteration boundary.
	if res.Stats.Iterations < cancelAt || res.Stats.Iterations > cancelAt+1 {
		t.Fatalf("cancelled at iteration %d but run recorded %d iterations", cancelAt, res.Stats.Iterations)
	}
	if res.Stats.Mem.LiveTotal != 0 {
		t.Fatalf("cancelled run left %d live pooled bytes", res.Stats.Mem.LiveTotal)
	}
	if res.Stats.Queries == 0 {
		t.Fatal("partial Stats lost the pre-cancellation query count")
	}
}

// An already-expired deadline aborts before any iteration completes, with
// the same clean-teardown guarantees.
func TestDeadlineExceededAbortsRun(t *testing.T) {
	arc := cycleGraph(300)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	res, err := core.New(chaosOpts()).RunContext(ctx, prog, edbs)
	if err == nil {
		t.Fatal("run with an expired deadline completed without error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v is not context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("timed-out run returned no partial Result")
	}
	if res.Stats.Mem.LiveTotal != 0 {
		t.Fatalf("timed-out run left %d live pooled bytes", res.Stats.Mem.LiveTotal)
	}
}
