package recstep

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/faultinject"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// chaosOpts is the shared configuration of the chaos suite: a real worker
// pool, radix partitioning, and a budget tiny enough that every program
// generates spill and fault traffic for the injector to bite on.
func chaosOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.Partitions = 16
	opts.MemBudgetBytes = 1 << 14
	return opts
}

// chaosRun evaluates prog under opts and enforces the suite's global
// invariants: the process never crashes (a panic escaping RunContext fails
// the test), an aborted run still returns partial Stats, and teardown always
// ends with zero live pooled bytes — no leaked blocks under any fault.
func chaosRun(t *testing.T, opts core.Options, name string, edbs map[string]*storage.Relation) (*core.Result, error) {
	t.Helper()
	prog, err := programs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := core.New(opts).RunContext(context.Background(), prog, edbs)
	if rerr != nil {
		if res == nil {
			t.Fatalf("aborted run returned a nil Result alongside %v", rerr)
		}
		if res.Stats.Mem.LiveTotal != 0 {
			t.Fatalf("aborted run leaked %d live pooled bytes (err: %v)", res.Stats.Mem.LiveTotal, rerr)
		}
	}
	return res, rerr
}

// sortedOutputs flattens a result into comparable per-relation sorted rows.
func sortedOutputs(res *core.Result) map[string][]int32 {
	out := make(map[string][]int32, len(res.Relations))
	for rel, r := range res.Relations {
		out[rel] = r.SortedRows()
	}
	return out
}

// The chaos suite: every benchmark program is run under each fault scenario
// with a spill-forcing budget. A scenario either completes with exactly the
// clean run's tuples or returns an error — never a crash, never silent
// corruption, never a leaked block.
func TestChaosAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	type scenario struct {
		name string
		inj  func() *faultinject.Injector
		// mustFail marks scenarios whose fault, once fired, is fatal by
		// design; they may still complete cleanly when the trigger is
		// never reached (no spill traffic, short runs).
		fatalSite faultinject.Site
	}
	scenarios := []scenario{
		{
			// Two transient write failures: absorbed by the retry loop, so
			// the run MUST complete with correct results.
			name: "spill-write-transient",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.SpillWrite, 2).Limit(faultinject.SpillWrite, 2)
			},
		},
		{
			// Every spill write fails: spilling parks and the engine
			// degrades to in-memory operation — still correct results.
			name: "spill-write-persistent",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.SpillWrite, 1)
			},
		},
		{
			name: "fault-read",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailEvery(faultinject.FaultRead, 1)
			},
			fatalSite: faultinject.FaultRead,
		},
		{
			name: "alloc",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailNth(faultinject.Alloc, 100)
			},
			fatalSite: faultinject.Alloc,
		},
		{
			name: "worker-panic",
			inj: func() *faultinject.Injector {
				return faultinject.New(7).FailNth(faultinject.WorkerPanic, 20)
			},
			fatalSite: faultinject.WorkerPanic,
		},
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			edbs := experiments.PeakMemEDBs(name, 40)

			clean := chaosOpts()
			ref, err := chaosRun(t, clean, name, edbs)
			if err != nil {
				t.Fatalf("clean budgeted run failed: %v", err)
			}
			want := sortedOutputs(ref)

			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) {
					inj := sc.inj()
					opts := chaosOpts()
					opts.FaultInject = inj
					res, rerr := chaosRun(t, opts, name, edbs)
					if rerr == nil {
						// Completed: results must be exactly the clean run's.
						got := sortedOutputs(res)
						for rel, rows := range want {
							if !reflect.DeepEqual(got[rel], rows) {
								t.Fatalf("%s completed under faults with wrong tuples in %s (%d vs %d rows)",
									sc.name, rel, len(got[rel])/2, len(rows)/2)
							}
						}
						// A fatal-site scenario may only complete cleanly if
						// its trigger never fired.
						if sc.fatalSite != "" && inj.Fires(sc.fatalSite) > 0 {
							t.Fatalf("%s fired %d times yet the run reported success",
								sc.fatalSite, inj.Fires(sc.fatalSite))
						}
						return
					}
					// Aborted: the error must carry the injected cause.
					if sc.fatalSite == "" {
						t.Fatalf("recoverable scenario aborted the run: %v", rerr)
					}
					if !errors.Is(rerr, faultinject.ErrInjected) {
						t.Fatalf("abort error %v does not wrap the injected fault", rerr)
					}
					if sc.fatalSite == faultinject.WorkerPanic && !strings.Contains(rerr.Error(), "panic") {
						t.Fatalf("worker-panic abort error does not mention the panic: %v", rerr)
					}
				})
			}
		})
	}
}

// Cancelling a running TC fixpoint from an iteration hook must abort within
// one iteration boundary, return the context error plus partial Stats, and
// tear down to zero live pooled bytes.
func TestCancelMidFixpointReleasesEverything(t *testing.T) {
	arc := cycleGraph(300)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	const cancelAt = 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := chaosOpts()
	opts.IterHook = func(ii core.IterInfo) {
		if ii.Iteration == cancelAt {
			cancel()
		}
	}
	res, err := core.New(opts).RunContext(ctx, prog, edbs)
	if err == nil {
		t.Fatal("cancelled fixpoint completed without error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v is not context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial Result")
	}
	// A 300-node cycle needs ~300 TC iterations; cancellation at iteration
	// 5 must stop the fixpoint at the next iteration boundary.
	if res.Stats.Iterations < cancelAt || res.Stats.Iterations > cancelAt+1 {
		t.Fatalf("cancelled at iteration %d but run recorded %d iterations", cancelAt, res.Stats.Iterations)
	}
	if res.Stats.Mem.LiveTotal != 0 {
		t.Fatalf("cancelled run left %d live pooled bytes", res.Stats.Mem.LiveTotal)
	}
	if res.Stats.Queries == 0 {
		t.Fatal("partial Stats lost the pre-cancellation query count")
	}
}

// disarmInjector neutralizes every armed site without removing the rules
// (removing them would reset call accounting): the trigger thresholds are
// pushed beyond any reachable call count.
func disarmInjector(in *faultinject.Injector, sites ...faultinject.Site) {
	for _, s := range sites {
		in.FailNth(s, 1<<40)
		in.FailEvery(s, 1<<40)
	}
}

// unpackRows splits a flat sorted-rows slice back into tuples.
func unpackRows(flat []int32, arity int) [][]int32 {
	rows := make([][]int32, 0, len(flat)/arity)
	for i := 0; i+arity <= len(flat); i += arity {
		rows = append(rows, flat[i:i+arity])
	}
	return rows
}

// Fault scenarios during incremental updates: a resident database is built
// cleanly, the injector is armed, and one mixed insert+delete ApplyDelta runs
// under the fault. The update either completes with exactly the from-scratch
// tuples or fails carrying the injected cause — and a failed update must
// leave the database dirty but readable, and fully recoverable via Rederive.
// Teardown always ends with zero live pooled bytes.
func TestChaosApplyDelta(t *testing.T) {
	prog := programs.MustParse(programs.TC)
	baseRel := experiments.PeakMemEDBs("tc", 40)["arc"]
	arity := map[string]int{"arc": 2}
	base := map[string][][]int32{}
	baseRel.ForEach(func(tuple []int32) {
		base["arc"] = append(base["arc"], append([]int32(nil), tuple...))
	})

	// One mixed update: drop three existing edges, add four new ones.
	step := deltaStep{
		rel: "arc",
		ins: [][]int32{{41, 0}, {17, 41}, {41, 41}, {3, 17}},
		del: [][]int32{base["arc"][0], base["arc"][3], base["arc"][7]},
	}

	type scenario struct {
		name      string
		arm       func(in *faultinject.Injector)
		sites     []faultinject.Site
		fatalSite faultinject.Site
	}
	scenarios := []scenario{
		{
			// Every spill write fails: spilling parks, the update degrades
			// to in-memory operation and MUST still complete correctly.
			name:  "spill-write-persistent",
			arm:   func(in *faultinject.Injector) { in.FailEvery(faultinject.SpillWrite, 1) },
			sites: []faultinject.Site{faultinject.SpillWrite},
		},
		{
			name:      "fault-read",
			arm:       func(in *faultinject.Injector) { in.FailEvery(faultinject.FaultRead, 1) },
			sites:     []faultinject.Site{faultinject.FaultRead},
			fatalSite: faultinject.FaultRead,
		},
		{
			name:      "alloc",
			arm:       func(in *faultinject.Injector) { in.FailNth(faultinject.Alloc, 10) },
			sites:     []faultinject.Site{faultinject.Alloc},
			fatalSite: faultinject.Alloc,
		},
		{
			name:      "worker-panic",
			arm:       func(in *faultinject.Injector) { in.FailNth(faultinject.WorkerPanic, 3) },
			sites:     []faultinject.Site{faultinject.WorkerPanic},
			fatalSite: faultinject.WorkerPanic,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			inj := faultinject.New(11)
			opts := chaosOpts()
			opts.FaultInject = inj
			d, err := core.New(opts).RunIncremental(context.Background(), prog, relsFrom(base, arity))
			if err != nil {
				t.Fatalf("clean resident build failed: %v", err)
			}
			sc.arm(inj)
			_, uerr := d.ApplyDelta(step.rel, step.ins, step.del)
			disarmInjector(inj, sc.sites...)

			if uerr != nil {
				if !errors.Is(uerr, faultinject.ErrInjected) {
					t.Fatalf("update error %v does not wrap the injected fault", uerr)
				}
				if sc.fatalSite == "" {
					t.Fatalf("recoverable scenario aborted the update: %v", uerr)
				}
				if !d.Dirty() {
					t.Fatal("failed update did not mark the database dirty")
				}
				// Still readable: every IDB must be reachable and scannable.
				for _, idb := range d.IDBNames() {
					rel, ok := d.Relation(idb)
					if !ok {
						t.Fatalf("relation %s unreachable after failed update", idb)
					}
					_ = rel.SortedRows()
				}
				if err := d.Rederive(); err != nil {
					t.Fatalf("rederive after failed update: %v", err)
				}
				if d.Dirty() {
					t.Fatal("database still dirty after successful rederive")
				}
			} else if sc.fatalSite != "" && inj.Fires(sc.fatalSite) > 0 {
				t.Fatalf("%s fired %d times yet the update reported success",
					sc.fatalSite, inj.Fires(sc.fatalSite))
			}

			// Whether the update completed or was re-derived after a partial
			// failure, every IDB must bit-match a from-scratch fixpoint over
			// the EDB state that actually survived.
			arc, ok := d.Relation("arc")
			if !ok {
				t.Fatal("arc unreachable")
			}
			survived := map[string][][]int32{"arc": unpackRows(arc.SortedRows(), 2)}
			ref, err := core.New(chaosOpts()).Run(prog, relsFrom(survived, arity))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			want := sortedOutputs(ref)
			for _, idb := range d.IDBNames() {
				rel, _ := d.Relation(idb)
				if got := rel.SortedRows(); !reflect.DeepEqual(got, want[idb]) {
					t.Fatalf("%s: %s diverged from scratch after recovery (%d vs %d values)",
						sc.name, idb, len(got), len(want[idb]))
				}
			}
			if uerr == nil {
				// A completed update must also reflect the full requested
				// delta, not some partially-applied EDB state.
				wantState := cloneRows(base)
				applyToMirror(wantState, step)
				wantArc := relsFrom(wantState, arity)["arc"].SortedRows()
				if !reflect.DeepEqual(arc.SortedRows(), wantArc) {
					t.Fatalf("%s: completed update left %d arc rows, want %d",
						sc.name, len(survived["arc"]), len(wantArc)/2)
				}
			}

			snap, err := d.Close()
			if err != nil {
				t.Fatalf("close: %v", err)
			}
			if snap.LiveTotal != 0 {
				t.Fatalf("%s leaked %d live pooled bytes at close", sc.name, snap.LiveTotal)
			}
		})
	}
}

// Cancelling mid-update: a resident TC database over a long path graph gets
// the cycle-closing edge inserted, and the update's propagation fixpoint is
// cancelled from the iteration hook. The update must fail with the context
// error, leave the database dirty but intact, and Rederive (which runs on the
// database's base context, not the cancelled one) must restore a consistent
// state.
func TestCancelMidApplyDelta(t *testing.T) {
	const n = 120
	arc := storage.NewRelation("arc", []string{"x", "y"})
	rows := make([][]int32, 0, n-1)
	for i := 0; i < n-1; i++ {
		arc.Append([]int32{int32(i), int32(i + 1)})
		rows = append(rows, []int32{int32(i), int32(i + 1)})
	}
	base := map[string][][]int32{"arc": rows}
	arity := map[string]int{"arc": 2}

	const cancelAt = 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	armed := false
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.IterHook = func(ii core.IterInfo) {
		if armed && ii.Iteration == cancelAt {
			cancel()
		}
	}
	prog := programs.MustParse(programs.TC)
	d, err := core.New(opts).RunIncremental(context.Background(), prog, map[string]*storage.Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}

	// Closing the cycle makes the seeded propagation run ~n iterations; the
	// hook cancels it at iteration 5.
	armed = true
	_, uerr := d.ApplyDeltaContext(ctx, "arc", [][]int32{{n - 1, 0}}, nil)
	armed = false
	if uerr == nil {
		t.Fatal("cancelled update completed without error")
	}
	if !errors.Is(uerr, context.Canceled) {
		t.Fatalf("update error %v is not context.Canceled", uerr)
	}
	if !d.Dirty() {
		t.Fatal("cancelled update did not mark the database dirty")
	}
	if err := d.Rederive(); err != nil {
		t.Fatalf("rederive after cancelled update: %v", err)
	}

	// The re-derived state must match a from-scratch run over the surviving
	// EDB rows (the new edge was already physically applied when the
	// propagation was cancelled, and rederivation keeps it).
	rel, ok := d.Relation("arc")
	if !ok {
		t.Fatal("arc unreachable after rederive")
	}
	survived := map[string][][]int32{"arc": unpackRows(rel.SortedRows(), 2)}
	ref, err := core.New(core.DefaultOptions()).Run(prog, relsFrom(survived, arity))
	if err != nil {
		t.Fatal(err)
	}
	want := sortedOutputs(ref)
	for _, idb := range d.IDBNames() {
		r, _ := d.Relation(idb)
		if got := r.SortedRows(); !reflect.DeepEqual(got, want[idb]) {
			t.Fatalf("%s diverged after cancel+rederive (%d vs %d values)", idb, len(got), len(want[idb]))
		}
	}
	_ = base

	snap, err := d.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if snap.LiveTotal != 0 {
		t.Fatalf("leaked %d live pooled bytes at close", snap.LiveTotal)
	}
}

// An already-expired deadline aborts before any iteration completes, with
// the same clean-teardown guarantees.
func TestDeadlineExceededAbortsRun(t *testing.T) {
	arc := cycleGraph(300)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	res, err := core.New(chaosOpts()).RunContext(ctx, prog, edbs)
	if err == nil {
		t.Fatal("run with an expired deadline completed without error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v is not context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("timed-out run returned no partial Result")
	}
	if res.Stats.Mem.LiveTotal != 0 {
		t.Fatalf("timed-out run left %d live pooled bytes", res.Stats.Mem.LiveTotal)
	}
}
