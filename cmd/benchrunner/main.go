// Command benchrunner regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md's per-experiment index). Each
// subcommand prints the corresponding rows/series; `all` runs everything.
//
// Usage:
//
//	benchrunner [-quick] [-workers N] [-budget BYTES] table1 fig2 fig10 …
//	benchrunner all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"recstep/internal/experiments"
	"recstep/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrunner: ")
	var (
		quick       = flag.Bool("quick", false, "shrink datasets for a fast pass")
		workers     = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		budget      = flag.Int64("budget", 0, "simulated memory budget in bytes (0 = 1 GiB)")
		partitions  = flag.Int("partitions", 0, "radix partition count for hash builds (0 = auto 1/16/64/256, 1 = off)")
		buildSerial = flag.Bool("build-serial", false, "force the serial shared-table join build (partitioning ablation)")
		fuseDelta   = flag.Bool("fuse-delta", true, "fused partition-native delta pipeline; false selects the staged dedup+diff ablation")
		carryJoin   = flag.Bool("carry-join-parts", true, "carry join-key partitionings across iterations so hash builds reuse ∆R/R partitions in place; false re-scatters every build (ablation)")
		secondary   = flag.Bool("secondary-carry", true, "carry a second partitioned view for predicates whose recursive joins use conflicting keysets; false falls back to whole-tuple partitioning (ablation)")
		memBudget   = flag.Int64("mem-budget", 0, "live block-pool byte budget; cold partitions of full relations spill under pressure (0 = unlimited)")
		columnar    = flag.Bool("columnar", true, "batch-at-a-time kernels over columnar block slabs; false selects the row-layout tuple-at-a-time ablation")
		joinOrder   = flag.Bool("join-order", true, "connectivity-driven greedy join ordering per rule arm, re-planned each iteration; false selects the textual FROM-order ablation")
		wcoj        = flag.Bool("wcoj", true, "leapfrog worst-case-optimal join for cyclic rule bodies of >=3 atoms; false routes them through the pairwise hash-join chain")
		benchOut    = flag.String("bench-out", "BENCH_PR5.json", "path the benchjson experiment writes its machine-readable report to")
		batchOut    = flag.String("batch-out", "BENCH_PR6.json", "path the benchbatch experiment writes its machine-readable report to")
		joinOut     = flag.String("joinorder-out", "BENCH_PR7.json", "path the benchjoinorder experiment writes its machine-readable report to")
		obsOut      = flag.String("obs-out", "BENCH_PR8.json", "path the benchobs experiment writes its machine-readable report to")
		obsLimit    = flag.Float64("obs-threshold", 2.0, "benchobs fails when metrics-on overhead exceeds this percentage (min-of-trials; <0 disables the assertion)")
		incrOut     = flag.String("incr-out", "BENCH_PR10.json", "path the benchincr experiment writes its machine-readable report to")
		incrLimit   = flag.Float64("incr-threshold", 10.0, "benchincr fails when any workload's ApplyDelta speedup over a from-scratch rerun falls below this factor (<0 disables the assertion)")
		enableObs   = flag.Bool("obs", true, "collect metrics and phase timers in engine runs; false is the zero-instrumentation ablation")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /statusz and /debug/pprof on this address while experiments run (e.g. :9090)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile covering the selected experiments to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof allocation profile after the selected experiments to this file")
	)
	flag.Parse()
	cfg := experiments.Config{
		Quick:              *quick,
		Workers:            *workers,
		MemBudgetBytes:     *budget,
		Partitions:         *partitions,
		BuildSerial:        *buildSerial,
		StagedDelta:        !*fuseDelta,
		NoCarryJoinParts:   !*carryJoin,
		NoSecondaryCarry:   !*secondary,
		NoColumnar:         !*columnar,
		NoJoinOrder:        !*joinOrder,
		NoWCOJ:             !*wcoj,
		ManagedBudgetBytes: *memBudget,
		NoObs:              !*enableObs,
		CPUProfile:         *cpuProfile,
		MemProfile:         *memProfile,
	}
	if *metricsAddr != "" {
		// One registry for the whole process; each engine run re-binds its
		// series, so the listener always shows the experiment in flight.
		ob := obs.New()
		cfg.Obs = ob
		addr, err := obs.Serve(*metricsAddr, ob.Reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving /metrics, /statusz and /debug/pprof on http://%s", addr)
	}
	stopProfiles, err := cfg.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
	}()

	// Graceful interrupt: flush any in-progress profiles before exiting, so
	// a ctrl-C mid-experiment still leaves a readable pprof file.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("received %v; flushing profiles and exiting", s)
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
		os.Exit(130)
	}()

	type runner func(experiments.Config) experiments.Table
	table := map[string]runner{
		"table1":  func(experiments.Config) experiments.Table { return experiments.Table1() },
		"table3":  func(experiments.Config) experiments.Table { return experiments.Table3() },
		"table4":  experiments.Table4,
		"fig2":    experiments.Fig2,
		"fig3":    experiments.Fig3,
		"fig6":    experiments.Fig6,
		"fig7":    experiments.Fig7,
		"fig8":    experiments.Fig8,
		"fig9":    experiments.Fig9,
		"fig10":   experiments.Fig10,
		"fig11":   experiments.Fig11,
		"fig12":   experiments.Fig12,
		"fig13":   experiments.Fig13,
		"fig14":   experiments.Fig14,
		"fig15":   experiments.Fig15,
		"fig16":   experiments.Fig16,
		"copies":  experiments.CopyAccounting,
		"peakmem": experiments.PeakMem,
	}
	order := []string{
		"table1", "table3", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table4",
		"copies", "peakmem", "benchjson", "benchbatch", "benchjoinorder", "benchobs",
		"benchincr",
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: benchrunner [flags] %v|all\n", order)
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		if name == "benchjson" {
			rep := experiments.BenchCarry(cfg)
			if err := experiments.WriteBenchReport(*benchOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.BenchCarryTable(rep))
			log.Printf("wrote %s", *benchOut)
			continue
		}
		if name == "benchbatch" {
			rep := experiments.BenchBatch(cfg)
			if err := experiments.WriteBenchBatchReport(*batchOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.BenchBatchTable(rep))
			log.Printf("wrote %s", *batchOut)
			continue
		}
		if name == "benchjoinorder" {
			rep := experiments.BenchJoinOrder(cfg)
			if err := experiments.WriteBenchJoinOrderReport(*joinOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.BenchJoinOrderTable(rep))
			log.Printf("wrote %s", *joinOut)
			continue
		}
		if name == "benchobs" {
			rep, err := experiments.BenchObs(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteBenchObsReport(*obsOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.BenchObsTable(rep))
			log.Printf("wrote %s", *obsOut)
			if *obsLimit >= 0 && rep.OverheadPct > *obsLimit {
				log.Fatalf("benchobs: metrics-on overhead %.2f%% exceeds %.2f%% threshold", rep.OverheadPct, *obsLimit)
			}
			continue
		}
		if name == "benchincr" {
			rep, err := experiments.BenchIncr(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteBenchIncrReport(*incrOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.BenchIncrTable(rep))
			log.Printf("wrote %s", *incrOut)
			if *incrLimit >= 0 && rep.MinSpeedup < *incrLimit {
				log.Fatalf("benchincr: minimum ApplyDelta speedup %.1f× is below the %.1f× threshold", rep.MinSpeedup, *incrLimit)
			}
			continue
		}
		if name == "fig4" {
			unified, individual, err := experiments.Fig4()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Figure 4 — UIE vs individual IDB evaluation (Andersen, recursive phase)")
			fmt.Println("\n-- Unified IDB Evaluation:")
			fmt.Println(unified)
			fmt.Println("\n-- Individual IDB Evaluation:")
			fmt.Println(individual)
			fmt.Println()
			continue
		}
		fn, ok := table[name]
		if !ok {
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Println(fn(cfg))
	}
}
