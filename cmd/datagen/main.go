// Command datagen generates the benchmark datasets of Table 3 as .tsv
// files: Gn-p graphs, RMAT graphs, power-law "real-world-like" graphs,
// chains, and the program-analysis fact bases (Andersen, CSPA, CSDA).
//
// Usage examples:
//
//	datagen -kind gnp -n 1000 -p 0.01 -o arc.tsv
//	datagen -kind rmat -n 16384 -m 163840 -o arc.tsv
//	datagen -kind realworld -name livejournal -o arc.tsv
//	datagen -kind weighted -n 1024 -m 10240 -o arc.tsv      (RMAT + weights)
//	datagen -kind andersen -dataset 4 -dir facts/
//	datagen -kind cspa -name httpd -dir facts/
//	datagen -kind csda -name linux -dir facts/
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"

	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/quickstep/storage"
	"recstep/internal/relio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		kind    = flag.String("kind", "", "gnp|rmat|powerlaw|chain|realworld|weighted|andersen|cspa|csda")
		n       = flag.Int("n", 1000, "vertex count")
		m       = flag.Int("m", 0, "edge count (rmat/weighted; 0 = 10n)")
		p       = flag.Float64("p", graphs.DefaultGnpP, "edge probability (gnp)")
		deg     = flag.Int("deg", 8, "out degree (powerlaw)")
		name    = flag.String("name", "livejournal", "dataset name (realworld/cspa/csda)")
		dataset = flag.Int("dataset", 1, "Andersen dataset index 1..7")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output .tsv (single-relation kinds)")
		dir     = flag.String("dir", "", "output directory (multi-relation kinds)")
	)
	flag.Parse()

	writeOne := func(rel *storage.Relation) {
		if *out == "" {
			log.Fatal("-o required for this kind")
		}
		if err := relio.WriteTSVFile(*out, rel); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s: %d tuples", *out, rel.NumTuples())
	}
	writeMany := func(edbs map[string]*storage.Relation) {
		if *dir == "" {
			log.Fatal("-dir required for this kind")
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for pred, rel := range edbs {
			path := filepath.Join(*dir, pred+".tsv")
			if err := relio.WriteTSVFile(path, rel); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s: %d tuples", path, rel.NumTuples())
		}
	}
	edges := *m
	if edges == 0 {
		edges = 10 * *n
	}

	switch *kind {
	case "gnp":
		writeOne(graphs.GnP(*n, *p, *seed))
	case "rmat":
		writeOne(graphs.RMAT(*n, edges, *seed))
	case "powerlaw":
		writeOne(graphs.PowerLaw(*n, *deg, *seed))
	case "chain":
		writeOne(graphs.Chain(*n))
	case "realworld":
		rel, err := graphs.RealWorld(*name, 1)
		if err != nil {
			log.Fatal(err)
		}
		writeOne(rel)
	case "weighted":
		writeOne(graphs.Weighted(graphs.RMAT(*n, edges, *seed), 100, *seed))
	case "andersen":
		edbs, err := pa.Andersen(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		writeMany(edbs)
	case "cspa":
		edbs, err := pa.CSPA(*name)
		if err != nil {
			log.Fatal(err)
		}
		writeMany(edbs)
	case "csda":
		edbs, err := pa.CSDA(*name)
		if err != nil {
			log.Fatal(err)
		}
		writeMany(edbs)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
