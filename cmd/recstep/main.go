// Command recstep evaluates a Datalog program from a .datalog file, with
// EDB facts supplied as whitespace-separated integer files, and writes every
// IDB relation as a .tsv file — the end-to-end flow of Figure 1.
//
// Usage:
//
//	recstep -program tc.datalog -facts arc=arc.tsv -out results/ \
//	        [-workers N] [-naive] [-no-uie] [-oof selective|none|full] \
//	        [-dsd dynamic|opsd|tpsd] [-dedup gscht|lockmap|sort] [-no-eost] \
//	        [-partitions N] [-build-serial] [-fuse-delta=false] \
//	        [-timeout 30s] [-metrics-addr :9090] [-trace out.json] [-obs=false]
//
// SIGINT/SIGTERM (and -timeout) cancel the run context: the fixpoint aborts
// at the next iteration boundary, partial stats are printed, the -trace file
// is flushed, and the process exits non-zero.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"recstep/internal/core"
	"recstep/internal/datalog/ast"
	"recstep/internal/datalog/parser"
	"recstep/internal/experiments"
	"recstep/internal/obs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
	"recstep/internal/relio"
)

type factFlags map[string]string

func (f factFlags) String() string { return fmt.Sprint(map[string]string(f)) }

func (f factFlags) Set(v string) error {
	pred, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want pred=path, got %q", v)
	}
	f[pred] = path
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("recstep: ")

	var (
		programPath = flag.String("program", "", "path to the .datalog program (required)")
		outDir      = flag.String("out", "", "directory for IDB .tsv output (omit to only print counts)")
		workers     = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		naive       = flag.Bool("naive", false, "disable semi-naive evaluation")
		noUIE       = flag.Bool("no-uie", false, "disable unified IDB evaluation")
		oofMode     = flag.String("oof", "selective", "statistics mode: selective|none|full")
		dsdMode     = flag.String("dsd", "dynamic", "set-difference policy: dynamic|opsd|tpsd")
		dedup       = flag.String("dedup", "gscht", "dedup strategy: gscht|lockmap|sort")
		noEOST      = flag.Bool("no-eost", false, "commit after every query (spills to a temp dir)")
		partitions  = flag.Int("partitions", 0, "radix partition count for hash builds (0 = auto 1/16/64/256, 1 = off)")
		buildSerial = flag.Bool("build-serial", false, "force the serial shared-table join build (partitioning ablation)")
		fuseDelta   = flag.Bool("fuse-delta", true, "fused partition-native delta pipeline; false selects the staged dedup+diff ablation")
		carryJoin   = flag.Bool("carry-join-parts", true, "carry join-key partitionings across iterations so hash builds reuse ∆R/R partitions in place; false re-scatters every build (ablation)")
		secondary   = flag.Bool("secondary-carry", true, "carry a second partitioned view for predicates whose recursive joins use conflicting keysets; false falls back to whole-tuple partitioning (ablation)")
		memBudget   = flag.Int64("mem-budget", 0, "live block-pool byte budget; cold partitions of full relations spill to temp files under pressure (0 = unlimited)")
		columnar    = flag.Bool("columnar", true, "batch-at-a-time kernels over columnar block slabs with per-worker pool magazines; false selects the row-layout tuple-at-a-time ablation")
		joinOrder   = flag.Bool("join-order", true, "connectivity-driven greedy join ordering per rule arm, re-planned each iteration from live ∆ cardinalities; false selects the textual FROM-order ablation")
		wcoj        = flag.Bool("wcoj", true, "leapfrog worst-case-optimal join for cyclic rule bodies of >=3 atoms; false routes them through the pairwise hash-join chain")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline); partial stats are still printed")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /statusz and /debug/pprof on this address for the life of the process (e.g. :9090)")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON of the fixpoint (per-phase spans; open in Perfetto) to this file")
		enableObs   = flag.Bool("obs", true, "collect metrics and phase timers; false is the zero-instrumentation ablation")
		incremental = flag.String("incremental", "", "update-script path ('-' for stdin): after the initial fixpoint the database stays resident and each staged batch of '+pred v1 v2…' inserts / '-pred v1 v2…' deletes (flushed by an 'apply' line or EOF) is maintained incrementally via ApplyDelta")
		verbose     = flag.Bool("v", false, "log per-iteration deltas")
	)
	facts := factFlags{}
	flag.Var(facts, "facts", "EDB input as pred=path (repeatable)")
	flag.Parse()

	if *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	edbs := make(map[string]*storage.Relation)
	for pred, path := range facts {
		rel, err := relio.ReadTSVFile(path, pred)
		if err != nil {
			log.Fatalf("loading %s: %v", pred, err)
		}
		edbs[pred] = rel
		log.Printf("loaded %s: %d tuples", pred, rel.NumTuples())
	}

	opts := core.DefaultOptions()
	opts.Workers = *workers
	opts.Naive = *naive
	opts.UIE = !*noUIE
	switch *oofMode {
	case "selective":
		opts.OOF = stats.ModeSelective
	case "none":
		opts.OOF = stats.ModeNone
	case "full":
		opts.OOF = stats.ModeFull
	default:
		log.Fatalf("unknown -oof mode %q", *oofMode)
	}
	switch *dsdMode {
	case "dynamic":
		opts.DSD = core.DSDDynamic
	case "opsd":
		opts.DSD = core.DSDAlwaysOPSD
	case "tpsd":
		opts.DSD = core.DSDAlwaysTPSD
	default:
		log.Fatalf("unknown -dsd mode %q", *dsdMode)
	}
	switch *dedup {
	case "gscht":
		opts.Dedup = exec.DedupGSCHT
	case "lockmap":
		opts.Dedup = exec.DedupLockMap
	case "sort":
		opts.Dedup = exec.DedupSort
	default:
		log.Fatalf("unknown -dedup strategy %q", *dedup)
	}
	if *noEOST {
		opts.EOST = false
		opts.DisableIO = false
	}
	opts.Partitions = *partitions
	opts.BuildSerial = *buildSerial
	opts.FuseDelta = *fuseDelta
	opts.CarryJoinParts = *carryJoin
	opts.SecondaryCarry = *secondary
	opts.Columnar = *columnar
	opts.JoinOrder = *joinOrder
	opts.WCOJ = *wcoj
	opts.MemBudgetBytes = *memBudget

	// One Observer outlives the Run so the HTTP listener keeps serving its
	// registry mid-fixpoint and after. -trace and -metrics-addr need the
	// collection machinery, so either overrides -obs=false.
	var ob *obs.Observer
	if *enableObs || *tracePath != "" || *metricsAddr != "" {
		ob = obs.New()
		if *tracePath != "" {
			ob.WithTracer(obs.DefaultMaxEvents)
		}
		opts.Obs = ob
	} else {
		opts.DisableObs = true
	}
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr, ob.Reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving /metrics, /statusz and /debug/pprof on http://%s", addr)
	}

	if *verbose {
		opts.IterHook = func(ii core.IterInfo) {
			log.Printf("stratum %d iter %d %s: tmp=%d delta=%d (%s) armsSkipped=%d scattered=%d (sec=%d) adopted=%d flat=%d buildsInPlace=%d buildScatters=%d phases=[%s]",
				ii.Stratum, ii.Iteration, ii.Pred, ii.TmpTuples, ii.Delta, ii.Algo, ii.ArmsSkipped,
				ii.Copy.Scattered, ii.Copy.SecondaryScattered, ii.Copy.Adopted, ii.Copy.FlatMats,
				ii.Copy.BuildScattersAvoided, ii.Copy.BuildScatters, phaseString(ii.Phase))
		}
	}

	stopProfiles, err := experiments.Config{CPUProfile: *cpuProfile, MemProfile: *memProfile}.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM cancel the run context; the fixpoint aborts at its next
	// iteration boundary and the partial-stats/trace path below still runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *incremental != "" {
		uerr := runIncremental(ctx, opts, prog, edbs, *incremental, *outDir)
		if perr := stopProfiles(); perr != nil {
			log.Fatal(perr)
		}
		writeTrace(ob, *tracePath)
		if uerr != nil {
			log.Fatal(uerr)
		}
		return
	}

	res, err := core.New(opts).RunContext(ctx, prog, edbs)
	if perr := stopProfiles(); perr != nil {
		log.Fatal(perr)
	}
	if err != nil {
		// An aborted run still reports what it did: partial stats (with the
		// post-teardown memory reading — zero live bytes) and the trace
		// collected so far.
		if res != nil {
			log.Printf("aborted after %v (%d iterations, %d SQL queries)",
				res.Stats.Duration.Round(1e6), res.Stats.Iterations, res.Stats.Queries)
			log.Printf("memory at teardown: %d live pooled bytes (peak %d), %d spills / %d faults",
				res.Stats.Mem.LiveTotal, res.Stats.Mem.PeakLive, res.Stats.Mem.Spills, res.Stats.Mem.Faults)
		}
		writeTrace(ob, *tracePath)
		log.Fatal(err)
	}
	log.Printf("fixpoint in %v (%d iterations, %d SQL queries)",
		res.Stats.Duration.Round(1e6), res.Stats.Iterations, res.Stats.Queries)
	log.Printf("copies: %d tuples scattered, %d adopted without copy, %d flat materializations",
		res.Stats.TuplesScattered, res.Stats.TuplesAdopted, res.Stats.FlatMaterializations)
	log.Printf("join builds: %d served from carried/cached partitions, %d paid a scatter",
		res.Stats.JoinBuildScattersAvoided, res.Stats.JoinBuildScatters)
	log.Printf("planner: %d empty-∆ arms skipped, peak join intermediate %d rows, wcoj rules %v",
		res.Stats.ArmsSkipped, res.Stats.PeakJoinIntermediate, res.Stats.WCOJRules)
	if *verbose {
		rules := make([]string, 0, len(res.Stats.JoinOrdersByRule))
		for name := range res.Stats.JoinOrdersByRule {
			rules = append(rules, name)
		}
		sort.Strings(rules)
		for _, name := range rules {
			pc := res.Stats.JoinOrdersByRule[name]
			log.Printf("plan %s: %s order %v over %v (%d iterations)",
				name, pc.Strategy, pc.Order, pc.Tables, pc.Count)
		}
	}
	log.Printf("memory: peak pool %d bytes, %d/%d block allocs recycled, %d spills / %d faults",
		res.Stats.Mem.PeakLive, res.Stats.Mem.PoolHits, res.Stats.Mem.PoolHits+res.Stats.Mem.PoolMisses,
		res.Stats.Mem.Spills, res.Stats.Mem.Faults)
	if *verbose {
		if len(res.Stats.PhaseDurations) > 0 {
			log.Printf("phases (worker-time, overlaps): [%s]", phaseMapString(res.Stats.PhaseDurations))
		}
		for i, d := range res.Stats.StratumDurations {
			log.Printf("stratum %d: %v", i, d.Round(1e5))
		}
	}
	writeTrace(ob, *tracePath)
	writeRelations(res, *outDir)
}

// writeTrace flushes the collected trace to path; no-op without -trace. Both
// the success and abort paths call it, so an interrupted run keeps the spans
// it collected.
func writeTrace(ob *obs.Observer, path string) {
	if path == "" {
		return
	}
	tr := ob.Tracer
	if err := tr.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	log.Printf("trace: %d events written to %s (%d dropped)", len(tr.Events()), path, tr.Dropped())
}

// phaseString formats a per-step phase snapshot as "build=1.2ms probe=800µs",
// in phase declaration order, omitting zero phases.
func phaseString(ph obs.PhaseSnapshot) string {
	var parts []string
	for _, p := range obs.Phases() {
		if d := ph[p]; d != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", p, d.Round(1e4)))
		}
	}
	return strings.Join(parts, " ")
}

// phaseMapString formats Stats.PhaseDurations in phase declaration order.
func phaseMapString(m map[string]time.Duration) string {
	var parts []string
	for _, p := range obs.Phases() {
		if d, ok := m[p.String()]; ok {
			parts = append(parts, fmt.Sprintf("%s=%v", p, d.Round(1e5)))
		}
	}
	return strings.Join(parts, " ")
}

// runIncremental evaluates the initial fixpoint with a resident database,
// then replays an update script against it. Script grammar, one command per
// line ('#' starts a comment, blank lines are skipped):
//
//	+pred v1 v2 ...   stage an insertion into EDB pred
//	-pred v1 v2 ...   stage a deletion from EDB pred
//	apply             apply the staged batch incrementally
//
// EOF applies any still-staged rows. A batch touching several relations is
// applied as one ApplyDelta per relation in sorted name order (each a
// consistent update of its own). After the script finishes, the IDB relations
// are written exactly like a from-scratch run and the database is torn down
// with its zero-leak accounting printed.
func runIncremental(ctx context.Context, opts core.Options, prog *ast.Program, edbs map[string]*storage.Relation, scriptPath, outDir string) error {
	d, err := core.New(opts).RunIncremental(ctx, prog, edbs)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			d.Close()
		}
	}()
	st := d.Stats()
	log.Printf("initial fixpoint in %v (%d iterations, %d SQL queries); database resident",
		st.Duration.Round(1e6), st.Iterations, st.Queries)

	var in io.Reader = os.Stdin
	src := "<stdin>"
	if scriptPath != "-" {
		f, err := os.Open(scriptPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in, src = f, scriptPath
	}

	ins := map[string][][]int32{}
	del := map[string][][]int32{}
	applied := 0
	flush := func() error {
		rels := make([]string, 0, len(ins)+len(del))
		seen := map[string]bool{}
		for _, m := range []map[string][][]int32{ins, del} {
			for r := range m {
				if !seen[r] {
					seen[r] = true
					rels = append(rels, r)
				}
			}
		}
		sort.Strings(rels)
		for _, r := range rels {
			us, err := d.ApplyDeltaContext(ctx, r, ins[r], del[r])
			if err != nil {
				return fmt.Errorf("update %d (%s): %w", applied+1, r, err)
			}
			applied++
			log.Printf("update %d %s: +%d -%d tuples (overdeleted %d, rescued %d, fallback strata %d) in %v",
				applied, r, us.Inserted, us.Deleted, us.OverDeleted, us.Rescued, us.FallbackStrata,
				us.Duration.Round(1e4))
		}
		ins = map[string][][]int32{}
		del = map[string][][]int32{}
		return nil
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "apply" {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		op := line[0]
		if op != '+' && op != '-' {
			return fmt.Errorf("%s:%d: want '+pred v…', '-pred v…' or 'apply', got %q", src, lineNo, line)
		}
		fields := strings.Fields(line[1:])
		if len(fields) < 2 {
			return fmt.Errorf("%s:%d: want '%cpred v1 v2 …', got %q", src, lineNo, op, line)
		}
		row := make([]int32, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return fmt.Errorf("%s:%d: bad value %q: %v", src, lineNo, f, err)
			}
			row[i] = int32(v)
		}
		if op == '+' {
			ins[fields[0]] = append(ins[fields[0]], row)
		} else {
			del[fields[0]] = append(del[fields[0]], row)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading %s: %v", src, err)
	}
	if err := flush(); err != nil {
		return err
	}
	log.Printf("%d incremental updates applied", applied)

	names := d.IDBNames()
	sort.Strings(names)
	for _, name := range names {
		rel, ok := d.Relation(name)
		if !ok {
			continue
		}
		log.Printf("%s: %d tuples", name, rel.NumTuples())
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			if err := relio.WriteTSVFile(filepath.Join(outDir, name+".tsv"), rel); err != nil {
				return err
			}
		}
	}
	closed = true
	mem, err := d.Close()
	if err != nil {
		return err
	}
	log.Printf("memory at teardown: %d live pooled bytes (peak %d)", mem.LiveTotal, mem.PeakLive)
	return nil
}

func writeRelations(res *core.Result, outDir string) {
	for name, rel := range res.Relations {
		log.Printf("%s: %d tuples", name, rel.NumTuples())
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(outDir, name+".tsv")
			if err := relio.WriteTSVFile(path, rel); err != nil {
				log.Fatal(err)
			}
		}
	}
}
