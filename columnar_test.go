package recstep

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// Batch-at-a-time kernels over columnar slabs are a physical rewrite only:
// for every benchmark program, every relation it derives must be identical
// with the batch path on and off (-columnar=false is the row-layout
// tuple-at-a-time ablation), at every radix fan-out. The staged serial run
// with batching off is the reference, exactly as in the carried-vs-rescatter
// equivalence suite.
func TestColumnarMatchesRowAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := fuseTestEDBs(name)

			run := func(columnar bool, parts int) map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.Columnar = columnar
				opts.Partitions = parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			staged := func() map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.FuseDelta = false
				opts.Columnar = false
				opts.Partitions = 1
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			want := staged()
			for _, columnar := range []bool{true, false} {
				for _, parts := range []int{1, 16, 64} {
					got := run(columnar, parts)
					for rel, rows := range want {
						if !reflect.DeepEqual(got[rel], rows) {
							t.Fatalf("columnar=%v parts=%d: %s (%d rows) diverges from row-scalar staged serial (%d rows)",
								columnar, parts, rel, len(got[rel]), len(rows))
						}
					}
				}
			}
		})
	}
}

// The columnar slab is a cache, not a copy the engine depends on: a fixpoint
// that appends to its full relations every iteration must keep the slab
// coherent (stale slabs are rebuilt, never served). A TC run under the batch
// path must agree with the ablation tuple for tuple — this pins the
// invalidation path specifically, with appends landing mid-run on blocks
// whose slabs were already built by earlier delta steps.
func TestColumnarSlabCoherentUnderAppends(t *testing.T) {
	arc := graphs.GnP(200, 0.04, 11)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	run := func(columnar bool) []int32 {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.Partitions = 16
		opts.Columnar = columnar
		res, err := core.New(opts).Run(prog, edbs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Relations["tc"].SortedRows()
	}

	batch, row := run(true), run(false)
	if !reflect.DeepEqual(batch, row) {
		t.Fatalf("batch path derives %d tc rows, row ablation %d; slab coherence broken",
			len(batch)/2, len(row)/2)
	}
}
