// Command graphanalytics runs the paper's three aggregation-bearing graph
// workloads — reachability, connected components (recursive MIN) and
// single-source shortest paths (recursive MIN over d1+d2) — on a small
// random graph built through the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"recstep"
)

const (
	vertices = 2000
	edges    = 10000
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Weighted directed graph arc(x, y, d), plus its unweighted projection.
	weighted := recstep.NewRelation("arc", 3)
	unweighted := recstep.NewRelation("arc", 2)
	undirected := recstep.NewRelation("arc", 2)
	for i := 0; i < edges; i++ {
		x, y := int32(rng.Intn(vertices)), int32(rng.Intn(vertices))
		if x == y {
			continue
		}
		w := 1 + rng.Int31n(100)
		weighted.Append([]int32{x, y, w})
		unweighted.Append([]int32{x, y})
		undirected.Append([]int32{x, y})
		undirected.Append([]int32{y, x})
	}
	source := recstep.NewRelation("id", 1)
	source.Append([]int32{0})

	opts := recstep.DefaultOptions()

	// Reachability from vertex 0.
	reach, err := recstep.RunSource(`
		reach(y) :- id(y).
		reach(y) :- reach(x), arc(x, y).
	`, map[string]*recstep.Relation{"arc": unweighted, "id": source}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REACH: %d of %d vertices reachable from 0 (%v)\n",
		reach.Relations["reach"].NumTuples(), vertices, reach.Stats.Duration.Round(1e6))

	// Connected components via recursive MIN label propagation.
	cc, err := recstep.RunSource(`
		cc3(x, MIN(x)) :- arc(x, _).
		cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).
		cc2(x, MIN(y)) :- cc3(x, y).
		cc(x) :- cc2(_, x).
	`, map[string]*recstep.Relation{"arc": undirected}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CC: %d connected components (%v)\n",
		cc.Relations["cc"].NumTuples(), cc.Stats.Duration.Round(1e6))

	// Single-source shortest paths with recursive MIN(d1 + d2).
	sssp, err := recstep.RunSource(`
		sssp2(y, MIN(0)) :- id(y).
		sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
		sssp(x, MIN(d)) :- sssp2(x, d).
	`, map[string]*recstep.Relation{"arc": weighted, "id": source}, opts)
	if err != nil {
		log.Fatal(err)
	}
	var maxDist int32
	sssp.Relations["sssp"].ForEach(func(t []int32) {
		if t[1] > maxDist {
			maxDist = t[1]
		}
	})
	fmt.Printf("SSSP: %d vertices have finite distance; farthest is %d away (%v)\n",
		sssp.Relations["sssp"].NumTuples(), maxDist, sssp.Stats.Duration.Round(1e6))
}
