// Command negation demonstrates the two language extensions of Section 3.3:
// stratified negation (the complement of transitive closure, Example 2) and
// non-recursive aggregation (reachable-vertex counts).
package main

import (
	"fmt"
	"log"

	"recstep"
)

func main() {
	res, err := recstep.RunSource(`
		arc(1, 2). arc(2, 3). arc(4, 1).

		% Example 2: complement of transitive closure, via stratified negation.
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
		node(x) :- arc(x, y).
		node(y) :- arc(x, y).
		ntc(x, y) :- node(x), node(y), !tc(x, y).

		% Section 3.3: COUNT aggregation on top of the closure.
		gtc(x, COUNT(y)) :- tc(x, y).
	`, nil, recstep.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tc: %d tuples, ntc (complement): %d tuples\n",
		res.Relations["tc"].NumTuples(), res.Relations["ntc"].NumTuples())
	fmt.Println("vertices reachable from each vertex:")
	res.Relations["gtc"].ForEach(func(t []int32) {
		fmt.Printf("  gtc(%d) = %d\n", t[0], t[1])
	})
	fmt.Println("pairs NOT in the closure:")
	res.Relations["ntc"].ForEach(func(t []int32) {
		fmt.Printf("  ntc(%d, %d)\n", t[0], t[1])
	})
}
