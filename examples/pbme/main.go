// Command pbme demonstrates the Parallel Bit-Matrix Evaluation fast path
// (Section 5.3) on a dense graph and cross-checks it against the general
// engine — the case where the paper reports hash-based evaluation running
// out of memory while the bit matrix stays tiny.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"reflect"
	"time"

	"recstep"
)

const (
	n    = 600
	prob = 0.02
)

func main() {
	rng := rand.New(rand.NewSource(3))
	arc := recstep.NewRelation("arc", 2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < prob {
				arc.Append([]int32{int32(i), int32(j)})
			}
		}
	}
	fmt.Printf("dense G%d: %d arcs; bit matrix needs %d KiB, fits budget: %t\n",
		n, arc.NumTuples(), n*((n+63)/64)*8/1024, recstep.PBMEFits(n, 1<<30))

	t0 := time.Now()
	tcPBME, err := recstep.TransitiveClosurePBME(arc, n, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBME   TC: %8d tuples in %v\n", tcPBME.NumTuples(), time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	res, err := recstep.RunSource(`
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`, map[string]*recstep.Relation{"arc": arc}, recstep.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine TC: %8d tuples in %v\n", res.Relations["tc"].NumTuples(), time.Since(t1).Round(time.Millisecond))

	if !reflect.DeepEqual(tcPBME.SortedRows(), res.Relations["tc"].SortedRows()) {
		log.Fatal("PBME and engine disagree!")
	}
	fmt.Println("results identical ✓")

	t2 := time.Now()
	sg, err := recstep.SameGenerationPBME(arc, n, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBME   SG: %8d tuples in %v (coordinated)\n", sg.NumTuples(), time.Since(t2).Round(time.Millisecond))
}
