// Command programanalysis evaluates the paper's two pointer analyses —
// Andersen's analysis and Graspan's context-sensitive points-to analysis
// (CSPA) — over a small synthetic program built through the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"recstep"
)

const vars = 400

func main() {
	rng := rand.New(rand.NewSource(7))
	v := func() int32 { return int32(rng.Intn(vars)) }

	// Andersen facts: p = &a / p = q / p = *q / *p = q.
	addressOf := recstep.NewRelation("addressOf", 2)
	assign := recstep.NewRelation("assign", 2)
	load := recstep.NewRelation("load", 2)
	store := recstep.NewRelation("store", 2)
	for i := 0; i < vars/6; i++ {
		addressOf.Append([]int32{v(), int32(rng.Intn(vars / 4))})
	}
	for i := 0; i < vars; i++ {
		assign.Append([]int32{v(), v()})
	}
	for i := 0; i < vars/12; i++ {
		load.Append([]int32{v(), v()})
		store.Append([]int32{v(), v()})
	}

	aa, err := recstep.RunSource(`
		pointsTo(y, x) :- addressOf(y, x).
		pointsTo(y, x) :- assign(y, z), pointsTo(z, x).
		pointsTo(y, w) :- load(y, x), pointsTo(x, z), pointsTo(z, w).
		pointsTo(z, w) :- store(y, x), pointsTo(y, z), pointsTo(x, w).
	`, map[string]*recstep.Relation{
		"addressOf": addressOf, "assign": assign, "load": load, "store": store,
	}, recstep.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Andersen: %d points-to facts from %d variables (%d iterations, %v)\n",
		aa.Relations["pointsTo"].NumTuples(), vars, aa.Stats.Iterations,
		aa.Stats.Duration.Round(1e6))

	// CSPA facts: clustered forward assignments (function-local dataflow)
	// plus pointer dereferences. Value flow stays locally bounded, as in
	// real extracted programs — a cyclic assign graph would make the
	// closure all-pairs.
	const cluster = 20
	assign2 := recstep.NewRelation("assign", 2)
	deref := recstep.NewRelation("dereference", 2)
	for i := 0; i < vars; i++ {
		src := rng.Intn(vars - 1)
		end := src - src%cluster + cluster
		if end > vars {
			end = vars
		}
		if src+1 >= end {
			continue
		}
		assign2.Append([]int32{int32(src), int32(src + 1 + rng.Intn(end-src-1))})
	}
	for i := 0; i < vars/3; i++ {
		deref.Append([]int32{int32(rng.Intn(vars / 4)), v()})
	}

	cspa, err := recstep.RunSource(`
		valueFlow(y, x) :- assign(y, x).
		valueFlow(x, y) :- assign(x, z), memoryAlias(z, y).
		valueFlow(x, y) :- valueFlow(x, z), valueFlow(z, y).
		memoryAlias(x, w) :- dereference(y, x), valueAlias(y, z), dereference(z, w).
		valueAlias(x, y) :- valueFlow(z, x), valueFlow(z, y).
		valueAlias(x, y) :- valueFlow(z, x), memoryAlias(z, w), valueFlow(w, y).
		valueFlow(x, x) :- assign(x, y).
		valueFlow(x, x) :- assign(y, x).
		memoryAlias(x, x) :- assign(y, x).
		memoryAlias(x, x) :- assign(x, y).
	`, map[string]*recstep.Relation{"assign": assign2, "dereference": deref},
		recstep.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSPA: valueFlow=%d memoryAlias=%d valueAlias=%d (%d iterations, %v)\n",
		cspa.Relations["valueFlow"].NumTuples(),
		cspa.Relations["memoryAlias"].NumTuples(),
		cspa.Relations["valueAlias"].NumTuples(),
		cspa.Stats.Iterations, cspa.Stats.Duration.Round(1e6))
}
