// Command quickstart is the smallest possible RecStep program: transitive
// closure over a few inline facts, printed to stdout.
package main

import (
	"fmt"
	"log"

	"recstep"
)

func main() {
	res, err := recstep.RunSource(`
		% A little directed graph, as inline facts.
		arc(1, 2). arc(2, 3). arc(3, 4). arc(4, 2).

		% Example 1 from the paper: transitive closure.
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`, nil, recstep.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	tc := res.Relations["tc"]
	fmt.Printf("tc has %d tuples (computed in %d iterations, %v):\n",
		tc.NumTuples(), res.Stats.Iterations, res.Stats.Duration.Round(1e6))
	tc.ForEach(func(t []int32) {
		fmt.Printf("  tc(%d, %d)\n", t[0], t[1])
	})
}
