package recstep

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// fuseTestEDBs builds a small input instance for every benchmark program
// (programs.ByName mirrors programs/*.datalog — enforced by the programs
// package's file-sync test).
func fuseTestEDBs(program string) map[string]*storage.Relation {
	arc := graphs.GnP(70, 0.05, 17)
	switch program {
	case "tc", "sg", "ntc", "gtc":
		return map[string]*storage.Relation{"arc": arc}
	case "cc":
		return map[string]*storage.Relation{"arc": graphs.Undirected(arc)}
	case "reach":
		return map[string]*storage.Relation{"arc": arc, "id": graphs.SingleSource(0)}
	case "sssp":
		return map[string]*storage.Relation{
			"arc": graphs.Weighted(arc, 100, 7),
			"id":  graphs.SingleSource(0),
		}
	case "aa", "aawide":
		return pa.AndersenSized(80, 3)
	case "tri", "clique4":
		return map[string]*storage.Relation{"arc": graphs.Undirected(graphs.GnP(60, 0.12, 19))}
	case "cspa":
		return pa.CSPASized(pa.CSPAConfig{Vars: 120, AssignPer: 5, DerefRatio: 3, Seed: 13})
	case "csda":
		return pa.CSDASized(4, 60, 4, 3)
	}
	panic("no EDB builder for program " + program)
}

// The fused partition-native delta pipeline is a physical rewrite only:
// for every benchmark program, every relation it derives must be identical
// under fuse-delta on/off at every radix fan-out.
func TestFusedMatchesStagedAcrossPrograms(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			prog, err := programs.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			edbs := fuseTestEDBs(name)

			run := func(fuse bool, parts int) map[string][]int32 {
				t.Helper()
				opts := core.DefaultOptions()
				opts.Workers = 4
				opts.FuseDelta = fuse
				opts.Partitions = parts
				res, err := core.New(opts).Run(prog, edbs)
				if err != nil {
					t.Fatal(err)
				}
				out := make(map[string][]int32, len(res.Relations))
				for rel, r := range res.Relations {
					out[rel] = r.SortedRows()
				}
				return out
			}

			want := run(false, 1) // staged, unpartitioned: the reference
			for _, fuse := range []bool{true, false} {
				for _, parts := range []int{1, 16, 64} {
					got := run(fuse, parts)
					for rel, rows := range want {
						if !reflect.DeepEqual(got[rel], rows) {
							t.Fatalf("fuse=%v parts=%d: %s (%d rows) diverges from staged serial (%d rows)",
								fuse, parts, rel, len(got[rel]), len(rows))
						}
					}
				}
			}
		})
	}
}

// With fusion enabled, a TC fixpoint must run with zero flat
// materializations of tmp/Rδ — the join output lands pre-partitioned, the
// fused delta step consumes it in place, and Rδ never exists — while the
// staged ablation pays one flat dedup materialization per iteration. This is
// the acceptance check for the partition-native pipeline, verified through
// the engine's copy-accounting counters.
func TestFusedPipelineZeroFlatMaterializations(t *testing.T) {
	arc := graphs.GnP(150, 0.05, 23)
	prog := programs.MustParse(programs.TC)
	edbs := map[string]*storage.Relation{"arc": arc}

	for _, parts := range []int{0, 16} { // 0 = optimizer-chosen fan-out
		t.Run(fmt.Sprintf("partitions-%d", parts), func(t *testing.T) {
			fusedOpts := core.DefaultOptions()
			fusedOpts.Workers = 4
			fusedOpts.Partitions = parts
			fused, err := core.New(fusedOpts).Run(prog, edbs)
			if err != nil {
				t.Fatal(err)
			}
			if fused.Stats.FlatMaterializations != 0 {
				t.Fatalf("fused pipeline performed %d flat materializations, want 0",
					fused.Stats.FlatMaterializations)
			}

			stagedOpts := fusedOpts
			stagedOpts.FuseDelta = false
			staged, err := core.New(stagedOpts).Run(prog, edbs)
			if err != nil {
				t.Fatal(err)
			}
			if staged.Stats.FlatMaterializations == 0 {
				t.Fatal("staged ablation reports zero flat materializations; the counter is not measuring")
			}
			if !reflect.DeepEqual(fused.Relations["tc"].SortedRows(), staged.Relations["tc"].SortedRows()) {
				t.Fatal("fused and staged tc diverge")
			}
		})
	}
}

// Per-iteration copy accounting must be visible through the IterHook so
// experiments can attribute movement to individual fixpoint steps.
func TestIterHookReportsCopyAccounting(t *testing.T) {
	arc := graphs.GnP(120, 0.05, 29)
	prog := programs.MustParse(programs.TC)
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.Partitions = 16
	var adopted int64
	opts.IterHook = func(ii core.IterInfo) {
		adopted += ii.Copy.Adopted
		if ii.Copy.FlatMats != 0 {
			t.Errorf("iter %d: fused pipeline reported %d flat materializations", ii.Iteration, ii.Copy.FlatMats)
		}
	}
	res, err := core.New(opts).Run(prog, map[string]*storage.Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	if adopted == 0 {
		t.Fatal("no adopted tuples reported through IterHook")
	}
	if res.Stats.TuplesAdopted < adopted {
		t.Fatalf("run total %d adopted < per-iteration sum %d", res.Stats.TuplesAdopted, adopted)
	}
}
