module recstep

go 1.24
