package recstep

// Differential delta-fuzz harness for incremental maintenance (ApplyDelta).
//
// For every benchmark program and a spread of partition counts, the harness
// generates a seeded-random sequence of insert / delete / mixed EDB updates,
// applies each step to a resident incremental database, and asserts
// bit-equality of every IDB against a from-scratch fixpoint over the mirrored
// EDB state — the "incremental off" arm of the comparison. At teardown the
// pool must report zero live bytes. On divergence the harness shrinks the
// sequence to a minimal counterexample (dropping whole steps, then individual
// rows, re-replaying each candidate on a fresh database) and prints the
// program, seed, partition count, failing step, and minimal delta sequence.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"recstep/internal/core"
	"recstep/internal/experiments"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

const fuzzScale = 18

type deltaStep struct {
	rel string
	ins [][]int32
	del [][]int32
}

type fuzzCase struct {
	program string
	parts   int
	seed    int64
	base    map[string][][]int32 // immutable EDB snapshot the sequence starts from
	arity   map[string]int
	domain  map[string]int // value range for generated rows, per predicate
}

func fuzzOptions(parts int) core.Options {
	opts := core.DefaultOptions()
	opts.Workers = 4
	opts.Partitions = parts
	return opts
}

func newFuzzCase(program string, parts int, seed int64) *fuzzCase {
	c := &fuzzCase{
		program: program,
		parts:   parts,
		seed:    seed,
		base:    map[string][][]int32{},
		arity:   map[string]int{},
		domain:  map[string]int{},
	}
	for name, rel := range experiments.PeakMemEDBs(program, fuzzScale) {
		c.arity[name] = rel.Arity()
		maxVal := int32(0)
		rel.ForEach(func(tuple []int32) {
			row := append([]int32(nil), tuple...)
			c.base[name] = append(c.base[name], row)
			for _, v := range row {
				if v > maxVal {
					maxVal = v
				}
			}
		})
		// Leave headroom above the observed values so inserts can mint
		// previously-unseen nodes, not just rewire existing ones.
		c.domain[name] = int(maxVal) + 4
	}
	return c
}

func cloneRows(m map[string][][]int32) map[string][][]int32 {
	out := make(map[string][][]int32, len(m))
	for k, rows := range m {
		out[k] = append([][]int32(nil), rows...)
	}
	return out
}

func rowKey(row []int32) string { return fmt.Sprint(row) }

// applyToMirror applies one step to the Go-side EDB mirror with the same
// set semantics as ApplyDelta: deletes first, then inserts.
func applyToMirror(state map[string][][]int32, st deltaStep) {
	set := make(map[string][]int32, len(state[st.rel]))
	for _, row := range state[st.rel] {
		set[rowKey(row)] = row
	}
	for _, row := range st.del {
		delete(set, rowKey(row))
	}
	for _, row := range st.ins {
		set[rowKey(row)] = row
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([][]int32, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, set[k])
	}
	state[st.rel] = rows
}

func relsFrom(state map[string][][]int32, arity map[string]int) map[string]*storage.Relation {
	out := make(map[string]*storage.Relation, len(state))
	for name, rows := range state {
		rel := storage.NewRelation(name, storage.NumberedColumns(arity[name]))
		for _, row := range rows {
			rel.Append(row)
		}
		out[name] = rel
	}
	return out
}

// genSteps derives a deterministic update sequence from the case seed. Each
// step is insert-only, delete-only, or mixed; deletes mostly sample rows that
// are actually present (with the occasional phantom), inserts draw from a
// domain slightly wider than the base instance.
func (c *fuzzCase) genSteps(n int) []deltaStep {
	rng := rand.New(rand.NewSource(c.seed))
	state := cloneRows(c.base)
	preds := make([]string, 0, len(c.base))
	for p := range c.base {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	randRow := func(rel string) []int32 {
		row := make([]int32, c.arity[rel])
		for j := range row {
			row[j] = int32(rng.Intn(c.domain[rel]))
		}
		return row
	}

	steps := make([]deltaStep, 0, n)
	for len(steps) < n {
		rel := preds[rng.Intn(len(preds))]
		st := deltaStep{rel: rel}
		mode := rng.Intn(3) // 0 insert-only, 1 delete-only, 2 mixed
		if mode != 1 {
			for k := 1 + rng.Intn(3); k > 0; k-- {
				st.ins = append(st.ins, randRow(rel))
			}
		}
		if mode != 0 {
			rows := state[rel]
			for k := 1 + rng.Intn(2); k > 0; k-- {
				if len(rows) > 0 && rng.Intn(8) > 0 {
					st.del = append(st.del, append([]int32(nil), rows[rng.Intn(len(rows))]...))
				} else {
					st.del = append(st.del, randRow(rel))
				}
			}
		}
		steps = append(steps, st)
		applyToMirror(state, st)
	}
	return steps
}

// scratch evaluates the program from scratch over the mirrored EDB state.
func (c *fuzzCase) scratch(state map[string][][]int32) (map[string][]int32, error) {
	prog := programs.MustParse(programs.ByName[c.program])
	res, err := core.New(fuzzOptions(c.parts)).Run(prog, relsFrom(state, c.arity))
	if err != nil {
		return nil, err
	}
	out := make(map[string][]int32, len(res.Relations))
	for name, rel := range res.Relations {
		out[name] = rel.SortedRows()
		rel.Release()
	}
	return out, nil
}

// replay runs the sequence on a fresh resident database, checking bit-equality
// with a from-scratch fixpoint after every step. It returns -1 on success, the
// index of the first divergent step, or len(steps) for a teardown-time failure
// (close error or leaked pooled bytes).
func (c *fuzzCase) replay(steps []deltaStep) (int, string) {
	prog := programs.MustParse(programs.ByName[c.program])
	d, err := core.New(fuzzOptions(c.parts)).RunIncremental(context.Background(), prog, relsFrom(c.base, c.arity))
	if err != nil {
		return 0, "initial fixpoint: " + err.Error()
	}
	closed := false
	defer func() {
		if !closed {
			d.Close()
		}
	}()

	state := cloneRows(c.base)
	for i, st := range steps {
		applyToMirror(state, st)
		if _, err := d.ApplyDelta(st.rel, st.ins, st.del); err != nil {
			return i, "ApplyDelta: " + err.Error()
		}
		want, err := c.scratch(state)
		if err != nil {
			return i, "scratch fixpoint: " + err.Error()
		}
		for _, idb := range d.IDBNames() {
			rel, ok := d.Relation(idb)
			if !ok {
				return i, "relation " + idb + " not resident"
			}
			got := rel.SortedRows()
			if !reflect.DeepEqual(got, want[idb]) {
				return i, fmt.Sprintf("%s diverged: %d values incremental vs %d from scratch", idb, len(got), len(want[idb]))
			}
		}
	}

	closed = true
	snap, err := d.Close()
	if err != nil {
		return len(steps), "close: " + err.Error()
	}
	if snap.LiveTotal != 0 {
		return len(steps), fmt.Sprintf("leaked %d pooled bytes at teardown", snap.LiveTotal)
	}
	return -1, ""
}

// shrink greedily minimizes a failing sequence: first dropping whole steps,
// then dropping individual rows, re-replaying each candidate from scratch.
func (c *fuzzCase) shrink(steps []deltaStep, failAt int) []deltaStep {
	min := steps
	if failAt < len(min) {
		min = min[:failAt+1]
	}
	for i := 0; i < len(min); {
		cand := append(append([]deltaStep(nil), min[:i]...), min[i+1:]...)
		if fa, _ := c.replay(cand); fa >= 0 {
			if fa < len(cand) {
				cand = cand[:fa+1]
			}
			min = cand
		} else {
			i++
		}
	}
	for i := range min {
		min[i].ins = c.shrinkRows(min, i, true)
		min[i].del = c.shrinkRows(min, i, false)
	}
	return min
}

func (c *fuzzCase) shrinkRows(steps []deltaStep, i int, ins bool) [][]int32 {
	get := func() [][]int32 {
		if ins {
			return steps[i].ins
		}
		return steps[i].del
	}
	set := func(rows [][]int32) {
		if ins {
			steps[i].ins = rows
		} else {
			steps[i].del = rows
		}
	}
	rows := get()
	for j := 0; j < len(rows); {
		cand := append(append([][]int32(nil), rows[:j]...), rows[j+1:]...)
		set(cand)
		if fa, _ := c.replay(steps); fa >= 0 {
			rows = cand
		} else {
			j++
		}
		set(rows)
	}
	return rows
}

func formatSteps(steps []deltaStep) string {
	var b strings.Builder
	for i, st := range steps {
		fmt.Fprintf(&b, "  step %d: %s ins=%v del=%v\n", i, st.rel, st.ins, st.del)
	}
	return b.String()
}

// fuzzSeed returns the deterministic per-case seed, overridable with
// RECSTEP_FUZZ_SEED for reproducing a reported counterexample.
func fuzzSeed(nameIdx, parts int) int64 {
	if env := os.Getenv("RECSTEP_FUZZ_SEED"); env != "" {
		if s, err := strconv.ParseInt(env, 10, 64); err == nil {
			return s
		}
	}
	return 0x5EED0 + int64(nameIdx)*131 + int64(parts)*7
}

func TestIncrementalDeltaFuzz(t *testing.T) {
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	partsList := []int{1, 16, 64}
	if testing.Short() {
		partsList = []int{16}
	}

	for ni, name := range names {
		for _, parts := range partsList {
			name, parts, seed := name, parts, fuzzSeed(ni, parts)
			t.Run(fmt.Sprintf("%s/parts%d", name, parts), func(t *testing.T) {
				c := newFuzzCase(name, parts, seed)
				steps := c.genSteps(6)
				failAt, detail := c.replay(steps)
				if failAt < 0 {
					return
				}
				min := c.shrink(steps, failAt)
				minAt, minDetail := c.replay(min)
				if minDetail == "" {
					minAt, minDetail = failAt, detail
				}
				t.Fatalf("delta-fuzz counterexample: program=%s parts=%d seed=%d failing step=%d: %s\nminimal sequence:\n%s",
					name, parts, seed, minAt, minDetail, formatSteps(min))
			})
		}
	}
}
