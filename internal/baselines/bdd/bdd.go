// Package bdd is the "bddbddb-like" comparator: a Datalog evaluator whose
// relations are binary decision diagrams (BDDs), the representation
// pioneered for program analysis by Whaley & Lam's bddbddb solver (the
// paper's fourth comparison system). Redundancy in over-approximated
// analysis results compresses exponentially well in BDD form, but
// performance is extremely sensitive to variable ordering and to the size
// of the active domain — the behaviour Section 6 observes (competitive on
// small variable universes, orders of magnitude slower on large graphs).
//
// The package implements a reduced ordered BDD store with an apply cache,
// the standard relational operations (union, intersect, relational product,
// variable replacement) and bit-level encodings of binary int relations.
package bdd

import (
	"fmt"
	"math/bits"
)

// nodeRef indexes into the store's node table. Terminals are 0 (false) and
// 1 (true).
type nodeRef int32

const (
	falseRef nodeRef = 0
	trueRef  nodeRef = 1
)

type node struct {
	level  int32 // variable level; terminals use maxLevel
	lo, hi nodeRef
}

// Store is a shared BDD node store with hash-consing and an operation
// cache. All BDDs built against one store share structure.
type Store struct {
	nodes    []node
	unique   map[node]nodeRef
	maxLevel int32

	applyCache map[applyKey]nodeRef
}

type applyKey struct {
	op   byte // '|', '&', '-'
	a, b nodeRef
}

// NewStore creates a store for the given number of boolean variables
// (levels 0 … numVars-1).
func NewStore(numVars int) *Store {
	s := &Store{
		unique:     make(map[node]nodeRef),
		maxLevel:   int32(numVars),
		applyCache: make(map[applyKey]nodeRef),
	}
	// Terminal nodes occupy slots 0 and 1.
	s.nodes = append(s.nodes,
		node{level: s.maxLevel}, node{level: s.maxLevel})
	return s
}

// NumNodes reports the node count (BDD memory proxy).
func (s *Store) NumNodes() int { return len(s.nodes) }

func (s *Store) level(r nodeRef) int32 { return s.nodes[r].level }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo==hi ⇒ lo.
func (s *Store) mk(level int32, lo, hi nodeRef) nodeRef {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := s.unique[key]; ok {
		return r
	}
	r := nodeRef(len(s.nodes))
	s.nodes = append(s.nodes, key)
	s.unique[key] = r
	return r
}

// BDD is a boolean function over the store's variables.
type BDD struct {
	store *Store
	root  nodeRef
}

// False returns the empty relation.
func (s *Store) False() BDD { return BDD{s, falseRef} }

// True returns the universal relation.
func (s *Store) True() BDD { return BDD{s, trueRef} }

// IsFalse reports whether the BDD is the constant false.
func (b BDD) IsFalse() bool { return b.root == falseRef }

// Equal reports structural (= semantic, BDDs are canonical) equality.
func (b BDD) Equal(o BDD) bool { return b.root == o.root }

// apply computes a binary boolean operation with memoization.
func (s *Store) apply(op byte, a, b nodeRef) nodeRef {
	switch op {
	case '|':
		if a == trueRef || b == trueRef {
			return trueRef
		}
		if a == falseRef {
			return b
		}
		if b == falseRef {
			return a
		}
		if a == b {
			return a
		}
	case '&':
		if a == falseRef || b == falseRef {
			return falseRef
		}
		if a == trueRef {
			return b
		}
		if b == trueRef {
			return a
		}
		if a == b {
			return a
		}
	case '-': // a ∧ ¬b
		if a == falseRef || b == trueRef {
			return falseRef
		}
		if b == falseRef {
			return a
		}
		if a == b {
			return falseRef
		}
	}
	key := applyKey{op, a, b}
	if r, ok := s.applyCache[key]; ok {
		return r
	}
	la, lb := s.level(a), s.level(b)
	top := la
	if lb < top {
		top = lb
	}
	var a0, a1, b0, b1 nodeRef
	if la == top {
		a0, a1 = s.nodes[a].lo, s.nodes[a].hi
	} else {
		a0, a1 = a, a
	}
	if lb == top {
		b0, b1 = s.nodes[b].lo, s.nodes[b].hi
	} else {
		b0, b1 = b, b
	}
	r := s.mk(top, s.apply(op, a0, b0), s.apply(op, a1, b1))
	s.applyCache[key] = r
	return r
}

// Or returns b ∨ o.
func (b BDD) Or(o BDD) BDD { return BDD{b.store, b.store.apply('|', b.root, o.root)} }

// And returns b ∧ o.
func (b BDD) And(o BDD) BDD { return BDD{b.store, b.store.apply('&', b.root, o.root)} }

// Diff returns b ∧ ¬o (set difference).
func (b BDD) Diff(o BDD) BDD { return BDD{b.store, b.store.apply('-', b.root, o.root)} }

// exists quantifies away every level for which keep[level] is false.
func (s *Store) exists(r nodeRef, drop []bool, cache map[nodeRef]nodeRef) nodeRef {
	if r == falseRef || r == trueRef {
		return r
	}
	if v, ok := cache[r]; ok {
		return v
	}
	n := s.nodes[r]
	lo := s.exists(n.lo, drop, cache)
	hi := s.exists(n.hi, drop, cache)
	var out nodeRef
	if drop[n.level] {
		out = s.apply('|', lo, hi)
	} else {
		out = s.mk(n.level, lo, hi)
	}
	cache[r] = out
	return out
}

// Exists existentially quantifies the given levels away.
func (b BDD) Exists(levels []int32) BDD {
	drop := make([]bool, b.store.maxLevel)
	for _, l := range levels {
		drop[l] = true
	}
	return BDD{b.store, b.store.exists(b.root, drop, make(map[nodeRef]nodeRef))}
}

// Count enumerates the number of satisfying assignments over the given
// level set size (i.e. tuples of a relation over those variables).
func (b BDD) Count(levels []int32) int64 {
	present := make([]bool, b.store.maxLevel+1)
	for _, l := range levels {
		present[l] = true
	}
	type key struct {
		r nodeRef
		l int32
	}
	memo := make(map[key]int64)
	var rec func(r nodeRef, from int32) int64
	rec = func(r nodeRef, from int32) int64 {
		// Count free levels in [from, level(r)) that belong to the set.
		lvl := b.store.level(r)
		mult := int64(1)
		for l := from; l < lvl && l < b.store.maxLevel; l++ {
			if present[l] {
				mult *= 2
			}
		}
		if r == falseRef {
			return 0
		}
		if r == trueRef {
			return mult
		}
		k := key{r, from}
		if v, ok := memo[k]; ok {
			return v
		}
		n := b.store.nodes[r]
		v := mult * (rec(n.lo, lvl+1) + rec(n.hi, lvl+1))
		memo[k] = v
		return v
	}
	return rec(b.root, 0)
}

// Domain describes the bit encoding of one attribute: Bits boolean
// variables at the given interleaved positions.
type Domain struct {
	store  *Store
	levels []int32 // most significant bit first
}

// bitsFor returns the number of bits needed for values in [0, n).
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Encoding lays out k attribute domains of the same width with interleaved
// bits (x0 y0 z0 x1 y1 z1 …), bddbddb's default strategy for relation
// attributes that are joined against each other — the variable-ordering
// choice its performance depends on.
type Encoding struct {
	Store   *Store
	Domains []Domain
	width   int
	eqCache map[[2]int]BDD
}

// NewEncoding creates an interleaved encoding of `attrs` attribute domains,
// each covering values [0, n).
func NewEncoding(attrs, n int) *Encoding {
	w := bitsFor(n)
	store := NewStore(attrs * w)
	enc := &Encoding{Store: store, width: w}
	for a := 0; a < attrs; a++ {
		levels := make([]int32, w)
		for b := 0; b < w; b++ {
			levels[b] = int32(b*attrs + a)
		}
		enc.Domains = append(enc.Domains, Domain{store: store, levels: levels})
	}
	return enc
}

// ValueBDD encodes domain[attr] == v.
func (e *Encoding) ValueBDD(attr int, v int32) BDD {
	d := e.Domains[attr]
	root := trueRef
	// Build bottom-up (deepest level first) for canonical construction.
	for i := len(d.levels) - 1; i >= 0; i-- {
		bit := (v >> (len(d.levels) - 1 - i)) & 1
		if bit == 1 {
			root = e.Store.mk(d.levels[i], falseRef, root)
		} else {
			root = e.Store.mk(d.levels[i], root, falseRef)
		}
	}
	return BDD{e.Store, root}
}

// TupleBDD encodes the conjunction attr0==v0 ∧ attr1==v1 ∧ ….
func (e *Encoding) TupleBDD(vals ...int32) BDD {
	if len(vals) > len(e.Domains) {
		panic(fmt.Sprintf("bdd: %d values for %d domains", len(vals), len(e.Domains)))
	}
	out := e.Store.True()
	for i, v := range vals {
		out = out.And(e.ValueBDD(i, v))
	}
	return out
}

// Levels returns the variable levels of one attribute.
func (e *Encoding) Levels(attr int) []int32 {
	return e.Domains[attr].levels
}

// eqBDD returns the equality relation domain[i] == domain[j], built
// bottom-up (linear size under the interleaved ordering) and cached. It is
// the workhorse of attribute renaming via relational product.
func (e *Encoding) eqBDD(i, j int) BDD {
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	if e.eqCache == nil {
		e.eqCache = make(map[[2]int]BDD)
	}
	if b, ok := e.eqCache[key]; ok {
		return b
	}
	li, lj := e.Domains[i].levels, e.Domains[j].levels
	root := trueRef
	for b := len(li) - 1; b >= 0; b-- {
		// Per-bit: (x_b=0 ∧ y_b=0) ∨ (x_b=1 ∧ y_b=1), chained below root.
		lo, hi := li[b], lj[b]
		if lo > hi {
			lo, hi = hi, lo
		}
		zero := e.Store.mk(hi, root, falseRef)
		one := e.Store.mk(hi, falseRef, root)
		root = e.Store.mk(lo, zero, one)
	}
	out := BDD{e.Store, root}
	e.eqCache[key] = out
	return out
}

// Rename moves attribute `from` to attribute `to` by relational product:
// ∃from (b ∧ (from == to)). The input must not already constrain `to`.
// Unlike a level-substitution replace, this works for arbitrary (including
// order-reversing) renamings.
func (e *Encoding) Rename(b BDD, from, to int) BDD {
	joined := b.And(e.eqBDD(from, to))
	return joined.Exists(e.Domains[from].levels)
}

// Enumerate calls fn for every satisfying tuple over the given attributes.
func (e *Encoding) Enumerate(b BDD, attrs []int, fn func(vals []int32)) {
	levelAttr := make([]int, e.Store.maxLevel) // level → position in attrs, or -1
	levelBit := make([]int, e.Store.maxLevel)  // level → bit index (msb=0)
	for i := range levelAttr {
		levelAttr[i] = -1
	}
	for ai, a := range attrs {
		for bi, l := range e.Domains[a].levels {
			levelAttr[l] = ai
			levelBit[l] = bi
		}
	}
	vals := make([]int32, len(attrs))
	var rec func(r nodeRef, level int32)
	rec = func(r nodeRef, level int32) {
		if r == falseRef {
			return
		}
		if level == e.Store.maxLevel {
			if r == trueRef {
				out := make([]int32, len(vals))
				copy(out, vals)
				fn(out)
			}
			return
		}
		ai := levelAttr[level]
		nodeLevel := e.Store.level(r)
		if nodeLevel > level {
			// Free variable at this level: branch both ways if it belongs
			// to an enumerated attribute, else skip.
			if ai < 0 {
				rec(r, level+1)
				return
			}
			shift := len(e.Domains[attrs[ai]].levels) - 1 - levelBit[level]
			vals[ai] &^= 1 << shift
			rec(r, level+1)
			vals[ai] |= 1 << shift
			rec(r, level+1)
			vals[ai] &^= 1 << shift
			return
		}
		n := e.Store.nodes[r]
		if ai < 0 {
			rec(n.lo, level+1)
			rec(n.hi, level+1)
			return
		}
		shift := len(e.Domains[attrs[ai]].levels) - 1 - levelBit[level]
		vals[ai] &^= 1 << shift
		rec(n.lo, level+1)
		vals[ai] |= 1 << shift
		rec(n.hi, level+1)
		vals[ai] &^= 1 << shift
	}
	rec(b.root, 0)
}
