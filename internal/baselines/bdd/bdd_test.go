package bdd

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(4)
	if !s.False().IsFalse() || s.True().IsFalse() {
		t.Fatal("terminal misbehaviour")
	}
	if !s.False().Or(s.True()).Equal(s.True()) {
		t.Fatal("false ∨ true ≠ true")
	}
	if !s.True().And(s.False()).IsFalse() {
		t.Fatal("true ∧ false ≠ false")
	}
	if !s.True().Diff(s.True()).IsFalse() {
		t.Fatal("true − true ≠ false")
	}
}

func TestValueBDDDistinct(t *testing.T) {
	e := NewEncoding(2, 8)
	a := e.ValueBDD(0, 3)
	b := e.ValueBDD(0, 5)
	if a.Equal(b) {
		t.Fatal("different values encode equal")
	}
	if !a.And(b).IsFalse() {
		t.Fatal("x=3 ∧ x=5 should be unsatisfiable")
	}
	if a.Or(b).IsFalse() {
		t.Fatal("union lost values")
	}
}

func TestTupleBDDAndCount(t *testing.T) {
	e := NewEncoding(2, 8)
	r := e.TupleBDD(1, 2).Or(e.TupleBDD(3, 4)).Or(e.TupleBDD(1, 2))
	levels := append(append([]int32{}, e.Levels(0)...), e.Levels(1)...)
	if got := r.Count(levels); got != 2 {
		t.Fatalf("Count = %d, want 2 (set semantics)", got)
	}
}

func TestEnumerateRoundTrip(t *testing.T) {
	e := NewEncoding(2, 16)
	want := [][2]int32{{0, 1}, {5, 9}, {15, 15}}
	r := e.Store.False()
	for _, p := range want {
		r = r.Or(e.TupleBDD(p[0], p[1]))
	}
	var got [][2]int32
	e.Enumerate(r, []int{0, 1}, func(vals []int32) {
		got = append(got, [2]int32{vals[0], vals[1]})
	})
	sort.Slice(got, func(i, j int) bool {
		if got[i][0] != got[j][0] {
			return got[i][0] < got[j][0]
		}
		return got[i][1] < got[j][1]
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("enumerate = %v, want %v", got, want)
	}
}

func TestExistsProjectsAttribute(t *testing.T) {
	e := NewEncoding(2, 8)
	r := e.TupleBDD(1, 2).Or(e.TupleBDD(1, 5))
	proj := r.Exists(e.Levels(1)) // ∃y r(x,y) → x=1
	if !proj.Equal(e.ValueBDD(0, 1)) {
		t.Fatal("projection should collapse to x=1")
	}
}

func TestRenameMovesAttribute(t *testing.T) {
	e := NewEncoding(3, 8)
	r := e.TupleBDD2(0, 3, 1, 6)
	moved := e.Rename(r, 1, 2) // (x=3, t=6)
	want := e.TupleBDD2(0, 3, 2, 6)
	if !moved.Equal(want) {
		t.Fatal("rename attr1→attr2 failed")
	}
	// Order-reversing rename: attr2 → attr0 (after clearing attr0).
	s := e.TupleBDD2(1, 4, 2, 7)
	back := e.Rename(s, 2, 0) // (a=7, b=4)? attr2→attr0: (attr0=7, attr1=4)
	want2 := e.TupleBDD2(0, 7, 1, 4)
	if !back.Equal(want2) {
		t.Fatal("order-reversing rename failed")
	}
}

func TestTCMatchesEngine(t *testing.T) {
	arc := graphs.GnP(24, 0.08, 3)
	n := 24
	got, err := TC(arc, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultOptions()).Run(programs.MustParse(programs.TC),
		map[string]*storage.Relation{"arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SortedRows(), res.Relations["tc"].SortedRows()) {
		t.Fatalf("bdd tc = %d tuples, engine = %d", got.NumTuples(), res.Relations["tc"].NumTuples())
	}
}

func TestTCOnCycle(t *testing.T) {
	arc := storage.NewRelation("arc", storage.NumberedColumns(2))
	arc.Append([]int32{0, 1})
	arc.Append([]int32{1, 2})
	arc.Append([]int32{2, 0})
	got, err := TC(arc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTuples() != 9 {
		t.Fatalf("cycle closure = %d tuples, want 9", got.NumTuples())
	}
}

func TestAndersenMatchesEngine(t *testing.T) {
	edbs := pa.AndersenSized(48, 5)
	got, err := Andersen(edbs, 48)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultOptions()).Run(programs.MustParse(programs.Andersen), edbs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SortedRows(), res.Relations["pointsTo"].SortedRows()) {
		t.Fatalf("bdd pointsTo = %d tuples, engine = %d",
			got.NumTuples(), res.Relations["pointsTo"].NumTuples())
	}
}

func TestDomainErrors(t *testing.T) {
	arc := storage.NewRelation("arc", storage.NumberedColumns(2))
	if _, err := TC(arc, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := Andersen(nil, -1); err == nil {
		t.Fatal("negative domain should error")
	}
}

func TestNodeSharing(t *testing.T) {
	e := NewEncoding(2, 64)
	before := e.Store.NumNodes()
	// Identical tuples must not allocate new nodes the second time.
	a := e.TupleBDD(10, 20)
	mid := e.Store.NumNodes()
	b := e.TupleBDD(10, 20)
	after := e.Store.NumNodes()
	if !a.Equal(b) {
		t.Fatal("hash consing broken: identical functions differ")
	}
	if after != mid {
		t.Fatalf("second construction allocated %d nodes", after-mid)
	}
	if mid == before {
		t.Fatal("first construction allocated nothing")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8, 257: 9}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
