package bdd

import (
	"fmt"

	"recstep/internal/quickstep/storage"
)

// loadRelation encodes a binary relation as a BDD over attributes (a1, a2)
// of the encoding.
func loadRelation(e *Encoding, rel *storage.Relation, a1, a2 int) BDD {
	out := e.Store.False()
	rel.ForEach(func(t []int32) {
		out = out.Or(e.TupleBDD2(a1, t[0], a2, t[1]))
	})
	return out
}

// TupleBDD2 encodes domain[a1]==v1 ∧ domain[a2]==v2.
func (e *Encoding) TupleBDD2(a1 int, v1 int32, a2 int, v2 int32) BDD {
	return e.ValueBDD(a1, v1).And(e.ValueBDD(a2, v2))
}

// materialize decodes a BDD over attributes (a1, a2) into a relation.
func materialize(e *Encoding, b BDD, a1, a2 int, name string, n int) *storage.Relation {
	out := storage.NewRelation(name, storage.NumberedColumns(2))
	e.Enumerate(b, []int{a1, a2}, func(vals []int32) {
		// The bit encoding covers [0, 2^w); drop padding values outside the
		// declared domain.
		if int(vals[0]) < n && int(vals[1]) < n {
			out.Append(vals)
		}
	})
	return out
}

// TC evaluates transitive closure entirely in BDD form, bddbddb-style:
// three interleaved attribute domains (x, y, t), with the recursive step
// tc(x,y) ← ∃t tc(x,t) ∧ arc(t,y) iterated on the delta.
func TC(arc *storage.Relation, n int) (*storage.Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bdd: domain size must be positive")
	}
	const (
		attrX = 0
		attrY = 1
		attrT = 2
	)
	e := NewEncoding(3, n)
	arcB := loadRelation(e, arc, attrX, attrY)
	arcTY := e.Rename(arcB, attrX, attrT) // arc(t, y)

	tc := arcB
	delta := arcB
	for !delta.IsFalse() {
		deltaXT := e.Rename(delta, attrY, attrT) // ∆tc(x, t)
		step := deltaXT.And(arcTY).Exists(e.Levels(attrT))
		delta = step.Diff(tc)
		tc = tc.Or(delta)
	}
	return materialize(e, tc, attrX, attrY, "tc", n), nil
}

// Andersen evaluates Andersen's points-to analysis in BDD form — the
// workload bddbddb was built for. Four interleaved attribute domains
// (a, b, c, d) hold rule variables; each rule is a relational product with
// renames and an existential projection.
func Andersen(edbs map[string]*storage.Relation, n int) (*storage.Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bdd: domain size must be positive")
	}
	const (
		attrA = 0 // head arg 1
		attrB = 1 // head arg 2
		attrC = 2 // join temp 1
		attrD = 3 // join temp 2
	)
	e := NewEncoding(4, n)
	addressOf := loadRelation(e, edbs["addressOf"], attrA, attrB)
	assignAC := e.Rename(loadRelation(e, edbs["assign"], attrA, attrB), attrB, attrC)
	loadAC := e.Rename(loadRelation(e, edbs["load"], attrA, attrB), attrB, attrC)
	storeCD := func() BDD {
		s := loadRelation(e, edbs["store"], attrA, attrB)
		return e.Rename(e.Rename(s, attrA, attrC), attrB, attrD)
	}()

	cLv, dLv := e.Levels(attrC), e.Levels(attrD)
	cd := append(append([]int32{}, cLv...), dLv...)

	pt := addressOf
	for {
		// pt(a,b) ← assign(a,c), pt(c,b).
		ptCB := e.Rename(pt, attrA, attrC)
		new2 := assignAC.And(ptCB).Exists(cLv)

		// pt(a,b) ← load(a,c), pt(c,d), pt(d,b).
		ptCD := e.Rename(e.Rename(pt, attrA, attrC), attrB, attrD)
		ptDB := e.Rename(pt, attrA, attrD)
		new3 := loadAC.And(ptCD).And(ptDB).Exists(cd)

		// pt(a,b) ← store(c,d), pt(c,a), pt(d,b): pt(y,z) with y=c, z=a is
		// pt renamed attr1→c then attr2→a (the order-reversing rename the
		// equality-product handles).
		ptCA := e.Rename(e.Rename(pt, attrA, attrC), attrB, attrA)
		new4 := storeCD.And(ptCA).And(ptDB).Exists(cd)

		next := pt.Or(new2).Or(new3).Or(new4)
		if next.Equal(pt) {
			break
		}
		pt = next
	}
	return materialize(e, pt, attrA, attrB, "pointsTo", n), nil
}

// NodeCount exposes the store size for memory comparisons (bddbddb's
// compactness claim).
func NodeCount(e *Encoding) int { return e.Store.NumNodes() }
