// Package bigdatalog is the "BigDatalog-like" comparator: a miniature
// shared-nothing dataflow engine in the mold of BigDatalog-on-Spark
// (Shkapsky et al., SIGMOD'16), the paper's distributed baseline. Relations
// are hash-partitioned across P simulated workers; every semi-naive
// iteration is a pair of synchronous stages separated by shuffles (join
// stage keyed by the join column, dedup stage keyed by the tuple), exactly
// the set-semantic RDD recursion BigDatalog builds on. The engine counts
// shuffled bytes so experiments can report communication volume.
//
// Like the real system, it evaluates linear recursion and recursive
// monotone aggregation but not mutual recursion (Table 1).
package bigdatalog

import (
	"math"
	"sync"
	"sync/atomic"

	"recstep/internal/quickstep/storage"
)

// Cluster is a set of simulated shared-nothing workers.
type Cluster struct {
	workers      int
	shuffleBytes atomic.Int64
	shuffles     atomic.Int64
}

// NewCluster creates a cluster with p workers (p ≤ 0 selects 4, a small
// "cluster" by default).
func NewCluster(p int) *Cluster {
	if p <= 0 {
		p = 4
	}
	return &Cluster{workers: p}
}

// Workers returns the cluster size.
func (c *Cluster) Workers() int { return c.workers }

// ShuffleBytes reports the total bytes exchanged between partitions.
func (c *Cluster) ShuffleBytes() int64 { return c.shuffleBytes.Load() }

// Shuffles reports how many all-to-all exchanges ran.
func (c *Cluster) Shuffles() int64 { return c.shuffles.Load() }

func (c *Cluster) part(v int32) int {
	return int(uint32(v)*2654435761) % c.workers
}

// parallel runs fn once per worker and waits (a synchronous Spark stage).
func (c *Cluster) parallel(fn func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// exchange routes per-worker output buffers to their destination partitions
// (the shuffle barrier), charging the shuffle byte counter.
func (c *Cluster) exchange(outs [][][]int32) [][]int32 {
	in := make([][]int32, c.workers)
	var bytes int64
	for src := 0; src < c.workers; src++ {
		for dst := 0; dst < c.workers; dst++ {
			rows := outs[src][dst]
			if len(rows) == 0 {
				continue
			}
			if src != dst {
				bytes += int64(4 * len(rows))
			}
			in[dst] = append(in[dst], rows...)
		}
	}
	c.shuffleBytes.Add(bytes)
	c.shuffles.Add(1)
	return in
}

// partitionByCol splits a relation's rows by the hash of one column.
func (c *Cluster) partitionByCol(rel *storage.Relation, col int) [][]int32 {
	parts := make([][]int32, c.workers)
	rel.ForEach(func(t []int32) {
		w := c.part(t[col])
		parts[w] = append(parts[w], t...)
	})
	return parts
}

// TC evaluates transitive closure: arc is partitioned once by source
// vertex (the broadcast-free join layout BigDatalog caches); each iteration
// shuffles the delta by its join key, joins per partition, shuffles the
// derived tuples by tuple hash, and dedups against the closure shard.
func (c *Cluster) TC(arc *storage.Relation) *storage.Relation {
	// adjacency per worker: z → ys for arcs whose source z lives here.
	adj := make([]map[int32][]int32, c.workers)
	arcParts := c.partitionByCol(arc, 0)
	c.parallel(func(w int) {
		m := make(map[int32][]int32)
		rows := arcParts[w]
		for i := 0; i+1 < len(rows); i += 2 {
			m[rows[i]] = append(m[rows[i]], rows[i+1])
		}
		adj[w] = m
	})

	// tc shards keyed by tuple hash; delta starts as arc itself.
	shard := make([]map[uint64]struct{}, c.workers)
	for w := range shard {
		shard[w] = make(map[uint64]struct{})
	}
	key := func(x, y int32) uint64 { return uint64(uint32(x))<<32 | uint64(uint32(y)) }

	// Seed: dedup arc into the shards and produce the first delta, keyed by
	// join column (y).
	seedOuts := make([][][]int32, c.workers)
	tupleParts := make([][][]int32, c.workers)
	for w := range tupleParts {
		tupleParts[w] = make([][]int32, c.workers)
	}
	arc.ForEach(func(t []int32) {
		dst := c.part(t[0] ^ t[1]*31)
		tupleParts[0][dst] = append(tupleParts[0][dst], t[0], t[1])
	})
	seedIn := c.exchange(tupleParts)
	deltaOut := make([][][]int32, c.workers)
	c.parallel(func(w int) {
		outs := make([][]int32, c.workers)
		rows := seedIn[w]
		for i := 0; i+1 < len(rows); i += 2 {
			x, y := rows[i], rows[i+1]
			k := key(x, y)
			if _, ok := shard[w][k]; ok {
				continue
			}
			shard[w][k] = struct{}{}
			jw := c.part(y) // next join is on y
			outs[jw] = append(outs[jw], x, y)
		}
		deltaOut[w] = outs
	})
	delta := c.exchange(deltaOut)
	_ = seedOuts

	for {
		empty := true
		for _, rows := range delta {
			if len(rows) > 0 {
				empty = false
				break
			}
		}
		if empty {
			break
		}
		// Stage 1: join ∆tc(x, z) ⋈ arc(z, y) per partition, emitting to
		// the dedup owner of each derived tuple.
		joinOut := make([][][]int32, c.workers)
		c.parallel(func(w int) {
			outs := make([][]int32, c.workers)
			rows := delta[w]
			for i := 0; i+1 < len(rows); i += 2 {
				x, z := rows[i], rows[i+1]
				for _, y := range adj[w][z] {
					dst := c.part(x ^ y*31)
					outs[dst] = append(outs[dst], x, y)
				}
			}
			joinOut[w] = outs
		})
		derived := c.exchange(joinOut)

		// Stage 2: dedup against the closure shard; survivors become the
		// next delta, shuffled by join key.
		nextOut := make([][][]int32, c.workers)
		c.parallel(func(w int) {
			outs := make([][]int32, c.workers)
			rows := derived[w]
			for i := 0; i+1 < len(rows); i += 2 {
				x, y := rows[i], rows[i+1]
				k := key(x, y)
				if _, ok := shard[w][k]; ok {
					continue
				}
				shard[w][k] = struct{}{}
				jw := c.part(y)
				outs[jw] = append(outs[jw], x, y)
			}
			nextOut[w] = outs
		})
		delta = c.exchange(nextOut)
	}

	out := storage.NewRelation("tc", storage.NumberedColumns(2))
	for w := 0; w < c.workers; w++ {
		rows := make([]int32, 0, 2*len(shard[w]))
		for k := range shard[w] {
			rows = append(rows, int32(uint32(k>>32)), int32(uint32(k)))
		}
		out.AppendRows(rows)
	}
	return out
}

// Reach evaluates single-source reachability with a partitioned frontier.
func (c *Cluster) Reach(arc *storage.Relation, src int32) *storage.Relation {
	adj := make([]map[int32][]int32, c.workers)
	arcParts := c.partitionByCol(arc, 0)
	c.parallel(func(w int) {
		m := make(map[int32][]int32)
		rows := arcParts[w]
		for i := 0; i+1 < len(rows); i += 2 {
			m[rows[i]] = append(m[rows[i]], rows[i+1])
		}
		adj[w] = m
	})
	visited := make([]map[int32]struct{}, c.workers)
	for w := range visited {
		visited[w] = make(map[int32]struct{})
	}
	visited[c.part(src)][src] = struct{}{}
	delta := make([][]int32, c.workers)
	delta[c.part(src)] = []int32{src}
	for {
		empty := true
		for _, d := range delta {
			if len(d) > 0 {
				empty = false
			}
		}
		if empty {
			break
		}
		joinOut := make([][][]int32, c.workers)
		c.parallel(func(w int) {
			outs := make([][]int32, c.workers)
			for _, x := range delta[w] {
				for _, y := range adj[w][x] {
					outs[c.part(y)] = append(outs[c.part(y)], y)
				}
			}
			joinOut[w] = outs
		})
		derived := c.exchange(joinOut)
		next := make([][]int32, c.workers)
		c.parallel(func(w int) {
			var local []int32
			for _, y := range derived[w] {
				if _, ok := visited[w][y]; !ok {
					visited[w][y] = struct{}{}
					local = append(local, y)
				}
			}
			next[w] = local
		})
		delta = next
	}
	out := storage.NewRelation("reach", storage.NumberedColumns(1))
	for w := 0; w < c.workers; w++ {
		for v := range visited[w] {
			out.Append([]int32{v})
		}
	}
	return out
}

// SSSP evaluates single-source shortest paths with per-partition distance
// shards and monotone min-merge — BigDatalog's recursive aggregation.
// arc has arity 3 (x, y, weight).
func (c *Cluster) SSSP(arc *storage.Relation, src int32) *storage.Relation {
	type edge struct{ to, w int32 }
	adj := make([]map[int32][]edge, c.workers)
	arcParts := c.partitionByCol(arc, 0)
	c.parallel(func(w int) {
		m := make(map[int32][]edge)
		rows := arcParts[w]
		for i := 0; i+2 < len(rows); i += 3 {
			m[rows[i]] = append(m[rows[i]], edge{rows[i+1], rows[i+2]})
		}
		adj[w] = m
	})
	dist := make([]map[int32]int32, c.workers)
	for w := range dist {
		dist[w] = make(map[int32]int32)
	}
	dist[c.part(src)][src] = 0
	delta := make([][]int32, c.workers) // (vertex, dist) pairs
	delta[c.part(src)] = []int32{src, 0}
	for {
		empty := true
		for _, d := range delta {
			if len(d) > 0 {
				empty = false
			}
		}
		if empty {
			break
		}
		joinOut := make([][][]int32, c.workers)
		c.parallel(func(w int) {
			outs := make([][]int32, c.workers)
			rows := delta[w]
			for i := 0; i+1 < len(rows); i += 2 {
				x, dx := rows[i], rows[i+1]
				for _, e := range adj[w][x] {
					dst := c.part(e.to)
					outs[dst] = append(outs[dst], e.to, dx+e.w)
				}
			}
			joinOut[w] = outs
		})
		derived := c.exchange(joinOut)
		next := make([][]int32, c.workers)
		c.parallel(func(w int) {
			// Monotone aggregate merge: keep improvements only.
			best := make(map[int32]int32)
			rows := derived[w]
			for i := 0; i+1 < len(rows); i += 2 {
				v, d := rows[i], rows[i+1]
				if cur, ok := best[v]; !ok || d < cur {
					best[v] = d
				}
			}
			var local []int32
			for v, d := range best {
				if cur, ok := dist[w][v]; !ok || d < cur {
					dist[w][v] = d
					local = append(local, v, d)
				}
			}
			next[w] = local
		})
		delta = next
	}
	out := storage.NewRelation("sssp", storage.NumberedColumns(2))
	for w := 0; w < c.workers; w++ {
		for v, d := range dist[w] {
			out.Append([]int32{v, d})
		}
	}
	return out
}

// CC evaluates connected components by min-label propagation over a
// partitioned vertex set (arc must contain both directions).
func (c *Cluster) CC(arc *storage.Relation) *storage.Relation {
	adj := make([]map[int32][]int32, c.workers)
	arcParts := c.partitionByCol(arc, 0)
	c.parallel(func(w int) {
		m := make(map[int32][]int32)
		rows := arcParts[w]
		for i := 0; i+1 < len(rows); i += 2 {
			m[rows[i]] = append(m[rows[i]], rows[i+1])
		}
		adj[w] = m
	})
	label := make([]map[int32]int32, c.workers)
	for w := range label {
		label[w] = make(map[int32]int32)
	}
	var seed [][]int32
	seed = make([][]int32, c.workers)
	arc.ForEach(func(t []int32) {
		w := c.part(t[0])
		if _, ok := label[w][t[0]]; !ok {
			label[w][t[0]] = t[0]
			seed[w] = append(seed[w], t[0], t[0])
		}
	})
	delta := seed
	for {
		empty := true
		for _, d := range delta {
			if len(d) > 0 {
				empty = false
			}
		}
		if empty {
			break
		}
		joinOut := make([][][]int32, c.workers)
		c.parallel(func(w int) {
			outs := make([][]int32, c.workers)
			rows := delta[w]
			for i := 0; i+1 < len(rows); i += 2 {
				x, lx := rows[i], rows[i+1]
				for _, y := range adj[w][x] {
					outs[c.part(y)] = append(outs[c.part(y)], y, lx)
				}
			}
			joinOut[w] = outs
		})
		derived := c.exchange(joinOut)
		next := make([][]int32, c.workers)
		c.parallel(func(w int) {
			best := make(map[int32]int32)
			rows := derived[w]
			for i := 0; i+1 < len(rows); i += 2 {
				v, l := rows[i], rows[i+1]
				if cur, ok := best[v]; !ok || l < cur {
					best[v] = l
				}
			}
			var local []int32
			for v, l := range best {
				if cur, ok := label[w][v]; !ok || l < cur {
					label[w][v] = l
					local = append(local, v, l)
				}
			}
			next[w] = local
		})
		delta = next
	}
	out := storage.NewRelation("cc2", storage.NumberedColumns(2))
	for w := 0; w < c.workers; w++ {
		for v, l := range label[w] {
			out.Append([]int32{v, l})
		}
	}
	return out
}

// MaxSkew reports the load imbalance of a partitioned relation (max
// partition size over mean) — the quantity user-provided sharding
// annotations tune in Socialite/BigDatalog deployments.
func (c *Cluster) MaxSkew(rel *storage.Relation, col int) float64 {
	parts := c.partitionByCol(rel, col)
	maxLen, total := 0, 0
	for _, p := range parts {
		total += len(p)
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(c.workers)
	if mean == 0 {
		return math.Inf(1)
	}
	return float64(maxLen) / mean
}
