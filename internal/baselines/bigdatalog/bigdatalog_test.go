package bigdatalog

import (
	"reflect"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

func recstep(t *testing.T, name string, edbs map[string]*storage.Relation) map[string]*storage.Relation {
	t.Helper()
	prog, err := programs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultOptions()).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Relations
}

func sameRows(t *testing.T, what string, a, b *storage.Relation) {
	t.Helper()
	if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
		t.Fatalf("%s: bigdatalog (%d tuples) disagrees with RecStep (%d tuples)",
			what, a.NumTuples(), b.NumTuples())
	}
}

func TestTCMatchesRecStep(t *testing.T) {
	arc := graphs.GnP(60, 0.05, 1)
	want := recstep(t, "tc", map[string]*storage.Relation{"arc": arc})["tc"]
	c := NewCluster(4)
	sameRows(t, "tc", c.TC(arc), want)
	if c.ShuffleBytes() == 0 || c.Shuffles() == 0 {
		t.Fatal("distributed evaluation must shuffle")
	}
}

func TestTCWorkerCountIrrelevant(t *testing.T) {
	arc := graphs.GnP(40, 0.08, 2)
	base := NewCluster(1).TC(arc)
	for _, p := range []int{2, 5, 8} {
		sameRows(t, "tc partitions", NewCluster(p).TC(arc), base)
	}
}

func TestReachMatchesRecStep(t *testing.T) {
	arc := graphs.RMAT(256, 1024, 4)
	want := recstep(t, "reach", map[string]*storage.Relation{
		"arc": arc, "id": graphs.SingleSource(0),
	})["reach"]
	sameRows(t, "reach", NewCluster(4).Reach(arc, 0), want)
}

func TestSSSPMatchesRecStep(t *testing.T) {
	arc := graphs.Weighted(graphs.RMAT(128, 512, 6), 50, 6)
	want := recstep(t, "sssp", map[string]*storage.Relation{
		"arc": arc, "id": graphs.SingleSource(0),
	})["sssp"]
	sameRows(t, "sssp", NewCluster(4).SSSP(arc, 0), want)
}

func TestCCMatchesRecStep(t *testing.T) {
	arc := graphs.Undirected(graphs.RMAT(128, 300, 5))
	want := recstep(t, "cc", map[string]*storage.Relation{"arc": arc})["cc2"]
	sameRows(t, "cc2", NewCluster(4).CC(arc), want)
}

func TestClusterDefaults(t *testing.T) {
	if NewCluster(0).Workers() != 4 {
		t.Fatal("default cluster size should be 4")
	}
}

func TestMaxSkew(t *testing.T) {
	// A star graph partitioned by source is maximally skewed.
	star := storage.NewRelation("arc", storage.NumberedColumns(2))
	for i := int32(1); i <= 64; i++ {
		star.Append([]int32{0, i})
	}
	c := NewCluster(4)
	if skew := c.MaxSkew(star, 0); skew < 3.5 {
		t.Fatalf("star skew = %f, want ≈ workers (4)", skew)
	}
	// Partitioning by destination is balanced.
	if skew := c.MaxSkew(star, 1); skew > 2 {
		t.Fatalf("balanced skew = %f, want near 1", skew)
	}
	if NewCluster(2).MaxSkew(storage.NewRelation("e", storage.NumberedColumns(2)), 0) != 0 {
		t.Fatal("empty relation skew should be 0")
	}
}
