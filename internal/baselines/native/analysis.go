package native

import (
	"sort"

	"recstep/internal/quickstep/storage"
)

// rel2 is an indexed binary relation: membership set plus forward and
// reverse adjacency, the index layout Soufflé's synthesized code maintains
// per relation.
type rel2 struct {
	set map[uint64]struct{}
	fwd map[int32][]int32
	rev map[int32][]int32
}

func newRel2() *rel2 {
	return &rel2{set: make(map[uint64]struct{}), fwd: make(map[int32][]int32), rev: make(map[int32][]int32)}
}

func key2(x, y int32) uint64 { return uint64(uint32(x))<<32 | uint64(uint32(y)) }

// insert adds (x, y), reporting whether it is new.
func (r *rel2) insert(x, y int32) bool {
	k := key2(x, y)
	if _, ok := r.set[k]; ok {
		return false
	}
	r.set[k] = struct{}{}
	r.fwd[x] = append(r.fwd[x], y)
	r.rev[y] = append(r.rev[y], x)
	return true
}

func (r *rel2) has(x, y int32) bool {
	_, ok := r.set[key2(x, y)]
	return ok
}

func (r *rel2) relation(name string) *storage.Relation {
	keys := make([]uint64, 0, len(r.set))
	for k := range r.set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := storage.NewRelation(name, []string{"c0", "c1"})
	for _, k := range keys {
		out.Append([]int32{int32(uint32(k >> 32)), int32(uint32(k))})
	}
	return out
}

type edge struct{ x, y int32 }

// Andersen runs Andersen's points-to analysis with a tuple worklist over
// indexed relations — the standard specialized inclusion-based solver.
func Andersen(edbs map[string]*storage.Relation, workers int) *storage.Relation {
	assignBySrc := make(map[int32][]int32) // z → [y] with assign(y, z)
	edbs["assign"].ForEach(func(t []int32) { assignBySrc[t[1]] = append(assignBySrc[t[1]], t[0]) })
	loadFwd := make(map[int32][]int32) // x → [y] with load(y, x)
	edbs["load"].ForEach(func(t []int32) { loadFwd[t[1]] = append(loadFwd[t[1]], t[0]) })
	storeFwd := make(map[int32][]int32) // y → [x] with store(y, x)
	edbs["store"].ForEach(func(t []int32) { storeFwd[t[0]] = append(storeFwd[t[0]], t[1]) })
	storeRev := make(map[int32][]int32) // x → [y] with store(y, x)
	edbs["store"].ForEach(func(t []int32) { storeRev[t[1]] = append(storeRev[t[1]], t[0]) })

	pt := newRel2() // pointsTo
	var work []edge
	push := func(y, x int32) {
		if pt.insert(y, x) {
			work = append(work, edge{y, x})
		}
	}
	edbs["addressOf"].ForEach(func(t []int32) { push(t[0], t[1]) })
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		z, x := e.x, e.y // pointsTo(z, x)
		// pointsTo(y,x) :- assign(y,z), pointsTo(z,x).
		for _, y := range assignBySrc[z] {
			push(y, x)
		}
		// pointsTo(y,w) :- load(y,x'), pointsTo(x',z'), pointsTo(z',w).
		// New fact as pointsTo(x',z') with x'=z, z'=x:
		for _, y := range loadFwd[z] {
			for _, w := range pt.fwd[x] {
				push(y, w)
			}
		}
		// New fact as pointsTo(z',w) with z'=z, w=x:
		for _, xp := range pt.rev[z] {
			for _, y := range loadFwd[xp] {
				push(y, x)
			}
		}
		// pointsTo(z',w) :- store(y,x'), pointsTo(y,z'), pointsTo(x',w).
		// New fact as pointsTo(y,z') with y=z, z'=x:
		for _, xp := range storeFwd[z] {
			for _, w := range pt.fwd[xp] {
				push(x, w)
			}
		}
		// New fact as pointsTo(x',w) with x'=z, w=x:
		for _, y := range storeRev[z] {
			for _, zp := range pt.fwd[y] {
				push(zp, x)
			}
		}
	}
	return pt.relation("pointsTo")
}

// CSPAResult holds the three mutually recursive CSPA relations.
type CSPAResult struct {
	ValueFlow, MemoryAlias, ValueAlias *storage.Relation
}

// CSPA runs the context-sensitive points-to analysis with a worklist over
// the three mutually recursive relations, using per-relation indexes.
func CSPA(edbs map[string]*storage.Relation, workers int) CSPAResult {
	assignRev := make(map[int32][]int32) // x → y for assign(y, x)
	edbs["assign"].ForEach(func(t []int32) {
		assignRev[t[1]] = append(assignRev[t[1]], t[0])
	})
	derefFwd := make(map[int32][]int32) // y → x for dereference(y, x)
	edbs["dereference"].ForEach(func(t []int32) {
		derefFwd[t[0]] = append(derefFwd[t[0]], t[1])
	})

	vf, ma, va := newRel2(), newRel2(), newRel2()
	type tagged struct {
		rel  byte // 'v' = valueFlow, 'm' = memoryAlias, 'a' = valueAlias
		x, y int32
	}
	var work []tagged
	pushVF := func(x, y int32) {
		if vf.insert(x, y) {
			work = append(work, tagged{'v', x, y})
		}
	}
	pushMA := func(x, y int32) {
		if ma.insert(x, y) {
			work = append(work, tagged{'m', x, y})
		}
	}
	pushVA := func(x, y int32) {
		if va.insert(x, y) {
			work = append(work, tagged{'a', x, y})
		}
	}

	// Base rules.
	edbs["assign"].ForEach(func(t []int32) {
		y, x := t[0], t[1]
		pushVF(y, x)
		pushVF(y, y)
		pushVF(x, x)
		pushMA(y, y)
		pushMA(x, x)
	})

	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		switch e.rel {
		case 'v': // new valueFlow(x, y)
			x, y := e.x, e.y
			// valueFlow(x,y) :- valueFlow(x,z), valueFlow(z,y).
			for _, y2 := range vf.fwd[y] {
				pushVF(x, y2)
			}
			for _, x0 := range vf.rev[x] {
				pushVF(x0, y)
			}
			// valueAlias(a,b) :- valueFlow(z,a), valueFlow(z,b), here z=x.
			for _, b := range vf.fwd[x] {
				pushVA(y, b)
				pushVA(b, y)
			}
			// valueAlias(a,b) :- valueFlow(z,a), memoryAlias(z,w), valueFlow(w,b).
			// New fact as first valueFlow (z=x, a=y):
			for _, w := range ma.fwd[x] {
				for _, b := range vf.fwd[w] {
					pushVA(y, b)
				}
			}
			// New fact as second valueFlow (w=x, b=y):
			for _, z := range ma.rev[x] {
				for _, a := range vf.fwd[z] {
					pushVA(a, y)
				}
			}
		case 'm': // new memoryAlias(z, w)
			z, w := e.x, e.y
			// valueFlow(x,y) :- assign(x,z), memoryAlias(z,y).
			for _, x := range assignRev[z] {
				pushVF(x, w)
			}
			// valueAlias(a,b) :- valueFlow(z',a), memoryAlias(z',w'), valueFlow(w',b), new as MA:
			for _, a := range vf.fwd[z] {
				for _, b := range vf.fwd[w] {
					pushVA(a, b)
				}
			}
		case 'a': // new valueAlias(y, z)
			y, z := e.x, e.y
			// memoryAlias(x,w) :- dereference(y,x), valueAlias(y,z), dereference(z,w).
			for _, x := range derefFwd[y] {
				for _, w := range derefFwd[z] {
					pushMA(x, w)
				}
			}
		}
	}
	return CSPAResult{
		ValueFlow:   vf.relation("valueFlow"),
		MemoryAlias: ma.relation("memoryAlias"),
		ValueAlias:  va.relation("valueAlias"),
	}
}

// CSDA runs the dataflow analysis: null(x,y) :- nullEdge(x,y);
// null(x,y) :- null(x,w), arc(w,y) — a frontier BFS per null source.
func CSDA(edbs map[string]*storage.Relation, workers int) *storage.Relation {
	adj := adjacency(edbs["arc"])
	null := newRel2()
	var frontier []edge
	edbs["nullEdge"].ForEach(func(t []int32) {
		if null.insert(t[0], t[1]) {
			frontier = append(frontier, edge{t[0], t[1]})
		}
	})
	for len(frontier) > 0 {
		var next []edge
		for _, e := range frontier {
			for _, y := range adj[e.y] {
				if null.insert(e.x, y) {
					next = append(next, edge{e.x, y})
				}
			}
		}
		frontier = next
	}
	return null.relation("null")
}
