// Package native is the "Soufflé-like" comparator: hand-specialized,
// compiled-style parallel evaluators for each benchmark program, standing in
// for the native C++ code Soufflé synthesizes (the real system cannot be
// run offline, see DESIGN.md substitution 2). Each evaluator works directly
// on indexed in-memory structures with semi-naive frontiers — no SQL, no
// per-iteration catalog work — so it exhibits Soufflé's profile: excellent
// straight-line speed, workload-dependent parallelism.
package native

import (
	"runtime"
	"sort"
	"sync"

	"recstep/internal/quickstep/storage"
)

// adjacency builds out[x] = sorted {y : rel(x, y)}.
func adjacency(rel *storage.Relation) map[int32][]int32 {
	out := make(map[int32][]int32)
	rel.ForEach(func(t []int32) { out[t[0]] = append(out[t[0]], t[1]) })
	for k := range out {
		s := out[k]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out[k] = dedupSorted(s)
	}
	return out
}

func dedupSorted(s []int32) []int32 {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

func workerCount(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// TC computes the transitive closure: one BFS per source vertex, sources
// partitioned across workers (the specialization Soufflé reaches for TC
// once indexes are inlined).
func TC(arc *storage.Relation, workers int) *storage.Relation {
	adj := adjacency(arc)
	sources := make([]int32, 0, len(adj))
	maxV := int32(-1)
	for s, outs := range adj {
		sources = append(sources, s)
		if s > maxV {
			maxV = s
		}
		for _, y := range outs {
			if y > maxV {
				maxV = y
			}
		}
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	n := int(maxV + 1)
	k := workerCount(workers)

	out := storage.NewRelation("tc", []string{"c0", "c1"})
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			visited := make([]bool, n)
			var stack, touched []int32
			var rows []int32
			for si := w; si < len(sources); si += k {
				src := sources[si]
				stack = append(stack[:0], adj[src]...)
				touched = touched[:0]
				for _, y := range stack {
					if !visited[y] {
						visited[y] = true
						touched = append(touched, y)
					}
				}
				for len(stack) > 0 {
					z := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					rows = append(rows, src, z)
					for _, y := range adj[z] {
						if !visited[y] {
							visited[y] = true
							touched = append(touched, y)
							stack = append(stack, y)
						}
					}
				}
				for _, v := range touched {
					visited[v] = false
				}
			}
			mu.Lock()
			out.AppendRows(rows)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return out
}

// Reach computes vertices reachable from src (plus src itself, per the
// reach(y) :- id(y) base rule).
func Reach(arc *storage.Relation, src int32, workers int) *storage.Relation {
	adj := adjacency(arc)
	visited := map[int32]bool{src: true}
	frontier := []int32{src}
	for len(frontier) > 0 {
		var next []int32
		for _, x := range frontier {
			for _, y := range adj[x] {
				if !visited[y] {
					visited[y] = true
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	out := storage.NewRelation("reach", []string{"c0"})
	keys := make([]int32, 0, len(visited))
	for v := range visited {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		out.Append([]int32{v})
	}
	return out
}

// SG computes same generation with a pair frontier over the parent index,
// mirroring Algorithm 3's derivation order on hash sets.
func SG(arc *storage.Relation, workers int) *storage.Relation {
	adj := adjacency(arc) // parent → children
	type pr struct{ a, b int32 }
	set := make(map[pr]bool)
	var frontier []pr
	add := func(p pr) {
		if !set[p] {
			set[p] = true
			frontier = append(frontier, p)
		}
	}
	// Base rule carries x != y; the recursive rule does not, so diagonal
	// pairs may appear through expansion.
	for _, kids := range adj {
		for _, x := range kids {
			for _, y := range kids {
				if x != y {
					add(pr{x, y})
				}
			}
		}
	}
	for len(frontier) > 0 {
		cur := frontier
		frontier = nil
		for _, p := range cur {
			for _, q := range adj[p.a] {
				for _, r := range adj[p.b] {
					add(pr{q, r})
				}
			}
		}
	}
	out := storage.NewRelation("sg", []string{"c0", "c1"})
	pairs := make([]pr, 0, len(set))
	for p := range set {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		out.Append([]int32{p.a, p.b})
	}
	return out
}

// CC computes connected-component labels by synchronous min-label rounds,
// parallel over the vertex set (the arc relation must contain both edge
// directions, matching the Datalog CC program's usage).
func CC(arc *storage.Relation, workers int) *storage.Relation {
	adj := adjacency(arc)
	var vertices []int32
	seen := map[int32]bool{}
	arc.ForEach(func(t []int32) {
		for _, v := range t {
			if !seen[v] {
				seen[v] = true
				vertices = append(vertices, v)
			}
		}
	})
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	label := make(map[int32]int32, len(vertices))
	for _, v := range vertices {
		label[v] = v
	}
	k := workerCount(workers)
	for {
		type upd struct{ v, l int32 }
		updates := make([][]upd, k)
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []upd
				for i := w; i < len(vertices); i += k {
					x := vertices[i]
					lx := label[x]
					for _, y := range adj[x] {
						if lx < label[y] {
							local = append(local, upd{y, lx})
						}
					}
				}
				updates[w] = local
			}(w)
		}
		wg.Wait()
		changed := false
		for _, batch := range updates {
			for _, u := range batch {
				if u.l < label[u.v] {
					label[u.v] = u.l
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	out := storage.NewRelation("cc2", []string{"c0", "c1"})
	for _, v := range vertices {
		out.Append([]int32{v, label[v]})
	}
	return out
}

// SSSP computes single-source shortest paths by Bellman-Ford rounds over a
// delta frontier (the iteration structure of the Datalog SSSP program).
// arc has arity 3: (x, y, weight).
func SSSP(arc *storage.Relation, src int32, workers int) *storage.Relation {
	type edge struct{ to, w int32 }
	adj := make(map[int32][]edge)
	arc.ForEach(func(t []int32) { adj[t[0]] = append(adj[t[0]], edge{t[1], t[2]}) })
	dist := map[int32]int32{src: 0}
	frontier := []int32{src}
	for len(frontier) > 0 {
		var next []int32
		inNext := map[int32]bool{}
		for _, x := range frontier {
			dx := dist[x]
			for _, e := range adj[x] {
				nd := dx + e.w
				if cur, ok := dist[e.to]; !ok || nd < cur {
					dist[e.to] = nd
					if !inNext[e.to] {
						inNext[e.to] = true
						next = append(next, e.to)
					}
				}
			}
		}
		frontier = next
	}
	out := storage.NewRelation("sssp", []string{"c0", "c1"})
	keys := make([]int32, 0, len(dist))
	for v := range dist {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		out.Append([]int32{v, dist[v]})
	}
	return out
}
