package native

import (
	"reflect"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// recstep evaluates a benchmark program on the core engine for
// cross-checking the specialized evaluators.
func recstep(t *testing.T, name string, edbs map[string]*storage.Relation) map[string]*storage.Relation {
	t.Helper()
	prog, err := programs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultOptions()).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Relations
}

func sameRows(t *testing.T, what string, a, b *storage.Relation) {
	t.Helper()
	if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
		t.Fatalf("%s: native (%d tuples) disagrees with RecStep (%d tuples)",
			what, a.NumTuples(), b.NumTuples())
	}
}

func TestTCMatchesRecStep(t *testing.T) {
	arc := graphs.GnP(60, 0.05, 1)
	want := recstep(t, "tc", map[string]*storage.Relation{"arc": arc})["tc"]
	sameRows(t, "tc", TC(arc, 4), want)
}

func TestTCWorkerCounts(t *testing.T) {
	arc := graphs.GnP(40, 0.08, 2)
	base := TC(arc, 1)
	for _, k := range []int{2, 8} {
		sameRows(t, "tc workers", TC(arc, k), base)
	}
}

func TestSGMatchesRecStep(t *testing.T) {
	arc := graphs.GnP(30, 0.08, 3)
	want := recstep(t, "sg", map[string]*storage.Relation{"arc": arc})["sg"]
	sameRows(t, "sg", SG(arc, 4), want)
}

func TestReachMatchesRecStep(t *testing.T) {
	arc := graphs.RMAT(256, 1024, 4)
	want := recstep(t, "reach", map[string]*storage.Relation{
		"arc": arc, "id": graphs.SingleSource(0),
	})["reach"]
	sameRows(t, "reach", Reach(arc, 0, 4), want)
}

func TestCCMatchesRecStep(t *testing.T) {
	arc := graphs.Undirected(graphs.RMAT(128, 300, 5))
	want := recstep(t, "cc", map[string]*storage.Relation{"arc": arc})["cc2"]
	sameRows(t, "cc2", CC(arc, 4), want)
}

func TestSSSPMatchesRecStep(t *testing.T) {
	arc := graphs.Weighted(graphs.RMAT(128, 512, 6), 50, 6)
	want := recstep(t, "sssp", map[string]*storage.Relation{
		"arc": arc, "id": graphs.SingleSource(0),
	})["sssp"]
	sameRows(t, "sssp", SSSP(arc, 0, 4), want)
}

func TestAndersenMatchesRecStep(t *testing.T) {
	edbs := pa.AndersenSized(150, 7)
	want := recstep(t, "aa", edbs)["pointsTo"]
	sameRows(t, "pointsTo", Andersen(edbs, 4), want)
}

func TestAndersenLargerDataset(t *testing.T) {
	edbs, err := pa.Andersen(3)
	if err != nil {
		t.Fatal(err)
	}
	want := recstep(t, "aa", edbs)["pointsTo"]
	sameRows(t, "pointsTo d3", Andersen(edbs, 4), want)
}

func TestCSPAMatchesRecStep(t *testing.T) {
	edbs := pa.CSPASized(pa.CSPAConfig{Vars: 120, AssignPer: 13, DerefRatio: 3, Seed: 9})
	want := recstep(t, "cspa", edbs)
	got := CSPA(edbs, 4)
	sameRows(t, "valueFlow", got.ValueFlow, want["valueFlow"])
	sameRows(t, "memoryAlias", got.MemoryAlias, want["memoryAlias"])
	sameRows(t, "valueAlias", got.ValueAlias, want["valueAlias"])
}

func TestCSDAMatchesRecStep(t *testing.T) {
	edbs := pa.CSDASized(4, 60, 4, 8)
	want := recstep(t, "csda", edbs)["null"]
	sameRows(t, "null", CSDA(edbs, 4), want)
}
