package worklist

import "recstep/internal/quickstep/storage"

// Prebuilt grammars for the binary-relation benchmarks Graspan can express.

// TC labels.
const (
	tcArc Label = iota
	tcTC
	tcLabels
)

// TC evaluates transitive closure: tc ⊇ arc, tc ⊇ tc∘arc.
func TC(arc *storage.Relation) *storage.Relation {
	e := New(Grammar{
		NumLabels: int(tcLabels),
		Unary:     []UnaryProd{{Head: tcTC, Body: tcArc}},
		Binary:    []BinaryProd{{Head: tcTC, B: tcTC, C: tcArc}},
	})
	if err := e.AddRelation(tcArc, arc); err != nil {
		panic(err)
	}
	e.Run()
	return e.Relation(tcTC, "tc")
}

// CSDA labels.
const (
	csdaArc Label = iota
	csdaNullEdge
	csdaNull
	csdaLabels
)

// CSDA evaluates the dataflow analysis: null ⊇ nullEdge, null ⊇ null∘arc.
func CSDA(edbs map[string]*storage.Relation) *storage.Relation {
	e := New(Grammar{
		NumLabels: int(csdaLabels),
		Unary:     []UnaryProd{{Head: csdaNull, Body: csdaNullEdge}},
		Binary:    []BinaryProd{{Head: csdaNull, B: csdaNull, C: csdaArc}},
	})
	if err := e.AddRelation(csdaArc, edbs["arc"]); err != nil {
		panic(err)
	}
	if err := e.AddRelation(csdaNullEdge, edbs["nullEdge"]); err != nil {
		panic(err)
	}
	e.Run()
	return e.Relation(csdaNull, "null")
}

// CSPA labels. The ternary Datalog rules factor into binary compositions
// through intermediate labels, exactly as Graspan's grammar formulation
// does:
//
//	vf  ⊇ assign | assign∘ma | vf∘vf | id(assign endpoints)
//	va  ⊇ vfᵀ∘vf | vfᵀ∘mvf            (mvf = ma∘vf)
//	ma  ⊇ dᵀva∘d (via dva = dᵀ∘va)    | id(assign endpoints)
const (
	cspaAssign Label = iota
	cspaDeref
	cspaVF
	cspaMA
	cspaVA
	cspaMVF // ma ∘ vf
	cspaDVA // derefᵀ ∘ va
	cspaLabels
)

// CSPA evaluates the context-sensitive points-to analysis grammar.
func CSPA(edbs map[string]*storage.Relation) (vf, ma, va *storage.Relation) {
	e := New(Grammar{
		NumLabels: int(cspaLabels),
		Unary: []UnaryProd{
			{Head: cspaVF, Body: cspaAssign},
		},
		Binary: []BinaryProd{
			{Head: cspaVF, B: cspaAssign, C: cspaMA},
			{Head: cspaVF, B: cspaVF, C: cspaVF},
			{Head: cspaVA, B: cspaVF, C: cspaVF, TB: true},
			{Head: cspaMVF, B: cspaMA, C: cspaVF},
			{Head: cspaVA, B: cspaVF, C: cspaMVF, TB: true},
			{Head: cspaDVA, B: cspaDeref, C: cspaVA, TB: true},
			{Head: cspaMA, B: cspaDVA, C: cspaDeref},
		},
	})
	if err := e.AddRelation(cspaAssign, edbs["assign"]); err != nil {
		panic(err)
	}
	if err := e.AddRelation(cspaDeref, edbs["dereference"]); err != nil {
		panic(err)
	}
	// Reflexive base facts: valueFlow(x,x) and memoryAlias(x,x) for every
	// assign endpoint.
	edbs["assign"].ForEach(func(t []int32) {
		for _, v := range t {
			e.Add(cspaVF, v, v)
			e.Add(cspaMA, v, v)
		}
	})
	e.Run()
	return e.Relation(cspaVF, "valueFlow"), e.Relation(cspaMA, "memoryAlias"), e.Relation(cspaVA, "valueAlias")
}
