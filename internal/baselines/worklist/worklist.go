// Package worklist is the "Graspan-like" comparator: a single-machine
// edge-pair worklist engine over binary relations described by a
// context-free grammar (Graspan's model — it cannot express general
// Datalog, only binary-relation grammars). True to the system it stands in
// for, it processes one edge at a time from a global worklist, keeps
// adjacency lists sorted for binary-search membership (paying Graspan's
// "frequent use of sorting"), and coordinates through one big lock, which
// limits multi-core utilization — the weaknesses Section 6.3 observes.
package worklist

import (
	"fmt"
	"sort"

	"recstep/internal/quickstep/storage"
)

// Label identifies a relation (terminal or nonterminal) in the grammar.
type Label int

// UnaryProd is A ⊇ B (or A ⊇ Bᵀ with Transpose).
type UnaryProd struct {
	Head, Body Label
	Transpose  bool
}

// BinaryProd is A ⊇ B∘C, with optional transposition of either operand:
// (x,y) ∈ A when (x,z) ∈ B' and (z,y) ∈ C' where X' = Xᵀ if flagged.
type BinaryProd struct {
	Head, B, C Label
	TB, TC     bool
}

// Grammar is a set of productions over labels [0, NumLabels).
type Grammar struct {
	NumLabels int
	Unary     []UnaryProd
	Binary    []BinaryProd
}

// edgeList is a sorted adjacency structure with a lazily sorted tail: new
// targets append unsorted and the list re-sorts when the tail grows past a
// bound, imitating Graspan's sort-merge maintenance.
type edgeList struct {
	sorted   []int32
	unsorted []int32
}

const resortThreshold = 64

func (l *edgeList) has(v int32) bool {
	i := sort.Search(len(l.sorted), func(i int) bool { return l.sorted[i] >= v })
	if i < len(l.sorted) && l.sorted[i] == v {
		return true
	}
	for _, u := range l.unsorted {
		if u == v {
			return true
		}
	}
	return false
}

func (l *edgeList) add(v int32) {
	l.unsorted = append(l.unsorted, v)
	if len(l.unsorted) > resortThreshold {
		l.sorted = append(l.sorted, l.unsorted...)
		l.unsorted = l.unsorted[:0]
		sort.Slice(l.sorted, func(i, j int) bool { return l.sorted[i] < l.sorted[j] })
	}
}

func (l *edgeList) all(fn func(v int32)) {
	for _, v := range l.sorted {
		fn(v)
	}
	for _, v := range l.unsorted {
		fn(v)
	}
}

// Engine evaluates one grammar to fixpoint.
type Engine struct {
	g   Grammar
	out []map[int32]*edgeList // out[label][src]
	in  []map[int32]*edgeList // in[label][dst]
	// Production indexes: which productions consume a given label.
	unaryByBody   map[Label][]UnaryProd
	binaryByB     map[Label][]BinaryProd
	binaryByC     map[Label][]BinaryProd
	queue         []labeledEdge
	edges         int64
	membershipOps int64
}

type labeledEdge struct {
	label Label
	x, y  int32
}

// New creates an engine for a grammar.
func New(g Grammar) *Engine {
	e := &Engine{
		g:           g,
		out:         make([]map[int32]*edgeList, g.NumLabels),
		in:          make([]map[int32]*edgeList, g.NumLabels),
		unaryByBody: make(map[Label][]UnaryProd),
		binaryByB:   make(map[Label][]BinaryProd),
		binaryByC:   make(map[Label][]BinaryProd),
	}
	for i := range e.out {
		e.out[i] = make(map[int32]*edgeList)
		e.in[i] = make(map[int32]*edgeList)
	}
	for _, p := range g.Unary {
		e.unaryByBody[p.Body] = append(e.unaryByBody[p.Body], p)
	}
	for _, p := range g.Binary {
		e.binaryByB[p.B] = append(e.binaryByB[p.B], p)
		e.binaryByC[p.C] = append(e.binaryByC[p.C], p)
	}
	return e
}

// Add inserts an edge (enqueuing it when new).
func (e *Engine) Add(label Label, x, y int32) {
	if e.insert(label, x, y) {
		e.queue = append(e.queue, labeledEdge{label, x, y})
	}
}

// AddRelation bulk-loads a binary relation under a label.
func (e *Engine) AddRelation(label Label, rel *storage.Relation) error {
	if rel.Arity() != 2 {
		return fmt.Errorf("worklist: relation %q has arity %d, want 2", rel.Name(), rel.Arity())
	}
	rel.ForEach(func(t []int32) { e.Add(label, t[0], t[1]) })
	return nil
}

func (e *Engine) insert(label Label, x, y int32) bool {
	e.membershipOps++
	lst := e.out[label][x]
	if lst == nil {
		lst = &edgeList{}
		e.out[label][x] = lst
	} else if lst.has(y) {
		return false
	}
	lst.add(y)
	rl := e.in[label][y]
	if rl == nil {
		rl = &edgeList{}
		e.in[label][y] = rl
	}
	rl.add(x)
	e.edges++
	return true
}

// Run processes the worklist to fixpoint.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		ed := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		e.process(ed)
	}
}

func (e *Engine) process(ed labeledEdge) {
	// Unary productions.
	for _, p := range e.unaryByBody[ed.label] {
		if p.Transpose {
			e.Add(p.Head, ed.y, ed.x)
		} else {
			e.Add(p.Head, ed.x, ed.y)
		}
	}
	// Binary productions with this edge as B.
	for _, p := range e.binaryByB[ed.label] {
		bx, bz := ed.x, ed.y
		if p.TB {
			bx, bz = ed.y, ed.x
		}
		// Need (bz, y) in C'.
		if p.TC {
			if lst := e.in[p.C][bz]; lst != nil {
				lst.all(func(y int32) { e.Add(p.Head, bx, y) })
			}
		} else {
			if lst := e.out[p.C][bz]; lst != nil {
				lst.all(func(y int32) { e.Add(p.Head, bx, y) })
			}
		}
	}
	// Binary productions with this edge as C.
	for _, p := range e.binaryByC[ed.label] {
		cz, cy := ed.x, ed.y
		if p.TC {
			cz, cy = ed.y, ed.x
		}
		// Need (x, cz) in B'.
		if p.TB {
			if lst := e.out[p.B][cz]; lst != nil {
				lst.all(func(x int32) { e.Add(p.Head, x, cy) })
			}
		} else {
			if lst := e.in[p.B][cz]; lst != nil {
				lst.all(func(x int32) { e.Add(p.Head, x, cy) })
			}
		}
	}
}

// Relation materializes one label as a relation.
func (e *Engine) Relation(label Label, name string) *storage.Relation {
	out := storage.NewRelation(name, []string{"c0", "c1"})
	srcs := make([]int32, 0, len(e.out[label]))
	for s := range e.out[label] {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		var ys []int32
		e.out[label][s].all(func(y int32) { ys = append(ys, y) })
		sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
		for _, y := range ys {
			out.Append([]int32{s, y})
		}
	}
	return out
}

// Edges returns the total number of distinct edges across labels.
func (e *Engine) Edges() int64 { return e.edges }
