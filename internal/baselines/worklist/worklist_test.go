package worklist

import (
	"reflect"
	"testing"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

func recstep(t *testing.T, name string, edbs map[string]*storage.Relation) map[string]*storage.Relation {
	t.Helper()
	prog, err := programs.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultOptions()).Run(prog, edbs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Relations
}

func sameRows(t *testing.T, what string, a, b *storage.Relation) {
	t.Helper()
	if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
		t.Fatalf("%s: worklist (%d tuples) disagrees with RecStep (%d tuples)",
			what, a.NumTuples(), b.NumTuples())
	}
}

func TestEdgeListSortedMembership(t *testing.T) {
	l := &edgeList{}
	for i := int32(0); i < 200; i++ {
		l.add(i * 3)
	}
	if !l.has(33) || l.has(34) {
		t.Fatal("membership broken")
	}
	if len(l.unsorted) > resortThreshold {
		t.Fatal("resort never triggered")
	}
	var count int
	l.all(func(int32) { count++ })
	if count != 200 {
		t.Fatalf("all visited %d, want 200", count)
	}
}

func TestTCMatchesRecStep(t *testing.T) {
	arc := graphs.GnP(50, 0.05, 1)
	want := recstep(t, "tc", map[string]*storage.Relation{"arc": arc})["tc"]
	sameRows(t, "tc", TC(arc), want)
}

func TestCSDAMatchesRecStep(t *testing.T) {
	edbs := pa.CSDASized(4, 50, 4, 2)
	want := recstep(t, "csda", edbs)["null"]
	sameRows(t, "null", CSDA(edbs), want)
}

func TestCSPAMatchesRecStep(t *testing.T) {
	edbs := pa.CSPASized(pa.CSPAConfig{Vars: 100, AssignPer: 13, DerefRatio: 3, Seed: 5})
	want := recstep(t, "cspa", edbs)
	vf, ma, va := CSPA(edbs)
	sameRows(t, "valueFlow", vf, want["valueFlow"])
	sameRows(t, "memoryAlias", ma, want["memoryAlias"])
	sameRows(t, "valueAlias", va, want["valueAlias"])
}

func TestTransposedProductions(t *testing.T) {
	// A ⊇ Bᵀ: edge (1,2) in B must yield (2,1) in A.
	const (
		lB Label = iota
		lA
		n
	)
	e := New(Grammar{NumLabels: int(n), Unary: []UnaryProd{{Head: lA, Body: lB, Transpose: true}}})
	e.Add(lB, 1, 2)
	e.Run()
	rel := e.Relation(lA, "a")
	if !reflect.DeepEqual(rel.SortedRows(), []int32{2, 1}) {
		t.Fatalf("rows = %v", rel.SortedRows())
	}
}

func TestBinaryTransposeBothSides(t *testing.T) {
	// A ⊇ Bᵀ∘Cᵀ: B(2,1), C(3,2) → Bᵀ(1,2), Cᵀ(2,3) → A(1,3).
	const (
		lB Label = iota
		lC
		lA
		n
	)
	e := New(Grammar{NumLabels: int(n), Binary: []BinaryProd{{Head: lA, B: lB, C: lC, TB: true, TC: true}}})
	e.Add(lB, 2, 1)
	e.Add(lC, 3, 2)
	e.Run()
	rel := e.Relation(lA, "a")
	if !reflect.DeepEqual(rel.SortedRows(), []int32{1, 3}) {
		t.Fatalf("rows = %v", rel.SortedRows())
	}
}

func TestAddRelationArityCheck(t *testing.T) {
	e := New(Grammar{NumLabels: 1})
	bad := storage.NewRelation("x", []string{"c0"})
	if err := e.AddRelation(0, bad); err == nil {
		t.Fatal("arity 1 should be rejected")
	}
}

func TestEdgesCounter(t *testing.T) {
	e := New(Grammar{NumLabels: 1})
	e.Add(0, 1, 2)
	e.Add(0, 1, 2) // duplicate
	e.Add(0, 2, 3)
	if e.Edges() != 2 {
		t.Fatalf("Edges = %d, want 2", e.Edges())
	}
}
