// Package bitmatrix implements Parallel Bit-Matrix Evaluation (PBME,
// Section 5.3): dense binary IDB relations are represented as n×n bit
// matrices instead of tuple tables, fusing join and deduplication into
// single bit operations and shrinking memory from O(tuples·8B) to n²/8
// bytes (Figure 6). Transitive closure (Algorithm 2) partitions matrix rows
// round-robin with zero coordination; same generation (Algorithm 3) writes
// to arbitrary rows and therefore sets bits with CAS, optionally
// re-balancing skewed deltas through a global work-order pool (Figure 7).
package bitmatrix

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"recstep/internal/quickstep/storage"
)

// Matrix is an n×n bit matrix stored row-major in 64-bit words.
type Matrix struct {
	n     int
	words int
	bits  []uint64
}

// New returns an empty n×n matrix.
func New(n int) *Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("bitmatrix: invalid dimension %d", n))
	}
	words := (n + 63) / 64
	return &Matrix{n: n, words: words, bits: make([]uint64, n*words)}
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// MemoryBytes reports the matrix footprint — the quantity Figure 6 compares
// against hash-table-based evaluation.
func (m *Matrix) MemoryBytes() int64 { return int64(len(m.bits)) * 8 }

// Row returns the word slice of row i.
func (m *Matrix) Row(i int) []uint64 {
	off := i * m.words
	return m.bits[off : off+m.words : off+m.words]
}

// Set sets bit (i, j). Single-writer rows only (TC's zero-coordination
// partitioning); use SetAtomic when rows are shared.
func (m *Matrix) Set(i, j int) {
	m.bits[i*m.words+j/64] |= 1 << (uint(j) % 64)
}

// Get reports bit (i, j).
func (m *Matrix) Get(i, j int) bool {
	return m.bits[i*m.words+j/64]&(1<<(uint(j)%64)) != 0
}

// SetAtomic sets bit (i, j) with a CAS loop, returning true when this call
// flipped it from 0 to 1. Safe for concurrent writers to the same row.
func (m *Matrix) SetAtomic(i, j int) bool {
	addr := &m.bits[i*m.words+j/64]
	mask := uint64(1) << (uint(j) % 64)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{n: m.n, words: m.words, bits: make([]uint64, len(m.bits))}
	copy(out.bits, m.bits)
	return out
}

// Count returns the number of set bits (the relation's cardinality).
func (m *Matrix) Count() int64 {
	var total int64
	for _, w := range m.bits {
		total += int64(bits.OnesCount64(w))
	}
	return total
}

// FromEdges builds the matrix of a binary relation whose active domain is
// {0..n-1}. Out-of-range vertices are rejected.
func FromEdges(rel *storage.Relation, n int) (*Matrix, error) {
	if rel.Arity() != 2 {
		return nil, fmt.Errorf("bitmatrix: relation %q has arity %d, want 2", rel.Name(), rel.Arity())
	}
	m := New(n)
	var err error
	rel.ForEach(func(t []int32) {
		if err != nil {
			return
		}
		x, y := int(t[0]), int(t[1])
		if x < 0 || x >= n || y < 0 || y >= n {
			err = fmt.Errorf("bitmatrix: edge (%d,%d) outside domain [0,%d)", x, y, n)
			return
		}
		m.Set(x, y)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ToRelation materializes the matrix as a tuple relation.
func (m *Matrix) ToRelation(name string) *storage.Relation {
	rel := storage.NewRelation(name, []string{"c0", "c1"})
	row := make([]int32, 2)
	for i := 0; i < m.n; i++ {
		r := m.Row(i)
		for w, word := range r {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				row[0], row[1] = int32(i), int32(j)
				rel.Append(row)
			}
		}
	}
	return rel
}

// forEachBit iterates the set bits of one row's word slice.
func forEachBit(words []uint64, fn func(j int)) {
	for w, word := range words {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// FitsMemory implements the paper's build guard: construct the bit matrix
// only when it (plus index structures) fits the given budget.
func FitsMemory(n int, budgetBytes int64) bool {
	words := int64((n + 63) / 64)
	return int64(n)*words*8 <= budgetBytes
}
