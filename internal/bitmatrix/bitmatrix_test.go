package bitmatrix

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"recstep/internal/quickstep/storage"
)

func TestSetGetCount(t *testing.T) {
	m := New(100)
	m.Set(0, 0)
	m.Set(99, 99)
	m.Set(5, 64) // crosses the word boundary
	if !m.Get(0, 0) || !m.Get(99, 99) || !m.Get(5, 64) {
		t.Fatal("set bits not readable")
	}
	if m.Get(0, 1) || m.Get(64, 5) {
		t.Fatal("unset bits read as set")
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
}

func TestSetAtomicReportsFirstSetter(t *testing.T) {
	m := New(64)
	if !m.SetAtomic(1, 2) {
		t.Fatal("first SetAtomic should return true")
	}
	if m.SetAtomic(1, 2) {
		t.Fatal("second SetAtomic should return false")
	}
}

func TestSetAtomicConcurrentExactlyOnce(t *testing.T) {
	m := New(256)
	const workers = 8
	var wins [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				for j := 0; j < 256; j++ {
					if m.SetAtomic(i, j) {
						wins[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != 256*256 {
		t.Fatalf("total wins = %d, want %d (each bit claimed exactly once)", total, 256*256)
	}
}

func TestFromEdgesToRelationRoundTrip(t *testing.T) {
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	rel.Append([]int32{0, 1})
	rel.Append([]int32{2, 3})
	m, err := FromEdges(rel, 4)
	if err != nil {
		t.Fatal(err)
	}
	back := m.ToRelation("arc2")
	if !reflect.DeepEqual(back.SortedRows(), rel.SortedRows()) {
		t.Fatal("round trip mismatch")
	}
}

func TestFromEdgesErrors(t *testing.T) {
	bad := storage.NewRelation("t", []string{"c0"})
	if _, err := FromEdges(bad, 4); err == nil {
		t.Fatal("arity 1 should be rejected")
	}
	oob := storage.NewRelation("arc", []string{"c0", "c1"})
	oob.Append([]int32{0, 9})
	if _, err := FromEdges(oob, 4); err == nil {
		t.Fatal("out-of-domain edge should be rejected")
	}
}

func TestFitsMemory(t *testing.T) {
	if !FitsMemory(1024, 1<<20) {
		t.Fatal("1k×1k matrix is 128KiB, fits in 1MiB")
	}
	if FitsMemory(100000, 1<<20) {
		t.Fatal("100k×100k matrix cannot fit in 1MiB")
	}
}

// refTCBits computes closure on the bit matrix by Floyd-Warshall-style
// saturation for cross-checking.
func refTCBits(arc *Matrix) map[[2]int]bool {
	n := arc.N()
	reach := make(map[[2]int]bool)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if arc.Get(i, j) {
				reach[[2]int{i, j}] = true
			}
		}
	}
	for {
		added := false
		for p := range reach {
			for j := 0; j < n; j++ {
				if arc.Get(p[1], j) && !reach[[2]int{p[0], j}] {
					reach[[2]int{p[0], j}] = true
					added = true
				}
			}
		}
		if !added {
			return reach
		}
	}
}

func TestTransitiveClosureMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arc := New(40)
	for i := 0; i < 80; i++ {
		arc.Set(rng.Intn(40), rng.Intn(40))
	}
	tc := TransitiveClosure(arc, 4)
	want := refTCBits(arc)
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if tc.Get(i, j) != want[[2]int{i, j}] {
				t.Fatalf("tc(%d,%d) = %t, want %t", i, j, tc.Get(i, j), want[[2]int{i, j}])
			}
		}
	}
}

func TestTransitiveClosureThreadCountIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arc := New(64)
	for i := 0; i < 200; i++ {
		arc.Set(rng.Intn(64), rng.Intn(64))
	}
	base := TransitiveClosure(arc, 1)
	for _, k := range []int{2, 4, 8} {
		got := TransitiveClosure(arc, k)
		if !reflect.DeepEqual(got.bits, base.bits) {
			t.Fatalf("k=%d disagrees with serial closure", k)
		}
	}
}

// refSG computes same-generation by brute-force fixpoint.
func refSG(arc *Matrix) map[[2]int]bool {
	n := arc.N()
	sg := make(map[[2]int]bool)
	var parents [][2]int
	for p := 0; p < n; p++ {
		for x := 0; x < n; x++ {
			if arc.Get(p, x) {
				parents = append(parents, [2]int{p, x})
			}
		}
	}
	for _, a := range parents {
		for _, b := range parents {
			if a[0] == b[0] && a[1] != b[1] {
				sg[[2]int{a[1], b[1]}] = true
			}
		}
	}
	for {
		added := false
		// The recursive rule has no x != y guard, so diagonal pairs may
		// appear through expansion.
		for p := range sg {
			for _, a := range parents {
				for _, b := range parents {
					if a[0] == p[0] && b[0] == p[1] {
						if !sg[[2]int{a[1], b[1]}] {
							sg[[2]int{a[1], b[1]}] = true
							added = true
						}
					}
				}
			}
		}
		if !added {
			return sg
		}
	}
}

func sgPairsOf(m *Matrix) [][2]int {
	var out [][2]int
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if m.Get(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

func TestSameGenerationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arc := New(24)
	for i := 0; i < 40; i++ {
		arc.Set(rng.Intn(24), rng.Intn(24))
	}
	want := refSG(arc)
	for _, coord := range []bool{false, true} {
		got := SameGeneration(arc, SGOptions{Threads: 4, Coordinate: coord, Threshold: 8})
		pairs := sgPairsOf(got)
		if len(pairs) != len(want) {
			t.Fatalf("coord=%t: sg size %d, want %d", coord, len(pairs), len(want))
		}
		for _, p := range pairs {
			if !want[p] {
				t.Fatalf("coord=%t: unexpected sg%v", coord, p)
			}
		}
	}
}

func TestSameGenerationSGWait(t *testing.T) {
	// Note: x != y is enforced: diagonal never set even through expansion.
	arc := New(8)
	// Tree: 0→1, 0→2; 1→3, 2→4: sg(1,2),(2,1),(3,4),(4,3).
	arc.Set(0, 1)
	arc.Set(0, 2)
	arc.Set(1, 3)
	arc.Set(2, 4)
	sg := SameGeneration(arc, SGOptions{Threads: 2})
	want := [][2]int{{1, 2}, {2, 1}, {3, 4}, {4, 3}}
	if got := sgPairsOf(sg); !reflect.DeepEqual(got, want) {
		t.Fatalf("sg = %v, want %v", got, want)
	}
}

func TestBuildAdjacency(t *testing.T) {
	arc := New(4)
	arc.Set(1, 0)
	arc.Set(1, 3)
	adj := BuildAdjacency(arc)
	if !reflect.DeepEqual(adj[1], []int32{0, 3}) {
		t.Fatalf("adj[1] = %v", adj[1])
	}
	if adj[0] != nil {
		t.Fatalf("adj[0] = %v, want empty", adj[0])
	}
}

// Property: PBME TC equals the reference on random small graphs.
func TestTransitiveClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(16)
		arc := New(n)
		for i := 0; i < n*2; i++ {
			arc.Set(rng.Intn(n), rng.Intn(n))
		}
		tc := TransitiveClosure(arc, 3)
		want := refTCBits(arc)
		if int(tc.Count()) != len(want) {
			return false
		}
		for p := range want {
			if !tc.Get(p[0], p[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := New(1024)
	if got := m.MemoryBytes(); got != 1024*16*8 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 1024*16*8)
	}
}
