package bitmatrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// TransitiveClosure runs Algorithm 2: per-row frontier expansion with rows
// partitioned round-robin over k threads. Each thread only ever writes its
// own rows, so no synchronization is needed (zero-coordination).
func TransitiveClosure(arc *Matrix, k int) *Matrix {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	tc := arc.Clone() // Mtc ← Marc
	n, words := arc.n, arc.words
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			frontier := make([]uint64, words)
			next := make([]uint64, words)
			scratch := make([]uint64, words)
			for i := p; i < n; i += k { // round-robin row partition
				cur := tc.Row(i)
				copy(frontier, cur) // δ ← {u : Mtc[i,u] = 1}
				for {
					for w := range scratch {
						scratch[w] = 0
					}
					// δn ← ∪_{t ∈ δ} Marc[t, ·]
					forEachBit(frontier, func(t int) {
						at := arc.Row(t)
						for w := range scratch {
							scratch[w] |= at[w]
						}
					})
					nonEmpty := false
					for w := range scratch {
						nb := scratch[w] &^ cur[w] // only bits not yet in Mtc[i,·]
						next[w] = nb
						if nb != 0 {
							cur[w] |= nb
							nonEmpty = true
						}
					}
					if !nonEmpty {
						break
					}
					frontier, next = next, frontier
				}
			}
		}(p)
	}
	wg.Wait()
	return tc
}

// Adjacency is the vector index Varc of Algorithm 3: Varc[x] = {y : arc(x,y)}.
type Adjacency [][]int32

// BuildAdjacency constructs the index from an arc matrix.
func BuildAdjacency(arc *Matrix) Adjacency {
	adj := make(Adjacency, arc.n)
	for i := 0; i < arc.n; i++ {
		var out []int32
		forEachBit(arc.Row(i), func(j int) { out = append(out, int32(j)) })
		adj[i] = out
	}
	return adj
}

// sgPair is one δ element of Algorithm 3.
type sgPair struct{ a, b int32 }

// SGOptions configures SameGeneration.
type SGOptions struct {
	Threads int
	// Coordinate enables the work-order re-balancing of Figure 7: a thread
	// whose δ exceeds Threshold packs the surplus into work orders on a
	// global pool that idle threads drain.
	Coordinate bool
	// Threshold is the δ size above which surplus work is shared (the
	// trade-off parameter t discussed with Figure 7). 0 selects a default.
	Threshold int
}

// SameGeneration runs Algorithm 3: Msg is seeded with sibling pairs
// (children of a common parent, x ≠ y) and expanded through Varc on both
// coordinates. Bits are set with CAS because any thread can write any row;
// each thread processes exactly the pairs whose bit it set.
func SameGeneration(arc *Matrix, opts SGOptions) *Matrix {
	k := opts.Threads
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 4096
	}
	adj := BuildAdjacency(arc)
	sg := New(arc.n)

	// Seed: Msg ← Π(Marc1 ⋈ Marc2), x1 = x2, y1 ≠ y2 (line 9), partitioned
	// by parent. Seeds are claimed via SetAtomic so each pair enters exactly
	// one thread's δ.
	seeds := make([][]sgPair, k)
	var wg sync.WaitGroup
	for p := 0; p < k; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var local []sgPair
			for parent := p; parent < arc.n; parent += k {
				kids := adj[parent]
				for _, x := range kids {
					for _, y := range kids {
						if x != y && sg.SetAtomic(int(x), int(y)) {
							local = append(local, sgPair{x, y})
						}
					}
				}
			}
			seeds[p] = local
		}(p)
	}
	wg.Wait()

	if !opts.Coordinate {
		sgExpandUncoordinated(sg, adj, seeds)
		return sg
	}
	sgExpandCoordinated(sg, adj, seeds, threshold)
	return sg
}

// sgExpandUncoordinated: each thread expands its own δ until exhausted.
// Work is "not tied to data partitions" (the δ a thread generates may
// concern any row), so skew between threads goes unrepaired — the effect
// Figure 7 demonstrates.
func sgExpandUncoordinated(sg *Matrix, adj Adjacency, seeds [][]sgPair) {
	var wg sync.WaitGroup
	for p := range seeds {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			delta := seeds[p]
			var next []sgPair
			for len(delta) > 0 {
				next = next[:0]
				for _, pr := range delta {
					for _, q := range adj[pr.a] {
						for _, r := range adj[pr.b] {
							if sg.SetAtomic(int(q), int(r)) {
								next = append(next, sgPair{q, r})
							}
						}
					}
				}
				delta, next = next, delta
			}
		}(p)
	}
	wg.Wait()
}

// sgExpandCoordinated re-balances: when a thread's freshly generated δ
// exceeds the threshold it packs the surplus into work orders on a global
// pool; threads that run dry grab orders instead of idling.
func sgExpandCoordinated(sg *Matrix, adj Adjacency, seeds [][]sgPair, threshold int) {
	orders := make(chan []sgPair, 1<<14)
	var outstanding atomic.Int64 // seed batches + queued orders not yet done
	outstanding.Add(int64(len(seeds)))

	process := func(delta []sgPair) {
		var next []sgPair
		for len(delta) > 0 {
			next = next[:0]
			for _, pr := range delta {
				for _, q := range adj[pr.a] {
					for _, r := range adj[pr.b] {
						if sg.SetAtomic(int(q), int(r)) {
							next = append(next, sgPair{q, r})
						}
					}
				}
			}
			// Share surplus beyond the threshold.
			for len(next) > threshold {
				cut := next[len(next)-threshold:]
				order := make([]sgPair, len(cut))
				copy(order, cut)
				next = next[:len(next)-threshold]
				select {
				case orders <- order:
					outstanding.Add(1)
				default:
					// Pool full: keep the work local rather than block.
					next = append(next, order...)
					goto drained
				}
			}
		drained:
			delta, next = next, delta
		}
	}

	var wg sync.WaitGroup
	for p := range seeds {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			process(seeds[p])
			outstanding.Add(-1)
			for {
				select {
				case order := <-orders:
					process(order)
					outstanding.Add(-1)
				default:
					if outstanding.Load() == 0 {
						return
					}
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
}
