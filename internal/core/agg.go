package core

import (
	"fmt"
	"sort"

	"recstep/internal/datalog/analysis"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/optimizer"
	"recstep/internal/quickstep/storage"
)

// aggMerge maintains the running state of one recursive aggregate (MIN or
// MAX inside recursion, Section 3.3). Instead of dedup + set difference, the
// engine merges each iteration's candidate tuples into a per-group best
// value; the delta is the set of groups whose value improved. MIN/MAX are
// monotone under set growth, so this converges to the same fixpoint as
// naive evaluation.
//
// The state is radix-partitioned on the group columns: a group's rows all
// route to one partition, so each partition merges against its private
// best-map with no locks — the partition-parallel aggregate merge that lets
// CC and SSSP run the partition-native pipeline instead of the staged
// serial one. The fan-out is fixed at the first merge (re-bucketing the
// state would re-hash every group) and both ∆R and the materialized full
// relation are emitted as carried partitioned relations, so the next
// iteration's candidate query lands pre-partitioned (fused scatter) and its
// hash builds over ∆R reuse the carried partitions in place. parallel=false
// keeps the serial single-map path (the staged ablation).
type aggMerge struct {
	spec     *analysis.AggSpec
	arity    int
	isMin    bool
	parallel bool
	// fixedParts pins the fan-out (the -partitions override); 0 = choose
	// from the first candidate's cardinality.
	fixedParts int
	// parts is the state fan-out: 0 = not yet chosen, 1 = serial.
	parts int
	// best maps the packed group key to the current aggregate value;
	// groups retains the group column values for materialization. One map
	// pair per partition (index 0 holds everything on the serial path).
	best   []map[string]int32
	groups []map[string][]int32
}

func newAggMerge(spec *analysis.AggSpec, arity int) *aggMerge {
	if spec == nil || (spec.Func != "MIN" && spec.Func != "MAX") {
		panic(fmt.Sprintf("core: recursive aggregate requires MIN or MAX, got %+v", spec))
	}
	return &aggMerge{
		spec:  spec,
		arity: arity,
		isMin: spec.Func == "MIN",
	}
}

// partitioning returns the descriptor the state is bucketed on, once a
// partitioned fan-out has been fixed. The engine registers it as the output
// partitioning of the candidate query, so candidates arrive pre-scattered.
func (m *aggMerge) partitioning() (storage.Partitioning, bool) {
	if m.parts <= 1 {
		return storage.Partitioning{}, false
	}
	return storage.Partitioning{KeyCols: m.spec.GroupPos, Parts: m.parts}, true
}

// ensureState sizes the state fan-out for this merge. Frontier-expanding
// aggregates (SSSP from a single source) start with near-empty candidates
// and grow, so the fan-out is re-evaluated every merge and only ever
// *upgraded*: raising it re-buckets the accumulated groups once per tier
// (at most 1→16→64→256 over a whole run, O(groups) each), while
// downgrades never happen — the carried ∆R partitioning must not thrash.
func (m *aggMerge) ensureState(candTuples, workers int) {
	want := 1
	if m.parallel && len(m.spec.GroupPos) > 0 {
		if m.fixedParts > 0 {
			want = storage.NormalizePartitions(m.fixedParts)
		} else {
			want = optimizer.ChoosePartitions(candTuples, workers)
		}
	}
	if m.parts == 0 {
		m.parts = want
		m.best = make([]map[string]int32, m.parts)
		m.groups = make([]map[string][]int32, m.parts)
		for p := 0; p < m.parts; p++ {
			m.best[p] = make(map[string]int32)
			m.groups[p] = make(map[string][]int32)
		}
		return
	}
	if want > m.parts {
		m.rebucket(want)
	}
}

// rebucket re-hashes every tracked group into a wider partition layout.
func (m *aggMerge) rebucket(parts int) {
	best := make([]map[string]int32, parts)
	groups := make([]map[string][]int32, parts)
	for p := 0; p < parts; p++ {
		best[p] = make(map[string]int32)
		groups[p] = make(map[string][]int32)
	}
	row := make([]int32, m.arity)
	for p := 0; p < m.parts; p++ {
		for k, vals := range m.groups[p] {
			for i, gp := range m.spec.GroupPos {
				row[gp] = vals[i]
			}
			np := storage.PartitionOf(storage.PartitionHash(row, m.spec.GroupPos), parts)
			best[np][k] = m.best[p][k]
			groups[np][k] = vals
		}
	}
	m.parts = parts
	m.best = best
	m.groups = groups
}

func (m *aggMerge) key(row []int32, buf []byte) string {
	buf = buf[:0]
	for _, p := range m.spec.GroupPos {
		v := uint32(row[p])
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// candBest is the best candidate value seen for one group this iteration.
type candBest struct {
	vals []int32
	v    int32
}

// mergePartition folds the candidate rows of one partition into that
// partition's state maps and returns the improved groups as row-major delta
// data, deterministically ordered. All state touched is partition-private.
func (m *aggMerge) mergePartition(p int, forEach func(func(row []int32))) []int32 {
	perGroup := make(map[string]*candBest)
	buf := make([]byte, 0, 4*len(m.spec.GroupPos))
	// Pass 1: best candidate per group (subqueries pre-aggregate, but
	// different UNION ALL arms can emit the same group).
	forEach(func(row []int32) {
		k := m.key(row, buf)
		v := row[m.spec.Pos]
		cb, ok := perGroup[k]
		if !ok {
			vals := make([]int32, len(m.spec.GroupPos))
			for i, gp := range m.spec.GroupPos {
				vals[i] = row[gp]
			}
			perGroup[k] = &candBest{vals: vals, v: v}
			return
		}
		if m.better(v, cb.v) {
			cb.v = v
		}
	})

	// Pass 2: apply improvements, emitting delta rows deterministically.
	keys := make([]string, 0, len(perGroup))
	for k := range perGroup {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, groups := m.best[p], m.groups[p]
	out := make([]int32, 0, len(keys)*m.arity)
	row := make([]int32, m.arity)
	for _, k := range keys {
		cb := perGroup[k]
		cur, ok := best[k]
		if ok && !m.better(cb.v, cur) {
			continue
		}
		best[k] = cb.v
		if !ok {
			groups[k] = cb.vals
		}
		for i, gp := range m.spec.GroupPos {
			row[gp] = cb.vals[i]
		}
		row[m.spec.Pos] = cb.v
		out = append(out, row...)
	}
	return out
}

// merge folds the candidate relation into the state and returns the delta
// relation named deltaName: the groups whose value improved. On the
// partitioned path the candidate is consumed as group-column radix
// partitions (reusing a carried partitioning when the candidate query
// scattered its output at the source), partitions merge in parallel with
// partition-affine scheduling, and ∆R is emitted partition-native — it
// carries the group partitioning, so the next iteration's hash builds over
// it need no scatter.
func (m *aggMerge) merge(pool *exec.Pool, lc storage.Lifecycle, cand *storage.Relation, deltaName string) *storage.Relation {
	m.ensureState(cand.NumTuples(), pool.Workers())
	if m.parts <= 1 {
		rows := m.mergePartition(0, cand.ForEach)
		delta := storage.NewRelation(deltaName, storage.NumberedColumns(m.arity))
		delta.SetLifecycle(lc, storage.CatDelta)
		delta.AppendRows(rows)
		return delta
	}

	view := exec.PartitionRelation(pool, cand, m.spec.GroupPos, m.parts)
	blocks := make([][]*storage.Block, m.parts)
	scattered := int64(0)
	pool.RunPartitions(m.parts, func(p int) {
		rows := m.mergePartition(p, func(fn func(row []int32)) {
			for _, b := range view.Blocks(p) {
				n := b.Rows()
				for i := 0; i < n; i++ {
					fn(b.Row(i))
				}
			}
		})
		blocks[p] = storage.BlocksFromRows(lc, storage.CatDelta, m.arity, rows)
	})
	for _, bs := range blocks {
		for _, b := range bs {
			scattered += int64(b.Rows())
		}
	}
	pool.Copy.Scattered.Add(scattered)
	delta := storage.NewRelation(deltaName, storage.NumberedColumns(m.arity))
	delta.SetLifecycle(lc, storage.CatDelta)
	delta.AdoptPartitioned(storage.NewPartitionedView(m.spec.GroupPos, m.parts, blocks))
	return delta
}

func (m *aggMerge) better(a, b int32) bool {
	if m.isMin {
		return a < b
	}
	return a > b
}

// materialize builds the predicate's full relation from the state: one row
// per group holding the current best value. On the partitioned path the
// relation is emitted partition-native and carries the group partitioning,
// so joins against the full relation (programs that rebuild it every
// iteration) reuse the partitions in place too.
func (m *aggMerge) materialize(lc storage.Lifecycle, name string) *storage.Relation {
	rel := storage.NewRelation(name, storage.NumberedColumns(m.arity))
	rel.SetLifecycle(lc, storage.CatIDB)
	if m.parts == 0 {
		return rel
	}
	emit := func(p int) []int32 {
		best, groups := m.best[p], m.groups[p]
		keys := make([]string, 0, len(best))
		for k := range best {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]int32, 0, len(keys)*m.arity)
		row := make([]int32, m.arity)
		for _, k := range keys {
			vals := groups[k]
			for i, gp := range m.spec.GroupPos {
				row[gp] = vals[i]
			}
			row[m.spec.Pos] = best[k]
			out = append(out, row...)
		}
		return out
	}
	if m.parts <= 1 {
		rel.AppendRows(emit(0))
		return rel
	}
	blocks := make([][]*storage.Block, m.parts)
	for p := 0; p < m.parts; p++ {
		blocks[p] = storage.BlocksFromRows(lc, storage.CatIDB, m.arity, emit(p))
	}
	rel.AdoptPartitioned(storage.NewPartitionedView(m.spec.GroupPos, m.parts, blocks))
	return rel
}

// Size returns the number of groups tracked.
func (m *aggMerge) Size() int {
	n := 0
	for _, b := range m.best {
		n += len(b)
	}
	return n
}
