package core

import (
	"fmt"
	"sort"

	"recstep/internal/datalog/analysis"
	"recstep/internal/quickstep/storage"
)

// aggMerge maintains the running state of one recursive aggregate (MIN or
// MAX inside recursion, Section 3.3). Instead of dedup + set difference, the
// engine merges each iteration's candidate tuples into a per-group best
// value; the delta is the set of groups whose value improved. MIN/MAX are
// monotone under set growth, so this converges to the same fixpoint as
// naive evaluation.
type aggMerge struct {
	spec  *analysis.AggSpec
	arity int
	isMin bool
	// best maps the packed group key to the current aggregate value.
	best map[string]int32
	// groups retains the group column values for materialization.
	groups map[string][]int32
}

func newAggMerge(spec *analysis.AggSpec, arity int) *aggMerge {
	if spec == nil || (spec.Func != "MIN" && spec.Func != "MAX") {
		panic(fmt.Sprintf("core: recursive aggregate requires MIN or MAX, got %+v", spec))
	}
	return &aggMerge{
		spec:   spec,
		arity:  arity,
		isMin:  spec.Func == "MIN",
		best:   make(map[string]int32),
		groups: make(map[string][]int32),
	}
}

func (m *aggMerge) key(row []int32, buf []byte) string {
	buf = buf[:0]
	for _, p := range m.spec.GroupPos {
		v := uint32(row[p])
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// merge folds the candidate relation into the state and returns the delta
// relation (rows in head-term order) named deltaName.
func (m *aggMerge) merge(cand *storage.Relation, deltaName string) *storage.Relation {
	// Pass 1: best candidate per group (subqueries pre-aggregate, but
	// different UNION ALL arms can emit the same group).
	type candBest struct {
		vals []int32
		v    int32
	}
	perGroup := make(map[string]*candBest)
	buf := make([]byte, 0, 4*len(m.spec.GroupPos))
	cand.ForEach(func(row []int32) {
		k := m.key(row, buf)
		v := row[m.spec.Pos]
		cb, ok := perGroup[k]
		if !ok {
			vals := make([]int32, len(m.spec.GroupPos))
			for i, p := range m.spec.GroupPos {
				vals[i] = row[p]
			}
			perGroup[k] = &candBest{vals: vals, v: v}
			return
		}
		if m.better(v, cb.v) {
			cb.v = v
		}
	})

	// Pass 2: apply improvements, emitting delta rows deterministically.
	keys := make([]string, 0, len(perGroup))
	for k := range perGroup {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	delta := storage.NewRelation(deltaName, storage.NumberedColumns(m.arity))
	row := make([]int32, m.arity)
	for _, k := range keys {
		cb := perGroup[k]
		cur, ok := m.best[k]
		if ok && !m.better(cb.v, cur) {
			continue
		}
		m.best[k] = cb.v
		if !ok {
			m.groups[k] = cb.vals
		}
		for i, p := range m.spec.GroupPos {
			row[p] = cb.vals[i]
		}
		row[m.spec.Pos] = cb.v
		delta.Append(row)
	}
	return delta
}

func (m *aggMerge) better(a, b int32) bool {
	if m.isMin {
		return a < b
	}
	return a > b
}

// materialize builds the predicate's full relation from the state: one row
// per group holding the current best value.
func (m *aggMerge) materialize(name string) *storage.Relation {
	keys := make([]string, 0, len(m.best))
	for k := range m.best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rel := storage.NewRelation(name, storage.NumberedColumns(m.arity))
	row := make([]int32, m.arity)
	for _, k := range keys {
		vals := m.groups[k]
		for i, p := range m.spec.GroupPos {
			row[p] = vals[i]
		}
		row[m.spec.Pos] = m.best[k]
		rel.Append(row)
	}
	return rel
}

// Size returns the number of groups tracked.
func (m *aggMerge) Size() int { return len(m.best) }
