package core

import (
	"reflect"
	"testing"

	"recstep/internal/datalog/analysis"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/storage"
)

// aggPool is the worker pool unit merges run on (heap-backed blocks).
var aggPool = exec.NewPool(2)

func minSpec() *analysis.AggSpec {
	return &analysis.AggSpec{Func: "MIN", Pos: 1, GroupPos: []int{0}}
}

func candRel(rows ...[]int32) *storage.Relation {
	r := storage.NewRelation("cand", storage.NumberedColumns(2))
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func TestAggMergeFirstIterationEmitsAll(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	delta := m.merge(aggPool, nil, candRel([]int32{1, 10}, []int32{2, 20}), "d")
	if delta.NumTuples() != 2 {
		t.Fatalf("delta = %d tuples, want 2", delta.NumTuples())
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}

func TestAggMergeOnlyImprovementsEmit(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	m.merge(aggPool, nil, candRel([]int32{1, 10}, []int32{2, 20}), "d0")
	// Group 1 improves (5 < 10); group 2 does not (25 > 20).
	delta := m.merge(aggPool, nil, candRel([]int32{1, 5}, []int32{2, 25}), "d1")
	want := []int32{1, 5}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	// Equal value is not an improvement.
	if got := m.merge(aggPool, nil, candRel([]int32{1, 5}), "d2").NumTuples(); got != 0 {
		t.Fatalf("equal value emitted %d tuples", got)
	}
}

func TestAggMergeDuplicateGroupsWithinBatch(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	// The same group appears twice in one candidate batch (two UNION ALL
	// arms); only the best survives, emitted once.
	delta := m.merge(aggPool, nil, candRel([]int32{7, 30}, []int32{7, 10}, []int32{7, 20}), "d")
	want := []int32{7, 10}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

func TestAggMergeMaterialize(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	m.merge(aggPool, nil, candRel([]int32{1, 10}, []int32{2, 20}), "d0")
	m.merge(aggPool, nil, candRel([]int32{1, 5}), "d1")
	rel := m.materialize(nil, "cc3")
	want := []int32{1, 5, 2, 20}
	if got := rel.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("materialized = %v, want %v", got, want)
	}
	if rel.Name() != "cc3" {
		t.Fatalf("name = %q", rel.Name())
	}
}

func TestAggMergeMax(t *testing.T) {
	spec := &analysis.AggSpec{Func: "MAX", Pos: 1, GroupPos: []int{0}}
	m := newAggMerge(spec, 2)
	m.merge(aggPool, nil, candRel([]int32{1, 10}), "d0")
	delta := m.merge(aggPool, nil, candRel([]int32{1, 50}, []int32{1, 30}), "d1")
	want := []int32{1, 50}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("max delta = %v, want %v", got, want)
	}
}

func TestAggMergeAggAtFirstPosition(t *testing.T) {
	// sssp-style layouts can place the aggregate anywhere; here at slot 0.
	spec := &analysis.AggSpec{Func: "MIN", Pos: 0, GroupPos: []int{1}}
	m := newAggMerge(spec, 2)
	delta := m.merge(aggPool, nil, candRel([]int32{9, 1}, []int32{4, 1}), "d")
	want := []int32{4, 1}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

func TestAggMergeRejectsNonMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SUM")
		}
	}()
	newAggMerge(&analysis.AggSpec{Func: "SUM", Pos: 1, GroupPos: []int{0}}, 2)
}

func TestAggMergeMultiColumnGroups(t *testing.T) {
	spec := &analysis.AggSpec{Func: "MIN", Pos: 2, GroupPos: []int{0, 1}}
	m := newAggMerge(spec, 3)
	r := storage.NewRelation("cand", storage.NumberedColumns(3))
	r.Append([]int32{1, 2, 30})
	r.Append([]int32{1, 3, 40})
	r.Append([]int32{1, 2, 10})
	delta := m.merge(aggPool, nil, r, "d")
	want := []int32{1, 2, 10, 1, 3, 40}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

// Frontier-expanding aggregates (SSSP from one source) start with a
// near-empty candidate set: the fan-out must upgrade — re-bucketing the
// accumulated state — once candidates grow, and the merge semantics must
// be unchanged across the upgrade.
func TestAggMergeUpgradesFanoutAndRebuckets(t *testing.T) {
	wide := exec.NewPool(4)
	m := newAggMerge(minSpec(), 2)
	m.parallel = true

	// Tiny first candidate: state starts serial.
	m.merge(wide, nil, candRel([]int32{0, 0}), "d0")
	if m.parts != 1 {
		t.Fatalf("parts after tiny merge = %d, want 1", m.parts)
	}

	// A candidate past the partitioning threshold must upgrade the state.
	big := storage.NewRelation("cand", storage.NumberedColumns(2))
	rows := make([]int32, 0, 2<<15)
	for i := 0; i < 1<<15; i++ {
		rows = append(rows, int32(i%5000), int32(i))
	}
	big.AppendRows(rows)
	m.merge(wide, nil, big, "d1")
	if m.parts <= 1 {
		t.Fatalf("parts after large merge = %d, want > 1 (upgrade did not happen)", m.parts)
	}

	// Group 0 was tracked before the upgrade with best value 0; it must
	// survive re-bucketing (no improvement can beat 0 here).
	if got := m.merge(wide, nil, candRel([]int32{0, 3}), "d2").NumTuples(); got != 0 {
		t.Fatalf("pre-upgrade group lost its best value: emitted %d delta tuples", got)
	}
	// And the materialized state must equal a serial reference merge.
	ref := newAggMerge(minSpec(), 2)
	ref.merge(aggPool, nil, candRel([]int32{0, 0}), "r0")
	ref.merge(aggPool, nil, big, "r1")
	ref.merge(aggPool, nil, candRel([]int32{0, 3}), "r2")
	if !reflect.DeepEqual(m.materialize(nil, "a").SortedRows(), ref.materialize(nil, "b").SortedRows()) {
		t.Fatal("upgraded partitioned state diverges from serial reference")
	}
}
