package core

import (
	"reflect"
	"testing"

	"recstep/internal/datalog/analysis"
	"recstep/internal/quickstep/storage"
)

func minSpec() *analysis.AggSpec {
	return &analysis.AggSpec{Func: "MIN", Pos: 1, GroupPos: []int{0}}
}

func candRel(rows ...[]int32) *storage.Relation {
	r := storage.NewRelation("cand", storage.NumberedColumns(2))
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func TestAggMergeFirstIterationEmitsAll(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	delta := m.merge(candRel([]int32{1, 10}, []int32{2, 20}), "d")
	if delta.NumTuples() != 2 {
		t.Fatalf("delta = %d tuples, want 2", delta.NumTuples())
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}

func TestAggMergeOnlyImprovementsEmit(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	m.merge(candRel([]int32{1, 10}, []int32{2, 20}), "d0")
	// Group 1 improves (5 < 10); group 2 does not (25 > 20).
	delta := m.merge(candRel([]int32{1, 5}, []int32{2, 25}), "d1")
	want := []int32{1, 5}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	// Equal value is not an improvement.
	if got := m.merge(candRel([]int32{1, 5}), "d2").NumTuples(); got != 0 {
		t.Fatalf("equal value emitted %d tuples", got)
	}
}

func TestAggMergeDuplicateGroupsWithinBatch(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	// The same group appears twice in one candidate batch (two UNION ALL
	// arms); only the best survives, emitted once.
	delta := m.merge(candRel([]int32{7, 30}, []int32{7, 10}, []int32{7, 20}), "d")
	want := []int32{7, 10}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

func TestAggMergeMaterialize(t *testing.T) {
	m := newAggMerge(minSpec(), 2)
	m.merge(candRel([]int32{1, 10}, []int32{2, 20}), "d0")
	m.merge(candRel([]int32{1, 5}), "d1")
	rel := m.materialize("cc3")
	want := []int32{1, 5, 2, 20}
	if got := rel.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("materialized = %v, want %v", got, want)
	}
	if rel.Name() != "cc3" {
		t.Fatalf("name = %q", rel.Name())
	}
}

func TestAggMergeMax(t *testing.T) {
	spec := &analysis.AggSpec{Func: "MAX", Pos: 1, GroupPos: []int{0}}
	m := newAggMerge(spec, 2)
	m.merge(candRel([]int32{1, 10}), "d0")
	delta := m.merge(candRel([]int32{1, 50}, []int32{1, 30}), "d1")
	want := []int32{1, 50}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("max delta = %v, want %v", got, want)
	}
}

func TestAggMergeAggAtFirstPosition(t *testing.T) {
	// sssp-style layouts can place the aggregate anywhere; here at slot 0.
	spec := &analysis.AggSpec{Func: "MIN", Pos: 0, GroupPos: []int{1}}
	m := newAggMerge(spec, 2)
	delta := m.merge(candRel([]int32{9, 1}, []int32{4, 1}), "d")
	want := []int32{4, 1}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}

func TestAggMergeRejectsNonMonotone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SUM")
		}
	}()
	newAggMerge(&analysis.AggSpec{Func: "SUM", Pos: 1, GroupPos: []int{0}}, 2)
}

func TestAggMergeMultiColumnGroups(t *testing.T) {
	spec := &analysis.AggSpec{Func: "MIN", Pos: 2, GroupPos: []int{0, 1}}
	m := newAggMerge(spec, 3)
	r := storage.NewRelation("cand", storage.NumberedColumns(3))
	r.Append([]int32{1, 2, 30})
	r.Append([]int32{1, 3, 40})
	r.Append([]int32{1, 2, 10})
	delta := m.merge(r, "d")
	want := []int32{1, 2, 10, 1, 3, 40}
	if got := delta.SortedRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
}
