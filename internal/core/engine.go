// Package core implements the RecStep interpreter — the paper's primary
// contribution. It drives semi-naive, stratified Datalog evaluation
// (Algorithm 1) over the QuickStep-like substrate, with every optimization
// from Section 5 individually toggleable for the ablation experiments:
//
//   - UIE   — unified IDB evaluation (one UNION ALL query per IDB)
//   - OOF   — optimization on the fly (selective per-iteration ANALYZE;
//     the -NA and -FA ablations use no / full statistics)
//   - DSD   — dynamic set difference (OPSD vs TPSD by the cost model)
//   - EOST  — evaluation as one single transaction (deferred write-back)
//   - FAST-DEDUP — CCK-GSCHT deduplication (vs locked map / sort)
//
// Recursive aggregation (MIN/MAX inside recursion, used by CC and SSSP) is
// evaluated with a monotone aggregate-merge step in place of dedup + set
// difference.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"recstep/internal/datalog/analysis"
	"recstep/internal/datalog/ast"
	"recstep/internal/datalog/querygen"
	"recstep/internal/faultinject"
	"recstep/internal/obs"
	"recstep/internal/quickstep"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/optimizer"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
)

// DSDMode selects the set-difference policy.
type DSDMode int

const (
	// DSDDynamic chooses OPSD/TPSD per iteration via the cost model.
	DSDDynamic DSDMode = iota
	// DSDAlwaysOPSD forces the one-phase algorithm (QuickStep's default —
	// the paper's DSD-off ablation).
	DSDAlwaysOPSD
	// DSDAlwaysTPSD forces the two-phase algorithm.
	DSDAlwaysTPSD
)

// Options configures an Engine. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	Workers int
	// UIE emits one unified query per IDB; false issues one query per
	// subquery plus a merge (Figure 4's individual evaluation).
	UIE bool
	// OOF selects which statistics each iteration refreshes:
	// ModeSelective (RecStep), ModeNone (OOF-NA), ModeFull (OOF-FA).
	OOF stats.Mode
	// DSD selects the set-difference policy.
	DSD DSDMode
	// EOST defers write-back to a single final commit.
	EOST bool
	// Dedup selects the deduplication implementation.
	Dedup exec.DedupStrategy
	// Partitions fixes the radix partition count for hash builds (joins,
	// set difference, aggregation): 0 lets the optimizer pick 1/16/64/256
	// per operator from cardinality estimates, 1 disables partitioning.
	Partitions int
	// BuildSerial forces the serial shared-table join build (the
	// partitioning ablation; compare against the radix-partitioned default).
	BuildSerial bool
	// FuseDelta runs the partition-native delta pipeline: the join output is
	// scattered at the source into radix partitions and a single fused
	// per-partition pass (DeltaStep) replaces the staged dedup +
	// set-difference + delta materialization, so Rδ never exists as a flat
	// relation. False selects the staged pipeline (the -fuse-delta=false
	// ablation). Fusion requires the GSCHT dedup strategy (the fused pass
	// embeds it); the lock-map and sort baselines always run staged.
	FuseDelta bool
	// CarryJoinParts keys the carried partitioning of each recursive
	// predicate on the columns its joins build on (learned from the bound
	// recursive plans once per stratum), instead of the whole tuple: ∆R
	// exits the fused delta step already scattered on the keys the next
	// iteration's hash builds probe, and those builds index the carried
	// partition blocks in place — zero per-join re-scatter of the delta.
	// False is the -carry-join-parts=false ablation (whole-tuple carrying,
	// the PR 2/3 behaviour). Only meaningful with FuseDelta.
	CarryJoinParts bool
	// SecondaryCarry generalizes CarryJoinParts to predicates whose
	// recursive rules join the same relation on *conflicting* keysets
	// (CSPA's valueFlow joins on column 0 in some rules and column 1 in
	// others): instead of falling back to whole-tuple partitioning, the
	// optimizer ranks the keysets by builds served, the delta pipeline
	// routes on the top one, and a second carried view on the runner-up is
	// maintained by the dual-route delta step — one extra scatter copy of
	// ∆R per iteration buys zero per-iteration build scatters for both join
	// shapes. False is the -secondary-carry=false ablation (whole-tuple
	// fallback on conflict, the PR 4 behaviour). Only meaningful with
	// CarryJoinParts and FuseDelta.
	SecondaryCarry bool
	// Columnar enables the batch-at-a-time kernel paths in the engine:
	// columnar layouts for re-read blocks, batched GSCHT inserts/probes,
	// selection-vector filters, bulk block emission and per-worker pool
	// magazines. False is the -columnar=false ablation — the row-layout
	// tuple-at-a-time inner loops.
	Columnar bool
	// JoinOrder enables the connectivity-driven greedy join-ordering pass:
	// every rule arm's join chain is re-seeded from the most selective
	// literal and grown by shared-variable connectivity, re-planned each
	// iteration as ∆ cardinalities change, with early termination of arms
	// whose intermediate comes back empty. False is the -join-order=false
	// ablation — the textual FROM-order chain.
	JoinOrder bool
	// WCOJ routes cyclic rule bodies of ≥3 atoms (triangles, cliques) to
	// the leapfrog worst-case-optimal join. False is the -wcoj=false
	// ablation — cyclic bodies fall back to the (ordered) pairwise chain.
	WCOJ bool
	// Alpha is the calibrated build/probe cost ratio for DSD (0 = default).
	Alpha float64
	// Naive disables semi-naive evaluation: every iteration re-evaluates
	// every rule against the full relations (the baseline of Section 3.2).
	Naive bool
	// MaxIterations bounds each stratum's fixpoint loop (safety valve).
	MaxIterations int
	// MemBudgetBytes bounds live block-pool bytes (the -mem-budget flag).
	// When exceeded, cold partitions of the full recursive relations spill
	// to temp files, LRU by last-probed iteration, and the optimizer shrinks
	// radix fan-out; 0 disables the budget. Block recycling and per-category
	// accounting are always on.
	MemBudgetBytes int64
	// SpillDir and DisableIO control the simulated write-back target.
	SpillDir  string
	DisableIO bool
	// Obs is the run's observability attach point: its registry backs the
	// /metrics and /statusz endpoints, its exec metrics receive the pool's
	// phase timers and histograms, and its tracer (if any) collects the
	// per-phase trace. Nil makes the engine create a private Observer, so
	// Stats.PhaseDurations and the histograms are populated even without a
	// caller-supplied one; set DisableObs to suppress that (the overhead
	// ablation). A long-lived Observer may be reused across Runs — engine
	// registrations replace their prior bindings by metric name.
	Obs *obs.Observer
	// DisableObs turns off all metrics and phase-timer collection when Obs
	// is nil (the -obs=false ablation: phase closures collapse to no-ops on
	// the hot path).
	DisableObs bool
	// IterHook, when set, is called synchronously after every (stratum,
	// iteration, IDB) evaluation step with that step's IterInfo. It runs on
	// the engine goroutine between steps — a scrape-friendly point to copy
	// counters out, but work done here extends the fixpoint's wall time.
	IterHook func(IterInfo)
	// OnDB, when set, receives the database right after it opens and before
	// any evaluation. Use it to attach samplers that need the *Database
	// itself (catalog walks, memory snapshots); metrics that the engine
	// already exports ride Obs instead.
	OnDB func(*quickstep.Database)
	// FaultInject installs chaos-test fault triggers (spill writes, fault
	// reads, allocation accounting, worker panics) throughout the substrate.
	// Nil — the production default — leaves every trigger point inert.
	FaultInject *faultinject.Injector
}

// DefaultOptions returns the all-optimizations-on configuration the paper
// calls "RecStep".
func DefaultOptions() Options {
	return Options{
		UIE:            true,
		OOF:            stats.ModeSelective,
		DSD:            DSDDynamic,
		EOST:           true,
		Dedup:          exec.DedupGSCHT,
		FuseDelta:      true,
		CarryJoinParts: true,
		SecondaryCarry: true,
		Columnar:       true,
		JoinOrder:      true,
		WCOJ:           true,
		MaxIterations:  1 << 20,
		DisableIO:      true,
	}
}

// IterInfo describes one IDB evaluation step for tracing and experiments.
type IterInfo struct {
	Stratum   int
	Iteration int
	Pred      string
	TmpTuples int
	Delta     int
	Algo      exec.DiffAlgorithm
	// Copy holds this step's copy-accounting deltas: tuples scattered into
	// partitions, tuples adopted without copy, and flat materializations of
	// pipeline intermediates (zero per iteration under the fused pipeline).
	Copy exec.CopySnapshot
	// Mem is a point-in-time reading of the memory manager after the step:
	// live pool bytes by category, budget headroom, spill/fault counters.
	Mem memory.Snapshot
	// ArmsSkipped counts the UNION ALL arms this step dropped before
	// planning because their seeding ∆ relation was empty.
	ArmsSkipped int
	// Phase attributes this step's wall time to fixpoint phases (scatter,
	// build, probe, delta, …) — the per-step delta of the run's phase
	// timers. All zeros when observability is disabled.
	Phase obs.PhaseSnapshot
}

// Stats aggregates counters over one Run.
type Stats struct {
	Iterations  int
	Queries     int64
	DiffOPSD    int
	DiffTPSD    int
	TmpTuples   int64
	DeltaTuples int64
	// Copy accounting over the whole run (Section "partition-native
	// pipeline"): how many tuples were copied by partition scatters, how
	// many were installed by block adoption without copying, and how many
	// flat materializations of tmp/Rδ the delta pipeline performed.
	TuplesScattered      int64
	TuplesAdopted        int64
	FlatMaterializations int64
	// Join-build scatter accounting (the join-key-carried partitionings):
	// how many hash builds had to scatter their input versus how many were
	// served in place from a carried or cached partitioned view.
	JoinBuildScatters        int64
	JoinBuildScattersAvoided int64
	// SecondaryScattered is the subset of TuplesScattered copied into
	// secondary carried views — the extra per-iteration copy a
	// conflicting-keyset predicate pays so both of its join shapes build
	// scatter-free.
	SecondaryScattered int64
	// JoinBuildsByKeyset breaks the build counters down by (relation,
	// keyset) — see exec.BuildKey — so the copy experiments can show
	// exactly which predicate and join shape still pays per-iteration
	// build scatters.
	JoinBuildsByKeyset map[string]exec.BuildCount
	// JoinOrdersByRule records, per rule arm (branch name), the atoms in
	// textual order, the join order the optimizer last chose, the strategy
	// (textual / greedy / wcoj) and how many iterations ran it.
	JoinOrdersByRule map[string]quickstep.PlanChoice
	// WCOJRules lists the arms evaluated by the leapfrog join.
	WCOJRules []string
	// ArmsSkipped counts UNION ALL arms skipped across the run because
	// their seeding ∆ relation was empty (the early-exit arm filter).
	ArmsSkipped int64
	// PeakJoinIntermediate is the largest non-final pairwise join
	// intermediate materialized anywhere in the run (rows) — the blow-up
	// gauge the WCOJ path exists to keep bounded.
	PeakJoinIntermediate int64
	// Mem is the final memory-manager snapshot: peak live pool bytes, live
	// bytes by category, pool hit/miss counts and spill/fault totals — the
	// observability the paper's memory figures (3, 11, 14) rely on.
	Mem      memory.Snapshot
	Duration time.Duration
	// StratumDurations holds each stratum's fixpoint wall time, in stratum
	// order.
	StratumDurations []time.Duration
	// PhaseDurations attributes the run's wall time to fixpoint phases
	// (scatter, build, probe, delta, aggregate, spill, fault, leapfrog),
	// keyed by phase name; zero phases are omitted. Empty when
	// observability is disabled. Phases overlap across pool workers, so the
	// sum can exceed Duration.
	PhaseDurations map[string]time.Duration
}

// Result is the outcome of evaluating a program.
type Result struct {
	// Relations maps every IDB predicate to its final relation.
	Relations map[string]*storage.Relation
	Stats     Stats
}

// Engine evaluates Datalog programs.
type Engine struct {
	opts Options
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1 << 20
	}
	return &Engine{opts: opts}
}

// Run analyzes and evaluates a program. edbs supplies input relations by
// predicate name (inline program facts are added on top).
func (e *Engine) Run(prog *ast.Program, edbs map[string]*storage.Relation) (*Result, error) {
	return e.RunContext(context.Background(), prog, edbs)
}

// RunContext is Run with a cancellation context threaded through every worker
// loop: cancellation (or a deadline) aborts the fixpoint at the next
// task/partition boundary — within one iteration at the engine level. An
// aborted run returns the context's error together with a non-nil *Result
// whose Stats cover the partial run; every cataloged relation is released
// first, so the caller observes zero live pooled bytes. The same teardown
// serves runs aborted by a contained worker panic or a fatal memory-manager
// failure (failed allocation, unreadable spill file).
func (e *Engine) RunContext(ctx context.Context, prog *ast.Program, edbs map[string]*storage.Relation) (*Result, error) {
	run, err := e.prepare(ctx, prog)
	if err != nil {
		return nil, err
	}
	defer run.db.Close()
	if evalErr := run.evaluate(edbs); evalErr != nil {
		return run.abort(evalErr), evalErr
	}

	// Snapshot the manager before result delivery: Stats.Mem reports the
	// *evaluation* footprint, and restoring spilled results for the caller
	// necessarily re-materializes all of R.
	run.stats.Mem = run.db.MemSnapshot()

	out := &Result{Relations: make(map[string]*storage.Relation)}
	// Result relations outlive the database (and its spill directory): seal
	// eviction — restoring one result must not re-spill another — then fault
	// every cold partition back in before Close removes the files.
	run.db.Mem().StopSpilling()
	for _, name := range run.res.IDBNames() {
		rel := run.db.Catalog().MustGet(name)
		rel.Restore()
		out.Relations[name] = rel
	}
	// Restoring results is itself fallible I/O: a fault failure here is
	// recorded as the run error, and delivering partially-restored relations
	// as success would be silent corruption.
	if err := run.db.Err(); err != nil {
		return run.abort(err), err
	}
	run.collectStats()
	out.Stats = run.stats
	return out, nil
}

// prepare analyzes the program, opens the substrate database and assembles
// the runState shared by RunContext and RunIncremental. On success the
// caller owns run.db and is responsible for closing it.
func (e *Engine) prepare(ctx context.Context, prog *ast.Program) (*runState, error) {
	res, err := analysis.Analyze(prog)
	if err != nil {
		return nil, err
	}
	for name := range res.Preds {
		if strings.HasSuffix(name, querygen.DeltaSuffix) || strings.HasSuffix(name, querygen.TmpSuffix) {
			return nil, fmt.Errorf("core: predicate name %q collides with engine table suffixes", name)
		}
		for _, suf := range querygen.UpdateSuffixes {
			if strings.HasSuffix(name, suf) {
				return nil, fmt.Errorf("core: predicate name %q collides with incremental-update table suffixes", name)
			}
		}
	}

	// A caller-supplied Observer survives the Run (cmd/recstep serves it
	// over HTTP for the whole process); otherwise the engine makes a
	// private one so phase timers and Stats.PhaseDurations work out of the
	// box. DisableObs suppresses even that — the zero-instrumentation
	// ablation the benchobs experiment compares against.
	ob := e.opts.Obs
	if ob == nil && !e.opts.DisableObs {
		ob = obs.New()
	}

	db, err := quickstep.Open(quickstep.Options{
		Workers:        e.opts.Workers,
		Dedup:          e.opts.Dedup,
		EOST:           e.opts.EOST,
		SpillDir:       e.opts.SpillDir,
		DisableIO:      e.opts.DisableIO,
		Partitions:     e.opts.Partitions,
		BuildSerial:    e.opts.BuildSerial,
		MemBudgetBytes: e.opts.MemBudgetBytes,
		CarryJoinParts: e.opts.CarryJoinParts,
		SecondaryCarry: e.opts.SecondaryCarry,
		Columnar:       e.opts.Columnar,
		JoinOrder:      e.opts.JoinOrder,
		WCOJ:           e.opts.WCOJ,
		Obs:            ob,
		FaultInject:    e.opts.FaultInject,
	})
	if err != nil {
		return nil, err
	}
	db.SetContext(ctx)
	if e.opts.OnDB != nil {
		e.opts.OnDB(db)
	}

	run := &runState{
		engine: e,
		db:     db,
		res:    res,
		gen:    querygen.New(res),
		start:  time.Now(),
		ob:     ob,
	}
	if ob != nil {
		if ob.Exec != nil {
			run.phaseBase = ob.Exec.Phase.Snapshot()
			run.lastPhase = run.phaseBase
		}
		if ob.Reg != nil {
			run.em = &engineMetrics{}
			run.em.register(ob.Reg)
		}
	}
	return run, nil
}

// evaluate runs the full from-scratch fixpoint — EDB load, IDB creation,
// every stratum, final commit — with engine-goroutine panic containment.
func (r *runState) evaluate(edbs map[string]*storage.Relation) error {
	evalErr := func() (err error) {
		// Last-resort containment: the pool's worker guard and runQuery's
		// branch recover catch panics on their goroutines, but the engine
		// goroutine itself runs serial operator paths too. A panic here
		// becomes an error so the process survives and tears down cleanly.
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("core: evaluation panic: %v\n%s", v, debug.Stack())
			}
		}()
		if err := r.loadEDBs(edbs); err != nil {
			return err
		}
		if err := r.createIDBs(); err != nil {
			return err
		}
		for _, s := range r.res.Strata {
			if err := r.evalStratum(s); err != nil {
				return err
			}
		}
		return r.db.FinalCommit()
	}()
	if evalErr == nil {
		// An abort recorded after the last boundary check (or surfaced by a
		// kernel call that returns no error) must not pass for success.
		evalErr = r.db.Err()
	}
	return evalErr
}

// collectStats fills the counter-derived Stats fields from the database's
// accounting. Called once per Run on the success path.
func (r *runState) collectStats() {
	r.stats.Queries = r.db.QueriesIssued()
	copySnap := r.db.CopySnapshot()
	r.stats.TuplesScattered = copySnap.Scattered
	r.stats.TuplesAdopted = copySnap.Adopted
	r.stats.FlatMaterializations = copySnap.FlatMats
	r.stats.JoinBuildScatters = copySnap.BuildScatters
	r.stats.JoinBuildScattersAvoided = copySnap.BuildScattersAvoided
	r.stats.SecondaryScattered = copySnap.SecondaryScattered
	r.stats.JoinBuildsByKeyset = copySnap.BuildDetail
	r.stats.JoinOrdersByRule = r.db.PlanChoices()
	for name, pc := range r.stats.JoinOrdersByRule {
		if pc.Strategy == "wcoj" {
			r.stats.WCOJRules = append(r.stats.WCOJRules, name)
		}
	}
	sort.Strings(r.stats.WCOJRules)
	r.stats.PeakJoinIntermediate = r.db.PeakJoinIntermediate()
	r.stats.Duration = time.Since(r.start)
	if r.ob != nil && r.ob.Exec != nil {
		// Attribute only this Run's share: a reused Observer's timers carry
		// earlier runs too.
		r.stats.PhaseDurations = r.ob.Exec.Phase.Snapshot().Sub(r.phaseBase).Map()
	}
}

// abort is the failed-run teardown: it releases every cataloged relation (and
// with them all pooled blocks and spill files), classifies the cause for the
// cancellation counter, and packages the partial run's Stats. The memory
// snapshot is taken *after* the release, so Stats.Mem.LiveTotal reads zero —
// the "no leaked blocks" guarantee the chaos suite asserts.
func (r *runState) abort(cause error) *Result {
	if r.em != nil && (errors.Is(cause, context.Canceled) || errors.Is(cause, context.DeadlineExceeded)) {
		r.em.cancelled.Add(1)
	}
	r.db.ReleaseAll()
	r.stats.Mem = r.db.MemSnapshot()
	r.stats.Queries = r.db.QueriesIssued()
	r.stats.PeakJoinIntermediate = r.db.PeakJoinIntermediate()
	r.stats.Duration = time.Since(r.start)
	if r.ob != nil && r.ob.Exec != nil {
		r.stats.PhaseDurations = r.ob.Exec.Phase.Snapshot().Sub(r.phaseBase).Map()
	}
	return &Result{Stats: r.stats}
}

// engineMetrics are the fixpoint-loop counters and gauges the engine itself
// exports (the substrate's counters register from database.Open). Counters
// and gauges are atomics, so the HTTP scraper reads them mid-fixpoint
// without synchronizing with the engine goroutine.
type engineMetrics struct {
	iterations  obs.Counter
	tmpTuples   obs.Counter
	deltaTuples obs.Counter
	armsSkipped obs.Counter
	diffOPSD    obs.Counter
	diffTPSD    obs.Counter
	cancelled   obs.Counter
	stratum     obs.Gauge
	iteration   obs.Gauge
}

func (m *engineMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("recstep_iterations_total",
		"Fixpoint iterations completed across all strata.", &m.iterations)
	reg.RegisterCounter("recstep_tmp_tuples_total",
		"Duplicate-inclusive tuples materialized into tmp tables by uieval.", &m.tmpTuples)
	reg.RegisterCounter("recstep_delta_tuples_total",
		"Genuinely new tuples admitted into ∆ relations.", &m.deltaTuples)
	reg.RegisterCounter("recstep_arms_skipped_total",
		"UNION ALL arms dropped before planning because their seeding ∆ was empty.", &m.armsSkipped)
	reg.RegisterCounter("recstep_diff_opsd_total",
		"Set-difference steps run with the one-phase algorithm.", &m.diffOPSD)
	reg.RegisterCounter("recstep_diff_tpsd_total",
		"Set-difference steps run with the two-phase algorithm.", &m.diffTPSD)
	reg.RegisterCounter("recstep_fixpoint_cancelled_total",
		"Fixpoint runs aborted by context cancellation or deadline.", &m.cancelled)
	reg.RegisterGauge("recstep_current_stratum",
		"Stratum index the fixpoint loop is currently evaluating.", &m.stratum)
	reg.RegisterGauge("recstep_current_iteration",
		"Iteration number within the current stratum.", &m.iteration)
}

// runState carries the per-Run evaluation context.
type runState struct {
	engine *Engine
	db     *quickstep.Database
	res    *analysis.Result
	gen    *querygen.Generator
	stats  Stats
	start  time.Time
	// ob is the run's observer (possibly engine-private); em holds the
	// engine-level registry instruments, nil when no registry is attached.
	ob *obs.Observer
	em *engineMetrics
	// phaseBase is the phase-timer reading at Run start (a reused Observer
	// carries earlier runs' time); lastPhase is the reading after the
	// previous evaluation step, for IterInfo's per-step attribution.
	phaseBase obs.PhaseSnapshot
	lastPhase obs.PhaseSnapshot
	// incremental marks ApplyDelta evaluation: delta partitioning mirrors
	// each full relation's carried layout instead of re-deriving a fan-out
	// from (tiny) update cardinalities.
	incremental bool
}

// tracer returns the run's tracer; nil (inert) when tracing is off.
func (r *runState) tracer() *obs.Tracer {
	if r.ob == nil {
		return nil
	}
	return r.ob.Tracer
}

func (r *runState) opts() Options { return r.engine.opts }

// loadEDBs registers input relations (re-wrapped onto engine column names)
// plus inline facts.
func (r *runState) loadEDBs(edbs map[string]*storage.Relation) error {
	for _, name := range r.res.EDBNames() {
		pi := r.res.Preds[name]
		rel := storage.NewRelation(name, storage.NumberedColumns(pi.Arity))
		rel.SetLifecycle(r.db.Alloc(), storage.CatEDB)
		if in, ok := edbs[name]; ok {
			if in.Arity() != pi.Arity {
				return fmt.Errorf("core: EDB %q has arity %d, program expects %d", name, in.Arity(), pi.Arity)
			}
			rel.AppendRelation(in)
		}
		for _, f := range r.res.Program.Facts[name] {
			rel.Append(f)
		}
		if err := r.db.Install(rel); err != nil {
			return err
		}
		// Base tables get analyzed once up front; OOF decides per-iteration
		// refreshes for derived tables.
		r.db.AnalyzeRelation(rel, stats.ModeSelective)
	}
	for pred := range edbs {
		if _, ok := r.res.Preds[pred]; !ok {
			return fmt.Errorf("core: EDB %q is not referenced by the program", pred)
		}
	}
	return nil
}

func (r *runState) createIDBs() error {
	for _, name := range r.res.IDBNames() {
		pi := r.res.Preds[name]
		full := storage.NewRelation(name, storage.NumberedColumns(pi.Arity))
		full.SetLifecycle(r.db.Alloc(), storage.CatIDB)
		if err := r.db.Install(full); err != nil {
			return err
		}
		// Under a memory budget, the full relation's cold carried-view
		// partitions become evictable (LRU by last-probed iteration).
		r.db.MarkSpillable(name)
		delta := storage.NewRelation(querygen.DeltaTable(name), storage.NumberedColumns(pi.Arity))
		delta.SetLifecycle(r.db.Alloc(), storage.CatDelta)
		if err := r.db.Install(delta); err != nil {
			return err
		}
	}
	return nil
}

// evalStratum runs Algorithm 1's inner loop for one stratum.
func (r *runState) evalStratum(s analysis.Stratum) error {
	return r.evalStratumWith(s, nil, nil)
}

// evalStratumWith is evalStratum with two incremental-maintenance hooks:
// seed, when non-nil, replaces iteration 1's Init unit per IDB (ApplyDelta's
// insertion phase starts from the injected ∆ instead of ⊥ — absent entries
// evaluate nothing, converging immediately for unaffected predicates), and
// onDelta fires after every non-empty installed ∆ so the update can
// accumulate the net insertions. Iterations past the first run the ordinary
// Rec units either way.
func (r *runState) evalStratumWith(s analysis.Stratum, seed map[string]querygen.UnitQueries, onDelta func(pred string, delta *storage.Relation) error) error {
	stratumStart := time.Now()
	if r.em != nil {
		r.em.stratum.Set(int64(s.Index))
		r.em.iteration.Set(0)
	}
	endStratum := r.tracer().Span("stratum", 0, obs.Step{Stratum: s.Index}, -1)
	defer func() {
		endStratum()
		r.stats.StratumDurations = append(r.stats.StratumDurations, time.Since(stratumStart))
	}()

	queries, err := r.gen.StratumQueries(s)
	if err != nil {
		return err
	}

	// Per-IDB evaluation state.
	states := make(map[string]*idbState, len(queries))
	for i := range queries {
		q := &queries[i]
		st := &idbState{
			q:       q,
			chooser: optimizer.NewDiffChooser(r.opts().Alpha),
		}
		if q.RecursiveAgg {
			st.agg = newAggMerge(r.res.Preds[q.Pred].Agg, q.Arity)
			// The partition-parallel merge rides the fused pipeline flag:
			// the staged ablation keeps the serial single-map merge.
			st.agg.parallel = r.opts().FuseDelta
			st.agg.fixedParts = r.opts().Partitions
			// Naive evaluation always reads the full relation, so the
			// aggregate's materialization must track every iteration.
			st.rebuildEachIter = r.opts().Naive || r.aggNeedsFullRebuild(s, q.Pred)
		}
		states[q.Pred] = st
	}

	// Join-key-carried partitionings: bind the stratum's recursive queries
	// once (no execution) to learn which key columns the fixpoint's joins
	// build on, then fix each predicate's carried keyset for the whole
	// stratum — the same descriptor then serves the fused scatter, the
	// delta step, ∆R, R's carried view and the next iteration's hash
	// builds. A predicate's keysets come from every query of the stratum
	// (its delta feeds other predicates' rules too). The keyset must stay
	// stable across iterations: R ⊎ ∆R merges carried views only when their
	// partitionings match.
	if r.opts().CarryJoinParts && r.opts().FuseDelta && !r.opts().Naive {
		usage := make(map[string][][]int)
		for i := range queries {
			if queries[i].Rec.Unified == "" {
				continue
			}
			u, err := r.db.PlanJoinKeys(queries[i].Rec.Unified)
			if err != nil {
				return err
			}
			for table, keysets := range u {
				usage[table] = append(usage[table], keysets...)
			}
		}
		for _, st := range states {
			keysets := append(append([][]int{}, usage[st.q.Pred]...), usage[st.q.Delta]...)
			if r.opts().SecondaryCarry {
				// Ranked choice: route the delta pipeline on the keyset
				// serving the most builds and maintain the runner-up as a
				// secondary carried view, instead of punting conflicting
				// predicates to the whole-tuple layout.
				st.keyCols, st.secCols = optimizer.ChooseCarryKeysets(st.q.Arity, keysets)
			} else {
				st.keyCols = optimizer.ChooseJoinKeyCols(st.q.Arity, keysets)
			}
		}
	}

	for iter := 1; ; iter++ {
		if iter > r.opts().MaxIterations {
			return fmt.Errorf("core: stratum %d exceeded %d iterations", s.Index, r.opts().MaxIterations)
		}
		r.stats.Iterations++
		if r.em != nil {
			r.em.iterations.Add(1)
			r.em.iteration.Set(int64(iter))
		}
		endIter := r.tracer().Span("iteration", 0, obs.Step{Stratum: s.Index, Iteration: iter}, -1)
		anyDelta := false
		for i := range queries {
			q := &queries[i]
			var unit querygen.UnitQueries
			switch {
			case r.opts().Naive && seed == nil:
				unit = q.Full
			case iter == 1:
				if seed != nil {
					// Seed arms plus the ordinary Rec arms: within an
					// iteration deltas install in predicate order, so a
					// predicate evaluated after a producer sees the
					// producer's iteration-1 ∆ only during iteration 1 —
					// by iteration 2 it has been replaced. (From-scratch
					// runs don't need this: Init arms read no deltas and
					// every tuple lands in some later ∆.)
					unit = querygen.MergeUnits(q.Tmp, seed[q.Pred], q.Rec)
				} else {
					unit = q.Init
				}
			default:
				unit = q.Rec
			}
			delta, err := r.evalIDB(s, iter, states[q.Pred], unit)
			if err != nil {
				return err
			}
			if delta > 0 {
				anyDelta = true
				if onDelta != nil {
					if err := onDelta(q.Pred, r.db.Catalog().MustGet(q.Delta)); err != nil {
						return err
					}
				}
			}
		}
		// Epoch boundary: recycle retired view copies, advance the spill LRU
		// clock and reclaim any budget overshoot while no query is in flight.
		r.db.EndIteration()
		endIter()
		// Iteration-boundary abort check: cancellation, a contained worker
		// panic or a fatal manager failure ends the fixpoint here at the
		// latest, so an abort costs at most one iteration of extra work.
		if err := r.db.Err(); err != nil {
			return err
		}
		if !s.Recursive || !anyDelta {
			break
		}
	}

	// Materialize recursive aggregates and clear this stratum's deltas,
	// releasing the superseded relations' blocks back to the pool.
	for _, st := range states {
		if st.agg != nil {
			if err := r.installAggFull(st, st.q.Pred); err != nil {
				return err
			}
		}
		if err := r.db.InstallReplacing(storage.NewRelation(st.q.Delta, storage.NumberedColumns(st.q.Arity))); err != nil {
			return err
		}
	}
	return nil
}

// idbState is the per-IDB loop state within one stratum.
type idbState struct {
	q               *querygen.IDBQueries
	chooser         *optimizer.DiffChooser
	agg             *aggMerge
	rebuildEachIter bool
	// keyCols is the stratum-stable keyset the predicate's carried
	// partitioning routes on — the join-key columns when every recursive
	// build agrees on one keyset, the whole tuple otherwise (or when the
	// carry-join-parts ablation is off). Nil selects the whole tuple.
	keyCols []int
	// secCols is the runner-up keyset of a conflicting-keyset predicate,
	// maintained as a secondary carried view by the dual-route delta step.
	// Nil when there is no conflict or secondary carrying is off.
	secCols []int
	// secDelivered/lastSecParts record that the previous iteration ran the
	// dual route at that fan-out; secCooldown parks the rebuild path after
	// the reclaimer evicts a secondary the engine just delivered (see
	// evalIDB's pressure-drop detection).
	secDelivered bool
	lastSecParts int
	secCooldown  int
	// lastTmp is the previous iteration's join-output size — the
	// slowly-changing estimate the delta fan-out choice uses before the
	// current Rt exists.
	lastTmp int
}

// evalIDB performs lines 8-13 of Algorithm 1 for one IDB: uieval, analyze,
// then either the fused partition-native delta step or the staged dedup +
// set difference (or the aggregate merge), and the merge into R. It returns
// the delta size.
func (r *runState) evalIDB(s analysis.Stratum, iter int, st *idbState, unit querygen.UnitQueries) (int, error) {
	q := st.q
	// Publish the step context: worker phase spans and the memory manager's
	// spill/fault spans stamp whatever step is current when they fire.
	r.db.SetStep(s.Index, iter, q.Pred)
	defer r.tracer().Span(q.Pred, 0, obs.Step{Stratum: s.Index, Iteration: iter, Pred: q.Pred}, -1)()
	copyBase := r.db.CopySnapshot()
	// Early-exit arm filter: a semi-naive arm seeded by an empty ∆ relation
	// can only produce zero tuples, so it is dropped before any planning or
	// execution. In multi-IDB strata deltas empty out at different
	// iterations, leaving whole arms firing on nothing every iteration
	// until the stratum converges.
	unit, skipped := querygen.FilterArms(q.Tmp, unit, func(delta string) bool {
		d, ok := r.db.Catalog().Get(delta)
		return !ok || d.NumTuples() > 0
	})
	r.stats.ArmsSkipped += int64(skipped)
	if r.em != nil {
		r.em.armsSkipped.Add(int64(skipped))
	}
	if unit.Subqueries == 0 {
		// Nothing fires this phase; the delta is empty.
		if err := r.db.InstallReplacing(storage.NewRelation(q.Delta, storage.NumberedColumns(q.Arity))); err != nil {
			return 0, err
		}
		r.hook(s, iter, q.Pred, 0, 0, exec.OPSD, exec.CopySnapshot{}, skipped)
		return 0, nil
	}

	full := r.db.Catalog().MustGet(q.Pred)
	// The fused pipeline picks one whole-tuple fan-out for the whole
	// iteration *before* uieval and registers it as Rt's output
	// partitioning, so the join probe scatters at the source and uieval's
	// result lands pre-partitioned for the delta step. The fused pass embeds
	// a per-partition CCK-GSCHT-style dedup, so the FAST-DEDUP baselines
	// (lock-map, sort) force the staged pipeline — otherwise their ablation
	// would silently measure nothing.
	fuse := r.opts().FuseDelta && st.agg == nil && r.opts().Dedup == exec.DedupGSCHT
	part := storage.Partitioning{Parts: 1}
	var sec storage.Partitioning
	if fuse {
		part = r.deltaPartitioning(st, full)
		if part.Parts > 1 {
			// Conflicting-keyset predicate: the secondary view shares the
			// iteration's fan-out so R ⊎ ∆R can merge both views. The
			// headroom gate applies only to *building* R's secondary (a
			// full |R|-sized copy): maintaining one R already carries
			// costs just the delta-sized dual route, and its bytes are
			// already in the live gauge — gating on |R| there would retire
			// the healthy view via the merge and rebuild it next iteration,
			// a full re-scatter every other iteration. Under real pressure
			// the reclaimer drops the view first, `carried` turns false,
			// and the route parks until headroom returns.
			if len(st.secCols) > 0 {
				want := storage.Partitioning{KeyCols: st.secCols, Parts: part.Parts}
				have, ok := full.SecondaryPartitioning()
				carried := ok && have.Equal(want)
				if !carried && st.secDelivered && st.lastSecParts == part.Parts {
					// R lost the secondary we delivered at this very
					// fan-out: the reclaimer evicted it under pressure.
					// Park the rebuild for a few iterations — paying a
					// full |R| re-scatter that the next pressure spike
					// evicts again is strictly worse than the ablation.
					st.secCooldown = secondaryRebuildCooldown
				}
				st.secDelivered = false
				switch {
				case carried:
					// Maintenance is delta-sized and the view's bytes are
					// already in the live gauge — no headroom gate here.
					sec = want
				case st.secCooldown > 0:
					st.secCooldown--
				case r.db.Headroom() >= full.EstimatedBytes():
					sec = want
					if full.NumTuples() > 0 {
						// First iteration, a fan-out shift, or recovery
						// after the cooldown: scatter R once.
						r.db.EnsureSecondaryCarry(q.Pred, want)
					}
				}
				if sec.Parts > 1 {
					st.secDelivered, st.lastSecParts = true, part.Parts
				}
			}
			r.db.SetOutputPartitioning(q.Tmp, part)
			defer r.db.ClearOutputPartitioning(q.Tmp)
		}
	} else if st.agg != nil {
		// Partition-parallel aggregate merge: once the state fan-out is
		// fixed (first merge), candidates land pre-scattered on the group
		// columns and ∆R exits carrying that partitioning for the next
		// iteration's joins.
		if ap, ok := st.agg.partitioning(); ok {
			r.db.SetOutputPartitioning(q.Tmp, ap)
			defer r.db.ClearOutputPartitioning(q.Tmp)
		}
	}

	tmp, err := r.uieval(q, unit)
	if err != nil {
		return 0, err
	}
	defer r.dropTmp(q)
	r.stats.TmpTuples += int64(tmp.NumTuples())
	if r.em != nil {
		r.em.tmpTuples.Add(int64(tmp.NumTuples()))
	}
	st.lastTmp = tmp.NumTuples()

	// analyze(Rt): OOF collects per-iteration statistics; OOF-NA refreshes
	// only on the first iteration, leaving later iterations with stale data.
	mode := r.opts().OOF
	if mode == stats.ModeNone && iter == 1 {
		mode = stats.ModeSelective
	}
	tmpStats := r.db.AnalyzeRelation(tmp, mode)

	var delta *storage.Relation
	algo := exec.OPSD
	if st.agg != nil {
		delta = st.agg.merge(r.db.Pool(), r.db.Alloc(), tmp, q.Delta)
		if st.rebuildEachIter {
			if err := r.installAggFull(st, q.Pred); err != nil {
				return 0, err
			}
		}
	} else {
		// Dedup pre-allocation uses the conservative estimate min(memory,
		// table size); the raw tuple count comes from insertion counters and
		// is free even without ANALYZE.
		est := tmpStats.DistinctEst
		if est <= 0 {
			est = tmp.NumTuples()
		}
		fullStats := r.fullStats(q.Pred, full, mode)
		if fuse {
			// The fused pass never materializes Rδ, so the DSD decision and
			// the µ update both run on the dedup estimate of |Rδ| — the same
			// ANALYZE output the staged path uses for pre-sizing. Under
			// OOF-NA no estimate exists past iteration 1 and est falls back
			// to the duplicate-inclusive |Rt|, biasing the choice toward
			// OPSD — one more way stale statistics degrade plans, exactly
			// the regime that ablation studies.
			algo = r.chooseAlgo(st, fullStats.NumTuples, est)
			if sec.Parts > 1 {
				delta = r.db.DeltaStepDual(tmp, full, algo, part, sec, est, q.Delta)
			} else {
				delta = r.db.DeltaStep(tmp, full, algo, part, est, q.Delta)
			}
			st.chooser.Observe(est, est-delta.NumTuples())
		} else {
			rdelta := r.db.Dedup(tmp, est, q.Pred+"_rdelta")
			// analyze(Rδ, R) ahead of the set-difference decision.
			rdeltaStats := r.db.AnalyzeRelation(rdelta, mode)
			algo = r.chooseAlgo(st, fullStats.NumTuples, rdeltaStats.NumTuples)
			delta = r.db.Diff(rdelta, full, algo, q.Delta)
			st.chooser.Observe(rdelta.NumTuples(), rdelta.NumTuples()-delta.NumTuples())
			// Epoch reclamation: Rδ is dead the moment ∆R exists (the fused
			// pipeline never materializes it at all).
			rdelta.Release()
		}
		if algo == exec.OPSD {
			r.stats.DiffOPSD++
		} else {
			r.stats.DiffTPSD++
		}
		if r.em != nil {
			if algo == exec.OPSD {
				r.em.diffOPSD.Add(1)
			} else {
				r.em.diffTPSD.Add(1)
			}
		}
		if err := r.db.AppendTo(q.Pred, delta); err != nil {
			return 0, err
		}
	}

	// Install ∆R, releasing the previous iteration's delta: its surviving
	// tuples live on inside R through the blocks R adopted, so only the
	// delta-table references are dropped (and recycled if exclusive).
	if err := r.db.InstallReplacing(delta); err != nil {
		return 0, err
	}
	// Delta statistics feed the next iteration's join build-side choices.
	// Under OOF-NA only iteration 1 records them (mode was forced
	// selective), so later plans reuse stale sizes — the paper's
	// "same query plan at each iteration".
	if mode != stats.ModeNone {
		r.db.AnalyzeRelation(delta, mode)
	}
	n := delta.NumTuples()
	r.stats.DeltaTuples += int64(n)
	if r.em != nil {
		r.em.deltaTuples.Add(int64(n))
	}
	r.hook(s, iter, q.Pred, tmp.NumTuples(), n, algo, r.db.CopySnapshot().Sub(copyBase), skipped)
	// The SQL path surfaces aborts through ExecSQL; the direct kernel calls
	// (fused delta step, aggregate merge) drain silently with partial output.
	// Check here so a step that aborted mid-kernel fails the iteration
	// instead of feeding a truncated ∆R forward.
	if err := r.db.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// installAggFull replaces a recursive-aggregate predicate's full relation
// with a fresh materialization. The replacement joins the memory manager
// under the IDB category and re-registers as a spill candidate — without
// this, the relation whose growth dominates aggregate programs would drop
// out of accounting (and budgeting) at the first rebuild.
func (r *runState) installAggFull(st *idbState, pred string) error {
	full := st.agg.materialize(r.db.Alloc(), pred)
	if err := r.db.InstallReplacing(full); err != nil {
		return err
	}
	r.db.MarkSpillable(pred)
	return nil
}

// secondaryRebuildCooldown is how many iterations the engine keeps a
// predicate's dual route parked after the memory reclaimer evicted a
// secondary view the engine had just delivered. The eviction is the
// pressure signal; rebuilding immediately (a full |R| scatter) would hand
// the next allocation spike the same view to evict — one |R| copy per
// iteration, worse than not carrying at all. Bounding rebuilds to one per
// cooldown window keeps the worst case at |R|/(cooldown+1) extra copies
// per iteration while still recovering when pressure genuinely lifts.
const secondaryRebuildCooldown = 4

// deltaPartitioning picks the partitioning shared by every stage of one
// predicate's delta pipeline this iteration (fused scatter, delta step, ∆R,
// R's carried view, and — when the keyset is join-key-carried — the next
// iteration's hash builds). The fan-out may shift with cardinality; the
// keyset is stratum-stable.
func (r *runState) deltaPartitioning(st *idbState, full *storage.Relation) storage.Partitioning {
	if r.incremental && r.opts().Partitions <= 0 {
		// Update deltas must land on R's carried layout exactly (key columns
		// and fan-out): a mismatched ∆ degrades R ⊎ ∆R to a flat-mutation
		// rebuild of the full relation on every update.
		carried, ok := full.Partitioning()
		return optimizer.ChooseUpdateDeltaPartitioning(carried, ok,
			full.NumTuples(), st.lastTmp, r.db.Pool().Workers(), r.db.Headroom(), st.q.Arity)
	}
	parts := 0
	if p := r.opts().Partitions; p > 0 {
		parts = storage.NormalizePartitions(p)
	} else {
		parts = optimizer.ChooseDeltaPartitionsBudget(full.NumTuples(), st.lastTmp, r.db.Pool().Workers(), r.db.Headroom())
	}
	keyCols := st.keyCols
	if len(keyCols) == 0 {
		keyCols = storage.AllCols(st.q.Arity)
	}
	return storage.Partitioning{KeyCols: keyCols, Parts: parts}
}

// chooseAlgo applies the configured DSD policy.
func (r *runState) chooseAlgo(st *idbState, rTuples, rdeltaTuples int) exec.DiffAlgorithm {
	switch r.opts().DSD {
	case DSDAlwaysOPSD:
		return exec.OPSD
	case DSDAlwaysTPSD:
		return exec.TPSD
	default:
		return st.chooser.Choose(rTuples, rdeltaTuples)
	}
}

// fullStats returns R's statistics under the iteration's OOF mode, falling
// back to a selective ANALYZE when none were ever recorded.
func (r *runState) fullStats(pred string, full *storage.Relation, mode stats.Mode) stats.Table {
	fullStats, ok := r.db.Stats(pred)
	if !ok {
		return r.db.AnalyzeRelation(full, stats.ModeSelective)
	}
	if mode != stats.ModeNone {
		return r.db.AnalyzeRelation(full, mode)
	}
	return fullStats
}

// uieval materializes the temporary table and runs either the unified UIE
// query or the individual per-subquery queries plus merge.
func (r *runState) uieval(q *querygen.IDBQueries, unit querygen.UnitQueries) (*storage.Relation, error) {
	cols := columnsSQL(q.Arity)
	if _, err := r.db.ExecSQL(fmt.Sprintf("CREATE TABLE %s (%s)", q.Tmp, cols)); err != nil {
		return nil, err
	}
	if r.opts().UIE {
		if _, err := r.db.ExecSQL(unit.Unified); err != nil {
			return nil, err
		}
	} else {
		for i, part := range unit.Parts {
			if _, err := r.db.ExecSQL(fmt.Sprintf("CREATE TABLE %s (%s)", unit.PartTables[i], cols)); err != nil {
				return nil, err
			}
			if _, err := r.db.ExecSQL(part); err != nil {
				return nil, err
			}
		}
		if _, err := r.db.ExecSQL(unit.Merge); err != nil {
			return nil, err
		}
		for _, pt := range unit.PartTables {
			if _, err := r.db.ExecSQL("DROP TABLE IF EXISTS " + pt); err != nil {
				return nil, err
			}
		}
	}
	return r.db.Catalog().MustGet(q.Tmp), nil
}

func (r *runState) dropTmp(q *querygen.IDBQueries) {
	_, _ = r.db.ExecSQL("DROP TABLE IF EXISTS " + q.Tmp)
}

// aggNeedsFullRebuild reports whether a recursive-aggregate predicate is
// referenced at a non-delta (full) position inside some delta subquery of
// its stratum, forcing its relation to be rebuilt every iteration.
func (r *runState) aggNeedsFullRebuild(s analysis.Stratum, pred string) bool {
	for _, ri := range s.RuleIdx {
		rule := r.res.Program.Rules[ri]
		var positions []int
		for i, a := range rule.Body {
			if a.Negated {
				continue
			}
			if pi, ok := r.res.Preds[a.Pred]; ok && pi.IsIDB && pi.Stratum == s.Index {
				positions = append(positions, i)
			}
		}
		if len(positions) < 2 {
			continue
		}
		for _, i := range positions {
			if rule.Body[i].Pred == pred {
				return true
			}
		}
	}
	return false
}

func (r *runState) hook(s analysis.Stratum, iter int, pred string, tmp, delta int, algo exec.DiffAlgorithm, copies exec.CopySnapshot, skipped int) {
	var ph obs.PhaseSnapshot
	if r.ob != nil && r.ob.Exec != nil {
		cur := r.ob.Exec.Phase.Snapshot()
		ph = cur.Sub(r.lastPhase)
		r.lastPhase = cur
	}
	if h := r.opts().IterHook; h != nil {
		h(IterInfo{Stratum: s.Index, Iteration: iter, Pred: pred, TmpTuples: tmp, Delta: delta, Algo: algo, Copy: copies, Mem: r.db.MemSnapshot(), ArmsSkipped: skipped, Phase: ph})
	}
}

func columnsSQL(arity int) string {
	parts := make([]string, arity)
	for i := range parts {
		parts[i] = fmt.Sprintf("c%d INT", i)
	}
	return strings.Join(parts, ", ")
}

// RunProgram is a convenience wrapper: parse-free evaluation of an already
// parsed program with default options.
func RunProgram(prog *ast.Program, edbs map[string]*storage.Relation) (*Result, error) {
	return New(DefaultOptions()).Run(prog, edbs)
}
