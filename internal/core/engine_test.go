package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"recstep/internal/programs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
)

// --- helpers -------------------------------------------------------------

type pair struct{ x, y int32 }

func arcRel(edges []pair) *storage.Relation {
	r := storage.NewRelation("arc", []string{"c0", "c1"})
	for _, e := range edges {
		r.Append([]int32{e.x, e.y})
	}
	return r
}

func relPairs(r *storage.Relation) []pair {
	var out []pair
	r.ForEach(func(t []int32) { out = append(out, pair{t[0], t[1]}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].x != out[j].x {
			return out[i].x < out[j].x
		}
		return out[i].y < out[j].y
	})
	return out
}

// refTC computes transitive closure by brute-force fixpoint.
func refTC(edges []pair) []pair {
	set := map[pair]bool{}
	for _, e := range edges {
		set[pair{e.x, e.y}] = true
	}
	for {
		added := false
		for p := range set {
			for _, e := range edges {
				if e.x == p.y && !set[pair{p.x, e.y}] {
					set[pair{p.x, e.y}] = true
					added = true
				}
			}
		}
		if !added {
			break
		}
	}
	out := make([]pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].x != out[j].x {
			return out[i].x < out[j].x
		}
		return out[i].y < out[j].y
	})
	return out
}

func randomEdges(n, m int, seed int64) []pair {
	rng := rand.New(rand.NewSource(seed))
	seen := map[pair]bool{}
	var out []pair
	for len(out) < m {
		p := pair{int32(rng.Intn(n)), int32(rng.Intn(n))}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func runProg(t *testing.T, opts Options, src string, edbs map[string]*storage.Relation) *Result {
	t.Helper()
	res, err := New(opts).Run(programs.MustParse(src), edbs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// --- end-to-end correctness ----------------------------------------------

func TestTCSmallGraph(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {3, 4}}
	res := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	want := refTC(edges)
	if got := relPairs(res.Relations["tc"]); !reflect.DeepEqual(got, want) {
		t.Fatalf("tc = %v, want %v", got, want)
	}
}

func TestTCWithCycle(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {3, 1}}
	res := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	if got := len(relPairs(res.Relations["tc"])); got != 9 {
		t.Fatalf("cyclic tc size = %d, want 9", got)
	}
}

func TestTCRandomGraphMatchesReference(t *testing.T) {
	edges := randomEdges(30, 60, 42)
	res := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	want := refTC(edges)
	if got := relPairs(res.Relations["tc"]); !reflect.DeepEqual(got, want) {
		t.Fatalf("tc mismatch: got %d tuples, want %d", len(got), len(want))
	}
}

func TestTCAllConfigurationsAgree(t *testing.T) {
	edges := randomEdges(25, 50, 7)
	arc := arcRel(edges)
	want := refTC(edges)
	configs := map[string]Options{}
	base := DefaultOptions()
	base.Workers = 4
	configs["default"] = base
	o := base
	o.UIE = false
	configs["no-uie"] = o
	o = base
	o.OOF = stats.ModeNone
	configs["oof-na"] = o
	o = base
	o.OOF = stats.ModeFull
	configs["oof-fa"] = o
	o = base
	o.DSD = DSDAlwaysOPSD
	configs["opsd"] = o
	o = base
	o.DSD = DSDAlwaysTPSD
	configs["tpsd"] = o
	o = base
	o.Dedup = exec.DedupLockMap
	configs["lockmap"] = o
	o = base
	o.Dedup = exec.DedupSort
	configs["sort"] = o
	o = base
	o.Workers = 1
	configs["serial"] = o
	for name, cfg := range configs {
		res := runProg(t, cfg, programs.TC, map[string]*storage.Relation{"arc": arc})
		if got := relPairs(res.Relations["tc"]); !reflect.DeepEqual(got, want) {
			t.Fatalf("config %q: tc mismatch (%d vs %d tuples)", name, len(got), len(want))
		}
	}
}

func TestSGMatchesReference(t *testing.T) {
	edges := []pair{{1, 2}, {1, 3}, {2, 4}, {3, 5}}
	res := runProg(t, DefaultOptions(), programs.SG, map[string]*storage.Relation{"arc": arcRel(edges)})
	// Reference: sg(x,y) if x≠y share a parent, or parents in sg.
	set := map[pair]bool{}
	for {
		added := false
		add := func(p pair) {
			if p.x != p.y && !set[p] {
				set[p] = true
				added = true
			}
		}
		for _, a := range edges {
			for _, b := range edges {
				if a.x == b.x {
					add(pair{a.y, b.y})
				}
			}
		}
		for p := range set {
			for _, a := range edges {
				for _, b := range edges {
					if a.x == p.x && b.x == p.y {
						add(pair{a.y, b.y})
					}
				}
			}
		}
		if !added {
			break
		}
	}
	var want []pair
	for p := range set {
		want = append(want, p)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].x != want[j].x {
			return want[i].x < want[j].x
		}
		return want[i].y < want[j].y
	})
	if got := relPairs(res.Relations["sg"]); !reflect.DeepEqual(got, want) {
		t.Fatalf("sg = %v, want %v", got, want)
	}
}

func TestReach(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {4, 5}}
	id := storage.NewRelation("id", []string{"c0"})
	id.Append([]int32{1})
	res := runProg(t, DefaultOptions(), programs.Reach,
		map[string]*storage.Relation{"arc": arcRel(edges), "id": id})
	var got []int32
	res.Relations["reach"].ForEach(func(tu []int32) { got = append(got, tu[0]) })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Fatalf("reach = %v, want [1 2 3]", got)
	}
}

func TestCCConnectedComponents(t *testing.T) {
	// Two components: {1,2,3} and {4,5}; arcs must connect both directions
	// for min-label propagation to reach every member.
	edges := []pair{{1, 2}, {2, 1}, {2, 3}, {3, 2}, {4, 5}, {5, 4}}
	res := runProg(t, DefaultOptions(), programs.CC, map[string]*storage.Relation{"arc": arcRel(edges)})
	labels := map[int32]int32{}
	res.Relations["cc2"].ForEach(func(tu []int32) { labels[tu[0]] = tu[1] })
	want := map[int32]int32{1: 1, 2: 1, 3: 1, 4: 4, 5: 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("cc2 = %v, want %v", labels, want)
	}
	// cc = distinct component representatives.
	var reps []int32
	res.Relations["cc"].ForEach(func(tu []int32) { reps = append(reps, tu[0]) })
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	if !reflect.DeepEqual(reps, []int32{1, 4}) {
		t.Fatalf("cc = %v, want [1 4]", reps)
	}
}

func TestSSSPShortestPaths(t *testing.T) {
	arc := storage.NewRelation("arc", []string{"c0", "c1", "c2"})
	for _, e := range [][3]int32{{1, 2, 10}, {1, 3, 2}, {3, 2, 3}, {2, 4, 1}, {3, 4, 100}} {
		arc.Append(e[:])
	}
	id := storage.NewRelation("id", []string{"c0"})
	id.Append([]int32{1})
	res := runProg(t, DefaultOptions(), programs.SSSP,
		map[string]*storage.Relation{"arc": arc, "id": id})
	dist := map[int32]int32{}
	res.Relations["sssp"].ForEach(func(tu []int32) { dist[tu[0]] = tu[1] })
	want := map[int32]int32{1: 0, 2: 5, 3: 2, 4: 6}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("sssp = %v, want %v", dist, want)
	}
}

func TestNTCNegation(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}}
	res := runProg(t, DefaultOptions(), programs.NTC, map[string]*storage.Relation{"arc": arcRel(edges)})
	tc := map[pair]bool{}
	for _, p := range refTC(edges) {
		tc[p] = true
	}
	nodes := []int32{1, 2, 3}
	var want []pair
	for _, x := range nodes {
		for _, y := range nodes {
			if !tc[pair{x, y}] {
				want = append(want, pair{x, y})
			}
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].x != want[j].x {
			return want[i].x < want[j].x
		}
		return want[i].y < want[j].y
	})
	if got := relPairs(res.Relations["ntc"]); !reflect.DeepEqual(got, want) {
		t.Fatalf("ntc = %v, want %v", got, want)
	}
}

func TestGTCAggregation(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}}
	res := runProg(t, DefaultOptions(), programs.GTC, map[string]*storage.Relation{"arc": arcRel(edges)})
	counts := map[int32]int32{}
	res.Relations["gtc"].ForEach(func(tu []int32) { counts[tu[0]] = tu[1] })
	want := map[int32]int32{1: 2, 2: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("gtc = %v, want %v", counts, want)
	}
}

func TestAndersenPointsTo(t *testing.T) {
	rel := func(name string, rows ...[2]int32) *storage.Relation {
		r := storage.NewRelation(name, []string{"c0", "c1"})
		for _, row := range rows {
			r.Append(row[:])
		}
		return r
	}
	// p = &a; q = p; *q = &b (store); r = *p (load).
	// Variables: p=1, q=2, r=3, a=10, b=11.
	edbs := map[string]*storage.Relation{
		"addressOf": rel("addressOf", [2]int32{1, 10}, [2]int32{4, 11}), // p=&a, s=&b (s=4)
		"assign":    rel("assign", [2]int32{2, 1}),                      // q = p
		"store":     rel("store", [2]int32{2, 4}),                       // *q = s
		"load":      rel("load", [2]int32{3, 1}),                        // r = *p
	}
	res := runProg(t, DefaultOptions(), programs.Andersen, edbs)
	got := map[pair]bool{}
	res.Relations["pointsTo"].ForEach(func(tu []int32) { got[pair{tu[0], tu[1]}] = true })
	// Expected: pointsTo(p,a), pointsTo(s,b), pointsTo(q,a) [assign],
	// pointsTo(a,b) [store: q→a, s→b], pointsTo(r,b) [load: p→a, a→b].
	want := map[pair]bool{
		{1, 10}: true, {4, 11}: true, {2, 10}: true, {10, 11}: true, {3, 11}: true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pointsTo = %v, want %v", got, want)
	}
}

func TestCSPAOnTinyProgram(t *testing.T) {
	rel := func(name string, rows ...[2]int32) *storage.Relation {
		r := storage.NewRelation(name, []string{"c0", "c1"})
		for _, row := range rows {
			r.Append(row[:])
		}
		return r
	}
	edbs := map[string]*storage.Relation{
		"assign":      rel("assign", [2]int32{1, 2}, [2]int32{2, 3}),
		"dereference": rel("dereference", [2]int32{1, 4}, [2]int32{3, 5}),
	}
	res := runProg(t, DefaultOptions(), programs.CSPA, edbs)
	vf := map[pair]bool{}
	res.Relations["valueFlow"].ForEach(func(tu []int32) { vf[pair{tu[0], tu[1]}] = true })
	// Base: assign gives (1,2),(2,3) reversed? Rule: valueFlow(y,x) :- assign(y,x)
	// keeps orientation (y,x) as written, plus reflexive pairs for every
	// assign endpoint, plus transitive closure.
	mustHave := []pair{{1, 2}, {2, 3}, {1, 3}, {1, 1}, {2, 2}, {3, 3}}
	for _, p := range mustHave {
		if !vf[p] {
			t.Fatalf("valueFlow missing %v; have %v", p, vf)
		}
	}
	// memoryAlias must include the reflexive entries.
	ma := map[pair]bool{}
	res.Relations["memoryAlias"].ForEach(func(tu []int32) { ma[pair{tu[0], tu[1]}] = true })
	for _, p := range []pair{{1, 1}, {2, 2}, {3, 3}} {
		if !ma[p] {
			t.Fatalf("memoryAlias missing %v; have %v", p, ma)
		}
	}
}

func TestCSDALinearChain(t *testing.T) {
	// nullEdge(0,1), arc chain 1→2→…→50: null(0,k) for all k in 1..50,
	// via ~50 iterations.
	nullEdge := storage.NewRelation("nullEdge", []string{"c0", "c1"})
	nullEdge.Append([]int32{0, 1})
	arc := storage.NewRelation("arc", []string{"c0", "c1"})
	for i := int32(1); i < 50; i++ {
		arc.Append([]int32{i, i + 1})
	}
	var iters int
	opts := DefaultOptions()
	opts.IterHook = func(ii IterInfo) {
		if ii.Iteration > iters {
			iters = ii.Iteration
		}
	}
	res := runProg(t, opts, programs.CSDA,
		map[string]*storage.Relation{"nullEdge": nullEdge, "arc": arc})
	if got := res.Relations["null"].NumTuples(); got != 50 {
		t.Fatalf("null tuples = %d, want 50", got)
	}
	if iters < 50 {
		t.Fatalf("iterations = %d, want ≥ 50 (one hop per iteration)", iters)
	}
}

// --- engine behaviour ----------------------------------------------------

func TestInlineFactsOnly(t *testing.T) {
	src := `
		arc(1, 2).
		arc(2, 3).
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`
	res := runProg(t, DefaultOptions(), src, nil)
	if got := res.Relations["tc"].NumTuples(); got != 3 {
		t.Fatalf("tc = %d tuples, want 3", got)
	}
}

func TestStatsCounters(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {3, 4}}
	res := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	if res.Stats.Iterations < 3 {
		t.Fatalf("iterations = %d, want ≥ 3", res.Stats.Iterations)
	}
	if res.Stats.Queries == 0 || res.Stats.TmpTuples == 0 || res.Stats.DeltaTuples == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestNonUIEIssuesMoreQueries(t *testing.T) {
	rel2 := func(name string, rows ...[2]int32) *storage.Relation {
		r := storage.NewRelation(name, []string{"c0", "c1"})
		for _, row := range rows {
			r.Append(row[:])
		}
		return r
	}
	edbs := func() map[string]*storage.Relation {
		return map[string]*storage.Relation{
			"addressOf": rel2("addressOf", [2]int32{1, 10}),
			"assign":    rel2("assign", [2]int32{2, 1}, [2]int32{3, 2}),
			"store":     rel2("store", [2]int32{2, 4}),
			"load":      rel2("load", [2]int32{3, 1}),
		}
	}
	withUIE := runProg(t, DefaultOptions(), programs.Andersen, edbs())
	noUIE := DefaultOptions()
	noUIE.UIE = false
	without := runProg(t, noUIE, programs.Andersen, edbs())
	if without.Stats.Queries <= withUIE.Stats.Queries {
		t.Fatalf("non-UIE should issue more queries: %d vs %d", without.Stats.Queries, withUIE.Stats.Queries)
	}
	// Same answer regardless.
	if got, want := relPairs(without.Relations["pointsTo"]), relPairs(withUIE.Relations["pointsTo"]); !reflect.DeepEqual(got, want) {
		t.Fatal("UIE changed the result")
	}
}

func TestDSDSwitchesAlgorithms(t *testing.T) {
	// On a long chain, R grows while Rδ stays a single tuple, so β grows
	// past the TPSD threshold and dynamic DSD must eventually pick TPSD.
	var edges []pair
	for i := int32(0); i < 60; i++ {
		edges = append(edges, pair{i, i + 1})
	}
	// reach-style chain via TC would square; use CSDA-style single chain.
	nullEdge := storage.NewRelation("nullEdge", []string{"c0", "c1"})
	nullEdge.Append([]int32{0, 1})
	arc := arcRel(edges[1:])
	opts := DefaultOptions()
	res, err := New(opts).Run(programs.MustParse(programs.CSDA),
		map[string]*storage.Relation{"nullEdge": nullEdge, "arc": arc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DiffTPSD == 0 {
		t.Fatalf("dynamic DSD never chose TPSD: %+v", res.Stats)
	}
	if res.Stats.DiffOPSD == 0 {
		t.Fatalf("dynamic DSD never chose OPSD: %+v", res.Stats)
	}
}

func TestIterHookObservesDiffAlgo(t *testing.T) {
	var infos []IterInfo
	opts := DefaultOptions()
	opts.IterHook = func(ii IterInfo) { infos = append(infos, ii) }
	runProg(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel([]pair{{1, 2}, {2, 3}})})
	if len(infos) == 0 {
		t.Fatal("hook never fired")
	}
	if infos[0].Pred != "tc" || infos[0].Iteration != 1 {
		t.Fatalf("first hook = %+v", infos[0])
	}
}

func TestEDBArityMismatchRejected(t *testing.T) {
	bad := storage.NewRelation("arc", []string{"c0"})
	bad.Append([]int32{1})
	_, err := New(DefaultOptions()).Run(programs.MustParse(programs.TC),
		map[string]*storage.Relation{"arc": bad})
	if err == nil {
		t.Fatal("expected arity error")
	}
}

func TestUnknownEDBRejected(t *testing.T) {
	_, err := New(DefaultOptions()).Run(programs.MustParse(programs.TC),
		map[string]*storage.Relation{"nonsense": arcRel(nil)})
	if err == nil {
		t.Fatal("expected unknown-EDB error")
	}
}

func TestReservedSuffixRejected(t *testing.T) {
	_, err := New(DefaultOptions()).Run(programs.MustParse("p_mdelta(x) :- e(x)."), nil)
	if err == nil {
		t.Fatal("expected reserved-suffix error")
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIterations = 2
	var edges []pair
	for i := int32(0); i < 20; i++ {
		edges = append(edges, pair{i, i + 1})
	}
	_, err := New(opts).Run(programs.MustParse(programs.TC),
		map[string]*storage.Relation{"arc": arcRel(edges)})
	if err == nil {
		t.Fatal("expected MaxIterations error")
	}
}

func TestEmptyEDBProducesEmptyIDB(t *testing.T) {
	res := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arcRel(nil)})
	if got := res.Relations["tc"].NumTuples(); got != 0 {
		t.Fatalf("tc = %d tuples, want 0", got)
	}
}

func TestNaiveEvaluationMatchesSemiNaive(t *testing.T) {
	edges := randomEdges(20, 40, 5)
	arc := arcRel(edges)
	want := refTC(edges)
	opts := DefaultOptions()
	opts.Naive = true
	res := runProg(t, opts, programs.TC, map[string]*storage.Relation{"arc": arc})
	if got := relPairs(res.Relations["tc"]); !reflect.DeepEqual(got, want) {
		t.Fatalf("naive tc mismatch: %d vs %d tuples", len(got), len(want))
	}
	// Naive re-derives everything each iteration: strictly more tmp tuples.
	semi := runProg(t, DefaultOptions(), programs.TC, map[string]*storage.Relation{"arc": arc})
	if res.Stats.TmpTuples <= semi.Stats.TmpTuples {
		t.Fatalf("naive should produce more raw tuples: %d vs %d", res.Stats.TmpTuples, semi.Stats.TmpTuples)
	}
}

func TestNaiveCCAndSSSP(t *testing.T) {
	edges := []pair{{1, 2}, {2, 1}, {2, 3}, {3, 2}, {4, 5}, {5, 4}}
	opts := DefaultOptions()
	opts.Naive = true
	res := runProg(t, opts, programs.CC, map[string]*storage.Relation{"arc": arcRel(edges)})
	labels := map[int32]int32{}
	res.Relations["cc2"].ForEach(func(tu []int32) { labels[tu[0]] = tu[1] })
	want := map[int32]int32{1: 1, 2: 1, 3: 1, 4: 4, 5: 4}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("naive cc2 = %v, want %v", labels, want)
	}
}

func TestEOSTEndToEnd(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {3, 4}, {4, 5}}
	for _, eost := range []bool{true, false} {
		opts := DefaultOptions()
		opts.DisableIO = false
		opts.EOST = eost
		opts.SpillDir = t.TempDir()
		res := runProg(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
		if got, want := relPairs(res.Relations["tc"]), refTC(edges); !reflect.DeepEqual(got, want) {
			t.Fatalf("eost=%t: wrong result", eost)
		}
	}
}
