package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"recstep/internal/datalog/analysis"
	"recstep/internal/datalog/ast"
	"recstep/internal/datalog/querygen"
	"recstep/internal/obs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/storage"
)

// Incremental fixpoint maintenance. RunIncremental evaluates a program once
// and keeps the database resident; ApplyDelta then maintains the fixpoint
// under EDB insertions and deletions without restarting from ⊥:
//
//   - insertions seed the existing semi-naive machinery with a pre-scattered
//     ∆ — iteration 1 evaluates each rule once per occurrence of a changed
//     predicate with the injected tuples substituted there, and the ordinary
//     Rec iterations take over;
//   - deletions run DRed per stratum: an over-delete fixpoint computes the
//     downward closure of the deleted facts (candidates are intersected with
//     R, so the dead set is exact-or-under the derivable-from-deleted set),
//     the dead tuples are removed physically, and a rescue fixpoint
//     re-derives every dead tuple that still has a derivation — the rescue
//     arms join the full rule bodies against the (tiny) dead table on the
//     head columns, so the greedy join order seeds from it and each round
//     costs O(|dead| · fanout), not O(|R|);
//   - strata with aggregation, or with a changed predicate under negation,
//     fall back to recompute-and-diff (the only sound option there); strata
//     that never read a changed predicate are skipped wholesale.
//
// Each stratum's net change (minus = dead − re-added, plus = added − dead)
// propagates to the strata above it through the same side tables the EDB
// delta entered through, so one ApplyDelta walks the dependency order once.

// UpdateStats describes one ApplyDelta call.
type UpdateStats struct {
	// Inserted and Deleted are the net EDB rows applied (requested rows
	// already present / absent do not count).
	Inserted int
	Deleted  int
	// OverDeleted counts tuples removed by DRed's downward closure across
	// all strata; Rescued counts how many of those were re-derived.
	OverDeleted int
	Rescued     int
	// FallbackStrata counts strata maintained by recompute-and-diff.
	FallbackStrata int
	Duration       time.Duration
}

// Database is a resident evaluation: the substrate database stays open
// between updates with every relation (and its carried partitionings, spill
// state and statistics) intact. Not safe for concurrent updates; methods
// serialize on an internal lock.
type Database struct {
	mu      sync.Mutex
	run     *runState
	baseCtx context.Context
	im      *incrMetrics
	stats   Stats
	// dirty marks a failed update: derived relations may hold a partially
	// applied state, so further updates are refused until Rederive.
	dirty  bool
	closed bool
}

// RunIncremental evaluates the program from scratch and returns the resident
// database. The caller must Close it; relations remain inside the database
// (spillable under a memory budget) rather than being restored out.
func (e *Engine) RunIncremental(ctx context.Context, prog *ast.Program, edbs map[string]*storage.Relation) (*Database, error) {
	run, err := e.prepare(ctx, prog)
	if err != nil {
		return nil, err
	}
	if evalErr := run.evaluate(edbs); evalErr != nil {
		run.abort(evalErr)
		run.db.Close()
		return nil, evalErr
	}
	run.collectStats()
	run.stats.Mem = run.db.MemSnapshot()
	run.incremental = true
	d := &Database{run: run, baseCtx: ctx, stats: run.stats}
	if run.ob != nil && run.ob.Reg != nil {
		d.im = &incrMetrics{}
		d.im.register(run.ob.Reg)
	}
	return d, nil
}

// Stats returns the initial from-scratch evaluation's statistics.
func (d *Database) Stats() Stats { return d.stats }

// Dirty reports whether a failed update left derived state inconsistent.
func (d *Database) Dirty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirty
}

// Relation returns the live relation for a predicate (EDB or IDB). The
// handle reads the current state; it must not be mutated by the caller.
func (d *Database) Relation(name string) (*storage.Relation, bool) {
	return d.run.db.Catalog().Get(name)
}

// IDBNames returns the program's derived predicates in a stable order.
func (d *Database) IDBNames() []string { return d.run.res.IDBNames() }

// MemSnapshot reads the resident database's memory accounting.
func (d *Database) MemSnapshot() memory.Snapshot { return d.run.db.MemSnapshot() }

// Close releases every relation and closes the substrate database. The
// returned snapshot is taken after release — LiveTotal reads zero unless
// blocks leaked.
func (d *Database) Close() (memory.Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return memory.Snapshot{}, errors.New("core: database already closed")
	}
	d.closed = true
	d.run.db.ReleaseAll()
	snap := d.run.db.MemSnapshot()
	err := d.run.db.Close()
	return snap, err
}

// ApplyDelta applies insertions and deletions to one EDB relation and
// maintains every derived relation incrementally. Rows already present
// (insertions) or absent (deletions) are ignored; a row in both lists ends
// up present. On error the database is marked dirty — resident relations
// stay readable, but further updates are refused until Rederive.
func (d *Database) ApplyDelta(rel string, ins, del [][]int32) (UpdateStats, error) {
	return d.ApplyDeltaContext(d.baseCtx, rel, ins, del)
}

// ApplyDeltaContext is ApplyDelta under a caller-supplied context: the
// update aborts at the next task boundary on cancellation.
func (d *Database) ApplyDeltaContext(ctx context.Context, rel string, ins, del [][]int32) (UpdateStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var us UpdateStats
	if d.closed {
		return us, errors.New("core: database closed")
	}
	if d.dirty {
		return us, errors.New("core: database dirty after failed update; Rederive first")
	}
	r := d.run
	pi, ok := r.res.Preds[rel]
	if !ok {
		return us, fmt.Errorf("core: unknown relation %q", rel)
	}
	if pi.IsIDB {
		return us, fmt.Errorf("core: ApplyDelta targets base relations; %q is derived", rel)
	}
	for _, rows := range [][][]int32{ins, del} {
		for _, row := range rows {
			if len(row) != pi.Arity {
				return us, fmt.Errorf("core: %q update row has arity %d, relation expects %d", rel, len(row), pi.Arity)
			}
		}
	}

	start := time.Now()
	r.db.SetContext(ctx)
	defer r.db.SetContext(d.baseCtx)
	endSpan := r.tracer().Span("update", 0, obs.Step{Pred: rel}, -1)
	u := &updateRun{r: r, us: &us, changed: map[string]querygen.Changed{}, tables: map[string]struct{}{}}
	err := func() (err error) {
		// Same containment as evaluate: a panic on the engine goroutine
		// becomes an error, the update fails dirty, the process survives.
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("core: update panic: %v\n%s", v, debug.Stack())
			}
		}()
		return u.apply(rel, ins, del)
	}()
	if err == nil {
		err = r.db.Err()
	}
	u.cleanup()
	endSpan()
	us.Duration = time.Since(start)
	if err != nil {
		d.dirty = true
		if d.im != nil {
			d.im.failed.Add(1)
		}
		return us, err
	}
	if d.im != nil {
		d.im.updates.Add(1)
		d.im.inserted.Add(int64(us.Inserted))
		d.im.deleted.Add(int64(us.Deleted))
		d.im.overDeleted.Add(int64(us.OverDeleted))
		d.im.rescued.Add(int64(us.Rescued))
		d.im.fallback.Add(int64(us.FallbackStrata))
		d.im.latencyUS.Observe(us.Duration.Microseconds())
	}
	return us, nil
}

// Rederive discards every derived relation and re-runs the fixpoint from
// scratch over the current base relations — the recovery path after a failed
// update. The substrate's recorded run failure is cleared first; base
// relations are left as the failed update last wrote them.
func (d *Database) Rederive() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("core: database closed")
	}
	r := d.run
	r.db.SetContext(d.baseCtx)
	r.db.ResetErr()
	// Drop any update temporaries a failed ApplyDelta left behind.
	for _, name := range r.db.Catalog().Names() {
		for _, suf := range querygen.UpdateSuffixes {
			if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
				r.db.DropTable(name)
				break
			}
		}
	}
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("core: rederive panic: %v\n%s", v, debug.Stack())
			}
		}()
		// Fresh derived relations: replacing the objects wholesale clears any
		// relation-level sticky fault state a failed update poisoned them
		// with, and releases whatever partial contents they held.
		for _, name := range r.res.IDBNames() {
			pi := r.res.Preds[name]
			full := storage.NewRelation(name, storage.NumberedColumns(pi.Arity))
			full.SetLifecycle(r.db.Alloc(), storage.CatIDB)
			if err := r.db.InstallReplacing(full); err != nil {
				return err
			}
			r.db.MarkSpillable(name)
			delta := storage.NewRelation(querygen.DeltaTable(name), storage.NumberedColumns(pi.Arity))
			delta.SetLifecycle(r.db.Alloc(), storage.CatDelta)
			if err := r.db.InstallReplacing(delta); err != nil {
				return err
			}
		}
		for _, s := range r.res.Strata {
			if err := r.evalStratum(s); err != nil {
				return err
			}
		}
		return r.db.FinalCommit()
	}()
	if err == nil {
		err = r.db.Err()
	}
	if err != nil {
		d.dirty = true
		return err
	}
	d.dirty = false
	return nil
}

// incrMetrics are the registry instruments ApplyDelta exports.
type incrMetrics struct {
	updates     obs.Counter
	failed      obs.Counter
	inserted    obs.Counter
	deleted     obs.Counter
	overDeleted obs.Counter
	rescued     obs.Counter
	fallback    obs.Counter
	latencyUS   obs.Histogram
}

func (m *incrMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("recstep_incremental_updates_total",
		"ApplyDelta calls completed successfully.", &m.updates)
	reg.RegisterCounter("recstep_incremental_update_failures_total",
		"ApplyDelta calls that failed, leaving the database dirty.", &m.failed)
	reg.RegisterCounter("recstep_incremental_inserted_tuples_total",
		"Net base-relation rows inserted by updates.", &m.inserted)
	reg.RegisterCounter("recstep_incremental_deleted_tuples_total",
		"Net base-relation rows deleted by updates.", &m.deleted)
	reg.RegisterCounter("recstep_incremental_overdeleted_tuples_total",
		"Derived tuples removed by DRed's downward closure.", &m.overDeleted)
	reg.RegisterCounter("recstep_incremental_rescued_tuples_total",
		"Over-deleted tuples re-derived by the rescue fixpoint.", &m.rescued)
	reg.RegisterCounter("recstep_incremental_fallback_strata_total",
		"Strata maintained by recompute-and-diff instead of the DRed fast path.", &m.fallback)
	reg.RegisterHistogram("recstep_incremental_update_latency_us",
		"End-to-end ApplyDelta latency in microseconds.", &m.latencyUS)
}

// updateRun is the per-ApplyDelta evaluation state.
type updateRun struct {
	r  *runState
	us *UpdateStats
	// changed records, per predicate, which net-change side tables exist so
	// far; strata consult it to decide skip / fast path / fallback.
	changed map[string]querygen.Changed
	// tables are the update side tables to drop at the end (success or not).
	tables map[string]struct{}
}

func (u *updateRun) track(name string) { u.tables[name] = struct{}{} }

func (u *updateRun) cleanup() {
	for name := range u.tables {
		u.r.db.DropTable(name)
	}
}

// apply is the update driver: exact EDB delta, physical base mutation, then
// one pass over the strata in dependency order.
func (u *updateRun) apply(rel string, ins, del [][]int32) error {
	r := u.r
	// Exact net EDB delta. Final contents are (cur − del) ∪ ins, so
	// minus = (cur ∩ del) − ins and plus = ins − cur; rows listed in both
	// del and ins cancel. Membership over cur makes this O(|update|) probes
	// after one parallel O(|cur|) hash build.
	m, err := r.db.BuildMembership(rel)
	if err != nil {
		return err
	}
	insSet := make(map[string]struct{}, len(ins))
	for _, row := range ins {
		insSet[packRow(row)] = struct{}{}
	}
	seen := make(map[string]struct{}, len(ins)+len(del))
	var minusRows, plusRows [][]int32
	for _, row := range del {
		k := packRow(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if _, kept := insSet[k]; !kept && m.Contains(row) {
			minusRows = append(minusRows, row)
		}
	}
	for _, row := range ins {
		k := packRow(row)
		if _, dup := seen[k+"+"]; dup {
			continue
		}
		seen[k+"+"] = struct{}{}
		if !m.Contains(row) {
			plusRows = append(plusRows, row)
		}
	}
	m.Release()
	if err := r.db.Err(); err != nil {
		return err
	}
	if len(minusRows) == 0 && len(plusRows) == 0 {
		return nil
	}

	// Physical base mutation first: every stratum below reads the new EDB.
	if n, err := r.db.DeleteFrom(rel, minusRows); err != nil {
		return err
	} else {
		u.us.Deleted = n
	}
	if err := r.db.AppendRowsTo(rel, plusRows); err != nil {
		return err
	}
	u.us.Inserted = len(plusRows)
	u.changed[rel] = querygen.Changed{Minus: len(minusRows) > 0, Plus: len(plusRows) > 0}
	if err := u.installDeltaTables(rel, minusRows, plusRows); err != nil {
		return err
	}

	for _, s := range r.res.Strata {
		if !querygen.StratumReadsChanged(r.res, s, u.changed) {
			continue
		}
		if querygen.StratumNeedsFallback(r.res, s, u.changed) {
			u.us.FallbackStrata++
			if err := u.fallbackStratum(s); err != nil {
				return err
			}
			continue
		}
		if err := u.incStratum(s); err != nil {
			return err
		}
	}
	return r.db.FinalCommit()
}

// installDeltaTables materializes a predicate's minus/plus side tables (only
// the non-empty ones) and, when tuples were deleted, the old-value
// over-approximation current ∪ minus the downstream over-delete rounds read.
func (u *updateRun) installDeltaTables(pred string, minusRows, plusRows [][]int32) error {
	r := u.r
	if len(minusRows) > 0 {
		minus, err := u.installRows(querygen.MinusTable(pred), len(minusRows[0]), minusRows)
		if err != nil {
			return err
		}
		cur := r.db.Catalog().MustGet(pred)
		old := storage.NewRelation(querygen.OldTable(pred), storage.NumberedColumns(cur.Arity()))
		old.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
		old.AppendRelation(cur)
		old.AppendRelation(minus)
		u.track(old.Name())
		if err := r.db.Install(old); err != nil {
			return err
		}
	}
	if len(plusRows) > 0 {
		if _, err := u.installRows(querygen.PlusTable(pred), len(plusRows[0]), plusRows); err != nil {
			return err
		}
	}
	return nil
}

// installRows catalogs a fresh side table holding the given rows.
func (u *updateRun) installRows(name string, arity int, rows [][]int32) (*storage.Relation, error) {
	rel := storage.NewRelation(name, storage.NumberedColumns(arity))
	rel.SetLifecycle(u.r.db.Alloc(), storage.CatIntermediate)
	for _, row := range rows {
		rel.Append(row)
	}
	u.track(name)
	return rel, u.r.db.Install(rel)
}

// installSideTables materializes one IDB's net-change tables after its
// stratum completes: minus = dead − added, plus = added − dead (a tuple both
// over-deleted and re-added by the insertion phase nets out), plus the old
// table when anything was deleted. Updates the changed map.
func (u *updateRun) installSideTables(pred string, dead, added *storage.Relation) error {
	r := u.r
	deadN, addN := 0, 0
	if dead != nil {
		deadN = dead.NumTuples()
	}
	if added != nil {
		addN = added.NumTuples()
	}
	var minus, plus *storage.Relation
	switch {
	case deadN > 0 && addN > 0:
		minus = r.db.Diff(dead, added, exec.OPSD, querygen.MinusTable(pred))
		plus = r.db.Diff(added, dead, exec.OPSD, querygen.PlusTable(pred))
	case deadN > 0:
		minus = shareInto(r, querygen.MinusTable(pred), dead)
	case addN > 0:
		plus = shareInto(r, querygen.PlusTable(pred), added)
	}
	ch := querygen.Changed{}
	if minus != nil && minus.NumTuples() > 0 {
		ch.Minus = true
		u.track(minus.Name())
		if err := r.db.Install(minus); err != nil {
			return err
		}
		cur := r.db.Catalog().MustGet(pred)
		old := storage.NewRelation(querygen.OldTable(pred), storage.NumberedColumns(cur.Arity()))
		old.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
		old.AppendRelation(cur)
		old.AppendRelation(minus)
		u.track(old.Name())
		if err := r.db.Install(old); err != nil {
			return err
		}
	} else if minus != nil {
		minus.Release()
	}
	if plus != nil && plus.NumTuples() > 0 {
		ch.Plus = true
		u.track(plus.Name())
		if err := r.db.Install(plus); err != nil {
			return err
		}
	} else if plus != nil {
		plus.Release()
	}
	if ch.Minus || ch.Plus {
		u.changed[pred] = ch
	}
	return r.db.Err()
}

// shareInto copies a relation's contents under a new name by block sharing.
func shareInto(r *runState, name string, src *storage.Relation) *storage.Relation {
	out := storage.NewRelation(name, storage.NumberedColumns(src.Arity()))
	out.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
	out.AppendRelation(src)
	return out
}

// fallbackStratum maintains one stratum by recompute-and-diff: snapshot the
// current (pre-update-propagation) values, reset the stratum's relations,
// re-run its fixpoint against the already-updated inputs below, and diff.
func (u *updateRun) fallbackStratum(s analysis.Stratum) error {
	r := u.r
	for _, name := range s.IDBs {
		cur := r.db.Catalog().MustGet(name)
		prev := shareInto(r, querygen.PrevTable(name), cur)
		u.track(prev.Name())
		if err := r.db.Install(prev); err != nil {
			return err
		}
		pi := r.res.Preds[name]
		empty := storage.NewRelation(name, storage.NumberedColumns(pi.Arity))
		empty.SetLifecycle(r.db.Alloc(), storage.CatIDB)
		if err := r.db.InstallReplacing(empty); err != nil {
			return err
		}
		r.db.MarkSpillable(name)
	}
	if err := r.evalStratum(s); err != nil {
		return err
	}
	for _, name := range s.IDBs {
		cur := r.db.Catalog().MustGet(name)
		prev := r.db.Catalog().MustGet(querygen.PrevTable(name))
		minus := r.db.Diff(prev, cur, exec.OPSD, querygen.MinusTable(name))
		added := r.db.Diff(cur, prev, exec.OPSD, querygen.PlusTable(name))
		err := u.installSideTables(name, minus, added)
		minus.Release()
		added.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// incStratum maintains one stratum on the fast path: DRed for deletions,
// seeded semi-naive for insertions, then the net side tables.
func (u *updateRun) incStratum(s analysis.Stratum) error {
	r := u.r
	anyMinus, anyPlus := false, false
	for _, ri := range s.RuleIdx {
		for _, a := range r.res.Program.Rules[ri].Body {
			if a.Negated {
				continue
			}
			c := u.changed[a.Pred]
			anyMinus = anyMinus || c.Minus
			anyPlus = anyPlus || c.Plus
		}
	}

	dead := make(map[string]*storage.Relation, len(s.IDBs))
	if anyMinus {
		if err := u.deletePhase(s, dead); err != nil {
			return err
		}
	}

	added := make(map[string]*storage.Relation, len(s.IDBs))
	if anyPlus {
		if err := u.insertPhase(s, added); err != nil {
			return err
		}
	}

	for _, pred := range s.IDBs {
		if err := u.installSideTables(pred, dead[pred], added[pred]); err != nil {
			return err
		}
	}
	return nil
}

// deletePhase runs DRed for one stratum: the over-delete downward closure
// (physical deletion deferred, so same-stratum reads see pre-update values),
// the physical deletion, then the rescue fixpoint. On return dead[pred]
// holds each predicate's net-deleted set (cataloged as its dead table).
func (u *updateRun) deletePhase(s analysis.Stratum, dead map[string]*storage.Relation) error {
	r := u.r
	for _, pred := range s.IDBs {
		pi := r.res.Preds[pred]
		for _, name := range []string{querygen.DeadTable(pred), querygen.OverTable(pred)} {
			rel := storage.NewRelation(name, storage.NumberedColumns(pi.Arity))
			rel.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
			u.track(name)
			if err := r.db.Install(rel); err != nil {
				return err
			}
		}
		dead[pred] = r.db.Catalog().MustGet(querygen.DeadTable(pred))
	}

	// Membership indexes over each predicate's pre-deletion contents, built
	// lazily on the first non-empty candidate set and probed every round —
	// candidates ∩ R keeps phantom candidates (never-derived tuples the
	// over-approximated old tables can produce) out of the dead set.
	members := make(map[string]*exec.Membership, len(s.IDBs))
	defer func() {
		for _, m := range members {
			m.Release()
		}
	}()

	for round := 1; ; round++ {
		if round > r.opts().MaxIterations {
			return fmt.Errorf("core: stratum %d over-delete exceeded %d rounds", s.Index, r.opts().MaxIterations)
		}
		anyNew := false
		for _, pred := range s.IDBs {
			r.db.SetStep(s.Index, round, pred)
			unit, err := r.gen.OverDeleteQueries(s, pred, u.changed, round == 1)
			if err != nil {
				return err
			}
			if round == 1 {
				// Round 1 also runs the propagation arms: over tables
				// install in predicate order within a round, so a predicate
				// evaluated after a producer must consume the producer's
				// round-1 over table in round 1 itself — by round 2 it has
				// been replaced. Arms over still-empty over tables are
				// dropped by the runner's empty-∆ filter.
				prop, perr := r.gen.OverDeleteQueries(s, pred, u.changed, false)
				if perr != nil {
					return perr
				}
				unit = querygen.MergeUnits(querygen.TmpTable(pred), unit, prop)
			}
			newDead, err := u.roundDead(s, pred, unit, members, dead[pred])
			if err != nil {
				return err
			}
			n := 0
			if newDead != nil {
				n = newDead.NumTuples()
			} else {
				newDead = storage.NewRelation(querygen.OverTable(pred), storage.NumberedColumns(r.res.Preds[pred].Arity))
				newDead.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
			}
			if n > 0 {
				anyNew = true
				u.us.OverDeleted += n
				if err := r.db.AppendTo(querygen.DeadTable(pred), newDead); err != nil {
					return err
				}
			}
			// Install this round's over table (replacing last round's): the
			// next round's propagation arms read it as their ∆.
			if err := r.db.InstallReplacing(newDead); err != nil {
				return err
			}
		}
		r.db.EndIteration()
		if err := r.db.Err(); err != nil {
			return err
		}
		if !anyNew {
			break
		}
	}

	// Physical deletion. The membership indexes are stale from here on.
	for _, pred := range s.IDBs {
		if dead[pred].NumTuples() == 0 {
			continue
		}
		if _, err := r.db.DeleteFrom(pred, rowsOf(dead[pred])); err != nil {
			return err
		}
	}

	// Rescue fixpoint: re-derive dead tuples that still have a derivation
	// from the post-deletion state, append them back, shrink the dead sets.
	for round := 1; ; round++ {
		if round > r.opts().MaxIterations {
			return fmt.Errorf("core: stratum %d rescue exceeded %d rounds", s.Index, r.opts().MaxIterations)
		}
		anyRescued := false
		for _, pred := range s.IDBs {
			if dead[pred].NumTuples() == 0 {
				continue
			}
			r.db.SetStep(s.Index, round, pred)
			unit, err := r.gen.RescueQueries(s, pred)
			if err != nil {
				return err
			}
			tmp, err := u.runUnit(querygen.TmpTable(pred), r.res.Preds[pred].Arity, unit)
			if err != nil {
				return err
			}
			if tmp == nil {
				continue
			}
			resc := r.db.Dedup(tmp, tmp.NumTuples(), pred+"_uresc")
			u.dropTmp(querygen.TmpTable(pred))
			if resc.NumTuples() == 0 {
				resc.Release()
				continue
			}
			anyRescued = true
			u.us.Rescued += resc.NumTuples()
			if err := r.db.AppendTo(pred, resc); err != nil {
				resc.Release()
				return err
			}
			remaining := r.db.Diff(dead[pred], resc, exec.OPSD, querygen.DeadTable(pred))
			resc.Release()
			if err := r.db.InstallReplacing(remaining); err != nil {
				return err
			}
			dead[pred] = remaining
		}
		r.db.EndIteration()
		if err := r.db.Err(); err != nil {
			return err
		}
		if !anyRescued {
			break
		}
	}
	return nil
}

// roundDead evaluates one over-delete round for one predicate: candidates →
// dedup → ∩ R → − already-dead. Returns nil when nothing fired.
func (u *updateRun) roundDead(s analysis.Stratum, pred string, unit querygen.UnitQueries, members map[string]*exec.Membership, deadSoFar *storage.Relation) (*storage.Relation, error) {
	r := u.r
	arity := r.res.Preds[pred].Arity
	tmp, err := u.runUnit(querygen.TmpTable(pred), arity, unit)
	if err != nil || tmp == nil {
		return nil, err
	}
	cand := r.db.Dedup(tmp, tmp.NumTuples(), pred+"_ucand")
	u.dropTmp(querygen.TmpTable(pred))
	if cand.NumTuples() == 0 {
		cand.Release()
		return nil, nil
	}
	m, ok := members[pred]
	if !ok {
		m, err = r.db.BuildMembership(pred)
		if err != nil {
			cand.Release()
			return nil, err
		}
		members[pred] = m
	}
	present := r.db.SemiProbe(cand, m, pred+"_upresent")
	cand.Release()
	newDead := r.db.Diff(present, deadSoFar, exec.OPSD, querygen.OverTable(pred))
	present.Release()
	return newDead, r.db.Err()
}

// insertPhase runs the seeded semi-naive fixpoint for one stratum: iteration
// 1 evaluates the injection arms (the plus tables substituted into each rule
// occurrence of a changed predicate), later iterations are the ordinary Rec
// arms; every installed ∆ accumulates into the predicate's add table.
func (u *updateRun) insertPhase(s analysis.Stratum, added map[string]*storage.Relation) error {
	r := u.r
	seed := make(map[string]querygen.UnitQueries, len(s.IDBs))
	for _, pred := range s.IDBs {
		pi := r.res.Preds[pred]
		add := storage.NewRelation(querygen.AddTable(pred), storage.NumberedColumns(pi.Arity))
		add.SetLifecycle(r.db.Alloc(), storage.CatIntermediate)
		u.track(add.Name())
		if err := r.db.Install(add); err != nil {
			return err
		}
		added[pred] = add
		unit, err := r.gen.InjectQueries(s, pred, u.changed)
		if err != nil {
			return err
		}
		seed[pred] = unit
	}
	return r.evalStratumWith(s, seed, func(pred string, delta *storage.Relation) error {
		return r.db.AppendTo(querygen.AddTable(pred), delta)
	})
}

// runUnit materializes one update unit query into a tmp table. Arms whose ∆
// table is empty are filtered first; nil (no error) means nothing fired.
func (u *updateRun) runUnit(tmp string, arity int, unit querygen.UnitQueries) (*storage.Relation, error) {
	r := u.r
	unit, _ = querygen.FilterArms(tmp, unit, func(delta string) bool {
		d, ok := r.db.Catalog().Get(delta)
		return !ok || d.NumTuples() > 0
	})
	if unit.Subqueries == 0 {
		return nil, nil
	}
	if _, err := r.db.ExecSQL(fmt.Sprintf("CREATE TABLE %s (%s)", tmp, columnsSQL(arity))); err != nil {
		return nil, err
	}
	if _, err := r.db.ExecSQL(unit.Unified); err != nil {
		u.dropTmp(tmp)
		return nil, err
	}
	return r.db.Catalog().MustGet(tmp), nil
}

func (u *updateRun) dropTmp(tmp string) {
	_, _ = u.r.db.ExecSQL("DROP TABLE IF EXISTS " + tmp)
}

// rowsOf copies a relation's tuples out — deletion sets are update-sized.
func rowsOf(rel *storage.Relation) [][]int32 {
	out := make([][]int32, 0, rel.NumTuples())
	rel.ForEach(func(tuple []int32) {
		row := make([]int32, len(tuple))
		copy(row, tuple)
		out = append(out, row)
	})
	return out
}

// packRow encodes a tuple as a map key (4 bytes per column).
func packRow(row []int32) string {
	buf := make([]byte, 4*len(row))
	for i, v := range row {
		w := uint32(v)
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return string(buf)
}
