package core

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"recstep/internal/obs"
	"recstep/internal/obs/obstest"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// A live /metrics endpoint is scraped concurrently with a stream of
// ApplyDelta calls — the serving path an operator sees when updates run
// against a resident database. Every scrape must be a well-formed exposition
// and the incremental counter families must appear once updates have run.
// The -race run doubles as the data-race check on the update counters.
func TestIncrementalMetricsConcurrentScrape(t *testing.T) {
	ob := obs.New()
	addr, err := obs.Serve("127.0.0.1:0", ob.Reg)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Workers = 2
	opts.Obs = ob
	edges := randomEdges(40, 150, 5)
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	scrape := func() (string, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lastMid string
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := scrape()
				if err != nil {
					t.Errorf("concurrent scrape: %v", err)
					return
				}
				mu.Lock()
				lastMid = body
				mu.Unlock()
			}
		}()
	}

	extra := randomEdges(40, 400, 6)
	for i := 0; i < 15; i++ {
		var ins, del []pair
		switch i % 3 {
		case 0:
			ins = extra[i*2 : i*2+2]
		case 1:
			del = []pair{edges[i%len(edges)]}
		default:
			ins = extra[i*2 : i*2+1]
			del = []pair{edges[(2*i)%len(edges)]}
		}
		edges = editEdges(edges, ins, del)
		applyEdges(t, d, ins, del)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	mid := lastMid
	mu.Unlock()
	if mid != "" {
		obstest.CheckPrometheusText(t, mid)
	}

	final, err := scrape()
	if err != nil {
		t.Fatal(err)
	}
	obstest.CheckPrometheusText(t, final)
	obstest.RequireFamilies(t, final,
		"recstep_incremental_updates_total",
		"recstep_incremental_update_failures_total",
		"recstep_incremental_inserted_tuples_total",
		"recstep_incremental_deleted_tuples_total",
		"recstep_incremental_overdeleted_tuples_total",
		"recstep_incremental_rescued_tuples_total",
		"recstep_incremental_fallback_strata_total",
		"recstep_incremental_update_latency_us",
	)
	if !strings.Contains(final, "recstep_incremental_updates_total 15") {
		t.Fatalf("updates_total did not reach 15:\n%s", grepLine(final, "recstep_incremental_updates_total"))
	}
}

func grepLine(text, needle string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, needle) {
			return line
		}
	}
	return "(family absent)"
}
