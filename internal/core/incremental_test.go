package core

import (
	"context"
	"reflect"
	"testing"

	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// --- helpers -------------------------------------------------------------

func openIncr(t *testing.T, opts Options, src string, edbs map[string]*storage.Relation) *Database {
	t.Helper()
	d, err := New(opts).RunIncremental(context.Background(), programs.MustParse(src), edbs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func residentRows(t *testing.T, d *Database, name string) []int32 {
	t.Helper()
	rel, ok := d.Relation(name)
	if !ok {
		t.Fatalf("relation %q not resident", name)
	}
	return rel.SortedRows()
}

// scratchRows evaluates the program from scratch and returns each IDB's
// sorted rows — the ground truth every incremental state must bit-match.
func scratchRows(t *testing.T, opts Options, src string, edbs map[string]*storage.Relation) map[string][]int32 {
	t.Helper()
	res, err := New(opts).Run(programs.MustParse(src), edbs)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]int32, len(res.Relations))
	for name, rel := range res.Relations {
		out[name] = rel.SortedRows()
		rel.Release()
	}
	return out
}

func requireMatch(t *testing.T, d *Database, opts Options, src string, edges []pair, ctxLabel string) {
	t.Helper()
	want := scratchRows(t, opts, src, map[string]*storage.Relation{"arc": arcRel(edges)})
	for name, rows := range want {
		got := residentRows(t, d, name)
		if !reflect.DeepEqual(got, rows) {
			t.Fatalf("%s: %s diverged: got %d rows, want %d", ctxLabel, name, len(got)/2, len(rows)/2)
		}
	}
}

func closeLeakFree(t *testing.T, d *Database) {
	t.Helper()
	snap, err := d.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if snap.LiveTotal != 0 {
		t.Fatalf("leaked %d pooled bytes at close", snap.LiveTotal)
	}
}

func applyEdges(t *testing.T, d *Database, ins, del []pair) UpdateStats {
	t.Helper()
	toRows := func(ps []pair) [][]int32 {
		out := make([][]int32, len(ps))
		for i, p := range ps {
			out[i] = []int32{p.x, p.y}
		}
		return out
	}
	us, err := d.ApplyDelta("arc", toRows(ins), toRows(del))
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	return us
}

// editEdges applies ins/del to a reference edge list with set semantics.
func editEdges(edges, ins, del []pair) []pair {
	set := map[pair]bool{}
	for _, e := range edges {
		set[e] = true
	}
	for _, e := range del {
		delete(set, e)
	}
	for _, e := range ins {
		set[e] = true
	}
	out := make([]pair, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}

// --- insertion seeding ---------------------------------------------------

func TestApplyDeltaTCInsert(t *testing.T) {
	edges := []pair{{1, 2}, {2, 3}, {5, 6}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	// Bridge the two components: the closure must grow across it.
	edges = editEdges(edges, []pair{{3, 5}}, nil)
	us := applyEdges(t, d, []pair{{3, 5}}, nil)
	if us.Inserted != 1 || us.Deleted != 0 {
		t.Fatalf("unexpected stats %+v", us)
	}
	requireMatch(t, d, opts, programs.TC, edges, "after insert")

	// Inserting an already-derivable edge is still an EDB change.
	edges = editEdges(edges, []pair{{1, 3}}, nil)
	applyEdges(t, d, []pair{{1, 3}}, nil)
	requireMatch(t, d, opts, programs.TC, edges, "after redundant insert")

	// A pure no-op: row already present.
	us = applyEdges(t, d, []pair{{1, 2}}, nil)
	if us.Inserted != 0 || us.Deleted != 0 {
		t.Fatalf("no-op update reported %+v", us)
	}
}

// --- DRed over-delete / rescue -------------------------------------------

func TestApplyDeltaTCDelete(t *testing.T) {
	// 1→2→3→4 plus a shortcut 1→3: deleting 2→3 kills (2,3),(2,4) but
	// (1,3) and (1,4) must be rescued through the shortcut.
	edges := []pair{{1, 2}, {2, 3}, {3, 4}, {1, 3}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	edges = editEdges(edges, nil, []pair{{2, 3}})
	us := applyEdges(t, d, nil, []pair{{2, 3}})
	if us.Deleted != 1 {
		t.Fatalf("unexpected stats %+v", us)
	}
	if us.OverDeleted == 0 {
		t.Fatalf("expected over-deletion, got %+v", us)
	}
	if us.Rescued == 0 {
		t.Fatalf("expected rescues ((1,3),(1,4) survive via the shortcut), got %+v", us)
	}
	requireMatch(t, d, opts, programs.TC, edges, "after delete")

	// Deleting an absent row is a no-op.
	us = applyEdges(t, d, nil, []pair{{9, 9}})
	if us.Deleted != 0 || us.OverDeleted != 0 {
		t.Fatalf("phantom delete reported %+v", us)
	}
}

func TestApplyDeltaSGHandBuilt(t *testing.T) {
	// Same-generation on a small tree with a cross edge; SG exercises the
	// two-sided recursive rule (sg(x,y) :- arc(px,x), sg(px,py), arc(py,y)),
	// whose over-delete rounds must handle a dead tuple at either recursive
	// position.
	edges := []pair{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {1, 5}, {2, 3}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.SG, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	steps := []struct {
		ins, del []pair
	}{
		{del: []pair{{0, 2}}},                      // removes one parent edge: generations shrink
		{ins: []pair{{0, 2}}},                      // restore it
		{ins: []pair{{4, 6}}, del: []pair{{1, 3}}}, // mixed step
		{del: []pair{{0, 1}}},                      // detach the other branch
	}
	for i, step := range steps {
		edges = editEdges(edges, step.ins, step.del)
		applyEdges(t, d, step.ins, step.del)
		requireMatch(t, d, opts, programs.SG, edges, "sg step")
		_ = i
	}
}

func TestApplyDeltaMixedSameRow(t *testing.T) {
	// A row in both lists ends up present: delete-then-insert semantics.
	edges := []pair{{1, 2}, {2, 3}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	us := applyEdges(t, d, []pair{{2, 3}}, []pair{{2, 3}})
	if us.Inserted != 0 || us.Deleted != 0 {
		t.Fatalf("cancelling update reported %+v", us)
	}
	requireMatch(t, d, opts, programs.TC, edges, "after cancelling update")
}

// --- fallback strata ------------------------------------------------------

func TestApplyDeltaNegationFallsBack(t *testing.T) {
	// NTC has a negated IDB atom; the stratum reading the changed closure
	// must be maintained by recompute-and-diff.
	edges := []pair{{1, 2}, {2, 3}, {3, 1}, {4, 4}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.NTC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	edges = editEdges(edges, []pair{{3, 4}}, []pair{{2, 3}})
	us := applyEdges(t, d, []pair{{3, 4}}, []pair{{2, 3}})
	if us.FallbackStrata == 0 {
		t.Fatalf("expected a fallback stratum for negation, got %+v", us)
	}
	requireMatch(t, d, opts, programs.NTC, edges, "ntc after mixed update")
}

func TestApplyDeltaAggregateFallsBack(t *testing.T) {
	// CC's recursive MIN aggregation has no sound delta rewriting.
	edges := []pair{{1, 2}, {2, 3}, {4, 5}}
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.CC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	edges = editEdges(edges, []pair{{3, 4}}, nil)
	us := applyEdges(t, d, []pair{{3, 4}}, nil)
	if us.FallbackStrata == 0 {
		t.Fatalf("expected fallback for recursive aggregation, got %+v", us)
	}
	requireMatch(t, d, opts, programs.CC, edges, "cc after merge")

	edges = editEdges(edges, nil, []pair{{2, 3}})
	applyEdges(t, d, nil, []pair{{2, 3}})
	requireMatch(t, d, opts, programs.CC, edges, "cc after split")
}

// --- API errors -----------------------------------------------------------

func TestApplyDeltaRejectsBadTargets(t *testing.T) {
	opts := DefaultOptions()
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel([]pair{{1, 2}})})
	defer closeLeakFree(t, d)

	if _, err := d.ApplyDelta("tc", [][]int32{{1, 2}}, nil); err == nil {
		t.Fatal("expected error targeting an IDB")
	}
	if _, err := d.ApplyDelta("nosuch", [][]int32{{1, 2}}, nil); err == nil {
		t.Fatal("expected error for unknown relation")
	}
	if _, err := d.ApplyDelta("arc", [][]int32{{1, 2, 3}}, nil); err == nil {
		t.Fatal("expected arity error")
	}
	// The failed calls must not have dirtied the database.
	if d.Dirty() {
		t.Fatal("validation errors must not mark the database dirty")
	}
	applyEdges(t, d, []pair{{2, 3}}, nil)
}

func TestApplyDeltaSequenceMatchesScratch(t *testing.T) {
	// A longer random-ish sequence over TC at partitioned scale.
	edges := randomEdges(30, 90, 11)
	opts := DefaultOptions()
	opts.Workers = 4
	d := openIncr(t, opts, programs.TC, map[string]*storage.Relation{"arc": arcRel(edges)})
	defer closeLeakFree(t, d)

	extra := randomEdges(30, 120, 12)
	for i := 0; i < 12; i++ {
		var ins, del []pair
		switch i % 3 {
		case 0:
			ins = extra[i*3 : i*3+3]
		case 1:
			del = edges[:2]
		default:
			ins = extra[i*3 : i*3+2]
			del = []pair{edges[i%len(edges)]}
		}
		edges = editEdges(edges, ins, del)
		applyEdges(t, d, ins, del)
		requireMatch(t, d, opts, programs.TC, edges, "sequence step")
	}
}
