package core

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"recstep/internal/obs"
	"recstep/internal/obs/obstest"
	"recstep/internal/quickstep/storage"
)

const tcProgram = `
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
`

// TestObservabilityMidFixpointScrape runs the full stack the -metrics-addr
// flag assembles — Observer, engine registration, HTTP listener — and
// scrapes /metrics from inside an IterHook, i.e. genuinely mid-fixpoint.
func TestObservabilityMidFixpointScrape(t *testing.T) {
	ob := obs.New()
	addr, err := obs.Serve("127.0.0.1:0", ob.Reg)
	if err != nil {
		t.Fatal(err)
	}

	var midScrape string
	opts := DefaultOptions()
	opts.Workers = 2
	opts.Obs = ob
	opts.IterHook = func(ii IterInfo) {
		if midScrape != "" || ii.Iteration < 2 {
			return
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("mid-fixpoint scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("mid-fixpoint scrape read: %v", err)
			return
		}
		midScrape = string(body)
	}

	edges := randomEdges(80, 500, 11)
	res := runProg(t, opts, tcProgram, map[string]*storage.Relation{"arc": arcRel(edges)})

	if midScrape == "" {
		t.Fatal("IterHook never scraped (fixpoint converged before iteration 2?)")
	}
	obstest.CheckPrometheusText(t, midScrape)
	obstest.RequireFamilies(t, midScrape,
		// copy accounting
		"recstep_tuples_scattered_total", "recstep_tuples_adopted_total",
		// memory
		"recstep_mem_live_bytes", "recstep_mem_peak_live_bytes", "recstep_mem_spills_total",
		// phase durations and histograms
		"recstep_phase_seconds_total", "recstep_batch_rows", "recstep_gscht_chain_length",
		"recstep_delta_partition_rows",
		// engine loop
		"recstep_iterations_total", "recstep_delta_tuples_total", "recstep_current_iteration",
		"recstep_queries_total",
	)

	// The snapshot views must still agree with themselves: the run's Stats
	// land where they always did.
	if res.Stats.Iterations == 0 || res.Stats.DeltaTuples == 0 {
		t.Errorf("Stats not populated: %+v", res.Stats)
	}
	if len(res.Stats.StratumDurations) != 1 {
		t.Errorf("StratumDurations = %v, want one stratum", res.Stats.StratumDurations)
	}
	if len(res.Stats.PhaseDurations) == 0 {
		t.Error("PhaseDurations empty with observability on")
	}
}

// TestTraceFromEngineRun checks the trace a real fixpoint emits: valid JSON,
// monotonic timestamps, and a properly nested engine lane
// (stratum ⊃ iteration ⊃ step).
func TestTraceFromEngineRun(t *testing.T) {
	ob := obs.New().WithTracer(0)
	opts := DefaultOptions()
	opts.Workers = 2
	opts.Obs = ob

	edges := randomEdges(60, 300, 3)
	runProg(t, opts, tcProgram, map[string]*storage.Relation{"arc": arcRel(edges)})

	events := ob.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("engine run emitted no trace events")
	}
	data, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var round []obs.TraceEvent
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("events do not round-trip as JSON: %v", err)
	}

	prev := -1.0
	names := map[string]int{}
	for _, ev := range events {
		if ev.TS < prev {
			t.Fatalf("timestamps not monotonic: %v after %v", ev.TS, prev)
		}
		prev = ev.TS
		names[ev.Name]++
	}
	for _, want := range []string{"stratum", "iteration", "tc", "delta"} {
		if names[want] == 0 {
			t.Errorf("no %q spans in %v", want, names)
		}
	}

	// Engine-lane nesting: spans either contain one another or are disjoint.
	const slack = 50.0 // µs: defer-ordering skew between parent and child ends
	var stack []obs.TraceEvent
	for _, ev := range events {
		if ev.TID != 0 {
			continue
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.TS+slack >= top.TS+top.Dur {
				stack = stack[:len(stack)-1]
				continue
			}
			if ev.TS+ev.Dur > top.TS+top.Dur+slack {
				t.Errorf("engine-lane span %q [%.0f,%.0f] partially overlaps %q [%.0f,%.0f]",
					ev.Name, ev.TS, ev.TS+ev.Dur, top.Name, top.TS, top.TS+top.Dur)
			}
			break
		}
		stack = append(stack, ev)
	}
}

// TestDisableObs checks the ablation: no registry, no phase durations, and
// the run still produces the right answer.
func TestDisableObs(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.DisableObs = true
	edges := randomEdges(50, 200, 5)
	res := runProg(t, opts, tcProgram, map[string]*storage.Relation{"arc": arcRel(edges)})
	if len(res.Stats.PhaseDurations) != 0 {
		t.Errorf("PhaseDurations = %v with observability disabled", res.Stats.PhaseDurations)
	}
	want := runProg(t, DefaultOptions(), tcProgram, map[string]*storage.Relation{"arc": arcRel(edges)})
	if got, exp := relPairs(res.Relations["tc"]), relPairs(want.Relations["tc"]); len(got) != len(exp) {
		t.Errorf("ablation changed the answer: %d vs %d tuples", len(got), len(exp))
	}
}
