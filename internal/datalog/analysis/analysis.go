// Package analysis implements RecStep's rule analyzer (Figure 1): it
// classifies predicates into EDB and IDB, verifies rule safety, builds the
// dependency graph, computes strongly connected components and a
// stratification, validates stratified negation, and identifies recursive
// aggregates (which the engine evaluates with monotone aggregate merging).
package analysis

import (
	"fmt"
	"sort"

	"recstep/internal/datalog/ast"
)

// AggSpec describes the aggregate signature of an IDB whose rules aggregate:
// the head position carrying the aggregate and the grouping positions.
type AggSpec struct {
	Func     string // MIN, MAX, SUM, COUNT, AVG
	Pos      int    // head position of the aggregate term
	GroupPos []int  // the remaining (plain) head positions
}

// PredInfo holds per-predicate facts derived by the analyzer.
type PredInfo struct {
	Name    string
	Arity   int
	IsIDB   bool
	Stratum int // -1 for EDB
	// Agg is non-nil when the predicate's rules aggregate.
	Agg *AggSpec
	// RecursiveAgg marks aggregation inside recursion (CC, SSSP): the
	// engine must use aggregate-merge instead of dedup + set difference.
	RecursiveAgg bool
}

// Stratum groups the rules evaluated together in one fixpoint loop.
type Stratum struct {
	Index     int
	IDBs      []string // predicates defined here, sorted
	RuleIdx   []int    // indices into Program.Rules
	Recursive bool
}

// Result is the analyzer output consumed by the query generator and engine.
type Result struct {
	Program *ast.Program
	Preds   map[string]*PredInfo
	Strata  []Stratum
}

// IDBNames returns all IDB predicate names, sorted.
func (r *Result) IDBNames() []string {
	var out []string
	for n, p := range r.Preds {
		if p.IsIDB {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// EDBNames returns all EDB predicate names, sorted.
func (r *Result) EDBNames() []string {
	var out []string
	for n, p := range r.Preds {
		if !p.IsIDB {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Analyze runs the full rule analysis.
func Analyze(p *ast.Program) (*Result, error) {
	res := &Result{Program: p, Preds: make(map[string]*PredInfo)}
	if err := res.collectPreds(); err != nil {
		return nil, err
	}
	if err := res.checkSafety(); err != nil {
		return nil, err
	}
	if err := res.checkAggregates(); err != nil {
		return nil, err
	}
	if err := res.stratify(); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Result) collectPreds() error {
	seen := func(name string, arity int, isHead bool) error {
		pi, ok := r.Preds[name]
		if !ok {
			pi = &PredInfo{Name: name, Arity: arity, Stratum: -1}
			r.Preds[name] = pi
		}
		if pi.Arity != arity {
			return fmt.Errorf("analysis: predicate %q used with arities %d and %d", name, pi.Arity, arity)
		}
		if isHead {
			pi.IsIDB = true
		}
		return nil
	}
	for _, rule := range r.Program.Rules {
		if err := seen(rule.HeadPred, len(rule.HeadTerms), true); err != nil {
			return err
		}
		for _, a := range rule.Body {
			if err := seen(a.Pred, len(a.Args), false); err != nil {
				return err
			}
		}
	}
	for pred, facts := range r.Program.Facts {
		for _, f := range facts {
			if err := seen(pred, len(f), false); err != nil {
				return err
			}
		}
	}
	if len(r.Program.Rules) == 0 {
		return fmt.Errorf("analysis: program has no rules")
	}
	return nil
}

// checkSafety verifies that every head variable, comparison variable and
// negated-atom variable is bound by a positive body atom.
func (r *Result) checkSafety() error {
	for ri, rule := range r.Program.Rules {
		bound := make(map[string]bool)
		for _, a := range rule.Body {
			if a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var != "" && !t.IsWild {
					bound[t.Var] = true
				}
			}
		}
		requireBound := func(e ast.Expr, what string) error {
			for _, v := range e.Vars(nil) {
				if !bound[v] {
					return fmt.Errorf("analysis: rule %d (%s): unsafe variable %q in %s", ri, rule.HeadPred, v, what)
				}
			}
			return nil
		}
		for _, h := range rule.HeadTerms {
			if err := requireBound(h.Expr, "head"); err != nil {
				return err
			}
		}
		for _, c := range rule.Cmps {
			if err := requireBound(c.L, "comparison"); err != nil {
				return err
			}
			if err := requireBound(c.R, "comparison"); err != nil {
				return err
			}
		}
		for _, a := range rule.Body {
			if !a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.Var != "" && !t.IsWild && !bound[t.Var] {
					return fmt.Errorf("analysis: rule %d (%s): unsafe variable %q in negated atom %s", ri, rule.HeadPred, t.Var, a.Pred)
				}
			}
		}
	}
	return nil
}

// checkAggregates validates aggregate usage: at most one aggregate term per
// head, and a consistent signature across all rules defining the predicate.
func (r *Result) checkAggregates() error {
	for ri, rule := range r.Program.Rules {
		var spec *AggSpec
		var groups []int
		count := 0
		for pos, h := range rule.HeadTerms {
			if h.Agg == "" {
				groups = append(groups, pos)
				continue
			}
			count++
			spec = &AggSpec{Func: h.Agg, Pos: pos}
		}
		if count > 1 {
			return fmt.Errorf("analysis: rule %d (%s): at most one aggregate per head", ri, rule.HeadPred)
		}
		pi := r.Preds[rule.HeadPred]
		if count == 1 {
			spec.GroupPos = groups
			if pi.Agg == nil {
				pi.Agg = spec
			} else if pi.Agg.Func != spec.Func || pi.Agg.Pos != spec.Pos {
				return fmt.Errorf("analysis: predicate %q has inconsistent aggregate signatures", rule.HeadPred)
			}
		}
	}
	// Every rule of an aggregating predicate must aggregate.
	for _, rule := range r.Program.Rules {
		pi := r.Preds[rule.HeadPred]
		if pi.Agg != nil && !rule.HasAggregate() {
			return fmt.Errorf("analysis: predicate %q mixes aggregate and plain rules", rule.HeadPred)
		}
	}
	return nil
}

// stratify builds the predicate dependency graph, condenses it with Tarjan's
// SCC algorithm, topologically orders the components, and checks that no
// negation occurs inside a cycle. Aggregation inside a cycle is permitted
// for the monotone MIN/MAX (recursive aggregation, Section 3.3); recursive
// SUM/COUNT/AVG are rejected since their fixpoint need not converge.
func (r *Result) stratify() error {
	idbs := r.IDBNames()
	index := make(map[string]int, len(idbs))
	for i, n := range idbs {
		index[n] = i
	}
	type edge struct {
		from, to int
		negated  bool
	}
	var edges []edge
	adj := make([][]int, len(idbs))
	for _, rule := range r.Program.Rules {
		h := index[rule.HeadPred]
		for _, a := range rule.Body {
			b, ok := index[a.Pred]
			if !ok {
				continue // EDB
			}
			edges = append(edges, edge{from: b, to: h, negated: a.Negated})
			adj[b] = append(adj[b], h)
		}
	}

	comp := tarjanSCC(len(idbs), adj)
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}

	// Validate negation and recursive aggregation.
	for _, e := range edges {
		if comp[e.from] != comp[e.to] {
			continue
		}
		if e.negated {
			return fmt.Errorf("analysis: program is not stratifiable: %q is negated within its own recursive component", idbs[e.from])
		}
	}
	inCycle := make([]bool, len(idbs))
	selfEdge := make([]bool, len(idbs))
	compSize := make([]int, nComp)
	for _, c := range comp {
		compSize[c]++
	}
	for _, e := range edges {
		if e.from == e.to {
			selfEdge[e.from] = true
		}
	}
	for i := range idbs {
		if compSize[comp[i]] > 1 || selfEdge[i] {
			inCycle[i] = true
		}
	}
	for i, n := range idbs {
		pi := r.Preds[n]
		if pi.Agg != nil && inCycle[i] {
			if pi.Agg.Func != "MIN" && pi.Agg.Func != "MAX" {
				return fmt.Errorf("analysis: recursive %s aggregation on %q is not supported (non-monotone)", pi.Agg.Func, n)
			}
			pi.RecursiveAgg = true
		}
	}

	// Topological order of the condensation (Kahn).
	compAdj := make([]map[int]bool, nComp)
	indeg := make([]int, nComp)
	for i := range compAdj {
		compAdj[i] = make(map[int]bool)
	}
	for _, e := range edges {
		cf, ct := comp[e.from], comp[e.to]
		if cf != ct && !compAdj[cf][ct] {
			compAdj[cf][ct] = true
			indeg[ct]++
		}
	}
	var queue []int
	for c := 0; c < nComp; c++ {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		var next []int
		for t := range compAdj[c] {
			indeg[t]--
			if indeg[t] == 0 {
				next = append(next, t)
			}
		}
		sort.Ints(next)
		queue = append(queue, next...)
	}
	if len(order) != nComp {
		return fmt.Errorf("analysis: internal error: condensation is cyclic")
	}

	// Build strata in topological order.
	strataOf := make(map[int]int, nComp) // component id → stratum index
	for si, c := range order {
		strataOf[c] = si
	}
	r.Strata = make([]Stratum, nComp)
	for si := range r.Strata {
		r.Strata[si].Index = si
	}
	for i, n := range idbs {
		si := strataOf[comp[i]]
		r.Preds[n].Stratum = si
		r.Strata[si].IDBs = append(r.Strata[si].IDBs, n)
	}
	for si := range r.Strata {
		sort.Strings(r.Strata[si].IDBs)
	}
	for ri, rule := range r.Program.Rules {
		si := r.Preds[rule.HeadPred].Stratum
		r.Strata[si].RuleIdx = append(r.Strata[si].RuleIdx, ri)
		for _, a := range rule.Body {
			if pi, ok := r.Preds[a.Pred]; ok && pi.IsIDB && pi.Stratum == si {
				r.Strata[si].Recursive = true
			}
		}
	}
	return nil
}

// tarjanSCC computes strongly connected components; comp[v] is the component
// id of vertex v (ids are dense but arbitrary).
func tarjanSCC(n int, adj [][]int) []int {
	const unvisited = -1
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range idx {
		idx[i], comp[i] = unvisited, unvisited
	}
	var stack []int
	counter, nComp := 0, 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if idx[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		idx[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if idx[w] == unvisited {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			// Post-visit.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
