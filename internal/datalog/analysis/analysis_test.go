package analysis

import (
	"strings"
	"testing"

	"recstep/internal/datalog/parser"
	"recstep/internal/programs"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(p)
	if err == nil {
		t.Fatalf("expected analysis error for %q", src)
	}
	return err
}

func TestTCClassification(t *testing.T) {
	res := analyze(t, programs.TC)
	if !res.Preds["tc"].IsIDB {
		t.Fatal("tc should be IDB")
	}
	if res.Preds["arc"].IsIDB {
		t.Fatal("arc should be EDB")
	}
	if got := res.Preds["tc"].Arity; got != 2 {
		t.Fatalf("tc arity = %d", got)
	}
	if len(res.Strata) != 1 || !res.Strata[0].Recursive {
		t.Fatalf("strata = %+v", res.Strata)
	}
}

func TestNTCStratification(t *testing.T) {
	res := analyze(t, programs.NTC)
	tc, node, ntc := res.Preds["tc"], res.Preds["node"], res.Preds["ntc"]
	if ntc.Stratum <= tc.Stratum {
		t.Fatalf("ntc stratum %d must be above tc stratum %d", ntc.Stratum, tc.Stratum)
	}
	if ntc.Stratum <= node.Stratum {
		t.Fatalf("ntc stratum %d must be above node stratum %d", ntc.Stratum, node.Stratum)
	}
	// ntc's stratum is non-recursive.
	if res.Strata[ntc.Stratum].Recursive {
		t.Fatal("ntc stratum should be non-recursive")
	}
}

func TestCSPAMutualRecursionOneStratum(t *testing.T) {
	res := analyze(t, programs.CSPA)
	vf, ma, va := res.Preds["valueFlow"], res.Preds["memoryAlias"], res.Preds["valueAlias"]
	if vf.Stratum != ma.Stratum || ma.Stratum != va.Stratum {
		t.Fatalf("CSPA predicates should share a stratum: %d %d %d", vf.Stratum, ma.Stratum, va.Stratum)
	}
	if !res.Strata[vf.Stratum].Recursive {
		t.Fatal("CSPA stratum should be recursive")
	}
}

func TestCCRecursiveAggregate(t *testing.T) {
	res := analyze(t, programs.CC)
	cc3 := res.Preds["cc3"]
	if cc3.Agg == nil || cc3.Agg.Func != "MIN" || cc3.Agg.Pos != 1 {
		t.Fatalf("cc3 agg = %+v", cc3.Agg)
	}
	if !cc3.RecursiveAgg {
		t.Fatal("cc3 must be flagged as a recursive aggregate")
	}
	cc2 := res.Preds["cc2"]
	if cc2.RecursiveAgg {
		t.Fatal("cc2 aggregates outside recursion")
	}
	if cc2.Stratum <= cc3.Stratum {
		t.Fatalf("cc2 stratum %d must follow cc3 stratum %d", cc2.Stratum, cc3.Stratum)
	}
	if res.Preds["cc"].Stratum <= cc2.Stratum {
		t.Fatal("cc must follow cc2")
	}
}

func TestSSSPAnalysis(t *testing.T) {
	res := analyze(t, programs.SSSP)
	s2 := res.Preds["sssp2"]
	if !s2.RecursiveAgg || s2.Agg.Func != "MIN" {
		t.Fatalf("sssp2 = %+v", s2)
	}
	if res.Preds["arc"].Arity != 3 {
		t.Fatalf("weighted arc arity = %d", res.Preds["arc"].Arity)
	}
}

func TestUnstratifiableNegation(t *testing.T) {
	err := analyzeErr(t, `
		p(x) :- e(x), !q(x).
		q(x) :- e(x), !p(x).
	`)
	if !strings.Contains(err.Error(), "not stratifiable") {
		t.Fatalf("error = %v", err)
	}
	// Self-negation.
	analyzeErr(t, "p(x) :- e(x, y), !p(y), e(y, x).")
}

func TestRecursiveNonMonotoneAggregateRejected(t *testing.T) {
	err := analyzeErr(t, `
		c(x, COUNT(y)) :- e(x, y).
		c(x, COUNT(y)) :- c(x, y), e(y, x).
	`)
	if !strings.Contains(err.Error(), "COUNT") {
		t.Fatalf("error = %v", err)
	}
}

func TestSafetyViolations(t *testing.T) {
	cases := []string{
		"p(x, y) :- e(x).",        // head var unbound
		"p(x) :- e(x), y < 3.",    // comparison var unbound
		"p(x) :- e(x), !q(x, z).", // negated var unbound
		"p(MIN(z)) :- e(x).",      // agg var unbound
	}
	for _, src := range cases {
		analyzeErr(t, src)
	}
}

func TestArityMismatch(t *testing.T) {
	analyzeErr(t, `
		p(x) :- e(x, y).
		q(x) :- e(x).
	`)
}

func TestMixedAggregatePlainRules(t *testing.T) {
	analyzeErr(t, `
		p(x, MIN(y)) :- e(x, y).
		p(x, y) :- e(y, x).
	`)
}

func TestTwoAggregatesRejected(t *testing.T) {
	analyzeErr(t, "p(MIN(x), MAX(y)) :- e(x, y).")
}

func TestEmptyProgramRejected(t *testing.T) {
	p, err := parser.Parse("% only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(p); err == nil {
		t.Fatal("empty program should be rejected")
	}
}

func TestStrataTopologicalOrder(t *testing.T) {
	res := analyze(t, `
		a(x) :- e(x).
		b(x) :- a(x).
		c(x) :- b(x), a(x).
		d(x) :- c(x), d2(x).
		d2(x) :- d(x).
	`)
	// Every body IDB must live in an earlier-or-equal stratum.
	for _, rule := range res.Program.Rules {
		hs := res.Preds[rule.HeadPred].Stratum
		for _, atom := range rule.Body {
			if pi, ok := res.Preds[atom.Pred]; ok && pi.IsIDB {
				if pi.Stratum > hs {
					t.Fatalf("rule %s: body %s in stratum %d above head stratum %d",
						rule.HeadPred, atom.Pred, pi.Stratum, hs)
				}
			}
		}
	}
	// d and d2 are mutually recursive: same stratum.
	if res.Preds["d"].Stratum != res.Preds["d2"].Stratum {
		t.Fatal("mutual recursion must share a stratum")
	}
}

func TestIDBAndEDBNames(t *testing.T) {
	res := analyze(t, programs.Andersen)
	if got := res.IDBNames(); len(got) != 1 || got[0] != "pointsTo" {
		t.Fatalf("IDBNames = %v", got)
	}
	edbs := res.EDBNames()
	want := []string{"addressOf", "assign", "load", "store"}
	if len(edbs) != len(want) {
		t.Fatalf("EDBNames = %v", edbs)
	}
	for i, n := range want {
		if edbs[i] != n {
			t.Fatalf("EDBNames = %v, want %v", edbs, want)
		}
	}
}

func TestTarjanSCCDiamond(t *testing.T) {
	// 0→1, 0→2, 1→3, 2→3, 3→1 (cycle 1,3 via 2? no: 1→3→1 through edge 3→1).
	adj := [][]int{{1, 2}, {3}, {3}, {1}}
	comp := tarjanSCC(4, adj)
	if comp[1] != comp[3] {
		t.Fatalf("1 and 3 should share a component: %v", comp)
	}
	if comp[0] == comp[1] || comp[2] == comp[1] {
		t.Fatalf("0 and 2 must be separate: %v", comp)
	}
}
