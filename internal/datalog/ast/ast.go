// Package ast defines the abstract syntax of the Datalog dialect RecStep
// evaluates: pure Datalog extended with stratified negation and aggregation
// (MIN, MAX, SUM, COUNT, AVG), including aggregation inside recursion
// (Section 3.3).
package ast

import (
	"fmt"
	"strings"
)

// Term is one argument of a body atom: a variable, an integer constant, or
// the wildcard "_".
type Term struct {
	Var     string
	Const   int32
	IsConst bool
	IsWild  bool
}

// String renders the term in Datalog syntax.
func (t Term) String() string {
	switch {
	case t.IsWild:
		return "_"
	case t.IsConst:
		return fmt.Sprintf("%d", t.Const)
	default:
		return t.Var
	}
}

// Expr is a scalar expression in a rule head or comparison: variables,
// constants and + − * arithmetic (SSSP's MIN(d1 + d2)).
type Expr interface {
	fmt.Stringer
	// Vars appends the variables the expression references.
	Vars(dst []string) []string
}

// Var references a variable.
type Var struct{ Name string }

// Num is an integer constant.
type Num struct{ Value int32 }

// Bin is binary arithmetic: Op is one of '+', '-', '*'.
type Bin struct {
	Op   byte
	L, R Expr
}

func (v Var) String() string { return v.Name }
func (n Num) String() string { return fmt.Sprintf("%d", n.Value) }
func (b Bin) String() string { return fmt.Sprintf("%s %c %s", b.L, b.Op, b.R) }

// Vars implements Expr.
func (v Var) Vars(dst []string) []string { return append(dst, v.Name) }

// Vars implements Expr.
func (n Num) Vars(dst []string) []string { return dst }

// Vars implements Expr.
func (b Bin) Vars(dst []string) []string { return b.R.Vars(b.L.Vars(dst)) }

// HeadTerm is one argument of a rule head: a plain expression or an
// aggregate AGG(expr).
type HeadTerm struct {
	// Agg is "", or one of "MIN", "MAX", "SUM", "COUNT", "AVG".
	Agg  string
	Expr Expr
}

// String renders the head term.
func (h HeadTerm) String() string {
	if h.Agg == "" {
		return h.Expr.String()
	}
	return fmt.Sprintf("%s(%s)", h.Agg, h.Expr)
}

// Atom is a (possibly negated) predicate application in a rule body.
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
}

// String renders the atom.
func (a Atom) String() string {
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.String()
	}
	s := fmt.Sprintf("%s(%s)", a.Pred, strings.Join(args, ", "))
	if a.Negated {
		return "!" + s
	}
	return s
}

// CmpOp is a comparison operator in a body literal.
type CmpOp string

// Comparison operators permitted in rule bodies.
const (
	OpEQ CmpOp = "="
	OpNE CmpOp = "!="
	OpLT CmpOp = "<"
	OpLE CmpOp = "<="
	OpGT CmpOp = ">"
	OpGE CmpOp = ">="
)

// Comparison is a built-in literal like x != y or d < 10.
type Comparison struct {
	Op   CmpOp
	L, R Expr
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Rule is h :- body. A rule with an empty body and all-constant head is a
// fact.
type Rule struct {
	HeadPred  string
	HeadTerms []HeadTerm
	Body      []Atom
	Cmps      []Comparison
}

// IsFact reports whether the rule has no body (a ground fact).
func (r Rule) IsFact() bool { return len(r.Body) == 0 && len(r.Cmps) == 0 }

// HasAggregate reports whether any head term aggregates.
func (r Rule) HasAggregate() bool {
	for _, h := range r.HeadTerms {
		if h.Agg != "" {
			return true
		}
	}
	return false
}

// String renders the rule in Datalog syntax.
func (r Rule) String() string {
	heads := make([]string, len(r.HeadTerms))
	for i, h := range r.HeadTerms {
		heads[i] = h.String()
	}
	head := fmt.Sprintf("%s(%s)", r.HeadPred, strings.Join(heads, ", "))
	if r.IsFact() {
		return head + "."
	}
	var parts []string
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, c := range r.Cmps {
		parts = append(parts, c.String())
	}
	return fmt.Sprintf("%s :- %s.", head, strings.Join(parts, ", "))
}

// Program is a parsed Datalog program.
type Program struct {
	Rules []Rule
	// Facts holds inline ground facts grouped by predicate.
	Facts map[string][][]int32
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
