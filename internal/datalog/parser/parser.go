// Package parser parses RecStep's .datalog surface syntax:
//
//	tc(x, y) :- arc(x, y).
//	tc(x, y) :- tc(x, z), arc(z, y).
//	gtc(x, COUNT(y)) :- tc(x, y).
//	sg(x, y)  :- arc(p, x), arc(p, y), x != y.
//	ntc(x, y) :- node(x), node(y), !tc(x, y).
//	sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
//	id(7).                         -- inline ground fact
//
// Comments run from '%', '#' or '//' to end of line. Negation is written
// '!' or 'not'. Aggregates are upper-case MIN/MAX/SUM/COUNT/AVG.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"recstep/internal/datalog/ast"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tSym // ( ) , . ! + - * = != < <= > >= :-
)

type tok struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	out  []tok
}

func lexProgram(src string) ([]tok, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%' || c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c >= '0' && c <= '9':
			l.lexInt()
		case isIdentByte(c):
			l.lexIdent()
		default:
			if err := l.lexSym(); err != nil {
				return nil, err
			}
		}
	}
	l.out = append(l.out, tok{kind: tEOF, line: l.line})
	return l.out, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexInt() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.out = append(l.out, tok{kind: tInt, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentByte(l.src[l.pos]) || l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
		l.pos++
	}
	l.out = append(l.out, tok{kind: tIdent, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexSym() error {
	rest := l.src[l.pos:]
	for _, s := range []string{":-", "<-", "!=", "<=", ">="} {
		if strings.HasPrefix(rest, s) {
			if s == "<-" {
				s = ":-"
			}
			l.out = append(l.out, tok{kind: tSym, text: s, line: l.line})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '!', '+', '-', '*', '=', '<', '>', '_':
		l.out = append(l.out, tok{kind: tSym, text: string(c), line: l.line})
		l.pos++
		return nil
	}
	return fmt.Errorf("datalog: line %d: unexpected character %q", l.line, rune(c))
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

var aggNames = map[string]bool{"MIN": true, "MAX": true, "SUM": true, "COUNT": true, "AVG": true}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) cur() tok { return p.toks[p.i] }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tSym && p.cur().text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("datalog: line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", fmt.Errorf("datalog: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.i++
	return t.text, nil
}

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexProgram(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{Facts: make(map[string][][]int32)}
	for p.cur().kind != tEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if r.IsFact() {
			fact, err := ruleAsFact(r)
			if err != nil {
				return nil, err
			}
			prog.Facts[r.HeadPred] = append(prog.Facts[r.HeadPred], fact)
			continue
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

func ruleAsFact(r ast.Rule) ([]int32, error) {
	fact := make([]int32, len(r.HeadTerms))
	for i, h := range r.HeadTerms {
		n, ok := h.Expr.(ast.Num)
		if h.Agg != "" || !ok {
			return nil, fmt.Errorf("datalog: fact %s must have constant arguments", r.HeadPred)
		}
		fact[i] = n.Value
	}
	return fact, nil
}

func (p *parser) rule() (ast.Rule, error) {
	head, terms, err := p.head()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{HeadPred: head, HeadTerms: terms}
	if p.accept(".") {
		return r, nil
	}
	if err := p.expect(":-"); err != nil {
		return ast.Rule{}, err
	}
	for {
		if err := p.bodyLiteral(&r); err != nil {
			return ast.Rule{}, err
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect("."); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

func (p *parser) head() (string, []ast.HeadTerm, error) {
	name, err := p.ident()
	if err != nil {
		return "", nil, err
	}
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	var terms []ast.HeadTerm
	for {
		h, err := p.headTerm()
		if err != nil {
			return "", nil, err
		}
		terms = append(terms, h)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return "", nil, err
	}
	return name, terms, nil
}

func (p *parser) headTerm() (ast.HeadTerm, error) {
	t := p.cur()
	if t.kind == tIdent && aggNames[t.text] {
		p.i++
		if err := p.expect("("); err != nil {
			return ast.HeadTerm{}, err
		}
		e, err := p.expr()
		if err != nil {
			return ast.HeadTerm{}, err
		}
		if err := p.expect(")"); err != nil {
			return ast.HeadTerm{}, err
		}
		return ast.HeadTerm{Agg: t.text, Expr: e}, nil
	}
	e, err := p.expr()
	if err != nil {
		return ast.HeadTerm{}, err
	}
	return ast.HeadTerm{Expr: e}, nil
}

// bodyLiteral parses an atom, a negated atom, or a comparison.
func (p *parser) bodyLiteral(r *ast.Rule) error {
	if p.accept("!") {
		a, err := p.atom()
		if err != nil {
			return err
		}
		a.Negated = true
		r.Body = append(r.Body, a)
		return nil
	}
	t := p.cur()
	if t.kind == tIdent && t.text == "not" && p.toks[p.i+1].kind == tIdent {
		p.i++
		a, err := p.atom()
		if err != nil {
			return err
		}
		a.Negated = true
		r.Body = append(r.Body, a)
		return nil
	}
	// Atom when an identifier is immediately followed by '(' — otherwise a
	// comparison expression.
	if t.kind == tIdent && !aggNames[t.text] && p.toks[p.i+1].kind == tSym && p.toks[p.i+1].text == "(" {
		a, err := p.atom()
		if err != nil {
			return err
		}
		r.Body = append(r.Body, a)
		return nil
	}
	l, err := p.expr()
	if err != nil {
		return err
	}
	op := p.cur()
	var cop ast.CmpOp
	switch op.text {
	case "=":
		cop = ast.OpEQ
	case "!=":
		cop = ast.OpNE
	case "<":
		cop = ast.OpLT
	case "<=":
		cop = ast.OpLE
	case ">":
		cop = ast.OpGT
	case ">=":
		cop = ast.OpGE
	default:
		return fmt.Errorf("datalog: line %d: expected comparison operator, found %q", op.line, op.text)
	}
	p.i++
	rr, err := p.expr()
	if err != nil {
		return err
	}
	r.Cmps = append(r.Cmps, ast.Comparison{Op: cop, L: l, R: rr})
	return nil
}

func (p *parser) atom() (ast.Atom, error) {
	name, err := p.ident()
	if err != nil {
		return ast.Atom{}, err
	}
	if err := p.expect("("); err != nil {
		return ast.Atom{}, err
	}
	var args []ast.Term
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		args = append(args, t)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return ast.Atom{}, err
	}
	return ast.Atom{Pred: name, Args: args}, nil
}

func (p *parser) term() (ast.Term, error) {
	t := p.cur()
	switch {
	case t.kind == tSym && t.text == "_":
		p.i++
		return ast.Term{IsWild: true}, nil
	case t.kind == tSym && t.text == "-" && p.toks[p.i+1].kind == tInt:
		p.i += 2
		v, err := strconv.ParseInt(p.toks[p.i-1].text, 10, 32)
		if err != nil {
			return ast.Term{}, fmt.Errorf("datalog: line %d: bad integer: %v", t.line, err)
		}
		return ast.Term{IsConst: true, Const: int32(-v)}, nil
	case t.kind == tInt:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return ast.Term{}, fmt.Errorf("datalog: line %d: bad integer: %v", t.line, err)
		}
		return ast.Term{IsConst: true, Const: int32(v)}, nil
	case t.kind == tIdent:
		p.i++
		if t.text == "_" {
			return ast.Term{IsWild: true}, nil
		}
		return ast.Term{Var: t.text}, nil
	}
	return ast.Term{}, fmt.Errorf("datalog: line %d: expected term, found %q", t.line, t.text)
}

// expr := atomExpr (('+'|'-') atomExpr)* with '*' binding tighter.
func (p *parser) expr() (ast.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ast.Bin{Op: '+', L: l, R: r}
		case p.accept("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ast.Bin{Op: '-', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (ast.Expr, error) {
	l, err := p.atomExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("*") {
		r, err := p.atomExpr()
		if err != nil {
			return nil, err
		}
		l = ast.Bin{Op: '*', L: l, R: r}
	}
	return l, nil
}

func (p *parser) atomExpr() (ast.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("datalog: line %d: bad integer: %v", t.line, err)
		}
		return ast.Num{Value: int32(v)}, nil
	case t.kind == tSym && t.text == "-" && p.toks[p.i+1].kind == tInt:
		p.i += 2
		v, err := strconv.ParseInt(p.toks[p.i-1].text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("datalog: line %d: bad integer: %v", t.line, err)
		}
		return ast.Num{Value: int32(-v)}, nil
	case t.kind == tIdent:
		p.i++
		return ast.Var{Name: t.text}, nil
	case t.kind == tSym && t.text == "(":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("datalog: line %d: expected expression, found %q", t.line, t.text)
}
