package parser

import (
	"strings"
	"testing"

	"recstep/internal/datalog/ast"
)

func TestParseTC(t *testing.T) {
	p, err := Parse(`
		tc(x, y) :- arc(x, y).
		tc(x, y) :- tc(x, z), arc(z, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(p.Rules))
	}
	r := p.Rules[1]
	if r.HeadPred != "tc" || len(r.Body) != 2 || r.Body[0].Pred != "tc" || r.Body[1].Pred != "arc" {
		t.Fatalf("bad rule: %+v", r)
	}
}

func TestParseArrowVariant(t *testing.T) {
	p, err := Parse("tc(x, y) <- arc(x, y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatal("arrow form should parse")
	}
}

func TestParseNegation(t *testing.T) {
	for _, src := range []string{
		"ntc(x, y) :- node(x), node(y), !tc(x, y).",
		"ntc(x, y) :- node(x), node(y), not tc(x, y).",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !p.Rules[0].Body[2].Negated {
			t.Fatalf("%q: third atom should be negated", src)
		}
	}
}

func TestParseComparisonsAndConstants(t *testing.T) {
	p, err := Parse("sg(x, y) :- arc(p, x), arc(p, y), x != y, x < 10.")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if len(r.Cmps) != 2 || r.Cmps[0].Op != ast.OpNE || r.Cmps[1].Op != ast.OpLT {
		t.Fatalf("cmps = %+v", r.Cmps)
	}
}

func TestParseAggregateHeads(t *testing.T) {
	p, err := Parse(`
		cc3(x, MIN(x)) :- arc(x, _).
		sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
		g(x, COUNT(y)) :- tc(x, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].HeadTerms[1].Agg != "MIN" {
		t.Fatalf("agg = %q", p.Rules[0].HeadTerms[1].Agg)
	}
	if _, ok := p.Rules[1].HeadTerms[1].Expr.(ast.Bin); !ok {
		t.Fatalf("MIN arg should be arithmetic, got %T", p.Rules[1].HeadTerms[1].Expr)
	}
	if !p.Rules[0].Body[0].Args[1].IsWild {
		t.Fatal("wildcard not recognized")
	}
}

func TestParseInlineFacts(t *testing.T) {
	p, err := Parse(`
		id(7).
		arc(1, 2).
		reach(y) :- id(y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Facts["id"]) != 1 || p.Facts["id"][0][0] != 7 {
		t.Fatalf("facts = %+v", p.Facts)
	}
	if len(p.Facts["arc"]) != 1 || p.Facts["arc"][0][1] != 2 {
		t.Fatalf("facts = %+v", p.Facts)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(p.Rules))
	}
}

func TestParseNegativeConstants(t *testing.T) {
	p, err := Parse("p(-5).")
	if err != nil {
		t.Fatal(err)
	}
	if p.Facts["p"][0][0] != -5 {
		t.Fatalf("fact = %v", p.Facts["p"])
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse(`
		% percent comment
		# hash comment
		// slash comment
		tc(x, y) :- arc(x, y). % trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"tc(x, y)",                // missing period
		"tc(x, y) :- arc(x, y)",   // missing period
		"tc(x, y) :- .",           // empty body
		"tc(x, ) :- arc(x, y).",   // missing term
		"tc(x, y) :- arc(x y).",   // missing comma
		"(x) :- arc(x, y).",       // missing head name
		"tc(x, y) :- x ~ y.",      // bad operator
		"tc(MIN(x)) :- arc(x, y)", // missing period after agg head
		"f(x).",                   // fact with variable
		"tc(x,y) :- arc(x,y). @",  // stray character
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestRuleStringRoundTripParses(t *testing.T) {
	srcs := []string{
		"tc(x, y) :- tc(x, z), arc(z, y).",
		"sg(x, y) :- arc(p, x), arc(p, y), x != y.",
		"ntc(x, y) :- node(x), node(y), !tc(x, y).",
		"sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).",
	}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rendered := p.Rules[0].String()
		if _, err := Parse(rendered); err != nil {
			t.Errorf("re-parse of %q failed: %v", rendered, err)
		}
		if !strings.Contains(rendered, p.Rules[0].HeadPred) {
			t.Errorf("rendered rule %q lost its head", rendered)
		}
	}
}
