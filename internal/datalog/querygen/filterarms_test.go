package querygen

import (
	"strings"
	"testing"

	"recstep/internal/programs"
)

// FilterArms must drop exactly the arms seeded from a rejected ∆ table and
// reassemble consistent UIE and individual forms from the survivors.
func TestFilterArmsDropsRejectedDeltaArms(t *testing.T) {
	q := queriesFor(t, programs.CSPA, "valueFlow")
	if len(q.Rec.Subs) != q.Rec.Subqueries || len(q.Rec.DeltaTables) != q.Rec.Subqueries {
		t.Fatalf("Subs/DeltaTables misaligned: %d/%d arms, Subqueries=%d",
			len(q.Rec.Subs), len(q.Rec.DeltaTables), q.Rec.Subqueries)
	}
	var maArms int
	for _, d := range q.Rec.DeltaTables {
		switch d {
		case DeltaTable("memoryAlias"):
			maArms++
		case DeltaTable("valueFlow"):
		default:
			t.Fatalf("unexpected seeding delta %q", d)
		}
	}
	if maArms == 0 {
		t.Fatal("no valueFlow arm seeds from memoryAlias_mdelta; fixture lost its point")
	}

	kept, skipped := FilterArms(q.Tmp, q.Rec, func(delta string) bool {
		return delta != DeltaTable("memoryAlias")
	})
	if skipped != maArms {
		t.Fatalf("skipped %d arms, want %d", skipped, maArms)
	}
	if kept.Subqueries != q.Rec.Subqueries-maArms {
		t.Fatalf("kept %d subqueries, want %d", kept.Subqueries, q.Rec.Subqueries-maArms)
	}
	if strings.Contains(kept.Unified, DeltaTable("memoryAlias")) {
		t.Fatalf("unified still reads the rejected delta: %q", kept.Unified)
	}
	if got := strings.Count(kept.Unified, "UNION ALL"); got != kept.Subqueries-1 {
		t.Fatalf("UNION ALL count = %d, want %d", got, kept.Subqueries-1)
	}
	if len(kept.Parts) != kept.Subqueries || len(kept.PartTables) != kept.Subqueries {
		t.Fatalf("individual form has %d parts, want %d", len(kept.Parts), kept.Subqueries)
	}
	if !strings.Contains(kept.Unified, "INSERT INTO "+q.Tmp) {
		t.Fatalf("unified inserts elsewhere: %q", kept.Unified)
	}

	// Keeping everything returns the input untouched.
	same, skipped := FilterArms(q.Tmp, q.Rec, func(string) bool { return true })
	if skipped != 0 || same.Unified != q.Rec.Unified {
		t.Fatalf("keep-all changed the queries (skipped=%d)", skipped)
	}

	// Rejecting every ∆ leaves zero subqueries (init arms have no ∆ and
	// would survive; the recursive phase has none).
	none, skipped := FilterArms(q.Tmp, q.Rec, func(string) bool { return false })
	if none.Subqueries != 0 || skipped != q.Rec.Subqueries {
		t.Fatalf("reject-all: %d subqueries remain, %d skipped", none.Subqueries, skipped)
	}
}
