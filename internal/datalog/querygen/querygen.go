// Package querygen translates analyzed Datalog rules into the SQL the
// RecStep interpreter issues each iteration (Figure 1's query generator).
// It implements semi-naive delta rewriting — each occurrence of a
// same-stratum IDB atom yields one subquery evaluating that occurrence
// against the delta table — and the Unified IDB Evaluation (UIE)
// optimization: all subqueries targeting one IDB are emitted as a single
// INSERT … SELECT … UNION ALL … statement (Figure 4), with the individual
// per-subquery form kept for the ablation.
package querygen

import (
	"fmt"
	"sort"
	"strings"

	"recstep/internal/datalog/analysis"
	"recstep/internal/datalog/ast"
)

// Table-name suffixes, mirroring the paper's pointsTo_mDelta convention.
const (
	DeltaSuffix = "_mdelta"
	TmpSuffix   = "_mtmp"
)

// DeltaTable returns the delta-table name for a predicate.
func DeltaTable(pred string) string { return pred + DeltaSuffix }

// TmpTable returns the per-iteration temporary table name for a predicate.
func TmpTable(pred string) string { return pred + TmpSuffix }

// UnitQueries holds the SQL evaluating one IDB in one phase (init or
// recursive), in both UIE and individual form.
type UnitQueries struct {
	// Unified is the single UIE statement: INSERT INTO tmp SELECT … UNION
	// ALL SELECT …. Empty when the phase has no subqueries.
	Unified string
	// Parts are the individual statements (one INSERT per subquery) into
	// PartTables; Merge combines them into the tmp table. This is the
	// non-UIE evaluation of Figure 4.
	Parts      []string
	PartTables []string
	Merge      string
	// Subqueries counts the UNION ALL arms.
	Subqueries int
	// Subs are the raw SELECT arms, aligned with DeltaTables: arm i seeds
	// from delta table DeltaTables[i] ("" for init/full arms with no
	// seeding ∆). The interpreter uses them to skip arms whose ∆ relation
	// is empty before planning anything (see FilterArms).
	Subs        []string
	DeltaTables []string
}

// FilterArms returns a copy of u keeping only the arms whose seeding delta
// table keep accepts (arms with no seeding ∆ are always kept), reassembled
// into fresh UIE and individual forms, plus the number of arms dropped. tmp
// is the destination temporary table the statements insert into.
func FilterArms(tmp string, u UnitQueries, keep func(delta string) bool) (UnitQueries, int) {
	kept := make([]armSub, 0, len(u.Subs))
	for i, s := range u.Subs {
		d := u.DeltaTables[i]
		if d == "" || keep(d) {
			kept = append(kept, armSub{sql: s, delta: d})
		}
	}
	if len(kept) == len(u.Subs) {
		return u, 0
	}
	return assemble(tmp, kept), len(u.Subs) - len(kept)
}

// MergeUnits concatenates the arms of two unit queries targeting the same
// tmp table into one reassembled unit. The incremental-update phases use it
// to run their seed arms *and* the ordinary propagation arms in the first
// iteration: deltas install in predicate order within an iteration, so a
// predicate evaluated after a producer must consume the producer's
// first-iteration ∆ in that same iteration — by the next one it has been
// replaced.
func MergeUnits(tmp string, a, b UnitQueries) UnitQueries {
	merged := make([]armSub, 0, len(a.Subs)+len(b.Subs))
	for i, s := range a.Subs {
		merged = append(merged, armSub{sql: s, delta: a.DeltaTables[i]})
	}
	for i, s := range b.Subs {
		merged = append(merged, armSub{sql: s, delta: b.DeltaTables[i]})
	}
	return assemble(tmp, merged)
}

// IDBQueries bundles everything the interpreter needs per IDB per stratum.
type IDBQueries struct {
	Pred  string
	Arity int
	Tmp   string
	Delta string
	// Init evaluates the non-recursive rules (fired once, iteration 1).
	Init UnitQueries
	// Rec evaluates the semi-naive delta subqueries (iterations ≥ 2).
	Rec UnitQueries
	// Full evaluates every rule against full relations — the naive
	// evaluation strategy (Section 3.2), kept as a baseline.
	Full UnitQueries
	// Agg is non-nil when the predicate aggregates.
	Agg *analysis.AggSpec
	// RecursiveAgg marks aggregation inside recursion.
	RecursiveAgg bool
}

// Generator compiles rules of one analyzed program.
type Generator struct {
	res *analysis.Result
}

// New creates a generator.
func New(res *analysis.Result) *Generator { return &Generator{res: res} }

// StratumQueries produces the queries for every IDB of a stratum, sorted by
// predicate name.
func (g *Generator) StratumQueries(s analysis.Stratum) ([]IDBQueries, error) {
	byPred := make(map[string]*IDBQueries)
	for _, name := range s.IDBs {
		pi := g.res.Preds[name]
		byPred[name] = &IDBQueries{
			Pred:         name,
			Arity:        pi.Arity,
			Tmp:          TmpTable(name),
			Delta:        DeltaTable(name),
			Agg:          pi.Agg,
			RecursiveAgg: pi.RecursiveAgg,
		}
	}
	type sub struct {
		sql   string
		init  bool
		delta string
	}
	subsOf := make(map[string][]sub)
	fullOf := make(map[string][]armSub)
	for _, ri := range s.RuleIdx {
		rule := g.res.Program.Rules[ri]
		full, err := g.subquery(rule, -1)
		if err != nil {
			return nil, err
		}
		fullOf[rule.HeadPred] = append(fullOf[rule.HeadPred], armSub{sql: full})
		recPositions := g.sameStratumPositions(rule, s.Index)
		if len(recPositions) == 0 {
			subsOf[rule.HeadPred] = append(subsOf[rule.HeadPred], sub{sql: full, init: true})
			continue
		}
		for _, pos := range recPositions {
			q, err := g.subquery(rule, pos)
			if err != nil {
				return nil, err
			}
			subsOf[rule.HeadPred] = append(subsOf[rule.HeadPred], sub{sql: q, delta: DeltaTable(rule.Body[pos].Pred)})
		}
	}
	var out []IDBQueries
	for _, name := range s.IDBs {
		iq := byPred[name]
		var initSubs, recSubs []armSub
		for _, sb := range subsOf[name] {
			if sb.init {
				initSubs = append(initSubs, armSub{sql: sb.sql})
			} else {
				recSubs = append(recSubs, armSub{sql: sb.sql, delta: sb.delta})
			}
		}
		iq.Init = assemble(iq.Tmp, initSubs)
		iq.Rec = assemble(iq.Tmp, recSubs)
		iq.Full = assemble(iq.Tmp, fullOf[name])
		out = append(out, *iq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pred < out[j].Pred })
	return out, nil
}

// armSub is one UNION ALL arm: its SELECT plus the delta table it seeds from
// ("" for arms evaluating full relations only).
type armSub struct {
	sql   string
	delta string
}

// assemble builds the UIE and individual forms from a list of subqueries.
func assemble(tmp string, subs []armSub) UnitQueries {
	if len(subs) == 0 {
		return UnitQueries{}
	}
	u := UnitQueries{Subqueries: len(subs)}
	var arms []string
	for _, s := range subs {
		arms = append(arms, s.sql)
		u.Subs = append(u.Subs, s.sql)
		u.DeltaTables = append(u.DeltaTables, s.delta)
	}
	u.Unified = fmt.Sprintf("INSERT INTO %s %s", tmp, strings.Join(arms, " UNION ALL "))
	var mergeArms []string
	for i, s := range subs {
		part := fmt.Sprintf("%s_%d", tmp, i)
		u.PartTables = append(u.PartTables, part)
		u.Parts = append(u.Parts, fmt.Sprintf("INSERT INTO %s %s", part, s.sql))
		mergeArms = append(mergeArms, "SELECT * FROM "+part)
	}
	u.Merge = fmt.Sprintf("INSERT INTO %s %s", tmp, strings.Join(mergeArms, " UNION ALL "))
	return u
}

// sameStratumPositions returns the indices of positive body atoms whose
// predicate belongs to the rule's stratum.
func (g *Generator) sameStratumPositions(rule ast.Rule, stratum int) []int {
	var out []int
	for i, a := range rule.Body {
		if a.Negated {
			continue
		}
		if pi, ok := g.res.Preds[a.Pred]; ok && pi.IsIDB && pi.Stratum == stratum {
			out = append(out, i)
		}
	}
	return out
}

// subquery renders one SELECT for a rule. deltaPos ≥ 0 substitutes the delta
// table for that body-atom occurrence (semi-naive rewriting); -1 uses full
// relations throughout.
func (g *Generator) subquery(rule ast.Rule, deltaPos int) (string, error) {
	var overrides map[int]string
	if deltaPos >= 0 {
		overrides = map[int]string{deltaPos: DeltaTable(rule.Body[deltaPos].Pred)}
	}
	return g.subqueryWith(rule, overrides, "")
}

// subqueryWith is the general arm renderer behind both the semi-naive
// rewriting and the incremental-update queries: overrides substitutes a side
// table for any body-atom occurrence (position → table name), and restrict,
// when non-empty, joins that table against the rule's head terms — the
// head-restriction DRed's rescue phase uses to re-derive only over-deleted
// tuples.
func (g *Generator) subqueryWith(rule ast.Rule, overrides map[int]string, restrict string) (string, error) {
	binding := make(map[string]string) // variable → alias.column
	var from, where []string
	aliasNum := 0
	for i, a := range rule.Body {
		if a.Negated {
			continue
		}
		alias := fmt.Sprintf("t%d", aliasNum)
		aliasNum++
		table := a.Pred
		if t, ok := overrides[i]; ok {
			table = t
		}
		from = append(from, fmt.Sprintf("%s AS %s", table, alias))
		for j, term := range a.Args {
			col := fmt.Sprintf("%s.c%d", alias, j)
			switch {
			case term.IsWild:
			case term.IsConst:
				where = append(where, fmt.Sprintf("%s = %d", col, term.Const))
			default:
				if prev, ok := binding[term.Var]; ok {
					where = append(where, fmt.Sprintf("%s = %s", col, prev))
				} else {
					binding[term.Var] = col
				}
			}
		}
	}
	if len(from) == 0 {
		return "", fmt.Errorf("querygen: rule for %q has no positive body atoms", rule.HeadPred)
	}
	for _, c := range rule.Cmps {
		l, err := renderExpr(c.L, binding)
		if err != nil {
			return "", err
		}
		r, err := renderExpr(c.R, binding)
		if err != nil {
			return "", err
		}
		where = append(where, fmt.Sprintf("%s %s %s", l, sqlOp(c.Op), r))
	}
	negIdx := 0
	for _, a := range rule.Body {
		if !a.Negated {
			continue
		}
		ne, err := renderNotExists(a, binding, negIdx)
		if err != nil {
			return "", err
		}
		where = append(where, ne)
		negIdx++
	}

	var selects []string
	var groupBy []string
	hasAgg := rule.HasAggregate()
	if restrict != "" && hasAgg {
		return "", fmt.Errorf("querygen: head restriction on aggregate rule for %q", rule.HeadPred)
	}
	for pos, h := range rule.HeadTerms {
		e, err := renderExpr(h.Expr, binding)
		if err != nil {
			return "", err
		}
		if h.Agg != "" {
			selects = append(selects, fmt.Sprintf("%s(%s) AS c%d", h.Agg, e, pos))
			continue
		}
		if hasAgg {
			// Group terms must be plain variables so GROUP BY references a
			// column, as QuickStep requires.
			if _, ok := h.Expr.(ast.Var); !ok {
				return "", fmt.Errorf("querygen: aggregate rule for %q: grouping term %q must be a plain variable", rule.HeadPred, h.Expr)
			}
			groupBy = append(groupBy, e)
		}
		selects = append(selects, fmt.Sprintf("%s AS c%d", e, pos))
		if restrict != "" {
			where = append(where, fmt.Sprintf("hr.c%d = %s", pos, e))
		}
	}
	if restrict != "" {
		from = append(from, restrict+" AS hr")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s FROM %s", strings.Join(selects, ", "), strings.Join(from, ", "))
	if len(where) > 0 {
		fmt.Fprintf(&b, " WHERE %s", strings.Join(where, " AND "))
	}
	if len(groupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(groupBy, ", "))
	}
	return b.String(), nil
}

func renderNotExists(a ast.Atom, binding map[string]string, idx int) (string, error) {
	alias := fmt.Sprintf("n%d", idx)
	var conds []string
	for j, term := range a.Args {
		col := fmt.Sprintf("%s.c%d", alias, j)
		switch {
		case term.IsWild:
		case term.IsConst:
			conds = append(conds, fmt.Sprintf("%s = %d", col, term.Const))
		default:
			bound, ok := binding[term.Var]
			if !ok {
				return "", fmt.Errorf("querygen: unbound variable %q in negated atom %s", term.Var, a.Pred)
			}
			conds = append(conds, fmt.Sprintf("%s = %s", col, bound))
		}
	}
	if len(conds) == 0 {
		return "", fmt.Errorf("querygen: negated atom %s constrains nothing", a.Pred)
	}
	return fmt.Sprintf("NOT EXISTS (SELECT * FROM %s AS %s WHERE %s)",
		a.Pred, alias, strings.Join(conds, " AND ")), nil
}

func renderExpr(e ast.Expr, binding map[string]string) (string, error) {
	switch v := e.(type) {
	case ast.Num:
		return fmt.Sprintf("%d", v.Value), nil
	case ast.Var:
		col, ok := binding[v.Name]
		if !ok {
			return "", fmt.Errorf("querygen: unbound variable %q", v.Name)
		}
		return col, nil
	case ast.Bin:
		l, err := renderExpr(v.L, binding)
		if err != nil {
			return "", err
		}
		r, err := renderExpr(v.R, binding)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %c %s)", l, v.Op, r), nil
	}
	return "", fmt.Errorf("querygen: unhandled expression %T", e)
}

func sqlOp(op ast.CmpOp) string {
	if op == ast.OpNE {
		return "<>"
	}
	return string(op)
}
