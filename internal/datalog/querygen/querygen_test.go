package querygen

import (
	"strings"
	"testing"

	"recstep/internal/datalog/analysis"
	"recstep/internal/programs"
)

func gen(t *testing.T, src string) (*Generator, *analysis.Result) {
	t.Helper()
	res, err := analysis.Analyze(programs.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return New(res), res
}

func queriesFor(t *testing.T, src, pred string) IDBQueries {
	t.Helper()
	g, res := gen(t, src)
	s := res.Strata[res.Preds[pred].Stratum]
	qs, err := g.StratumQueries(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Pred == pred {
			return q
		}
	}
	t.Fatalf("no queries for %q", pred)
	return IDBQueries{}
}

func TestTCQueries(t *testing.T) {
	q := queriesFor(t, programs.TC, "tc")
	if q.Init.Subqueries != 1 || q.Rec.Subqueries != 1 {
		t.Fatalf("subqueries init=%d rec=%d, want 1/1", q.Init.Subqueries, q.Rec.Subqueries)
	}
	if !strings.Contains(q.Init.Unified, "INSERT INTO tc_mtmp") {
		t.Fatalf("init = %q", q.Init.Unified)
	}
	if !strings.Contains(q.Init.Unified, "FROM arc AS t0") {
		t.Fatalf("init = %q", q.Init.Unified)
	}
	if !strings.Contains(q.Rec.Unified, "tc_mdelta AS t0") {
		t.Fatalf("rec should read the delta table: %q", q.Rec.Unified)
	}
	if !strings.Contains(q.Rec.Unified, "t1.c0 = t0.c1") {
		t.Fatalf("rec join condition missing: %q", q.Rec.Unified)
	}
}

func TestAndersenUIEUnionArms(t *testing.T) {
	q := queriesFor(t, programs.Andersen, "pointsTo")
	// Rules: 1 base + (1 + 2 + 2) recursive occurrences = 5 delta subqueries.
	if q.Init.Subqueries != 1 {
		t.Fatalf("init subqueries = %d, want 1", q.Init.Subqueries)
	}
	if q.Rec.Subqueries != 5 {
		t.Fatalf("rec subqueries = %d, want 5", q.Rec.Subqueries)
	}
	if got := strings.Count(q.Rec.Unified, "UNION ALL"); got != 4 {
		t.Fatalf("UNION ALL count = %d, want 4", got)
	}
	// Individual form matches Figure 4: one INSERT per subquery plus merge.
	if len(q.Rec.Parts) != 5 || len(q.Rec.PartTables) != 5 {
		t.Fatalf("parts = %d", len(q.Rec.Parts))
	}
	if !strings.Contains(q.Rec.Merge, "SELECT * FROM pointsTo_mtmp_0") {
		t.Fatalf("merge = %q", q.Rec.Merge)
	}
}

func TestSGResidualAndDelta(t *testing.T) {
	q := queriesFor(t, programs.SG, "sg")
	if !strings.Contains(q.Init.Unified, "<>") {
		t.Fatalf("x != y should render as <>: %q", q.Init.Unified)
	}
	if !strings.Contains(q.Rec.Unified, "sg_mdelta") {
		t.Fatalf("rec = %q", q.Rec.Unified)
	}
}

func TestCCAggregateGroupBy(t *testing.T) {
	q := queriesFor(t, programs.CC, "cc3")
	if !q.RecursiveAgg || q.Agg == nil {
		t.Fatal("cc3 should be a recursive aggregate")
	}
	if !strings.Contains(q.Init.Unified, "MIN(t0.c0) AS c1") {
		t.Fatalf("init = %q", q.Init.Unified)
	}
	if !strings.Contains(q.Init.Unified, "GROUP BY t0.c0") {
		t.Fatalf("init should pre-aggregate: %q", q.Init.Unified)
	}
	if !strings.Contains(q.Rec.Unified, "cc3_mdelta") {
		t.Fatalf("rec = %q", q.Rec.Unified)
	}
}

func TestSSSPArithmeticAggregate(t *testing.T) {
	q := queriesFor(t, programs.SSSP, "sssp2")
	if !strings.Contains(q.Rec.Unified, "MIN((t0.c1 + t1.c2)) AS c1") {
		t.Fatalf("rec = %q", q.Rec.Unified)
	}
	if !strings.Contains(q.Init.Unified, "MIN(0) AS c1") {
		t.Fatalf("init = %q", q.Init.Unified)
	}
}

func TestNTCNotExists(t *testing.T) {
	q := queriesFor(t, programs.NTC, "ntc")
	u := q.Init.Unified
	if !strings.Contains(u, "NOT EXISTS (SELECT * FROM tc AS n0 WHERE n0.c0 = t0.c0 AND n0.c1 = t1.c0)") {
		t.Fatalf("negation SQL = %q", u)
	}
	if q.Rec.Subqueries != 0 {
		t.Fatal("ntc is non-recursive")
	}
}

func TestConstantsInAtoms(t *testing.T) {
	q := queriesFor(t, "p(x) :- e(x, 5).", "p")
	if !strings.Contains(q.Init.Unified, "t0.c1 = 5") {
		t.Fatalf("constant constraint missing: %q", q.Init.Unified)
	}
}

func TestWildcardsNotConstrained(t *testing.T) {
	q := queriesFor(t, "p(x) :- e(x, _).", "p")
	if strings.Contains(q.Init.Unified, "WHERE") {
		t.Fatalf("wildcard should impose no condition: %q", q.Init.Unified)
	}
}

func TestCSPAMutualRecursionDeltas(t *testing.T) {
	g, res := gen(t, programs.CSPA)
	s := res.Strata[res.Preds["valueFlow"].Stratum]
	qs, err := g.StratumQueries(s)
	if err != nil {
		t.Fatal(err)
	}
	byPred := map[string]IDBQueries{}
	for _, q := range qs {
		byPred[q.Pred] = q
	}
	// valueFlow's recursive arms must reference memoryAlias_mdelta (from the
	// assign ⋈ memoryAlias rule) and valueFlow_mdelta.
	vf := byPred["valueFlow"]
	if !strings.Contains(vf.Rec.Unified, "memoryAlias_mdelta") || !strings.Contains(vf.Rec.Unified, "valueFlow_mdelta") {
		t.Fatalf("valueFlow rec = %q", vf.Rec.Unified)
	}
	// valueFlow(x,y) :- valueFlow(x,z), valueFlow(z,y) yields two delta arms.
	if got := strings.Count(vf.Rec.Unified, "valueFlow_mdelta"); got < 2 {
		t.Fatalf("nonlinear rule should contribute ≥2 delta arms, got %d", got)
	}
	va := byPred["valueAlias"]
	if va.Init.Subqueries != 0 {
		t.Fatalf("valueAlias has no base rules, init = %d", va.Init.Subqueries)
	}
}

func TestTableNameHelpers(t *testing.T) {
	if DeltaTable("tc") != "tc_mdelta" || TmpTable("tc") != "tc_mtmp" {
		t.Fatal("table name helpers changed")
	}
}

func TestGroupTermMustBeVariable(t *testing.T) {
	// An arithmetic grouping term cannot be rendered as a GROUP BY column.
	g, res := gen(t, "p(x + 1, MIN(y)) :- e(x, y).")
	s := res.Strata[res.Preds["p"].Stratum]
	if _, err := g.StratumQueries(s); err == nil {
		t.Fatal("expected error for arithmetic grouping term")
	}
}

func TestNoPositiveAtomsRejected(t *testing.T) {
	// A rule whose only body literal is negated cannot be compiled.
	res, err := analysis.Analyze(programs.MustParse("p(1) :- !e(1).\nq(x) :- e(x)."))
	if err != nil {
		t.Fatal(err)
	}
	g := New(res)
	s := res.Strata[res.Preds["p"].Stratum]
	if _, err := g.StratumQueries(s); err == nil {
		t.Fatal("expected error for rule without positive atoms")
	}
}
