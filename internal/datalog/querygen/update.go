package querygen

import (
	"recstep/internal/datalog/analysis"
)

// Incremental-update query generation. ApplyDelta materializes per-predicate
// side tables — the net insertions (plus), net deletions (minus), an
// over-approximation of the predicate's pre-update contents (old =
// current ∪ minus), the accumulated over-deleted set (dead) and each
// over-delete round's newly dead tuples (over) — and evaluates three arm
// families against them:
//
//   - injection arms seed the insertion phase: each rule occurrence of a
//     plus-changed predicate evaluates once with the plus table substituted
//     (subsequent rounds are the ordinary semi-naive Rec arms);
//   - over-delete arms compute DRed's downward closure: minus-changed
//     occurrences substitute the minus table (seed round) or same-stratum
//     occurrences substitute the per-round over table (propagation rounds),
//     with other minus-changed occurrences reading the old table so the
//     closure is evaluated against (a superset of) the pre-update database;
//   - rescue arms re-derive survivors: the full rule body over current
//     relations joined against the dead table on the head terms, so only
//     over-deleted tuples can be produced.
//
// Reading a *superset* of the old database in the closure is safe: it can
// only over-delete more, and every over-deleted tuple still derivable is
// re-added by the rescue fixpoint (candidates are also intersected with R,
// so nothing never-present enters the dead set).
const (
	MinusSuffix = "_uminus"
	PlusSuffix  = "_uplus"
	OldSuffix   = "_uold"
	DeadSuffix  = "_udead"
	OverSuffix  = "_uover"
	AddSuffix   = "_uadd"
	PrevSuffix  = "_uprev"
)

// UpdateSuffixes lists every incremental-update table suffix, for the
// engine's predicate-name collision check.
var UpdateSuffixes = []string{MinusSuffix, PlusSuffix, OldSuffix, DeadSuffix, OverSuffix, AddSuffix, PrevSuffix}

// MinusTable names the net-deletions side table of one update.
func MinusTable(pred string) string { return pred + MinusSuffix }

// PlusTable names the net-insertions side table of one update.
func PlusTable(pred string) string { return pred + PlusSuffix }

// OldTable names the pre-update over-approximation (current ∪ minus).
func OldTable(pred string) string { return pred + OldSuffix }

// DeadTable names the accumulated over-deleted set of one update.
func DeadTable(pred string) string { return pred + DeadSuffix }

// OverTable names one over-delete round's newly dead tuples.
func OverTable(pred string) string { return pred + OverSuffix }

// AddTable names the insertion phase's accumulated new tuples.
func AddTable(pred string) string { return pred + AddSuffix }

// PrevTable names the pre-update snapshot a fallback stratum diffs against.
func PrevTable(pred string) string { return pred + PrevSuffix }

// Changed records which side tables exist for a changed predicate.
type Changed struct {
	Minus bool
	Plus  bool
}

// InjectQueries builds the insertion phase's seed arms for one IDB: for
// every rule occurrence of a plus-changed predicate, one arm reading the
// plus table there and current (post-update) relations everywhere else.
// DeltaTables carries the plus-table names so empty-∆ arm skipping works.
func (g *Generator) InjectQueries(s analysis.Stratum, pred string, changed map[string]Changed) (UnitQueries, error) {
	var subs []armSub
	for _, ri := range s.RuleIdx {
		rule := g.res.Program.Rules[ri]
		if rule.HeadPred != pred {
			continue
		}
		for i, a := range rule.Body {
			if a.Negated || !changed[a.Pred].Plus {
				continue
			}
			sql, err := g.subqueryWith(rule, map[int]string{i: PlusTable(a.Pred)}, "")
			if err != nil {
				return UnitQueries{}, err
			}
			subs = append(subs, armSub{sql: sql, delta: PlusTable(a.Pred)})
		}
	}
	return assemble(TmpTable(pred), subs), nil
}

// OverDeleteQueries builds one over-delete round's arms for one IDB. The
// seed round substitutes the minus table at each minus-changed occurrence;
// propagation rounds substitute the over table at each same-stratum IDB
// occurrence. In both, every *other* minus-changed occurrence reads the old
// table (current ∪ minus ⊇ pre-update contents); same-stratum occurrences
// read the predicate itself, which still holds pre-update contents because
// physical deletion is deferred until the closure completes.
func (g *Generator) OverDeleteQueries(s analysis.Stratum, pred string, changed map[string]Changed, seed bool) (UnitQueries, error) {
	var subs []armSub
	for _, ri := range s.RuleIdx {
		rule := g.res.Program.Rules[ri]
		if rule.HeadPred != pred {
			continue
		}
		var deltaPositions []int
		if seed {
			for i, a := range rule.Body {
				if !a.Negated && changed[a.Pred].Minus {
					deltaPositions = append(deltaPositions, i)
				}
			}
		} else {
			deltaPositions = g.sameStratumPositions(rule, s.Index)
		}
		for _, pos := range deltaPositions {
			overrides := make(map[int]string)
			for j, b := range rule.Body {
				if j != pos && !b.Negated && changed[b.Pred].Minus {
					overrides[j] = OldTable(b.Pred)
				}
			}
			var delta string
			if seed {
				delta = MinusTable(rule.Body[pos].Pred)
			} else {
				delta = OverTable(rule.Body[pos].Pred)
			}
			overrides[pos] = delta
			sql, err := g.subqueryWith(rule, overrides, "")
			if err != nil {
				return UnitQueries{}, err
			}
			subs = append(subs, armSub{sql: sql, delta: delta})
		}
	}
	return assemble(TmpTable(pred), subs), nil
}

// RescueQueries builds the re-derivation arms for one IDB: every rule body
// over current relations, head-restricted to the dead table, so each round
// produces exactly the over-deleted tuples with a surviving derivation.
func (g *Generator) RescueQueries(s analysis.Stratum, pred string) (UnitQueries, error) {
	var subs []armSub
	for _, ri := range s.RuleIdx {
		rule := g.res.Program.Rules[ri]
		if rule.HeadPred != pred {
			continue
		}
		sql, err := g.subqueryWith(rule, nil, DeadTable(pred))
		if err != nil {
			return UnitQueries{}, err
		}
		subs = append(subs, armSub{sql: sql, delta: DeadTable(pred)})
	}
	return assemble(TmpTable(pred), subs), nil
}

// StratumNeedsFallback reports whether a stratum must be maintained by
// recompute-and-diff instead of the DRed/seeded-semi-naive fast path, given
// the predicates changed so far: any (recursive or stratified) aggregation
// in the stratum, or a negated occurrence of a changed predicate — the
// closure arms have no sound delta rewriting for either.
func StratumNeedsFallback(res *analysis.Result, s analysis.Stratum, changed map[string]Changed) bool {
	for _, name := range s.IDBs {
		pi := res.Preds[name]
		if pi.Agg != nil || pi.RecursiveAgg {
			return true
		}
	}
	for _, ri := range s.RuleIdx {
		for _, a := range res.Program.Rules[ri].Body {
			if a.Negated {
				if c, ok := changed[a.Pred]; ok && (c.Minus || c.Plus) {
					return true
				}
			}
		}
	}
	return false
}

// StratumReadsChanged reports whether any rule of the stratum references a
// changed predicate (positively or under negation); unaffected strata are
// skipped wholesale by ApplyDelta.
func StratumReadsChanged(res *analysis.Result, s analysis.Stratum, changed map[string]Changed) bool {
	for _, ri := range s.RuleIdx {
		for _, a := range res.Program.Rules[ri].Body {
			if c, ok := changed[a.Pred]; ok && (c.Minus || c.Plus) {
				return true
			}
		}
	}
	return false
}
