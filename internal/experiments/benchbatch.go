package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"recstep/internal/baselines/native"
	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/storage"
)

// BatchArm is one measured configuration of the batch-kernel microbenchmark:
// a (fan-out, batch-vs-row) pair with timing, allocation and pool-traffic
// readings. The magazine columns show where the allocation work went: on the
// batch arm MagHits is high and the shard columns are low (per-worker
// magazines batch the pool's shard locking); the row arm pays one shard
// visit per array.
type BatchArm struct {
	Name        string `json:"name"`
	Parts       int    `json:"parts"`
	Batch       bool   `json:"batch"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// ShardGets/ShardPuts are per-op pool free-list shard lock
	// acquisitions; MagHits counts allocations a per-worker magazine served
	// with no shard traffic at all.
	ShardGets int64 `json:"shard_gets_per_op"`
	ShardPuts int64 `json:"shard_puts_per_op"`
	MagHits   int64 `json:"mag_hits_per_op"`
}

// EndToEndArm is one full-fixpoint run of a workload under a layout arm.
type EndToEndArm struct {
	Name     string `json:"name"`
	Batch    bool   `json:"batch"`
	Millis   int64  `json:"millis"`
	Tuples   int    `json:"tuples"`
	Speedup  string `json:"speedup_vs_row,omitempty"`
	Workload string `json:"workload"`
}

// BenchBatchReport is the machine-readable output of the PR 6 bench smoke
// (BENCH_PR6.json): the fused delta step under batched kernels + columnar
// layout + magazines versus the row-layout tuple-at-a-time ablation, at
// fan-outs 1, 16 and 64, plus an end-to-end transitive-closure run of both
// arms. Speedup is the row arm's ns/op over the batch arm's at equal
// fan-out.
type BenchBatchReport struct {
	Workload  string        `json:"workload"`
	Workers   int           `json:"workers"`
	DeltaStep []BatchArm    `json:"delta_step"`
	Speedups  []string      `json:"delta_step_speedups"`
	EndToEnd  []EndToEndArm `json:"end_to_end_tc"`
}

// benchBatchArm measures one delta-step arm, folding the memory manager's
// counter movement over the timed sections into per-op readings. Best of two
// benchmark runs, each behind a GC fence: on a single-core box the collector
// competes with the measured code directly, so a run that inherits another
// arm's heap debt reads uniformly slow.
func benchBatchArm(name string, parts int, batch bool, mem *memory.Manager, fn func(b *testing.B, acc *memory.Snapshot)) BatchArm {
	var acc memory.Snapshot
	var r testing.BenchmarkResult
	for try := 0; try < 2; try++ {
		var tacc memory.Snapshot
		runtime.GC()
		tr := testing.Benchmark(func(b *testing.B) { fn(b, &tacc) })
		if try == 0 || tr.NsPerOp() < r.NsPerOp() {
			r, acc = tr, tacc
		}
	}
	n := int64(r.N)
	if n == 0 {
		n = 1
	}
	return BatchArm{
		Name:        name,
		Parts:       parts,
		Batch:       batch,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		ShardGets:   acc.ShardGets / n,
		ShardPuts:   acc.ShardPuts / n,
		MagHits:     acc.MagHits / n,
	}
}

// BenchBatch measures the batch-kernel win in isolation and end to end. The
// microbenchmark arms run the fused delta step over the TC shape of the
// headline BenchmarkDeltaStep (tmp = two copies of the closure, R = half of
// it — the mid-fixpoint regime), with fresh uncarried inputs each op so the
// timed pass includes the batch-mode scatter, toggling only the
// batch/columnar paths. The end-to-end arms run the whole TC fixpoint
// through the engine with -columnar on and off.
func BenchBatch(cfg Config) BenchBatchReport {
	n := 900
	if cfg.Quick {
		n = 300
	}
	arc := graphs.GnP(n, 0.02, 5)
	tc := native.TC(arc, 0)
	workers := cfg.workers()
	pool := exec.NewPool(workers)
	mem := memory.NewManager(memory.Config{})
	pool.SetAlloc(mem)

	rep := BenchBatchReport{
		Workload: fmt.Sprintf("tc(gnp-%d-0.02), %d tuples", n, tc.NumTuples()),
		Workers:  workers,
	}

	deltaKeys := []int{1}
	tmpBase := storage.NewRelation("tmp", storage.NumberedColumns(2))
	tmpBase.AppendRelation(tc)
	tmpBase.AppendRelation(tc)
	fullBase := storage.NewRelation("r", storage.NumberedColumns(2))
	half := make([]int32, 0, tc.NumTuples())
	i := 0
	tc.ForEach(func(t []int32) {
		if i%2 == 0 {
			half = append(half, t...)
		}
		i++
	})
	fullBase.AppendRows(half)
	byParts := map[int][2]int64{}
	for _, parts := range []int{1, 16, 64} {
		for _, batch := range []bool{true, false} {
			part := storage.Partitioning{KeyCols: deltaKeys, Parts: parts}
			if parts == 1 {
				part = storage.Partitioning{Parts: 1}
			}
			mode := "row-scalar"
			if batch {
				mode = "batch-columnar"
			}
			name := fmt.Sprintf("delta-step/parts-%d/%s", parts, mode)
			arm := benchBatchArm(name, parts, batch, mem, func(b *testing.B, acc *memory.Snapshot) {
				b.ReportAllocs()
				*acc = memory.Snapshot{}
				pool.SetBatch(batch)
				defer pool.SetBatch(true)
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tmp := storage.NewRelation("tmp", storage.NumberedColumns(2))
					tmp.SetLifecycle(mem, storage.CatIntermediate)
					tmp.AppendRelation(tmpBase)
					full := storage.NewRelation("r", storage.NumberedColumns(2))
					full.SetLifecycle(mem, storage.CatIDB)
					full.AppendRelation(fullBase)
					pre := mem.Snapshot()
					b.StartTimer()
					delta := exec.DeltaStep(pool, tmp, full, exec.OPSD, part, tc.NumTuples(), "delta")
					b.StopTimer()
					d := mem.Snapshot().Sub(pre)
					acc.ShardGets += d.ShardGets
					acc.ShardPuts += d.ShardPuts
					acc.MagHits += d.MagHits
					delta.Release()
					tmp.Release()
					full.Release()
				}
			})
			rep.DeltaStep = append(rep.DeltaStep, arm)
			bp := byParts[parts]
			if batch {
				bp[0] = arm.NsPerOp
			} else {
				bp[1] = arm.NsPerOp
			}
			byParts[parts] = bp
		}
	}
	for _, parts := range []int{1, 16, 64} {
		bp := byParts[parts]
		if bp[0] > 0 {
			rep.Speedups = append(rep.Speedups,
				fmt.Sprintf("parts-%d: %.2fx", parts, float64(bp[1])/float64(bp[0])))
		}
	}
	// End-to-end: the whole TC fixpoint through the engine, -columnar both
	// ways.
	spec := GnpSpec{Label: fmt.Sprintf("gnp-%d", n), N: n, P: 0.02}
	if cfg.Quick {
		spec.P = 0.05
	}
	w := TCWorkload(spec)
	// Two alternating rounds per arm, best-of kept, with a forced collection
	// before each run: the delta arms above leave a large heap behind, and
	// without the GC fence whichever arm runs later pays that debt as extra
	// collector time on this single-core box.
	best := map[bool]EndToEndArm{}
	for round := 0; round < 2; round++ {
		for _, batch := range []bool{false, true} {
			opts := core.DefaultOptions()
			opts.Workers = workers
			opts.Columnar = batch
			mode := "row-scalar"
			if batch {
				mode = "batch-columnar"
			}
			runtime.GC()
			t0 := time.Now()
			out, err := runCore(opts, w)
			ms := time.Since(t0).Milliseconds()
			arm := EndToEndArm{Name: "tc/" + mode, Batch: batch, Millis: ms, Workload: w.Name}
			if err == nil && out != nil {
				arm.Tuples = out.NumTuples()
			}
			if prev, ok := best[batch]; !ok || ms < prev.Millis {
				best[batch] = arm
			}
		}
	}
	row, bat := best[false], best[true]
	if bat.Millis > 0 {
		bat.Speedup = fmt.Sprintf("%.2fx", float64(row.Millis)/float64(bat.Millis))
	}
	rep.EndToEnd = append(rep.EndToEnd, row, bat)
	return rep
}

// WriteBenchBatchReport renders the report as indented JSON at path.
func WriteBenchBatchReport(path string, rep BenchBatchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchBatchTable renders the report as a printable table (the
// benchrunner's human-readable echo of BENCH_PR6.json).
func BenchBatchTable(rep BenchBatchReport) Table {
	tbl := Table{
		Title:  "Batch kernels & columnar layout vs row-scalar — " + rep.Workload,
		Header: []string{"benchmark", "ns/op", "allocs/op", "shard gets/op", "shard puts/op", "mag hits/op"},
	}
	for _, arm := range rep.DeltaStep {
		tbl.Rows = append(tbl.Rows, []string{
			arm.Name,
			fmt.Sprintf("%d", arm.NsPerOp),
			fmt.Sprintf("%d", arm.AllocsPerOp),
			fmt.Sprintf("%d", arm.ShardGets),
			fmt.Sprintf("%d", arm.ShardPuts),
			fmt.Sprintf("%d", arm.MagHits),
		})
	}
	for _, arm := range rep.EndToEnd {
		cell := fmt.Sprintf("%d ms", arm.Millis)
		if arm.Speedup != "" {
			cell += " (" + arm.Speedup + " vs row)"
		}
		tbl.Rows = append(tbl.Rows, []string{arm.Name, cell, "-", "-", "-", "-"})
	}
	tbl.Notes = append(tbl.Notes,
		"batch-columnar arms run batched GSCHT inserts/probes over columnar/packed key batches with per-worker pool magazines; row-scalar arms are the -columnar=false tuple-at-a-time ablation",
		"speedups: "+fmt.Sprint(rep.Speedups))
	return tbl
}
