package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"

	"recstep/internal/core"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// BenchIncrArm is one workload of the incremental-maintenance smoke: the
// from-scratch fixpoint time against the per-update ApplyDelta latency on
// ~0.1%-sized insertion deltas, with mixed insert+delete batches run after
// the measured stream for DRed coverage (their latency and over-delete /
// rescue counters are reported but not gated: deleting inside a cyclic
// closure makes DRed over-delete and rescue a large downward cone, which is
// recompute-bound by design). Speedup is min(scratch) / median(update) — the
// conservative pairing: the baseline's least-noisy trial against the update
// stream's typical latency.
type BenchIncrArm struct {
	Program        string  `json:"program"`
	Workload       string  `json:"workload"`
	BaseRows       int     `json:"base_rows"`
	DeltaRows      int     `json:"delta_rows_per_update"`
	Updates        int     `json:"updates"`
	ScratchNs      []int64 `json:"scratch_trial_ns"`
	MinScratchNs   int64   `json:"min_scratch_ns"`
	UpdateNs       []int64 `json:"insert_update_ns"`
	MedianUpdateNs int64   `json:"median_insert_update_ns"`
	DeleteNs       []int64 `json:"mixed_update_ns"`
	Speedup        float64 `json:"speedup"`
	OutputTuples   int     `json:"output_tuples"`
	Inserted       int     `json:"inserted"`
	Deleted        int     `json:"deleted"`
	OverDeleted    int     `json:"overdeleted"`
	Rescued        int     `json:"rescued"`
}

// BenchIncrReport is the machine-readable output of the incremental
// maintenance smoke (BENCH_PR10.json): for tc, sg and cspa, how much faster
// ApplyDelta maintains the fixpoint under small mixed insert/delete batches
// than rerunning from scratch. Every arm's final resident state is verified
// against a from-scratch evaluation of the mutated EDBs before the numbers
// are reported, so the speedup never prices a wrong answer.
type BenchIncrReport struct {
	Workers    int            `json:"workers"`
	Quick      bool           `json:"quick"`
	Arms       []BenchIncrArm `json:"arms"`
	MinSpeedup float64        `json:"min_speedup"`
}

// incrWorkload pairs a Workload with which EDB the update stream mutates.
type incrWorkload struct {
	w      Workload
	mutate string
}

func benchIncrWorkloads(cfg Config) []incrWorkload {
	if cfg.Quick {
		return []incrWorkload{
			{TCWorkload(GnpSpec{Label: "G400", N: 400, P: 0.012}), "arc"},
			{SGWorkload(GnpSpec{Label: "G250", N: 250, P: 0.016}), "arc"},
			{Workload{
				Name:    "CSPA(synth-150)",
				Program: "cspa",
				EDBs:    pa.CSPASized(pa.CSPAConfig{Vars: 150, AssignPer: 13, DerefRatio: 3, Seed: 13}),
				Output:  "valueFlow",
			}, "assign"},
		}
	}
	return []incrWorkload{
		{TCWorkload(GnpSpec{Label: "G1K", N: 1000, P: 0.01}), "arc"},
		{SGWorkload(GnpSpec{Label: "G500", N: 500, P: 0.012}), "arc"},
		{Workload{
			Name:    "CSPA(synth-300)",
			Program: "cspa",
			EDBs:    pa.CSPASized(pa.CSPAConfig{Vars: 300, AssignPer: 13, DerefRatio: 3, Seed: 13}),
			Output:  "valueFlow",
		}, "assign"},
	}
}

// BenchIncr measures incremental fixpoint maintenance against from-scratch
// re-evaluation: each workload runs the baseline fixpoint a few times, then
// keeps a resident database and applies a stream of insertion batches sized
// at ~0.1% of the mutated EDB via ApplyDelta (the gated speedup), followed
// by mixed insert+delete batches exercising the DRed path. The resident
// state after both streams is checked against a from-scratch run over the
// mutated EDBs.
func BenchIncr(cfg Config) (BenchIncrReport, error) {
	trials, updates := 3, 6
	if cfg.Quick {
		trials, updates = 2, 4
	}
	rep := BenchIncrReport{Workers: cfg.workers(), Quick: cfg.Quick}

	for _, iw := range benchIncrWorkloads(cfg) {
		arm, err := benchIncrArm(cfg, iw, trials, updates)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", iw.w.Name, err)
		}
		rep.Arms = append(rep.Arms, arm)
	}
	rep.MinSpeedup = rep.Arms[0].Speedup
	for _, a := range rep.Arms[1:] {
		if a.Speedup < rep.MinSpeedup {
			rep.MinSpeedup = a.Speedup
		}
	}
	return rep, nil
}

func benchIncrArm(cfg Config, iw incrWorkload, trials, updates int) (BenchIncrArm, error) {
	prog, err := programs.Get(iw.w.Program)
	if err != nil {
		return BenchIncrArm{}, err
	}
	opts := core.DefaultOptions()
	opts.Workers = cfg.workers()

	base, ok := iw.w.EDBs[iw.mutate]
	if !ok {
		return BenchIncrArm{}, fmt.Errorf("workload has no EDB %q", iw.mutate)
	}
	arm := BenchIncrArm{
		Program:   iw.w.Program,
		Workload:  iw.w.Name,
		BaseRows:  base.NumTuples(),
		DeltaRows: max(1, base.NumTuples()/1000),
		Updates:   updates,
	}

	// Mirror of the mutated EDB (set semantics) plus the value domain the
	// fresh insertions draw from.
	mirror := make(map[string][]int32, base.NumTuples())
	var domain int32
	base.ForEach(func(tu []int32) {
		row := append([]int32(nil), tu...)
		mirror[fmt.Sprint(row)] = row
		for _, v := range row {
			if v > domain {
				domain = v
			}
		}
	})
	domain += 2
	arity := base.Arity()

	// Baseline: from-scratch fixpoint over the unmodified EDBs. Run reads
	// the inputs without consuming them, so the same map serves every trial
	// (one untimed warm-up first).
	for i := 0; i <= trials; i++ {
		res, err := core.New(opts).Run(prog, iw.w.EDBs)
		if err != nil {
			return arm, err
		}
		if i > 0 {
			arm.ScratchNs = append(arm.ScratchNs, res.Stats.Duration.Nanoseconds())
		}
		arm.OutputTuples = res.Relations[iw.w.Output].NumTuples()
	}

	// Resident database over a private copy of the EDBs: ApplyDelta mutates
	// the resident relations, so the pristine originals stay usable for the
	// final verification run.
	d, err := core.New(opts).RunIncremental(context.Background(), prog, copyEDBs(iw.w.EDBs))
	if err != nil {
		return arm, err
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(0x10C4))
	freshRows := func(n int) [][]int32 {
		out := make([][]int32, 0, n)
		for len(out) < n {
			row := make([]int32, arity)
			for i := range row {
				row[i] = rng.Int31n(domain)
			}
			if _, dup := mirror[fmt.Sprint(row)]; !dup {
				out = append(out, row)
			}
		}
		return out
	}
	apply := func(ins, del [][]int32) (core.UpdateStats, error) {
		us, err := d.ApplyDelta(iw.mutate, ins, del)
		if err != nil {
			return us, err
		}
		arm.Inserted += us.Inserted
		arm.Deleted += us.Deleted
		arm.OverDeleted += us.OverDeleted
		arm.Rescued += us.Rescued
		for _, row := range del {
			delete(mirror, fmt.Sprint(row))
		}
		for _, row := range ins {
			mirror[fmt.Sprint(row)] = row
		}
		return us, nil
	}

	// Measured stream: insertion-only ∆s through the seeded DeltaStep.
	for u := 0; u < updates; u++ {
		us, err := apply(freshRows(arm.DeltaRows), nil)
		if err != nil {
			return arm, fmt.Errorf("insert update %d: %w", u+1, err)
		}
		arm.UpdateNs = append(arm.UpdateNs, us.Duration.Nanoseconds())
	}
	// Coverage stream: mixed batches through DRed + rescue (reported, not
	// gated — a deletion inside a cyclic closure is recompute-bound).
	for u := 0; u < 2; u++ {
		us, err := apply(freshRows(arm.DeltaRows), sampleRows(mirror, arm.DeltaRows, rng))
		if err != nil {
			return arm, fmt.Errorf("mixed update %d: %w", u+1, err)
		}
		arm.DeleteNs = append(arm.DeleteNs, us.Duration.Nanoseconds())
	}

	// Verify: a from-scratch run over the mutated EDBs must agree with the
	// resident headline IDB before the speedup is worth reporting.
	finalEDBs := copyEDBs(iw.w.EDBs)
	mutated := storage.NewRelation(iw.mutate, storage.NumberedColumns(arity))
	for _, row := range mirror {
		mutated.Append(row)
	}
	finalEDBs[iw.mutate] = mutated
	res, err := core.New(opts).Run(prog, finalEDBs)
	if err != nil {
		return arm, err
	}
	want := res.Relations[iw.w.Output].SortedRows()
	got, ok := d.Relation(iw.w.Output)
	if !ok {
		return arm, fmt.Errorf("resident database lost IDB %q", iw.w.Output)
	}
	if !reflect.DeepEqual(got.SortedRows(), want) {
		return arm, fmt.Errorf("resident %s diverged from the from-scratch evaluation after %d updates", iw.w.Output, updates)
	}

	sort.Slice(arm.ScratchNs, func(i, j int) bool { return arm.ScratchNs[i] < arm.ScratchNs[j] })
	arm.MinScratchNs = arm.ScratchNs[0]
	sorted := append([]int64(nil), arm.UpdateNs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	arm.MedianUpdateNs = sorted[len(sorted)/2]
	arm.Speedup = float64(arm.MinScratchNs) / float64(arm.MedianUpdateNs)
	return arm, nil
}

func copyEDBs(edbs map[string]*storage.Relation) map[string]*storage.Relation {
	out := make(map[string]*storage.Relation, len(edbs))
	for name, r := range edbs {
		c := storage.NewRelation(name, storage.NumberedColumns(r.Arity()))
		r.ForEach(func(tu []int32) { c.Append(append([]int32(nil), tu...)) })
		out[name] = c
	}
	return out
}

// sampleRows picks n distinct present rows from the mirror, iterating keys in
// sorted order so the choice is deterministic for a fixed rng.
func sampleRows(mirror map[string][]int32, n int, rng *rand.Rand) [][]int32 {
	keys := make([]string, 0, len(mirror))
	for k := range mirror {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if n > len(keys) {
		n = len(keys)
	}
	out := make([][]int32, 0, n)
	for _, k := range keys[:n] {
		out = append(out, append([]int32(nil), mirror[k]...))
	}
	return out
}

// WriteBenchIncrReport renders the report as indented JSON at path.
func WriteBenchIncrReport(path string, rep BenchIncrReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchIncrTable renders the report as a printable table (the benchrunner's
// human-readable echo of BENCH_PR10.json).
func BenchIncrTable(rep BenchIncrReport) Table {
	tbl := Table{
		Title:  "Incremental maintenance — ApplyDelta vs from-scratch rerun",
		Header: []string{"workload", "base rows", "∆/update", "scratch ms", "insert ms", "speedup", "mixed ms", "overdeleted", "rescued"},
	}
	for _, a := range rep.Arms {
		var mixed int64
		for _, ns := range a.DeleteNs {
			mixed += ns
		}
		if len(a.DeleteNs) > 0 {
			mixed /= int64(len(a.DeleteNs))
		}
		tbl.Rows = append(tbl.Rows, []string{
			a.Workload,
			fmt.Sprintf("%d", a.BaseRows),
			fmt.Sprintf("%d", a.DeltaRows),
			fmt.Sprintf("%.1f", float64(a.MinScratchNs)/1e6),
			fmt.Sprintf("%.2f", float64(a.MedianUpdateNs)/1e6),
			fmt.Sprintf("%.0f×", a.Speedup),
			fmt.Sprintf("%.1f", float64(mixed)/1e6),
			fmt.Sprintf("%d", a.OverDeleted),
			fmt.Sprintf("%d", a.Rescued),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("speedup = min-of-%d from-scratch trials / median of %d insertion-only ApplyDelta batches (each ∆ ≈ 0.1%% of the mutated EDB)",
			len(rep.Arms[0].ScratchNs), rep.Arms[0].Updates),
		"mixed ms = mean of 2 insert+delete batches through DRed + rescue (reported, not gated: deleting inside a cyclic closure over-deletes its downward cone and is recompute-bound)",
		"every arm's resident state re-verified against a from-scratch evaluation of the mutated EDBs")
	return tbl
}
