package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// JoinOrderArm is one full-fixpoint run of a workload under a planner arm:
// greedy join ordering and/or the leapfrog WCOJ escape hatch on or off.
type JoinOrderArm struct {
	Name      string `json:"name"`
	Workload  string `json:"workload"`
	JoinOrder bool   `json:"join_order"`
	WCOJ      bool   `json:"wcoj"`
	Millis    int64  `json:"millis"`
	Tuples    int    `json:"tuples"`
	// PeakJoinRows is the largest non-final pairwise join intermediate the
	// run materialized (core.Stats.PeakJoinIntermediate) — the blow-up the
	// WCOJ path avoids building at all.
	PeakJoinRows int64 `json:"peak_join_intermediate_rows"`
	// ArmsSkipped counts UNION ALL arms dropped before planning because
	// their seeding ∆ was empty.
	ArmsSkipped int64    `json:"arms_skipped"`
	WCOJRules   []string `json:"wcoj_rules,omitempty"`
	Speedup     string   `json:"speedup_vs_ablation,omitempty"`
}

// BenchJoinOrderReport is the machine-readable output of the PR 7 bench
// smoke (BENCH_PR7.json): end-to-end points-to runs with the greedy
// join-ordering pass on versus the textual-FROM-order ablation, and cyclic
// (triangle / 4-clique) runs with the leapfrog WCOJ on versus the pairwise
// hash-join chain, including each arm's peak materialized join intermediate.
type BenchJoinOrderReport struct {
	Workers int `json:"workers"`
	// Ordering holds the join-ordering arms (wide acyclic bodies); per
	// workload the ordered arm is followed by the textual ablation.
	Ordering         []JoinOrderArm `json:"join_ordering"`
	OrderingSpeedups []string       `json:"join_ordering_speedups"`
	// Cyclic holds the WCOJ arms (cyclic bodies); per workload the leapfrog
	// arm is followed by the pairwise ablation.
	Cyclic []JoinOrderArm `json:"wcoj_cyclic"`
	// PeakRatios is, per cyclic workload, the pairwise arm's peak join
	// intermediate over the leapfrog arm's (leapfrog materializes none, so
	// a zero peak is reported against 1 row).
	PeakRatios []string `json:"wcoj_peak_intermediate_ratios"`
}

// joinOrderRun is one timed fixpoint with full stats, best of two rounds,
// each behind a GC fence (see benchBatchArm for why the fence matters on a
// small box).
func joinOrderRun(name string, w Workload, workers int, joinOrder, wcoj bool) JoinOrderArm {
	prog, err := programs.Get(w.Program)
	if err != nil {
		panic(err)
	}
	arm := JoinOrderArm{Name: name, Workload: w.Name, JoinOrder: joinOrder, WCOJ: wcoj}
	for round := 0; round < 2; round++ {
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.JoinOrder = joinOrder
		opts.WCOJ = wcoj
		runtime.GC()
		t0 := time.Now()
		res, err := core.New(opts).Run(prog, w.EDBs)
		ms := time.Since(t0).Milliseconds()
		if err != nil {
			panic(fmt.Sprintf("benchjoinorder %s: %v", name, err))
		}
		if round == 0 || ms < arm.Millis {
			arm.Millis = ms
			arm.Tuples = res.Relations[w.Output].NumTuples()
			arm.PeakJoinRows = res.Stats.PeakJoinIntermediate
			arm.ArmsSkipped = res.Stats.ArmsSkipped
			arm.WCOJRules = res.Stats.WCOJRules
		}
	}
	return arm
}

// joinOrderWorkloads builds the wide-body point-to workloads: CSPA,
// Andersen, and the aawide variant whose rules deliberately lead with the
// big recursive atoms (the shape the ordering pass exists to fix).
func joinOrderWorkloads(cfg Config) []Workload {
	cspaVars, aaVars := 700, 500
	if cfg.Quick {
		cspaVars, aaVars = 250, 160
	}
	cspa := pa.CSPASized(pa.CSPAConfig{Vars: cspaVars, AssignPer: 13, DerefRatio: 3, Seed: 13})
	aa := pa.AndersenSized(aaVars, 3)
	return []Workload{
		{Name: fmt.Sprintf("CSPA(%dv)", cspaVars), Program: "cspa", EDBs: cspa, Output: "valueFlow"},
		{Name: fmt.Sprintf("AA(%dv)", aaVars), Program: "aa", EDBs: aa, Output: "pointsTo"},
		{Name: fmt.Sprintf("AAWide(%dv)", aaVars), Program: "aawide", EDBs: aa, Output: "pointsTo"},
	}
}

// wcojWorkloads builds the cyclic-body workloads over symmetric Gn-p graphs
// (both arc directions present, so every undirected triangle/clique appears
// in its canonical orientation).
func wcojWorkloads(cfg Config) []Workload {
	triN, triP := 900, 0.02
	clqN, clqP := 220, 0.12
	if cfg.Quick {
		triN, triP = 220, 0.05
		clqN, clqP = 90, 0.18
	}
	tri := graphs.Undirected(graphs.GnP(triN, triP, 11))
	clq := graphs.Undirected(graphs.GnP(clqN, clqP, 11))
	return []Workload{
		{Name: fmt.Sprintf("TRI(G%d-%g)", triN, triP), Program: "tri",
			EDBs: map[string]*storage.Relation{"arc": tri}, Output: "tri", Vertices: triN, Edges: tri.NumTuples()},
		{Name: fmt.Sprintf("CLIQUE4(G%d-%g)", clqN, clqP), Program: "clique4",
			EDBs: map[string]*storage.Relation{"arc": clq}, Output: "clique4", Vertices: clqN, Edges: clq.NumTuples()},
	}
}

// BenchJoinOrder measures the PR 7 planner work end to end: the greedy
// join-ordering pass against the textual-order ablation on wide points-to
// programs, and the leapfrog WCOJ against the pairwise chain on cyclic
// triangle/clique programs, with peak-intermediate readings for both.
func BenchJoinOrder(cfg Config) BenchJoinOrderReport {
	workers := cfg.workers()
	rep := BenchJoinOrderReport{Workers: workers}

	for _, w := range joinOrderWorkloads(cfg) {
		on := joinOrderRun(w.Program+"/join-order", w, workers, true, true)
		off := joinOrderRun(w.Program+"/textual", w, workers, false, true)
		if on.Millis > 0 {
			on.Speedup = fmt.Sprintf("%.2fx", float64(off.Millis)/float64(on.Millis))
		}
		rep.Ordering = append(rep.Ordering, on, off)
		rep.OrderingSpeedups = append(rep.OrderingSpeedups,
			fmt.Sprintf("%s: %s", w.Program, on.Speedup))
	}

	for _, w := range wcojWorkloads(cfg) {
		on := joinOrderRun(w.Program+"/wcoj", w, workers, true, true)
		off := joinOrderRun(w.Program+"/pairwise", w, workers, true, false)
		if on.Millis > 0 {
			on.Speedup = fmt.Sprintf("%.2fx", float64(off.Millis)/float64(on.Millis))
		}
		rep.Cyclic = append(rep.Cyclic, on, off)
		onPeak := on.PeakJoinRows
		if onPeak < 1 {
			onPeak = 1
		}
		rep.PeakRatios = append(rep.PeakRatios,
			fmt.Sprintf("%s: %.1fx (pairwise peak %d rows vs wcoj %d)",
				w.Program, float64(off.PeakJoinRows)/float64(onPeak), off.PeakJoinRows, on.PeakJoinRows))
	}
	return rep
}

// WriteBenchJoinOrderReport renders the report as indented JSON at path.
func WriteBenchJoinOrderReport(path string, rep BenchJoinOrderReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchJoinOrderTable renders the report as a printable table (the
// benchrunner's human-readable echo of BENCH_PR7.json).
func BenchJoinOrderTable(rep BenchJoinOrderReport) Table {
	tbl := Table{
		Title:  "Greedy join ordering & leapfrog WCOJ vs textual/pairwise ablations",
		Header: []string{"arm", "workload", "time", "tuples", "peak join rows", "arms skipped", "speedup"},
	}
	row := func(a JoinOrderArm) {
		tbl.Rows = append(tbl.Rows, []string{
			a.Name, a.Workload, fmt.Sprintf("%d ms", a.Millis), fmt.Sprintf("%d", a.Tuples),
			fmt.Sprintf("%d", a.PeakJoinRows), fmt.Sprintf("%d", a.ArmsSkipped), a.Speedup,
		})
	}
	for _, a := range rep.Ordering {
		row(a)
	}
	for _, a := range rep.Cyclic {
		row(a)
	}
	tbl.Notes = append(tbl.Notes,
		"join-order arms re-seed every join chain from the most selective literal each iteration; textual arms are the -join-order=false FROM-order ablation",
		"wcoj arms run cyclic bodies through the leapfrog multi-way intersection (no pairwise intermediates); pairwise arms are the -wcoj=false ablation",
		"ordering speedups: "+fmt.Sprint(rep.OrderingSpeedups),
		"peak intermediate ratios: "+fmt.Sprint(rep.PeakRatios))
	return tbl
}
