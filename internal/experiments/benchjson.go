package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"recstep/internal/baselines/native"
	"recstep/internal/graphs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/storage"
)

// BenchArm is one measured configuration of a PR 4 microbenchmark: a
// (fan-out, carried-vs-rescatter) pair with its timing, allocation and
// copy-accounting readings.
type BenchArm struct {
	Name        string `json:"name"`
	Parts       int    `json:"parts"`
	Carried     bool   `json:"carried"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// BuildsInPlace / BuildScatters are per-op hash-build counts served
	// from carried partitions versus paid as a scatter pass.
	BuildsInPlace int64 `json:"builds_in_place_per_op"`
	BuildScatters int64 `json:"build_scatters_per_op"`
	// TuplesScattered is the per-op scatter copy volume.
	TuplesScattered int64 `json:"tuples_scattered_per_op"`
}

// BenchReport is the machine-readable output of the PR 4 bench smoke:
// join-build and delta-step cost with join-key partitionings carried versus
// re-scattered every operation, at fan-outs 16 and 64.
type BenchReport struct {
	Workload  string     `json:"workload"`
	Workers   int        `json:"workers"`
	JoinBuild []BenchArm `json:"join_build"`
	DeltaStep []BenchArm `json:"delta_step"`
}

// benchArm runs fn under testing.Benchmark and folds the copy-counter
// deltas fn accumulated over its *timed* sections into per-op readings —
// untimed per-op setup (building the carried state) stays out of both the
// clock and the counters. fn must reset acc at its start: testing.Benchmark
// reruns it with growing b.N, and only the final run's accumulation pairs
// with the reported N.
func benchArm(name string, parts int, carried bool, fn func(b *testing.B, acc *exec.CopySnapshot)) BenchArm {
	var acc exec.CopySnapshot
	r := testing.Benchmark(func(b *testing.B) { fn(b, &acc) })
	n := int64(r.N)
	if n == 0 {
		n = 1
	}
	return BenchArm{
		Name:            name,
		Parts:           parts,
		Carried:         carried,
		NsPerOp:         r.NsPerOp(),
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
		BuildsInPlace:   acc.BuildScattersAvoided / n,
		BuildScatters:   acc.BuildScatters / n,
		TuplesScattered: acc.Scattered / n,
	}
}

// addTimed accumulates the counter movement of one timed section.
func addTimed(acc *exec.CopySnapshot, pre, post exec.CopySnapshot) {
	d := post.Sub(pre)
	acc.Scattered += d.Scattered
	acc.Adopted += d.Adopted
	acc.FlatMats += d.FlatMats
	acc.BuildScatters += d.BuildScatters
	acc.BuildScattersAvoided += d.BuildScattersAvoided
}

// BenchPR4 measures the join-key-carried partitioning win in isolation. The
// workload is the TC delta-cancellation shape: the build side is a
// transitive closure indexed on one key column. The carried arm hands the
// build a relation that already carries the join-key partitioning (the
// state ∆R is in when it exits the fused delta step); the re-scatter arm
// wraps the input freshly every op so every build pays the scatter — the
// -carry-join-parts=false regime.
func BenchPR4(cfg Config) BenchReport {
	n := 700
	if cfg.Quick {
		n = 300
	}
	arc := graphs.GnP(n, 0.02, 5)
	tc := native.TC(arc, 0)
	workers := cfg.workers()
	pool := exec.NewPool(workers)
	mem := memory.NewManager(memory.Config{})
	pool.SetAlloc(mem)

	rep := BenchReport{
		Workload: fmt.Sprintf("tc(gnp-%d-0.02), %d tuples", n, tc.NumTuples()),
		Workers:  workers,
	}
	// Join-build arms use the delta-cancellation shape (build indexed on
	// both columns, at most one match per probe) so hash construction —
	// the phase carrying saves — dominates the measurement rather than
	// probe output volume.
	buildKeys := []int{0, 1}
	spec := exec.JoinSpec{
		LeftKeys:  buildKeys,
		RightKeys: buildKeys,
		BuildLeft: false,
		Projs:     []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName:   "out",
	}

	for _, parts := range []int{16, 64} {
		for _, carried := range []bool{true, false} {
			s := spec
			s.Partitions = parts
			name := fmt.Sprintf("join-build/parts-%d/", parts)
			if carried {
				name += "carried"
			} else {
				name += "rescatter"
			}
			rep.JoinBuild = append(rep.JoinBuild, benchArm(name, parts, carried, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					build := storage.NewRelation("tc", tc.ColNames())
					build.SetLifecycle(mem, storage.CatIDB)
					build.AppendRelation(tc)
					if carried {
						// The state ∆R is in when carried: partitions
						// already scattered on the join keys.
						exec.PartitionRelationCarried(pool, build, buildKeys, parts)
					}
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					out := exec.HashJoin(pool, tc, build, s)
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					out.Release()
					build.Release()
				}
			}))
		}
	}

	// Delta-step arms carry a single-column join keyset — the shape the
	// engine chooses for TC, where the next iteration's build keys on ∆R's
	// second column.
	deltaKeys := []int{1}
	tmpBase := storage.NewRelation("tmp", storage.NumberedColumns(2))
	tmpBase.AppendRelation(tc)
	tmpBase.AppendRelation(tc)
	for _, parts := range []int{16, 64} {
		for _, carried := range []bool{true, false} {
			part := storage.Partitioning{KeyCols: deltaKeys, Parts: parts}
			name := fmt.Sprintf("delta-step/parts-%d/", parts)
			if carried {
				name += "carried"
			} else {
				name += "rescatter"
			}
			rep.DeltaStep = append(rep.DeltaStep, benchArm(name, parts, carried, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tmp := storage.NewRelation("tmp", storage.NumberedColumns(2))
					tmp.SetLifecycle(mem, storage.CatIntermediate)
					tmp.AppendRelation(tmpBase)
					full := storage.NewRelation("r", storage.NumberedColumns(2))
					full.SetLifecycle(mem, storage.CatIDB)
					full.AppendRelation(arc)
					if carried {
						// Fused-scatter state: both inputs arrive carrying
						// the join-key partitioning.
						exec.PartitionRelationCarried(pool, tmp, deltaKeys, parts)
						exec.PartitionRelationCarried(pool, full, deltaKeys, parts)
					}
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					delta := exec.DeltaStep(pool, tmp, full, exec.OPSD, part, tc.NumTuples(), "delta")
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					delta.Release()
					tmp.Release()
					full.Release()
				}
			}))
		}
	}
	return rep
}

// WriteBenchPR4 renders the report as indented JSON at path.
func WriteBenchPR4(path string, rep BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchPR4Table renders the report as a printable table (the benchrunner's
// human-readable echo of BENCH_PR4.json).
func BenchPR4Table(rep BenchReport) Table {
	tbl := Table{
		Title:  "Join-key-carried partitionings — " + rep.Workload,
		Header: []string{"benchmark", "ns/op", "allocs/op", "tuples scattered/op", "builds in place/op"},
	}
	for _, arm := range append(append([]BenchArm{}, rep.JoinBuild...), rep.DeltaStep...) {
		tbl.Rows = append(tbl.Rows, []string{
			arm.Name,
			fmt.Sprintf("%d", arm.NsPerOp),
			fmt.Sprintf("%d", arm.AllocsPerOp),
			fmt.Sprintf("%d", arm.TuplesScattered),
			fmt.Sprintf("%d", arm.BuildsInPlace),
		})
	}
	tbl.Notes = append(tbl.Notes, "carried arms hand the operator inputs that already carry the join-key partitioning; rescatter arms pay the per-op scatter (the -carry-join-parts=false regime)")
	return tbl
}
