package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"recstep/internal/baselines/native"
	"recstep/internal/graphs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/storage"
)

// BenchArm is one measured configuration of a carry microbenchmark: a
// (fan-out, carried-vs-rescatter) pair with its timing, allocation and
// copy-accounting readings.
type BenchArm struct {
	Name        string `json:"name"`
	Parts       int    `json:"parts"`
	Carried     bool   `json:"carried"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// BuildsInPlace / BuildScatters are per-op hash-build counts served
	// from carried partitions versus paid as a scatter pass.
	BuildsInPlace int64 `json:"builds_in_place_per_op"`
	BuildScatters int64 `json:"build_scatters_per_op"`
	// TuplesScattered is the per-op scatter copy volume;
	// SecondaryScattered is the subset copied into secondary carried views
	// (the dual-route delta step's extra copy).
	TuplesScattered    int64 `json:"tuples_scattered_per_op"`
	SecondaryScattered int64 `json:"secondary_scattered_per_op"`
}

// BenchReport is the machine-readable output of the bench smoke
// (BENCH_PR5.json): join-build and delta-step cost with join-key
// partitionings carried versus re-scattered every operation, plus the
// secondary-carry arms — a build keyed on the *conflicting* keyset served
// from the secondary carried view versus paying a scatter, and the
// dual-route delta step versus the single-route one — at fan-outs 16 and 64.
type BenchReport struct {
	Workload       string     `json:"workload"`
	Workers        int        `json:"workers"`
	JoinBuild      []BenchArm `json:"join_build"`
	DeltaStep      []BenchArm `json:"delta_step"`
	SecondaryBuild []BenchArm `json:"secondary_build"`
	DeltaStepDual  []BenchArm `json:"delta_step_dual"`
}

// benchArm runs fn under testing.Benchmark and folds the copy-counter
// deltas fn accumulated over its *timed* sections into per-op readings —
// untimed per-op setup (building the carried state) stays out of both the
// clock and the counters. fn must reset acc at its start: testing.Benchmark
// reruns it with growing b.N, and only the final run's accumulation pairs
// with the reported N.
func benchArm(name string, parts int, carried bool, fn func(b *testing.B, acc *exec.CopySnapshot)) BenchArm {
	var acc exec.CopySnapshot
	r := testing.Benchmark(func(b *testing.B) { fn(b, &acc) })
	n := int64(r.N)
	if n == 0 {
		n = 1
	}
	return BenchArm{
		Name:               name,
		Parts:              parts,
		Carried:            carried,
		NsPerOp:            r.NsPerOp(),
		AllocsPerOp:        r.AllocsPerOp(),
		BytesPerOp:         r.AllocedBytesPerOp(),
		BuildsInPlace:      acc.BuildScattersAvoided / n,
		BuildScatters:      acc.BuildScatters / n,
		TuplesScattered:    acc.Scattered / n,
		SecondaryScattered: acc.SecondaryScattered / n,
	}
}

// addTimed accumulates the counter movement of one timed section.
func addTimed(acc *exec.CopySnapshot, pre, post exec.CopySnapshot) {
	d := post.Sub(pre)
	acc.Scattered += d.Scattered
	acc.Adopted += d.Adopted
	acc.FlatMats += d.FlatMats
	acc.BuildScatters += d.BuildScatters
	acc.BuildScattersAvoided += d.BuildScattersAvoided
	acc.SecondaryScattered += d.SecondaryScattered
}

// BenchCarry measures the join-key-carried partitioning win in isolation. The
// workload is the TC delta-cancellation shape: the build side is a
// transitive closure indexed on one key column. The carried arm hands the
// build a relation that already carries the join-key partitioning (the
// state ∆R is in when it exits the fused delta step); the re-scatter arm
// wraps the input freshly every op so every build pays the scatter — the
// -carry-join-parts=false regime.
func BenchCarry(cfg Config) BenchReport {
	n := 700
	if cfg.Quick {
		n = 300
	}
	arc := graphs.GnP(n, 0.02, 5)
	tc := native.TC(arc, 0)
	workers := cfg.workers()
	pool := exec.NewPool(workers)
	mem := memory.NewManager(memory.Config{})
	pool.SetAlloc(mem)

	rep := BenchReport{
		Workload: fmt.Sprintf("tc(gnp-%d-0.02), %d tuples", n, tc.NumTuples()),
		Workers:  workers,
	}
	// Join-build arms use the delta-cancellation shape (build indexed on
	// both columns, at most one match per probe) so hash construction —
	// the phase carrying saves — dominates the measurement rather than
	// probe output volume.
	buildKeys := []int{0, 1}
	spec := exec.JoinSpec{
		LeftKeys:  buildKeys,
		RightKeys: buildKeys,
		BuildLeft: false,
		Projs:     []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName:   "out",
	}

	for _, parts := range []int{16, 64} {
		for _, carried := range []bool{true, false} {
			s := spec
			s.Partitions = parts
			name := fmt.Sprintf("join-build/parts-%d/", parts)
			if carried {
				name += "carried"
			} else {
				name += "rescatter"
			}
			rep.JoinBuild = append(rep.JoinBuild, benchArm(name, parts, carried, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					build := storage.NewRelation("tc", tc.ColNames())
					build.SetLifecycle(mem, storage.CatIDB)
					build.AppendRelation(tc)
					if carried {
						// The state ∆R is in when carried: partitions
						// already scattered on the join keys.
						exec.PartitionRelationCarried(pool, build, buildKeys, parts)
					}
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					out := exec.HashJoin(pool, tc, build, s)
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					out.Release()
					build.Release()
				}
			}))
		}
	}

	// Delta-step arms carry a single-column join keyset — the shape the
	// engine chooses for TC, where the next iteration's build keys on ∆R's
	// second column.
	deltaKeys := []int{1}
	tmpBase := storage.NewRelation("tmp", storage.NumberedColumns(2))
	tmpBase.AppendRelation(tc)
	tmpBase.AppendRelation(tc)
	for _, parts := range []int{16, 64} {
		for _, carried := range []bool{true, false} {
			part := storage.Partitioning{KeyCols: deltaKeys, Parts: parts}
			name := fmt.Sprintf("delta-step/parts-%d/", parts)
			if carried {
				name += "carried"
			} else {
				name += "rescatter"
			}
			rep.DeltaStep = append(rep.DeltaStep, benchArm(name, parts, carried, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tmp := storage.NewRelation("tmp", storage.NumberedColumns(2))
					tmp.SetLifecycle(mem, storage.CatIntermediate)
					tmp.AppendRelation(tmpBase)
					full := storage.NewRelation("r", storage.NumberedColumns(2))
					full.SetLifecycle(mem, storage.CatIDB)
					full.AppendRelation(arc)
					if carried {
						// Fused-scatter state: both inputs arrive carrying
						// the join-key partitioning.
						exec.PartitionRelationCarried(pool, tmp, deltaKeys, parts)
						exec.PartitionRelationCarried(pool, full, deltaKeys, parts)
					}
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					delta := exec.DeltaStep(pool, tmp, full, exec.OPSD, part, tc.NumTuples(), "delta")
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					delta.Release()
					tmp.Release()
					full.Release()
				}
			}))
		}
	}

	// Secondary-build arms: the CSPA valueFlow shape — the build relation
	// carries its primary partitioning on column 0, but this join builds on
	// column 1 (the conflicting keyset). With secondary carrying the build
	// is served in place from the secondary view; the fallback arm pays the
	// scatter every op (the -secondary-carry=false regime).
	primKeys := []int{0}
	confKeys := []int{1}
	// arc probes (small side) so hash construction over the carried build —
	// the phase secondary carrying saves — dominates the measurement.
	secSpec := exec.JoinSpec{
		LeftKeys:  primKeys,
		RightKeys: confKeys,
		BuildLeft: false,
		Projs:     []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName:   "out",
	}
	for _, parts := range []int{16, 64} {
		for _, carried := range []bool{true, false} {
			s := secSpec
			s.Partitions = parts
			name := fmt.Sprintf("secondary-build/parts-%d/", parts)
			if carried {
				name += "carried"
			} else {
				name += "fallback"
			}
			rep.SecondaryBuild = append(rep.SecondaryBuild, benchArm(name, parts, carried, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					build := storage.NewRelation("vf", tc.ColNames())
					build.SetLifecycle(mem, storage.CatIDB)
					build.AppendRelation(tc)
					exec.PartitionRelationCarried(pool, build, primKeys, parts)
					if carried {
						exec.EnsureSecondaryCarry(pool, build, confKeys, parts)
					}
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					out := exec.HashJoin(pool, arc, build, s)
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					out.Release()
					build.Release()
				}
			}))
		}
	}

	// Dual-route delta-step arms price the maintenance half: the same fused
	// pass, with and without the extra secondary scatter copy of the
	// accepted delta.
	for _, parts := range []int{16, 64} {
		for _, dual := range []bool{true, false} {
			part := storage.Partitioning{KeyCols: deltaKeys, Parts: parts}
			sec := storage.Partitioning{KeyCols: []int{0}, Parts: parts}
			name := fmt.Sprintf("delta-step-dual/parts-%d/", parts)
			if dual {
				name += "dual"
			} else {
				name += "single"
			}
			rep.DeltaStepDual = append(rep.DeltaStepDual, benchArm(name, parts, dual, func(b *testing.B, acc *exec.CopySnapshot) {
				b.ReportAllocs()
				*acc = exec.CopySnapshot{}
				b.StopTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tmp := storage.NewRelation("tmp", storage.NumberedColumns(2))
					tmp.SetLifecycle(mem, storage.CatIntermediate)
					tmp.AppendRelation(tmpBase)
					full := storage.NewRelation("r", storage.NumberedColumns(2))
					full.SetLifecycle(mem, storage.CatIDB)
					full.AppendRelation(arc)
					exec.PartitionRelationCarried(pool, tmp, deltaKeys, parts)
					exec.PartitionRelationCarried(pool, full, deltaKeys, parts)
					pre := pool.Copy.Snapshot()
					b.StartTimer()
					var delta *storage.Relation
					if dual {
						delta = exec.DeltaStepDual(pool, tmp, full, exec.OPSD, part, sec, tc.NumTuples(), "delta")
					} else {
						delta = exec.DeltaStep(pool, tmp, full, exec.OPSD, part, tc.NumTuples(), "delta")
					}
					b.StopTimer()
					addTimed(acc, pre, pool.Copy.Snapshot())
					delta.Release()
					tmp.Release()
					full.Release()
				}
			}))
		}
	}
	return rep
}

// WriteBenchReport renders the report as indented JSON at path.
func WriteBenchReport(path string, rep BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchCarryTable renders the report as a printable table (the
// benchrunner's human-readable echo of BENCH_PR5.json).
func BenchCarryTable(rep BenchReport) Table {
	tbl := Table{
		Title:  "Carried partitionings (primary + secondary) — " + rep.Workload,
		Header: []string{"benchmark", "ns/op", "allocs/op", "tuples scattered/op", "sec scattered/op", "builds in place/op"},
	}
	arms := append(append([]BenchArm{}, rep.JoinBuild...), rep.DeltaStep...)
	arms = append(append(arms, rep.SecondaryBuild...), rep.DeltaStepDual...)
	for _, arm := range arms {
		tbl.Rows = append(tbl.Rows, []string{
			arm.Name,
			fmt.Sprintf("%d", arm.NsPerOp),
			fmt.Sprintf("%d", arm.AllocsPerOp),
			fmt.Sprintf("%d", arm.TuplesScattered),
			fmt.Sprintf("%d", arm.SecondaryScattered),
			fmt.Sprintf("%d", arm.BuildsInPlace),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"carried arms hand the operator inputs that already carry the join-key partitioning; rescatter arms pay the per-op scatter (the -carry-join-parts=false regime)",
		"secondary-build arms build on the keyset that *conflicts* with the carried primary: the carried arm is served by the secondary view, the fallback arm re-scatters (-secondary-carry=false)",
		"delta-step-dual arms price the dual route itself: the extra secondary scatter copy per delta step")
	return tbl
}
