package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"recstep/internal/core"
	"recstep/internal/obs"
	"recstep/internal/programs"
)

// BenchObsArm is one measured observability configuration of the TC
// fixpoint: per-trial wall times plus their min and median. Min is the
// noise-robust estimator the overhead assertion uses — every run pays the
// full instrumented work, so the fastest trial is the one with the least
// scheduler interference.
type BenchObsArm struct {
	Name     string  `json:"name"`
	TrialNs  []int64 `json:"trial_ns"`
	MinNs    int64   `json:"min_ns"`
	MedianNs int64   `json:"median_ns"`
	Tuples   int     `json:"tuples"`
}

// BenchObsReport is the machine-readable output of the observability
// overhead smoke (BENCH_PR8.json): the same TC fixpoint run with the
// metrics registry + phase timers attached versus the zero-instrumentation
// ablation (core.Options.DisableObs), with the overhead the instruments
// cost. PhaseMs echoes one instrumented run's phase attribution so the
// report doubles as a sanity check that the timers actually collected.
type BenchObsReport struct {
	Workload string      `json:"workload"`
	Workers  int         `json:"workers"`
	Trials   int         `json:"trials"`
	On       BenchObsArm `json:"obs_on"`
	Off      BenchObsArm `json:"obs_off"`
	// OverheadPct is (min(on) - min(off)) / min(off) × 100 — negative when
	// noise makes the instrumented arm faster.
	OverheadPct float64 `json:"overhead_pct"`
	// MedianOverheadPct is the same ratio on medians, for reference.
	MedianOverheadPct float64            `json:"median_overhead_pct"`
	PhaseMs           map[string]float64 `json:"phase_ms"`
	// MetricLines counts the samples the registry exported after the last
	// instrumented run (a scrape's series count).
	MetricLines int `json:"metric_lines"`
}

// BenchObs measures what always-on observability costs: the TC fixpoint with
// the registry, phase timers and histograms attached (the engine default)
// against DisableObs, interleaving trials so clock drift and cache state hit
// both arms alike. The tracer stays off in both arms — it is opt-in
// (-trace) and buffers events, so it is priced separately, not here.
func BenchObs(cfg Config) (BenchObsReport, error) {
	spec := GnpSpec{Label: "G1K", N: 1000, P: 0.01}
	trials := 5
	if cfg.Quick {
		spec = GnpSpec{Label: "G300", N: 300, P: 0.02}
		trials = 3
	}
	w := TCWorkload(spec)
	prog, err := programs.Get(w.Program)
	if err != nil {
		return BenchObsReport{}, err
	}

	base := core.DefaultOptions()
	base.Workers = cfg.workers()

	rep := BenchObsReport{
		Workload: fmt.Sprintf("%s, %d edges", w.Name, w.Edges),
		Workers:  cfg.workers(),
		Trials:   trials,
		On:       BenchObsArm{Name: "obs-on"},
		Off:      BenchObsArm{Name: "obs-off"},
	}

	runArm := func(arm *BenchObsArm, disable bool) error {
		opts := base
		opts.DisableObs = disable
		var ob *obs.Observer
		if !disable {
			// A fresh Observer per trial, like cmd/recstep's per-process one;
			// registration cost is part of what the arm prices.
			ob = obs.New()
			opts.Obs = ob
		}
		start := time.Now()
		res, err := core.New(opts).Run(prog, w.EDBs)
		d := time.Since(start)
		if err != nil {
			return err
		}
		arm.TrialNs = append(arm.TrialNs, d.Nanoseconds())
		arm.Tuples = res.Relations[w.Output].NumTuples()
		if !disable {
			rep.PhaseMs = make(map[string]float64)
			for name, pd := range res.Stats.PhaseDurations {
				rep.PhaseMs[name] = float64(pd) / float64(time.Millisecond)
			}
			rep.MetricLines = len(ob.Reg.Snapshot())
		}
		return nil
	}

	// Warm-up pass per arm (untimed), then interleaved timed trials.
	if err := runArm(&BenchObsArm{}, false); err != nil {
		return rep, err
	}
	if err := runArm(&BenchObsArm{}, true); err != nil {
		return rep, err
	}
	for i := 0; i < trials; i++ {
		if err := runArm(&rep.On, false); err != nil {
			return rep, err
		}
		if err := runArm(&rep.Off, true); err != nil {
			return rep, err
		}
	}
	finish := func(arm *BenchObsArm) {
		sorted := append([]int64{}, arm.TrialNs...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		arm.MinNs = sorted[0]
		arm.MedianNs = sorted[len(sorted)/2]
	}
	finish(&rep.On)
	finish(&rep.Off)
	rep.OverheadPct = 100 * (float64(rep.On.MinNs) - float64(rep.Off.MinNs)) / float64(rep.Off.MinNs)
	rep.MedianOverheadPct = 100 * (float64(rep.On.MedianNs) - float64(rep.Off.MedianNs)) / float64(rep.Off.MedianNs)
	if rep.On.Tuples != rep.Off.Tuples {
		return rep, fmt.Errorf("benchobs: arms disagree on |TC|: %d vs %d", rep.On.Tuples, rep.Off.Tuples)
	}
	return rep, nil
}

// WriteBenchObsReport renders the report as indented JSON at path.
func WriteBenchObsReport(path string, rep BenchObsReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchObsTable renders the report as a printable table (the benchrunner's
// human-readable echo of BENCH_PR8.json).
func BenchObsTable(rep BenchObsReport) Table {
	tbl := Table{
		Title:  "Observability overhead — " + rep.Workload,
		Header: []string{"arm", "min ms", "median ms", "tuples"},
	}
	for _, arm := range []BenchObsArm{rep.On, rep.Off} {
		tbl.Rows = append(tbl.Rows, []string{
			arm.Name,
			fmt.Sprintf("%.1f", float64(arm.MinNs)/1e6),
			fmt.Sprintf("%.1f", float64(arm.MedianNs)/1e6),
			fmt.Sprintf("%d", arm.Tuples),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("overhead: %+.2f%% on min-of-%d, %+.2f%% on medians (registry + phase timers + histograms; tracer off in both arms)",
			rep.OverheadPct, rep.Trials, rep.MedianOverheadPct),
		fmt.Sprintf("registry exported %d metric families after the instrumented run", rep.MetricLines))
	return tbl
}
