// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6). Each figure function returns a printable Table
// whose rows mirror the series the paper plots; cmd/benchrunner prints them
// and bench_test.go wraps them as testing.B benchmarks. Datasets are the
// scaled families described in DESIGN.md (substitution 3); engine names map
// to the comparator substitutes of DESIGN.md (substitution 2).
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"recstep/internal/baselines/bdd"
	"recstep/internal/baselines/native"
	"recstep/internal/baselines/worklist"
	"recstep/internal/bitmatrix"
	"recstep/internal/core"
	"recstep/internal/metrics"
	"recstep/internal/obs"
	"recstep/internal/programs"
	"recstep/internal/quickstep"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/storage"
)

// Engine identifies one evaluated system (or system stand-in).
type Engine string

// The engines compared throughout Section 6. Native stands in for Soufflé,
// Worklist for Graspan, Naive for a no-semi-naive strawman; RecStepNoPBME
// is RecStep with the bit-matrix fast path disabled (Figure 6).
const (
	RecStep       Engine = "recstep"
	RecStepNoPBME Engine = "recstep-nopbme"
	Naive         Engine = "naive"
	Native        Engine = "native(souffle-like)"
	Worklist      Engine = "worklist(graspan-like)"
	BDDB          Engine = "bdd(bddbddb-like)"
)

// AllEngines lists the comparison set in display order.
func AllEngines() []Engine {
	return []Engine{RecStep, Native, Naive, Worklist, BDDB}
}

// ErrUnsupported marks engine × workload combinations the corresponding
// real system cannot express (e.g. Soufflé lacks recursive aggregation, so
// CC/SSSP have no Soufflé bar in Figures 12–13).
var ErrUnsupported = errors.New("workload unsupported by engine")

// ErrOOM marks runs whose estimated footprint exceeds the configured memory
// budget — the scaled-down stand-in for the paper's out-of-memory failures.
var ErrOOM = errors.New("out of memory (budget)")

// ErrTimeout marks runs the corresponding real system could not finish in
// the paper's 10h limit (bddbddb on graphs beyond its variable-ordering
// sweet spot); we cut them off by domain size rather than wall clock.
var ErrTimeout = errors.New("timeout (domain too large)")

// bddDomainCap is the largest active domain the BDD engine attempts for TC;
// beyond it the real bddbddb ran out of time on every such graph.
const bddDomainCap = 700

// Config scales the experiment suite.
type Config struct {
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// MemBudgetBytes is the simulated memory capacity; hash-based engines
	// whose estimated output exceeds it report ErrOOM, as the real systems
	// did at 160 GB. 0 selects 1 GiB.
	MemBudgetBytes int64
	// Quick shrinks every dataset (used by unit tests and -short benches).
	Quick bool
	// Partitions fixes the radix partition count for hash builds (0 = let
	// the optimizer pick from cardinality, 1 = off).
	Partitions int
	// BuildSerial forces the serial shared-table join build (the
	// partitioning ablation).
	BuildSerial bool
	// StagedDelta disables the fused partition-native delta pipeline and
	// runs the staged dedup + set-difference sequence instead (the
	// -fuse-delta=false ablation; zero value keeps fusion on).
	StagedDelta bool
	// NoCarryJoinParts disables join-key-carried partitionings: every
	// partitioned hash build re-scatters its input instead of reusing the
	// partitions ∆R/R already carry (the -carry-join-parts=false ablation;
	// zero value keeps carrying on).
	NoCarryJoinParts bool
	// NoSecondaryCarry disables secondary carried views: predicates whose
	// recursive joins use conflicting keysets fall back to whole-tuple
	// partitioning and the losing keyset's builds re-scatter (the
	// -secondary-carry=false ablation; zero value keeps secondary carrying
	// on).
	NoSecondaryCarry bool
	// NoJoinOrder disables the connectivity-driven greedy join-ordering
	// pass: UNION ALL arms join in textual FROM order regardless of
	// cardinalities (the -join-order=false ablation; zero value keeps
	// ordering on).
	NoJoinOrder bool
	// NoWCOJ disables the leapfrog worst-case-optimal join escape hatch:
	// cyclic bodies run the pairwise hash-join pipeline (the -wcoj=false
	// ablation; zero value keeps the escape hatch on).
	NoWCOJ bool
	// NoColumnar disables the batch-at-a-time kernel paths: the fixpoint
	// inner loops run tuple-at-a-time over the row-major layout, with no
	// batched GSCHT inserts/probes, no selection vectors, no bulk block
	// emission and no per-worker pool magazines (the -columnar=false
	// ablation; zero value keeps batch kernels on).
	NoColumnar bool
	// ManagedBudgetBytes bounds the engine's live block-pool bytes (the
	// -mem-budget flag): exceeding it spills cold partitions of full
	// relations. Distinct from MemBudgetBytes, which models the *simulated*
	// capacity at which the paper's comparison systems OOM.
	ManagedBudgetBytes int64
	// Obs, when set, attaches this Observer to every engine run the
	// experiments make; successive runs re-bind the registry's series, so a
	// benchrunner -metrics-addr listener always shows the run in flight.
	Obs *obs.Observer
	// NoObs disables metrics and phase-timer collection in the engine (the
	// -obs=false ablation; zero value keeps observability on — the engine
	// then makes a private Observer per run). The benchobs experiment
	// measures the difference.
	NoObs bool
	// CPUProfile and MemProfile name files to receive pprof profiles of the
	// run (the -cpuprofile/-memprofile flags); empty disables profiling.
	CPUProfile string
	MemProfile string
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) budget() int64 {
	if c.MemBudgetBytes <= 0 {
		return 1 << 30
	}
	return c.MemBudgetBytes
}

// Workload is one program × dataset instance.
type Workload struct {
	Name     string
	Program  string // key into programs.ByName
	EDBs     map[string]*storage.Relation
	Output   string // headline IDB
	Vertices int    // active-domain size (PBME and OOM estimation); 0 if n/a
	Edges    int    // arc count (OOM estimation); 0 if n/a
}

// Result is one engine × workload measurement.
type Result struct {
	Engine   Engine
	Workload string
	Time     time.Duration
	Tuples   int
	PeakHeap uint64
	AvgCPU   float64
	Err      error
}

// Cell renders the result the way the paper's figures annotate bars.
func (r Result) Cell() string {
	switch {
	case errors.Is(r.Err, ErrUnsupported):
		return "n/a"
	case errors.Is(r.Err, ErrOOM):
		return "OOM"
	case errors.Is(r.Err, ErrTimeout):
		return "timeout"
	case r.Err != nil:
		return "error"
	}
	return fmtDuration(r.Time)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Run evaluates one workload on one engine.
func Run(engine Engine, w Workload, cfg Config) Result {
	res := Result{Engine: engine, Workload: w.Name}
	if err := checkSupported(engine, w); err != nil {
		res.Err = err
		return res
	}
	if err := checkBudget(engine, w, cfg); err != nil {
		res.Err = err
		return res
	}
	start := time.Now()
	out, err := evaluate(engine, w, cfg)
	res.Time = time.Since(start)
	if err != nil {
		res.Err = err
		return res
	}
	res.Tuples = out.NumTuples()
	return res
}

// RunSampled is Run plus memory/CPU sampling for the figures that plot
// resource series.
func RunSampled(engine Engine, w Workload, cfg Config) Result {
	res := Result{Engine: engine, Workload: w.Name}
	if err := checkSupported(engine, w); err != nil {
		res.Err = err
		return res
	}
	if err := checkBudget(engine, w, cfg); err != nil {
		res.Err = err
		return res
	}
	sampler := metrics.NewSampler(2*time.Millisecond, nil)
	runtime.GC() // stable baseline before sampling
	sampler.Start()
	start := time.Now()
	out, err := evaluateWithSampler(engine, w, cfg, sampler)
	res.Time = time.Since(start)
	samples := sampler.Stop()
	res.PeakHeap = metrics.PeakHeap(samples)
	res.AvgCPU = metrics.AvgCPUUtil(samples)
	if err != nil {
		res.Err = err
		return res
	}
	res.Tuples = out.NumTuples()
	return res
}

func checkSupported(engine Engine, w Workload) error {
	switch engine {
	case Native:
		// Soufflé does not support recursive aggregation (Table 1), so CC
		// and SSSP are excluded, mirroring the missing bars.
		if w.Program == "cc" || w.Program == "sssp" {
			return ErrUnsupported
		}
	case Worklist:
		// Graspan handles binary-relation grammars only.
		switch w.Program {
		case "tc", "csda", "cspa":
		default:
			return ErrUnsupported
		}
	case BDDB:
		// The BDD engine covers TC and Andersen (bddbddb's home turf); the
		// graph-analytics workloads have vertex counts "too large" for it,
		// mirroring the paper's exclusion of bddbddb from Figures 12–13.
		switch w.Program {
		case "tc", "aa":
		default:
			return ErrUnsupported
		}
		if w.Vertices == 0 {
			return ErrUnsupported
		}
		if w.Program == "tc" && w.Vertices > bddDomainCap {
			return ErrTimeout
		}
	}
	return nil
}

// checkBudget estimates whether a hash-based evaluation of a dense closure
// fits the simulated memory capacity. Only TC and SG have quadratic output.
func checkBudget(engine Engine, w Workload, cfg Config) error {
	if w.Vertices == 0 {
		return nil
	}
	switch w.Program {
	case "tc", "sg":
	default:
		return nil
	}
	if engine == RecStep && pbmeApplies(w, cfg) {
		// The bit matrix needs only n²/8 bytes.
		if !bitmatrix.FitsMemory(w.Vertices, cfg.budget()) {
			return ErrOOM
		}
		return nil
	}
	// Tuple engines hold ~n² closure pairs plus, per iteration, a raw
	// derivation bag with its dedup structures — the blow-up PBME avoids.
	// TC derives up to |∆|·deg tuples per iteration; SG joins arc twice,
	// so its bag reaches |∆|·deg² ("much more memory demanding and
	// computationally expensive", Section 6.3).
	deg := int64(1)
	if w.Vertices > 0 && w.Edges > 0 {
		deg = int64(w.Edges) / int64(w.Vertices)
		if deg < 1 {
			deg = 1
		}
	}
	n2 := int64(w.Vertices) * int64(w.Vertices)
	var est int64
	if w.Program == "sg" {
		est = 8 * n2 * (2 + deg*deg)
	} else {
		est = 8 * n2 * (2 + 4*deg)
	}
	if est > cfg.budget() {
		return ErrOOM
	}
	return nil
}

func pbmeApplies(w Workload, cfg Config) bool {
	return (w.Program == "tc" || w.Program == "sg") && w.Vertices > 0 &&
		bitmatrix.FitsMemory(w.Vertices, cfg.budget())
}

func evaluate(engine Engine, w Workload, cfg Config) (*storage.Relation, error) {
	return evaluateWithSampler(engine, w, cfg, nil)
}

func evaluateWithSampler(engine Engine, w Workload, cfg Config, sampler *metrics.Sampler) (*storage.Relation, error) {
	workers := cfg.workers()
	switch engine {
	case RecStep, RecStepNoPBME:
		if engine == RecStep && pbmeApplies(w, cfg) {
			return runPBME(w, workers)
		}
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Partitions = cfg.Partitions
		opts.BuildSerial = cfg.BuildSerial
		opts.FuseDelta = !cfg.StagedDelta
		opts.CarryJoinParts = !cfg.NoCarryJoinParts
		opts.SecondaryCarry = !cfg.NoSecondaryCarry
		opts.Columnar = !cfg.NoColumnar
		opts.JoinOrder = !cfg.NoJoinOrder
		opts.WCOJ = !cfg.NoWCOJ
		opts.MemBudgetBytes = cfg.ManagedBudgetBytes
		opts.Obs = cfg.Obs
		opts.DisableObs = cfg.NoObs
		if sampler != nil {
			opts.OnDB = func(db *quickstep.Database) { sampler.AttachPool(db.Pool()) }
		}
		return runCore(opts, w)
	case Naive:
		opts := core.DefaultOptions()
		opts.Workers = workers
		opts.Partitions = cfg.Partitions
		opts.BuildSerial = cfg.BuildSerial
		opts.FuseDelta = !cfg.StagedDelta
		opts.CarryJoinParts = !cfg.NoCarryJoinParts
		opts.SecondaryCarry = !cfg.NoSecondaryCarry
		opts.Columnar = !cfg.NoColumnar
		opts.JoinOrder = !cfg.NoJoinOrder
		opts.WCOJ = !cfg.NoWCOJ
		opts.MemBudgetBytes = cfg.ManagedBudgetBytes
		opts.Obs = cfg.Obs
		opts.DisableObs = cfg.NoObs
		opts.Naive = true
		if sampler != nil {
			opts.OnDB = func(db *quickstep.Database) { sampler.AttachPool(db.Pool()) }
		}
		return runCore(opts, w)
	case Native:
		return runNative(w, workers)
	case Worklist:
		return runWorklist(w)
	case BDDB:
		if w.Program == "tc" {
			return bdd.TC(w.EDBs["arc"], w.Vertices)
		}
		return bdd.Andersen(w.EDBs, w.Vertices)
	}
	return nil, fmt.Errorf("experiments: unknown engine %q", engine)
}

func runPBME(w Workload, workers int) (*storage.Relation, error) {
	m, err := bitmatrix.FromEdges(w.EDBs["arc"], w.Vertices)
	if err != nil {
		return nil, err
	}
	if w.Program == "tc" {
		return bitmatrix.TransitiveClosure(m, workers).ToRelation("tc"), nil
	}
	sg := bitmatrix.SameGeneration(m, bitmatrix.SGOptions{Threads: workers})
	return sg.ToRelation("sg"), nil
}

func runCore(opts core.Options, w Workload) (*storage.Relation, error) {
	prog, err := programs.Get(w.Program)
	if err != nil {
		return nil, err
	}
	res, err := core.New(opts).Run(prog, w.EDBs)
	if err != nil {
		return nil, err
	}
	return res.Relations[w.Output], nil
}

func runNative(w Workload, workers int) (*storage.Relation, error) {
	switch w.Program {
	case "tc":
		return native.TC(w.EDBs["arc"], workers), nil
	case "sg":
		return native.SG(w.EDBs["arc"], workers), nil
	case "reach":
		return native.Reach(w.EDBs["arc"], sourceOf(w), workers), nil
	case "aa":
		return native.Andersen(w.EDBs, workers), nil
	case "cspa":
		return native.CSPA(w.EDBs, workers).ValueFlow, nil
	case "csda":
		return native.CSDA(w.EDBs, workers), nil
	}
	return nil, ErrUnsupported
}

func runWorklist(w Workload) (*storage.Relation, error) {
	switch w.Program {
	case "tc":
		return worklist.TC(w.EDBs["arc"]), nil
	case "csda":
		return worklist.CSDA(w.EDBs), nil
	case "cspa":
		vf, _, _ := worklist.CSPA(w.EDBs)
		return vf, nil
	}
	return nil, ErrUnsupported
}

func sourceOf(w Workload) int32 {
	var src int32
	w.EDBs["id"].ForEach(func(t []int32) { src = t[0] })
	return src
}

// DedupOf exposes the dedup strategies for the Figure 2 ablation labels.
var DedupOf = map[string]exec.DedupStrategy{
	"gscht":   exec.DedupGSCHT,
	"lockmap": exec.DedupLockMap,
	"sort":    exec.DedupSort,
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}
