package experiments

import (
	"errors"
	"strings"
	"testing"
)

var quick = Config{Workers: 2, Quick: true}

func TestRunAllEnginesOnTC(t *testing.T) {
	w := TCWorkload(GnpSpec{Label: "G100", N: 100, P: 0.05})
	for _, e := range AllEngines() {
		r := Run(e, w, quick)
		if r.Err != nil {
			t.Fatalf("%s: %v", e, r.Err)
		}
		if r.Tuples == 0 || r.Time <= 0 {
			t.Fatalf("%s: empty result %+v", e, r)
		}
	}
}

func TestEnginesAgreeOnTuples(t *testing.T) {
	w := TCWorkload(GnpSpec{Label: "G80", N: 80, P: 0.05})
	var counts []int
	for _, e := range AllEngines() {
		r := Run(e, w, quick)
		if r.Err != nil {
			t.Fatalf("%s: %v", e, r.Err)
		}
		counts = append(counts, r.Tuples)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("tuple counts disagree: %v", counts)
		}
	}
}

func TestUnsupportedCombos(t *testing.T) {
	cc := RMATWorkload("cc", 1<<10)
	if r := Run(Native, cc, quick); !errors.Is(r.Err, ErrUnsupported) {
		t.Fatalf("native cc should be unsupported, got %+v", r)
	}
	if r := Run(Worklist, cc, quick); !errors.Is(r.Err, ErrUnsupported) {
		t.Fatalf("worklist cc should be unsupported, got %+v", r)
	}
	aa := AndersenWorkload(1, quick)
	if r := Run(Worklist, aa, quick); !errors.Is(r.Err, ErrUnsupported) {
		t.Fatalf("worklist aa should be unsupported, got %+v", r)
	}
}

func TestOOMBudget(t *testing.T) {
	cfg := quick
	cfg.MemBudgetBytes = 1 << 16 // 64 KiB: nothing quadratic fits
	w := TCWorkload(GnpSpec{Label: "G300", N: 300, P: 0.05})
	if r := Run(Naive, w, cfg); !errors.Is(r.Err, ErrOOM) {
		t.Fatalf("naive under tiny budget should OOM, got %+v", r)
	}
	// PBME fits comfortably where tuple engines do not.
	cfg.MemBudgetBytes = 1 << 20
	if r := Run(RecStep, w, cfg); r.Err != nil {
		t.Fatalf("PBME should fit 1MiB for n=300: %+v", r)
	}
	if r := Run(Native, w, cfg); !errors.Is(r.Err, ErrOOM) {
		t.Fatalf("native should exceed 1MiB budget, got %+v", r)
	}
}

func TestRunSampledCollectsMetrics(t *testing.T) {
	w := CSPAWorkload("httpd", quick)
	r := RunSampled(RecStep, w, quick)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.PeakHeap == 0 {
		t.Fatal("no memory sampled")
	}
}

func TestFig4SQLForms(t *testing.T) {
	unified, individual, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unified, "UNION ALL") {
		t.Fatalf("unified form missing UNION ALL: %s", unified)
	}
	if !strings.Contains(individual, "pointsTo_mtmp_0") {
		t.Fatalf("individual form missing part tables: %s", individual)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	s := tbl.String()
	for _, want := range []string{"T\n", "xxx", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if len(Table1().Rows) != 9 {
		t.Fatal("Table 1 should have 9 aspects")
	}
	if len(Table3().Rows) != 8 {
		t.Fatal("Table 3 should have 8 programs")
	}
}

func TestQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figures are slow")
	}
	figs := map[string]func(Config) Table{
		"fig2": Fig2, "fig6": Fig6, "fig7": Fig7, "fig9": Fig9,
		"fig11": Fig11, "fig15": Fig15, "fig16": Fig16,
	}
	for name, fn := range figs {
		tbl := fn(quick)
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}

func TestAblationConfigsCount(t *testing.T) {
	cfgs := AblationConfigs(2)
	if len(cfgs) != 8 {
		t.Fatalf("ablation configs = %d, want 8 (Figure 2 bars)", len(cfgs))
	}
	if cfgs[0].Name != "RecStep" || cfgs[len(cfgs)-1].Name != "NO-OP" {
		t.Fatal("ablation order must start at RecStep and end at NO-OP")
	}
}

func TestBenchObsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchobs runs several fixpoints")
	}
	rep, err := BenchObs(quick)
	if err != nil {
		t.Fatal(err)
	}
	if rep.On.Tuples == 0 || rep.On.Tuples != rep.Off.Tuples {
		t.Fatalf("arms disagree or empty: %+v vs %+v", rep.On, rep.Off)
	}
	if len(rep.On.TrialNs) != rep.Trials || len(rep.Off.TrialNs) != rep.Trials {
		t.Fatalf("trial counts: %d/%d, want %d", len(rep.On.TrialNs), len(rep.Off.TrialNs), rep.Trials)
	}
	if len(rep.PhaseMs) == 0 {
		t.Error("instrumented arm collected no phase durations")
	}
	if rep.MetricLines == 0 {
		t.Error("registry exported no metrics")
	}
	tbl := BenchObsTable(rep)
	if !strings.Contains(tbl.String(), "obs-on") {
		t.Errorf("table rendering missing arms:\n%s", tbl.String())
	}
}
