package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"recstep/internal/bitmatrix"
	"recstep/internal/core"
	"recstep/internal/datalog/analysis"
	"recstep/internal/datalog/querygen"
	"recstep/internal/metrics"
	"recstep/internal/programs"
	"recstep/internal/quickstep"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/stats"
)

// AblationConfigs returns the Figure 2/3 configurations in the paper's
// order: full RecStep, each optimization disabled in turn, and everything
// off (RecStep-NO-OP).
func AblationConfigs(workers int) []struct {
	Name string
	Opts core.Options
} {
	mk := func(mut func(*core.Options)) core.Options {
		o := core.DefaultOptions()
		o.Workers = workers
		if mut != nil {
			mut(&o)
		}
		return o
	}
	return []struct {
		Name string
		Opts core.Options
	}{
		{"RecStep", mk(nil)},
		{"UIE-off", mk(func(o *core.Options) { o.UIE = false })},
		{"DSD-off", mk(func(o *core.Options) { o.DSD = core.DSDAlwaysOPSD })},
		{"OOF-FA", mk(func(o *core.Options) { o.OOF = stats.ModeFull })},
		{"EOST-off", mk(func(o *core.Options) { o.EOST = false; o.DisableIO = false })},
		// FAST-DEDUP off also turns the fused delta pipeline off (explicitly
		// here, and enforced by the engine): the fused pass *embeds* the
		// CCK-GSCHT dedup, so "the engine without its fast dedup" loses both
		// the structure and the fusion built on it — the bar measures that
		// combined regression, as the real system would experience it.
		{"FASTDEDUP-off", mk(func(o *core.Options) { o.Dedup = exec.DedupLockMap; o.FuseDelta = false })},
		{"OOF-NA", mk(func(o *core.Options) { o.OOF = stats.ModeNone })},
		{"NO-OP", mk(func(o *core.Options) {
			o.UIE = false
			o.DSD = core.DSDAlwaysOPSD
			o.OOF = stats.ModeNone
			o.EOST = false
			o.DisableIO = false
			o.Dedup = exec.DedupLockMap
			o.FuseDelta = false
		})},
	}
}

// runAblation evaluates one workload under explicit engine options,
// sampling memory.
func runAblation(opts core.Options, w Workload) (time.Duration, uint64, error) {
	if !opts.DisableIO && opts.SpillDir == "" {
		dir, err := os.MkdirTemp("", "recstep-ablate-*")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		opts.SpillDir = dir
	}
	sampler := metrics.NewSampler(2*time.Millisecond, nil)
	opts.OnDB = func(db *quickstep.Database) { sampler.AttachPool(db.Pool()) }
	runtime.GC()
	sampler.Start()
	start := time.Now()
	_, err := runCore(opts, w)
	elapsed := time.Since(start)
	samples := sampler.Stop()
	return elapsed, metrics.PeakHeap(samples), err
}

// Fig2 reproduces the optimization-ablation runtime chart: CSPA on the
// httpd-like dataset, total runtime of each configuration as a percentage
// of RecStep-NO-OP.
func Fig2(cfg Config) Table {
	w := CSPAWorkload("httpd", cfg)
	configs := AblationConfigs(cfg.workers())
	times := make([]time.Duration, len(configs))
	for i, c := range configs {
		t, _, err := runAblation(c.Opts, w)
		if err != nil {
			times[i] = -1
			continue
		}
		times[i] = t
	}
	noop := times[len(times)-1]
	tbl := Table{
		Title:  "Figure 2 — optimization ablation, " + w.Name + " (runtime, % of NO-OP)",
		Header: []string{"config", "time", "% of NO-OP"},
	}
	for i, c := range configs {
		pct := "-"
		if times[i] > 0 && noop > 0 {
			pct = fmt.Sprintf("%.0f%%", 100*float64(times[i])/float64(noop))
		}
		tbl.Rows = append(tbl.Rows, []string{c.Name, fmtDuration(times[i]), pct})
	}
	tbl.Notes = append(tbl.Notes, "paper: RecStep ≈ 24%, OOF-NA ≈ 63%, NO-OP = 100%")
	return tbl
}

// Fig3 reproduces the ablation memory chart: peak heap per configuration.
func Fig3(cfg Config) Table {
	w := CSPAWorkload("httpd", cfg)
	tbl := Table{
		Title:  "Figure 3 — optimization ablation, " + w.Name + " (peak heap)",
		Header: []string{"config", "peak heap (MiB)"},
	}
	for _, c := range AblationConfigs(cfg.workers()) {
		_, peak, err := runAblation(c.Opts, w)
		cell := fmt.Sprintf("%.1f", float64(peak)/(1<<20))
		if err != nil {
			cell = "error"
		}
		tbl.Rows = append(tbl.Rows, []string{c.Name, cell})
	}
	return tbl
}

// Fig4 returns the generated SQL for Andersen's analysis in both unified
// (UIE) and individual form — the side-by-side of Figure 4.
func Fig4() (unified, individual string, err error) {
	prog := programs.MustParse(programs.Andersen)
	res, err := analysis.Analyze(prog)
	if err != nil {
		return "", "", err
	}
	gen := querygen.New(res)
	s := res.Strata[res.Preds["pointsTo"].Stratum]
	qs, err := gen.StratumQueries(s)
	if err != nil {
		return "", "", err
	}
	for _, q := range qs {
		if q.Pred != "pointsTo" {
			continue
		}
		unified = q.Rec.Unified
		var parts string
		for _, p := range q.Rec.Parts {
			parts += p + ";\n"
		}
		parts += q.Rec.Merge + ";"
		return unified + ";", parts, nil
	}
	return "", "", fmt.Errorf("experiments: pointsTo queries not found")
}

// Fig6 reproduces the PBME memory-saving comparison: TC and SG across the
// Gn-p family with and without the bit matrix.
func Fig6(cfg Config) Table {
	tbl := Table{
		Title:  "Figure 6 — PBME memory saving (peak heap, completion)",
		Header: []string{"workload", "PBME", "NON-PBME"},
	}
	specs := GnpFamily(cfg)
	if !cfg.Quick && len(specs) > 5 {
		specs = specs[:5] // up to G2K: non-PBME beyond is OOM by budget anyway
	}
	cell := func(r Result) string {
		if r.Err != nil {
			return r.Cell()
		}
		return fmt.Sprintf("%.1f MiB / %s", float64(r.PeakHeap)/(1<<20), fmtDuration(r.Time))
	}
	for _, program := range []string{"tc", "sg"} {
		for _, spec := range specs {
			var w Workload
			if program == "tc" {
				w = TCWorkload(spec)
			} else {
				w = SGWorkload(spec)
			}
			with := RunSampled(RecStep, w, cfg)
			without := RunSampled(RecStepNoPBME, w, cfg)
			tbl.Rows = append(tbl.Rows, []string{w.Name, cell(with), cell(without)})
		}
	}
	tbl.Notes = append(tbl.Notes, "paper: NON-PBME fails (OOM) on G20K for TC and G10K for SG")
	return tbl
}

// skewedArc builds a graph where a few hub parents have very large child
// sets — the skew regime Figure 7's coordination targets.
func skewedArc(n, hubs, hubDeg, rest int, seed int64) *bitmatrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bitmatrix.New(n)
	for h := 0; h < hubs; h++ {
		for i := 0; i < hubDeg; i++ {
			m.Set(h, rng.Intn(n))
		}
	}
	for i := 0; i < rest; i++ {
		m.Set(hubs+rng.Intn(n-hubs), rng.Intn(n))
	}
	return m
}

// Fig7 compares SG-PBME with and without work-order coordination on a
// skewed graph.
func Fig7(cfg Config) Table {
	n := 1200
	if cfg.Quick {
		n = 300
	}
	arc := skewedArc(n, 4, n/2, n, 7)
	tbl := Table{
		Title:  "Figure 7 — SG-PBME coordination vs no coordination (skewed graph)",
		Header: []string{"variant", "time", "sg tuples"},
	}
	for _, coord := range []bool{false, true} {
		name := "PBME-NO-COORD"
		if coord {
			name = "PBME-COORD"
		}
		start := time.Now()
		sg := bitmatrix.SameGeneration(arc, bitmatrix.SGOptions{
			Threads: cfg.workers(), Coordinate: coord, Threshold: 2048,
		})
		tbl.Rows = append(tbl.Rows, []string{name, fmtDuration(time.Since(start)), fmt.Sprint(sg.Count())})
	}
	tbl.Notes = append(tbl.Notes,
		"paper: coordination reaches ~100% CPU and finishes earlier; equal memory",
		fmt.Sprintf("run with %d workers on GOMAXPROCS=%d", cfg.workers(), runtime.GOMAXPROCS(0)))
	return tbl
}

// Fig8 reproduces the core-scaling speedup curves: CSPA(httpd) and
// CC(livejournal) runtime across thread counts, normalized to 1 thread.
func Fig8(cfg Config) Table {
	threads := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		threads = []int{1, 2, 4}
	}
	workloads := []Workload{
		CSPAWorkload("httpd", cfg),
		RealWorldWorkload("cc", "livejournal", cfg),
	}
	tbl := Table{
		Title:  "Figure 8 — speedup scaling with threads",
		Header: []string{"workload", "threads", "time", "speedup"},
	}
	for _, w := range workloads {
		var base time.Duration
		for _, th := range threads {
			c := cfg
			c.Workers = th
			r := Run(RecStep, w, c)
			if r.Err != nil {
				tbl.Rows = append(tbl.Rows, []string{w.Name, fmt.Sprint(th), r.Cell(), "-"})
				continue
			}
			if th == threads[0] {
				base = r.Time
			}
			tbl.Rows = append(tbl.Rows, []string{
				w.Name, fmt.Sprint(th), fmtDuration(r.Time),
				fmt.Sprintf("%.2fx", float64(base)/float64(r.Time)),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("GOMAXPROCS=%d: speedup flattens at the physical core count, as in the paper", runtime.GOMAXPROCS(0)))
	return tbl
}

// Fig9 reproduces data scaling: CC over the RMAT series and Andersen over
// datasets 1–7 (with the theoretical-linear column of Figure 9b).
func Fig9(cfg Config) Table {
	tbl := Table{
		Title:  "Figure 9 — scaling with data size (RecStep)",
		Header: []string{"workload", "input tuples", "time", "theoretical-linear"},
	}
	for _, n := range RMATSeries(cfg) {
		w := RMATWorkload("cc", n)
		r := Run(RecStep, w, cfg)
		tbl.Rows = append(tbl.Rows, []string{w.Name, fmt.Sprint(w.EDBs["arc"].NumTuples()), r.Cell(), "-"})
	}
	datasets := []int{1, 2, 3, 4, 5, 6, 7}
	if cfg.Quick {
		datasets = []int{1, 2, 3}
	}
	var baseTime time.Duration
	var baseSize int
	for _, d := range datasets {
		w := AndersenWorkload(d, cfg)
		size := w.EDBs["assign"].NumTuples()
		r := Run(RecStep, w, cfg)
		linear := "-"
		if d == datasets[0] && r.Err == nil {
			baseTime, baseSize = r.Time, size
		}
		if baseSize > 0 {
			linear = fmtDuration(time.Duration(float64(baseTime) * float64(size) / float64(baseSize)))
		}
		tbl.Rows = append(tbl.Rows, []string{w.Name, fmt.Sprint(size), r.Cell(), linear})
	}
	tbl.Notes = append(tbl.Notes, "paper: flat while cores are underutilized, then ∝ data size")
	return tbl
}

// comparisonTable runs a set of workloads across the comparison engines.
func comparisonTable(title string, workloads []Workload, cfg Config) Table {
	engines := AllEngines()
	tbl := Table{Title: title, Header: []string{"workload"}}
	for _, e := range engines {
		tbl.Header = append(tbl.Header, string(e))
	}
	for _, w := range workloads {
		row := []string{w.Name}
		for _, e := range engines {
			row = append(row, Run(e, w, cfg).Cell())
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig10 reproduces the TC and SG comparison across the Gn-p family.
func Fig10(cfg Config) Table {
	var ws []Workload
	for _, spec := range GnpFamily(cfg) {
		ws = append(ws, TCWorkload(spec))
	}
	for _, spec := range GnpFamily(cfg) {
		ws = append(ws, SGWorkload(spec))
	}
	t := comparisonTable("Figure 10 — TC and SG across engines (Gn-p family)", ws, cfg)
	t.Notes = append(t.Notes, "paper: RecStep (with PBME) is the only system completing every graph")
	return t
}

// Fig11 reproduces the TC/SG memory comparison on the small Gn-p graph.
func Fig11(cfg Config) Table {
	spec := GnpFamily(cfg)[1]
	tbl := Table{
		Title:  "Figure 11 — memory usage, TC and SG on " + spec.Label,
		Header: []string{"workload", "engine", "peak heap (MiB)", "time"},
	}
	for _, w := range []Workload{TCWorkload(spec), SGWorkload(spec)} {
		for _, e := range []Engine{RecStep, Native, Naive} {
			r := RunSampled(e, w, cfg)
			cell := fmt.Sprintf("%.1f", float64(r.PeakHeap)/(1<<20))
			if r.Err != nil {
				cell = r.Cell()
			}
			tbl.Rows = append(tbl.Rows, []string{w.Name, string(e), cell, r.Cell()})
		}
	}
	return tbl
}

// Fig12 reproduces REACH/CC/SSSP over the RMAT series.
func Fig12(cfg Config) Table {
	var ws []Workload
	for _, program := range []string{"reach", "cc", "sssp"} {
		for _, n := range RMATSeries(cfg) {
			ws = append(ws, RMATWorkload(program, n))
		}
	}
	t := comparisonTable("Figure 12 — REACH/CC/SSSP on RMAT graphs", ws, cfg)
	t.Notes = append(t.Notes, "n/a: Soufflé-like engine lacks recursive aggregation (CC, SSSP); worklist is binary-grammar only")
	return t
}

// Fig13 reproduces REACH/CC/SSSP over the real-world-like graphs.
func Fig13(cfg Config) Table {
	var ws []Workload
	names := []string{"livejournal", "orkut", "arabic", "twitter"}
	if cfg.Quick {
		names = names[:1]
	}
	for _, program := range []string{"reach", "cc", "sssp"} {
		for _, name := range names {
			ws = append(ws, RealWorldWorkload(program, name, cfg))
		}
	}
	return comparisonTable("Figure 13 — REACH/CC/SSSP on real-world-like graphs", ws, cfg)
}

// Fig14 reproduces the memory comparison on the livejournal-like graph.
func Fig14(cfg Config) Table {
	tbl := Table{
		Title:  "Figure 14 — memory on livejournal-like graph",
		Header: []string{"workload", "engine", "peak heap (MiB)", "time"},
	}
	for _, program := range []string{"reach", "cc", "sssp"} {
		w := RealWorldWorkload(program, "livejournal", cfg)
		for _, e := range []Engine{RecStep, Native, Naive} {
			r := RunSampled(e, w, cfg)
			cell := fmt.Sprintf("%.1f", float64(r.PeakHeap)/(1<<20))
			if r.Err != nil {
				cell = r.Cell()
			}
			tbl.Rows = append(tbl.Rows, []string{w.Name, string(e), cell, r.Cell()})
		}
	}
	return tbl
}

// Fig15 reproduces the program-analysis comparison: AA on datasets 1–7,
// CSDA and CSPA on the three system programs.
func Fig15(cfg Config) Table {
	var ws []Workload
	datasets := []int{1, 2, 3, 4, 5, 6, 7}
	systems := []string{"linux", "postgresql", "httpd"}
	if cfg.Quick {
		datasets = []int{1, 2}
		systems = []string{"httpd"}
	}
	for _, d := range datasets {
		ws = append(ws, AndersenWorkload(d, cfg))
	}
	for _, s := range systems {
		ws = append(ws, CSDAWorkload(s, cfg))
	}
	for _, s := range systems {
		ws = append(ws, CSPAWorkload(s, cfg))
	}
	t := comparisonTable("Figure 15 — program analyses across engines", ws, cfg)
	t.Notes = append(t.Notes,
		"paper: RecStep wins AA and CSPA(linux/postgresql); CSDA's many cheap iterations favour the native engine (per-query overhead)")
	return t
}

// Fig16 reproduces the CPU-utilization comparison on program analyses.
func Fig16(cfg Config) Table {
	tbl := Table{
		Title:  "Figure 16 — CPU utilization on program analyses",
		Header: []string{"workload", "engine", "avg CPU util", "time"},
	}
	ws := []Workload{AndersenWorkload(5, cfg), CSPAWorkload("linux", cfg), CSPAWorkload("httpd", cfg)}
	if cfg.Quick {
		ws = ws[:1]
	}
	for _, w := range ws {
		for _, e := range []Engine{RecStep, Naive} {
			r := RunSampled(e, w, cfg)
			tbl.Rows = append(tbl.Rows, []string{
				w.Name, string(e), fmt.Sprintf("%.0f%%", 100*r.AvgCPU), r.Cell(),
			})
		}
	}
	tbl.Notes = append(tbl.Notes, "native engine uses raw goroutines (no instrumented pool): utilization not sampled")
	return tbl
}

// copyWorkloads are the copy-accounting subjects: linear TC (single-keyset
// consensus — the PR 4 case), SG (same-generation; its delta enters every
// build on one keyset) and CSPA (valueFlow is joined on column 0 by some
// rules and column 1 by others — the conflicting-keyset case secondary
// carried views exist for).
func copyWorkloads(cfg Config) []Workload {
	spec := GnpSpec{Label: "G1K-0.05", N: 1000, P: 0.05}
	sgSpec := GnpSpec{Label: "G300-0.03", N: 300, P: 0.03}
	if cfg.Quick {
		spec = GnpSpec{Label: "G200", N: 200, P: 0.05}
		sgSpec = GnpSpec{Label: "G120-0.05", N: 120, P: 0.05}
	}
	quickCfg := cfg
	quickCfg.Quick = true // CSPA at synthetic scale either way; real inputs belong to fig15/16
	return []Workload{TCWorkload(spec), SGWorkload(sgSpec), CSPAWorkload("synthetic", quickCfg)}
}

// RecurringBuildScatters sums, per (relation, keyset) build shape, the
// scatters beyond the first — the first is the unavoidable one-time fill of
// a view cache or carried view; everything after it is a per-iteration cost
// the carried partitionings exist to eliminate. Only *carried-capable*
// relations count: the recursive predicates, their deltas and the EDBs.
// Builds over per-query join-prefix intermediates (tmp-table shapes,
// pre-filtered inputs — quickstep.FilteredSuffix names) are excluded — no
// carried partitioning could ever serve those, so they would drown the
// signal the counter exists to show: whether the carried relations stop
// paying per-iteration scatters. This is the acceptance metric of the
// copies experiment and the secondary-carry tests.
func RecurringBuildScatters(detail map[string]exec.BuildCount) int64 {
	var n int64
	for key, bc := range detail {
		if strings.Contains(key, querygen.TmpSuffix) || strings.Contains(key, quickstep.FilteredSuffix+"[") {
			continue
		}
		if bc.Scatters > 1 {
			n += bc.Scatters - 1
		}
	}
	return n
}

// CopyAccounting measures the data movement of the partition-native delta
// pipeline across TC, SG and CSPA: fused vs staged, join-key carrying on and
// off, and secondary carried views on and off, reporting runtime alongside
// the engine's copy counters. Under fusion the flat-materialization column
// is zero — tmp lands pre-partitioned and Rδ never exists; under carrying
// the carried relations' builds stop scattering; and under secondary
// carrying the *conflicting-keyset* predicate (CSPA's valueFlow) reaches
// zero steady-state build scatters on both keysets, paying one extra ∆R
// scatter copy per iteration (the "sec scattered" column) for it.
func CopyAccounting(cfg Config) Table {
	tbl := Table{
		Title: "Copy accounting — secondary carry vs carried join-key partitions vs re-scatter vs staged",
		Header: []string{"workload", "pipeline", "time", "iters", "scattered", "sec scattered",
			"adopted", "flat mats", "builds in place", "build scatters", "per-iter carried scatters"},
	}
	allModes := []struct {
		name                 string
		staged, carry, secnd bool
	}{
		{"fused+carry+sec", false, true, true},
		{"fused+carry", false, true, false},
		{"fused", false, false, false},
		{"staged", true, false, false},
	}
	// The ablation flags prune the matrix: a -secondary-carry=false (or
	// -carry-join-parts=false, -fuse-delta=false) run measures the world
	// without that mechanism, so the rows that depend on it disappear.
	modes := allModes[:0]
	for _, m := range allModes {
		if (m.secnd && cfg.NoSecondaryCarry) || (m.carry && cfg.NoCarryJoinParts) || (!m.staged && cfg.StagedDelta) {
			continue
		}
		modes = append(modes, m)
	}
	// The experiment measures the partition pipeline, so a fan-out is forced
	// when none is requested: the auto policy would run these (deliberately
	// small) datasets unpartitioned on small machines and every counter
	// would read zero.
	parts := cfg.Partitions
	if parts == 0 {
		parts = 16
	}
	for _, w := range copyWorkloads(cfg) {
		prog := programs.MustParse(programs.ByName[w.Program])
		for _, mode := range modes {
			opts := core.DefaultOptions()
			opts.Workers = cfg.workers()
			opts.Partitions = parts
			opts.BuildSerial = cfg.BuildSerial
			opts.FuseDelta = !mode.staged
			opts.CarryJoinParts = mode.carry
			opts.SecondaryCarry = mode.secnd
			opts.Columnar = !cfg.NoColumnar
			opts.JoinOrder = !cfg.NoJoinOrder
			opts.WCOJ = !cfg.NoWCOJ
			res, err := core.New(opts).Run(prog, w.EDBs)
			if err != nil {
				tbl.Rows = append(tbl.Rows, []string{w.Name, mode.name, "error", "-", "-", "-", "-", "-", "-", "-", "-"})
				continue
			}
			s := res.Stats
			tbl.Rows = append(tbl.Rows, []string{
				w.Name,
				mode.name,
				fmtDuration(s.Duration),
				fmt.Sprintf("%d", s.Iterations),
				fmt.Sprintf("%d", s.TuplesScattered),
				fmt.Sprintf("%d", s.SecondaryScattered),
				fmt.Sprintf("%d", s.TuplesAdopted),
				fmt.Sprintf("%d", s.FlatMaterializations),
				fmt.Sprintf("%d", s.JoinBuildScattersAvoided),
				fmt.Sprintf("%d", s.JoinBuildScatters),
				fmt.Sprintf("%d", RecurringBuildScatters(s.JoinBuildsByKeyset)),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"scattered = tuples copied into radix partitions; sec scattered = subset copied into secondary carried views; adopted = tuples installed by block adoption (no copy); flat mats = flat materializations of tmp/Rδ",
		"builds in place = hash builds served from carried/cached partitions; build scatters = hash builds that re-partitioned their input",
		"per-iter carried scatters = build scatters beyond each shape's one-time fill, over relations a carried view could serve (predicates, deltas, EDBs; per-query join intermediates excluded) — 0 for SG and CSPA under fused+carry+sec")
	return tbl
}
