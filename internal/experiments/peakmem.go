package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"recstep/internal/core"
	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/programs"
	"recstep/internal/quickstep/storage"
)

// PeakMemEDBs builds a small input instance for every benchmark program —
// the shared fixture of the memory experiments and the spill round-trip
// tests (programs.ByName mirrors programs/*.datalog).
func PeakMemEDBs(program string, scale int) map[string]*storage.Relation {
	arc := graphs.GnP(scale, 0.05, 17)
	switch program {
	case "tc", "sg", "ntc", "gtc":
		return map[string]*storage.Relation{"arc": arc}
	case "cc":
		return map[string]*storage.Relation{"arc": graphs.Undirected(arc)}
	case "reach":
		return map[string]*storage.Relation{"arc": arc, "id": graphs.SingleSource(0)}
	case "sssp":
		return map[string]*storage.Relation{
			"arc": graphs.Weighted(arc, 100, 7),
			"id":  graphs.SingleSource(0),
		}
	case "aa", "aawide":
		return pa.AndersenSized(scale, 3)
	case "tri", "clique4":
		return map[string]*storage.Relation{"arc": graphs.Undirected(graphs.GnP(scale, 0.08, 19))}
	case "cspa":
		return pa.CSPASized(pa.CSPAConfig{Vars: scale, AssignPer: 5, DerefRatio: 3, Seed: 13})
	case "csda":
		return pa.CSDASized(4, scale, 4, 3)
	}
	panic("experiments: no EDB builder for program " + program)
}

// PeakMem reports, for every benchmark program, the memory manager's view of
// one evaluation — peak live pool bytes, final live bytes by category, pool
// recycle rate, spill/fault counts — next to runtime.MemStats heap peaks.
// With cfg.ManagedBudgetBytes set, the same budget applies to every run and
// the spill columns show the eviction traffic it induced; the paper's
// observation that memory, not CPU, bounds scaling is exactly what this
// table makes visible.
func PeakMem(cfg Config) Table {
	scale := 140
	if cfg.Quick {
		scale = 70
	}
	names := make([]string, 0, len(programs.ByName))
	for name := range programs.ByName {
		names = append(names, name)
	}
	sort.Strings(names)

	tbl := Table{
		Title:  "Peak memory — block pool accounting per program",
		Header: []string{"program", "time", "peak pool", "live end", "idb", "delta", "recycle%", "spills", "faults", "heap peak"},
	}
	for _, name := range names {
		prog, err := programs.Get(name)
		if err != nil {
			tbl.Rows = append(tbl.Rows, []string{name, "error", "-", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		opts := core.DefaultOptions()
		opts.Workers = cfg.workers()
		opts.Partitions = cfg.Partitions
		opts.BuildSerial = cfg.BuildSerial
		opts.FuseDelta = !cfg.StagedDelta
		opts.CarryJoinParts = !cfg.NoCarryJoinParts
		opts.MemBudgetBytes = cfg.ManagedBudgetBytes

		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := core.New(opts).Run(prog, PeakMemEDBs(name, scale))
		if err != nil {
			tbl.Rows = append(tbl.Rows, []string{name, "error", "-", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		heapPeak := after.TotalAlloc - before.TotalAlloc

		m := res.Stats.Mem
		recycle := 0.0
		if m.PoolHits+m.PoolMisses > 0 {
			recycle = 100 * float64(m.PoolHits) / float64(m.PoolHits+m.PoolMisses)
		}
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmtDuration(res.Stats.Duration),
			fmtBytes(m.PeakLive),
			fmtBytes(m.LiveTotal),
			fmtBytes(m.LiveBytes[storage.CatIDB]),
			fmtBytes(m.LiveBytes[storage.CatDelta]),
			fmt.Sprintf("%.0f%%", recycle),
			fmt.Sprintf("%d", m.Spills),
			fmt.Sprintf("%d", m.Faults),
			fmtBytes(int64(heapPeak)),
		})
	}
	if cfg.ManagedBudgetBytes > 0 {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("mem budget: %s (cold partitions of full relations spill under pressure)", fmtBytes(cfg.ManagedBudgetBytes)))
	} else {
		tbl.Notes = append(tbl.Notes, "no mem budget: recycling and accounting only (pass -mem-budget to force spilling)")
	}
	tbl.Notes = append(tbl.Notes, "heap peak = runtime.MemStats cumulative allocation over the run (Go heap churn the block pool avoids)")
	return tbl
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
