package experiments

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the pprof captures named by the config's CPUProfile
// and MemProfile fields (the cmds' -cpuprofile/-memprofile flags) and
// returns a stop function to run when the measured work completes: it ends
// the CPU profile and writes the allocation profile. With both fields empty
// the returned stop is a no-op, so callers can defer it unconditionally.
func (c Config) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	memPath := c.MemProfile
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("create mem profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle live objects so the heap profile reflects retained memory
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("write mem profile: %w", err)
		}
		return nil
	}, nil
}
