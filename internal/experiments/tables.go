package experiments

import (
	"fmt"
)

// Table1 reproduces the qualitative system comparison. The rows are the
// paper's aspects; the columns are this repository's engines, annotated
// with the system each stands in for.
func Table1() Table {
	return Table{
		Title:  "Table 1 — qualitative comparison (this repo's engines; stand-ins in header)",
		Header: []string{"aspect", "worklist(graspan)", "bdd(bddbddb)", "naive", "native(souffle)", "recstep"},
		Rows: [][]string{
			{"Scale-Up", "yes", "no", "yes", "yes", "yes"},
			{"Scale-Out", "no", "no", "no", "no", "no"},
			{"Memory Consumption", "low", "low", "high", "medium", "low"},
			{"CPU Utilization", "medium", "poor", "high", "medium", "high"},
			{"CPU Efficiency", "low", "-", "low", "high", "high"},
			{"Hyperparameter Tuning", "yes (lightweight)", "yes (complex)", "no", "no", "no"},
			{"Mutual Recursion", "yes", "yes", "yes", "yes", "yes"},
			{"Non-Recursive Aggregation", "no", "no", "yes", "yes", "yes"},
			{"Recursive Aggregation", "no", "no", "yes", "no", "yes"},
		},
		Notes: []string{"bddbddb's tuning burden is its BDD variable ordering, NP-complete to optimize"},
	}
}

// Table3 reproduces the programs × datasets inventory with the scaled
// dataset families actually used here.
func Table3() Table {
	return Table{
		Title:  "Table 3 — benchmark programs and (scaled) datasets",
		Header: []string{"program", "datasets"},
		Rows: [][]string{
			{"Transitive Closure (TC)", "G500, G1K, G1K-0.05, G1K-0.1, G2K, G4K, G8K (Gn-p, ÷10 scale)"},
			{"Same Generation (SG)", "same Gn-p family"},
			{"Reachability (REACH)", "livejournal/orkut/arabic/twitter-like, RMAT-8K…128K"},
			{"Connected Components (CC)", "same graph family"},
			{"Single Source Shortest Path (SSSP)", "same graph family, weights 1..100"},
			{"Andersen's Analysis (AA)", "7 synthetic datasets, growing variable universe"},
			{"Context-sensitive Dataflow (CSDA)", "linux-, postgresql-, httpd-like chain DAGs"},
			{"Context-sensitive Points-to (CSPA)", "linux-, postgresql-, httpd-like assign/deref graphs"},
		},
	}
}

// Table4 reproduces the CPU-efficiency comparison: ce = 1/(t·n) where t is
// the runtime in seconds and n the worker count.
func Table4(cfg Config) Table {
	specs := GnpFamily(cfg)
	rmat := RMATSeries(cfg)
	type entry struct {
		label string
		w     Workload
	}
	aaIdx := 7
	if cfg.Quick {
		aaIdx = 2
	}
	entries := []entry{
		{"TC(" + specs[len(specs)/2].Label + ")", TCWorkload(specs[len(specs)/2])},
		{"SG(" + specs[1].Label + ")", SGWorkload(specs[1])},
		{"REACH(rmat)", RMATWorkload("reach", rmat[len(rmat)-1])},
		{"CC(rmat)", RMATWorkload("cc", rmat[len(rmat)-1])},
		{"SSSP(rmat)", RMATWorkload("sssp", rmat[len(rmat)-1])},
		{fmt.Sprintf("AA(d%d)", aaIdx), AndersenWorkload(aaIdx, cfg)},
		{"CSDA(linux)", CSDAWorkload("linux", cfg)},
		{"CSPA(linux)", CSPAWorkload("linux", cfg)},
	}
	engines := AllEngines()
	tbl := Table{
		Title:  "Table 4 — CPU efficiency ce = 1/(runtime_s × workers)",
		Header: []string{"workload"},
	}
	for _, e := range engines {
		tbl.Header = append(tbl.Header, string(e))
	}
	n := float64(cfg.workers())
	for _, en := range entries {
		row := []string{en.label}
		for _, e := range engines {
			r := Run(e, en.w, cfg)
			if r.Err != nil {
				row = append(row, r.Cell())
				continue
			}
			ce := 1 / (r.Time.Seconds() * n)
			row = append(row, fmt.Sprintf("%.2e", ce))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}
