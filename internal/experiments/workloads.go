package experiments

import (
	"fmt"

	"recstep/internal/graphs"
	"recstep/internal/pa"
	"recstep/internal/quickstep/storage"
)

// GnpSpec is one member of the paper's Gn-p family (Table 3), scaled ÷10 in
// vertex count with edge probability raised to preserve the mean degree
// (the property TC/SG blow-up depends on).
type GnpSpec struct {
	Label string
	N     int
	P     float64
}

// GnpFamily mirrors [G5K, G10K, G10K-0.01, G10K-0.1, G20K, G40K, G80K] at
// 1/10 scale. Quick mode keeps the three smallest.
func GnpFamily(cfg Config) []GnpSpec {
	family := []GnpSpec{
		{"G500", 500, 0.01},
		{"G1K", 1000, 0.01},
		{"G1K-0.05", 1000, 0.05},
		{"G1K-0.1", 1000, 0.1},
		{"G2K", 2000, 0.01},
		{"G4K", 4000, 0.01},
		{"G8K", 8000, 0.01},
	}
	if cfg.Quick {
		return []GnpSpec{{"G100", 100, 0.05}, {"G200", 200, 0.05}, {"G300", 300, 0.05}}
	}
	return family
}

// TCWorkload builds transitive closure over one Gn-p graph.
func TCWorkload(spec GnpSpec) Workload {
	arc := graphs.GnP(spec.N, spec.P, 1)
	return Workload{
		Name:     "TC(" + spec.Label + ")",
		Program:  "tc",
		EDBs:     map[string]*storage.Relation{"arc": arc},
		Output:   "tc",
		Vertices: spec.N,
		Edges:    arc.NumTuples(),
	}
}

// SGWorkload builds same generation over one Gn-p graph.
func SGWorkload(spec GnpSpec) Workload {
	arc := graphs.GnP(spec.N, spec.P, 1)
	return Workload{
		Name:     "SG(" + spec.Label + ")",
		Program:  "sg",
		EDBs:     map[string]*storage.Relation{"arc": arc},
		Output:   "sg",
		Vertices: spec.N,
		Edges:    arc.NumTuples(),
	}
}

// RMATSeries returns the scaled RMAT vertex counts (the paper sweeps
// 1M…128M; we sweep 8K…128K, preserving the 2× growth and 10n edges).
func RMATSeries(cfg Config) []int {
	if cfg.Quick {
		return []int{1 << 10, 1 << 11}
	}
	return []int{1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17}
}

// GraphWorkload builds REACH/CC/SSSP over an arc relation. For CC the arcs
// are made symmetric (the CC program propagates labels along arc
// direction); for SSSP weights in [1,100] are attached.
func GraphWorkload(program, label string, arc *storage.Relation) Workload {
	w := Workload{Name: fmt.Sprintf("%s(%s)", program, label), Program: program}
	switch program {
	case "reach":
		w.EDBs = map[string]*storage.Relation{"arc": arc, "id": graphs.SingleSource(0)}
		w.Output = "reach"
	case "cc":
		w.EDBs = map[string]*storage.Relation{"arc": graphs.Undirected(arc)}
		w.Output = "cc2"
	case "sssp":
		w.EDBs = map[string]*storage.Relation{
			"arc": graphs.Weighted(arc, 100, 7),
			"id":  graphs.SingleSource(0),
		}
		w.Output = "sssp"
	default:
		panic("experiments: GraphWorkload supports reach/cc/sssp")
	}
	return w
}

// RMATWorkload builds one REACH/CC/SSSP instance over RMAT-n.
func RMATWorkload(program string, n int) Workload {
	arc := graphs.RMAT(n, 10*n, 2)
	return GraphWorkload(program, fmt.Sprintf("rmat-%dk", n/1000), arc)
}

// RealWorldWorkload builds one REACH/CC/SSSP instance over a real-world
// stand-in graph.
func RealWorldWorkload(program, name string, cfg Config) Workload {
	scale := 1
	arc, err := graphs.RealWorld(name, scale)
	if err != nil {
		panic(err)
	}
	if cfg.Quick {
		// Subsample edges for quick runs.
		small := storage.NewRelation("arc", []string{"c0", "c1"})
		count := 0
		arc.ForEach(func(t []int32) {
			if count%8 == 0 {
				small.Append(t)
			}
			count++
		})
		arc = small
	}
	return GraphWorkload(program, name, arc)
}

// AndersenWorkload builds Andersen's analysis on synthetic dataset 1..7.
func AndersenWorkload(dataset int, cfg Config) Workload {
	var edbs map[string]*storage.Relation
	if cfg.Quick {
		edbs = pa.AndersenSized(60+30*dataset, int64(dataset))
	} else {
		var err error
		edbs, err = pa.Andersen(dataset)
		if err != nil {
			panic(err)
		}
	}
	return Workload{
		Name:     fmt.Sprintf("AA(d%d)", dataset),
		Program:  "aa",
		EDBs:     edbs,
		Output:   "pointsTo",
		Vertices: maxDomain(edbs),
	}
}

// maxDomain returns 1 + the largest value occurring in any EDB — the active
// domain size the BDD engine encodes.
func maxDomain(edbs map[string]*storage.Relation) int {
	var max int32 = -1
	for _, rel := range edbs {
		rel.ForEach(func(t []int32) {
			for _, v := range t {
				if v > max {
					max = v
				}
			}
		})
	}
	return int(max + 1)
}

// CSPAWorkload builds the context-sensitive points-to analysis for one
// system program.
func CSPAWorkload(system string, cfg Config) Workload {
	var edbs map[string]*storage.Relation
	if cfg.Quick {
		edbs = pa.CSPASized(pa.CSPAConfig{Vars: 300, AssignPer: 13, DerefRatio: 3, Seed: 13})
	} else {
		var err error
		edbs, err = pa.CSPA(system)
		if err != nil {
			panic(err)
		}
	}
	return Workload{
		Name:    "CSPA(" + system + ")",
		Program: "cspa",
		EDBs:    edbs,
		Output:  "valueFlow",
	}
}

// CSDAWorkload builds the dataflow analysis for one system program.
func CSDAWorkload(system string, cfg Config) Workload {
	var edbs map[string]*storage.Relation
	if cfg.Quick {
		edbs = pa.CSDASized(6, 80, 6, 23)
	} else {
		var err error
		edbs, err = pa.CSDA(system)
		if err != nil {
			panic(err)
		}
	}
	return Workload{
		Name:    "CSDA(" + system + ")",
		Program: "csda",
		EDBs:    edbs,
		Output:  "null",
	}
}
