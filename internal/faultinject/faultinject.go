// Package faultinject is the chaos-testing harness of the hardened fixpoint
// path: deterministic, site-addressed fault triggers compiled into the memory
// manager, the pager and the worker pool behind an Options.FaultInject hook
// that is nil in production. A trigger point calls Fail(site) at the moment
// the real failure would occur — just before a spill write, a fault read, a
// pool allocation or a worker task — and receives either nil or an injected
// error to surface exactly the way the genuine failure would be surfaced.
//
// Two trigger shapes cover the chaos suite's needs: nth-call rules
// (deterministic "the 3rd spill write fails") and probabilistic rules
// (seeded "0.5% of fault reads fail"), optionally capped by a fire limit so
// a transient-failure scenario recovers after the retry budget is spent.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
)

// Site names one compiled-in trigger point.
type Site string

// The trigger points wired through the engine.
const (
	// SpillWrite fires inside Manager.SpillBlocks, before the spill file is
	// written. Injected errors are retriable (transient I/O failure).
	SpillWrite Site = "spill.write"
	// FaultRead fires inside Manager.FaultBlocks, before the spill file is
	// read back. Injected errors are retriable.
	FaultRead Site = "fault.read"
	// Alloc fires inside the memory manager's allocation accounting, before
	// any array is handed out. An injected alloc failure is query-fatal: the
	// manager records it as the run error and the fixpoint aborts at the next
	// boundary check — the engine's model of a failed allocation.
	Alloc Site = "alloc"
	// WorkerPanic fires in the pool's worker task loops, between tasks. The
	// pool panics with the injected error, exercising the worker recover()
	// containment path at a point where no operator state is held.
	WorkerPanic Site = "worker.panic"
)

// ErrInjected is the sentinel every injected error wraps; retry policies and
// tests match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// rule is the trigger configuration of one site.
type rule struct {
	nth   int64   // fire on exactly this 1-based call, once
	every int64   // fire on every n-th call
	prob  float64 // fire with this per-call probability
	limit int64   // max fires (0 = unlimited)

	calls int64
	fires int64
}

// Injector holds per-site trigger rules. A nil *Injector is inert: every
// method is a cheap no-op, so production call sites pay one pointer test.
// All methods are safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	rules map[Site]*rule
}

// New returns an empty injector whose probabilistic rules draw from a
// deterministic stream seeded with seed.
func New(seed int64) *Injector {
	rng := uint64(seed)
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	return &Injector{rng: rng, rules: make(map[Site]*rule)}
}

func (in *Injector) ruleFor(site Site) *rule {
	r := in.rules[site]
	if r == nil {
		r = &rule{}
		in.rules[site] = r
	}
	return r
}

// FailNth arranges for exactly the n-th call to site (1-based) to fail.
func (in *Injector) FailNth(site Site, n int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ruleFor(site).nth = int64(n)
	return in
}

// FailEvery arranges for every n-th call to site to fail.
func (in *Injector) FailEvery(site Site, n int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ruleFor(site).every = int64(n)
	return in
}

// FailProb arranges for each call to site to fail with probability p.
func (in *Injector) FailProb(site Site, p float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ruleFor(site).prob = p
	return in
}

// Limit caps the total number of failures site may inject; 0 removes the
// cap. A transient-failure scenario sets a limit below the retry budget so
// the operation succeeds after retries.
func (in *Injector) Limit(site Site, max int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ruleFor(site).limit = int64(max)
	return in
}

// next steps the xorshift64* stream; callers hold in.mu.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Fail counts one call to site and returns an injected error when a trigger
// rule elects this call, nil otherwise. Safe on a nil receiver.
func (in *Injector) Fail(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rules[site]
	if r == nil {
		return nil
	}
	r.calls++
	if r.limit > 0 && r.fires >= r.limit {
		return nil
	}
	fire := (r.nth > 0 && r.calls == r.nth) ||
		(r.every > 0 && r.calls%r.every == 0) ||
		(r.prob > 0 && float64(in.next()>>11)/float64(1<<53) < r.prob)
	if !fire {
		return nil
	}
	r.fires++
	return fmt.Errorf("%w at %s (call %d)", ErrInjected, site, r.calls)
}

// Calls reports how many times site's trigger point has been reached. Safe
// on a nil receiver.
func (in *Injector) Calls(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r := in.rules[site]; r != nil {
		return r.calls
	}
	return 0
}

// Fires reports how many errors site has injected. Safe on a nil receiver.
func (in *Injector) Fires(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r := in.rules[site]; r != nil {
		return r.fires
	}
	return 0
}
