package faultinject

import (
	"errors"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	for i := 0; i < 100; i++ {
		if err := inj.Fail(SpillWrite); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	if inj.Calls(SpillWrite) != 0 || inj.Fires(SpillWrite) != 0 {
		t.Fatalf("nil injector counted calls/fires: %d/%d", inj.Calls(SpillWrite), inj.Fires(SpillWrite))
	}
}

func TestFailNthFiresExactlyOnce(t *testing.T) {
	inj := New(1).FailNth(FaultRead, 3)
	var errs []error
	for i := 0; i < 10; i++ {
		errs = append(errs, inj.Fail(FaultRead))
	}
	for i, err := range errs {
		want := i == 2 // third call, zero-indexed
		if (err != nil) != want {
			t.Fatalf("call %d: err=%v, want fire=%v", i+1, err, want)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: error %v does not wrap ErrInjected", i+1, err)
		}
	}
	if got := inj.Calls(FaultRead); got != 10 {
		t.Fatalf("Calls = %d, want 10", got)
	}
	if got := inj.Fires(FaultRead); got != 1 {
		t.Fatalf("Fires = %d, want 1", got)
	}
}

func TestFailEveryIsPeriodic(t *testing.T) {
	inj := New(1).FailEvery(SpillWrite, 2)
	fired := 0
	for i := 1; i <= 8; i++ {
		err := inj.Fail(SpillWrite)
		if (err != nil) != (i%2 == 0) {
			t.Fatalf("call %d: err=%v, want fire=%v", i, err, i%2 == 0)
		}
		if err != nil {
			fired++
		}
	}
	if fired != 4 || inj.Fires(SpillWrite) != 4 {
		t.Fatalf("fired %d (reported %d), want 4", fired, inj.Fires(SpillWrite))
	}
}

func TestLimitCapsFires(t *testing.T) {
	inj := New(1).FailEvery(SpillWrite, 1).Limit(SpillWrite, 2)
	fired := 0
	for i := 0; i < 10; i++ {
		if inj.Fail(SpillWrite) != nil {
			fired++
		}
	}
	if fired != 2 || inj.Fires(SpillWrite) != 2 {
		t.Fatalf("fired %d (reported %d), want 2", fired, inj.Fires(SpillWrite))
	}
}

func TestFailProbIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := New(seed).FailProb(Alloc, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Fail(Alloc) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; expected a mix", fired, len(a))
	}
}

func TestSitesAreIndependent(t *testing.T) {
	inj := New(1).FailEvery(SpillWrite, 1)
	if err := inj.Fail(FaultRead); err != nil {
		t.Fatalf("unconfigured site fired: %v", err)
	}
	if err := inj.Fail(SpillWrite); err == nil {
		t.Fatal("configured site did not fire")
	}
}
