// Package graphs generates the synthetic graph datasets of Table 3. The
// paper's exact inputs (GTgraph Gn-p graphs, RMAT-1M…128M, livejournal,
// orkut, arabic, twitter) are either produced by external generators or are
// web-scale downloads; this package rebuilds each family at laptop scale
// while preserving the property each experiment depends on — Gn-p density
// (TC/SG output blow-up), RMAT's skewed power-law degrees at 10n edges, and
// the heavy-tailed degree distributions of the real-world graphs.
package graphs

import (
	"fmt"
	"math/rand"

	"recstep/internal/quickstep/storage"
)

// DefaultGnpP is the edge probability of the paper's Gn graphs when p is
// omitted ("Each pair of vertices in Gn omitting p is connected with
// probability 0.001").
const DefaultGnpP = 0.001

// GnP generates a directed Gn-p graph: every ordered pair (i, j), i ≠ j, is
// an arc with probability p.
func GnP(n int, p float64, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	var rows []int32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				rows = append(rows, int32(i), int32(j))
			}
		}
	}
	rel.AppendRows(rows)
	return rel
}

// RMAT generates a directed R-MAT graph with m distinct edges over n
// vertices (n must be a power of two for the quadrant recursion), using the
// standard (0.57, 0.19, 0.19, 0.05) partition probabilities from the
// BigDatalog evaluation setup.
func RMAT(n, m int, seed int64) *storage.Relation {
	if n&(n-1) != 0 || n <= 0 {
		panic(fmt.Sprintf("graphs: RMAT vertex count %d must be a power of two", n))
	}
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	seen := make(map[int64]struct{}, m)
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	var rows []int32
	attempts := 0
	for len(seen) < m && attempts < 20*m {
		attempts++
		x, y := 0, 0
		for step := n; step > 1; step /= 2 {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+b:
				y += step / 2
			case r < a+b+c:
				x += step / 2
			default:
				x += step / 2
				y += step / 2
			}
		}
		key := int64(x)<<32 | int64(y)
		if _, dup := seen[key]; dup || x == y {
			continue
		}
		seen[key] = struct{}{}
		rows = append(rows, int32(x), int32(y))
	}
	rel.AppendRows(rows)
	return rel
}

// PowerLaw generates a directed preferential-attachment graph: vertex v
// (v ≥ outDeg) adds outDeg arcs to targets drawn proportionally to current
// in-degree+1. The result has the heavy-tailed degree distribution of the
// paper's real-world graphs.
func PowerLaw(n, outDeg int, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	// targets repeats each vertex once per incoming edge, so uniform
	// sampling from it is degree-proportional sampling.
	targets := make([]int32, 0, n*outDeg)
	for v := 0; v < outDeg && v < n; v++ {
		targets = append(targets, int32(v))
	}
	var rows []int32
	for v := outDeg; v < n; v++ {
		for e := 0; e < outDeg; e++ {
			t := targets[rng.Intn(len(targets))]
			if int32(v) == t {
				continue
			}
			rows = append(rows, int32(v), t)
			targets = append(targets, t, int32(v))
		}
	}
	rel.AppendRows(rows)
	return rel
}

// Chain generates the path graph 0→1→…→n-1 (maximal-diameter input for
// iteration-heavy workloads like CSDA).
func Chain(n int) *storage.Relation {
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	rows := make([]int32, 0, 2*(n-1))
	for i := 0; i < n-1; i++ {
		rows = append(rows, int32(i), int32(i+1))
	}
	rel.AppendRows(rows)
	return rel
}

// Weighted converts a binary arc relation into arc(x, y, d) with uniform
// random weights in [1, maxW] (SSSP input).
func Weighted(arc *storage.Relation, maxW int32, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := storage.NewRelation("arc", []string{"c0", "c1", "c2"})
	arc.ForEach(func(t []int32) {
		rel.Append([]int32{t[0], t[1], 1 + rng.Int31n(maxW)})
	})
	return rel
}

// Undirected doubles every arc with its reverse (CC's min-label propagation
// needs both directions to cover a weakly connected component).
func Undirected(arc *storage.Relation) *storage.Relation {
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	arc.ForEach(func(t []int32) {
		rel.Append([]int32{t[0], t[1]})
		rel.Append([]int32{t[1], t[0]})
	})
	return rel
}

// SingleSource builds the unary id relation holding one source vertex
// (REACH, SSSP).
func SingleSource(v int32) *storage.Relation {
	rel := storage.NewRelation("id", []string{"c0"})
	rel.Append([]int32{v})
	return rel
}

// NumVertices returns 1 + the largest vertex mentioned by an arc relation.
func NumVertices(arc *storage.Relation) int {
	var max int32 = -1
	arc.ForEach(func(t []int32) {
		if t[0] > max {
			max = t[0]
		}
		if t[1] > max {
			max = t[1]
		}
	})
	return int(max + 1)
}

// RealWorld generates the scaled stand-in for one of the paper's real-world
// graphs. scale multiplies the base size (scale 1 runs in seconds).
func RealWorld(name string, scale int) (*storage.Relation, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "livejournal":
		return PowerLaw(8000*scale, 8, 101), nil
	case "orkut":
		// Denser than livejournal, like the original.
		return PowerLaw(6000*scale, 12, 102), nil
	case "arabic":
		// Web crawl: locally clustered, long chains; mix power-law with a
		// chain backbone for high diameter.
		pl := PowerLaw(9000*scale, 7, 103)
		ch := Chain(9000 * scale)
		pl.AppendRelation(ch)
		return pl, nil
	case "twitter":
		// Extremely skewed follower graph: low out-degree exponent.
		return PowerLaw(10000*scale, 10, 104), nil
	}
	return nil, fmt.Errorf("graphs: unknown real-world graph %q", name)
}

// RealWorldNames lists the supported stand-ins in the paper's order.
func RealWorldNames() []string {
	return []string{"livejournal", "orkut", "arabic", "twitter"}
}
