package graphs

import (
	"testing"
)

func TestGnPDensity(t *testing.T) {
	n := 200
	rel := GnP(n, 0.05, 1)
	m := rel.NumTuples()
	expected := float64(n*(n-1)) * 0.05
	if float64(m) < expected*0.7 || float64(m) > expected*1.3 {
		t.Fatalf("GnP edges = %d, expected ≈ %.0f", m, expected)
	}
	rel.ForEach(func(e []int32) {
		if e[0] == e[1] {
			t.Fatalf("self loop %v", e)
		}
		if e[0] < 0 || e[0] >= int32(n) || e[1] < 0 || e[1] >= int32(n) {
			t.Fatalf("edge out of range: %v", e)
		}
	})
}

func TestGnPDeterministic(t *testing.T) {
	a := GnP(100, 0.01, 7)
	b := GnP(100, 0.01, 7)
	if a.NumTuples() != b.NumTuples() {
		t.Fatal("same seed must give the same graph")
	}
}

func TestRMATEdgeCountAndSkew(t *testing.T) {
	n, m := 1024, 5000
	rel := RMAT(n, m, 2)
	if got := rel.NumTuples(); got != m {
		t.Fatalf("RMAT edges = %d, want %d", got, m)
	}
	// Skew: the max in-degree should far exceed the average (m/n ≈ 5).
	indeg := make(map[int32]int)
	rel.ForEach(func(e []int32) { indeg[e[1]]++ })
	maxDeg := 0
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 4*m/n {
		t.Fatalf("RMAT max in-degree %d shows no skew (avg %d)", maxDeg, m/n)
	}
}

func TestRMATRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two n")
		}
	}()
	RMAT(1000, 100, 1)
}

func TestPowerLawHeavyTail(t *testing.T) {
	rel := PowerLaw(2000, 5, 3)
	indeg := make(map[int32]int)
	rel.ForEach(func(e []int32) { indeg[e[1]]++ })
	maxDeg, total := 0, 0
	for _, d := range indeg {
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := total / len(indeg)
	if maxDeg < 10*avg {
		t.Fatalf("power-law max degree %d not heavy-tailed (avg %d)", maxDeg, avg)
	}
}

func TestChain(t *testing.T) {
	rel := Chain(5)
	if rel.NumTuples() != 4 {
		t.Fatalf("chain edges = %d, want 4", rel.NumTuples())
	}
}

func TestWeighted(t *testing.T) {
	w := Weighted(Chain(10), 100, 4)
	if w.Arity() != 3 {
		t.Fatalf("arity = %d", w.Arity())
	}
	w.ForEach(func(e []int32) {
		if e[2] < 1 || e[2] > 100 {
			t.Fatalf("weight %d out of range", e[2])
		}
	})
}

func TestUndirectedDoubles(t *testing.T) {
	u := Undirected(Chain(4))
	if u.NumTuples() != 6 {
		t.Fatalf("undirected edges = %d, want 6", u.NumTuples())
	}
}

func TestSingleSourceAndNumVertices(t *testing.T) {
	id := SingleSource(5)
	if id.NumTuples() != 1 || id.Arity() != 1 {
		t.Fatal("bad id relation")
	}
	if got := NumVertices(Chain(10)); got != 10 {
		t.Fatalf("NumVertices = %d, want 10", got)
	}
	empty := Chain(1)
	if got := NumVertices(empty); got != 0 {
		t.Fatalf("NumVertices(empty) = %d, want 0", got)
	}
}

func TestRealWorldFamilies(t *testing.T) {
	for _, name := range RealWorldNames() {
		rel, err := RealWorld(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel.NumTuples() < 10000 {
			t.Fatalf("%s: only %d edges", name, rel.NumTuples())
		}
	}
	if _, err := RealWorld("unknown", 1); err == nil {
		t.Fatal("unknown name should error")
	}
}
