// Package metrics samples memory usage and worker (CPU) utilization while
// an evaluation runs, standing in for the OS-level "Memory Usage (%)" and
// "CPU Utilization (%)" series of Figures 3, 6, 7, 11, 14 and 16. Memory is
// the Go heap in use; CPU utilization is the fraction of execution-pool
// workers busy at the sampling instant.
package metrics

import (
	"runtime"
	"sync"
	"time"

	"recstep/internal/quickstep/exec"
)

// Sample is one observation.
type Sample struct {
	At        time.Duration // since Start
	HeapBytes uint64
	Busy      int // busy pool workers (0 when no pool attached)
	Workers   int
}

// CPUUtil returns the busy fraction in [0, 1].
func (s Sample) CPUUtil() float64 {
	if s.Workers == 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Workers)
}

// Sampler polls on a ticker until stopped.
type Sampler struct {
	interval time.Duration
	pool     *exec.Pool

	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
	started time.Time
}

// NewSampler creates a sampler; pool may be nil (memory-only sampling).
// interval ≤ 0 selects 10ms.
func NewSampler(interval time.Duration, pool *exec.Pool) *Sampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Sampler{interval: interval, pool: pool}
}

// AttachPool sets the pool after construction (used when the pool only
// exists once the engine opens its database).
func (s *Sampler) AttachPool(pool *exec.Pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool = pool
}

// Start begins sampling in a goroutine.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.started = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.record()
		}
	}
}

func (s *Sampler) record() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	defer s.mu.Unlock()
	sm := Sample{At: time.Since(s.started), HeapBytes: ms.HeapAlloc}
	if s.pool != nil {
		sm.Busy = s.pool.BusyWorkers()
		sm.Workers = s.pool.Workers()
	}
	s.samples = append(s.samples, sm)
}

// Stop ends sampling and returns the collected series.
func (s *Sampler) Stop() []Sample {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	// One final sample so short runs always have data.
	s.record()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.samples
	s.samples = nil
	return out
}

// PeakHeap returns the maximum heap observation.
func PeakHeap(samples []Sample) uint64 {
	var peak uint64
	for _, s := range samples {
		if s.HeapBytes > peak {
			peak = s.HeapBytes
		}
	}
	return peak
}

// AvgCPUUtil returns the mean busy fraction across samples with a pool.
func AvgCPUUtil(samples []Sample) float64 {
	var sum float64
	var n int
	for _, s := range samples {
		if s.Workers > 0 {
			sum += s.CPUUtil()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
