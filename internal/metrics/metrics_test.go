package metrics

import (
	"testing"
	"time"

	"recstep/internal/quickstep/exec"
)

func TestSamplerCollectsSamples(t *testing.T) {
	s := NewSampler(time.Millisecond, exec.NewPool(2))
	s.Start()
	time.Sleep(20 * time.Millisecond)
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	if PeakHeap(samples) == 0 {
		t.Fatal("heap bytes should be nonzero")
	}
	for _, sm := range samples {
		if sm.Workers != 2 {
			t.Fatalf("Workers = %d, want 2", sm.Workers)
		}
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(0, nil)
	samples := s.Stop() // records one final sample
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
}

func TestSamplerObservesBusyWorkers(t *testing.T) {
	pool := exec.NewPool(4)
	s := NewSampler(time.Millisecond, pool)
	s.Start()
	// Keep the pool busy long enough for several samples.
	pool.Run(64, func(int) { time.Sleep(2 * time.Millisecond) })
	samples := s.Stop()
	if AvgCPUUtil(samples) <= 0 {
		t.Fatal("expected nonzero CPU utilization while pool was busy")
	}
}

func TestCPUUtilBounds(t *testing.T) {
	sm := Sample{Busy: 2, Workers: 4}
	if got := sm.CPUUtil(); got != 0.5 {
		t.Fatalf("CPUUtil = %f, want 0.5", got)
	}
	if (Sample{}).CPUUtil() != 0 {
		t.Fatal("zero-worker sample should report 0 utilization")
	}
}

func TestAttachPool(t *testing.T) {
	s := NewSampler(time.Millisecond, nil)
	s.AttachPool(exec.NewPool(3))
	s.Start()
	time.Sleep(5 * time.Millisecond)
	samples := s.Stop()
	found := false
	for _, sm := range samples {
		if sm.Workers == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("attached pool not observed")
	}
}

func TestDoubleStartIsSafe(t *testing.T) {
	s := NewSampler(time.Millisecond, nil)
	s.Start()
	s.Start() // no-op
	time.Sleep(3 * time.Millisecond)
	if got := s.Stop(); len(got) == 0 {
		t.Fatal("no samples")
	}
}

func TestAvgCPUUtilEmpty(t *testing.T) {
	if AvgCPUUtil(nil) != 0 {
		t.Fatal("empty series should average to 0")
	}
}
