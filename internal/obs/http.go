package obs

import (
	"encoding/json"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability mux: /metrics (Prometheus text),
// /statusz (JSON snapshot of the registry), and /debug/pprof/*.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("obs: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := struct {
			Time    time.Time      `json:"time"`
			Metrics map[string]any `json:"metrics"`
		}{Time: time.Now(), Metrics: reg.Snapshot()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Printf("obs: /statusz write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr in a background goroutine
// and returns the bound address (useful with a ":0" addr in tests). The
// listener lives for the remainder of the process — the CLIs treat it as a
// daemon-style side channel, not something to tear down mid-run.
func Serve(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: metrics server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
