package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"recstep/internal/obs/obstest"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_test_total", "Endpoint test counter.").Add(3)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "http_test_total 3\n") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}
	obstest.CheckPrometheusText(t, body)

	resp, body = get(t, srv.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d", resp.StatusCode)
	}
	var snap struct {
		Time    time.Time      `json:"time"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statusz is not JSON: %v", err)
	}
	if snap.Time.IsZero() {
		t.Error("/statusz time missing")
	}
	if v, ok := snap.Metrics["http_test_total"].(float64); !ok || v != 3 {
		t.Errorf("/statusz metrics = %v", snap.Metrics)
	}

	resp, _ = get(t, srv.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("serve_test", "Serve test gauge.").Set(9)
	addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, "http://"+addr+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "serve_test 9\n") {
		t.Errorf("body missing gauge:\n%s", body)
	}
}
