// Package obs is the engine's unified observability layer: a low-overhead
// metrics registry (atomic counters, gauges, power-of-two-bucket histograms)
// exported in Prometheus text format, a per-phase fixpoint tracer that emits
// Chrome trace-event JSON, and an HTTP handler serving /metrics,
// /debug/pprof/*, and a /statusz JSON snapshot of the live registry.
//
// The package is a pure-stdlib leaf so every layer (exec, memory, gscht,
// quickstep, core, the CLIs) can import it without cycles. Hot-path updates
// are single atomic adds; none of the types allocate after registration.
// core.Stats and core.IterInfo remain the end-of-run snapshot views, but the
// counters behind them now live here so a scrape mid-fixpoint sees the same
// numbers the run will report at the end.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. It embeds atomic.Int64 so
// existing call sites that did `field.Add(n)` / `field.Load()` on a raw
// atomic keep compiling unchanged after a field-type migration.
type Counter struct {
	atomic.Int64
}

// Gauge is a metric that can go up and down (set or added to).
type Gauge struct {
	atomic.Int64
}

// Set stores v as the current gauge value.
func (g *Gauge) Set(v int64) { g.Store(v) }

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. upper bound 2^i - 1 for i > 0
// and exactly 0 for i == 0. 64 buckets cover the full uint64 range.
const histBuckets = 64

// Histogram counts observations into power-of-two buckets. Observe is a
// single atomic add per bucket plus count/sum upkeep — cheap enough for
// per-block call sites, though not for per-tuple ones.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one observation of value v (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the upper bound of the highest non-empty bucket (0 if empty).
func (h *Histogram) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() != 0 {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return (1 << i) - 1
		}
	}
	return 0
}

// LabelPair is one label on a metric sample, e.g. {"phase", "probe"}.
type LabelPair struct{ Key, Value string }

// Sample is one labeled value produced by a SampleFunc at scrape time.
type Sample struct {
	Labels []LabelPair
	Value  float64
}

// metricKind tags how a registry entry renders in the Prometheus exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindSampleFunc
)

type metric struct {
	name string
	help string
	typ  string // Prometheus TYPE line: "counter", "gauge", "histogram"
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
	samples func() []Sample
}

// Registry holds named metrics and renders them as Prometheus text or a JSON
// snapshot. Registration replaces any prior metric of the same name, so one
// long-lived registry (e.g. behind -metrics-addr) can be re-bound across
// multiple engine runs without duplicate-registration panics.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[m.name]; ok {
		r.metrics[i] = m
		return
	}
	r.byName[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Counter registers (or re-binds) a counter and returns it.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// RegisterCounter exposes an existing Counter under name. This is how the
// engine's pre-existing atomic counters (copy accounting, pool stats) join
// the registry without changing their update sites.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.add(&metric{name: name, help: help, typ: "counter", kind: kindCounter, counter: c})
}

// Gauge registers (or re-binds) a gauge and returns it.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g)
	return g
}

// RegisterGauge exposes an existing Gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.add(&metric{name: name, help: help, typ: "gauge", kind: kindGauge, gauge: g})
}

// RegisterGaugeFunc exposes a value computed at scrape time, for sources that
// already maintain their own atomics (e.g. memory.Manager's live-byte total).
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64) {
	r.add(&metric{name: name, help: help, typ: "gauge", kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or re-binds) a power-of-two histogram and returns it.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram exposes an existing Histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.add(&metric{name: name, help: help, typ: "histogram", kind: kindHistogram, hist: h})
}

// RegisterSampleFunc exposes a labeled metric family whose samples are
// produced at scrape time, for low-cardinality label sets like per-phase
// durations or per-keyset join-build counts. typ is "counter" or "gauge".
func (r *Registry) RegisterSampleFunc(name, help, typ string, fn func() []Sample) {
	r.add(&metric{name: name, help: help, typ: typ, kind: kindSampleFunc, samples: fn})
}

// snapshotMetrics copies the metric list under the read lock so rendering
// can run without holding it.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range r.snapshotMetrics() {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Load())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.gauge.Load())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.fn()))
		case kindHistogram:
			writeHistogram(&b, m.name, m.hist)
		case kindSampleFunc:
			for _, s := range m.samples() {
				fmt.Fprintf(&b, "%s%s %s\n", m.name, formatLabels(s.Labels), formatValue(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits cumulative le-buckets up to the highest non-empty
// power of two, then +Inf, _sum, and _count, per the Prometheus convention.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	top := 0
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() != 0 {
			top = i
			break
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		var le string
		if i == 0 {
			le = "0"
		} else if i >= 63 {
			continue // folded into +Inf
		} else {
			le = fmt.Sprintf("%d", (int64(1)<<i)-1)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(b, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
}

// formatValue renders a float without exponent noise for integral values.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func formatLabels(labels []LabelPair) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q already escapes quotes and backslashes; strip raw newlines first.
	return strings.ReplaceAll(s, "\n", " ")
}

// Snapshot returns a JSON-marshalable view of the registry for /statusz:
// counters and gauges as numbers, sample funcs as label-string→value maps,
// histograms as {count, sum, max} summaries.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Load()
		case kindGauge:
			out[m.name] = m.gauge.Load()
		case kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			out[m.name] = map[string]int64{
				"count": m.hist.Count(),
				"sum":   m.hist.Sum(),
				"max":   m.hist.Max(),
			}
		case kindSampleFunc:
			sub := make(map[string]float64)
			for _, s := range m.samples() {
				key := formatLabels(s.Labels)
				if key == "" {
					key = "total"
				}
				sub[key] = s.Value
			}
			out[m.name] = sub
		}
	}
	return out
}

// SortSamples orders samples by their label string for deterministic output.
func SortSamples(samples []Sample) []Sample {
	sort.Slice(samples, func(i, j int) bool {
		return formatLabels(samples[i].Labels) < formatLabels(samples[j].Labels)
	})
	return samples
}
