package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"recstep/internal/obs/obstest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRegistry builds a registry with one metric of every kind and fixed
// values, so its Prometheus rendering is byte-for-byte deterministic.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests handled since start.")
	c.Add(42)
	g := reg.Gauge("test_live_bytes", "Bytes currently live.")
	g.Set(1 << 20)
	reg.RegisterGaugeFunc("test_budget_ratio", "Fraction of the budget in use.", func() float64 { return 0.25 })
	h := reg.Histogram("test_batch_rows", "Rows per batch.")
	for _, v := range []int64{0, 1, 1, 5, 900, 1023, 1024, -3} {
		h.Observe(v)
	}
	reg.RegisterSampleFunc("test_phase_seconds_total", "Per-phase seconds.", "counter", func() []Sample {
		return SortSamples([]Sample{
			{Labels: []LabelPair{{Key: "phase", Value: "probe"}}, Value: 0.25},
			{Labels: []LabelPair{{Key: "phase", Value: "build"}}, Value: 1.5},
		})
	})
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus output drifted from golden (rerun with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusTextWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	obstest.CheckPrometheusText(t, buf.String())
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 10 {
		t.Errorf("Count = %d, want 10", got)
	}
	// -5 clamps to 0.
	if got := h.Sum(); got != 0+1+2+3+4+7+8+1023+1024 {
		t.Errorf("Sum = %d", got)
	}
	if got := h.Max(); got != 2047 {
		t.Errorf("Max = %d, want 2047 (1024 lands in the le=2047 bucket)", got)
	}
	var empty Histogram
	if empty.Max() != 0 || empty.Count() != 0 {
		t.Errorf("empty histogram: Max=%d Count=%d", empty.Max(), empty.Count())
	}
	var big Histogram
	big.Observe(math.MaxInt64)
	if got := big.Max(); got != math.MaxInt64 {
		t.Errorf("Max after MaxInt64 observe = %d", got)
	}
	var buf bytes.Buffer
	reg := NewRegistry()
	reg.RegisterHistogram("h", "h.", &h)
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="0"} 2`,     // 0 and clamped -5
		`h_bucket{le="1"} 3`,     // +1
		`h_bucket{le="3"} 5`,     // +2,3
		`h_bucket{le="7"} 7`,     // +4,7
		`h_bucket{le="15"} 8`,    // +8
		`h_bucket{le="1023"} 9`,  // +1023
		`h_bucket{le="2047"} 10`, // +1024
		`h_bucket{le="+Inf"} 10`,
		"h_sum 2072",
		"h_count 10",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryReplacesByName(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("dup_total", "First binding.")
	c1.Add(5)
	c2 := reg.Counter("dup_total", "Second binding.")
	c2.Add(7)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE dup_total") != 1 {
		t.Errorf("replacement produced duplicate families:\n%s", out)
	}
	if !strings.Contains(out, "dup_total 7\n") {
		t.Errorf("latest binding should win:\n%s", out)
	}
}

// TestRegistryConcurrent hammers every update path while two scrapers render
// continuously; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "c.")
	g := reg.Gauge("conc_gauge", "g.")
	h := reg.Histogram("conc_hist", "h.")
	reg.RegisterGaugeFunc("conc_fn", "fn.", func() float64 { return float64(c.Load()) })

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Set(int64(i))
				h.Observe(int64(i % 4096))
				if i%500 == 0 {
					// Concurrent re-registration must not race rendering.
					reg.RegisterGauge("conc_gauge", "g.", g)
				}
			}
		}(w)
	}
	var scr sync.WaitGroup
	for s := 0; s < 2; s++ {
		scr.Add(1)
		go func() {
			defer scr.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scr.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestPhaseTimersAndSnapshot(t *testing.T) {
	var pt PhaseTimers
	pt.Add(PhaseBuild, 100)
	pt.Add(PhaseProbe, 250)
	pt.Add(PhaseBuild, 50)
	pt.Add(Phase(-1), 999) // out of range: ignored
	s := pt.Snapshot()
	if s[PhaseBuild] != 150 || s[PhaseProbe] != 250 {
		t.Errorf("snapshot = %v", s)
	}
	if s.Total() != 400 {
		t.Errorf("Total = %v", s.Total())
	}
	base := s
	pt.Add(PhaseProbe, 100)
	d := pt.Snapshot().Sub(base)
	if d[PhaseProbe] != 100 || d[PhaseBuild] != 0 {
		t.Errorf("Sub = %v", d)
	}
	m := d.Map()
	if len(m) != 1 || m["probe"] != 100 {
		t.Errorf("Map = %v", m)
	}
}

func TestObserverDefaults(t *testing.T) {
	o := New()
	if o.Reg == nil || o.Exec == nil {
		t.Fatal("New left Reg/Exec nil")
	}
	if o.Tracer.Enabled() {
		t.Error("tracer should default off")
	}
	o.WithTracer(16)
	if !o.Tracer.Enabled() {
		t.Error("WithTracer should enable tracing")
	}
	var buf bytes.Buffer
	if err := o.Reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"recstep_phase_seconds_total", "recstep_batch_rows", "recstep_gscht_chain_length", "recstep_delta_partition_rows"} {
		if !strings.Contains(buf.String(), "# TYPE "+fam) {
			t.Errorf("exec metrics missing family %s", fam)
		}
	}
}
