package obs

// ExecMetrics bundles the hot-path instruments the worker pool and kernels
// update directly: per-phase wall-time and the distribution histograms the
// paper's measurement figures call for.
type ExecMetrics struct {
	// Phase accumulates wall time per fixpoint phase across all workers.
	Phase PhaseTimers
	// BatchRows observes the row count of each probe/kernel block processed
	// on the batch path — the batch-size distribution.
	BatchRows Histogram
	// ChainLen observes sampled GSCHT bucket chain lengths at dedup-set
	// release, a direct read on hash-table pressure.
	ChainLen Histogram
	// DeltaPartRows observes per-partition accepted ∆ rows each delta step,
	// exposing partition skew.
	DeltaPartRows Histogram
}

// Register exposes the exec metrics on reg under stable names.
func (m *ExecMetrics) Register(reg *Registry) {
	m.Phase.register(reg)
	reg.RegisterHistogram("recstep_batch_rows",
		"Rows per columnar block processed by batch kernels (power-of-two buckets).", &m.BatchRows)
	reg.RegisterHistogram("recstep_gscht_chain_length",
		"Sampled GSCHT bucket chain lengths at dedup-set release.", &m.ChainLen)
	reg.RegisterHistogram("recstep_delta_partition_rows",
		"Accepted ∆ rows per partition per delta step (skew distribution).", &m.DeltaPartRows)
}

// Observer is the one attach point for a run's observability: the registry
// scraped by /metrics and /statusz, the exec metrics the pool updates, and
// an optional tracer. Pass one via core.Options.Obs (or let the engine make
// a private one) — cmd/recstep keeps a single Observer alive across the
// whole process so the HTTP listener serves it mid-fixpoint.
type Observer struct {
	Reg    *Registry
	Exec   *ExecMetrics
	Tracer *Tracer // nil unless -trace is set
}

// New returns an Observer with a fresh registry and registered exec metrics.
func New() *Observer {
	o := &Observer{Reg: NewRegistry(), Exec: &ExecMetrics{}}
	o.Exec.Register(o.Reg)
	return o
}

// WithTracer attaches a tracer buffering at most maxEvents events.
func (o *Observer) WithTracer(maxEvents int) *Observer {
	o.Tracer = NewTracer(maxEvents)
	return o
}
