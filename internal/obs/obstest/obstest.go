// Package obstest holds test assertions over observability output, shared by
// the obs unit tests and the engine integration tests. It deliberately does
// not import package obs, so in-package obs tests can use it without an
// import cycle.
package obstest

import (
	"regexp"
	"strings"
	"testing"
)

// metricLine matches one Prometheus 0.0.4 sample line:
// name{label="value",...} value
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

// CheckPrometheusText asserts every line of a text exposition is either a
// well-formed # HELP / # TYPE comment or a well-formed sample line.
func CheckPrometheusText(t testing.TB, text string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// RequireFamilies asserts that the exposition declares a # TYPE line for
// every named metric family.
func RequireFamilies(t testing.TB, text string, families ...string) {
	t.Helper()
	for _, fam := range families {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("exposition is missing metric family %s", fam)
		}
	}
}
