package obs

import (
	"time"
)

// Phase names the work categories inside a fixpoint step that the tracer and
// the phase timers attribute wall time to — the same decomposition the
// paper's iteration-time breakdowns use.
type Phase int

const (
	// PhaseScatter is radix-partitioning a relation by join keys.
	PhaseScatter Phase = iota
	// PhaseBuild is building per-partition hash tables for a join.
	PhaseBuild
	// PhaseProbe is streaming probe blocks through the hash tables.
	PhaseProbe
	// PhaseDelta is diff/dedup: the fused delta step or the staged
	// dedup+set-difference pipeline that turns tmp into ∆.
	PhaseDelta
	// PhaseAggregate is grouped aggregation over join output.
	PhaseAggregate
	// PhaseSpill is writing cold partitions out under memory pressure.
	PhaseSpill
	// PhaseFault is reading spilled partitions back in on demand.
	PhaseFault
	// PhaseLeapfrog is the worst-case-optimal join for cyclic rule bodies.
	PhaseLeapfrog

	numPhases int = iota
)

var phaseNames = [numPhases]string{
	"scatter", "build", "probe", "delta", "aggregate", "spill", "fault", "leapfrog",
}

// String returns the lower-case phase name used in metric labels and traces.
func (p Phase) String() string {
	if p < 0 || int(p) >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Phases lists all phases in declaration order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseTimers accumulates nanoseconds per phase. Adds are single atomic
// increments, so pool workers on different partitions update concurrently
// without contention beyond the cache line.
type PhaseTimers struct {
	nanos [numPhases]Counter
}

// Add attributes d of wall time to phase p.
func (t *PhaseTimers) Add(p Phase, d time.Duration) {
	if p < 0 || int(p) >= numPhases {
		return
	}
	t.nanos[p].Add(int64(d))
}

// PhaseSnapshot is a point-in-time copy of accumulated per-phase durations.
type PhaseSnapshot [numPhases]time.Duration

// Snapshot copies the current per-phase totals.
func (t *PhaseTimers) Snapshot() PhaseSnapshot {
	var s PhaseSnapshot
	for i := range s {
		s[i] = time.Duration(t.nanos[i].Load())
	}
	return s
}

// Sub returns the per-phase difference s - prev (for per-step attribution).
func (s PhaseSnapshot) Sub(prev PhaseSnapshot) PhaseSnapshot {
	var out PhaseSnapshot
	for i := range s {
		out[i] = s[i] - prev[i]
	}
	return out
}

// Total sums all phases.
func (s PhaseSnapshot) Total() time.Duration {
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum
}

// Map returns the snapshot keyed by phase name, omitting zero phases.
func (s PhaseSnapshot) Map() map[string]time.Duration {
	out := make(map[string]time.Duration, numPhases)
	for i, d := range s {
		if d != 0 {
			out[Phase(i).String()] = d
		}
	}
	return out
}

// register exposes the timers as a labeled seconds-counter family.
func (t *PhaseTimers) register(reg *Registry) {
	reg.RegisterSampleFunc("recstep_phase_seconds_total",
		"Wall time attributed to each fixpoint phase across all pool workers.",
		"counter", func() []Sample {
			out := make([]Sample, 0, numPhases)
			for i := 0; i < numPhases; i++ {
				out = append(out, Sample{
					Labels: []LabelPair{{Key: "phase", Value: Phase(i).String()}},
					Value:  time.Duration(t.nanos[i].Load()).Seconds(),
				})
			}
			return out
		})
}
