package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Step identifies where in the fixpoint a span happened. The engine updates
// it before each evaluation step; worker spans copy the current value.
type Step struct {
	Stratum   int
	Iteration int
	Pred      string
}

// TraceEvent is one Chrome trace-event ("X" complete event). Timestamps and
// durations are microseconds, per the trace-event format consumed by
// Perfetto and chrome://tracing.
type TraceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	TS   float64   `json:"ts"`
	Dur  float64   `json:"dur"`
	PID  int       `json:"pid"`
	TID  int       `json:"tid"`
	Args traceArgs `json:"args"`
}

type traceArgs struct {
	Stratum   int    `json:"stratum"`
	Iteration int    `json:"iteration"`
	Pred      string `json:"pred,omitempty"`
	Partition int    `json:"partition"`
}

// DefaultMaxEvents bounds a trace buffer; past it new events are dropped and
// counted, so a pathological fixpoint cannot eat the heap.
const DefaultMaxEvents = 1 << 20

// Tracer collects complete-events for a run. A nil *Tracer is inert: every
// method is safe to call and does nothing, so call sites don't need guards.
//
// Lane (tid) convention: tid 0 is the engine lane, carrying stratum /
// iteration / step spans the engine emits serially (so they nest properly);
// tid 1+p is partition lane p, carrying the per-partition phase spans pool
// workers emit concurrently.
type Tracer struct {
	start   time.Time
	max     int
	dropped atomic.Int64

	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns a tracer buffering at most maxEvents events
// (DefaultMaxEvents if maxEvents <= 0).
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{start: time.Now(), max: maxEvents}
}

// Enabled reports whether spans should be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Dropped returns how many events were discarded after the buffer filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Complete records a finished span that started at t0 and ran for d.
func (t *Tracer) Complete(name string, tid int, t0 time.Time, d time.Duration, step Step, part int) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name,
		Cat:  "fixpoint",
		Ph:   "X",
		TS:   float64(t0.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: traceArgs{Stratum: step.Stratum, Iteration: step.Iteration, Pred: step.Pred, Partition: part},
	}
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span starts a span and returns the func that ends and records it.
func (t *Tracer) Span(name string, tid int, step Step, part int) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.Complete(name, tid, t0, time.Since(t0), step, part) }
}

// Events returns a copy of the recorded events sorted by start time (ties:
// longer span first, so a parent precedes the children it encloses).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// Write emits the trace as a JSON object with a traceEvents array — the
// Chrome trace-event format Perfetto loads directly.
func (t *Tracer) Write(w io.Writer) error {
	doc := struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		Meta        struct {
			Dropped int64 `json:"droppedEvents"`
		} `json:"otherData"`
	}{TraceEvents: t.Events()}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	doc.Meta.Dropped = t.Dropped()
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
