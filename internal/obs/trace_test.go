package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Complete("x", 0, time.Now(), time.Millisecond, Step{}, -1)
	tr.Span("y", 1, Step{}, 0)()
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer recorded something")
	}
}

func TestTracerDropsPastMax(t *testing.T) {
	tr := NewTracer(2)
	base := time.Now()
	for i := 0; i < 5; i++ {
		tr.Complete("e", 0, base, time.Millisecond, Step{}, -1)
	}
	if got := len(tr.Events()); got != 2 {
		t.Errorf("kept %d events, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
}

// TestTraceWellFormed builds an engine-lane hierarchy the way the fixpoint
// emits it (stratum ⊃ iteration ⊃ step ⊃ phase) plus concurrent partition-
// lane spans, then asserts the written JSON parses, timestamps come out
// monotonic, and the engine lane nests properly.
func TestTraceWellFormed(t *testing.T) {
	tr := NewTracer(0)
	base := time.Now()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	step := Step{Stratum: 0, Iteration: 1, Pred: "tc"}

	// Emitted out of order on purpose: Events() must sort them back.
	tr.Complete("probe", 0, at(12), ms(3), step, -1)
	tr.Complete("stratum", 0, at(0), ms(40), Step{Stratum: 0}, -1)
	tr.Complete("iteration", 0, at(10), ms(25), Step{Stratum: 0, Iteration: 1}, -1)
	tr.Complete("tc", 0, at(11), ms(20), step, -1)
	tr.Complete("delta", 0, at(16), ms(10), step, -1)
	// Partition lanes overlap each other freely.
	tr.Complete("delta", 1, at(16), ms(9), step, 0)
	tr.Complete("delta", 2, at(16), ms(8), step, 1)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
		Other       struct {
			Dropped int64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}

	prev := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < prev {
			t.Errorf("timestamps not monotonic at %q: %v < %v", ev.Name, ev.TS, prev)
		}
		prev = ev.TS
		if ev.Dur < 0 {
			t.Errorf("negative duration on %q", ev.Name)
		}
	}

	// Engine lane (tid 0) must nest: each span either fits inside the open
	// span or starts after it ends — never partially overlaps.
	const slack = 1.0 // µs: float round-off headroom
	var stack []TraceEvent
	for _, ev := range doc.TraceEvents {
		if ev.TID != 0 {
			continue
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if ev.TS+slack >= top.TS+top.Dur {
				stack = stack[:len(stack)-1] // sibling after top closed
				continue
			}
			if ev.TS+ev.Dur > top.TS+top.Dur+slack {
				t.Errorf("engine-lane span %q [%v,%v] partially overlaps %q [%v,%v]",
					ev.Name, ev.TS, ev.TS+ev.Dur, top.Name, top.TS, top.TS+top.Dur)
			}
			break
		}
		stack = append(stack, ev)
	}

	// Args carry the fixpoint coordinates Perfetto shows on click.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "tc" && ev.TID == 0 {
			found = true
			if ev.Args.Stratum != 0 || ev.Args.Iteration != 1 || ev.Args.Pred != "tc" || ev.Args.Partition != -1 {
				t.Errorf("step span args = %+v", ev.Args)
			}
		}
	}
	if !found {
		t.Error("step span missing")
	}
}

func TestTraceWriteFileEmpty(t *testing.T) {
	tr := NewTracer(0)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Errorf("traceEvents should be an empty array, got %v", doc["traceEvents"])
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				tr.Span("delta", 1+w, Step{Iteration: i}, w)()
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := len(tr.Events()); got != 2000 {
		t.Errorf("recorded %d events, want 2000", got)
	}
}
