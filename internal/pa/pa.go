// Package pa generates synthetic program-analysis fact bases for the three
// static-analysis benchmarks (Section 6.2). The paper's inputs — seven
// Andersen datasets "generated based on the characteristics of a tiny real
// dataset" and the linux/postgresql/httpd extractions shipped with Graspan —
// are not redistributable here, so each generator reproduces the shape that
// drives the respective workload: Andersen scales the variable count across
// datasets 1–7; CSPA produces assign/dereference graphs whose value-flow
// closure is dense and non-linear; CSDA produces nullEdge/arc DAGs with very
// long dependency chains (hundreds of iterations, little work per
// iteration).
package pa

import (
	"fmt"
	"math/rand"

	"recstep/internal/quickstep/storage"
)

func rel2(name string) *storage.Relation {
	return storage.NewRelation(name, []string{"c0", "c1"})
}

// Andersen generates the EDBs for Andersen's analysis at dataset index
// 1..7; the variable universe grows with the index, as in the paper.
func Andersen(dataset int) (map[string]*storage.Relation, error) {
	if dataset < 1 || dataset > 7 {
		return nil, fmt.Errorf("pa: Andersen dataset %d outside 1..7", dataset)
	}
	// Variable count grows ~1.6× per dataset, mirroring the paper's
	// small-to-large progression.
	vars := 120
	for i := 1; i < dataset; i++ {
		vars = vars * 8 / 5
	}
	return AndersenSized(vars, int64(dataset)), nil
}

// AndersenSized generates Andersen facts over the given variable universe:
// a heap subset receives address-of edges, variables form an assignment web
// with moderate fan-in, and sparse loads and stores create the non-linear
// derivations. Densities are tuned so the points-to sets stay "moderate"
// (the paper's characterization of its synthetic AA inputs) rather than
// exploding quadratically.
func AndersenSized(vars int, seed int64) map[string]*storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	addressOf, assign, load, store := rel2("addressOf"), rel2("assign"), rel2("load"), rel2("store")
	v := func() int32 { return int32(rng.Intn(vars)) }
	heap := vars / 4
	if heap == 0 {
		heap = 1
	}
	for i := 0; i < vars/6; i++ {
		addressOf.Append([]int32{v(), int32(rng.Intn(heap))})
	}
	for i := 0; i < vars; i++ {
		assign.Append([]int32{v(), v()})
	}
	for i := 0; i < vars/12; i++ {
		load.Append([]int32{v(), v()})
	}
	for i := 0; i < vars/12; i++ {
		store.Append([]int32{v(), v()})
	}
	return map[string]*storage.Relation{
		"addressOf": addressOf, "assign": assign, "load": load, "store": store,
	}
}

// CSPAConfig sizes one CSPA input.
type CSPAConfig struct {
	Vars       int
	AssignPer  int // assign edges ≈ Vars*AssignPer/10
	DerefRatio int // dereference facts ≈ Vars/DerefRatio
	Seed       int64
}

// cspaConfigs maps the paper's system programs to scaled configurations.
// linux is the largest, httpd the smallest — same ordering as Table 3.
var cspaConfigs = map[string]CSPAConfig{
	"linux":      {Vars: 1000, AssignPer: 13, DerefRatio: 4, Seed: 11},
	"postgresql": {Vars: 750, AssignPer: 13, DerefRatio: 4, Seed: 12},
	"httpd":      {Vars: 500, AssignPer: 13, DerefRatio: 4, Seed: 13},
}

// CSPA generates assign/dereference facts for one of linux, postgresql,
// httpd.
func CSPA(system string) (map[string]*storage.Relation, error) {
	cfg, ok := cspaConfigs[system]
	if !ok {
		return nil, fmt.Errorf("pa: unknown CSPA system %q", system)
	}
	return CSPASized(cfg), nil
}

// CSPASized generates CSPA facts from an explicit configuration. Variables
// are grouped into function-scope-like clusters: assignments are mostly
// forward edges within a cluster (acyclic local dataflow) with occasional
// forward cross-cluster "call" edges, matching the structure of real
// extracted programs where value flow is deep but locally bounded —
// a giant strongly connected assign graph would make valueFlow all-pairs,
// which real inputs are not.
func CSPASized(cfg CSPAConfig) map[string]*storage.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	assign, deref := rel2("assign"), rel2("dereference")
	n := cfg.Vars
	const cluster = 20
	edges := n * cfg.AssignPer / 10
	for i := 0; i < edges; i++ {
		src := rng.Intn(n - 1)
		base := src - src%cluster
		end := base + cluster
		if end > n {
			end = n
		}
		var dst int
		if rng.Intn(30) == 0 && end+cluster <= n {
			// Rare cross-cluster call edge into the immediately following
			// cluster; deeper chains arise only transitively, keeping value
			// flow deep but bounded (no quadratic whole-program closure).
			dst = end + rng.Intn(cluster)
		} else if src+1 < end {
			// Local forward edge within the cluster.
			dst = src + 1 + rng.Intn(end-src-1)
		} else {
			continue
		}
		assign.Append([]int32{int32(src), int32(dst)})
	}
	// Dereferences are cluster-local: pointer p aliases variables inside its
	// own cluster. Unconstrained dereferences would let memoryAlias feed
	// arbitrary cross-cluster edges back into valueFlow, driving the closure
	// towards all-pairs — unlike real extracted programs.
	pointers := n / 4
	if pointers == 0 {
		pointers = 1
	}
	nClusters := (n + cluster - 1) / cluster
	for i := 0; i < n/max(1, cfg.DerefRatio); i++ {
		p := rng.Intn(pointers)
		base := (p % nClusters) * cluster
		width := cluster
		if base+width > n {
			width = n - base
		}
		deref.Append([]int32{int32(p), int32(base + rng.Intn(width))})
	}
	return map[string]*storage.Relation{"assign": assign, "dereference": deref}
}

// csdaConfigs scales the dataflow benchmark: long chains dominate, so the
// fixpoint needs many iterations with small deltas — the regime where the
// paper reports RecStep losing to Souffle (per-query overhead accumulates).
var csdaConfigs = map[string]struct {
	chains, length, nulls int
	seed                  int64
}{
	"linux":      {chains: 60, length: 700, nulls: 60, seed: 21},
	"postgresql": {chains: 45, length: 500, nulls: 45, seed: 22},
	"httpd":      {chains: 30, length: 350, nulls: 30, seed: 23},
}

// CSDA generates nullEdge/arc facts for one of linux, postgresql, httpd.
func CSDA(system string) (map[string]*storage.Relation, error) {
	cfg, ok := csdaConfigs[system]
	if !ok {
		return nil, fmt.Errorf("pa: unknown CSDA system %q", system)
	}
	return CSDASized(cfg.chains, cfg.length, cfg.nulls, cfg.seed), nil
}

// CSDASized builds `chains` parallel dataflow chains of the given length
// with occasional cross edges, and `nulls` null-source edges entering chain
// heads.
func CSDASized(chains, length, nulls int, seed int64) map[string]*storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	arc, nullEdge := rel2("arc"), rel2("nullEdge")
	id := func(chain, pos int) int32 { return int32(chain*length + pos) }
	for c := 0; c < chains; c++ {
		for i := 0; i < length-1; i++ {
			arc.Append([]int32{id(c, i), id(c, i+1)})
		}
		// Sparse cross edges between chains.
		if c > 0 && rng.Intn(2) == 0 {
			at := rng.Intn(length - 1)
			arc.Append([]int32{id(c-1, at), id(c, at+1)})
		}
	}
	for i := 0; i < nulls; i++ {
		c := rng.Intn(chains)
		nullEdge.Append([]int32{int32(1_000_000 + i), id(c, rng.Intn(length/4))})
	}
	return map[string]*storage.Relation{"arc": arc, "nullEdge": nullEdge}
}

// Systems lists the system-program dataset names in the paper's order.
func Systems() []string { return []string{"linux", "postgresql", "httpd"} }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
