package pa

import "testing"

func TestAndersenDatasetsGrow(t *testing.T) {
	prev := 0
	for i := 1; i <= 7; i++ {
		edbs, err := Andersen(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"addressOf", "assign", "load", "store"} {
			if _, ok := edbs[name]; !ok {
				t.Fatalf("dataset %d missing %s", i, name)
			}
		}
		size := edbs["assign"].NumTuples()
		if size <= prev {
			t.Fatalf("dataset %d (assign=%d) not larger than dataset %d (%d)", i, size, i-1, prev)
		}
		prev = size
	}
}

func TestAndersenBounds(t *testing.T) {
	for _, d := range []int{0, 8} {
		if _, err := Andersen(d); err == nil {
			t.Fatalf("dataset %d should be rejected", d)
		}
	}
}

func TestCSPASystems(t *testing.T) {
	sizes := map[string]int{}
	for _, sys := range Systems() {
		edbs, err := CSPA(sys)
		if err != nil {
			t.Fatal(err)
		}
		if edbs["assign"].NumTuples() == 0 || edbs["dereference"].NumTuples() == 0 {
			t.Fatalf("%s: empty facts", sys)
		}
		sizes[sys] = edbs["assign"].NumTuples()
	}
	if !(sizes["linux"] > sizes["postgresql"] && sizes["postgresql"] > sizes["httpd"]) {
		t.Fatalf("CSPA sizes should order linux > postgresql > httpd: %v", sizes)
	}
	if _, err := CSPA("win95"); err == nil {
		t.Fatal("unknown system should error")
	}
}

func TestCSDASystems(t *testing.T) {
	for _, sys := range Systems() {
		edbs, err := CSDA(sys)
		if err != nil {
			t.Fatal(err)
		}
		if edbs["arc"].NumTuples() == 0 || edbs["nullEdge"].NumTuples() == 0 {
			t.Fatalf("%s: empty facts", sys)
		}
	}
	if _, err := CSDA("beos"); err == nil {
		t.Fatal("unknown system should error")
	}
}

func TestCSDAChainStructure(t *testing.T) {
	edbs := CSDASized(2, 50, 2, 1)
	// Arc count: 2 chains × 49 + at most 1 cross edge.
	n := edbs["arc"].NumTuples()
	if n < 98 || n > 99 {
		t.Fatalf("arc count = %d", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := AndersenSized(500, 42)
	b := AndersenSized(500, 42)
	if a["assign"].NumTuples() != b["assign"].NumTuples() {
		t.Fatal("same seed must reproduce facts")
	}
}
