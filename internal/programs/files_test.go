package programs

import (
	"os"
	"path/filepath"
	"testing"

	"recstep/internal/datalog/parser"
)

// The CLI-facing programs/*.datalog files must stay in sync with the
// embedded constants: same rules, same order.
func TestShippedDatalogFilesMatchEmbedded(t *testing.T) {
	dir := filepath.Join("..", "..", "programs")
	for name, src := range ByName {
		path := filepath.Join(dir, datalogFile(name))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fromFile, err := parser.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: file does not parse: %v", name, err)
		}
		embedded := MustParse(src)
		if fromFile.String() != embedded.String() {
			t.Errorf("%s: %s diverges from the embedded program", name, path)
		}
	}
}

func datalogFile(name string) string {
	if name == "aa" {
		return "andersen.datalog"
	}
	return name + ".datalog"
}
