// Package programs holds the benchmark Datalog programs of the paper's
// evaluation (Section 6.2), verbatim in the engine's surface syntax, plus
// parsing helpers.
package programs

import (
	"fmt"

	"recstep/internal/datalog/ast"
	"recstep/internal/datalog/parser"
)

// TC is transitive closure (Example 1).
const TC = `
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
`

// SG is same generation (Section 5.3).
const SG = `
sg(x, y) :- arc(p, x), arc(p, y), x != y.
sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
`

// Reach is single-source reachability; the source vertex lives in EDB id.
const Reach = `
reach(y) :- id(y).
reach(y) :- reach(x), arc(x, y).
`

// CC is connected components via recursive MIN label propagation.
const CC = `
cc3(x, MIN(x)) :- arc(x, _).
cc3(y, MIN(z)) :- cc3(x, z), arc(x, y).
cc2(x, MIN(y)) :- cc3(x, y).
cc(x) :- cc2(_, x).
`

// SSSP is single-source shortest path over weighted arcs arc(x, y, d).
const SSSP = `
sssp2(y, MIN(0)) :- id(y).
sssp2(y, MIN(d1 + d2)) :- sssp2(x, d1), arc(x, y, d2).
sssp(x, MIN(d)) :- sssp2(x, d).
`

// Andersen is Andersen's points-to analysis (4 rules, non-linear and
// mutually dependent on pointsTo).
const Andersen = `
pointsTo(y, x) :- addressOf(y, x).
pointsTo(y, x) :- assign(y, z), pointsTo(z, x).
pointsTo(y, w) :- load(y, x), pointsTo(x, z), pointsTo(z, w).
pointsTo(z, w) :- store(y, x), pointsTo(y, z), pointsTo(x, w).
`

// CSPA is context-sensitive points-to analysis (Graspan's formulation):
// valueFlow / memoryAlias / valueAlias are mutually recursive.
const CSPA = `
valueFlow(y, x) :- assign(y, x).
valueFlow(x, y) :- assign(x, z), memoryAlias(z, y).
valueFlow(x, y) :- valueFlow(x, z), valueFlow(z, y).
memoryAlias(x, w) :- dereference(y, x), valueAlias(y, z), dereference(z, w).
valueAlias(x, y) :- valueFlow(z, x), valueFlow(z, y).
valueAlias(x, y) :- valueFlow(z, x), memoryAlias(z, w), valueFlow(w, y).
valueFlow(x, x) :- assign(x, y).
valueFlow(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(y, x).
memoryAlias(x, x) :- assign(x, y).
`

// CSDA is context-sensitive dataflow analysis: linear recursion with many
// iterations.
const CSDA = `
null(x, y) :- nullEdge(x, y).
null(x, y) :- null(x, w), arc(w, y).
`

// NTC is the complement of transitive closure (Example 2): stratified
// negation.
const NTC = `
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
node(x) :- arc(x, y).
node(y) :- arc(x, y).
ntc(x, y) :- node(x), node(y), !tc(x, y).
`

// GTC extends TC with a non-recursive COUNT aggregation (Section 3.3): the
// number of vertices reachable from each vertex.
const GTC = `
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
gtc(x, COUNT(y)) :- tc(x, y).
`

// Tri is triangle counting: a cyclic 3-atom body (the canonical worst-case-
// optimal-join workload) followed by a per-vertex COUNT stratum. The ordering
// comparisons keep each triangle to a single canonical orientation.
const Tri = `
tri(x, y, z) :- arc(x, y), arc(y, z), arc(x, z), x < y, y < z.
tricount(x, COUNT(z)) :- tri(x, y, z).
`

// Clique4 is 4-clique listing: a 6-atom cyclic body whose pairwise plan
// materializes large path intermediates the leapfrog join never builds.
const Clique4 = `
clique4(a, b, c, d) :- arc(a, b), arc(a, c), arc(a, d), arc(b, c), arc(b, d), arc(c, d), a < b, b < c, c < d.
`

// AAWide is Andersen's points-to with a deliberately hostile textual atom
// order: every rule leads with the big recursive pointsTo atoms and buries
// the small EDB filter atom last. Same fixpoint as Andersen; exists to make
// the join-ordering pass measurable (the textual-order ablation must seed
// each join chain from the largest relation).
const AAWide = `
pointsTo(y, x) :- addressOf(y, x).
pointsTo(y, x) :- pointsTo(z, x), assign(y, z).
pointsTo(y, w) :- pointsTo(x, z), pointsTo(z, w), load(y, x).
pointsTo(z, w) :- pointsTo(y, z), pointsTo(x, w), store(y, x).
`

// ByName maps benchmark identifiers (as used in the paper's tables) to
// program sources.
var ByName = map[string]string{
	"tc":      TC,
	"sg":      SG,
	"reach":   Reach,
	"cc":      CC,
	"sssp":    SSSP,
	"aa":      Andersen,
	"cspa":    CSPA,
	"csda":    CSDA,
	"ntc":     NTC,
	"gtc":     GTC,
	"tri":     Tri,
	"clique4": Clique4,
	"aawide":  AAWide,
}

// MustParse parses a program source, panicking on error; the embedded
// sources are compile-time constants so a failure is a programming bug.
func MustParse(src string) *ast.Program {
	p, err := parser.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("programs: %v", err))
	}
	return p
}

// Get returns the parsed program for a benchmark name.
func Get(name string) (*ast.Program, error) {
	src, ok := ByName[name]
	if !ok {
		return nil, fmt.Errorf("programs: unknown benchmark %q", name)
	}
	return parser.Parse(src)
}
