package programs

import (
	"testing"

	"recstep/internal/datalog/analysis"
)

// Every benchmark program must parse and pass the full rule analysis.
func TestAllProgramsAnalyze(t *testing.T) {
	for name := range ByName {
		prog, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := analysis.Analyze(prog); err != nil {
			t.Fatalf("%s: analysis failed: %v", name, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("broken(")
}

func TestExpectedStructure(t *testing.T) {
	cases := map[string]struct {
		idbs   int
		strata int
	}{
		"tc":   {1, 1},
		"cc":   {3, 3},
		"sssp": {2, 2},
		"cspa": {3, 1},
		"ntc":  {3, 3},
	}
	for name, want := range cases {
		prog, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := analysis.Analyze(prog)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.IDBNames()); got != want.idbs {
			t.Errorf("%s: IDBs = %d, want %d", name, got, want.idbs)
		}
		if got := len(res.Strata); got != want.strata {
			t.Errorf("%s: strata = %d, want %d", name, got, want.strata)
		}
	}
}
