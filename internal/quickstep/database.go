// Package quickstep assembles the storage, execution, statistics, optimizer
// and transaction subsystems into a single-node parallel in-memory RDBMS
// facade — the role QuickStep plays under RecStep (Figure 1). It exposes the
// SQL API used by the query generator plus the kernel-level calls Algorithm 1
// relies on: analyze, dedup and set difference.
package quickstep

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"recstep/internal/faultinject"
	"recstep/internal/obs"
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/memory"
	"recstep/internal/quickstep/optimizer"
	"recstep/internal/quickstep/plan"
	"recstep/internal/quickstep/sql"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
	"recstep/internal/quickstep/txn"
)

// Options configures a Database.
type Options struct {
	// Workers bounds intra-query parallelism; <=0 selects GOMAXPROCS.
	Workers int
	// Dedup selects the deduplication implementation (FAST-DEDUP ablation).
	Dedup exec.DedupStrategy
	// EOST defers all write-back to the final commit; turning it off makes
	// every mutating query flush dirty tables (the paper's EOST ablation).
	EOST bool
	// SpillDir receives write-back files; empty selects a temp directory.
	SpillDir string
	// StatsBudgetTuples caps dedup distinct estimates (0 = unbounded).
	StatsBudgetTuples int
	// Partitions fixes the radix partition count for hash builds (joins,
	// set difference, aggregation): 0 lets the optimizer pick 1/16/64/256
	// per operator from cardinality estimates, 1 disables partitioning.
	Partitions int
	// BuildSerial forces the serial shared-table join build — the ablation
	// reproducing the contention-limited scaling the paper observes on
	// QuickStep's global join hash table.
	BuildSerial bool
	// DisableIO skips the transaction manager entirely (no disk touched);
	// used by unit tests and benchmarks that measure pure compute.
	DisableIO bool
	// MemBudgetBytes bounds live block-pool bytes. When exceeded, cold
	// partitions of registered full relations spill to temp files and the
	// optimizer shrinks radix fan-out. 0 disables the budget (block
	// recycling and accounting stay on).
	MemBudgetBytes int64
	// CarryJoinParts lets a hash-join build reuse a partitioning the build
	// side already carries on exactly the join keys: the join's fan-out is
	// overridden to the carried one, so the per-partition tables are built
	// straight over the carried blocks with zero tuple movement. False is
	// the -carry-join-parts=false ablation: every partitioned build
	// re-scatters its input (the PR 2/3 behaviour).
	CarryJoinParts bool
	// SecondaryCarry lets a relation carry a *second* partitioned view on a
	// different keyset — the dual-route delta step maintains it for
	// predicates whose recursive joins build on conflicting key columns, so
	// both join shapes are served from carried partitions. False is the
	// -secondary-carry=false ablation: conflicting-keyset predicates keep
	// only a single carried view and the losing keyset's builds re-scatter
	// (the PR 4 behaviour). Only meaningful with CarryJoinParts.
	SecondaryCarry bool
	// Columnar enables the batch-at-a-time kernel paths: columnar block
	// layouts for re-read blocks, batched GSCHT inserts/probes, selection
	// vectors, bulk block emission and per-worker pool magazines. False is
	// the -columnar=false ablation — the row-layout tuple-at-a-time inner
	// loops of PR 5 and earlier.
	Columnar bool
	// JoinOrder enables the connectivity-driven greedy join-ordering pass:
	// each branch's chain is re-seeded from the most selective literal and
	// grown by shared-variable connectivity, re-planned every iteration as
	// ∆ cardinalities change, with early termination when an intermediate
	// comes back empty. False is the -join-order=false ablation — the
	// textual FROM-order chain.
	JoinOrder bool
	// WCOJ routes cyclic bodies of ≥3 atoms (triangles, cliques) to the
	// leapfrog worst-case-optimal multi-way join instead of any pairwise
	// chain. False is the -wcoj=false ablation.
	WCOJ bool
	// Obs, when set, wires the database's counters (copy accounting, memory
	// gauges, query/peak gauges) onto the observer's registry and installs
	// its exec metrics + tracer on the worker pool and memory manager. Nil
	// disables per-phase attribution entirely (the -obs=false ablation).
	Obs *obs.Observer
	// FaultInject installs chaos-test fault triggers in the memory manager
	// (spill writes, fault reads, allocation accounting) and the worker pool
	// (injected worker panics). Nil — the production default — leaves every
	// trigger point inert.
	FaultInject *faultinject.Injector
}

// PlanChoice records the join plan the optimizer picked for one branch: the
// atoms in textual order, the chosen execution order (table names), the
// strategy, and how many times the branch ran (re-planning happens per
// iteration, so Count tracks iterations and Order the latest decision).
type PlanChoice struct {
	Tables   []string `json:"tables"`
	Order    []string `json:"order"`
	Strategy string   `json:"strategy"`
	Count    int      `json:"count"`
}

// Database is the QuickStep-like engine instance.
type Database struct {
	opts  Options
	cat   *storage.Catalog
	stats *stats.Catalog
	pool  *exec.Pool
	mem   *memory.Manager
	txn   *txn.Manager

	mu      sync.Mutex // one query at a time, as in QuickStep
	queries atomic.Int64

	// outParts maps destination-table names to the partitioning the final
	// operator of an INSERT … SELECT into them should emit — the hook the
	// engine uses to make the join output land pre-partitioned for the fused
	// delta step. Guarded by hintMu (registered outside the query lock).
	hintMu   sync.Mutex
	outParts map[string]storage.Partitioning

	// plans records the latest join order and strategy per branch (branches
	// of one query run concurrently, hence the lock). peakJoinRows is a
	// high-water gauge of non-final join-intermediate cardinality — the
	// number the WCOJ path exists to keep bounded.
	planMu       sync.Mutex
	plans        map[string]*PlanChoice
	peakJoinRows atomic.Int64
}

// notePlan records the strategy and order chosen for a branch; single-table
// branches are skipped (there is nothing to order).
func (db *Database) notePlan(name string, br *plan.Branch, order []int, strategy optimizer.JoinStrategy) {
	if len(br.Tables) < 2 {
		return
	}
	names := make([]string, len(order))
	for i, t := range order {
		names[i] = br.Tables[t]
	}
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if db.plans == nil {
		db.plans = make(map[string]*PlanChoice)
	}
	pc := db.plans[name]
	if pc == nil {
		pc = &PlanChoice{Tables: append([]string(nil), br.Tables...)}
		db.plans[name] = pc
	}
	pc.Order = names
	pc.Strategy = strategy.String()
	pc.Count++
}

// PlanChoices snapshots the per-branch join-plan decisions recorded so far,
// keyed by branch name (destination table + branch index).
func (db *Database) PlanChoices() map[string]PlanChoice {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	out := make(map[string]PlanChoice, len(db.plans))
	for k, v := range db.plans {
		c := *v
		c.Order = append([]string(nil), v.Order...)
		c.Tables = append([]string(nil), v.Tables...)
		out[k] = c
	}
	return out
}

// notePeak raises the join-intermediate high-water gauge.
func (db *Database) notePeak(n int) {
	v := int64(n)
	for {
		cur := db.peakJoinRows.Load()
		if v <= cur || db.peakJoinRows.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PeakJoinIntermediate returns the largest non-final join-intermediate
// cardinality materialized so far (rows). Final fused join outputs are the
// branch result, not an intermediate, and are excluded; the leapfrog path
// materializes no intermediates at all.
func (db *Database) PeakJoinIntermediate() int64 { return db.peakJoinRows.Load() }

// Open creates a database.
func Open(opts Options) (*Database, error) {
	db := &Database{
		opts:  opts,
		cat:   storage.NewCatalog(),
		stats: stats.NewCatalog(opts.StatsBudgetTuples),
		pool:  exec.NewPool(opts.Workers),
		mem:   memory.NewManager(memory.Config{BudgetBytes: opts.MemBudgetBytes, SpillDir: opts.SpillDir, FaultInject: opts.FaultInject}),
	}
	db.pool.SetAlloc(db.mem)
	db.pool.SetBatch(opts.Columnar)
	db.pool.SetFaultInjector(opts.FaultInject)
	// Fatal manager failures (a failed allocation, an unreadable spill file)
	// become the pool's run error, so every worker loop drains at its next
	// boundary check instead of computing on unreachable data.
	db.mem.SetFailHandler(db.pool.Fail)
	if ob := opts.Obs; ob != nil {
		db.pool.SetObs(ob.Exec, ob.Tracer)
		db.mem.SetObs(ob.Exec, ob.Tracer, db.pool.CurrentStep)
		if ob.Reg != nil {
			db.pool.Copy.Register(ob.Reg)
			db.pool.RegisterMetrics(ob.Reg)
			db.mem.RegisterMetrics(ob.Reg)
			ob.Reg.RegisterGaugeFunc("recstep_queries_total",
				"SQL-equivalent queries issued against the database.",
				func() float64 { return float64(db.queries.Load()) })
			ob.Reg.RegisterGaugeFunc("recstep_peak_join_intermediate_rows",
				"Largest non-final join-intermediate cardinality materialized so far.",
				func() float64 { return float64(db.PeakJoinIntermediate()) })
		}
	}
	if !opts.DisableIO {
		m, err := txn.NewManager(opts.EOST, opts.SpillDir)
		if err != nil {
			return nil, err
		}
		db.txn = m
	}
	return db, nil
}

// Close releases spill resources and drains the block pool.
func (db *Database) Close() error {
	memErr := db.mem.Close()
	if db.txn != nil {
		if err := db.txn.Close(); err != nil {
			return err
		}
	}
	return memErr
}

// Catalog exposes the table catalog.
func (db *Database) Catalog() *storage.Catalog { return db.cat }

// Pool exposes the worker pool (metrics sampling reads busy counts from it).
func (db *Database) Pool() *exec.Pool { return db.pool }

// Observer returns the observer wired at Open (nil when observability is
// off). OnDB consumers use it to reach the same registry and tracer the
// engine's own counters live on.
func (db *Database) Observer() *obs.Observer { return db.opts.Obs }

// SetStep publishes the fixpoint position (stratum, iteration, predicate)
// that subsequent phase spans — pool workers and spill/fault passes — are
// attributed to. The engine calls it before each evaluation step.
func (db *Database) SetStep(stratum, iteration int, pred string) {
	db.pool.SetStep(stratum, iteration, pred)
}

// Mem exposes the memory manager owning all tuple-block storage.
func (db *Database) Mem() *memory.Manager { return db.mem }

// Alloc returns the block lifecycle relations created outside the database
// should allocate through to participate in pooling and accounting.
func (db *Database) Alloc() storage.Lifecycle { return db.mem }

// Headroom returns the bytes remaining under the memory budget (a very
// large value when no budget is set).
func (db *Database) Headroom() int64 { return db.mem.Headroom() }

// MemSnapshot reads the memory manager gauges (live bytes by category,
// peak, pool hit rates, spill/fault counters).
func (db *Database) MemSnapshot() memory.Snapshot { return db.mem.Snapshot() }

// MarkSpillable registers a table as a cold-partition spill candidate under
// memory pressure. The engine marks the full recursive relations; with no
// budget configured this is a no-op.
func (db *Database) MarkSpillable(table string) {
	if db.opts.MemBudgetBytes <= 0 {
		return
	}
	if r, ok := db.cat.Get(table); ok {
		db.mem.Register(r)
	}
}

// EndIteration is the engine's epoch hook, called once per fixpoint
// iteration at a quiescent point (no query in flight): retired view copies
// from superseded PartitionedViews are recycled, the spill LRU epoch
// advances, and any budget overshoot is reclaimed. Eviction order under
// pressure: secondary carried views are dropped first — they are pure
// redundancy (a second scatter copy of data the primary layout already
// holds), so shedding one costs at most a future re-scatter, while spilling
// a primary partition (EndEpoch's fallback) costs a disk write plus a
// fault. The quiescent point is what makes the drop safe to release this
// epoch: no in-flight operator can still be scanning the view's blocks.
func (db *Database) EndIteration() {
	// Recycle this iteration's retired garbage *before* reading the budget
	// signal: superseded view copies still count in the live gauge until
	// reclaimed, and deciding to shed secondaries on bytes that are freed
	// two lines later would drop views the budget actually has room for
	// (and pay a full |R| rebuild next iteration).
	for _, name := range db.cat.Names() {
		if r, ok := db.cat.Get(name); ok {
			r.ReclaimRetired()
			// Long fixpoints adopt one small ∆R block per partition per
			// iteration; coalescing bounds the per-partition block count so
			// pool-class padding never dominates R's footprint.
			r.CoalescePartitions()
		}
	}
	if db.mem.OverBudget() {
		for _, name := range db.cat.Names() {
			if r, ok := db.cat.Get(name); ok && r.DropSecondaryView() {
				db.mem.NoteSecondaryDrop()
				// Quiescent point: nothing can still scan the dropped view,
				// so its blocks are recycled now — the bytes come off the
				// gauge before EndEpoch decides whether spilling is needed.
				r.ReclaimRetired()
			}
		}
	}
	db.mem.EndEpoch()
}

// SetContext installs the cancellation context the worker loops poll at
// task/partition boundaries. The engine threads its run context through here;
// nil detaches (queries run uncancellable, the pre-context behaviour).
func (db *Database) SetContext(ctx context.Context) { db.pool.SetContext(ctx) }

// Err reports why the current run must abort, nil while it is healthy:
// a contained worker panic or injected fault first, then a fatal memory-
// manager failure (failed allocation, unreadable spill file), then the run
// context's cancellation.
func (db *Database) Err() error {
	if err := db.pool.Err(); err != nil {
		return err
	}
	return db.mem.RunError()
}

// ResetErr clears a prior failure's sticky abort state — the pool's
// recorded error/abort flag and the memory manager's fatal run error — so a
// resident database can evaluate again after a failed incremental update
// has been rolled back. The caller must be quiescent (no query in flight)
// and must have already released or re-derived any state the failed run
// left behind. Relation-level fault errors (unreadable spill files) are
// not cleared: that data genuinely remains unreachable.
func (db *Database) ResetErr() {
	db.pool.ResetErr()
	db.mem.ResetRunError()
}

// ReleaseAll releases every cataloged relation — blocks, retired view copies
// and spill files — without committing anything. The engine's abort path
// calls it so a cancelled or failed run tears down to zero live pooled bytes.
func (db *Database) ReleaseAll() {
	for _, name := range db.cat.Names() {
		if r, ok := db.cat.Get(name); ok {
			db.cat.Drop(name)
			r.Release()
			r.ReclaimRetired()
		}
	}
}

// Txn exposes the transaction manager, or nil with DisableIO.
func (db *Database) Txn() *txn.Manager { return db.txn }

// QueriesIssued counts ExecSQL calls — the per-query overhead UIE minimizes.
func (db *Database) QueriesIssued() int64 { return db.queries.Load() }

// CopySnapshot reads the copy-accounting counters (tuples scattered, tuples
// adopted without copy, flat materializations) accumulated by every operator
// run on this database's pool.
func (db *Database) CopySnapshot() exec.CopySnapshot { return db.pool.Copy.Snapshot() }

// SetOutputPartitioning asks the next INSERT … SELECT into table to emit its
// result pre-partitioned: the final operator of every branch scatters its
// output rows by part and the materialized result carries the partitioning.
// The hint persists until cleared or overwritten (the engine re-registers it
// per iteration as the chosen fan-out shifts).
func (db *Database) SetOutputPartitioning(table string, part storage.Partitioning) {
	db.hintMu.Lock()
	defer db.hintMu.Unlock()
	if db.outParts == nil {
		db.outParts = make(map[string]storage.Partitioning)
	}
	db.outParts[table] = part
}

// ClearOutputPartitioning removes a table's output-partitioning hint.
func (db *Database) ClearOutputPartitioning(table string) {
	db.hintMu.Lock()
	defer db.hintMu.Unlock()
	delete(db.outParts, table)
}

// outputPartitioning looks up the hint for a destination table.
func (db *Database) outputPartitioning(table string) (storage.Partitioning, bool) {
	db.hintMu.Lock()
	defer db.hintMu.Unlock()
	p, ok := db.outParts[table]
	return p, ok
}

// FilteredSuffix names the transient relations runBranch materializes for
// pre-filtered join inputs ("<table>_filtered"). The copy-accounting
// experiments use it to exclude those intermediates from the carried-build
// metrics — no carried partitioning could ever serve them.
const FilteredSuffix = "_filtered"

// schemaFn adapts the catalog for the SQL binder.
func (db *Database) schemaFn(table string) ([]string, bool) {
	r, ok := db.cat.Get(table)
	if !ok {
		return nil, false
	}
	return r.ColNames(), true
}

// ExecSQL parses, binds and executes one SQL statement. SELECT returns its
// result relation; other statements return nil.
func (db *Database) ExecSQL(q string) (*storage.Relation, error) {
	db.queries.Add(1)
	st, err := sql.Parse(q, db.schemaFn)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res, err := db.execStatement(st)
	if err == nil {
		// A statement can "succeed" operationally while the run underneath it
		// is aborting (cancelled context, contained worker panic, fatal
		// manager failure): operators drain early and return partial results.
		// Surface the abort here so no caller acts on those results.
		if aerr := db.Err(); aerr != nil {
			if res != nil {
				res.Release()
			}
			return nil, aerr
		}
	}
	return res, err
}

// ExecScript executes a semicolon-separated list of statements.
func (db *Database) ExecScript(script string) error {
	for _, stmt := range sql.SplitScript(script) {
		if _, err := db.ExecSQL(stmt); err != nil {
			return fmt.Errorf("quickstep: executing %q: %w", stmt, err)
		}
	}
	return nil
}

func (db *Database) execStatement(st plan.Statement) (*storage.Relation, error) {
	switch s := st.(type) {
	case plan.CreateTable:
		if _, err := db.cat.Create(s.Name, s.Cols); err != nil {
			return nil, err
		}
		return nil, nil
	case plan.DropTable:
		if _, ok := db.cat.Get(s.Name); !ok {
			if s.IfExists {
				return nil, nil
			}
			return nil, fmt.Errorf("quickstep: DROP of unknown table %q", s.Name)
		}
		r, _ := db.cat.Get(s.Name)
		db.cat.Drop(s.Name)
		db.stats.Drop(s.Name)
		if db.txn != nil {
			db.txn.Forget(s.Name)
		}
		if r != nil {
			// Epoch reclamation: a dropped table (the per-iteration tmp, a
			// UIE part table) releases its blocks back to the pool the moment
			// it dies. Blocks shared into another relation survive through
			// their remaining references.
			r.Release()
		}
		return nil, nil
	case plan.InsertValues:
		dst, ok := db.cat.Get(s.Table)
		if !ok {
			return nil, fmt.Errorf("quickstep: INSERT into unknown table %q", s.Table)
		}
		for _, tup := range s.Tuples {
			if len(tup) != dst.Arity() {
				return nil, fmt.Errorf("quickstep: INSERT arity %d into table %q of arity %d", len(tup), s.Table, dst.Arity())
			}
			dst.Append(tup)
		}
		return nil, db.afterMutation(s.Table)
	case plan.InsertSelect:
		dst, ok := db.cat.Get(s.Table)
		if !ok {
			return nil, fmt.Errorf("quickstep: INSERT into unknown table %q", s.Table)
		}
		var hint *storage.Partitioning
		if p, ok := db.outputPartitioning(s.Table); ok && p.Parts > 1 {
			hint = &p
		}
		res, err := db.runQuery(s.Query, s.Table+"_ins", hint)
		if err != nil {
			return nil, err
		}
		if res.Arity() != dst.Arity() {
			return nil, fmt.Errorf("quickstep: INSERT SELECT arity %d into table %q of arity %d", res.Arity(), s.Table, dst.Arity())
		}
		dst.AppendRelation(res)
		db.pool.Copy.Adopted.Add(int64(res.NumTuples()))
		res.Release() // transient result shell; dst holds the blocks now
		if hint != nil {
			if got, ok := dst.Partitioning(); !ok || !got.Equal(*hint) {
				// Some branch could not honour the fused scatter: the
				// destination materialized flat and the delta step will pay a
				// re-scatter. Recorded so the ablation is measurable.
				db.pool.Copy.FlatMats.Add(1)
			}
		}
		return nil, db.afterMutation(s.Table)
	case plan.SelectStmt:
		return db.runQuery(s.Query, "result", nil)
	}
	return nil, fmt.Errorf("quickstep: unhandled statement %T", st)
}

func (db *Database) afterMutation(table string) error {
	db.stats.Invalidate(table)
	if db.txn != nil {
		db.txn.MarkDirty(table)
		return db.txn.MaybeCommit(db.cat)
	}
	return nil
}

// runQuery evaluates a bound query. UNION ALL branches run concurrently —
// the execution-level payoff of UIE: subqueries of one unified query keep
// all cores busy without inter-query coordination. With an output
// partitioning, every branch emits pre-partitioned and the union merges the
// per-partition block lists, so the combined result still carries it.
func (db *Database) runQuery(q *plan.Query, name string, part *storage.Partitioning) (*storage.Relation, error) {
	results := make([]*storage.Relation, len(q.Branches))
	errs := make([]error, len(q.Branches))
	var wg sync.WaitGroup
	for i, br := range q.Branches {
		wg.Add(1)
		go func(i int, br *plan.Branch) {
			defer wg.Done()
			// Branch goroutines run outside the pool's worker guard, so a
			// panic here (operator state corrupted by an aborting run) would
			// crash the process; contain it as this branch's error.
			defer func() {
				if v := recover(); v != nil {
					err := fmt.Errorf("quickstep: query branch panic: %v\n%s", v, debug.Stack())
					db.pool.Fail(err)
					errs[i] = err
				}
			}()
			results[i], errs[i] = db.runBranch(br, fmt.Sprintf("%s_b%d", name, i), part)
		}(i, br)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Sibling branches may have completed; release their results so a
			// failed query leaks nothing.
			for _, r := range results {
				if r != nil {
					r.Release()
				}
			}
			return nil, err
		}
	}
	outCols := q.OutCols
	if len(outCols) != results[0].Arity() {
		outCols = storage.NumberedColumns(results[0].Arity())
	}
	out := exec.UnionAll(name, outCols, results...)
	for _, br := range results {
		br.Release() // branch shells are dead; out retains their blocks
	}
	return out, nil
}

func (db *Database) runBranch(br *plan.Branch, name string, part *storage.Partitioning) (*storage.Relation, error) {
	// Resolve and pre-filter base tables. owned marks relations this branch
	// materialized itself (filtered inputs, join intermediates): they are
	// released — blocks recycled — as soon as the next operator has consumed
	// them, the operator-level half of epoch reclamation.
	inputs := make([]*storage.Relation, len(br.Tables))
	owned := make([]bool, len(br.Tables))
	for i, t := range br.Tables {
		r, ok := db.cat.Get(t)
		if !ok {
			return nil, fmt.Errorf("quickstep: unknown table %q", t)
		}
		if preds := br.PreFilter[i]; len(preds) > 0 {
			r = exec.SelectProject(db.pool, r, preds, identityProjs(r.Arity()), t+FilteredSuffix, r.ColNames())
			owned[i] = true
		}
		inputs[i] = r
	}

	// Per-atom cardinalities drive the greedy ordering pass. Pre-filtered
	// materializations use their live (post-filter) count; unfiltered base
	// tables use catalog statistics. ∆-relations re-resolve from the catalog
	// every iteration, so delta arms are ordered by the live delta count.
	n := len(br.Tables)
	cards := make([]int, n)
	for i := range inputs {
		if owned[i] {
			cards[i] = inputs[i].NumTuples()
		} else {
			cards[i] = db.statTuples(br.Tables[i], inputs[i])
		}
	}
	strategy := optimizer.ChooseJoinStrategy(br, db.opts.JoinOrder, db.opts.WCOJ)
	if strategy == optimizer.JoinWCOJ {
		db.notePlan(name, br, plan.IdentityOrder(n), strategy)
		return db.runBranchWCOJ(br, inputs, owned, name, part)
	}
	order := plan.IdentityOrder(n)
	if strategy == optimizer.JoinGreedy {
		order = optimizer.OrderJoins(br, cards)
	}
	ord := plan.OrderSteps(br, order)
	db.notePlan(name, br, order, strategy)
	remap := func(i int) int { return ord.ColMap[i] }
	projs := make([]expr.Expr, len(br.Projs))
	for i, p := range br.Projs {
		projs[i] = expr.Remap(p, remap)
	}
	groupBy := make([]int, len(br.GroupBy))
	for i, g := range br.GroupBy {
		groupBy[i] = ord.ColMap[g]
	}
	totalWidth := 0
	for _, a := range br.Arities {
		totalWidth += a
	}

	cur := inputs[order[0]]
	curOwned := owned[order[0]]
	width := br.Arities[order[0]]
	// The select list fuses into the last join when nothing follows it,
	// avoiding one full materialization of the combined rows.
	fuseFinal := len(ord.Steps) > 0 && len(br.AntiJoins) == 0 && len(br.Aggs) == 0
	// Grouped aggregation fed by a join gets the fused scatter too: the
	// last join emits its (identity-projected) output pre-partitioned on
	// the GROUP BY columns, so the partitioned aggregation consumes the
	// carried partitions with zero re-scatter — the same
	// carry-don't-rebuild rule the delta pipeline follows. The fan-out is
	// fixed here, before the output exists, from the larger input's
	// cardinality (an equality join's output is probe-sized in the
	// delta-rule shapes that matter).
	var aggPart *storage.Partitioning
	fuseAgg := db.opts.CarryJoinParts && len(ord.Steps) > 0 && len(br.AntiJoins) == 0 &&
		len(br.Aggs) > 0 && len(br.GroupBy) > 0
	earlyExit := false
	for step := 0; step < len(ord.Steps); step++ {
		js := ord.Steps[step]
		right := inputs[js.Right]
		// Early termination: an empty running intermediate cannot produce
		// rows, so the remaining hash builds are pure waste. Substitute an
		// empty combined-width relation and fall through to the (cheap)
		// final stages, which preserve output arity and aggregate
		// semantics over the empty input.
		if db.opts.JoinOrder && cur.NumTuples() == 0 {
			if curOwned {
				cur.Release()
			}
			for s2 := step; s2 < len(ord.Steps); s2++ {
				if t := ord.Steps[s2].Right; owned[t] {
					inputs[t].Release()
				}
			}
			e := storage.NewRelation(name+"_empty", storage.NumberedColumns(totalWidth))
			e.SetLifecycle(db.mem, storage.CatIntermediate)
			cur, curOwned, width = e, true, totalWidth
			earlyExit = true
			break
		}
		stepProjs := identityProjs(width + br.Arities[js.Right])
		if fuseFinal && step == len(ord.Steps)-1 {
			stepProjs = projs
		}
		buildLeft, buildTuples := db.chooseBuildSide(cur, br, order[0], step, right, js)
		spec := exec.JoinSpec{
			LeftKeys:    js.LeftKeys,
			RightKeys:   js.RightKeys,
			BuildLeft:   buildLeft,
			Partitions:  db.partitionsFor(buildTuples),
			BuildSerial: db.opts.BuildSerial,
			Residual:    js.Residual,
			Projs:       stepProjs,
			OutName:     fmt.Sprintf("%s_j%d", name, step),
		}
		// Join-key-carried fast path: when the build side already carries a
		// partitioning on exactly the join keys (∆R exiting the fused delta
		// step keyed for this very build), adopt its fan-out so the build
		// indexes the carried partition blocks in place — no re-scatter.
		if buildLeft {
			spec.Partitions = db.carriedBuildParts(cur, js.LeftKeys, spec.Partitions)
		} else {
			spec.Partitions = db.carriedBuildParts(right, js.RightKeys, spec.Partitions)
		}
		if fuseFinal && step == len(ord.Steps)-1 {
			// Fused scatter: the probe emits the branch output directly into
			// the partitions the delta step consumes.
			spec.OutPartitioning = part
		}
		if fuseAgg && step == len(ord.Steps)-1 {
			est := cur.NumTuples()
			if rt := right.NumTuples(); rt > est {
				est = rt
			}
			if p := db.partitionsFor(est); p > 1 {
				aggPart = &storage.Partitioning{KeyCols: groupBy, Parts: p}
				spec.OutPartitioning = aggPart
			}
		}
		next := exec.HashJoin(db.pool, cur, right, spec)
		if !(fuseFinal && step == len(ord.Steps)-1) {
			db.notePeak(next.NumTuples())
		}
		if curOwned {
			cur.Release()
		}
		if owned[js.Right] {
			right.Release()
		}
		cur, curOwned = next, true
		width += br.Arities[js.Right]
	}
	if fuseFinal && !earlyExit {
		return cur, nil
	}

	for _, aj := range br.AntiJoins {
		if cur.NumTuples() == 0 {
			// Anti-joins only remove rows; nothing to remove from nothing.
			break
		}
		inner, ok := db.cat.Get(aj.Table)
		if !ok {
			return nil, fmt.Errorf("quickstep: unknown table %q in NOT EXISTS", aj.Table)
		}
		innerOwned := false
		if len(aj.InnerPreFilter) > 0 {
			inner = exec.SelectProject(db.pool, inner, aj.InnerPreFilter, identityProjs(inner.Arity()), aj.Table+FilteredSuffix, inner.ColNames())
			innerOwned = true
		}
		outerKeys := make([]int, len(aj.OuterKeys))
		for i, k := range aj.OuterKeys {
			outerKeys[i] = ord.ColMap[k]
		}
		innerParts := db.carriedBuildParts(inner, aj.InnerKeys, db.partitionsFor(inner.NumTuples()))
		next := exec.AntiJoin(db.pool, cur, inner, outerKeys, aj.InnerKeys, nil, identityProjs(width), innerParts, name+"_anti", nil)
		if curOwned {
			cur.Release()
		}
		if innerOwned {
			inner.Release()
		}
		cur, curOwned = next, true
	}

	if len(br.Aggs) > 0 {
		aggParts := db.partitionsFor(cur.NumTuples())
		if aggPart != nil {
			// The join output carries the group-by partitioning; aggregate
			// at exactly that fan-out so the carried view serves the pass.
			aggParts = aggPart.Parts
		}
		aggs := make([]exec.AggSpec, len(br.Aggs))
		for i, a := range br.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = expr.Remap(a.Arg, remap)
			}
		}
		agg := exec.HashAggregatePartitioned(db.pool, cur, groupBy, aggs, aggParts, name+"_agg", nil)
		if curOwned {
			cur.Release()
		}
		// Reorder to the select-list order.
		sel := make([]expr.Expr, len(br.SelectOrder))
		for i, so := range br.SelectOrder {
			if so.IsAgg {
				sel[i] = expr.Col{Index: len(br.GroupBy) + so.Index}
			} else {
				sel[i] = expr.Col{Index: so.Index}
			}
		}
		out := exec.SelectProjectPartitioned(db.pool, agg, nil, sel, part, name, nil)
		agg.Release()
		return out, nil
	}
	out := exec.SelectProjectPartitioned(db.pool, cur, nil, projs, part, name, nil)
	if curOwned {
		cur.Release()
	}
	return out, nil
}

// runBranchWCOJ evaluates a cyclic branch with the leapfrog worst-case-
// optimal join: variables are the branch's equi-join classes, atoms
// intersect simultaneously, and no pairwise intermediate exists. Only
// reached for branches without aggregates or anti-joins (ChooseJoinStrategy
// gates on that), so the set-semantics output feeds the dedup'd delta step
// or final projection directly. The combined row is filled in declaration-
// order coordinates, so projections and residuals bind without remapping.
func (db *Database) runBranchWCOJ(br *plan.Branch, inputs []*storage.Relation, owned []bool, name string, part *storage.Partitioning) (*storage.Relation, error) {
	classes := br.VarClasses()
	varOf := map[int]int{}
	var fill [][]int
	atoms := make([]exec.LFAtom, len(br.Tables))
	for t := range br.Tables {
		vars := make([]int, br.Arities[t])
		for c := range vars {
			abs := br.Offsets[t] + c
			k := classes[abs]
			v, ok := varOf[k]
			if !ok {
				v = len(fill)
				varOf[k] = v
				fill = append(fill, nil)
			}
			fill[v] = append(fill[v], abs)
			vars[c] = v
		}
		atoms[t] = exec.LFAtom{Rel: inputs[t], Vars: vars}
	}
	// Enumerate the most-shared variables first (they intersect the most
	// atoms, shrinking candidate windows earliest); ties keep first-
	// occurrence order, which variable ids already encode.
	cnt := make([]int, len(fill))
	for _, a := range atoms {
		seen := map[int]bool{}
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				cnt[v]++
			}
		}
	}
	varOrder := make([]int, len(fill))
	for i := range varOrder {
		varOrder[i] = i
	}
	sort.SliceStable(varOrder, func(i, j int) bool { return cnt[varOrder[i]] > cnt[varOrder[j]] })
	residual := make([]expr.Cmp, len(br.Body.Residuals))
	for i, res := range br.Body.Residuals {
		residual[i] = res.Cmp
	}
	totalWidth := 0
	for _, a := range br.Arities {
		totalWidth += a
	}
	out := exec.LeapfrogJoin(db.pool, exec.LeapfrogSpec{
		Atoms:           atoms,
		VarOrder:        varOrder,
		FillCols:        fill,
		Width:           totalWidth,
		Residual:        residual,
		Projs:           br.Projs,
		OutName:         name,
		OutPartitioning: part,
	})
	for i, r := range inputs {
		if owned[i] {
			r.Release()
		}
	}
	return out, nil
}

// chooseBuildSide applies the optimizer's build-side rule using catalog
// statistics for base tables (which OOF keeps fresh — or not, under OOF-NA)
// and actual counts for just-created intermediates, plus the keyset-aware
// override: when the sizes are close, the side already carrying a
// partitioning on exactly its join keys builds — in-place table
// construction over slightly more tuples beats a scatter pass over slightly
// fewer. It returns the decision plus the chosen side's cardinality
// estimate, which also drives the radix partition count.
func (db *Database) chooseBuildSide(cur *storage.Relation, br *plan.Branch, seed, step int, right *storage.Relation, js plan.JoinStep) (buildLeft bool, buildTuples int) {
	var leftTuples int
	if step == 0 {
		leftTuples = db.statTuples(br.Tables[seed], cur)
	} else {
		leftTuples = cur.NumTuples() // freshly materialized intermediate
	}
	rightTuples := db.statTuples(br.Tables[js.Right], right)
	leftCarried, rightCarried := false, false
	if db.opts.CarryJoinParts && !db.opts.BuildSerial {
		// Only step 0's left keys index a base relation's own row; later
		// steps' left side is an accumulated intermediate that never
		// carries a view.
		leftCarried = step == 0 && db.carriedMatch(cur, js.LeftKeys)
		rightCarried = db.carriedMatch(right, js.RightKeys)
	}
	if optimizer.PreferCarriedBuild(leftTuples, rightTuples, leftCarried, rightCarried) {
		return true, leftTuples
	}
	return false, rightTuples
}

// carriedMatch reports whether the relation carries a multi-partition view
// — primary or secondary — routed on exactly the given join keys.
func (db *Database) carriedMatch(r *storage.Relation, keys []int) bool {
	if len(keys) == 0 {
		return false
	}
	if p, ok := r.Partitioning(); ok && p.Parts > 1 && storage.KeyColsEqual(p.KeyCols, keys) {
		return true
	}
	if p, ok := r.SecondaryPartitioning(); ok && p.Parts > 1 && storage.KeyColsEqual(p.KeyCols, keys) {
		return true
	}
	return false
}

// carriedBuildParts overrides a hash build's chosen fan-out with the one the
// build relation already carries on exactly the join keys, so the build is
// served from carried partition blocks without a scatter pass. Returns the
// fallback fan-out when carrying is disabled (the ablation), the build is
// forced serial, or the carried keyset does not match the join keys.
func (db *Database) carriedBuildParts(build *storage.Relation, keys []int, fallback int) int {
	if !db.opts.CarryJoinParts || db.opts.BuildSerial || len(keys) == 0 {
		return fallback
	}
	if p, ok := build.Partitioning(); ok && p.Parts > 1 && storage.KeyColsEqual(p.KeyCols, keys) {
		return p.Parts
	}
	// Conflicting-keyset predicates carry a second view; a build keyed on
	// the secondary keyset adopts its fan-out the same way, and the scatter
	// short-circuit inside the build serves it from the secondary blocks.
	if p, ok := build.SecondaryPartitioning(); ok && p.Parts > 1 && storage.KeyColsEqual(p.KeyCols, keys) {
		return p.Parts
	}
	return fallback
}

// partitionsFor resolves the radix partition count for a hash build of the
// given estimated cardinality under the configured policy.
func (db *Database) partitionsFor(buildTuples int) int {
	if db.opts.BuildSerial {
		return 1
	}
	if db.opts.Partitions > 0 {
		return db.opts.Partitions
	}
	return optimizer.ChoosePartitionsBudget(buildTuples, db.pool.Workers(), db.mem.Headroom())
}

// statTuples returns the cataloged tuple count for a base table, falling
// back to the live count when the table was never analyzed.
func (db *Database) statTuples(table string, r *storage.Relation) int {
	if t, ok := db.stats.Get(table); ok {
		return t.NumTuples
	}
	return r.NumTuples()
}

func identityProjs(width int) []expr.Expr {
	projs := make([]expr.Expr, width)
	for i := range projs {
		projs[i] = expr.Col{Index: i}
	}
	return projs
}

// Analyze refreshes statistics for a table — Algorithm 1's analyze() call.
func (db *Database) Analyze(table string, mode stats.Mode) (stats.Table, error) {
	r, ok := db.cat.Get(table)
	if !ok {
		return stats.Table{}, fmt.Errorf("quickstep: ANALYZE of unknown table %q", table)
	}
	return db.stats.Analyze(r, mode), nil
}

// AnalyzeRelation refreshes statistics for an unregistered relation (deltas
// and temporaries the engine holds by handle).
func (db *Database) AnalyzeRelation(r *storage.Relation, mode stats.Mode) stats.Table {
	return db.stats.Analyze(r, mode)
}

// Stats returns the recorded (possibly stale) statistics for a table.
func (db *Database) Stats(table string) (stats.Table, bool) {
	return db.stats.Get(table)
}

// Dedup deduplicates a relation using the configured strategy — Algorithm
// 1's dedup() call. estDistinct pre-sizes the hash table; when the caller
// has no estimate (statistics never collected — the OOF-NA regime) the
// table starts at its minimum size and pays long chains, which is exactly
// the cost the paper's per-iteration ANALYZE avoids.
func (db *Database) Dedup(in *storage.Relation, estDistinct int, outName string) *storage.Relation {
	return exec.Dedup(db.pool, in, db.opts.Dedup, estDistinct, outName)
}

// Diff computes ∆R = Rδ − R with the given algorithm. The radix fan-out
// follows the build side, exactly like joins: OPSD builds over R, TPSD over
// the smaller input. Near fixpoint (tiny Rδ, huge R, TPSD) this keeps the
// diff unpartitioned instead of re-scattering all of R every iteration for
// a build that was cheap anyway.
func (db *Database) Diff(rdelta, r *storage.Relation, algo exec.DiffAlgorithm, outName string) *storage.Relation {
	build := r.NumTuples()
	if n := rdelta.NumTuples(); algo == exec.TPSD && n < build {
		build = n
	}
	return exec.SetDifferencePartitioned(db.pool, rdelta, r, algo, db.partitionsFor(build), outName)
}

// DeltaStep fuses Algorithm 1's dedup(Rt) + (Rδ − R) sequence into one
// per-partition pass over part's radix partitions — the partition-native
// replacement for the staged Dedup + Diff call pair. part must match the
// output partitioning registered for Rt's producing query so the carried
// partitions are consumed without a re-scatter; its key columns may be a
// join-key subset of the tuple (any keyset co-locates equal tuples), in
// which case the returned ∆R exits already scattered on the columns the
// next iteration's hash builds key on. ∆R carries the same partitioning, so
// AppendTo(R, ∆R) keeps R partition-native for the next iteration.
// estDistinct is the OOF estimate of |Rδ| (dedup pre-sizing, exactly as in
// Dedup).
func (db *Database) DeltaStep(tmp, full *storage.Relation, algo exec.DiffAlgorithm, part storage.Partitioning, estDistinct int, outName string) *storage.Relation {
	return exec.DeltaStep(db.pool, tmp, full, algo, part, estDistinct, outName)
}

// DeltaStepDual is DeltaStep with a secondary carried partitioning: accepted
// ∆R rows are scattered into both layouts inside the same fused pass, and
// the returned relation carries sec as its secondary view alongside part —
// the maintenance half of secondary carrying for conflicting-keyset
// predicates. With SecondaryCarry disabled (the ablation) it degrades to
// the plain DeltaStep.
func (db *Database) DeltaStepDual(tmp, full *storage.Relation, algo exec.DiffAlgorithm, part, sec storage.Partitioning, estDistinct int, outName string) *storage.Relation {
	if !db.opts.SecondaryCarry {
		return exec.DeltaStep(db.pool, tmp, full, algo, part, estDistinct, outName)
	}
	return exec.DeltaStepDual(db.pool, tmp, full, algo, part, sec, estDistinct, outName)
}

// EnsureSecondaryCarry makes a table carry a secondary partitioned view on
// sec, scattering once if missing — the recovery path after a fan-out shift
// invalidated the carried views or budget pressure dropped the secondary.
// In the steady state it is a no-op: R adopts ∆R's secondary view through
// the block-sharing merge, so no scatter runs here. Skipped (returns false)
// under the ablation, and under a memory budget whose headroom cannot fit
// the extra copy — secondary views are the first eviction candidates, so
// building one the manager would immediately drop again is pure thrash.
func (db *Database) EnsureSecondaryCarry(table string, sec storage.Partitioning) bool {
	if !db.opts.SecondaryCarry {
		return false
	}
	r, ok := db.cat.Get(table)
	if !ok {
		return false
	}
	if db.opts.MemBudgetBytes > 0 && db.mem.Headroom() < r.EstimatedBytes() {
		return false
	}
	return exec.EnsureSecondaryCarry(db.pool, r, sec.KeyCols, sec.Parts)
}

// PlanJoinKeys parses and binds one query (without executing it) and
// reports, per input table, the distinct join-key column sets under which
// the table enters a hash build or probe *directly* — as the first FROM
// item of a branch, the right side of any join step, or the inner side of
// an anti-join. The engine runs it once per stratum over the recursive
// queries to learn which key columns the fixpoint's joins will want each
// recursive relation partitioned on, before choosing the partitioning that
// is carried through the delta pipeline. Key positions where the table only
// enters as part of an accumulated join prefix are not attributable to the
// table alone and are ignored (a carried partitioning could not serve those
// builds anyway).
func (db *Database) PlanJoinKeys(q string) (map[string][][]int, error) {
	st, err := sql.Parse(q, db.schemaFn)
	if err != nil {
		return nil, err
	}
	var query *plan.Query
	switch s := st.(type) {
	case plan.InsertSelect:
		query = s.Query
	case plan.SelectStmt:
		query = s.Query
	default:
		return nil, fmt.Errorf("quickstep: PlanJoinKeys wants a query, got %T", st)
	}
	usage := make(map[string][][]int)
	add := func(table string, keys []int) {
		if len(keys) == 0 {
			return
		}
		for _, k := range usage[table] {
			if storage.KeyColsEqual(k, keys) {
				return
			}
		}
		usage[table] = append(usage[table], append([]int(nil), keys...))
	}
	for _, br := range query.Branches {
		// The join order is chosen at run time (per iteration), so the
		// keysets a table may build under are derived from the order-free
		// variable classes: for each partner u sharing a class with t, t can
		// enter a build keyed on its columns in classes shared with u (t
		// placed right after a prefix containing u), and keyed on all its
		// shared columns at once (t placed last). Both candidate forms are
		// reported; RankJoinKeysets and the carried-view chooser pick among
		// them exactly as they picked among the textual-order keysets.
		n := len(br.Tables)
		classes := br.VarClasses()
		classCols := make([]map[int][]int, n)
		for t := 0; t < n; t++ {
			classCols[t] = map[int][]int{}
			for c := 0; c < br.Arities[t]; c++ {
				k := classes[br.Offsets[t]+c]
				classCols[t][k] = append(classCols[t][k], c)
			}
		}
		for t := 0; t < n; t++ {
			var combined []int
			for u := 0; u < n; u++ {
				if u == t {
					continue
				}
				var pair []int
				for c := 0; c < br.Arities[t]; c++ {
					k := classes[br.Offsets[t]+c]
					if len(classCols[u][k]) > 0 {
						pair = append(pair, c)
					}
				}
				add(br.Tables[t], pair)
				for _, c := range pair {
					already := false
					for _, x := range combined {
						if x == c {
							already = true
							break
						}
					}
					if !already {
						combined = append(combined, c)
					}
				}
			}
			sort.Ints(combined)
			add(br.Tables[t], combined)
		}
		for _, aj := range br.AntiJoins {
			add(aj.Table, aj.InnerKeys)
			if len(br.Tables) == 1 {
				add(br.Tables[0], aj.OuterKeys)
			}
		}
	}
	return usage, nil
}

// Install registers a relation in the catalog (replacing any same-named
// table) and marks it dirty. Any replaced relation is left untouched (the
// caller may still hold it).
func (db *Database) Install(r *storage.Relation) error {
	db.cat.Adopt(r)
	return db.afterMutation(r.Name())
}

// InstallReplacing is Install plus epoch reclamation of the replaced
// relation: its blocks are released back to the pool. The engine uses it at
// the points of Algorithm 1 where the replaced table is provably dead — the
// previous iteration’s ∆R (whose blocks live on inside R through their
// adoption references) and superseded aggregate materializations.
func (db *Database) InstallReplacing(r *storage.Relation) error {
	old, _ := db.cat.Get(r.Name())
	db.cat.Adopt(r)
	if old != nil && old != r {
		old.Release()
	}
	return db.afterMutation(r.Name())
}

// AppendTo implements R ← R ⊎ ∆R: block-sharing append plus commit
// bookkeeping. When src carries a partitioning compatible with dst's, the
// per-partition block lists merge and dst stays partition-native.
func (db *Database) AppendTo(dst string, src *storage.Relation) error {
	d, ok := db.cat.Get(dst)
	if !ok {
		return fmt.Errorf("quickstep: append to unknown table %q", dst)
	}
	d.AppendRelation(src)
	db.pool.Copy.Adopted.Add(int64(src.NumTuples()))
	return db.afterMutation(dst)
}

// DropTable removes a table from the catalog directly, releasing its blocks
// — the teardown path for incremental-update side tables. Unlike a DROP
// TABLE statement it bypasses the planner and pool entirely, so it works
// even while the pool carries a recorded failure (a failed update must still
// tear its temporaries down). Dropping an unknown table is a no-op.
func (db *Database) DropTable(name string) {
	r, ok := db.cat.Get(name)
	if !ok {
		return
	}
	db.cat.Drop(name)
	db.stats.Drop(name)
	if db.txn != nil {
		db.txn.Forget(name)
	}
	r.Release()
	r.ReclaimRetired()
}

// AppendRowsTo appends raw tuples to a cataloged relation — the plus side of
// an EDB update. Rows land through the normal append path (cached partition
// views invalidate; base EDBs carry none, so nothing rescatters).
func (db *Database) AppendRowsTo(table string, rows [][]int32) error {
	r, ok := db.cat.Get(table)
	if !ok {
		return fmt.Errorf("quickstep: append rows to unknown table %q", table)
	}
	for _, row := range rows {
		r.Append(row)
	}
	return db.afterMutation(table)
}

// DeleteFrom removes the given tuples from a cataloged relation in place —
// DRed's physical deletion. Tuples not present are ignored; the count of
// rows actually removed is returned. The relation's carried partitioned
// view survives (only affected partitions compact); a sticky fault error on
// the relation aborts the call without mutating anything.
func (db *Database) DeleteFrom(table string, rows [][]int32) (int, error) {
	r, ok := db.cat.Get(table)
	if !ok {
		return 0, fmt.Errorf("quickstep: delete from unknown table %q", table)
	}
	n, err := r.DeleteRows(rows)
	if err != nil {
		return n, err
	}
	return n, db.afterMutation(table)
}

// BuildMembership hashes a cataloged relation into a reusable tuple-
// membership index (see exec.Membership). The caller releases it; the
// relation must stay unmutated while the handle is live. DRed builds one
// per deletion-affected stratum and probes it every over-delete round.
func (db *Database) BuildMembership(table string) (*exec.Membership, error) {
	r, ok := db.cat.Get(table)
	if !ok {
		return nil, fmt.Errorf("quickstep: membership over unknown table %q", table)
	}
	return exec.BuildMembership(db.pool, r), nil
}

// SemiProbe emits the rows of probe present in m — the semi-join companion
// of the set difference, used by DRed to keep only over-delete candidates
// actually present in R.
func (db *Database) SemiProbe(probe *storage.Relation, m *exec.Membership, outName string) *storage.Relation {
	return exec.SemiProbe(db.pool, probe, m, outName)
}

// FinalCommit persists all dirty tables (fixpoint reached).
func (db *Database) FinalCommit() error {
	if db.txn == nil {
		return nil
	}
	return db.txn.FinalCommit(db.cat)
}
