package quickstep

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/stats"
	"recstep/internal/quickstep/storage"
)

func openTest(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Options{Workers: 2, DisableIO: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func sortedRows(r *storage.Relation) [][]int32 {
	var out [][]int32
	r.ForEach(func(tu []int32) { out = append(out, append([]int32(nil), tu...)) })
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2), (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT y, x FROM arc")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{2, 1}, {3, 2}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("result = %v, want %v", got, want)
	}
}

func TestJoinQueryMatchesExpected(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		CREATE TABLE tc_delta (x INT, y INT);
		INSERT INTO arc VALUES (2, 4), (3, 5);
		INSERT INTO tc_delta VALUES (1, 2), (1, 3);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT t.x AS x, a.y AS y FROM tc_delta AS t, arc AS a WHERE t.y = a.x")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 4}, {1, 5}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("join = %v, want %v", got, want)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE a (x INT, y INT);
		CREATE TABLE b (x INT, y INT);
		CREATE TABLE c (x INT, y INT);
		INSERT INTO a VALUES (1, 10);
		INSERT INTO b VALUES (10, 20), (10, 30);
		INSERT INTO c VALUES (20, 99);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL(`SELECT a.x AS x, c.y AS y FROM a, b, c
		WHERE a.y = b.x AND b.y = c.x`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 99}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("3-way join = %v, want %v", got, want)
	}
}

func TestUnionAllBagSemantics(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT x, y FROM arc UNION ALL SELECT x, y FROM arc")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTuples() != 2 {
		t.Fatalf("UNION ALL tuples = %d, want 2", res.NumTuples())
	}
}

func TestInsertSelectAppends(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		CREATE TABLE tc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2), (2, 3);
		INSERT INTO tc SELECT x, y FROM arc;
		INSERT INTO tc SELECT x, y FROM arc;
	`); err != nil {
		t.Fatal(err)
	}
	tc, _ := db.Catalog().Get("tc")
	if tc.NumTuples() != 4 {
		t.Fatalf("tc tuples = %d, want 4 (bag append)", tc.NumTuples())
	}
}

func TestAggregationQuery(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE tc (x INT, y INT);
		INSERT INTO tc VALUES (1, 2), (1, 3), (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT x, COUNT(y) AS c FROM tc GROUP BY x")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 2}, {2, 1}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("agg = %v, want %v", got, want)
	}
}

func TestAggregateSelectOrderReordering(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE tc (x INT, y INT);
		INSERT INTO tc VALUES (1, 5), (1, 7);
	`); err != nil {
		t.Fatal(err)
	}
	// Aggregate listed before the group column.
	res, err := db.ExecSQL("SELECT MIN(y) AS m, x FROM tc GROUP BY x")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{5, 1}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("reordered agg = %v, want %v", got, want)
	}
}

func TestNotExistsQuery(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE node (x INT);
		CREATE TABLE tc (x INT, y INT);
		INSERT INTO node VALUES (1), (2);
		INSERT INTO tc VALUES (1, 2);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL(`SELECT n.x AS x, m.x AS y FROM node AS n, node AS m
		WHERE NOT EXISTS (SELECT * FROM tc AS t WHERE t.x = n.x AND t.y = m.x)`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 1}, {2, 1}, {2, 2}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("¬tc = %v, want %v", got, want)
	}
}

func TestSelfJoinWithInequality(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2), (1, 3);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL(`SELECT a.y AS x, b.y AS y FROM arc AS a, arc AS b
		WHERE a.x = b.x AND a.y <> b.y`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{2, 3}, {3, 2}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("sg base = %v, want %v", got, want)
	}
}

func TestDropTable(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`CREATE TABLE tmp (x INT); DROP TABLE tmp;`); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Catalog().Get("tmp"); ok {
		t.Fatal("table survived DROP")
	}
	if _, err := db.ExecSQL("DROP TABLE tmp"); err == nil {
		t.Fatal("dropping missing table should error")
	}
	if _, err := db.ExecSQL("DROP TABLE IF EXISTS tmp"); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPaths(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`CREATE TABLE arc (x INT, y INT)`); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"CREATE TABLE arc (x INT)",          // duplicate
		"INSERT INTO missing VALUES (1)",    // unknown table
		"INSERT INTO arc VALUES (1)",        // arity mismatch
		"INSERT INTO arc SELECT x FROM arc", // arity mismatch via select
		"SELECT z FROM arc",                 // unknown column
	}
	for _, q := range bad {
		if _, err := db.ExecSQL(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestAnalyzeAndStats(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2), (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Analyze("arc", stats.ModeSelective)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTuples != 2 {
		t.Fatalf("NumTuples = %d, want 2", st.NumTuples)
	}
	// Mutation invalidates.
	if _, err := db.ExecSQL("INSERT INTO arc VALUES (5, 6)"); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Stats("arc")
	if !ok || got.Fresh {
		t.Fatal("stats should be stale after mutation")
	}
	if _, err := db.Analyze("missing", stats.ModeSelective); err == nil {
		t.Fatal("ANALYZE of missing table should error")
	}
}

func TestDedupAndDiffKernelCalls(t *testing.T) {
	db := openTest(t)
	raw := storage.NewRelation("raw", []string{"x", "y"})
	raw.Append([]int32{1, 1})
	raw.Append([]int32{1, 1})
	raw.Append([]int32{2, 2})
	deduped := db.Dedup(raw, 0, "rdelta")
	if deduped.NumTuples() != 2 {
		t.Fatalf("dedup tuples = %d, want 2", deduped.NumTuples())
	}
	full := storage.NewRelation("full", []string{"x", "y"})
	full.Append([]int32{1, 1})
	delta := db.Diff(deduped, full, exec.OPSD, "delta")
	if delta.NumTuples() != 1 {
		t.Fatalf("diff tuples = %d, want 1", delta.NumTuples())
	}
}

func TestInstallAndAppendTo(t *testing.T) {
	db := openTest(t)
	r := storage.NewRelation("tc", []string{"x", "y"})
	r.Append([]int32{1, 2})
	if err := db.Install(r); err != nil {
		t.Fatal(err)
	}
	d := storage.NewRelation("delta", []string{"x", "y"})
	d.Append([]int32{3, 4})
	if err := db.AppendTo("tc", d); err != nil {
		t.Fatal(err)
	}
	if got := db.Catalog().MustGet("tc").NumTuples(); got != 2 {
		t.Fatalf("tc tuples = %d, want 2", got)
	}
	if err := db.AppendTo("missing", d); err == nil {
		t.Fatal("append to missing table should error")
	}
}

func TestQueriesIssuedCounter(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`CREATE TABLE t (x INT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if got := db.QueriesIssued(); got != 2 {
		t.Fatalf("QueriesIssued = %d, want 2", got)
	}
}

func TestEOSTIntegration(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Workers: 1, EOST: false, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2);
		INSERT INTO arc VALUES (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	if got := db.Txn().Commits(); got != 2 {
		t.Fatalf("non-EOST commits = %d, want 2", got)
	}

	db2, err := Open(Options{Workers: 1, EOST: true, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		INSERT INTO arc VALUES (1, 2);
		INSERT INTO arc VALUES (2, 3);
	`); err != nil {
		t.Fatal(err)
	}
	if got := db2.Txn().Commits(); got != 0 {
		t.Fatalf("EOST commits before fixpoint = %d, want 0", got)
	}
	if err := db2.FinalCommit(); err != nil {
		t.Fatal(err)
	}
	if got := db2.Txn().Commits(); got != 1 {
		t.Fatalf("EOST commits after FinalCommit = %d, want 1", got)
	}
}

func TestArithmeticInSelect(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE warc (x INT, y INT, d INT);
		INSERT INTO warc VALUES (1, 2, 10);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT y, x + d AS v FROM warc")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{2, 11}}
	if got := sortedRows(res); !reflect.DeepEqual(got, want) {
		t.Fatalf("arith = %v, want %v", got, want)
	}
}

func TestPlanJoinKeys(t *testing.T) {
	db := openTest(t)
	if err := db.ExecScript(`
		CREATE TABLE arc (x INT, y INT);
		CREATE TABLE tc (x INT, y INT);
		CREATE TABLE tc_d (x INT, y INT)`); err != nil {
		t.Fatal(err)
	}
	// Linear-TC shape: the delta enters keyed on its column 1, arc on 0.
	usage, err := db.PlanJoinKeys("INSERT INTO tc SELECT t.x, a.y FROM tc_d AS t, arc AS a WHERE t.y = a.x")
	if err != nil {
		t.Fatal(err)
	}
	if got := usage["tc_d"]; !reflect.DeepEqual(got, [][]int{{1}}) {
		t.Fatalf("tc_d keysets = %v, want [[1]]", got)
	}
	if got := usage["arc"]; !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("arc keysets = %v, want [[0]]", got)
	}

	// Non-linear shape: the full relation enters keyed on column 0 in the
	// same statement; both usages must be reported, deduplicated.
	usage, err = db.PlanJoinKeys(
		"SELECT t.x, f.y FROM tc_d AS t, tc AS f WHERE t.y = f.x UNION ALL SELECT t.x, f.y FROM tc_d AS t, tc AS f WHERE t.y = f.x")
	if err != nil {
		t.Fatal(err)
	}
	if got := usage["tc"]; !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("tc keysets = %v, want [[0]] (deduplicated across branches)", got)
	}
	if got := usage["tc_d"]; !reflect.DeepEqual(got, [][]int{{1}}) {
		t.Fatalf("tc_d keysets = %v, want [[1]]", got)
	}

	if _, err := db.PlanJoinKeys("DROP TABLE arc"); err == nil {
		t.Fatal("PlanJoinKeys accepted a non-query statement")
	}
}

func TestCarriedBuildPartsOverride(t *testing.T) {
	db, err := Open(Options{Workers: 4, DisableIO: true, CarryJoinParts: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`
		CREATE TABLE probe (x INT, y INT);
		CREATE TABLE build (x INT, y INT)`); err != nil {
		t.Fatal(err)
	}
	build, _ := db.Catalog().Get("build")
	probe, _ := db.Catalog().Get("probe")
	rows := make([]int32, 0, 4000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, int32(i), int32(i%97))
	}
	build.AppendRows(rows)
	probe.AppendRows(rows[:400])
	// The optimizer builds on the smaller side — probe here. Carry a
	// join-key partitioning on it, then join on exactly those keys: the
	// build must be served in place, no scatter.
	exec.PartitionRelationCarried(db.Pool(), probe, []int{0}, 32)
	before := db.CopySnapshot()
	if _, err := db.ExecSQL("SELECT p.y, b.y FROM probe AS p, build AS b WHERE p.x = b.x"); err != nil {
		t.Fatal(err)
	}
	d := db.CopySnapshot().Sub(before)
	if d.BuildScattersAvoided != 1 || d.BuildScatters != 0 {
		t.Fatalf("carried join build: avoided=%d scatters=%d, want 1/0", d.BuildScattersAvoided, d.BuildScatters)
	}
}
