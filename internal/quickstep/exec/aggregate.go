package exec

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"recstep/internal/obs"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// AggFunc enumerates the aggregation operators RecStep's Datalog dialect
// supports (Section 3.3): MIN, MAX, SUM, COUNT, AVG.
type AggFunc int

// Aggregation operators.
const (
	AggMin AggFunc = iota
	AggMax
	AggSum
	AggCount
	AggAvg
)

// String renders the SQL name.
func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	}
	return "?"
}

// AggSpec is one aggregate in a SELECT list: Func applied to Arg.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	min, max   int32
	sum, count int64
}

func newAggState() aggState {
	return aggState{min: math.MaxInt32, max: math.MinInt32}
}

func (s *aggState) add(v int32) {
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sum += int64(v)
	s.count++
}

func (s *aggState) merge(o aggState) {
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.sum += o.sum
	s.count += o.count
}

func (s *aggState) final(f AggFunc) int32 {
	switch f {
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	case AggSum:
		return int32(s.sum)
	case AggCount:
		return int32(s.count)
	case AggAvg:
		if s.count == 0 {
			return 0
		}
		return int32(s.sum / s.count) // integer AVG, like QuickStep over INT columns
	}
	panic(fmt.Sprintf("exec: unknown aggregate %d", f))
}

// groupState holds the group key values plus one state per aggregate.
type groupState struct {
	vals   []int32
	states []aggState
}

// accumulateBlocks folds one block list into a local group table. The scan
// walks each block's flat data directly in arity-strided chunks — the
// grouping map dominates, but the chunked walk drops the per-row accessor
// call and its bounds re-check.
func accumulateBlocks(blocks []*storage.Block, groupBy []int, aggs []AggSpec, local map[string]*groupState, keyBuf []byte) {
	for _, b := range blocks {
		arity := b.Arity()
		data := b.Data()
		for off := 0; off < len(data); off += arity {
			row := data[off : off+arity : off+arity]
			k := packColsString(row, groupBy, keyBuf)
			g, ok := local[k]
			if !ok {
				vals := make([]int32, len(groupBy))
				for j, c := range groupBy {
					vals[j] = row[c]
				}
				states := make([]aggState, len(aggs))
				for j := range states {
					states[j] = newAggState()
				}
				g = &groupState{vals: vals, states: states}
				local[k] = g
			}
			for j, a := range aggs {
				g.states[j].add(a.Arg.Eval(row))
			}
		}
	}
}

// emitGroups appends finalized groups in sorted key order (deterministic
// output within one grouping table).
func emitGroups(groups map[string]*groupState, groupBy []int, aggs []AggSpec, emit func(row []int32)) {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	row := make([]int32, len(groupBy)+len(aggs))
	for _, k := range keys {
		g := groups[k]
		copy(row, g.vals)
		for j, a := range aggs {
			row[len(groupBy)+j] = g.states[j].final(a.Func)
		}
		emit(row)
	}
}

// HashAggregate groups in by the groupBy column positions and computes aggs
// per group. Output columns are the group columns followed by one column per
// aggregate. Runs with per-worker partial tables merged at the end, so group
// updates never contend.
func HashAggregate(pool *Pool, in *storage.Relation, groupBy []int, aggs []AggSpec, outName string, outCols []string) *storage.Relation {
	if len(aggs) == 0 {
		panic("exec: HashAggregate requires at least one aggregate")
	}
	defer pool.phase(obs.PhaseAggregate, -1)()
	blocks := in.Blocks()
	workers := pool.Workers()
	partials := make([]map[string]*groupState, workers)

	var nextBlock atomic.Int64
	pool.RunWorkers(workers, func(worker, numWorkers int) {
		local := make(map[string]*groupState)
		partials[worker] = local
		keyBuf := make([]byte, 4*len(groupBy))
		for {
			t := int(nextBlock.Add(1)) - 1
			if t >= len(blocks) || pool.Aborted() {
				return
			}
			accumulateBlocks(blocks[t:t+1], groupBy, aggs, local, keyBuf)
		}
	})

	// Merge partials (serial; group cardinality is small relative to input).
	merged := make(map[string]*groupState)
	for _, local := range partials {
		if local == nil {
			continue
		}
		for k, g := range local {
			m, ok := merged[k]
			if !ok {
				merged[k] = g
				continue
			}
			for j := range m.states {
				m.states[j].merge(g.states[j])
			}
		}
	}

	if outCols == nil {
		outCols = storage.NumberedColumns(len(groupBy) + len(aggs))
	}
	out := storage.NewRelation(outName, outCols)
	// Deterministic output order helps tests and output files.
	emitGroups(merged, groupBy, aggs, func(row []int32) { out.Append(row) })
	return out
}

// HashAggregatePartitioned is HashAggregate over parts radix partitions of
// the input on its group-by columns. A group's rows all land in the same
// partition, so each partition aggregates and finalizes independently —
// no cross-worker merge phase at all. Global aggregation (no group-by) and
// parts <= 1 fall back to the merge-based path.
func HashAggregatePartitioned(pool *Pool, in *storage.Relation, groupBy []int, aggs []AggSpec, parts int, outName string, outCols []string) *storage.Relation {
	parts = storage.NormalizePartitions(parts)
	if parts <= 1 || len(groupBy) == 0 {
		return HashAggregate(pool, in, groupBy, aggs, outName, outCols)
	}
	if len(aggs) == 0 {
		panic("exec: HashAggregate requires at least one aggregate")
	}
	view := PartitionRelation(pool, in, groupBy, parts)
	col := newCollector(pool, storage.CatIntermediate, len(groupBy)+len(aggs), parts)
	pool.RunPartitions(parts, func(p int) {
		defer pool.phase(obs.PhaseAggregate, p)()
		local := make(map[string]*groupState)
		keyBuf := make([]byte, 4*len(groupBy))
		accumulateBlocks(view.Blocks(p), groupBy, aggs, local, keyBuf)
		emitGroups(local, groupBy, aggs, col.sink(p))
	})
	return col.into(outName, outCols)
}
