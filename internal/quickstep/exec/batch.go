package exec

import (
	"sync"
	"sync/atomic"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/gscht"
	"recstep/internal/quickstep/kernels"
	"recstep/internal/quickstep/storage"
)

// The batch-at-a-time execution paths. Operators walk blocks in windows of
// kernels.BatchRows rows and hand whole windows to the kernels package and
// the batched GSCHT entry points: pack the window's keys in one branch-free
// loop, insert/probe the table in one pass that hoists the hash arithmetic
// out of the chain walks, select the surviving rows into a selection
// vector, gather them into a row-major run and emit that run with one
// AppendBulk copy. The tuple-at-a-time paths remain as the -columnar=false
// ablation (and as the fallback for arities the compact keys cannot pack).

// MinColumnarRows is the row count below which a block is consumed from its
// row-major data even on the batch path: the column transpose costs a full
// pass plus a pool allocation, which only pays off on blocks big enough to
// amortize it — above the threshold the cached transpose is built once and
// reused every time the (immutable) block is re-read, which for R's carried
// partitions means every remaining fixpoint iteration. The optimizer's
// layout choice (optimizer.UseBatchKernels) exposes the same gate to the
// planning layer.
const MinColumnarRows = 256

// batchBuf is the per-pass scratch of the batch kernels: packed keys,
// bucket indices, probe results, a selection vector and a gather buffer,
// all sized for one kernels.BatchRows window at arity ≤ 4. Passes borrow
// one from a sync.Pool so a 1024-partition delta step does not allocate a
// thousand ~50 KiB scratch sets per iteration.
type batchBuf struct {
	keys   []uint64
	lo, hi []uint64
	hash   []uint64
	bidx   []int32
	hits   []bool
	sel    []int32
	gather []int32
	scat   []int32
	counts []int32
	cols   [][]int32
}

var batchBufPool = sync.Pool{New: func() any {
	n := kernels.BatchRows
	return &batchBuf{
		keys:   make([]uint64, n),
		lo:     make([]uint64, n),
		hi:     make([]uint64, n),
		hash:   make([]uint64, n),
		bidx:   make([]int32, n),
		hits:   make([]bool, n),
		sel:    make([]int32, 0, n),
		gather: make([]int32, 4*n),
		scat:   make([]int32, 4*n),
		cols:   make([][]int32, 0, 8),
	}
}}

func getBatchBuf() *batchBuf  { return batchBufPool.Get().(*batchBuf) }
func putBatchBuf(b *batchBuf) { b.cols = b.cols[:0]; batchBufPool.Put(b) }

// blockCols returns the per-column views of b when the cached transpose
// pays (see MinColumnarRows), nil to pack from the row-major data.
func blockCols(b *storage.Block, arity int, buf *batchBuf) [][]int32 {
	if b.Rows() < MinColumnarRows {
		return nil
	}
	cols := buf.cols[:0]
	for c := 0; c < arity; c++ {
		cols = append(cols, b.Col(c))
	}
	buf.cols = cols
	return cols
}

// packWindow fills buf's key scratch for rows [off, off+bn) — from the
// column views when cols is non-nil, in one strided pass over the row-major
// data otherwise. Arity ≤ 2 lands in buf.keys, arity 3–4 in buf.hi/buf.lo.
func packWindow(data []int32, cols [][]int32, arity, off, bn int, buf *batchBuf) {
	if arity <= 2 {
		if cols == nil {
			kernels.PackRows64(data[off*arity:(off+bn)*arity], arity, buf.keys)
		} else if arity == 1 {
			kernels.PackKeys1(cols[0][off:off+bn], buf.keys)
		} else {
			kernels.PackKeys2(cols[0][off:off+bn], cols[1][off:off+bn], buf.keys)
		}
		return
	}
	if cols == nil {
		kernels.PackRows128(data[off*arity:(off+bn)*arity], arity, buf.hi, buf.lo)
	} else if arity == 3 {
		kernels.PackKeys3(cols[0][off:off+bn], cols[1][off:off+bn], cols[2][off:off+bn], buf.hi, buf.lo)
	} else {
		kernels.PackKeys4(cols[0][off:off+bn], cols[1][off:off+bn], cols[2][off:off+bn], cols[3][off:off+bn], buf.hi, buf.lo)
	}
}

// batchable reports whether the set is backed by a compact-key table the
// batched GSCHT entry points can drive (arity ≤ 4; the generic locked map
// stays tuple-at-a-time).
func (s *tupleSet) batchable() bool { return s.t64 != nil || s.t128 != nil }

// batchInsertBlocks inserts every tuple of blocks into set through the
// batched GSCHT path, bulk-emitting each fresh tuple's row when emit is
// non-nil. local selects the single-writer insert (partition-private
// tables); useCols selects the cached column layout for blocks re-read
// across iterations (R's carried partitions) — data scanned exactly once
// packs straight from its row-major form.
func batchInsertBlocks(set *tupleSet, blocks []*storage.Block, arity int, ar *setArena, local, useCols bool, buf *batchBuf, emit func(rows []int32)) {
	for _, b := range blocks {
		n := b.Rows()
		if n == 0 {
			continue
		}
		data := b.Data()
		var cols [][]int32
		if useCols {
			cols = blockCols(b, arity, buf)
		}
		for off := 0; off < n; off += kernels.BatchRows {
			bn := min(kernels.BatchRows, n-off)
			packWindow(data, cols, arity, off, bn, buf)
			sel := buf.sel[:0]
			if set.t64 != nil {
				keys := buf.keys[:bn]
				if local {
					sel = set.t64.InsertBatchLocal(keys, buf.bidx, &ar.a64, int32(off), sel)
				} else {
					sel = set.t64.InsertBatch(keys, buf.bidx, &ar.a64, int32(off), sel)
				}
			} else {
				lo, hi := buf.lo[:bn], buf.hi[:bn]
				if local {
					sel = set.t128.InsertBatchLocal(lo, hi, buf.bidx, &ar.a128, int32(off), sel)
				} else {
					sel = set.t128.InsertBatch(lo, hi, buf.bidx, &ar.a128, int32(off), sel)
				}
			}
			buf.sel = sel[:0]
			if emit != nil && len(sel) > 0 {
				emit(kernels.GatherSelect(data, arity, sel, buf.gather))
			}
		}
	}
}

// batchBuildBlocks seeds set with blocks whose tuples the engine guarantees
// distinct (R feeding an OPSD diff table: the fixpoint relation is
// duplicate-free by construction), through the no-dup-check bulk-build
// kernel. Single-writer only.
func batchBuildBlocks(set *tupleSet, blocks []*storage.Block, arity int, ar *setArena, useCols bool, buf *batchBuf) {
	for _, b := range blocks {
		n := b.Rows()
		if n == 0 {
			continue
		}
		data := b.Data()
		var cols [][]int32
		if useCols {
			cols = blockCols(b, arity, buf)
		}
		for off := 0; off < n; off += kernels.BatchRows {
			bn := min(kernels.BatchRows, n-off)
			packWindow(data, cols, arity, off, bn, buf)
			if set.t64 != nil {
				set.t64.InsertBatchBuild(buf.keys[:bn], buf.bidx, &ar.a64)
			} else {
				set.t128.InsertBatchBuild(buf.lo[:bn], buf.hi[:bn], buf.bidx, &ar.a128)
			}
		}
	}
}

// batchAntiProbeBlocks bulk-emits the rows of blocks absent from set.
func batchAntiProbeBlocks(set *tupleSet, blocks []*storage.Block, arity int, useCols bool, buf *batchBuf, emit func(rows []int32)) {
	for _, b := range blocks {
		n := b.Rows()
		if n == 0 {
			continue
		}
		data := b.Data()
		var cols [][]int32
		if useCols {
			cols = blockCols(b, arity, buf)
		}
		for off := 0; off < n; off += kernels.BatchRows {
			bn := min(kernels.BatchRows, n-off)
			packWindow(data, cols, arity, off, bn, buf)
			if set.t64 != nil {
				set.t64.ProbeBatch(buf.keys[:bn], buf.bidx, buf.hits)
			} else {
				set.t128.ProbeBatch(buf.lo[:bn], buf.hi[:bn], buf.bidx, buf.hits)
			}
			sel := kernels.SelectMisses(buf.hits[:bn], int32(off), buf.sel[:0])
			buf.sel = sel[:0]
			if len(sel) > 0 {
				emit(kernels.GatherSelect(data, arity, sel, buf.gather))
			}
		}
	}
}

// batchAntiProbeRows is batchAntiProbeBlocks over a flat row-major buffer
// (the TPSD candidate list).
func batchAntiProbeRows(set *tupleSet, rows []int32, arity int, buf *batchBuf, emit func(rows []int32)) {
	n := len(rows) / arity
	for off := 0; off < n; off += kernels.BatchRows {
		bn := min(kernels.BatchRows, n-off)
		win := rows[off*arity : (off+bn)*arity]
		if set.t64 != nil {
			kernels.PackRows64(win, arity, buf.keys)
			set.t64.ProbeBatch(buf.keys[:bn], buf.bidx, buf.hits)
		} else {
			kernels.PackRows128(win, arity, buf.hi, buf.lo)
			set.t128.ProbeBatch(buf.lo[:bn], buf.hi[:bn], buf.bidx, buf.hits)
		}
		sel := kernels.SelectMisses(buf.hits[:bn], int32(off), buf.sel[:0])
		buf.sel = sel[:0]
		if len(sel) > 0 {
			emit(kernels.GatherSelect(rows, arity, sel, buf.gather))
		}
	}
}

// batchIntersect probes bset with every tuple of blocks and inserts the
// hits into inter — TPSD's intersection marking, r∩ = R ∩ Rδ. The hit keys
// are compacted in place after the probe, so the insert pass runs over a
// dense key batch.
func batchIntersect(bset, inter *tupleSet, blocks []*storage.Block, arity int, ar *setArena, local, useCols bool, buf *batchBuf) {
	for _, b := range blocks {
		n := b.Rows()
		if n == 0 {
			continue
		}
		data := b.Data()
		var cols [][]int32
		if useCols {
			cols = blockCols(b, arity, buf)
		}
		for off := 0; off < n; off += kernels.BatchRows {
			bn := min(kernels.BatchRows, n-off)
			packWindow(data, cols, arity, off, bn, buf)
			if bset.t64 != nil {
				bset.t64.ProbeBatch(buf.keys[:bn], buf.bidx, buf.hits)
				m := 0
				for i, h := range buf.hits[:bn] {
					if h {
						buf.keys[m] = buf.keys[i]
						m++
					}
				}
				if m == 0 {
					continue
				}
				if local {
					inter.t64.InsertBatchLocal(buf.keys[:m], buf.bidx, &ar.a64, 0, buf.sel[:0])
				} else {
					inter.t64.InsertBatch(buf.keys[:m], buf.bidx, &ar.a64, 0, buf.sel[:0])
				}
			} else {
				bset.t128.ProbeBatch(buf.lo[:bn], buf.hi[:bn], buf.bidx, buf.hits)
				m := 0
				for i, h := range buf.hits[:bn] {
					if h {
						buf.lo[m] = buf.lo[i]
						buf.hi[m] = buf.hi[i]
						m++
					}
				}
				if m == 0 {
					continue
				}
				if local {
					inter.t128.InsertBatchLocal(buf.lo[:m], buf.hi[:m], buf.bidx, &ar.a128, 0, buf.sel[:0])
				} else {
					inter.t128.InsertBatch(buf.lo[:m], buf.hi[:m], buf.bidx, &ar.a128, 0, buf.sel[:0])
				}
			}
		}
	}
}

// deltaPartitionBatch is the batched fused dedup + set-difference pass over
// one partition: deltaPartition's semantics, kernel-at-a-time. lc is the
// pass-private lifecycle (a per-worker magazine under a managed pool), emit
// receives row-major runs of accepted ∆R rows.
func deltaPartitionBatch(pool *Pool, lc storage.Lifecycle, tmpBlocks, rBlocks []*storage.Block, tmpRows, rRows int, algo DiffAlgorithm, arity, estDistinct int, emit func(rows []int32)) {
	if tmpRows == 0 {
		return
	}
	buf := getBatchBuf()
	defer putBatchBuf(buf)
	var ar setArena
	if rRows == 0 {
		// Nothing to subtract: the pass degenerates to pure dedup.
		set := newTupleSet(lc, arity, estDistinct)
		batchInsertBlocks(set, tmpBlocks, arity, &ar, true, false, buf, emit)
		pool.observeChains(set)
		set.release()
		return
	}
	if algo == TPSD && tmpRows < rRows {
		// TPSD flavour: dedup Rt into a table + candidate buffer, mark the
		// intersection by probing R, anti-probe the candidates.
		dset := newTupleSet(lc, arity, min(tmpRows, estDistinct))
		cand := make([]int32, 0, min(tmpRows, estDistinct)*arity)
		batchInsertBlocks(dset, tmpBlocks, arity, &ar, true, false, buf, func(rows []int32) {
			cand = append(cand, rows...)
		})
		inter := newTupleSet(lc, arity, min(len(cand)/arity, rRows))
		batchIntersect(dset, inter, rBlocks, arity, &ar, true, true, buf)
		pool.observeChains(dset)
		dset.release()
		batchAntiProbeRows(inter, cand, arity, buf, emit)
		inter.release()
		return
	}
	// OPSD flavour: seed the dedup table with R (reading R's carried blocks
	// through their cached column layout; R is duplicate-free, so the seed
	// skips the dup-check walk entirely), then one batched insert pass over
	// Rt answers dedup and diff at once.
	set := newTupleSet(lc, arity, rRows+estDistinct)
	batchBuildBlocks(set, rBlocks, arity, &ar, true, buf)
	batchInsertBlocks(set, tmpBlocks, arity, &ar, true, false, buf, emit)
	pool.observeChains(set)
	set.release()
}

// deltaSharedBatch is deltaShared on the batch path: the same shared
// latch-free table semantics, with the concurrent batched inserts and bulk
// block emission replacing the per-row closures.
func deltaSharedBatch(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, arity, estDistinct int, outName string) *storage.Relation {
	tmpBlocks := tmp.Blocks()
	tmpRows, rRows := tmp.NumTuples(), full.NumTuples()
	// A one-worker pool runs every task on a single goroutine, so the shared
	// table has exactly one writer and the batch kernels can drop the CAS
	// publish — the Local fast path the scalar shared loop has no analogue of.
	local := pool.Workers() == 1

	dedupEmit := func(set *tupleSet) *storage.Relation {
		col := newCollector(pool, storage.CatDelta, arity, len(tmpBlocks))
		pool.Run(len(tmpBlocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchInsertBlocks(set, tmpBlocks[task:task+1], arity, &ar, local, false, buf, col.sinkBulk(task))
		})
		return col.into(outName, tmp.ColNames())
	}

	switch {
	case tmpRows == 0:
		return storage.NewRelation(outName, tmp.ColNames())
	case rRows == 0:
		set := newTupleSet(pool.alloc, arity, estDistinct)
		out := dedupEmit(set)
		pool.observeChains(set)
		set.release()
		return out
	case algo == TPSD && tmpRows < rRows:
		dset := newTupleSet(pool.alloc, arity, min(tmpRows, estDistinct))
		candCol := newCollector(pool, storage.CatIntermediate, arity, len(tmpBlocks))
		pool.Run(len(tmpBlocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchInsertBlocks(dset, tmpBlocks[task:task+1], arity, &ar, local, false, buf, candCol.sinkBulk(task))
		})
		cand := candCol.into(outName, tmp.ColNames())
		inter := newTupleSet(pool.alloc, arity, min(cand.NumTuples(), rRows))
		rBlocks := full.Blocks()
		pool.Run(len(rBlocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchIntersect(dset, inter, rBlocks[task:task+1], arity, &ar, local, true, buf)
		})
		pool.observeChains(dset)
		dset.release()
		out := antiProbe(pool, cand, inter, outName)
		inter.release()
		cand.Release()
		return out
	default:
		set := newTupleSet(pool.alloc, arity, rRows+estDistinct)
		rBlocks := full.Blocks()
		pool.Run(len(rBlocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			if local {
				// One worker ⇒ single writer, and R is duplicate-free: the
				// seed can bulk-build without dup checks.
				batchBuildBlocks(set, rBlocks[task:task+1], arity, &ar, true, buf)
			} else {
				batchInsertBlocks(set, rBlocks[task:task+1], arity, &ar, false, true, buf, nil)
			}
		})
		out := dedupEmit(set)
		pool.observeChains(set)
		set.release()
		return out
	}
}

// colConstPred is a comparison between one column and one constant — the
// predicate shape the selection-vector kernels evaluate without a per-row
// expression walk.
type colConstPred struct {
	col int
	op  int
	val int32
}

// mirrorCmp flips a comparison across its operands (5 < x ⇔ x > 5).
func mirrorCmp(op expr.CmpOp) int {
	switch op {
	case expr.LT:
		return kernels.CmpGT
	case expr.LE:
		return kernels.CmpGE
	case expr.GT:
		return kernels.CmpLT
	case expr.GE:
		return kernels.CmpLE
	default:
		return int(op) // EQ and NE are symmetric
	}
}

// colConstPreds extracts the column-vs-constant form of every predicate, or
// reports that some predicate needs the general evaluator. The kernels Cmp*
// codes mirror expr.CmpOp value-for-value, so the direct form converts with
// a plain int cast.
func colConstPreds(preds []expr.Cmp) ([]colConstPred, bool) {
	out := make([]colConstPred, 0, len(preds))
	for _, p := range preds {
		if c, ok := p.L.(expr.Col); ok {
			if l, ok := p.R.(expr.Lit); ok {
				out = append(out, colConstPred{col: c.Index, op: int(p.Op), val: l.Value})
				continue
			}
		}
		if l, ok := p.L.(expr.Lit); ok {
			if c, ok := p.R.(expr.Col); ok {
				out = append(out, colConstPred{col: c.Index, op: mirrorCmp(p.Op), val: l.Value})
				continue
			}
		}
		return nil, false
	}
	return out, true
}

// batchSelectProject is the selection-vector scan: per window, the first
// predicate filters its column into a selection vector, the remaining
// predicates refine it in place, and the survivors are gathered through the
// projection's columns in one column-at-a-time pass. Flat outputs land in
// bulk; partitioned outputs route the gathered rows through the scatter
// writer row-wise (the filter and gather still run batched).
func batchSelectProject(pool *Pool, col *collector, blocks []*storage.Block, preds []colConstPred, idx []int) {
	if len(blocks) == 0 {
		return
	}
	scan := func(b *storage.Block, buf *batchBuf, emitBulk func(rows []int32)) {
		n := b.Rows()
		if n == 0 {
			return
		}
		pool.observeBatch(n)
		projCols := buf.cols[:0]
		for _, c := range idx {
			projCols = append(projCols, b.Col(c))
		}
		buf.cols = projCols
		for off := 0; off < n; off += kernels.BatchRows {
			bn := min(kernels.BatchRows, n-off)
			var sel []int32
			if len(preds) == 0 {
				sel = buf.sel[:0]
				for i := 0; i < bn; i++ {
					sel = append(sel, int32(off+i))
				}
			} else {
				p0 := preds[0]
				sel = kernels.FilterCmp(b.Col(p0.col)[off:off+bn], p0.op, p0.val, int32(off), buf.sel[:0])
				for _, p := range preds[1:] {
					sel = kernels.RefineCmp(b.Col(p.col), p.op, p.val, sel)
				}
			}
			buf.sel = sel[:0]
			if len(sel) == 0 {
				continue
			}
			emitBulk(kernels.GatherRows(projCols, sel, buf.gather))
		}
	}
	if col.part == nil {
		pool.Run(len(blocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			scan(blocks[task], buf, col.sinkBulk(task))
		})
		return
	}
	var next atomic.Int64
	pool.RunWorkers(len(blocks), func(worker, _ int) {
		buf := getBatchBuf()
		defer putBatchBuf(buf)
		emit := col.sink(worker)
		w := len(idx)
		emitBulk := func(rows []int32) {
			for off := 0; off < len(rows); off += w {
				emit(rows[off : off+w])
			}
		}
		for {
			t := int(next.Add(1)) - 1
			if t >= len(blocks) || pool.Aborted() {
				return
			}
			scan(blocks[t], buf, emitBulk)
		}
	})
}

// batchJoinProbe drives one probe block through the join's build maps in
// kernel-sized windows: the key columns are gathered into contiguous
// scratch columns, packed and partition-hashed in batch loops, so the
// per-row residue is only the map lookup and the match expansion. fn
// receives each matching probe row with its build table and locator list.
func batchJoinProbe(jt *joinTable, b *storage.Block, probeKeys []int, buf *batchBuf, fn func(row []int32, bt *buildTable, matches []int32)) {
	n := b.Rows()
	if n == 0 {
		return
	}
	arity := b.Arity()
	data := b.Data()
	nk := len(probeKeys)
	use64 := nk <= 2
	kcols := buf.cols[:0]
	for j := 0; j < nk; j++ {
		kcols = append(kcols, buf.gather[j*kernels.BatchRows:(j+1)*kernels.BatchRows])
	}
	buf.cols = kcols
	for off := 0; off < n; off += kernels.BatchRows {
		bn := min(kernels.BatchRows, n-off)
		for j, c := range probeKeys {
			dst := kcols[j][:bn]
			for i := range dst {
				dst[i] = data[(off+i)*arity+c]
			}
			kcols[j] = dst
		}
		if use64 {
			kernels.PackKeyCols(kcols, buf.keys)
		} else {
			kernels.PackKeyCols128(kcols, buf.hi, buf.lo)
		}
		if jt.parts > 1 {
			kernels.HashColumns(kcols, buf.hash)
		}
		for i := 0; i < bn; i++ {
			bt := jt.single
			if jt.parts > 1 {
				bt = jt.tables[storage.PartitionOf(buf.hash[i], jt.parts)]
			}
			var matches []int32
			if use64 {
				matches = bt.by64[buf.keys[i]]
			} else {
				matches = bt.by128[gscht.Key128{Hi: buf.hi[i], Lo: buf.lo[i]}]
			}
			if len(matches) == 0 {
				continue
			}
			r := (off + i) * arity
			fn(data[r:r+arity:r+arity], bt, matches)
		}
	}
}

// batchScatterBlock routes one block's rows into w's per-partition open
// blocks a window at a time: gather the key columns, hash the whole window
// in one branch-free pass, then counting-sort the window's rows into
// partition-contiguous runs so each partition receives one chunked AppendBulk
// copy instead of a bounds-checked per-row Append. This is the batch-mode
// scatter — the per-row write path remains as the -columnar=false ablation.
func batchScatterBlock(w *partWriter, data []int32, arity int, buf *batchBuf) {
	n := len(data) / arity
	if buf.counts == nil || len(buf.counts) < w.parts {
		buf.counts = make([]int32, w.parts)
	}
	counts := buf.counts[:w.parts]
	for off := 0; off < n; off += kernels.BatchRows {
		bn := kernels.BatchRows
		if n-off < bn {
			bn = n - off
		}
		win := data[off*arity : (off+bn)*arity]
		kernels.HashRows(win, arity, w.keyCols, buf.hash)
		pid := buf.bidx[:bn]
		for i := range pid {
			pid[i] = int32(storage.PartitionOf(buf.hash[i], w.parts))
		}
		// Counting sort into partition-contiguous order.
		for i := range counts {
			counts[i] = 0
		}
		for _, p := range pid {
			counts[p]++
		}
		base := int32(0)
		for p := range counts {
			c := counts[p]
			counts[p] = base
			base += c
		}
		// Reorder with per-arity unrolled copies: an 8–16 byte memmove call
		// per row would dominate the whole pass.
		scat := buf.scat[:bn*arity]
		switch arity {
		case 1:
			for i, p := range pid {
				d := counts[p]
				counts[p]++
				scat[d] = win[i]
			}
		case 2:
			for i, p := range pid {
				d := int(counts[p]) * 2
				counts[p]++
				r := i * 2
				scat[d] = win[r]
				scat[d+1] = win[r+1]
			}
		case 3:
			for i, p := range pid {
				d := int(counts[p]) * 3
				counts[p]++
				r := i * 3
				scat[d] = win[r]
				scat[d+1] = win[r+1]
				scat[d+2] = win[r+2]
			}
		default:
			for i, p := range pid {
				d := int(counts[p]) * 4
				counts[p]++
				r := i * 4
				scat[d] = win[r]
				scat[d+1] = win[r+1]
				scat[d+2] = win[r+2]
				scat[d+3] = win[r+3]
			}
		}
		// counts[p] now holds partition p's end offset; starts are the
		// previous partition's end.
		prev := 0
		for p := 0; p < w.parts; p++ {
			end := int(counts[p])
			if end > prev {
				w.writeBulk(p, scat[prev*arity:end*arity])
			}
			prev = end
		}
	}
}
