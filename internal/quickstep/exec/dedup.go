package exec

import (
	"sort"
	"sync"

	"recstep/internal/obs"
	"recstep/internal/quickstep/gscht"
	"recstep/internal/quickstep/storage"
)

// DedupStrategy selects the deduplication implementation. FAST-DEDUP is the
// paper's CCK-GSCHT; the other two are the baselines it replaced, kept for
// the Figure 2/3 ablation.
type DedupStrategy int

const (
	// DedupGSCHT is FAST-DEDUP: the latch-free compact-concatenated-key
	// global separate chaining hash table.
	DedupGSCHT DedupStrategy = iota
	// DedupLockMap is a coarse-grained locked hash set with explicit
	// ⟨key,value⟩ materialization — the pre-optimization structure.
	DedupLockMap
	// DedupSort deduplicates by sorting and skipping equal neighbours, the
	// strategy the paper attributes to Graspan's frequent-sorting weakness.
	DedupSort
)

// String names the strategy for experiment output.
func (s DedupStrategy) String() string {
	switch s {
	case DedupGSCHT:
		return "cck-gscht"
	case DedupLockMap:
		return "lock-map"
	case DedupSort:
		return "sort"
	}
	return "unknown"
}

// tupleSet is a concurrent set of fixed-arity tuples. Arity ≤ 2 uses 64-bit
// compact keys, arity ≤ 4 uses 128-bit keys, wider tuples fall back to a
// locked map (never needed by the benchmark programs, all arity ≤ 3).
type tupleSet struct {
	arity int
	t64   *gscht.Table64
	t128  *gscht.Table128

	mu      sync.Mutex
	generic map[string]struct{}
}

// setArena carries the per-worker allocation state for tupleSet inserts.
type setArena struct {
	a64  gscht.Arena64
	a128 gscht.Arena128
	buf  []byte
}

// newTupleSet allocates a set through lc (nil = Go heap), so engine dedup
// tables are budget-accounted and their arrays recycled on release.
func newTupleSet(lc storage.Lifecycle, arity, estDistinct int) *tupleSet {
	s := &tupleSet{arity: arity}
	switch {
	case arity <= 2:
		s.t64 = gscht.NewTable64In(lc, storage.CatIntermediate, estDistinct)
	case arity <= 4:
		s.t128 = gscht.NewTable128In(lc, storage.CatIntermediate, estDistinct)
	default:
		s.generic = make(map[string]struct{}, estDistinct)
	}
	return s
}

// release returns the set's table memory to its lifecycle pool. The set must
// be quiescent and is unusable afterwards.
func (s *tupleSet) release() {
	if s.t64 != nil {
		s.t64.Release()
	}
	if s.t128 != nil {
		s.t128.Release()
	}
}

// chainSampleBuckets caps how many buckets a chain-length observation scans
// per table, and chainSampleEvery thins the releases that get scanned at
// all. Both exist for the same reason: a chain scan is a dependent-load walk
// over the node arena, and with hundreds of per-partition releases per
// iteration an every-release scan alone blows the ≤2% observability budget
// benchobs enforces.
const (
	chainSampleBuckets = 1024
	chainSampleEvery   = 16
)

// observeChains samples the set's GSCHT bucket chain lengths into h. Called
// at release time (quiescent table); generic-map sets have no chains.
func (s *tupleSet) observeChains(h *obs.Histogram) {
	switch {
	case s.t64 != nil:
		s.t64.ObserveChains(chainSampleBuckets, func(n int) { h.Observe(int64(n)) })
	case s.t128 != nil:
		s.t128.ObserveChains(chainSampleBuckets, func(n int) { h.Observe(int64(n)) })
	}
}

func (s *tupleSet) insert(row []int32, ar *setArena) bool {
	switch {
	case s.t64 != nil:
		return s.t64.InsertIfAbsent(gscht.PackKey64(row), &ar.a64)
	case s.t128 != nil:
		return s.t128.InsertIfAbsent(gscht.PackKey128(row), &ar.a128)
	default:
		if ar.buf == nil {
			ar.buf = make([]byte, 4*s.arity)
		}
		k := packColsString(row, storage.AllCols(s.arity), ar.buf)
		s.mu.Lock()
		_, ok := s.generic[k]
		if !ok {
			s.generic[k] = struct{}{}
		}
		s.mu.Unlock()
		return !ok
	}
}

func (s *tupleSet) contains(row []int32, ar *setArena) bool {
	switch {
	case s.t64 != nil:
		return s.t64.Contains(gscht.PackKey64(row))
	case s.t128 != nil:
		return s.t128.Contains(gscht.PackKey128(row))
	default:
		if ar.buf == nil {
			ar.buf = make([]byte, 4*s.arity)
		}
		k := packColsString(row, storage.AllCols(s.arity), ar.buf)
		s.mu.Lock()
		_, ok := s.generic[k]
		s.mu.Unlock()
		return ok
	}
}

// Dedup removes duplicate tuples from in, returning a fresh relation with
// set semantics. estDistinct pre-sizes the hash table (the OOF-supplied
// conservative estimate). Every Dedup call materializes its output flat —
// the copy the fused DeltaStep exists to avoid — so it counts one flat
// materialization against the pool's copy accounting.
func Dedup(pool *Pool, in *storage.Relation, strategy DedupStrategy, estDistinct int, outName string) *storage.Relation {
	pool.Copy.FlatMats.Add(1)
	if strategy == DedupSort {
		return dedupSort(in, outName)
	}
	blocks := in.Blocks()
	col := newCollector(pool, storage.CatIntermediate, in.Arity(), len(blocks))
	var set *tupleSet
	if strategy == DedupGSCHT {
		set = newTupleSet(pool.alloc, in.Arity(), estDistinct)
	} else {
		// Coarse locked map baseline: force the generic path regardless of
		// arity so every insert serializes on one mutex.
		set = &tupleSet{arity: in.Arity(), generic: make(map[string]struct{}, estDistinct)}
	}
	if pool.batch && set.batchable() {
		arity := in.Arity()
		pool.Run(len(blocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchInsertBlocks(set, blocks[task:task+1], arity, &ar, false, false, buf, col.sinkBulk(task))
		})
		out := col.into(outName, in.ColNames())
		pool.observeChains(set)
		set.release()
		return out
	}
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		var ar setArena
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if set.insert(row, &ar) {
				emit(row)
			}
		}
	})
	out := col.into(outName, in.ColNames())
	pool.observeChains(set)
	set.release()
	return out
}

// dedupSort sorts the materialized table and drops equal neighbours.
func dedupSort(in *storage.Relation, outName string) *storage.Relation {
	arity := in.Arity()
	data := in.Rows()
	n := len(data) / arity
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		ra, rb := data[a*arity:(a+1)*arity], data[b*arity:(b+1)*arity]
		for k := 0; k < arity; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	}
	sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	out := storage.NewRelation(outName, in.ColNames())
	var prev []int32
	rows := make([]int32, 0, len(data))
	for _, i := range idx {
		row := data[i*arity : (i+1)*arity]
		if prev != nil && equalRows(prev, row) {
			continue
		}
		rows = append(rows, row...)
		prev = row
	}
	out.AppendRows(rows)
	return out
}

func equalRows(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
