package exec

import (
	"fmt"

	"recstep/internal/obs"
	"recstep/internal/quickstep/storage"
)

// DeltaStep fuses the tail of one semi-naive fixpoint iteration — dedup of
// the join output Rt, the OPSD/TPSD set difference against the full relation
// R, and the materialization of ∆R — into a single per-partition pass.
//
// The staged pipeline (Dedup → Diff → collect) materializes the deduplicated
// Rδ as a flat relation, re-scatters both Rδ and R inside the partitioned
// diff, and copies every surviving tuple once more into ∆R: four to five
// copies of each tuple per iteration. DeltaStep instead consumes both inputs
// as whole-tuple radix partitions (reusing carried partitionings when the
// upstream operator already scattered its output — the fused-scatter path)
// and runs each partition on one worker with private, latch-free state:
//
//   - OPSD flavour: the per-partition dedup table is seeded with R's
//     partition, so one InsertIfAbsent per Rt tuple answers both questions at
//     once — "first occurrence in Rt?" and "absent from R?". The dedup table
//     doubles as the anti-probe structure; Rδ never exists.
//   - TPSD flavour (chosen per partition when Rt's partition is smaller than
//     R's): Rt is deduplicated into a table plus a candidate buffer, R's
//     partition probes that same table to mark the intersection, and the
//     candidates outside the intersection are emitted — the build over a
//     large R is avoided exactly as in Algorithm 5, without materializing
//     the staged r = R ∩ Rδ relation.
//
// ∆R is emitted directly into per-partition blocks of the same partitioning,
// so the returned relation carries it: R ← R ⊎ ∆R merges partition block
// lists without copying and the *next* iteration's DeltaStep finds R
// pre-partitioned.
//
// part describes the radix partitioning every stage of the pass uses. Its
// key columns need not span the whole tuple: any key subset routes equal
// tuples to equal partitions, so the per-partition dedup and set difference
// stay correct under a *join-key* partitioning — the carried-partitioning
// optimization that lets ∆R exit the delta step already scattered on the
// columns the next iteration's hash builds probe on, eliminating the
// per-join re-scatter of the hottest relation in the fixpoint. Empty
// KeyCols selects the whole-tuple layout. estDistinct is the OOF estimate
// of |Rδ| used to pre-size the per-partition tables. part.Parts <= 1 runs
// the same fused pass over the raw block lists with no scatter and a flat
// result. Per-partition passes are scheduled partition-affine, so the same
// worker revisits the same partition of R every iteration.
func DeltaStep(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, part storage.Partitioning, estDistinct int, outName string) *storage.Relation {
	return deltaStep(pool, tmp, full, algo, part, storage.Partitioning{}, estDistinct, outName)
}

// DeltaStepDual is DeltaStep with a *secondary* carried partitioning: every
// accepted ∆R row is scattered into blocks of both layouts inside the same
// per-partition pass — the primary partitions that become ∆R's (and, after
// the merge, R's) carried contents, and a second scatter copy routed on
// sec.KeyCols that ∆R carries as its secondary view. R ⊎ ∆R then merges both
// views, so a predicate whose recursive rules join it on two conflicting
// keysets (CSPA's valueFlow on columns 0 and 1) serves *both* join shapes
// from carried partitions: one extra scatter copy of the (small) delta per
// iteration buys zero per-iteration build scatters of the (large) carried
// relations. sec must route on different key columns than part; equal
// routings, an empty sec keyset or an unpartitioned pass degrade to the
// plain DeltaStep.
func DeltaStepDual(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, part, sec storage.Partitioning, estDistinct int, outName string) *storage.Relation {
	return deltaStep(pool, tmp, full, algo, part, sec, estDistinct, outName)
}

func deltaStep(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, part, sec storage.Partitioning, estDistinct int, outName string) *storage.Relation {
	if tmp.Arity() != full.Arity() {
		panic("exec: delta step arity mismatch")
	}
	arity := tmp.Arity()
	parts := storage.NormalizePartitions(part.Parts)
	keyCols := part.KeyCols
	if len(keyCols) == 0 {
		keyCols = storage.AllCols(arity)
	}
	if !(storage.Partitioning{KeyCols: keyCols, Parts: parts}).CoLocatesEqualTuples(arity) {
		panic(fmt.Sprintf("exec: delta partitioning %v incompatible with arity %d", keyCols, arity))
	}
	if estDistinct <= 0 {
		estDistinct = tmp.NumTuples()
	}

	if parts <= 1 {
		return deltaShared(pool, tmp, full, algo, arity, estDistinct, outName)
	}

	secParts := storage.NormalizePartitions(sec.Parts)
	useSec := secParts > 1 && len(sec.KeyCols) > 0 &&
		!storage.KeyColsEqual(sec.KeyCols, keyCols) &&
		(storage.Partitioning{KeyCols: sec.KeyCols, Parts: secParts}).CoLocatesEqualTuples(arity)

	tv := PartitionRelation(pool, tmp, keyCols, parts)
	rv := PartitionRelationCarried(pool, full, keyCols, parts)
	estPart := estDistinct/parts + 1
	col := newPartCollector(pool, storage.CatDelta, arity, parts, storage.Partitioning{KeyCols: keyCols, Parts: parts}, &pool.Copy)
	var secOut [][][]*storage.Block
	if useSec {
		secOut = make([][][]*storage.Block, parts)
	}
	batch := pool.batch && arity <= 4
	pool.RunPartitions(parts, func(p int) {
		defer pool.phase(obs.PhaseDelta, p)()
		if batch {
			// Batch route: kernel-at-a-time pass with a pass-private magazine
			// lifecycle and bulk ∆R emission.
			lc, done := pool.passAlloc()
			emitBulk := col.sinkPartBulk(p, p)
			if pool.om != nil {
				// Count accepted ∆ rows for the per-partition skew histogram.
				prim := emitBulk
				accepted := 0
				emitBulk = func(rows []int32) { accepted += len(rows) / arity; prim(rows) }
				defer func() { pool.om.DeltaPartRows.Observe(int64(accepted)) }()
			}
			if useSec {
				// Dual route: the accepted run lands in its primary partition
				// block in bulk, then each row routes through a pass-private
				// writer into its secondary partition block.
				w := newPartWriter(pool, storage.CatDelta, arity, sec.KeyCols, secParts)
				prim := emitBulk
				emitBulk = func(rows []int32) {
					prim(rows)
					for off := 0; off < len(rows); off += arity {
						w.write(rows[off : off+arity])
					}
				}
				defer func() { secOut[p] = w.out }()
			}
			deltaPartitionBatch(pool, lc, tv.Blocks(p), rv.Blocks(p), tv.Rows(p), rv.Rows(p),
				algo, arity, estPart, emitBulk)
			done()
			rv.Cool(p)
			return
		}
		emit := col.sinkPart(p, p)
		if pool.om != nil {
			prim := emit
			accepted := 0
			emit = func(row []int32) { accepted++; prim(row) }
			defer func() { pool.om.DeltaPartRows.Observe(int64(accepted)) }()
		}
		if useSec {
			// Dual route: the same accepted row lands in its primary
			// partition block and, via a pass-private writer, in its
			// secondary partition block — one fused pass, one extra copy.
			w := newPartWriter(pool, storage.CatDelta, arity, sec.KeyCols, secParts)
			prim := emit
			emit = func(row []int32) {
				prim(row)
				w.write(row)
			}
			defer func() { secOut[p] = w.out }()
		}
		deltaPartition(pool, tv.Blocks(p), rv.Blocks(p), tv.Rows(p), rv.Rows(p),
			algo, arity, estPart, emit)
		// Under a memory budget, R's partition becomes evictable the moment
		// its pass completes — otherwise one delta step re-pins all of R.
		rv.Cool(p)
	})
	out := col.into(outName, tmp.ColNames())
	if useSec {
		merged := make([][]*storage.Block, secParts)
		total := int64(0)
		for _, byPart := range secOut {
			if byPart == nil {
				continue
			}
			for sp, bs := range byPart {
				for _, b := range bs {
					b.Compact()
					total += int64(b.Rows())
				}
				merged[sp] = append(merged[sp], bs...)
			}
		}
		pool.Copy.Scattered.Add(total)
		pool.Copy.SecondaryScattered.Add(total)
		out.StoreSecondaryView(storage.NewPartitionedView(sec.KeyCols, secParts, merged), out.Generation())
	}
	return out
}

// deltaShared is the unpartitioned fused pass (parts <= 1): the same
// dedup-table-doubles-as-anti-probe semantics over one shared latch-free
// table, block-parallel on the pool. Partitioning off must not also mean
// parallelism off — the staged pipeline this replaces ran its dedup and
// anti-probe concurrently, so the fused fallback does too.
func deltaShared(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, arity, estDistinct int, outName string) *storage.Relation {
	defer pool.phase(obs.PhaseDelta, -1)()
	if pool.batch && arity <= 4 {
		return deltaSharedBatch(pool, tmp, full, algo, arity, estDistinct, outName)
	}
	tmpBlocks := tmp.Blocks()
	tmpRows, rRows := tmp.NumTuples(), full.NumTuples()

	// dedupEmit inserts every tmp tuple into set concurrently, emitting
	// fresh inserts — pure dedup when set starts empty, dedup + anti-probe
	// when it was seeded with R.
	dedupEmit := func(set *tupleSet) *storage.Relation {
		col := newCollector(pool, storage.CatDelta, arity, len(tmpBlocks))
		pool.Run(len(tmpBlocks), func(task int) {
			b := tmpBlocks[task]
			emit := col.sink(task)
			var ar setArena
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if set.insert(row, &ar) {
					emit(row)
				}
			}
		})
		return col.into(outName, tmp.ColNames())
	}

	switch {
	case tmpRows == 0:
		return storage.NewRelation(outName, tmp.ColNames())
	case rRows == 0:
		set := newTupleSet(pool.alloc, arity, estDistinct)
		out := dedupEmit(set)
		pool.observeChains(set)
		set.release()
		return out
	case algo == TPSD && tmpRows < rRows:
		// TPSD flavour: dedup Rt into a table plus candidate relation, mark
		// the intersection by probing R against that same table, then
		// anti-probe the candidates.
		dset := newTupleSet(pool.alloc, arity, min(tmpRows, estDistinct))
		candCol := newCollector(pool, storage.CatIntermediate, arity, len(tmpBlocks))
		pool.Run(len(tmpBlocks), func(task int) {
			b := tmpBlocks[task]
			emit := candCol.sink(task)
			var ar setArena
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if dset.insert(row, &ar) {
					emit(row)
				}
			}
		})
		cand := candCol.into(outName, tmp.ColNames())
		inter := newTupleSet(pool.alloc, arity, min(cand.NumTuples(), rRows))
		rBlocks := full.Blocks()
		pool.Run(len(rBlocks), func(task int) {
			b := rBlocks[task]
			var ar setArena
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if dset.contains(row, &ar) {
					inter.insert(row, &ar)
				}
			}
		})
		pool.observeChains(dset)
		dset.release()
		out := antiProbe(pool, cand, inter, outName)
		inter.release()
		cand.Release()
		return out
	default:
		// OPSD flavour: seed the shared table with R in parallel, then one
		// insert-if-absent per Rt tuple answers dedup and diff at once.
		set := newTupleSet(pool.alloc, arity, rRows+estDistinct)
		rBlocks := full.Blocks()
		pool.Run(len(rBlocks), func(task int) {
			b := rBlocks[task]
			var ar setArena
			n := b.Rows()
			for i := 0; i < n; i++ {
				set.insert(b.Row(i), &ar)
			}
		})
		out := dedupEmit(set)
		pool.observeChains(set)
		set.release()
		return out
	}
}

// deltaPartition runs the fused dedup + set-difference pass over one
// partition. All state is private to the calling worker; the dedup tables
// allocate through the pool's lifecycle and are recycled when the partition
// pass finishes.
func deltaPartition(pool *Pool, tmpBlocks, rBlocks []*storage.Block, tmpRows, rRows int, algo DiffAlgorithm, arity, estDistinct int, emit func(row []int32)) {
	var ar setArena
	if tmpRows == 0 {
		return
	}
	if rRows == 0 {
		// Nothing to subtract: the pass degenerates to pure dedup.
		set := newTupleSet(pool.alloc, arity, estDistinct)
		for _, b := range tmpBlocks {
			data := b.Data()
			for off := 0; off < len(data); off += arity {
				if row := data[off : off+arity : off+arity]; set.insert(row, &ar) {
					emit(row)
				}
			}
		}
		pool.observeChains(set)
		set.release()
		return
	}
	if algo == TPSD && tmpRows < rRows {
		// TPSD flavour: dedup Rt into a table + candidate buffer, then let R
		// anti-mark the table's tuples via an intersection set.
		dset := newTupleSet(pool.alloc, arity, min(tmpRows, estDistinct))
		cand := make([]int32, 0, min(tmpRows, estDistinct)*arity)
		for _, b := range tmpBlocks {
			data := b.Data()
			for off := 0; off < len(data); off += arity {
				if row := data[off : off+arity : off+arity]; dset.insert(row, &ar) {
					cand = append(cand, row...)
				}
			}
		}
		inter := newTupleSet(pool.alloc, arity, min(len(cand)/arity, rRows))
		for _, b := range rBlocks {
			data := b.Data()
			for off := 0; off < len(data); off += arity {
				if row := data[off : off+arity : off+arity]; dset.contains(row, &ar) {
					inter.insert(row, &ar)
				}
			}
		}
		pool.observeChains(dset)
		dset.release()
		for off := 0; off < len(cand); off += arity {
			row := cand[off : off+arity]
			if !inter.contains(row, &ar) {
				emit(row)
			}
		}
		inter.release()
		return
	}
	// OPSD flavour: seed the dedup table with R, then a fresh insert of an
	// Rt tuple proves it is both new within Rt and absent from R.
	set := newTupleSet(pool.alloc, arity, rRows+estDistinct)
	for _, b := range rBlocks {
		data := b.Data()
		for off := 0; off < len(data); off += arity {
			set.insert(data[off:off+arity:off+arity], &ar)
		}
	}
	for _, b := range tmpBlocks {
		data := b.Data()
		for off := 0; off < len(data); off += arity {
			if row := data[off : off+arity : off+arity]; set.insert(row, &ar) {
				emit(row)
			}
		}
	}
	pool.observeChains(set)
	set.release()
}
