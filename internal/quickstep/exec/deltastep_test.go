package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// deltaInputs builds a duplicate-heavy join-output stand-in tmp and a full
// relation R overlapping roughly half of tmp's distinct tuples.
func deltaInputs(n int, seed int64) (tmp, full *storage.Relation) {
	rng := rand.New(rand.NewSource(seed))
	tmp = storage.NewRelation("tmp", storage.NumberedColumns(2))
	full = storage.NewRelation("r", storage.NumberedColumns(2))
	tmpRows := make([]int32, 0, 2*n)
	fullRows := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x, y := int32(rng.Intn(n/4+1)), int32(rng.Intn(n/4+1))
		tmpRows = append(tmpRows, x, y)
		if rng.Intn(3) == 0 {
			tmpRows = append(tmpRows, x, y) // in-tmp duplicate
		}
		if rng.Intn(2) == 0 {
			fullRows = append(fullRows, x, y) // overlap with R
		} else {
			fullRows = append(fullRows, int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	}
	tmp.AppendRows(tmpRows)
	full.AppendRows(fullRows)
	return tmp, full
}

// wtp is the whole-tuple partitioning descriptor at the given fan-out
// (empty key columns select all columns inside DeltaStep).
func wtp(parts int) storage.Partitioning { return storage.Partitioning{Parts: parts} }

// staged runs the pipeline DeltaStep replaces: Dedup then SetDifference.
func stagedDelta(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, parts int) *storage.Relation {
	rdelta := Dedup(pool, tmp, DedupGSCHT, tmp.NumTuples(), "rdelta")
	return SetDifferencePartitioned(pool, rdelta, full, algo, parts, "delta")
}

// The fused delta step must produce exactly the staged pipeline's output for
// every algorithm flavour and fan-out, including the degenerate ones.
func TestDeltaStepMatchesStaged(t *testing.T) {
	pool := NewPool(4)
	tmp, full := deltaInputs(4000, 11)
	want := stagedDelta(NewPool(1), tmp, full, OPSD, 1).SortedRows()
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		for _, parts := range []int{1, 4, 16, 64} {
			t.Run(fmt.Sprintf("%s/parts-%d", algo, parts), func(t *testing.T) {
				got := DeltaStep(pool, tmp, full, algo, wtp(parts), tmp.NumTuples(), "delta").SortedRows()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("fused delta (%d rows) diverges from staged (%d rows)",
						len(got)/2, len(want)/2)
				}
			})
		}
	}
}

func TestDeltaStepDegenerateInputs(t *testing.T) {
	pool := NewPool(2)
	empty := storage.NewRelation("e", storage.NumberedColumns(2))
	tmp, full := deltaInputs(500, 3)

	if got := DeltaStep(pool, empty, full, OPSD, wtp(16), 0, "d"); got.NumTuples() != 0 {
		t.Fatalf("empty tmp produced %d tuples", got.NumTuples())
	}
	// Empty R degenerates to pure dedup.
	got := DeltaStep(pool, tmp, empty, TPSD, wtp(16), 0, "d").SortedRows()
	want := Dedup(NewPool(1), tmp, DedupSort, 0, "d").SortedRows()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("delta step over empty R does not match pure dedup")
	}
}

// With parts > 1 the result must carry the whole-tuple partitioning, and
// appending it to a relation carrying the same partitioning must keep that
// relation partition-native — the property that lets R ← R ⊎ ∆R skip every
// future re-scatter.
func TestDeltaStepCarriesPartitioning(t *testing.T) {
	pool := NewPool(4)
	tmp, full := deltaInputs(3000, 7)
	const parts = 16
	delta := DeltaStep(pool, tmp, full, OPSD, wtp(parts), tmp.NumTuples(), "delta")
	p, ok := delta.Partitioning()
	if !ok {
		t.Fatal("fused delta does not carry a partitioning")
	}
	want := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: parts}
	if !p.Equal(want) {
		t.Fatalf("delta carries %v, want %v", p, want)
	}

	// full was partitioned inside DeltaStep with carry promotion; appending
	// the compatible delta must merge, not invalidate.
	if _, ok := full.Partitioning(); !ok {
		t.Fatal("full relation does not carry its promoted partitioning")
	}
	full.AppendRelation(delta)
	if got, ok := full.Partitioning(); !ok || !got.Equal(want) {
		t.Fatal("append of compatible delta dropped the carried partitioning")
	}
	// The next delta step must find R pre-partitioned: no new scatter work.
	before := pool.Copy.Snapshot().Scattered
	if v := PartitionRelation(pool, full, storage.AllCols(2), parts); v.NumTuples() != full.NumTuples() {
		t.Fatalf("carried view holds %d tuples, want %d", v.NumTuples(), full.NumTuples())
	}
	if after := pool.Copy.Snapshot().Scattered; after != before {
		t.Fatalf("partitioning a carried relation scattered %d tuples", after-before)
	}
}

// A join with OutPartitioning must emit the same rows as an unfused join and
// carry the requested partitioning, ready for a zero-copy delta step.
func TestHashJoinFusedScatter(t *testing.T) {
	pool := NewPool(4)
	arc := tcWorkload(300, 4000, 5)
	spec := JoinSpec{
		LeftKeys:   []int{1},
		RightKeys:  []int{0},
		Partitions: 16,
		Projs:      []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName:    "tmp",
	}
	plain := HashJoin(pool, arc, arc, spec)
	part := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: 16}
	spec.OutPartitioning = &part
	fused := HashJoin(pool, arc, arc, spec)
	if got, ok := fused.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("fused join output does not carry the requested partitioning")
	}
	if !reflect.DeepEqual(fused.SortedRows(), plain.SortedRows()) {
		t.Fatal("fused scatter changed the join result")
	}
	// The carried partitioning short-circuits the downstream scatter.
	before := pool.Copy.Snapshot().Scattered
	PartitionRelation(pool, fused, storage.AllCols(2), 16)
	if after := pool.Copy.Snapshot().Scattered; after != before {
		t.Fatal("carried join output was re-scattered")
	}
}

// SelectProjectPartitioned must honour the scatter for identity and
// non-identity projections alike.
func TestSelectProjectFusedScatter(t *testing.T) {
	pool := NewPool(4)
	in := tcWorkload(200, 3000, 9)
	part := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: 16}

	ident := SelectProjectPartitioned(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}}, &part, "out", nil)
	if got, ok := ident.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("identity select-project did not scatter")
	}
	if !reflect.DeepEqual(ident.SortedRows(), in.SortedRows()) {
		t.Fatal("identity scatter changed contents")
	}

	swap := SelectProjectPartitioned(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}}, &part, "out", nil)
	want := SelectProject(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}}, "out", nil)
	if got, ok := swap.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("projecting select-project did not scatter")
	}
	if !reflect.DeepEqual(swap.SortedRows(), want.SortedRows()) {
		t.Fatal("projecting scatter changed contents")
	}
}

// TestDeltaStepRace hammers the fused per-partition pass at 8 workers over
// 64 partitions; `go test -race` (run in CI) checks that the per-partition
// dedup tables, the carried-view promotion and the direct-partition sinks
// share no state across workers.
func TestDeltaStepRace(t *testing.T) {
	pool := NewPool(8)
	tmp, full := deltaInputs(20000, 21)
	want := stagedDelta(NewPool(1), tmp, full, OPSD, 1).SortedRows()
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		got := DeltaStep(pool, tmp, full, algo, wtp(64), tmp.NumTuples(), "delta")
		if !reflect.DeepEqual(got.SortedRows(), want) {
			t.Fatalf("%s: concurrent fused delta diverges from staged serial", algo)
		}
	}
}

// DeltaStepDual is DeltaStep plus maintenance of a secondary view: the
// primary output must be bit-identical to the single-route pass, and the
// returned ∆R must carry a secondary view holding exactly the same tuples,
// each routed to its secondary partition.
func TestDeltaStepDualMatchesDeltaStep(t *testing.T) {
	pool := NewPool(4)
	tmp, full := deltaInputs(4000, 19)
	prim := storage.Partitioning{KeyCols: []int{1}, Parts: 16}
	sec := storage.Partitioning{KeyCols: []int{0}, Parts: 16}
	want := DeltaStep(pool, tmp, full, OPSD, prim, tmp.NumTuples(), "delta").SortedRows()

	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		out := DeltaStepDual(pool, tmp, full, algo, prim, sec, tmp.NumTuples(), "delta")
		if got := out.SortedRows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: dual route (%d rows) diverges from single route (%d rows)", algo, len(got)/2, len(want)/2)
		}
		if p, ok := out.Partitioning(); !ok || !p.Equal(prim) {
			t.Fatalf("%v: ∆R carries %v, want primary %v", algo, p, prim)
		}
		sv, ok := out.CarriedView(sec.KeyCols, sec.Parts)
		if !ok {
			t.Fatalf("%v: ∆R does not carry the secondary view", algo)
		}
		rows := make([]int32, 0, len(want))
		for p := 0; p < sv.Parts(); p++ {
			for _, b := range sv.Blocks(p) {
				n := b.Rows()
				for i := 0; i < n; i++ {
					row := b.Row(i)
					if got := storage.PartitionOf(storage.PartitionHash(row, sec.KeyCols), sec.Parts); got != p {
						t.Fatalf("%v: secondary row %v in partition %d, routes to %d", algo, row, p, got)
					}
					rows = append(rows, row...)
				}
			}
		}
		r := storage.NewRelation("flat", storage.NumberedColumns(2))
		r.AppendRows(rows)
		if got := r.SortedRows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: secondary view tuples diverge from ∆R", algo)
		}
	}

	// Degenerate secondaries fall back to the single route: same routing as
	// the primary, empty keyset, or an unpartitioned pass.
	for _, degenerate := range []storage.Partitioning{
		prim,
		{Parts: 16},
		{KeyCols: []int{0}, Parts: 1},
	} {
		out := DeltaStepDual(pool, tmp, full, OPSD, prim, degenerate, tmp.NumTuples(), "delta")
		if got := out.SortedRows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("degenerate sec %v: wrong output", degenerate)
		}
		if _, ok := out.SecondaryPartitioning(); ok {
			t.Fatalf("degenerate sec %v: a secondary view was attached", degenerate)
		}
	}
}

// EnsureSecondaryCarry scatters once and then short-circuits: the second
// call must move zero tuples, and a relation whose primary already matches
// must not gain a duplicate copy.
func TestEnsureSecondaryCarry(t *testing.T) {
	pool := NewPool(4)
	_, full := deltaInputs(3000, 23)
	PartitionRelationCarried(pool, full, []int{1}, 16)

	if ok := EnsureSecondaryCarry(pool, full, []int{1}, 16); !ok {
		t.Fatal("primary-matching ensure should report carried")
	}
	if _, ok := full.SecondaryPartitioning(); ok {
		t.Fatal("primary-matching ensure must not attach a duplicate view")
	}

	pre := pool.Copy.Snapshot()
	if ok := EnsureSecondaryCarry(pool, full, []int{0}, 16); !ok {
		t.Fatal("ensure failed")
	}
	mid := pool.Copy.Snapshot()
	if d := mid.SecondaryScattered - pre.SecondaryScattered; d != int64(full.NumTuples()) {
		t.Fatalf("first ensure scattered %d tuples, want %d", d, full.NumTuples())
	}
	if ok := EnsureSecondaryCarry(pool, full, []int{0}, 16); !ok {
		t.Fatal("repeat ensure failed")
	}
	if post := pool.Copy.Snapshot(); post.SecondaryScattered != mid.SecondaryScattered {
		t.Fatal("repeat ensure re-scattered; it must be served by the existing view")
	}
}
