package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// deltaInputs builds a duplicate-heavy join-output stand-in tmp and a full
// relation R overlapping roughly half of tmp's distinct tuples.
func deltaInputs(n int, seed int64) (tmp, full *storage.Relation) {
	rng := rand.New(rand.NewSource(seed))
	tmp = storage.NewRelation("tmp", storage.NumberedColumns(2))
	full = storage.NewRelation("r", storage.NumberedColumns(2))
	tmpRows := make([]int32, 0, 2*n)
	fullRows := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x, y := int32(rng.Intn(n/4+1)), int32(rng.Intn(n/4+1))
		tmpRows = append(tmpRows, x, y)
		if rng.Intn(3) == 0 {
			tmpRows = append(tmpRows, x, y) // in-tmp duplicate
		}
		if rng.Intn(2) == 0 {
			fullRows = append(fullRows, x, y) // overlap with R
		} else {
			fullRows = append(fullRows, int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	}
	tmp.AppendRows(tmpRows)
	full.AppendRows(fullRows)
	return tmp, full
}

// wtp is the whole-tuple partitioning descriptor at the given fan-out
// (empty key columns select all columns inside DeltaStep).
func wtp(parts int) storage.Partitioning { return storage.Partitioning{Parts: parts} }

// staged runs the pipeline DeltaStep replaces: Dedup then SetDifference.
func stagedDelta(pool *Pool, tmp, full *storage.Relation, algo DiffAlgorithm, parts int) *storage.Relation {
	rdelta := Dedup(pool, tmp, DedupGSCHT, tmp.NumTuples(), "rdelta")
	return SetDifferencePartitioned(pool, rdelta, full, algo, parts, "delta")
}

// The fused delta step must produce exactly the staged pipeline's output for
// every algorithm flavour and fan-out, including the degenerate ones.
func TestDeltaStepMatchesStaged(t *testing.T) {
	pool := NewPool(4)
	tmp, full := deltaInputs(4000, 11)
	want := stagedDelta(NewPool(1), tmp, full, OPSD, 1).SortedRows()
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		for _, parts := range []int{1, 4, 16, 64} {
			t.Run(fmt.Sprintf("%s/parts-%d", algo, parts), func(t *testing.T) {
				got := DeltaStep(pool, tmp, full, algo, wtp(parts), tmp.NumTuples(), "delta").SortedRows()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("fused delta (%d rows) diverges from staged (%d rows)",
						len(got)/2, len(want)/2)
				}
			})
		}
	}
}

func TestDeltaStepDegenerateInputs(t *testing.T) {
	pool := NewPool(2)
	empty := storage.NewRelation("e", storage.NumberedColumns(2))
	tmp, full := deltaInputs(500, 3)

	if got := DeltaStep(pool, empty, full, OPSD, wtp(16), 0, "d"); got.NumTuples() != 0 {
		t.Fatalf("empty tmp produced %d tuples", got.NumTuples())
	}
	// Empty R degenerates to pure dedup.
	got := DeltaStep(pool, tmp, empty, TPSD, wtp(16), 0, "d").SortedRows()
	want := Dedup(NewPool(1), tmp, DedupSort, 0, "d").SortedRows()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("delta step over empty R does not match pure dedup")
	}
}

// With parts > 1 the result must carry the whole-tuple partitioning, and
// appending it to a relation carrying the same partitioning must keep that
// relation partition-native — the property that lets R ← R ⊎ ∆R skip every
// future re-scatter.
func TestDeltaStepCarriesPartitioning(t *testing.T) {
	pool := NewPool(4)
	tmp, full := deltaInputs(3000, 7)
	const parts = 16
	delta := DeltaStep(pool, tmp, full, OPSD, wtp(parts), tmp.NumTuples(), "delta")
	p, ok := delta.Partitioning()
	if !ok {
		t.Fatal("fused delta does not carry a partitioning")
	}
	want := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: parts}
	if !p.Equal(want) {
		t.Fatalf("delta carries %v, want %v", p, want)
	}

	// full was partitioned inside DeltaStep with carry promotion; appending
	// the compatible delta must merge, not invalidate.
	if _, ok := full.Partitioning(); !ok {
		t.Fatal("full relation does not carry its promoted partitioning")
	}
	full.AppendRelation(delta)
	if got, ok := full.Partitioning(); !ok || !got.Equal(want) {
		t.Fatal("append of compatible delta dropped the carried partitioning")
	}
	// The next delta step must find R pre-partitioned: no new scatter work.
	before := pool.Copy.Snapshot().Scattered
	if v := PartitionRelation(pool, full, storage.AllCols(2), parts); v.NumTuples() != full.NumTuples() {
		t.Fatalf("carried view holds %d tuples, want %d", v.NumTuples(), full.NumTuples())
	}
	if after := pool.Copy.Snapshot().Scattered; after != before {
		t.Fatalf("partitioning a carried relation scattered %d tuples", after-before)
	}
}

// A join with OutPartitioning must emit the same rows as an unfused join and
// carry the requested partitioning, ready for a zero-copy delta step.
func TestHashJoinFusedScatter(t *testing.T) {
	pool := NewPool(4)
	arc := tcWorkload(300, 4000, 5)
	spec := JoinSpec{
		LeftKeys:   []int{1},
		RightKeys:  []int{0},
		Partitions: 16,
		Projs:      []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName:    "tmp",
	}
	plain := HashJoin(pool, arc, arc, spec)
	part := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: 16}
	spec.OutPartitioning = &part
	fused := HashJoin(pool, arc, arc, spec)
	if got, ok := fused.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("fused join output does not carry the requested partitioning")
	}
	if !reflect.DeepEqual(fused.SortedRows(), plain.SortedRows()) {
		t.Fatal("fused scatter changed the join result")
	}
	// The carried partitioning short-circuits the downstream scatter.
	before := pool.Copy.Snapshot().Scattered
	PartitionRelation(pool, fused, storage.AllCols(2), 16)
	if after := pool.Copy.Snapshot().Scattered; after != before {
		t.Fatal("carried join output was re-scattered")
	}
}

// SelectProjectPartitioned must honour the scatter for identity and
// non-identity projections alike.
func TestSelectProjectFusedScatter(t *testing.T) {
	pool := NewPool(4)
	in := tcWorkload(200, 3000, 9)
	part := storage.Partitioning{KeyCols: storage.AllCols(2), Parts: 16}

	ident := SelectProjectPartitioned(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}}, &part, "out", nil)
	if got, ok := ident.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("identity select-project did not scatter")
	}
	if !reflect.DeepEqual(ident.SortedRows(), in.SortedRows()) {
		t.Fatal("identity scatter changed contents")
	}

	swap := SelectProjectPartitioned(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}}, &part, "out", nil)
	want := SelectProject(pool, in, nil,
		[]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}}, "out", nil)
	if got, ok := swap.Partitioning(); !ok || !got.Equal(part) {
		t.Fatal("projecting select-project did not scatter")
	}
	if !reflect.DeepEqual(swap.SortedRows(), want.SortedRows()) {
		t.Fatal("projecting scatter changed contents")
	}
}

// TestDeltaStepRace hammers the fused per-partition pass at 8 workers over
// 64 partitions; `go test -race` (run in CI) checks that the per-partition
// dedup tables, the carried-view promotion and the direct-partition sinks
// share no state across workers.
func TestDeltaStepRace(t *testing.T) {
	pool := NewPool(8)
	tmp, full := deltaInputs(20000, 21)
	want := stagedDelta(NewPool(1), tmp, full, OPSD, 1).SortedRows()
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		got := DeltaStep(pool, tmp, full, algo, wtp(64), tmp.NumTuples(), "delta")
		if !reflect.DeepEqual(got.SortedRows(), want) {
			t.Fatalf("%s: concurrent fused delta diverges from staged serial", algo)
		}
	}
}
