package exec

import (
	"sync/atomic"
	"time"

	"recstep/internal/quickstep/storage"
)

// DiffAlgorithm selects how ∆R ← Rδ − R is computed (Section 5.1, DSD).
type DiffAlgorithm int

const (
	// OPSD (One-Phase Set Difference, Algorithm 4) builds a hash set on the
	// full relation R and anti-probes with Rδ. Build cost grows with R every
	// iteration.
	OPSD DiffAlgorithm = iota
	// TPSD (Two-Phase Set Difference, Algorithm 5) builds on the smaller of
	// the two inputs, probes the larger to materialize the intersection
	// r = R ∩ Rδ, then anti-probes Rδ against r — avoiding the hash build
	// over a large R.
	TPSD
)

// String names the algorithm for experiment output.
func (a DiffAlgorithm) String() string {
	if a == OPSD {
		return "opsd"
	}
	return "tpsd"
}

// SetDifference computes ∆R = Rδ − R with the chosen algorithm. Rδ is
// assumed deduplicated (Algorithm 1 deduplicates before differencing).
func SetDifference(pool *Pool, rdelta, r *storage.Relation, algo DiffAlgorithm, outName string) *storage.Relation {
	return SetDifferencePartitioned(pool, rdelta, r, algo, 1, outName)
}

// SetDifferencePartitioned computes ∆R = Rδ − R with the chosen algorithm
// over parts radix partitions. Both inputs are partitioned on all columns,
// so a tuple of Rδ can only be cancelled by same-partition tuples of R, and
// each partition runs its whole build/probe/anti-probe pipeline on one
// worker with private, latch-free state. parts <= 1 selects the shared
// concurrent-table path.
func SetDifferencePartitioned(pool *Pool, rdelta, r *storage.Relation, algo DiffAlgorithm, parts int, outName string) *storage.Relation {
	if rdelta.Arity() != r.Arity() {
		panic("exec: set difference arity mismatch")
	}
	parts = storage.NormalizePartitions(parts)
	if parts > 1 {
		return partitionedDiff(pool, rdelta, r, algo, parts, outName)
	}
	if algo == OPSD {
		return opsd(pool, rdelta, r, outName)
	}
	return tpsd(pool, rdelta, r, outName)
}

// partitionedDiff runs OPSD or TPSD independently per radix partition.
func partitionedDiff(pool *Pool, rdelta, r *storage.Relation, algo DiffAlgorithm, parts int, outName string) *storage.Relation {
	arity := rdelta.Arity()
	allCols := storage.AllCols(arity)
	dv := PartitionRelation(pool, rdelta, allCols, parts)
	rv := PartitionRelation(pool, r, allCols, parts)
	col := newCollector(pool, storage.CatDelta, arity, parts)
	batch := pool.batch && arity <= 4
	pool.RunPartitions(parts, func(p int) {
		dBlocks, rBlocks := dv.Blocks(p), rv.Blocks(p)
		if batch {
			lc, done := pool.passAlloc()
			defer done()
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			emitBulk := col.sinkBulk(p)
			var ar setArena
			if rv.Rows(p) == 0 {
				// Nothing to subtract: partition p of Rδ passes through.
				for _, b := range dBlocks {
					emitBulk(b.Data())
				}
				return
			}
			var set *tupleSet
			if algo == TPSD && dv.Rows(p) < rv.Rows(p) {
				// TPSD phase 1 on the smaller input: r∩ = R ∩ Rδ.
				bset := newTupleSet(lc, arity, dv.Rows(p))
				batchInsertBlocks(bset, dBlocks, arity, &ar, true, false, buf, nil)
				inter := newTupleSet(lc, arity, dv.Rows(p))
				batchIntersect(bset, inter, rBlocks, arity, &ar, true, false, buf)
				bset.release()
				set = inter
			} else {
				// OPSD (or TPSD whose smaller input is R): build on R directly.
				set = newTupleSet(lc, arity, rv.Rows(p))
				batchInsertBlocks(set, rBlocks, arity, &ar, true, false, buf, nil)
			}
			batchAntiProbeBlocks(set, dBlocks, arity, false, buf, emitBulk)
			set.release()
			return
		}
		emit := col.sink(p)
		var ar setArena
		if rv.Rows(p) == 0 {
			// Nothing to subtract: partition p of Rδ passes through.
			for _, b := range dBlocks {
				n := b.Rows()
				for i := 0; i < n; i++ {
					emit(b.Row(i))
				}
			}
			return
		}
		var set *tupleSet
		if algo == TPSD && dv.Rows(p) < rv.Rows(p) {
			// TPSD phase 1 on the smaller input: r∩ = R ∩ Rδ.
			bset := newTupleSet(pool.alloc, arity, dv.Rows(p))
			for _, b := range dBlocks {
				n := b.Rows()
				for i := 0; i < n; i++ {
					bset.insert(b.Row(i), &ar)
				}
			}
			inter := newTupleSet(pool.alloc, arity, dv.Rows(p))
			for _, b := range rBlocks {
				n := b.Rows()
				for i := 0; i < n; i++ {
					if row := b.Row(i); bset.contains(row, &ar) {
						inter.insert(row, &ar)
					}
				}
			}
			bset.release()
			set = inter
		} else {
			// OPSD (or TPSD whose smaller input is R): build on R directly.
			set = newTupleSet(pool.alloc, arity, rv.Rows(p))
			for _, b := range rBlocks {
				n := b.Rows()
				for i := 0; i < n; i++ {
					set.insert(b.Row(i), &ar)
				}
			}
		}
		for _, b := range dBlocks {
			n := b.Rows()
			for i := 0; i < n; i++ {
				if row := b.Row(i); !set.contains(row, &ar) {
					emit(row)
				}
			}
		}
		set.release()
	})
	return col.into(outName, rdelta.ColNames())
}

// buildSet inserts every tuple of rel into a fresh tupleSet, in parallel.
// The caller owns the set and releases it when done. Full relations are
// read through their cached column layout on the batch path (a relation
// rebuilt around carried blocks re-reads the same blocks every iteration).
func buildSet(pool *Pool, rel *storage.Relation) *tupleSet {
	set := newTupleSet(pool.alloc, rel.Arity(), rel.NumTuples())
	blocks := rel.Blocks()
	if pool.batch && set.batchable() {
		arity := rel.Arity()
		pool.Run(len(blocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchInsertBlocks(set, blocks[task:task+1], arity, &ar, false, true, buf, nil)
		})
		return set
	}
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		var ar setArena
		n := b.Rows()
		for i := 0; i < n; i++ {
			set.insert(b.Row(i), &ar)
		}
	})
	return set
}

// antiProbe emits rows of probe absent from set.
func antiProbe(pool *Pool, probe *storage.Relation, set *tupleSet, outName string) *storage.Relation {
	blocks := probe.Blocks()
	col := newCollector(pool, storage.CatDelta, probe.Arity(), len(blocks))
	if pool.batch && set.batchable() {
		arity := probe.Arity()
		pool.Run(len(blocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			batchAntiProbeBlocks(set, blocks[task:task+1], arity, false, buf, col.sinkBulk(task))
		})
		return col.into(outName, probe.ColNames())
	}
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		var ar setArena
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if !set.contains(row, &ar) {
				emit(row)
			}
		}
	})
	return col.into(outName, probe.ColNames())
}

func opsd(pool *Pool, rdelta, r *storage.Relation, outName string) *storage.Relation {
	hs := buildSet(pool, r) // hash table over the full relation — the cost OPSD pays
	out := antiProbe(pool, rdelta, hs, outName)
	hs.release()
	return out
}

func tpsd(pool *Pool, rdelta, r *storage.Relation, outName string) *storage.Relation {
	// Phase 1: r∩ = R ∩ Rδ, building on the smaller input.
	build, probe := r, rdelta
	if rdelta.NumTuples() < r.NumTuples() {
		build, probe = rdelta, r
	}
	bset := buildSet(pool, build)
	inter := newTupleSet(pool.alloc, rdelta.Arity(), rdelta.NumTuples())
	blocks := probe.Blocks()
	if pool.batch && bset.batchable() && inter.batchable() {
		arity := rdelta.Arity()
		pool.Run(len(blocks), func(task int) {
			buf := getBatchBuf()
			defer putBatchBuf(buf)
			var ar setArena
			batchIntersect(bset, inter, blocks[task:task+1], arity, &ar, false, true, buf)
		})
	} else {
		pool.Run(len(blocks), func(task int) {
			b := blocks[task]
			var ar setArena
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if bset.contains(row, &ar) {
					inter.insert(row, &ar)
				}
			}
		})
	}
	bset.release()
	// Phase 2: ∆R = Rδ − r∩.
	out := antiProbe(pool, rdelta, inter, outName)
	inter.release()
	return out
}

// MeasureBuildProbe times one hash-set build over build and one probe pass
// over probe, returning per-tuple nanosecond costs. The optimizer's offline
// α calibration (Appendix A, eq. 7) runs this on table pairs of varied size.
func MeasureBuildProbe(pool *Pool, build, probe *storage.Relation) (buildNsPerTuple, probeNsPerTuple float64) {
	t0 := time.Now()
	set := buildSet(pool, build)
	buildDur := time.Since(t0)

	t1 := time.Now()
	blocks := probe.Blocks()
	var hits atomic.Int64
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		var ar setArena
		local := int64(0)
		n := b.Rows()
		for i := 0; i < n; i++ {
			if set.contains(b.Row(i), &ar) {
				local++
			}
		}
		hits.Add(local) // keep the probe loop from being optimized away
	})
	probeDur := time.Since(t1)
	set.release()

	bn, pn := build.NumTuples(), probe.NumTuples()
	if bn == 0 || pn == 0 {
		return 0, 0
	}
	return float64(buildDur.Nanoseconds()) / float64(bn), float64(probeDur.Nanoseconds()) / float64(pn)
}
