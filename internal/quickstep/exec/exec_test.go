package exec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

func rel(name string, arity int, rows ...[]int32) *storage.Relation {
	r := storage.NewRelation(name, storage.NumberedColumns(arity))
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func sortedPairs(r *storage.Relation) [][2]int32 {
	var out [][2]int32
	r.ForEach(func(t []int32) { out = append(out, [2]int32{t[0], t[1]}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func TestPoolRunCoversAllTasks(t *testing.T) {
	p := NewPool(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	seen := make([]int32, 100)
	p.Run(100, func(task int) { seen[task]++ })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
	p.Run(0, func(int) { t.Fatal("no tasks expected") })
}

func TestPoolSingleWorker(t *testing.T) {
	p := NewPool(1)
	order := []int{}
	p.Run(5, func(task int) { order = append(order, task) })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("single worker order = %v", order)
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool must have at least one worker")
	}
}

func TestHashJoinBasic(t *testing.T) {
	// tc(x,z) ⋈ arc(z,y) → (x,y)
	tc := rel("tc", 2, []int32{1, 2}, []int32{1, 3})
	arc := rel("arc", 2, []int32{2, 4}, []int32{3, 5}, []int32{3, 6})
	out := HashJoin(NewPool(2), tc, arc, JoinSpec{
		LeftKeys: []int{1}, RightKeys: []int{0},
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName: "out",
	})
	want := [][2]int32{{1, 4}, {1, 5}, {1, 6}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("join = %v, want %v", got, want)
	}
}

func TestHashJoinBuildSideIrrelevantToResult(t *testing.T) {
	left := rel("l", 2, []int32{1, 10}, []int32{2, 20}, []int32{3, 10})
	right := rel("r", 2, []int32{10, 7}, []int32{20, 8})
	spec := JoinSpec{
		LeftKeys: []int{1}, RightKeys: []int{0},
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName: "out",
	}
	a := HashJoin(NewPool(2), left, right, spec)
	spec.BuildLeft = true
	b := HashJoin(NewPool(2), left, right, spec)
	if !reflect.DeepEqual(sortedPairs(a), sortedPairs(b)) {
		t.Fatalf("build side changed result: %v vs %v", sortedPairs(a), sortedPairs(b))
	}
}

func TestHashJoinTwoKeyColumns(t *testing.T) {
	l := rel("l", 2, []int32{1, 2}, []int32{3, 4})
	r := rel("r", 2, []int32{1, 2}, []int32{3, 5})
	out := HashJoin(NewPool(1), l, r, JoinSpec{
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1},
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName: "out",
	})
	want := [][2]int32{{1, 2}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("join = %v, want %v", got, want)
	}
}

func TestHashJoinResidualPredicate(t *testing.T) {
	// sg-style: join on parent, exclude x = y.
	arc := rel("arc", 2, []int32{1, 2}, []int32{1, 3})
	out := HashJoin(NewPool(2), arc, arc, JoinSpec{
		LeftKeys: []int{0}, RightKeys: []int{0},
		Residual: []expr.Cmp{{Op: expr.NE, L: expr.Col{Index: 1}, R: expr.Col{Index: 3}}},
		Projs:    []expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 3}},
		OutName:  "sg",
	})
	want := [][2]int32{{2, 3}, {3, 2}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("sg = %v, want %v", got, want)
	}
}

func TestHashJoinArithmeticProjection(t *testing.T) {
	// sssp-style: dist + weight.
	d := rel("d", 2, []int32{1, 5})
	w := rel("w", 3, []int32{1, 2, 7})
	out := HashJoin(NewPool(1), d, w, JoinSpec{
		LeftKeys: []int{0}, RightKeys: []int{0},
		Projs: []expr.Expr{
			expr.Col{Index: 3},
			expr.Arith{Op: expr.Add, L: expr.Col{Index: 1}, R: expr.Col{Index: 4}},
		},
		OutName: "out",
	})
	want := [][2]int32{{2, 12}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("out = %v, want %v", got, want)
	}
}

func TestCrossJoin(t *testing.T) {
	a := rel("a", 1, []int32{1}, []int32{2})
	b := rel("b", 1, []int32{10}, []int32{20})
	out := HashJoin(NewPool(2), a, b, JoinSpec{
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName: "out",
	})
	want := [][2]int32{{1, 10}, {1, 20}, {2, 10}, {2, 20}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("cross = %v, want %v", got, want)
	}
}

func TestAntiJoin(t *testing.T) {
	all := rel("all", 2, []int32{1, 1}, []int32{1, 2}, []int32{2, 1}, []int32{2, 2})
	tc := rel("tc", 2, []int32{1, 2}, []int32{2, 2})
	out := AntiJoin(NewPool(2), all, tc, []int{0, 1}, []int{0, 1}, nil,
		[]expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}}, 1, "ntc", nil)
	want := [][2]int32{{1, 1}, {2, 1}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("ntc = %v, want %v", got, want)
	}
}

func TestSelectProject(t *testing.T) {
	in := rel("t", 2, []int32{1, 9}, []int32{2, 8}, []int32{3, 7})
	out := SelectProject(NewPool(2), in,
		[]expr.Cmp{{Op: expr.GT, L: expr.Col{Index: 0}, R: expr.Lit{Value: 1}}},
		[]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}}, "out", nil)
	want := [][2]int32{{7, 3}, {8, 2}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("out = %v, want %v", got, want)
	}
}

func TestUnionAll(t *testing.T) {
	a := rel("a", 2, []int32{1, 1})
	b := rel("b", 2, []int32{1, 1}, []int32{2, 2})
	out := UnionAll("u", storage.NumberedColumns(2), a, b)
	if out.NumTuples() != 3 {
		t.Fatalf("UNION ALL kept %d tuples, want 3 (bag semantics)", out.NumTuples())
	}
}

func TestDedupStrategiesAgree(t *testing.T) {
	in := rel("t", 2)
	for i := 0; i < 1000; i++ {
		in.Append([]int32{int32(i % 50), int32(i % 20)})
	}
	pool := NewPool(4)
	want := sortedPairs(Dedup(pool, in, DedupSort, 0, "s"))
	for _, s := range []DedupStrategy{DedupGSCHT, DedupLockMap} {
		got := sortedPairs(Dedup(pool, in, s, in.NumTuples(), "d"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("strategy %v disagrees with sort: %d vs %d tuples", s, len(got), len(want))
		}
	}
	if len(want) != 100 {
		t.Fatalf("distinct count = %d, want 100", len(want))
	}
}

func TestDedupArity3(t *testing.T) {
	in := rel("t", 3, []int32{1, 2, 3}, []int32{1, 2, 3}, []int32{1, 2, 4})
	out := Dedup(NewPool(2), in, DedupGSCHT, 4, "d")
	if out.NumTuples() != 2 {
		t.Fatalf("dedup kept %d tuples, want 2", out.NumTuples())
	}
}

func TestDedupArity5GenericPath(t *testing.T) {
	in := storage.NewRelation("t", storage.NumberedColumns(5))
	in.Append([]int32{1, 2, 3, 4, 5})
	in.Append([]int32{1, 2, 3, 4, 5})
	out := Dedup(NewPool(2), in, DedupGSCHT, 4, "d")
	if out.NumTuples() != 1 {
		t.Fatalf("dedup kept %d tuples, want 1", out.NumTuples())
	}
}

func TestSetDifferenceBothAlgorithms(t *testing.T) {
	rdelta := rel("rd", 2, []int32{1, 1}, []int32{2, 2}, []int32{3, 3})
	r := rel("r", 2, []int32{2, 2}, []int32{4, 4})
	want := [][2]int32{{1, 1}, {3, 3}}
	pool := NewPool(2)
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		got := sortedPairs(SetDifference(pool, rdelta, r, algo, "diff"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: diff = %v, want %v", algo, got, want)
		}
	}
}

func TestSetDifferenceEmptyInputs(t *testing.T) {
	empty := rel("e", 2)
	full := rel("f", 2, []int32{1, 1})
	pool := NewPool(2)
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		if got := SetDifference(pool, empty, full, algo, "d").NumTuples(); got != 0 {
			t.Fatalf("%v: ∅−R = %d tuples", algo, got)
		}
		if got := SetDifference(pool, full, empty, algo, "d").NumTuples(); got != 1 {
			t.Fatalf("%v: R−∅ = %d tuples, want 1", algo, got)
		}
	}
}

// Property: OPSD and TPSD agree on random inputs (the DSD choice must never
// change the answer).
func TestSetDifferenceEquivalenceProperty(t *testing.T) {
	pool := NewPool(4)
	f := func(da, db []uint8) bool {
		rdelta := rel("rd", 2)
		seen := map[[2]int32]bool{}
		for i := 0; i+1 < len(da); i += 2 {
			k := [2]int32{int32(da[i] % 16), int32(da[i+1] % 16)}
			if !seen[k] { // Rδ is deduplicated by contract
				seen[k] = true
				rdelta.Append([]int32{k[0], k[1]})
			}
		}
		r := rel("r", 2)
		for i := 0; i+1 < len(db); i += 2 {
			r.Append([]int32{int32(db[i] % 16), int32(db[i+1] % 16)})
		}
		a := sortedPairs(SetDifference(pool, rdelta, r, OPSD, "a"))
		b := sortedPairs(SetDifference(pool, rdelta, r, TPSD, "b"))
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAggregateMinMaxSumCountAvg(t *testing.T) {
	in := rel("t", 2,
		[]int32{1, 10}, []int32{1, 20}, []int32{2, 5})
	out := HashAggregate(NewPool(2), in, []int{0}, []AggSpec{
		{Func: AggMin, Arg: expr.Col{Index: 1}},
		{Func: AggMax, Arg: expr.Col{Index: 1}},
		{Func: AggSum, Arg: expr.Col{Index: 1}},
		{Func: AggCount, Arg: expr.Col{Index: 1}},
		{Func: AggAvg, Arg: expr.Col{Index: 1}},
	}, "agg", nil)
	var rows [][]int32
	out.ForEach(func(r []int32) { rows = append(rows, append([]int32(nil), r...)) })
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	want := [][]int32{
		{1, 10, 20, 30, 2, 15},
		{2, 5, 5, 5, 1, 5},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("agg = %v, want %v", rows, want)
	}
}

func TestHashAggregateGlobalGroup(t *testing.T) {
	in := rel("t", 1, []int32{3}, []int32{7})
	out := HashAggregate(NewPool(2), in, nil, []AggSpec{{Func: AggSum, Arg: expr.Col{Index: 0}}}, "agg", nil)
	if out.NumTuples() != 1 {
		t.Fatalf("global agg rows = %d, want 1", out.NumTuples())
	}
	out.ForEach(func(r []int32) {
		if r[0] != 10 {
			t.Fatalf("SUM = %d, want 10", r[0])
		}
	})
}

func TestHashAggregateParallelMatchesSerial(t *testing.T) {
	in := rel("t", 2)
	for i := 0; i < 20000; i++ {
		in.Append([]int32{int32(i % 97), int32(i)})
	}
	aggs := []AggSpec{{Func: AggMin, Arg: expr.Col{Index: 1}}, {Func: AggCount, Arg: expr.Col{Index: 1}}}
	serial := HashAggregate(NewPool(1), in, []int{0}, aggs, "s", nil)
	parallel := HashAggregate(NewPool(8), in, []int{0}, aggs, "p", nil)
	if !reflect.DeepEqual(serial.SortedRows(), parallel.SortedRows()) {
		t.Fatal("parallel aggregation disagrees with serial")
	}
}

func TestMeasureBuildProbe(t *testing.T) {
	build := rel("b", 2)
	probe := rel("p", 2)
	for i := 0; i < 5000; i++ {
		build.Append([]int32{int32(i), int32(i)})
		probe.Append([]int32{int32(i), int32(i)})
	}
	bn, pn := MeasureBuildProbe(NewPool(2), build, probe)
	if bn <= 0 || pn <= 0 {
		t.Fatalf("MeasureBuildProbe = %f, %f; want positive costs", bn, pn)
	}
	if b0, p0 := MeasureBuildProbe(NewPool(2), rel("e", 2), rel("e2", 2)); b0 != 0 || p0 != 0 {
		t.Fatal("empty inputs should yield zero costs")
	}
}

func TestDedupStrategyString(t *testing.T) {
	if DedupGSCHT.String() != "cck-gscht" || DedupLockMap.String() != "lock-map" || DedupSort.String() != "sort" {
		t.Fatal("DedupStrategy.String mismatch")
	}
	if OPSD.String() != "opsd" || TPSD.String() != "tpsd" {
		t.Fatal("DiffAlgorithm.String mismatch")
	}
}

func TestSelectProjectIdentityFastPathSharesBlocks(t *testing.T) {
	in := rel("t", 2, []int32{1, 2}, []int32{3, 4})
	out := SelectProject(NewPool(2), in, nil,
		[]expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}}, "out", nil)
	if out.NumTuples() != 2 {
		t.Fatalf("identity copy lost tuples: %d", out.NumTuples())
	}
	if !reflect.DeepEqual(out.SortedRows(), in.SortedRows()) {
		t.Fatal("identity fast path changed content")
	}
	// Block sharing: the output relation must reference the same block.
	if len(out.Blocks()) != len(in.Blocks()) || out.Blocks()[0] != in.Blocks()[0] {
		t.Fatal("identity fast path should share blocks, not copy")
	}
}

func TestSelectProjectColumnPermutation(t *testing.T) {
	in := rel("t", 3, []int32{1, 2, 3})
	out := SelectProject(NewPool(1), in, nil,
		[]expr.Expr{expr.Col{Index: 2}, expr.Col{Index: 0}}, "out", nil)
	want := [][2]int32{{3, 1}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("permutation = %v, want %v", got, want)
	}
}

func TestColIndexesDetection(t *testing.T) {
	idx, ok := colIndexes([]expr.Expr{expr.Col{Index: 1}, expr.Col{Index: 0}})
	if !ok || !reflect.DeepEqual(idx, []int{1, 0}) {
		t.Fatalf("colIndexes = %v, %t", idx, ok)
	}
	if _, ok := colIndexes([]expr.Expr{expr.Lit{Value: 1}}); ok {
		t.Fatal("literal projection must not take the column fast path")
	}
	if !isIdentity([]int{0, 1}, 2) || isIdentity([]int{1, 0}, 2) || isIdentity([]int{0}, 2) {
		t.Fatal("isIdentity misclassifies")
	}
}

func TestHashJoinExprProjectionStillWorks(t *testing.T) {
	// Mixed plain-column and arithmetic projections exercise the slow path.
	l := rel("l", 2, []int32{1, 7})
	r := rel("r", 2, []int32{7, 9})
	out := HashJoin(NewPool(1), l, r, JoinSpec{
		LeftKeys: []int{1}, RightKeys: []int{0},
		Projs: []expr.Expr{
			expr.Arith{Op: expr.Mul, L: expr.Col{Index: 0}, R: expr.Lit{Value: 10}},
			expr.Col{Index: 3},
		},
		OutName: "out",
	})
	want := [][2]int32{{10, 9}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("out = %v, want %v", got, want)
	}
}
