package exec

import (
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// colIndexes returns the source column per projection when every
// projection is a plain column reference, enabling the copy fast path.
func colIndexes(projs []expr.Expr) ([]int, bool) {
	idx := make([]int, len(projs))
	for i, p := range projs {
		c, ok := p.(expr.Col)
		if !ok {
			return nil, false
		}
		idx[i] = c.Index
	}
	return idx, true
}

// isIdentity reports whether the projection list copies an arity-wide row
// unchanged.
func isIdentity(idx []int, arity int) bool {
	if len(idx) != arity {
		return false
	}
	for i, c := range idx {
		if c != i {
			return false
		}
	}
	return true
}

// SelectProject scans in, keeps rows satisfying every predicate, and emits
// the projections. It covers single-table SELECTs and pushes single-alias
// predicates below joins. A predicate-free identity projection shares the
// input's blocks instead of copying.
func SelectProject(pool *Pool, in *storage.Relation, preds []expr.Cmp, projs []expr.Expr, outName string, outCols []string) *storage.Relation {
	return SelectProjectPartitioned(pool, in, preds, projs, nil, outName, outCols)
}

// SelectProjectPartitioned is SelectProject with an optional fused output
// scatter: with part set, the output is emitted pre-partitioned and the
// result carries the partitioning. The identity fast path still applies when
// the input already carries a compatible partitioning (block sharing keeps
// it); otherwise the single output copy doubles as the scatter.
func SelectProjectPartitioned(pool *Pool, in *storage.Relation, preds []expr.Cmp, projs []expr.Expr, part *storage.Partitioning, outName string, outCols []string) *storage.Relation {
	if len(projs) == 0 {
		panic("exec: SelectProject requires at least one projection")
	}
	idx, plainCols := colIndexes(projs)
	if len(preds) == 0 && plainCols && isIdentity(idx, in.Arity()) {
		carried, hasCarried := in.Partitioning()
		if part == nil || (hasCarried && carried.Equal(*part)) {
			if outCols == nil {
				outCols = in.ColNames()
			}
			out := storage.NewRelation(outName, outCols)
			out.AppendRelation(in)
			return out
		}
	}
	blocks := in.Blocks()
	col := outCollector(pool, part, len(projs), len(blocks))
	if pool.batch && plainCols && len(idx) <= 4 {
		if cps, ok := colConstPreds(preds); ok {
			batchSelectProject(pool, col, blocks, cps, idx)
			return col.into(outName, outCols)
		}
	}
	scatterRun(pool, col, blocks, func(b *storage.Block, emit func(row []int32)) {
		outRow := make([]int32, len(projs))
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if !expr.All(preds, row) {
				continue
			}
			if plainCols {
				for j, c := range idx {
					outRow[j] = row[c]
				}
			} else {
				for j, p := range projs {
					outRow[j] = p.Eval(row)
				}
			}
			emit(outRow)
		}
	})
	return col.into(outName, outCols)
}

// UnionAll concatenates relations under bag semantics (the paper's UNION ALL:
// data is simply appended, deduplication happens in a separate call).
func UnionAll(name string, colNames []string, rels ...*storage.Relation) *storage.Relation {
	out := storage.NewRelation(name, colNames)
	for _, r := range rels {
		out.AppendRelation(r)
	}
	return out
}
