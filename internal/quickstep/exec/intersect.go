package exec

import (
	"recstep/internal/quickstep/storage"
)

// Set intersection for incremental maintenance. DRed's over-delete rounds
// need "candidate ∩ R" (only tuples actually present can die) and the rescue
// phase needs fast repeated membership probes against a relation that stays
// constant for the whole phase — so the hash set is split out as a reusable
// handle instead of being rebuilt per call the way SetDifference does.

// Membership is a reusable tuple-membership index over one relation's
// contents at build time. The caller owns it and must Release it; the
// underlying relation must not be mutated while the handle is in use.
type Membership struct {
	set   *tupleSet
	arity int
}

// BuildMembership hashes every tuple of rel into a fresh membership index,
// in parallel. One O(|rel|) build amortizes across all the update's probes.
func BuildMembership(pool *Pool, rel *storage.Relation) *Membership {
	return &Membership{set: buildSet(pool, rel), arity: rel.Arity()}
}

// Release returns the index's pooled memory.
func (m *Membership) Release() { m.set.release() }

// Contains reports whether the tuple was present at build time.
func (m *Membership) Contains(row []int32) bool {
	var ar setArena
	return m.set.contains(row, &ar)
}

// SemiProbe emits the rows of probe present in m — the semi-join companion
// of antiProbe. Probe is the update-sized side; the output keeps probe's
// column names and bag multiplicity.
func SemiProbe(pool *Pool, probe *storage.Relation, m *Membership, outName string) *storage.Relation {
	blocks := probe.Blocks()
	col := newCollector(pool, storage.CatIntermediate, probe.Arity(), len(blocks))
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		var ar setArena
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if m.set.contains(row, &ar) {
				emit(row)
			}
		}
	})
	return col.into(outName, probe.ColNames())
}
