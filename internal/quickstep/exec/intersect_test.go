package exec

import (
	"reflect"
	"sync"
	"testing"

	"recstep/internal/quickstep/storage"
)

func TestMembershipContains(t *testing.T) {
	r := rel("r", 2, []int32{1, 2}, []int32{3, 4}, []int32{-5, 6})
	m := BuildMembership(NewPool(4), r)
	defer m.Release()

	for _, row := range [][]int32{{1, 2}, {3, 4}, {-5, 6}} {
		if !m.Contains(row) {
			t.Fatalf("Contains(%v) = false for a present tuple", row)
		}
	}
	for _, row := range [][]int32{{2, 1}, {1, 4}, {0, 0}} {
		if m.Contains(row) {
			t.Fatalf("Contains(%v) = true for an absent tuple", row)
		}
	}
}

func TestMembershipEmptyRelation(t *testing.T) {
	m := BuildMembership(NewPool(2), rel("empty", 2))
	defer m.Release()
	if m.Contains([]int32{1, 2}) {
		t.Fatal("empty membership claims containment")
	}
}

// The index captures the relation's contents at build time: later appends
// are not visible (ApplyDelta relies on this to classify the requested rows
// against the pre-update state).
func TestMembershipSnapshotSemantics(t *testing.T) {
	r := rel("r", 2, []int32{1, 2})
	m := BuildMembership(NewPool(2), r)
	defer m.Release()
	r.Append([]int32{7, 8})
	if m.Contains([]int32{7, 8}) {
		t.Fatal("membership sees a tuple appended after the build")
	}
	if !m.Contains([]int32{1, 2}) {
		t.Fatal("membership lost a tuple present at build time")
	}
}

func TestSemiProbe(t *testing.T) {
	base := rel("base", 2, []int32{1, 2}, []int32{3, 4}, []int32{5, 6})
	m := BuildMembership(NewPool(4), base)
	defer m.Release()

	// Bag semantics: duplicates in probe survive; absent rows are dropped.
	probe := rel("probe", 2, []int32{1, 2}, []int32{1, 2}, []int32{9, 9}, []int32{5, 6})
	out := SemiProbe(NewPool(4), probe, m, "present")
	defer out.Release()

	want := [][2]int32{{1, 2}, {1, 2}, {5, 6}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("SemiProbe = %v, want %v", got, want)
	}
	if out.Name() != "present" {
		t.Fatalf("output name %q", out.Name())
	}
}

// Concurrent probes against one shared index, under -race: Contains and
// SemiProbe keep per-caller arenas, so a single build serves every worker of
// an update phase simultaneously.
func TestMembershipConcurrentProbes(t *testing.T) {
	base := storage.NewRelation("base", storage.NumberedColumns(2))
	for i := int32(0); i < 4096; i++ {
		base.Append([]int32{i, i * 3})
	}
	pool := NewPool(4)
	m := BuildMembership(pool, base)
	defer m.Release()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int32(0); i < 2048; i++ {
				if !m.Contains([]int32{i, i * 3}) {
					t.Errorf("goroutine %d: lost tuple %d", g, i)
					return
				}
				if m.Contains([]int32{i, i*3 + 1}) {
					t.Errorf("goroutine %d: phantom tuple %d", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
