package exec

import (
	"fmt"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// JoinSpec describes one binary hash join. The logical output row is the
// concatenation left-row ++ right-row regardless of which side physically
// builds the hash table; Residual predicates and Projs are evaluated over
// that combined layout (left columns first).
type JoinSpec struct {
	LeftKeys, RightKeys []int
	// BuildLeft selects the physical build side. The optimizer picks the
	// smaller side using the latest ANALYZE statistics — the decision OOF
	// keeps correct across iterations as delta sizes shift.
	BuildLeft bool
	Residual  []expr.Cmp
	Projs     []expr.Expr
	OutName   string
	OutCols   []string
}

// flatten materializes all tuples of a relation into one row-major slice.
func flatten(r *storage.Relation) []int32 {
	return r.Rows()
}

// packCols64 packs up to two key columns of a row into a 64-bit key.
func packCols64(row []int32, cols []int) uint64 {
	switch len(cols) {
	case 1:
		return uint64(uint32(row[cols[0]]))
	case 2:
		return uint64(uint32(row[cols[0]]))<<32 | uint64(uint32(row[cols[1]]))
	}
	panic("exec: packCols64 supports 1 or 2 key columns")
}

// packColsString packs any number of key columns into a string key.
func packColsString(row []int32, cols []int, buf []byte) string {
	buf = buf[:0]
	for _, c := range cols {
		v := uint32(row[c])
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// buildTable is a chaining hash table over the build side of a join, mapping
// join-key values to build row indices. Building is the serial phase of the
// join (mirroring contention on QuickStep's shared join hash table, which the
// paper identifies as the scaling limiter past the physical core count);
// probing runs block-parallel.
type buildTable struct {
	arity int
	rows  []int32
	keys  []int
	by64  map[uint64][]int32
	byS   map[string][]int32
}

func buildHash(r *storage.Relation, keys []int) *buildTable {
	bt := &buildTable{arity: r.Arity(), rows: flatten(r), keys: keys}
	n := len(bt.rows) / bt.arity
	if len(keys) <= 2 {
		bt.by64 = make(map[uint64][]int32, n)
		for i := 0; i < n; i++ {
			row := bt.rows[i*bt.arity : (i+1)*bt.arity]
			k := packCols64(row, keys)
			bt.by64[k] = append(bt.by64[k], int32(i))
		}
		return bt
	}
	bt.byS = make(map[string][]int32, n)
	buf := make([]byte, 4*len(keys))
	for i := 0; i < n; i++ {
		row := bt.rows[i*bt.arity : (i+1)*bt.arity]
		k := packColsString(row, keys, buf)
		bt.byS[k] = append(bt.byS[k], int32(i))
	}
	return bt
}

func (bt *buildTable) lookup(probeRow []int32, probeKeys []int, buf []byte) []int32 {
	if bt.by64 != nil {
		return bt.by64[packCols64(probeRow, probeKeys)]
	}
	return bt.byS[packColsString(probeRow, probeKeys, buf)]
}

func (bt *buildTable) row(i int32) []int32 {
	off := int(i) * bt.arity
	return bt.rows[off : off+bt.arity]
}

// HashJoin executes one equi-join. With no key columns it degrades to a
// (filtered) cross product.
func HashJoin(pool *Pool, left, right *storage.Relation, spec JoinSpec) *storage.Relation {
	if len(spec.LeftKeys) != len(spec.RightKeys) {
		panic(fmt.Sprintf("exec: join key arity mismatch %d vs %d", len(spec.LeftKeys), len(spec.RightKeys)))
	}
	if len(spec.Projs) == 0 {
		panic("exec: join requires at least one output projection")
	}
	if len(spec.LeftKeys) == 0 {
		return crossJoin(pool, left, right, spec)
	}
	la, ra := left.Arity(), right.Arity()

	var build, probe *storage.Relation
	var buildKeys, probeKeys []int
	if spec.BuildLeft {
		build, probe = left, right
		buildKeys, probeKeys = spec.LeftKeys, spec.RightKeys
	} else {
		build, probe = right, left
		buildKeys, probeKeys = spec.RightKeys, spec.LeftKeys
	}
	bt := buildHash(build, buildKeys)

	idx, plainCols := colIndexes(spec.Projs)
	blocks := probe.Blocks()
	col := newCollector(len(spec.Projs), len(blocks))
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		combined := make([]int32, la+ra)
		outRow := make([]int32, len(spec.Projs))
		keyBuf := make([]byte, 4*len(probeKeys))
		n := b.Rows()
		for i := 0; i < n; i++ {
			pr := b.Row(i)
			matches := bt.lookup(pr, probeKeys, keyBuf)
			if len(matches) == 0 {
				continue
			}
			// Lay the probe row into its logical half once per probe row.
			if spec.BuildLeft {
				copy(combined[la:], pr)
			} else {
				copy(combined[:la], pr)
			}
			for _, m := range matches {
				br := bt.row(m)
				if spec.BuildLeft {
					copy(combined[:la], br)
				} else {
					copy(combined[la:], br)
				}
				if !expr.All(spec.Residual, combined) {
					continue
				}
				if plainCols {
					for j, c := range idx {
						outRow[j] = combined[c]
					}
				} else {
					for j, p := range spec.Projs {
						outRow[j] = p.Eval(combined)
					}
				}
				emit(outRow)
			}
		}
	})
	return col.into(spec.OutName, spec.OutCols)
}

// crossJoin computes the filtered Cartesian product, parallel over left
// blocks. Needed for rules like ntc(x,y) :- node(x), node(y), ¬tc(x,y).
func crossJoin(pool *Pool, left, right *storage.Relation, spec JoinSpec) *storage.Relation {
	la, ra := left.Arity(), right.Arity()
	rightRows := flatten(right)
	nRight := len(rightRows) / ra
	blocks := left.Blocks()
	col := newCollector(len(spec.Projs), len(blocks))
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		combined := make([]int32, la+ra)
		outRow := make([]int32, len(spec.Projs))
		n := b.Rows()
		for i := 0; i < n; i++ {
			copy(combined[:la], b.Row(i))
			for j := 0; j < nRight; j++ {
				copy(combined[la:], rightRows[j*ra:(j+1)*ra])
				if !expr.All(spec.Residual, combined) {
					continue
				}
				for k, p := range spec.Projs {
					outRow[k] = p.Eval(combined)
				}
				emit(outRow)
			}
		}
	})
	return col.into(spec.OutName, spec.OutCols)
}

// AntiJoin emits the projection of each left row with no right match on the
// key columns. It implements stratified negation (the negated atom's bound
// columns are the keys). Residual and Projs are evaluated over the left row.
func AntiJoin(pool *Pool, left, right *storage.Relation, leftKeys, rightKeys []int, residual []expr.Cmp, projs []expr.Expr, outName string, outCols []string) *storage.Relation {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		panic("exec: anti join requires matching non-empty key lists")
	}
	bt := buildHash(right, rightKeys)
	blocks := left.Blocks()
	col := newCollector(len(projs), len(blocks))
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		outRow := make([]int32, len(projs))
		keyBuf := make([]byte, 4*len(leftKeys))
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if !expr.All(residual, row) {
				continue
			}
			if len(bt.lookup(row, leftKeys, keyBuf)) != 0 {
				continue
			}
			for j, p := range projs {
				outRow[j] = p.Eval(row)
			}
			emit(outRow)
		}
	})
	return col.into(outName, outCols)
}
