package exec

import (
	"fmt"

	"recstep/internal/obs"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/gscht"
	"recstep/internal/quickstep/storage"
)

// JoinSpec describes one binary hash join. The logical output row is the
// concatenation left-row ++ right-row regardless of which side physically
// builds the hash table; Residual predicates and Projs are evaluated over
// that combined layout (left columns first).
type JoinSpec struct {
	LeftKeys, RightKeys []int
	// BuildLeft selects the physical build side. The optimizer picks the
	// smaller side using the latest ANALYZE statistics — the decision OOF
	// keeps correct across iterations as delta sizes shift.
	BuildLeft bool
	// Partitions selects the radix fan-out of the build phase: the build
	// side is hash-partitioned on its key columns and each partition's table
	// is built by one worker with no shared state. <=1 builds one table.
	Partitions int
	// BuildSerial forces the pre-partitioning single-threaded build over one
	// shared table — the ablation that reproduces the paper's contention on
	// QuickStep's global join hash table.
	BuildSerial bool
	Residual    []expr.Cmp
	Projs       []expr.Expr
	OutName     string
	OutCols     []string
	// OutPartitioning, when set, makes the probe phase emit its output rows
	// scattered directly into radix partitions of the *output* layout — the
	// fused scatter. The result relation carries the partitioning, so the
	// next consumer keyed the same way (the fused delta step, a downstream
	// build) skips its own re-partition pass entirely.
	OutPartitioning *storage.Partitioning
}

// blockShift packs a (block, row) build-row locator into one int32:
// block index in the high bits, row-in-block in the low blockShift bits.
// Partition scatter already copied every build row once; indexing the
// scattered blocks in place avoids paying a second flattening copy.
const blockShift = 14

// Compile-time guards: the locator layout assumes blocks hold exactly
// 1<<blockShift rows.
var (
	_ [storage.DefaultBlockRows - 1<<blockShift]struct{}
	_ [1<<blockShift - storage.DefaultBlockRows]struct{}
)

// packCols64 packs up to two key columns of a row into a 64-bit key.
func packCols64(row []int32, cols []int) uint64 {
	switch len(cols) {
	case 1:
		return uint64(uint32(row[cols[0]]))
	case 2:
		return uint64(uint32(row[cols[0]]))<<32 | uint64(uint32(row[cols[1]]))
	}
	panic("exec: packCols64 supports 1 or 2 key columns")
}

// packCols128 packs three or four key columns into a 128-bit compact key,
// reusing the gscht key layout so no string materializes on the hot path.
func packCols128(row []int32, cols []int) gscht.Key128 {
	switch len(cols) {
	case 3:
		return gscht.Key128{
			Hi: uint64(uint32(row[cols[0]])),
			Lo: uint64(uint32(row[cols[1]]))<<32 | uint64(uint32(row[cols[2]])),
		}
	case 4:
		return gscht.Key128{
			Hi: uint64(uint32(row[cols[0]]))<<32 | uint64(uint32(row[cols[1]])),
			Lo: uint64(uint32(row[cols[2]]))<<32 | uint64(uint32(row[cols[3]])),
		}
	}
	panic("exec: packCols128 supports 3 or 4 key columns")
}

// packColsString packs any number of key columns into a string key (the
// fallback for arity ≥ 5 joins, which no benchmark program produces).
func packColsString(row []int32, cols []int, buf []byte) string {
	buf = buf[:0]
	for _, c := range cols {
		v := uint32(row[c])
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// buildTable is a chaining hash table over (a partition of) the build side
// of a join, mapping join-key values to build row locations. Key packing
// picks the narrowest compact form: 64-bit for ≤2 columns, 128-bit for 3–4,
// string beyond. Both the serial and the partitioned path index storage
// blocks in place by (block, row) locator — no path flattens the build side
// into a row-major copy.
type buildTable struct {
	arity  int
	blocks []*storage.Block // indexed blocks: relation snapshot or scattered partition
	keys   []int
	by64   map[uint64][]int32
	by128  map[gscht.Key128][]int32
	byS    map[string][]int32
}

// initMaps sizes the key→locations map for n build rows.
func (bt *buildTable) initMaps(n int) {
	switch {
	case len(bt.keys) <= 2:
		bt.by64 = make(map[uint64][]int32, n)
	case len(bt.keys) <= 4:
		bt.by128 = make(map[gscht.Key128][]int32, n)
	default:
		bt.byS = make(map[string][]int32, n)
	}
}

// insert records one build row under its packed key.
func (bt *buildTable) insert(row []int32, loc int32, buf []byte) {
	switch {
	case bt.by64 != nil:
		k := packCols64(row, bt.keys)
		bt.by64[k] = append(bt.by64[k], loc)
	case bt.by128 != nil:
		k := packCols128(row, bt.keys)
		bt.by128[k] = append(bt.by128[k], loc)
	default:
		k := packColsString(row, bt.keys, buf)
		bt.byS[k] = append(bt.byS[k], loc)
	}
}

// buildHashBlocks indexes a block list in place by (block, row) locator.
// This is the partitioned single-threaded unit of work — one call per
// partition on data the worker owns exclusively — and, over a relation's
// full block snapshot, the serial shared-table build.
func buildHashBlocks(blocks []*storage.Block, arity, rows int, keys []int) *buildTable {
	bt := &buildTable{arity: arity, blocks: blocks, keys: keys}
	bt.initMaps(rows)
	buf := make([]byte, 4*len(keys))
	for bi, b := range blocks {
		n := b.Rows()
		for i := 0; i < n; i++ {
			bt.insert(b.Row(i), int32(bi<<blockShift|i), buf)
		}
	}
	return bt
}

// buildHash builds the serial shared table over the whole relation — the
// BuildSerial ablation path, mirroring contention on QuickStep's shared join
// hash table (the scaling limiter the paper identifies past the physical
// core count). The relation's blocks are indexed in place; the ablation
// keeps the single-threaded single-table build but no longer pays a
// full-relation flattening copy first.
func buildHash(r *storage.Relation, keys []int) *buildTable {
	return buildHashBlocks(r.Blocks(), r.Arity(), r.NumTuples(), keys)
}

func (bt *buildTable) lookup(probeRow []int32, probeKeys []int, buf []byte) []int32 {
	switch {
	case bt.by64 != nil:
		return bt.by64[packCols64(probeRow, probeKeys)]
	case bt.by128 != nil:
		return bt.by128[packCols128(probeRow, probeKeys)]
	default:
		return bt.byS[packColsString(probeRow, probeKeys, buf)]
	}
}

func (bt *buildTable) row(i int32) []int32 {
	return bt.blocks[i>>blockShift].Row(int(i) & (storage.DefaultBlockRows - 1))
}

// outCollector picks an operator's output collector: partition-routing when
// the caller requested fused scatter (sized per worker — see scatterRun),
// flat otherwise (sized per block task).
func outCollector(pool *Pool, part *storage.Partitioning, arity, numBlocks int) *collector {
	if part == nil {
		return newCollector(pool, storage.CatIntermediate, arity, numBlocks)
	}
	sinks := pool.Workers()
	if sinks > numBlocks {
		sinks = numBlocks
	}
	if sinks < 1 {
		sinks = 1
	}
	return newPartCollector(pool, storage.CatIntermediate, arity, sinks, *part, &pool.Copy)
}

// joinTable routes probe rows to the hash table holding their key range —
// one shared table on the serial path, one private table per radix partition
// on the parallel path.
type joinTable struct {
	parts  int
	single *buildTable   // parts == 1
	tables []*buildTable // parts > 1, indexed by partition
}

// buildJoinTable constructs the build side of a join. With parts > 1 and not
// serial, the relation is radix-partitioned on the key columns and each
// partition's table is built by one worker over data it owns exclusively —
// no latches, no shared map, no CAS retries. When the relation already
// carries (or has cached) a partitioning on exactly the join keys — the
// join-key-carried fast path — the tables are built straight over the
// carried partition blocks and no tuple moves; the build-scatter counters
// record which of the two regimes each build hit. Per-partition builds run
// partition-affine, so across iterations the same worker re-builds over the
// same partition's blocks.
func buildJoinTable(pool *Pool, r *storage.Relation, keys []int, parts int, serial bool) *joinTable {
	parts = storage.NormalizePartitions(parts)
	if serial || parts <= 1 {
		defer pool.phase(obs.PhaseBuild, -1)()
		return &joinTable{parts: 1, single: buildHash(r, keys)}
	}
	view, scattered := partitionRelation(pool, r, keys, parts, false)
	if scattered {
		pool.Copy.BuildScatters.Add(1)
	} else {
		pool.Copy.BuildScattersAvoided.Add(1)
	}
	pool.Copy.NoteBuild(r.Name(), keys, scattered)
	jt := &joinTable{parts: parts, tables: make([]*buildTable, parts)}
	arity := r.Arity()
	pool.RunPartitions(parts, func(p int) {
		defer pool.phase(obs.PhaseBuild, p)()
		jt.tables[p] = buildHashBlocks(view.Blocks(p), arity, view.Rows(p), keys)
	})
	return jt
}

// lookup returns the matches for a probe row plus the table that can
// materialize them (row indices are partition-local).
func (jt *joinTable) lookup(probeRow []int32, probeKeys []int, buf []byte) (*buildTable, []int32) {
	bt := jt.single
	if jt.parts > 1 {
		bt = jt.tables[storage.PartitionOf(storage.PartitionHash(probeRow, probeKeys), jt.parts)]
	}
	return bt, bt.lookup(probeRow, probeKeys, buf)
}

// HashJoin executes one equi-join. With no key columns it degrades to a
// (filtered) cross product.
func HashJoin(pool *Pool, left, right *storage.Relation, spec JoinSpec) *storage.Relation {
	if len(spec.LeftKeys) != len(spec.RightKeys) {
		panic(fmt.Sprintf("exec: join key arity mismatch %d vs %d", len(spec.LeftKeys), len(spec.RightKeys)))
	}
	if len(spec.Projs) == 0 {
		panic("exec: join requires at least one output projection")
	}
	if len(spec.LeftKeys) == 0 {
		return crossJoin(pool, left, right, spec)
	}
	la, ra := left.Arity(), right.Arity()

	var build, probe *storage.Relation
	var buildKeys, probeKeys []int
	if spec.BuildLeft {
		build, probe = left, right
		buildKeys, probeKeys = spec.LeftKeys, spec.RightKeys
	} else {
		build, probe = right, left
		buildKeys, probeKeys = spec.RightKeys, spec.LeftKeys
	}
	jt := buildJoinTable(pool, build, buildKeys, spec.Partitions, spec.BuildSerial)

	idx, plainCols := colIndexes(spec.Projs)
	blocks := probe.Blocks()
	col := outCollector(pool, spec.OutPartitioning, len(spec.Projs), len(blocks))
	batchProbe := pool.batch && len(probeKeys) <= 4
	endProbe := pool.phase(obs.PhaseProbe, -1)
	scatterRun(pool, col, blocks, func(b *storage.Block, emit func(row []int32)) {
		pool.observeBatch(b.Rows())
		combined := make([]int32, la+ra)
		outRow := make([]int32, len(spec.Projs))
		// expand materializes one probe row's matches: probe half laid in
		// once, then per match the build half, residual and projection.
		expand := func(pr []int32, bt *buildTable, matches []int32) {
			if spec.BuildLeft {
				copy(combined[la:], pr)
			} else {
				copy(combined[:la], pr)
			}
			for _, m := range matches {
				br := bt.row(m)
				if spec.BuildLeft {
					copy(combined[:la], br)
				} else {
					copy(combined[la:], br)
				}
				if !expr.All(spec.Residual, combined) {
					continue
				}
				if plainCols {
					for j, c := range idx {
						outRow[j] = combined[c]
					}
				} else {
					for j, p := range spec.Projs {
						outRow[j] = p.Eval(combined)
					}
				}
				emit(outRow)
			}
		}
		if batchProbe {
			buf := getBatchBuf()
			batchJoinProbe(jt, b, probeKeys, buf, expand)
			putBatchBuf(buf)
			return
		}
		keyBuf := make([]byte, 4*len(probeKeys))
		n := b.Rows()
		for i := 0; i < n; i++ {
			pr := b.Row(i)
			bt, matches := jt.lookup(pr, probeKeys, keyBuf)
			if len(matches) == 0 {
				continue
			}
			expand(pr, bt, matches)
		}
	})
	endProbe()
	return col.into(spec.OutName, spec.OutCols)
}

// crossJoin computes the filtered Cartesian product, parallel over left
// blocks. Needed for rules like ntc(x,y) :- node(x), node(y), ¬tc(x,y).
func crossJoin(pool *Pool, left, right *storage.Relation, spec JoinSpec) *storage.Relation {
	la, ra := left.Arity(), right.Arity()
	rightRows := right.Rows()
	nRight := len(rightRows) / ra
	blocks := left.Blocks()
	col := outCollector(pool, spec.OutPartitioning, len(spec.Projs), len(blocks))
	scatterRun(pool, col, blocks, func(b *storage.Block, emit func(row []int32)) {
		combined := make([]int32, la+ra)
		outRow := make([]int32, len(spec.Projs))
		n := b.Rows()
		for i := 0; i < n; i++ {
			copy(combined[:la], b.Row(i))
			for j := 0; j < nRight; j++ {
				copy(combined[la:], rightRows[j*ra:(j+1)*ra])
				if !expr.All(spec.Residual, combined) {
					continue
				}
				for k, p := range spec.Projs {
					outRow[k] = p.Eval(combined)
				}
				emit(outRow)
			}
		}
	})
	return col.into(spec.OutName, spec.OutCols)
}

// AntiJoin emits the projection of each left row with no right match on the
// key columns. It implements stratified negation (the negated atom's bound
// columns are the keys). Residual and Projs are evaluated over the left row.
// parts radix-partitions the build over the right side as in HashJoin.
func AntiJoin(pool *Pool, left, right *storage.Relation, leftKeys, rightKeys []int, residual []expr.Cmp, projs []expr.Expr, parts int, outName string, outCols []string) *storage.Relation {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		panic("exec: anti join requires matching non-empty key lists")
	}
	jt := buildJoinTable(pool, right, rightKeys, parts, false)
	blocks := left.Blocks()
	col := newCollector(pool, storage.CatIntermediate, len(projs), len(blocks))
	endProbe := pool.phase(obs.PhaseProbe, -1)
	pool.Run(len(blocks), func(task int) {
		b := blocks[task]
		emit := col.sink(task)
		outRow := make([]int32, len(projs))
		keyBuf := make([]byte, 4*len(leftKeys))
		n := b.Rows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if !expr.All(residual, row) {
				continue
			}
			if _, matches := jt.lookup(row, leftKeys, keyBuf); len(matches) != 0 {
				continue
			}
			for j, p := range projs {
				outRow[j] = p.Eval(row)
			}
			emit(outRow)
		}
	})
	endProbe()
	return col.into(outName, outCols)
}
