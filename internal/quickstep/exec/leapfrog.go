package exec

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"recstep/internal/obs"
	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// LFAtom is one relation participating in a leapfrog multi-way join. Vars
// assigns a variable id to each column; columns sharing a variable id within
// one atom are required pairwise-equal (rows violating that are dropped when
// the atom's sorted index is built).
type LFAtom struct {
	Rel  *storage.Relation
	Vars []int
}

// LeapfrogSpec describes a worst-case-optimal multi-way join: a simultaneous
// intersection of all atoms, variable by variable in VarOrder, with no
// pairwise intermediates. The output has set semantics — each distinct
// variable binding is emitted once.
type LeapfrogSpec struct {
	Atoms []LFAtom
	// VarOrder is the enumeration order, a permutation of the variable ids;
	// every variable must appear in at least one atom.
	VarOrder []int
	// FillCols[v] lists the output-row positions that receive variable v's
	// value (one per column in v's equivalence class).
	FillCols [][]int
	// Width is the combined output row width (sum of atom arities).
	Width int
	// Residual predicates over the filled combined row; each is evaluated
	// as soon as the deepest variable it reads is bound.
	Residual []expr.Cmp
	Projs    []expr.Expr
	OutName  string
	OutCols  []string
	// OutPartitioning scatters the emitted rows at the source, as in
	// HashJoin's fused final projection.
	OutPartitioning *storage.Partitioning
}

// lfIndex is one atom's sorted index: its tuples projected onto its distinct
// variables (in enumeration order), lexicographically sorted and deduped,
// flat row-major. Built once per LeapfrogJoin call per distinct (relation,
// projection) pair — atoms repeating the same relation share one index.
type lfIndex struct {
	data  []int32
	width int
	rows  int
}

func (ix *lfIndex) at(row, lvl int) int32 { return ix.data[row*ix.width+lvl] }

// seekGE returns the first row in [lo, hi) whose level value is >= x.
func (ix *lfIndex) seekGE(lo, hi, lvl int, x int64) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return int64(ix.at(lo+i, lvl)) >= x })
}

// seekGT returns the first row in [lo, hi) whose level value is > x.
func (ix *lfIndex) seekGT(lo, hi, lvl int, x int64) int {
	return lo + sort.Search(hi-lo, func(i int) bool { return int64(ix.at(lo+i, lvl)) > x })
}

// buildLFIndex projects r onto one source column per level (cols[l][0]),
// dropping rows where a level's extra columns (repeated variable) disagree,
// then sorts and dedups.
func buildLFIndex(r *storage.Relation, cols [][]int) *lfIndex {
	w := len(cols)
	flatIn := r.Rows()
	ar := r.Arity()
	n := len(flatIn) / ar
	flat := make([]int32, 0, n*w)
	for i := 0; i < n; i++ {
		row := flatIn[i*ar : (i+1)*ar]
		ok := true
		for _, cs := range cols {
			for _, c := range cs[1:] {
				if row[c] != row[cs[0]] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		for _, cs := range cols {
			flat = append(flat, row[cs[0]])
		}
	}
	m := len(flat) / w
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra := flat[idx[a]*w : idx[a]*w+w]
		rb := flat[idx[b]*w : idx[b]*w+w]
		for k := 0; k < w; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	})
	data := make([]int32, 0, len(flat))
	for _, id := range idx {
		row := flat[id*w : id*w+w]
		if len(data) >= w {
			prev := data[len(data)-w:]
			same := true
			for k := 0; k < w; k++ {
				if prev[k] != row[k] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		data = append(data, row...)
	}
	return &lfIndex{data: data, width: w, rows: len(data) / w}
}

// lfAt locates one atom's participation at one enumeration depth.
type lfAt struct {
	atom  int
	level int
}

// lfRun is one worker's private enumeration state. ranges[a][l] is the
// candidate row window a parent-level match assigned to atom a's level l;
// it is written only when level l-1 matches and read only at l's depth.
// win[d] holds the current depth's live seek cursors — a visit-local copy of
// each active atom's window, because one parent window is re-entered many
// times (once per binding of the depths in between) and the enumeration is
// only monotonic within a single visit. The shared indexes are read-only.
type lfRun struct {
	spec       *LeapfrogSpec
	idx        []*lfIndex
	byDepth    [][]lfAt
	resByDepth [][]expr.Cmp
	ranges     [][][2]int
	win        [][][2]int
	rowBuf     []int32
	outRow     []int32
	emit       func([]int32)
}

func (r *lfRun) enumerate(d int, minX, maxX int64) {
	active := r.byDepth[d]
	win := r.win[d]
	x := minX
	for i, a := range active {
		// An atom whose first level binds at this depth starts from its full
		// index; deeper levels start from the window the parent match set.
		if a.level == 0 {
			win[i] = [2]int{0, r.idx[a.atom].rows}
		} else {
			win[i] = r.ranges[a.atom][a.level]
		}
		lo, hi := win[i][0], win[i][1]
		if lo >= hi {
			return
		}
		if v := int64(r.idx[a.atom].at(lo, a.level)); v > x {
			x = v
		}
	}
	last := d == len(r.spec.VarOrder)-1
	v := r.spec.VarOrder[d]
	for x <= maxX {
		// Leapfrog to the next value present in every active atom: seek each
		// to >= x; any overshoot raises x and restarts the round.
		matched := true
		for i, a := range active {
			ix := r.idx[a.atom]
			rg := &win[i]
			lo := ix.seekGE(rg[0], rg[1], a.level, x)
			rg[0] = lo
			if lo >= rg[1] {
				return
			}
			if val := int64(ix.at(lo, a.level)); val > x {
				x = val
				matched = false
			}
		}
		if !matched {
			continue
		}
		for i, a := range active {
			ix := r.idx[a.atom]
			rg := win[i]
			end := ix.seekGT(rg[0], rg[1], a.level, x)
			r.ranges[a.atom][a.level+1] = [2]int{rg[0], end}
		}
		for _, c := range r.spec.FillCols[v] {
			r.rowBuf[c] = int32(x)
		}
		if expr.All(r.resByDepth[d], r.rowBuf) {
			if last {
				for i, p := range r.spec.Projs {
					r.outRow[i] = p.Eval(r.rowBuf)
				}
				r.emit(r.outRow)
			} else {
				r.enumerate(d+1, math.MinInt64, math.MaxInt64)
			}
		}
		x++
	}
}

// LeapfrogJoin evaluates the multi-way join by simultaneous sorted
// intersection (leapfrog triejoin): each atom is sorted once on its
// variables in enumeration order, then the variables are bound one at a time
// by intersecting the participating atoms' candidate windows with
// binary-search seeks. No pairwise intermediate is ever materialized, so a
// cyclic pattern's cost is bounded by its worst-case output size rather than
// by its largest pairwise sub-join. Parallelism partitions the first
// variable's value range across workers; each worker enumerates its slice
// with private range stacks over the shared read-only indexes.
func LeapfrogJoin(pool *Pool, spec LeapfrogSpec) *storage.Relation {
	defer pool.phase(obs.PhaseLeapfrog, -1)()
	numVars := len(spec.VarOrder)
	depthOf := make(map[int]int, numVars)
	for d, v := range spec.VarOrder {
		depthOf[v] = d
	}

	// Build one sorted index per distinct (relation, projection); atoms over
	// the same relation with the same variable shape share it.
	type ixKey struct {
		rel  *storage.Relation
		perm string
	}
	cache := map[ixKey]*lfIndex{}
	idx := make([]*lfIndex, len(spec.Atoms))
	byDepth := make([][]lfAt, numVars)
	for ai, a := range spec.Atoms {
		// Distinct variables of the atom, in enumeration order; each level
		// keeps every source column of its variable (extras are equality-
		// filtered during the index build).
		colsByVar := map[int][]int{}
		var vars []int
		for c, v := range a.Vars {
			if len(colsByVar[v]) == 0 {
				vars = append(vars, v)
			}
			colsByVar[v] = append(colsByVar[v], c)
		}
		sort.Slice(vars, func(i, j int) bool { return depthOf[vars[i]] < depthOf[vars[j]] })
		cols := make([][]int, len(vars))
		perm := ""
		for l, v := range vars {
			cols[l] = colsByVar[v]
			byDepth[depthOf[v]] = append(byDepth[depthOf[v]], lfAt{atom: ai, level: l})
			for _, c := range cols[l] {
				perm += fmt.Sprintf("%d.", c)
			}
			perm += "/"
		}
		k := ixKey{rel: a.Rel, perm: perm}
		ix, ok := cache[k]
		if !ok {
			ix = buildLFIndex(a.Rel, cols)
			cache[k] = ix
		}
		idx[ai] = ix
	}
	for d := 0; d < numVars; d++ {
		if len(byDepth[d]) == 0 {
			panic(fmt.Sprintf("exec: leapfrog variable %d appears in no atom", spec.VarOrder[d]))
		}
	}

	// Schedule each residual at the depth its deepest variable binds.
	posVar := make([]int, spec.Width)
	for v, cols := range spec.FillCols {
		for _, c := range cols {
			posVar[c] = v
		}
	}
	resByDepth := make([][]expr.Cmp, numVars)
	for _, cmp := range spec.Residual {
		d := 0
		for _, c := range append(expr.Columns(cmp.L), expr.Columns(cmp.R)...) {
			if dd := depthOf[posVar[c]]; dd > d {
				d = dd
			}
		}
		resByDepth[d] = append(resByDepth[d], cmp)
	}

	col := outCollector(pool, spec.OutPartitioning, len(spec.Projs), pool.Workers())
	empty := false
	for _, ix := range idx {
		if ix.rows == 0 {
			empty = true
		}
	}
	if !empty {
		// Partition the first variable's candidate values (taken from one
		// participating atom — a superset of the intersection) into chunks;
		// workers steal chunks and enumerate them independently.
		a0 := byDepth[0][0]
		ix0 := idx[a0.atom]
		var vals []int32
		for row := 0; row < ix0.rows; row++ {
			v := ix0.at(row, a0.level)
			if len(vals) == 0 || vals[len(vals)-1] != v {
				vals = append(vals, v)
			}
		}
		numChunks := pool.Workers() * 4
		if numChunks > len(vals) {
			numChunks = len(vals)
		}
		var next atomic.Int64
		pool.RunWorkers(numChunks, func(worker, _ int) {
			run := &lfRun{
				spec:       &spec,
				idx:        idx,
				byDepth:    byDepth,
				resByDepth: resByDepth,
				rowBuf:     make([]int32, spec.Width),
				outRow:     make([]int32, len(spec.Projs)),
				emit:       col.sink(worker),
			}
			run.ranges = make([][][2]int, len(spec.Atoms))
			for ai := range spec.Atoms {
				run.ranges[ai] = make([][2]int, idx[ai].width+1)
			}
			run.win = make([][][2]int, numVars)
			for d := range run.win {
				run.win[d] = make([][2]int, len(byDepth[d]))
			}
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks || pool.Aborted() {
					return
				}
				pool.checkInject()
				lo := c * len(vals) / numChunks
				hi := (c + 1) * len(vals) / numChunks
				if lo >= hi {
					continue
				}
				run.enumerate(0, int64(vals[lo]), int64(vals[hi-1]))
			}
		})
	}
	return col.into(spec.OutName, spec.OutCols)
}
