package exec

import (
	"reflect"
	"sort"
	"testing"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// lfTestArc builds a deterministic pseudo-random digraph.
func lfTestArc(n, edges int, seed uint64) *storage.Relation {
	rel := storage.NewRelation("arc", []string{"c0", "c1"})
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := 0; i < edges; i++ {
		rel.Append([]int32{int32(next() % uint64(n)), int32(next() % uint64(n))})
	}
	return rel
}

func sortRows(rows [][3]int32) []int32 {
	sort.Slice(rows, func(a, b int) bool {
		for k := 0; k < 3; k++ {
			if rows[a][k] != rows[b][k] {
				return rows[a][k] < rows[b][k]
			}
		}
		return false
	})
	flat := make([]int32, 0, 3*len(rows))
	var prev [3]int32
	for i, r := range rows {
		if i > 0 && r == prev {
			continue
		}
		prev = r
		flat = append(flat, r[0], r[1], r[2])
	}
	return flat
}

// triangleSpec is the tri(x,y,z) :- arc(x,y), arc(y,z), arc(x,z), x<y, y<z
// body as a leapfrog spec over the declaration frame
// [t0.c0 t0.c1 t1.c0 t1.c1 t2.c0 t2.c1], vars x=0 y=1 z=2.
func triangleSpec(arc *storage.Relation, part *storage.Partitioning) LeapfrogSpec {
	return LeapfrogSpec{
		Atoms: []LFAtom{
			{Rel: arc, Vars: []int{0, 1}},
			{Rel: arc, Vars: []int{1, 2}},
			{Rel: arc, Vars: []int{0, 2}},
		},
		VarOrder: []int{0, 1, 2},
		FillCols: [][]int{{0, 4}, {1, 2}, {3, 5}},
		Width:    6,
		Residual: []expr.Cmp{
			{Op: expr.LT, L: expr.Col{Index: 0}, R: expr.Col{Index: 1}},
			{Op: expr.LT, L: expr.Col{Index: 1}, R: expr.Col{Index: 3}},
		},
		Projs:           []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}, expr.Col{Index: 3}},
		OutName:         "tri",
		OutCols:         []string{"c0", "c1", "c2"},
		OutPartitioning: part,
	}
}

// bruteTriangles enumerates the same rule with nested loops.
func bruteTriangles(arc *storage.Relation) []int32 {
	type edge struct{ a, b int32 }
	has := map[edge]bool{}
	succ := map[int32][]int32{}
	arc.ForEach(func(t []int32) {
		e := edge{t[0], t[1]}
		if !has[e] {
			has[e] = true
			succ[t[0]] = append(succ[t[0]], t[1])
		}
	})
	var rows [][3]int32
	for x, ys := range succ {
		for _, y := range ys {
			if x >= y {
				continue
			}
			for _, z := range succ[y] {
				if y < z && has[edge{x, z}] {
					rows = append(rows, [3]int32{x, y, z})
				}
			}
		}
	}
	return sortRows(rows)
}

// The leapfrog join must agree with a brute-force enumeration of the
// triangle rule — including the multi-depth residuals and the dedup the
// sorted indexes imply — with and without a partitioned output.
func TestLeapfrogTrianglesMatchBruteForce(t *testing.T) {
	pool := NewPool(4)
	for _, n := range []int{20, 60, 150} {
		arc := lfTestArc(n, 6*n, uint64(n)+1)
		want := bruteTriangles(arc)
		got := LeapfrogJoin(pool, triangleSpec(arc, nil))
		if !reflect.DeepEqual(got.SortedRows(), want) {
			t.Fatalf("n=%d: leapfrog %d rows, brute force %d rows", n, got.NumTuples(), len(want)/3)
		}
		part := &storage.Partitioning{KeyCols: []int{0}, Parts: 8}
		gotPart := LeapfrogJoin(pool, triangleSpec(arc, part))
		if !reflect.DeepEqual(gotPart.SortedRows(), want) {
			t.Fatalf("n=%d: partitioned leapfrog diverges from brute force", n)
		}
	}
}

// A variable repeated within one atom is an equality constraint enforced at
// index build time: loops(x) :- arc(x,x), arc(x,y) projected onto (x, y).
func TestLeapfrogRepeatedVariableInAtom(t *testing.T) {
	pool := NewPool(2)
	arc := lfTestArc(12, 90, 99)
	spec := LeapfrogSpec{
		Atoms: []LFAtom{
			{Rel: arc, Vars: []int{0, 0}},
			{Rel: arc, Vars: []int{0, 1}},
		},
		VarOrder: []int{0, 1},
		FillCols: [][]int{{0, 1, 2}, {3}},
		Width:    4,
		Projs:    []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName:  "loops",
		OutCols:  []string{"c0", "c1"},
	}
	got := LeapfrogJoin(pool, spec)

	type edge struct{ a, b int32 }
	has := map[edge]bool{}
	arc.ForEach(func(t []int32) { has[edge{t[0], t[1]}] = true })
	want := map[edge]bool{}
	for e := range has {
		if has[edge{e.a, e.a}] {
			want[e] = true
		}
	}
	if got.NumTuples() != len(want) {
		t.Fatalf("got %d tuples, want %d", got.NumTuples(), len(want))
	}
	got.ForEach(func(row []int32) {
		if !want[edge{row[0], row[1]}] {
			t.Fatalf("unexpected tuple %v", row)
		}
	})
}

// An empty participating atom empties the whole intersection.
func TestLeapfrogEmptyAtom(t *testing.T) {
	pool := NewPool(2)
	arc := lfTestArc(10, 40, 7)
	spec := triangleSpec(arc, nil)
	spec.Atoms[1].Rel = storage.NewRelation("empty", []string{"c0", "c1"})
	if got := LeapfrogJoin(pool, spec); got.NumTuples() != 0 {
		t.Fatalf("got %d tuples from an empty atom, want 0", got.NumTuples())
	}
}
