package exec

import (
	"sync/atomic"

	"recstep/internal/obs"
	"recstep/internal/quickstep/storage"
)

// PartitionRelation returns the radix-partitioned view of r on keyCols with
// the given partition count (normalized to a power of two), building it in
// parallel on first use and caching it on the relation. The scatter phase is
// contention-free: each worker routes tuples from its share of the source
// blocks into worker-private per-partition blocks, and the per-worker block
// lists are concatenated afterwards — partition p's tuples may span blocks
// written by different workers, but every block has exactly one writer.
func PartitionRelation(pool *Pool, r *storage.Relation, keyCols []int, parts int) *storage.PartitionedView {
	v, _ := partitionRelation(pool, r, keyCols, parts, false)
	return v
}

// PartitionRelationCarried is PartitionRelation plus carry promotion: the
// resulting view becomes the relation's carried partitioning, so future
// compatible partitioned appends merge into it (block adoption) instead of
// invalidating it. The delta step uses this on the full relation R: even
// when a fan-out shift forces one re-scatter, R comes out carrying the new
// partitioning and every later R ← R ⊎ ∆R keeps it alive.
func PartitionRelationCarried(pool *Pool, r *storage.Relation, keyCols []int, parts int) *storage.PartitionedView {
	v, _ := partitionRelation(pool, r, keyCols, parts, true)
	return v
}

// partitionRelation reports whether it had to perform a scatter pass
// (scattered=false means a carried or cached view served the request with
// zero tuple movement) so callers can maintain the build-scatter accounting.
func partitionRelation(pool *Pool, r *storage.Relation, keyCols []int, parts int, carry bool) (view *storage.PartitionedView, scattered bool) {
	parts = storage.NormalizePartitions(parts)
	// A relation carrying a compatible partitioning (produced by a fused
	// upstream scatter, or accumulated by block-adopting appends) needs no
	// work at all.
	if v, ok := r.CarriedView(keyCols, parts); ok {
		return v, false
	}
	v, gen, ok := r.CachedPartitionedView(keyCols, parts)
	if ok {
		if carry {
			r.StoreCarriedView(v, gen)
		}
		return v, false
	}
	v, gen = scatterView(pool, r, keyCols, parts)
	// gen predates the block snapshot: if a mutation interleaved, the store
	// is refused and the (still self-consistent) view is used uncached.
	// Exactly one store runs: double-registering a carried view would make
	// the relation own its scatter copies twice and double-release them once
	// block recycling reclaims owned views (the PR 2 aliasing audit).
	if carry {
		r.StoreCarriedView(v, gen)
	} else {
		r.StorePartitionedView(v, gen)
	}
	return v, true
}

// scatterView performs the parallel scatter pass: every tuple of r is copied
// into a worker-private block of its radix partition, and the per-worker
// block lists are concatenated into a fresh view. Returns the view plus the
// mutation generation observed *before* the snapshot, for the gen-guarded
// store protocols.
func scatterView(pool *Pool, r *storage.Relation, keyCols []int, parts int) (*storage.PartitionedView, uint64) {
	defer pool.phase(obs.PhaseScatter, -1)()
	gen := r.Generation()
	arity := r.Arity()
	blocks := r.Blocks()
	workers := pool.Workers()
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		workers = 1
	}
	perWorker := make([][][]*storage.Block, workers)
	// The batch-mode scatter hashes and radix-sorts whole windows; its
	// reorder scratch is sized for the packable arities.
	batch := pool.batch && arity >= 1 && arity <= 4 && len(keyCols) >= 1
	var nextBlock atomic.Int64
	pool.RunWorkers(workers, func(worker, numWorkers int) {
		w := newPartWriter(pool, storage.CatIntermediate, arity, keyCols, parts)
		var buf *batchBuf
		if batch {
			buf = getBatchBuf()
			defer putBatchBuf(buf)
		}
		for {
			t := int(nextBlock.Add(1)) - 1
			if t >= len(blocks) || pool.Aborted() {
				break
			}
			b := blocks[t]
			if batch {
				batchScatterBlock(w, b.Data(), arity, buf)
				continue
			}
			n := b.Rows()
			for i := 0; i < n; i++ {
				w.write(b.Row(i))
			}
		}
		perWorker[worker] = w.out
	})
	merged := make([][]*storage.Block, parts)
	for _, w := range perWorker {
		if w == nil {
			continue
		}
		for p, bs := range w {
			for _, b := range bs {
				b.Compact() // scatter copies may be cached for the whole run
			}
			merged[p] = append(merged[p], bs...)
		}
	}
	v := storage.NewPartitionedView(keyCols, parts, merged)
	pool.Copy.Scattered.Add(int64(v.NumTuples()))
	return v, gen
}

// EnsureSecondaryCarry makes r carry a secondary partitioned view routed on
// (keyCols, parts), scattering once if it does not already. The engine calls
// it on the full relation R of a conflicting-keyset predicate before the
// first dual-route delta step; afterwards every R ← R ⊎ ∆R merge keeps the
// view alive (∆R exits DeltaStepDual carrying the matching secondary), so
// the scatter here is paid once per fixpoint, not once per iteration.
// Returns whether the relation now serves (keyCols, parts) from a carried
// view.
func EnsureSecondaryCarry(pool *Pool, r *storage.Relation, keyCols []int, parts int) bool {
	parts = storage.NormalizePartitions(parts)
	if parts <= 1 || len(keyCols) == 0 {
		return false
	}
	if _, ok := r.CarriedView(keyCols, parts); ok {
		return true
	}
	v, gen := scatterView(pool, r, keyCols, parts)
	pool.Copy.SecondaryScattered.Add(int64(v.NumTuples()))
	r.StoreSecondaryView(v, gen)
	_, ok := r.CarriedView(keyCols, parts)
	return ok
}
