package exec

import (
	"sync/atomic"

	"recstep/internal/quickstep/storage"
)

// PartitionRelation returns the radix-partitioned view of r on keyCols with
// the given partition count (normalized to a power of two), building it in
// parallel on first use and caching it on the relation. The scatter phase is
// contention-free: each worker routes tuples from its share of the source
// blocks into worker-private per-partition blocks, and the per-worker block
// lists are concatenated afterwards — partition p's tuples may span blocks
// written by different workers, but every block has exactly one writer.
func PartitionRelation(pool *Pool, r *storage.Relation, keyCols []int, parts int) *storage.PartitionedView {
	parts = storage.NormalizePartitions(parts)
	v, gen, ok := r.CachedPartitionedView(keyCols, parts)
	if ok {
		return v
	}
	arity := r.Arity()
	blocks := r.Blocks()
	workers := pool.Workers()
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		workers = 1
	}
	perWorker := make([][][]*storage.Block, workers)
	var nextBlock atomic.Int64
	pool.RunWorkers(workers, func(worker, numWorkers int) {
		open := make([]*storage.Block, parts)
		out := make([][]*storage.Block, parts)
		for {
			t := int(nextBlock.Add(1)) - 1
			if t >= len(blocks) {
				break
			}
			b := blocks[t]
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				p := storage.PartitionOf(storage.PartitionHash(row, keyCols), parts)
				blk := open[p]
				if blk == nil || blk.Full() {
					blk = storage.NewBlock(arity)
					open[p] = blk
					out[p] = append(out[p], blk)
				}
				blk.Append(row)
			}
		}
		perWorker[worker] = out
	})
	merged := make([][]*storage.Block, parts)
	for _, w := range perWorker {
		if w == nil {
			continue
		}
		for p, bs := range w {
			merged[p] = append(merged[p], bs...)
		}
	}
	v = storage.NewPartitionedView(keyCols, parts, merged)
	// gen predates the block snapshot: if a mutation interleaved, the store
	// is refused and the (still self-consistent) view is used uncached.
	r.StorePartitionedView(v, gen)
	return v
}
