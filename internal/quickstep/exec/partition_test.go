package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

func randomRel(t *testing.T, name string, arity, n, domain int, seed int64) *storage.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := storage.NewRelation(name, storage.NumberedColumns(arity))
	rows := make([]int32, 0, n*arity)
	for i := 0; i < n; i++ {
		for c := 0; c < arity; c++ {
			rows = append(rows, int32(rng.Intn(domain)))
		}
	}
	r.AppendRows(rows)
	return r
}

func TestPartitionRelationCoversAllRows(t *testing.T) {
	r := randomRel(t, "t", 2, 50000, 1000, 1)
	pool := NewPool(4)
	view := PartitionRelation(pool, r, []int{0}, 16)
	if view.Parts() != 16 {
		t.Fatalf("parts = %d, want 16", view.Parts())
	}
	total := 0
	gathered := storage.NewRelation("g", r.ColNames())
	for p := 0; p < view.Parts(); p++ {
		total += view.Rows(p)
		for _, b := range view.Blocks(p) {
			n := b.Rows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				if got := storage.PartitionOf(storage.PartitionHash(row, []int{0}), 16); got != p {
					t.Fatalf("row %v scattered to partition %d, hash says %d", row, p, got)
				}
			}
			gathered.AdoptBlock(b)
		}
	}
	if total != r.NumTuples() {
		t.Fatalf("partitioned view holds %d rows, relation has %d", total, r.NumTuples())
	}
	if !reflect.DeepEqual(gathered.SortedRows(), r.SortedRows()) {
		t.Fatal("partitioned view content diverges from relation")
	}
}

func TestPartitionRelationCachesAndInvalidates(t *testing.T) {
	r := randomRel(t, "t", 2, 1000, 100, 2)
	pool := NewPool(2)
	a := PartitionRelation(pool, r, []int{0}, 8)
	b := PartitionRelation(pool, r, []int{0}, 8)
	if a != b {
		t.Fatal("second call should return the cached view")
	}
	if c := PartitionRelation(pool, r, []int{1}, 8); c == a {
		t.Fatal("different key columns must build a different view")
	}
	r.Append([]int32{1, 2})
	d := PartitionRelation(pool, r, []int{0}, 8)
	if d == a {
		t.Fatal("mutation must invalidate the cached view")
	}
	if d.NumTuples() != r.NumTuples() {
		t.Fatalf("rebuilt view holds %d rows, want %d", d.NumTuples(), r.NumTuples())
	}
}

func TestHashJoinPartitionedMatchesSerial(t *testing.T) {
	left := randomRel(t, "l", 2, 20000, 300, 3)
	right := randomRel(t, "r", 2, 20000, 300, 4)
	for _, buildLeft := range []bool{false, true} {
		spec := JoinSpec{
			LeftKeys: []int{1}, RightKeys: []int{0},
			BuildLeft: buildLeft,
			Projs:     []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
			OutName:   "out",
		}
		serial := spec
		serial.BuildSerial = true
		part := spec
		part.Partitions = 16
		a := HashJoin(NewPool(4), left, right, serial)
		b := HashJoin(NewPool(4), left, right, part)
		if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
			t.Fatalf("buildLeft=%v: partitioned join (%d rows) diverges from serial (%d rows)",
				buildLeft, b.NumTuples(), a.NumTuples())
		}
	}
}

func TestHashJoinThreeAndFourKeyColumns(t *testing.T) {
	// 3- and 4-column keys take the 128-bit compact path; check against a
	// width where only a prefix participates in the key.
	l := rel("l", 4, []int32{1, 2, 3, 7}, []int32{1, 2, 4, 8}, []int32{-1, 0, 5, 9})
	r := rel("r", 4, []int32{1, 2, 3, 100}, []int32{-1, 0, 5, 200}, []int32{9, 9, 9, 300})
	out := HashJoin(NewPool(2), l, r, JoinSpec{
		LeftKeys: []int{0, 1, 2}, RightKeys: []int{0, 1, 2},
		Projs:   []expr.Expr{expr.Col{Index: 3}, expr.Col{Index: 7}},
		OutName: "out",
	})
	want := [][2]int32{{7, 100}, {9, 200}}
	if got := sortedPairs(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("3-key join = %v, want %v", got, want)
	}
	out4 := HashJoin(NewPool(2), l, r, JoinSpec{
		LeftKeys: []int{0, 1, 2, 3}, RightKeys: []int{0, 1, 2, 3},
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}},
		OutName: "out4",
	})
	if out4.NumTuples() != 0 {
		t.Fatalf("4-key join matched %d rows, want 0 (fourth column differs)", out4.NumTuples())
	}
}

func TestHashJoinManyKeyColumnsPartitioned(t *testing.T) {
	// Arity-5 keys fall back to string packing; partitioning must still
	// route build and probe consistently.
	mk := func(name string, seed int64) *storage.Relation {
		return randomRel(t, name, 5, 5000, 8, seed)
	}
	l, r := mk("l", 5), mk("r", 6)
	spec := JoinSpec{
		LeftKeys: []int{0, 1, 2, 3, 4}, RightKeys: []int{0, 1, 2, 3, 4},
		Projs:   []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 5}},
		OutName: "out",
	}
	serial := spec
	serial.BuildSerial = true
	part := spec
	part.Partitions = 8
	a := HashJoin(NewPool(4), l, r, serial)
	b := HashJoin(NewPool(4), l, r, part)
	if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
		t.Fatal("partitioned 5-key join diverges from serial")
	}
}

func TestSetDifferencePartitionedMatchesSerial(t *testing.T) {
	rdelta := Dedup(NewPool(2), randomRel(t, "rd", 2, 20000, 200, 7), DedupGSCHT, 20000, "rdd")
	r := randomRel(t, "r", 2, 30000, 200, 8)
	pool := NewPool(4)
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		want := SetDifference(pool, rdelta, r, algo, "serial").SortedRows()
		for _, parts := range []int{4, 16, 64} {
			got := SetDifferencePartitioned(pool, rdelta, r, algo, parts, "part").SortedRows()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v/parts=%d: partitioned diff diverges from serial", algo, parts)
			}
		}
	}
}

func TestSetDifferencePartitionedEmptyInputs(t *testing.T) {
	empty := rel("e", 2)
	full := rel("f", 2, []int32{1, 1})
	pool := NewPool(2)
	for _, algo := range []DiffAlgorithm{OPSD, TPSD} {
		if got := SetDifferencePartitioned(pool, empty, full, algo, 16, "d").NumTuples(); got != 0 {
			t.Fatalf("%v: ∅−R = %d tuples", algo, got)
		}
		if got := SetDifferencePartitioned(pool, full, empty, algo, 16, "d").NumTuples(); got != 1 {
			t.Fatalf("%v: R−∅ = %d tuples, want 1", algo, got)
		}
	}
}

func TestHashAggregatePartitionedMatchesSerial(t *testing.T) {
	in := randomRel(t, "t", 3, 30000, 97, 9)
	aggs := []AggSpec{
		{Func: AggMin, Arg: expr.Col{Index: 2}},
		{Func: AggMax, Arg: expr.Col{Index: 2}},
		{Func: AggSum, Arg: expr.Col{Index: 2}},
		{Func: AggCount, Arg: expr.Col{Index: 2}},
	}
	pool := NewPool(4)
	want := HashAggregate(pool, in, []int{0, 1}, aggs, "s", nil).SortedRows()
	got := HashAggregatePartitioned(pool, in, []int{0, 1}, aggs, 16, "p", nil).SortedRows()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("partitioned aggregation diverges from merge-based")
	}
	// Global aggregation has no group columns to partition on and must fall
	// back to the merge-based path.
	g := HashAggregatePartitioned(pool, in, nil, aggs[:1], 16, "g", nil)
	if g.NumTuples() != 1 {
		t.Fatalf("global agg rows = %d, want 1", g.NumTuples())
	}
}

func TestAntiJoinPartitionedMatchesSerial(t *testing.T) {
	left := randomRel(t, "l", 2, 20000, 150, 10)
	right := randomRel(t, "r", 2, 15000, 150, 11)
	projs := []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 1}}
	pool := NewPool(4)
	want := AntiJoin(pool, left, right, []int{0, 1}, []int{0, 1}, nil, projs, 1, "s", nil).SortedRows()
	got := AntiJoin(pool, left, right, []int{0, 1}, []int{0, 1}, nil, projs, 16, "p", nil).SortedRows()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("partitioned anti join diverges from serial")
	}
}
