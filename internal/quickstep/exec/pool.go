// Package exec implements the parallel relational operators of the
// QuickStep-like substrate: hash join, selection/projection, union-all,
// deduplication (FAST-DEDUP and its baselines), set difference (OPSD and
// TPSD) and hash aggregation. One query executes at a time; parallelism is
// intra-operator over storage blocks, which is the QuickStep execution model
// RecStep's UIE optimization exploits (one big query keeps every core busy).
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"recstep/internal/quickstep/storage"
)

// Pool is a bounded worker pool for block-parallel operator execution. It
// tracks how many workers are busy so the metrics sampler can report CPU
// utilization the way the paper's Figures 7 and 16 do.
type Pool struct {
	workers int
	busy    atomic.Int32
}

// NewPool returns a pool with the given degree of parallelism; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured degree of parallelism.
func (p *Pool) Workers() int { return p.workers }

// BusyWorkers returns how many workers are currently executing tasks.
func (p *Pool) BusyWorkers() int { return int(p.busy.Load()) }

// Run executes fn(task) for every task in [0, numTasks), using up to
// Workers() goroutines pulling tasks from a shared counter.
func (p *Pool) Run(numTasks int, fn func(task int)) {
	if numTasks <= 0 {
		return
	}
	n := p.workers
	if n > numTasks {
		n = numTasks
	}
	if n == 1 {
		p.busy.Add(1)
		for i := 0; i < numTasks; i++ {
			fn(i)
		}
		p.busy.Add(-1)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			for {
				t := int(next.Add(1)) - 1
				if t >= numTasks {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
}

// RunWorkers executes fn(worker) once per worker slot (exactly n goroutines,
// n = min(Workers, maxWorkers)). Operators that maintain per-worker state
// (arenas, output buffers) and do their own work distribution use this form.
func (p *Pool) RunWorkers(maxWorkers int, fn func(worker, numWorkers int)) {
	n := p.workers
	if maxWorkers > 0 && n > maxWorkers {
		n = maxWorkers
	}
	if n <= 1 {
		p.busy.Add(1)
		fn(0, 1)
		p.busy.Add(-1)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			fn(w, n)
		}(w)
	}
	wg.Wait()
}

// collector gathers per-task output blocks and assembles them into a result
// relation without cross-task synchronization on the hot path.
type collector struct {
	arity  int
	byTask [][]*storage.Block
}

func newCollector(arity, tasks int) *collector {
	return &collector{arity: arity, byTask: make([][]*storage.Block, tasks)}
}

// sink returns an emit function for one task. The returned function copies
// the row into a task-private block.
func (c *collector) sink(task int) func(row []int32) {
	var cur *storage.Block
	room := 0
	return func(row []int32) {
		if room == 0 {
			cur = storage.NewBlock(c.arity)
			c.byTask[task] = append(c.byTask[task], cur)
			room = storage.DefaultBlockRows
		}
		cur.Append(row)
		room--
	}
}

// into adopts all collected blocks into a fresh relation.
func (c *collector) into(name string, colNames []string) *storage.Relation {
	if colNames == nil {
		colNames = storage.NumberedColumns(c.arity)
	}
	out := storage.NewRelation(name, colNames)
	for _, blocks := range c.byTask {
		for _, b := range blocks {
			out.AdoptBlock(b)
		}
	}
	return out
}
