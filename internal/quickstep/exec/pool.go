// Package exec implements the parallel relational operators of the
// QuickStep-like substrate: hash join, selection/projection, union-all,
// deduplication (FAST-DEDUP and its baselines), set difference (OPSD and
// TPSD) and hash aggregation. One query executes at a time; parallelism is
// intra-operator over storage blocks, which is the QuickStep execution model
// RecStep's UIE optimization exploits (one big query keeps every core busy).
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recstep/internal/faultinject"
	"recstep/internal/obs"
	"recstep/internal/quickstep/storage"
)

// CopyCounters is the copy-accounting instrumentation of the partition-native
// pipeline: it tracks how tuples move between operators so the fused-scatter
// refactor's win (fewer materializations per fixpoint iteration) is directly
// measurable. One instance lives on each Pool; operators update it with
// per-operator totals (never per-tuple atomics).
// The fields are obs.Counter (which embeds atomic.Int64, so update sites
// are unchanged) and can be registered on a metrics registry via Register,
// making the same atomics scrapeable mid-fixpoint.
type CopyCounters struct {
	// Scattered counts tuples copied into radix-partition blocks — by the
	// standalone scatter (PartitionRelation) or by an operator emitting its
	// output pre-partitioned for the next consumer.
	Scattered obs.Counter
	// Adopted counts tuples installed into a destination relation by block
	// adoption, without copying tuple data.
	Adopted obs.Counter
	// FlatMats counts flat (unpartitioned) materializations of delta-pipeline
	// intermediates: a dedup output (rdelta) or a tmp table whose producer
	// could not honour the requested output partitioning. The fused pipeline
	// drives this to zero.
	FlatMats obs.Counter
	// BuildScatters counts hash-join build sides that had to be scattered
	// into radix partitions because no carried or cached view matched the
	// join keys — the per-join re-partition pass the join-key-carried
	// partitionings exist to eliminate.
	BuildScatters obs.Counter
	// BuildScattersAvoided counts hash-join builds served directly from a
	// carried or cached partitioned view — zero tuples moved.
	BuildScattersAvoided obs.Counter
	// SecondaryScattered counts the subset of Scattered copied into
	// *secondary* carried views — the extra per-iteration copy a
	// conflicting-keyset predicate pays so both of its join shapes build
	// scatter-free.
	SecondaryScattered obs.Counter

	// buildDetail breaks the build counters down by (relation, keyset) so
	// the copy-accounting experiments can show exactly which predicate and
	// join shape still pays per-iteration build scatters. Guarded by mu;
	// updated once per hash build, never per tuple.
	mu          sync.Mutex
	buildDetail map[string]BuildCount
}

// BuildCount tallies the partitioned hash builds of one (relation, keyset)
// pair: how many had to scatter the input versus how many were served in
// place from a carried or cached view.
type BuildCount struct {
	Scatters, InPlace int64
}

// BuildKey renders the (relation, keyset) identity used by the per-build
// breakdown, e.g. "valueFlow[1]".
func BuildKey(name string, keys []int) string {
	return fmt.Sprintf("%s%v", name, keys)
}

// NoteBuild records one partitioned hash build over relation name keyed on
// keys, and whether it paid a scatter pass.
func (c *CopyCounters) NoteBuild(name string, keys []int, scattered bool) {
	k := BuildKey(name, keys)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.buildDetail == nil {
		c.buildDetail = make(map[string]BuildCount)
	}
	bc := c.buildDetail[k]
	if scattered {
		bc.Scatters++
	} else {
		bc.InPlace++
	}
	c.buildDetail[k] = bc
}

// CopySnapshot is a point-in-time reading of CopyCounters.
type CopySnapshot struct {
	Scattered, Adopted, FlatMats        int64
	BuildScatters, BuildScattersAvoided int64
	SecondaryScattered                  int64
	// BuildDetail maps BuildKey(relation, keyset) to that pair's build
	// tallies.
	BuildDetail map[string]BuildCount
}

// Snapshot reads the counters.
func (c *CopyCounters) Snapshot() CopySnapshot {
	s := CopySnapshot{
		Scattered:            c.Scattered.Load(),
		Adopted:              c.Adopted.Load(),
		FlatMats:             c.FlatMats.Load(),
		BuildScatters:        c.BuildScatters.Load(),
		BuildScattersAvoided: c.BuildScattersAvoided.Load(),
		SecondaryScattered:   c.SecondaryScattered.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buildDetail) > 0 {
		s.BuildDetail = make(map[string]BuildCount, len(c.buildDetail))
		for k, v := range c.buildDetail {
			s.BuildDetail[k] = v
		}
	}
	return s
}

// Sub returns the counter deltas since an earlier snapshot. Per-build
// detail entries that did not move are dropped from the result.
func (s CopySnapshot) Sub(o CopySnapshot) CopySnapshot {
	d := CopySnapshot{
		Scattered:            s.Scattered - o.Scattered,
		Adopted:              s.Adopted - o.Adopted,
		FlatMats:             s.FlatMats - o.FlatMats,
		BuildScatters:        s.BuildScatters - o.BuildScatters,
		BuildScattersAvoided: s.BuildScattersAvoided - o.BuildScattersAvoided,
		SecondaryScattered:   s.SecondaryScattered - o.SecondaryScattered,
	}
	for k, v := range s.BuildDetail {
		v.Scatters -= o.BuildDetail[k].Scatters
		v.InPlace -= o.BuildDetail[k].InPlace
		if v.Scatters == 0 && v.InPlace == 0 {
			continue
		}
		if d.BuildDetail == nil {
			d.BuildDetail = make(map[string]BuildCount)
		}
		d.BuildDetail[k] = v
	}
	return d
}

// Register exposes the copy-accounting counters on reg, including a labeled
// breakdown of hash builds by (relation, keyset). Registration replaces any
// prior binding, so re-opening a database against a long-lived registry
// simply re-points the series at the new run's counters.
func (c *CopyCounters) Register(reg *obs.Registry) {
	reg.RegisterCounter("recstep_tuples_scattered_total",
		"Tuples copied into radix-partition blocks by scatters and fused operator emits.", &c.Scattered)
	reg.RegisterCounter("recstep_tuples_adopted_total",
		"Tuples installed into destination relations by block adoption (no copy).", &c.Adopted)
	reg.RegisterCounter("recstep_flat_materializations_total",
		"Flat (unpartitioned) materializations of delta-pipeline intermediates.", &c.FlatMats)
	reg.RegisterCounter("recstep_join_build_scatters_total",
		"Hash-join builds that paid a scatter pass (no carried/cached view matched).", &c.BuildScatters)
	reg.RegisterCounter("recstep_join_build_scatters_avoided_total",
		"Hash-join builds served in place from a carried or cached partitioned view.", &c.BuildScattersAvoided)
	reg.RegisterCounter("recstep_secondary_tuples_scattered_total",
		"Tuples copied into secondary carried views for conflicting-keyset predicates.", &c.SecondaryScattered)
	reg.RegisterSampleFunc("recstep_join_builds_total",
		"Partitioned hash builds by (relation,keyset) build key and kind (scatter vs in_place).",
		"counter", func() []obs.Sample {
			c.mu.Lock()
			keys := make([]string, 0, len(c.buildDetail))
			for k := range c.buildDetail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]obs.Sample, 0, 2*len(keys))
			for _, k := range keys {
				bc := c.buildDetail[k]
				out = append(out,
					obs.Sample{Labels: []obs.LabelPair{{Key: "build", Value: k}, {Key: "kind", Value: "scatter"}}, Value: float64(bc.Scatters)},
					obs.Sample{Labels: []obs.LabelPair{{Key: "build", Value: k}, {Key: "kind", Value: "in_place"}}, Value: float64(bc.InPlace)})
			}
			c.mu.Unlock()
			return out
		})
}

// Pool is a bounded worker pool for block-parallel operator execution. It
// tracks how many workers are busy so the metrics sampler can report CPU
// utilization the way the paper's Figures 7 and 16 do, and carries the
// copy-accounting counters every operator running on it updates.
type Pool struct {
	workers int
	busy    atomic.Int32

	// Copy accumulates the pool's copy-accounting events.
	Copy CopyCounters

	// alloc, when set, routes every operator block allocation through the
	// memory manager (recycling + accounting). Nil keeps plain heap blocks.
	alloc storage.Lifecycle

	// batch selects the batch-at-a-time kernel paths (columnar key packing,
	// batched GSCHT inserts/probes, bulk block emission, per-worker
	// magazines). Off is the tuple-at-a-time row-layout ablation.
	batch bool

	// om/tracer, when set, receive per-phase wall-time attribution and
	// distribution histograms from the operators running on this pool. Both
	// nil (the -obs=false ablation) makes every phase() span a shared no-op.
	om     *obs.ExecMetrics
	tracer *obs.Tracer
	// step is the engine-published fixpoint position (stratum, iteration,
	// predicate) stamped onto trace spans recorded by pool workers.
	step atomic.Pointer[obs.Step]
	// chainTick throttles chain-length sampling to every
	// chainSampleEvery-th dedup-set release.
	chainTick atomic.Int64

	// ctx/ctxDone carry the run's cancellation signal into the worker task
	// loops; failed/fail hold the first-error-wins run failure (a recovered
	// worker panic or a fatal injected fault). failed is the one-atomic-load
	// fast path Aborted() reads per task — the loops check at block/partition
	// granularity, never per tuple, to stay inside the benchobs budget.
	ctx     context.Context
	ctxDone <-chan struct{}
	failed  atomic.Bool
	fail    atomic.Pointer[runFailure]
	// panics counts worker panics converted to errors by the recover barrier.
	panics obs.Counter
	// inject is the chaos-test fault injector (nil in production); its
	// worker.panic site fires between tasks in the worker loops.
	inject *faultinject.Injector
}

// runFailure is the first-error-wins record of a failed run.
type runFailure struct{ err error }

// NewPool returns a pool with the given degree of parallelism; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, batch: true}
}

// Workers returns the configured degree of parallelism.
func (p *Pool) Workers() int { return p.workers }

// SetAlloc installs the block lifecycle (the memory manager) operators on
// this pool allocate output blocks through. Call before running operators.
func (p *Pool) SetAlloc(lc storage.Lifecycle) { p.alloc = lc }

// Alloc returns the installed block lifecycle (nil = heap).
func (p *Pool) Alloc() storage.Lifecycle { return p.alloc }

// SetBatch toggles the batch-at-a-time kernel paths (on by default). Off is
// the row-layout tuple-at-a-time ablation (-columnar=false).
func (p *Pool) SetBatch(on bool) { p.batch = on }

// Batch reports whether batch kernels are enabled.
func (p *Pool) Batch() bool { return p.batch }

// SetObs installs the exec metrics and (optional) tracer the pool's phase
// spans report to. Pass nil, nil to disable phase attribution entirely.
func (p *Pool) SetObs(m *obs.ExecMetrics, t *obs.Tracer) {
	p.om = m
	p.tracer = t
}

// Obs returns the installed exec metrics (nil when observability is off).
func (p *Pool) Obs() *obs.ExecMetrics { return p.om }

// SetStep publishes the fixpoint position subsequent phase spans are
// attributed to. The engine calls this before each evaluation step.
func (p *Pool) SetStep(stratum, iteration int, pred string) {
	p.step.Store(&obs.Step{Stratum: stratum, Iteration: iteration, Pred: pred})
}

// CurrentStep returns the last-published fixpoint position (zero before the
// first SetStep). The memory manager uses it to stamp spill/fault spans.
func (p *Pool) CurrentStep() obs.Step {
	if s := p.step.Load(); s != nil {
		return *s
	}
	return obs.Step{}
}

// noopEnd is the shared span terminator returned when observability is off,
// so disabled spans cost one nil check and no closure allocation.
var noopEnd = func() {}

// phase opens a wall-time span attributed to ph. part >= 0 places the trace
// span on that partition's lane (tid 1+part); part < 0 marks a whole-operator
// span on the engine lane (tid 0). The returned func ends the span.
func (p *Pool) phase(ph obs.Phase, part int) func() {
	m, tr := p.om, p.tracer
	if m == nil && tr == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		if m != nil {
			m.Phase.Add(ph, d)
		}
		if tr != nil {
			var step obs.Step
			if s := p.step.Load(); s != nil {
				step = *s
			}
			tid := 0
			if part >= 0 {
				tid = 1 + part
			}
			tr.Complete(ph.String(), tid, t0, d, step, part)
		}
	}
}

// observeChains samples the released dedup set's hash-chain lengths into the
// chain-length histogram (a no-op when observability is off). Call just
// before releasing a GSCHT-backed tupleSet. Scans chase pointers across the
// node arena, so only every chainSampleEvery-th release is scanned — the
// benchobs budget (≤2% whole-fixpoint overhead) is the constraint here.
func (p *Pool) observeChains(set *tupleSet) {
	if p.om == nil || set == nil {
		return
	}
	if p.chainTick.Add(1)%chainSampleEvery != 1 {
		return
	}
	set.observeChains(&p.om.ChainLen)
}

// observeBatch records one batch kernel block of n rows.
func (p *Pool) observeBatch(n int) {
	if p.om != nil {
		p.om.BatchRows.Observe(int64(n))
	}
}

// passAlloc returns the lifecycle a pass-private structure (dedup table,
// GSCHT node slabs) should allocate through, plus a release hook to call
// when the pass ends. On the batch path with a magazine-capable manager the
// lifecycle is a per-worker magazine, so the pass's alloc/free churn costs
// one pool-shard lock per batch instead of one per array. The structure's
// full lifetime — allocation through release — must stay on the calling
// goroutine.
func (p *Pool) passAlloc() (storage.Lifecycle, func()) {
	if p.batch {
		if ms, ok := p.alloc.(storage.MagazineSource); ok {
			mag := ms.AcquireMagazine()
			return mag, func() { ms.ReleaseMagazine(mag) }
		}
	}
	return p.alloc, func() {}
}

// scatterHint is the initial row capacity of operator output blocks. Small
// on purpose: a scatter keeps workers × partitions blocks open at once, and
// near convergence most receive a handful of rows — the regrow ladder for
// the partitions that do fill is served almost entirely by pool recycling.
const scatterHint = 64

// newBlock allocates one operator output block through the pool's lifecycle.
func (p *Pool) newBlock(arity int, cat storage.Category, rowHint int) *storage.Block {
	return storage.NewBlockIn(p.alloc, cat, arity, rowHint)
}

// BusyWorkers returns how many workers are currently executing tasks.
func (p *Pool) BusyWorkers() int { return int(p.busy.Load()) }

// SetContext installs the run's cancellation context. Worker task loops poll
// its Done channel at task boundaries, so a cancel or deadline drains every
// in-flight operator within one block/partition of work. Nil clears it.
func (p *Pool) SetContext(ctx context.Context) {
	p.ctx = ctx
	if ctx != nil {
		p.ctxDone = ctx.Done()
	} else {
		p.ctxDone = nil
	}
}

// SetFaultInjector installs the chaos-test fault injector whose worker.panic
// site fires in the task loops. Nil (the production default) keeps the loops
// trigger-free.
func (p *Pool) SetFaultInjector(in *faultinject.Injector) { p.inject = in }

// RegisterMetrics exposes the pool's failure-containment counters on reg.
func (p *Pool) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("recstep_worker_panics_total",
		"Pool worker panics converted into per-run errors by the recover barrier.", &p.panics)
}

// Aborted reports whether the current run should stop: a worker panic or
// fatal fault was recorded, or the run context was cancelled. Operator loops
// call it once per task/partition — one atomic load plus (with a context
// installed) one non-blocking channel poll.
func (p *Pool) Aborted() bool {
	if p.failed.Load() {
		return true
	}
	if d := p.ctxDone; d != nil {
		select {
		case <-d:
			return true
		default:
		}
	}
	return false
}

// Fail records err as the run's failure — first error wins — and flips the
// abort flag every worker loop polls, so remaining workers drain at their
// next task boundary. The memory manager routes fatal alloc/fault errors
// here; the recover barrier routes worker panics.
func (p *Pool) Fail(err error) {
	if err == nil {
		return
	}
	p.fail.CompareAndSwap(nil, &runFailure{err: err})
	p.failed.Store(true)
}

// Err returns the run's failure: a recorded worker panic or fatal fault
// first, else the context's cancellation error, else nil.
func (p *Pool) Err() error {
	if f := p.fail.Load(); f != nil {
		return f.err
	}
	if ctx := p.ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ResetErr clears the recorded run failure and the abort flag, so a
// resident database can accept new work after a failed operation's state
// has been torn down. Callers must be quiescent: no worker tasks in flight,
// or a draining worker could re-record the stale failure.
func (p *Pool) ResetErr() {
	p.fail.Store(nil)
	p.failed.Store(false)
}

// Panics reports how many worker panics the recover barrier has contained.
func (p *Pool) Panics() int64 { return p.panics.Load() }

// guard runs fn on the calling goroutine, converting a panic into the run
// failure (stack captured into the error) instead of letting it unwind past
// the pool — the containment barrier every worker body runs under.
func (p *Pool) guard(fn func()) {
	defer func() {
		if v := recover(); v != nil {
			p.panics.Add(1)
			// Panicking with an error value keeps its chain intact so
			// callers can still errors.Is the root cause.
			if err, ok := v.(error); ok {
				p.Fail(fmt.Errorf("exec: worker panic: %w\n%s", err, debug.Stack()))
			} else {
				p.Fail(fmt.Errorf("exec: worker panic: %v\n%s", v, debug.Stack()))
			}
		}
	}()
	fn()
}

// checkInject fires the chaos injector's worker.panic site. It sits between
// tasks — no operator state is held — so the injected panic exercises the
// recover barrier without leaking pass-private allocations.
func (p *Pool) checkInject() {
	if p.inject != nil {
		if err := p.inject.Fail(faultinject.WorkerPanic); err != nil {
			panic(err)
		}
	}
}

// Run executes fn(task) for every task in [0, numTasks), using up to
// Workers() goroutines pulling tasks from a shared counter.
func (p *Pool) Run(numTasks int, fn func(task int)) {
	if numTasks <= 0 {
		return
	}
	n := p.workers
	if n > numTasks {
		n = numTasks
	}
	if n == 1 {
		p.busy.Add(1)
		defer p.busy.Add(-1)
		p.guard(func() {
			for i := 0; i < numTasks; i++ {
				if p.Aborted() {
					return
				}
				p.checkInject()
				fn(i)
			}
		})
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			p.guard(func() {
				for {
					t := int(next.Add(1)) - 1
					if t >= numTasks || p.Aborted() {
						return
					}
					p.checkInject()
					fn(t)
				}
			})
		}()
	}
	wg.Wait()
}

// RunPartitions executes fn(p) once for every partition p in [0, parts) with
// partition-affine scheduling: worker w owns the stripe of partitions
// congruent to w modulo the worker count, so across operators — and across
// fixpoint iterations, where partition counts are carried — the same worker
// slot revisits the same partitions' blocks and private tables. This is the
// pure-Go approximation of NUMA-aware partition placement: goroutine w keeps
// partition w's working set warm in whatever core's cache the runtime keeps
// it on, instead of partitions migrating between workers every pass under a
// shared task counter. A worker that drains its stripe steals unclaimed
// partitions from the others (skew fallback), so wall-clock never degrades
// below the shared-counter schedule; claims are CAS-guarded, so every
// partition runs exactly once.
func (p *Pool) RunPartitions(parts int, fn func(part int)) {
	if parts <= 0 {
		return
	}
	n := p.workers
	if n > parts {
		n = parts
	}
	if n == 1 {
		p.busy.Add(1)
		defer p.busy.Add(-1)
		p.guard(func() {
			for q := 0; q < parts; q++ {
				if p.Aborted() {
					return
				}
				p.checkInject()
				fn(q)
			}
		})
		return
	}
	claimed := make([]atomic.Bool, parts)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			p.guard(func() {
				// Own stripe first — the sticky assignment.
				for q := w; q < parts; q += n {
					if p.Aborted() {
						return
					}
					if claimed[q].CompareAndSwap(false, true) {
						p.checkInject()
						fn(q)
					}
				}
				// Stripe drained: steal whatever is still unclaimed, scanning
				// from the next stripe over so thieves spread out.
				for i := 0; i < parts; i++ {
					if p.Aborted() {
						return
					}
					q := (w + 1 + i) % parts
					if claimed[q].CompareAndSwap(false, true) {
						p.checkInject()
						fn(q)
					}
				}
			})
		}(w)
	}
	wg.Wait()
}

// RunWorkers executes fn(worker) once per worker slot (exactly n goroutines,
// n = min(Workers, maxWorkers)). Operators that maintain per-worker state
// (arenas, output buffers) and do their own work distribution use this form.
func (p *Pool) RunWorkers(maxWorkers int, fn func(worker, numWorkers int)) {
	n := p.workers
	if maxWorkers > 0 && n > maxWorkers {
		n = maxWorkers
	}
	if n <= 1 {
		p.busy.Add(1)
		defer p.busy.Add(-1)
		p.guard(func() { fn(0, 1) })
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			p.guard(func() { fn(w, n) })
		}(w)
	}
	wg.Wait()
}

// partWriter routes rows into per-partition open blocks. Exactly one
// goroutine owns a writer, so writes need no latches; the standalone scatter
// (PartitionRelation) and the fused scatter sinks share it.
type partWriter struct {
	arity   int
	keyCols []int
	parts   int
	pool    *Pool
	cat     storage.Category
	open    []*storage.Block
	out     [][]*storage.Block
}

func newPartWriter(pool *Pool, cat storage.Category, arity int, keyCols []int, parts int) *partWriter {
	return &partWriter{
		arity:   arity,
		keyCols: keyCols,
		parts:   parts,
		pool:    pool,
		cat:     cat,
		open:    make([]*storage.Block, parts),
		out:     make([][]*storage.Block, parts),
	}
}

// write appends the row to its partition's open block.
func (w *partWriter) write(row []int32) {
	p := storage.PartitionOf(storage.PartitionHash(row, w.keyCols), w.parts)
	blk := w.open[p]
	if blk == nil || blk.Full() {
		blk = w.pool.newBlock(w.arity, w.cat, scatterHint)
		w.open[p] = blk
		w.out[p] = append(w.out[p], blk)
	}
	blk.Append(row)
}

// writeBulk appends a partition-contiguous run of rows to partition p's open
// block with chunked AppendBulk copies — the batch-mode scatter's emit half.
func (w *partWriter) writeBulk(p int, rows []int32) {
	for len(rows) > 0 {
		blk := w.open[p]
		if blk == nil || blk.Full() {
			blk = w.pool.newBlock(w.arity, w.cat, scatterHint)
			w.open[p] = blk
			w.out[p] = append(w.out[p], blk)
		}
		n := (storage.DefaultBlockRows - blk.Rows()) * w.arity
		if n > len(rows) {
			n = len(rows)
		}
		blk.AppendBulk(rows[:n])
		rows = rows[n:]
	}
}

// collector gathers per-sink output blocks and assembles them into a result
// relation without cross-sink synchronization on the hot path. With a
// partitioning set, every sink routes rows into sink-private per-partition
// block lists (the fused scatter: the operator's single output copy lands
// directly in the partition the next consumer wants), and into() assembles a
// relation that carries the partitioning. Partitioned sinks are handed out
// per *worker* (see scatterRun), so the scatter keeps at most
// workers × parts open blocks regardless of how many block tasks feed it.
type collector struct {
	arity  int
	pool   *Pool
	cat    storage.Category
	part   *storage.Partitioning
	copy   *CopyCounters
	byTask [][]*storage.Block   // flat mode: [sink] -> blocks
	parted [][][]*storage.Block // partitioned mode: [sink][partition] -> blocks
}

func newCollector(pool *Pool, cat storage.Category, arity, tasks int) *collector {
	return &collector{arity: arity, pool: pool, cat: cat, byTask: make([][]*storage.Block, tasks)}
}

// newPartCollector returns a collector whose sinks scatter rows by part and
// whose into() produces a relation carrying that partitioning. counters (if
// non-nil) receive the scattered-tuple total.
func newPartCollector(pool *Pool, cat storage.Category, arity, sinks int, part storage.Partitioning, counters *CopyCounters) *collector {
	return &collector{
		arity:  arity,
		pool:   pool,
		cat:    cat,
		part:   &part,
		copy:   counters,
		parted: make([][][]*storage.Block, sinks),
	}
}

// sink returns an emit function for one sink slot. The returned function
// copies the row into a sink-private block — partition-routed when the
// collector has a partitioning.
func (c *collector) sink(task int) func(row []int32) {
	if c.part == nil {
		var cur *storage.Block
		room := 0
		return func(row []int32) {
			if room == 0 {
				cur = c.pool.newBlock(c.arity, c.cat, scatterHint)
				c.byTask[task] = append(c.byTask[task], cur)
				room = storage.DefaultBlockRows
			}
			cur.Append(row)
			room--
		}
	}
	w := newPartWriter(c.pool, c.cat, c.arity, c.part.KeyCols, c.part.Parts)
	c.parted[task] = w.out
	return w.write
}

// scatterRun executes fn once per input block, handing each execution a
// collector sink. Flat collectors keep one sink per block task (the original
// per-task layout, deterministic block order); partitioned collectors keep
// one sink per worker, bounding the scatter's open blocks by workers × parts
// instead of blocks × parts — over a long fixpoint that is the difference
// between adopting a handful of well-filled partition blocks per iteration
// and fragmenting relations into thousands of tiny ones.
func scatterRun(pool *Pool, col *collector, blocks []*storage.Block, fn func(b *storage.Block, emit func(row []int32))) {
	if len(blocks) == 0 {
		return
	}
	if col.part == nil {
		pool.Run(len(blocks), func(task int) { fn(blocks[task], col.sink(task)) })
		return
	}
	var next atomic.Int64
	pool.RunWorkers(len(blocks), func(worker, _ int) {
		emit := col.sink(worker)
		for {
			t := int(next.Add(1)) - 1
			if t >= len(blocks) || pool.Aborted() {
				return
			}
			pool.checkInject()
			fn(blocks[t], emit)
		}
	})
}

// sinkPart returns an emit function writing directly into one partition of
// one task — for operators whose unit of work *is* a partition, so every row
// they emit is already known to belong to it (no re-hash).
func (c *collector) sinkPart(task, p int) func(row []int32) {
	if c.parted[task] == nil {
		c.parted[task] = make([][]*storage.Block, c.part.Parts)
	}
	out := c.parted[task]
	var cur *storage.Block
	return func(row []int32) {
		if cur == nil || cur.Full() {
			cur = c.pool.newBlock(c.arity, c.cat, scatterHint)
			out[p] = append(out[p], cur)
		}
		cur.Append(row)
	}
}

// sinkBulk returns the bulk counterpart of sink for flat collectors: the
// emit function takes a row-major run of whole rows (a gathered batch) and
// appends it across open blocks in block-sized copies instead of one Append
// per row.
func (c *collector) sinkBulk(task int) func(rows []int32) {
	var cur *storage.Block
	return func(rows []int32) {
		for len(rows) > 0 {
			if cur == nil || cur.Full() {
				cur = c.pool.newBlock(c.arity, c.cat, scatterHint)
				c.byTask[task] = append(c.byTask[task], cur)
			}
			n := (storage.DefaultBlockRows - cur.Rows()) * c.arity
			if n > len(rows) {
				n = len(rows)
			}
			cur.AppendBulk(rows[:n])
			rows = rows[n:]
		}
	}
}

// sinkPartBulk is the bulk counterpart of sinkPart: whole gathered batches
// land in one partition of one task with chunked AppendBulk copies.
func (c *collector) sinkPartBulk(task, p int) func(rows []int32) {
	if c.parted[task] == nil {
		c.parted[task] = make([][]*storage.Block, c.part.Parts)
	}
	out := c.parted[task]
	var cur *storage.Block
	return func(rows []int32) {
		for len(rows) > 0 {
			if cur == nil || cur.Full() {
				cur = c.pool.newBlock(c.arity, c.cat, scatterHint)
				out[p] = append(out[p], cur)
			}
			n := (storage.DefaultBlockRows - cur.Rows()) * c.arity
			if n > len(rows) {
				n = len(rows)
			}
			cur.AppendBulk(rows[:n])
			rows = rows[n:]
		}
	}
}

// into adopts all collected blocks into a fresh relation. In partitioned
// mode the relation carries the partitioning, so downstream consumers keyed
// the same way skip their scatter entirely.
func (c *collector) into(name string, colNames []string) *storage.Relation {
	if colNames == nil {
		colNames = storage.NumberedColumns(c.arity)
	}
	out := storage.NewRelation(name, colNames)
	if c.part == nil {
		for _, blocks := range c.byTask {
			for _, b := range blocks {
				b.Compact()
				out.AdoptBlock(b)
			}
		}
		return out
	}
	merged := make([][]*storage.Block, c.part.Parts)
	scattered := int64(0)
	for _, byPart := range c.parted {
		for p, bs := range byPart {
			for _, b := range bs {
				// Compact before sharing: near convergence each partition
				// block holds a handful of rows, and these blocks are adopted
				// into R, living for the rest of the run.
				b.Compact()
				scattered += int64(b.Rows())
			}
			merged[p] = append(merged[p], bs...)
		}
	}
	if c.copy != nil {
		c.copy.Scattered.Add(scattered)
	}
	out.AdoptPartitioned(storage.NewPartitionedView(c.part.KeyCols, c.part.Parts, merged))
	return out
}
