package exec

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"recstep/internal/quickstep/expr"
	"recstep/internal/quickstep/storage"
)

// tcWorkload builds a random sparse digraph for the concurrency tests.
func tcWorkload(n, edges int, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	arc := storage.NewRelation("arc", storage.NumberedColumns(2))
	rows := make([]int32, 0, 2*edges)
	for i := 0; i < edges; i++ {
		rows = append(rows, int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	arc.AppendRows(rows)
	return arc
}

// semiNaiveTC runs the operator-level semi-naive transitive-closure loop:
// partitioned join build, GSCHT dedup, partitioned TPSD — the three
// concurrent structures the radix refactor touches — all on a multi-worker
// pool. Run under -race this exercises the scatter phase, the per-partition
// private builds and the latch-free CCK-GSCHT inserts together.
func semiNaiveTC(t *testing.T, pool *Pool, arc *storage.Relation, parts int) *storage.Relation {
	t.Helper()
	tc := storage.NewRelation("tc", storage.NumberedColumns(2))
	tc.AppendRelation(arc)
	delta := Dedup(pool, arc, DedupGSCHT, arc.NumTuples(), "delta")
	spec := JoinSpec{
		LeftKeys:   []int{1},
		RightKeys:  []int{0},
		BuildLeft:  false,
		Partitions: parts,
		Projs:      []expr.Expr{expr.Col{Index: 0}, expr.Col{Index: 3}},
		OutName:    "tmp",
	}
	for iter := 0; iter < 1000; iter++ {
		tmp := HashJoin(pool, delta, arc, spec)
		rdelta := Dedup(pool, tmp, DedupGSCHT, tmp.NumTuples(), "rdelta")
		delta = SetDifferencePartitioned(pool, rdelta, tc, TPSD, parts, "delta")
		if delta.NumTuples() == 0 {
			return tc
		}
		tc.AppendRelation(delta)
	}
	t.Fatal("transitive closure did not converge")
	return nil
}

// TestPartitionedTCWorkloadRace drives the full partitioned operator
// pipeline at 8 workers; `go test -race` (run in CI) checks for data races
// between the scatter workers, the partition builders and the probe tasks.
func TestPartitionedTCWorkloadRace(t *testing.T) {
	arc := tcWorkload(400, 1200, 42)
	pool := NewPool(8)
	partitioned := semiNaiveTC(t, pool, arc, 16)
	serial := semiNaiveTC(t, NewPool(1), arc, 1)
	if !reflect.DeepEqual(partitioned.SortedRows(), serial.SortedRows()) {
		t.Fatalf("partitioned TC (%d tuples) diverges from serial (%d tuples)",
			partitioned.NumTuples(), serial.NumTuples())
	}
}

// TestConcurrentPartitionViewBuildRace hammers the view cache from many
// goroutine-parallel operators at once (the UIE execution model runs UNION
// ALL branches concurrently, so two joins may race to partition the same
// base relation).
func TestConcurrentPartitionViewBuildRace(t *testing.T) {
	r := tcWorkload(300, 20000, 7)
	pool := NewPool(4)
	done := make(chan *storage.PartitionedView, 8)
	for g := 0; g < 8; g++ {
		go func() {
			done <- PartitionRelation(pool, r, []int{0}, 16)
		}()
	}
	var views []*storage.PartitionedView
	for g := 0; g < 8; g++ {
		views = append(views, <-done)
	}
	for _, v := range views {
		if v.NumTuples() != r.NumTuples() {
			t.Fatalf("racy view holds %d tuples, want %d", v.NumTuples(), r.NumTuples())
		}
	}
}

// TestGSCHTDedupRace runs FAST-DEDUP at 8 workers over a duplicate-heavy
// input; -race checks the CAS publication path.
func TestGSCHTDedupRace(t *testing.T) {
	in := storage.NewRelation("t", storage.NumberedColumns(2))
	rows := make([]int32, 0, 2<<16)
	for i := 0; i < 1<<16; i++ {
		rows = append(rows, int32(i%311), int32(i%179))
	}
	in.AppendRows(rows)
	out := Dedup(NewPool(8), in, DedupGSCHT, in.NumTuples(), "d")
	want := Dedup(NewPool(1), in, DedupSort, 0, "s")
	if !reflect.DeepEqual(out.SortedRows(), want.SortedRows()) {
		t.Fatalf("concurrent GSCHT dedup kept %d tuples, sort baseline %d",
			out.NumTuples(), want.NumTuples())
	}
}

// TestRunPartitionsExactlyOnce hammers the partition-affine scheduler:
// every partition must run exactly once regardless of worker count, skew,
// or how much stealing the skew forces. Run under -race (CI) this also
// checks that stripe claims and steals share no unsynchronized state.
func TestRunPartitionsExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, parts := range []int{1, 3, 16, 64, 256} {
			pool := NewPool(workers)
			ran := make([]atomic.Int32, parts)
			pool.RunPartitions(parts, func(p int) {
				// Heavy skew: partition 0 does ~1000x the work of the rest,
				// so its owner's stripe must be stolen by the other workers.
				n := 10
				if p == 0 {
					n = 10000
				}
				s := 0
				for i := 0; i < n; i++ {
					s += i
				}
				if s < 0 {
					t.Error("impossible")
				}
				ran[p].Add(1)
			})
			for p := range ran {
				if got := ran[p].Load(); got != 1 {
					t.Fatalf("workers=%d parts=%d: partition %d ran %d times", workers, parts, p, got)
				}
			}
		}
	}
}
