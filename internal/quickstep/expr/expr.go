// Package expr provides scalar expressions and predicates evaluated over
// flat int32 rows. The SQL binder compiles SELECT lists and WHERE clauses
// into these forms; execution operators evaluate them on combined join rows.
package expr

import (
	"fmt"
	"strconv"
)

// Expr is an int32-valued scalar expression over a row.
type Expr interface {
	Eval(row []int32) int32
	String() string
}

// Col references a column by position in the evaluated row. Name is retained
// only for diagnostics and SQL rendering.
type Col struct {
	Index int
	Name  string
}

// Eval returns the referenced column value.
func (c Col) Eval(row []int32) int32 { return row[c.Index] }

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Lit is an integer literal.
type Lit struct {
	Value int32
}

// Eval returns the literal value.
func (l Lit) Eval(row []int32) int32 { return l.Value }

func (l Lit) String() string { return strconv.Itoa(int(l.Value)) }

// ArithOp enumerates the supported arithmetic operators.
type ArithOp byte

// Arithmetic operators.
const (
	Add ArithOp = '+'
	Sub ArithOp = '-'
	Mul ArithOp = '*'
)

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval applies the operator to both operands.
func (a Arith) Eval(row []int32) int32 {
	l, r := a.L.Eval(row), a.R.Eval(row)
	switch a.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	}
	panic(fmt.Sprintf("expr: unknown arithmetic op %q", a.Op))
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R)
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp is a comparison predicate between two scalar expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Holds evaluates the predicate on a row.
func (c Cmp) Holds(row []int32) bool {
	l, r := c.L.Eval(row), c.R.Eval(row)
	switch c.Op {
	case EQ:
		return l == r
	case NE:
		return l != r
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	}
	panic(fmt.Sprintf("expr: unknown comparison op %d", c.Op))
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// All reports whether every predicate holds on the row.
func All(preds []Cmp, row []int32) bool {
	for _, p := range preds {
		if !p.Holds(row) {
			return false
		}
	}
	return true
}

// Columns collects the column indices an expression reads.
func Columns(e Expr) []int {
	var out []int
	walk(e, func(c Col) { out = append(out, c.Index) })
	return out
}

func walk(e Expr, fn func(Col)) {
	switch v := e.(type) {
	case Col:
		fn(v)
	case Arith:
		walk(v.L, fn)
		walk(v.R, fn)
	case Lit:
	default:
		panic(fmt.Sprintf("expr: unknown expression type %T", e))
	}
}

// MaxColumn returns the largest column index referenced by the expression,
// or -1 when it references none.
func MaxColumn(e Expr) int {
	max := -1
	walk(e, func(c Col) {
		if c.Index > max {
			max = c.Index
		}
	})
	return max
}

// MaxColumnCmp returns the largest column index referenced by the predicate,
// or -1.
func MaxColumnCmp(c Cmp) int {
	l, r := MaxColumn(c.L), MaxColumn(c.R)
	if l > r {
		return l
	}
	return r
}

// Shift returns a copy of e with every column index displaced by delta.
// Operators use it to re-base expressions onto combined join rows.
func Shift(e Expr, delta int) Expr {
	switch v := e.(type) {
	case Col:
		return Col{Index: v.Index + delta, Name: v.Name}
	case Lit:
		return v
	case Arith:
		return Arith{Op: v.Op, L: Shift(v.L, delta), R: Shift(v.R, delta)}
	}
	panic(fmt.Sprintf("expr: unknown expression type %T", e))
}

// ShiftCmp re-bases both sides of a predicate.
func ShiftCmp(c Cmp, delta int) Cmp {
	return Cmp{Op: c.Op, L: Shift(c.L, delta), R: Shift(c.R, delta)}
}

// Remap returns a copy of e with every column index rewritten through f.
// The join-ordering pass uses it to move expressions from declaration-order
// combined coordinates into the coordinates of a reordered join chain.
func Remap(e Expr, f func(int) int) Expr {
	switch v := e.(type) {
	case Col:
		return Col{Index: f(v.Index), Name: v.Name}
	case Lit:
		return v
	case Arith:
		return Arith{Op: v.Op, L: Remap(v.L, f), R: Remap(v.R, f)}
	}
	panic(fmt.Sprintf("expr: unknown expression type %T", e))
}

// RemapCmp rewrites both sides of a predicate through f.
func RemapCmp(c Cmp, f func(int) int) Cmp {
	return Cmp{Op: c.Op, L: Remap(c.L, f), R: Remap(c.R, f)}
}
