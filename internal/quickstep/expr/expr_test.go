package expr

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestColAndLitEval(t *testing.T) {
	row := []int32{10, 20, 30}
	if got := (Col{Index: 1}).Eval(row); got != 20 {
		t.Fatalf("Col eval = %d, want 20", got)
	}
	if got := (Lit{Value: -7}).Eval(row); got != -7 {
		t.Fatalf("Lit eval = %d, want -7", got)
	}
}

func TestArithEval(t *testing.T) {
	row := []int32{6, 3}
	cases := []struct {
		op   ArithOp
		want int32
	}{{Add, 9}, {Sub, 3}, {Mul, 18}}
	for _, c := range cases {
		e := Arith{Op: c.op, L: Col{Index: 0}, R: Col{Index: 1}}
		if got := e.Eval(row); got != c.want {
			t.Errorf("%c: got %d, want %d", c.op, got, c.want)
		}
	}
}

func TestCmpHolds(t *testing.T) {
	row := []int32{5, 5, 9}
	cases := []struct {
		op   CmpOp
		l, r int
		want bool
	}{
		{EQ, 0, 1, true}, {EQ, 0, 2, false},
		{NE, 0, 2, true}, {NE, 0, 1, false},
		{LT, 0, 2, true}, {LT, 2, 0, false},
		{LE, 0, 1, true}, {GT, 2, 0, true}, {GE, 1, 0, true},
	}
	for _, c := range cases {
		p := Cmp{Op: c.op, L: Col{Index: c.l}, R: Col{Index: c.r}}
		if got := p.Holds(row); got != c.want {
			t.Errorf("%v: got %t, want %t", p, got, c.want)
		}
	}
}

func TestAll(t *testing.T) {
	row := []int32{1, 2}
	preds := []Cmp{
		{Op: LT, L: Col{Index: 0}, R: Col{Index: 1}},
		{Op: EQ, L: Col{Index: 0}, R: Lit{Value: 1}},
	}
	if !All(preds, row) {
		t.Fatal("All should hold")
	}
	preds = append(preds, Cmp{Op: GT, L: Col{Index: 0}, R: Lit{Value: 5}})
	if All(preds, row) {
		t.Fatal("All should fail with extra predicate")
	}
}

func TestColumnsAndMax(t *testing.T) {
	e := Arith{Op: Add, L: Col{Index: 2}, R: Arith{Op: Mul, L: Col{Index: 5}, R: Lit{Value: 3}}}
	if got := Columns(e); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("Columns = %v, want [2 5]", got)
	}
	if got := MaxColumn(e); got != 5 {
		t.Fatalf("MaxColumn = %d, want 5", got)
	}
	if got := MaxColumn(Lit{Value: 1}); got != -1 {
		t.Fatalf("MaxColumn(lit) = %d, want -1", got)
	}
	c := Cmp{Op: EQ, L: Col{Index: 7}, R: Lit{}}
	if got := MaxColumnCmp(c); got != 7 {
		t.Fatalf("MaxColumnCmp = %d, want 7", got)
	}
}

func TestShift(t *testing.T) {
	e := Arith{Op: Add, L: Col{Index: 1}, R: Lit{Value: 4}}
	s := Shift(e, 3)
	row := []int32{0, 0, 0, 0, 10}
	if got := s.Eval(row); got != 14 {
		t.Fatalf("shifted eval = %d, want 14", got)
	}
	c := ShiftCmp(Cmp{Op: EQ, L: Col{Index: 0}, R: Col{Index: 1}}, 2)
	if got := MaxColumnCmp(c); got != 3 {
		t.Fatalf("shifted cmp max col = %d, want 3", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := Arith{Op: Add, L: Col{Index: 0, Name: "a.x"}, R: Lit{Value: 2}}
	if got := e.String(); got != "(a.x + 2)" {
		t.Fatalf("String = %q", got)
	}
	c := Cmp{Op: NE, L: Col{Index: 0, Name: "x"}, R: Col{Index: 1, Name: "y"}}
	if got := c.String(); got != "x <> y" {
		t.Fatalf("String = %q", got)
	}
	if got := (Col{Index: 3}).String(); got != "$3" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Shift(e, d) over a row prefixed with d zeros equals e over the
// original row.
func TestShiftProperty(t *testing.T) {
	f := func(a, b int32, d uint8) bool {
		delta := int(d % 16)
		e := Arith{Op: Add, L: Col{Index: 0}, R: Arith{Op: Mul, L: Col{Index: 1}, R: Lit{Value: 2}}}
		row := []int32{a, b}
		shifted := Shift(e, delta)
		padded := make([]int32, delta+2)
		copy(padded[delta:], row)
		return e.Eval(row) == shifted.Eval(padded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
