package gscht

import "sync/atomic"

// Batched table operations. Every entry point splits into two phases per
// batch: a branch-free hash phase that computes all bucket indices with one
// multiply-mix loop (vectorizable, no memory dependences), then a chain
// phase that walks buckets. Splitting the phases keeps the hash loop out of
// the chain walk's dependent-load shadow, so the out-of-order core overlaps
// the bucket-array cache misses of consecutive probes — the memory-level
// parallelism a tuple-at-a-time hash-then-chase loop forfeits.
//
// The *Local variants additionally drop every atomic: partition-private
// tables in the fused delta step are built and probed by exactly one
// goroutine for the lifetime of the partition pass, so the CAS publish of
// the concurrent path is pure overhead there. Later readers of the same
// partition are ordered behind the pass by the scheduler's happens-before
// edge (the RunPartitions join), never by the table itself.

// headBatch is the sub-batch width of the bucket-head preload passes: before
// each run of chain walks, the heads of the next headBatch buckets are
// loaded in one branch-free loop, then each non-empty chain's first node
// (key and next link) in a second. The chain walk's data-dependent branches
// (dup vs fresh) flush speculative lookahead on every mispredict, so the
// walk loop alone cannot keep enough cache misses in flight; the preload
// passes issue them all before the first branch, and a chain of length one —
// the steady state of a table sized to its distinct count — resolves
// entirely from the preloaded scratch.
const headBatch = 256

// nodePre64 holds one sub-batch of preloaded chain heads for Table64: the
// head locator, the first node's packed key halves, and its next link.
type nodePre64 struct {
	heads, k0, k1, next [headBatch]int32
}

// load fills the scratch for keys [off, off+bn) — pass 1 gathers the bucket
// heads with plain reads (single-writer tables), pass 2 the first node of
// every non-empty chain. Returns the spine snapshot the node pass used; it
// covers every node reachable from the gathered heads (taken after them),
// so the caller's walks reuse it instead of re-loading the spine per node.
func (p *nodePre64) load(t *Table64, bidx []int32, off, bn int) [][]int32 {
	bx := bidx[off : off+bn]
	for j, bi := range bx {
		p.heads[j] = t.buckets[bi]
	}
	return p.loadNodes(t, bn)
}

// loadAtomic is load with atomic head reads (shared tables).
func (p *nodePre64) loadAtomic(t *Table64, bidx []int32, off, bn int) [][]int32 {
	bx := bidx[off : off+bn]
	for j, bi := range bx {
		p.heads[j] = atomic.LoadInt32(&t.buckets[bi])
	}
	return p.loadNodes(t, bn)
}

func (p *nodePre64) loadNodes(t *Table64, bn int) [][]int32 {
	sp := t.spine()
	for j := 0; j < bn; j++ {
		if h := p.heads[j]; h != 0 {
			chunk, o := nodeAt64(sp, h-1)
			p.k0[j] = chunk[o]
			p.k1[j] = chunk[o+1]
			p.next[j] = chunk[o+2]
		}
	}
	return sp
}

// walk reports whether k is in slot j's preloaded chain and returns the
// chain head it covered (the snapshot for CAS or prefix re-checks). The
// length-≤1 cases resolve inline from the scratch — a table sized to its
// distinct count stays in that regime — and only longer chains fall through
// to the out-of-line tail loop.
func (p *nodePre64) walk(sp [][]int32, j int, k uint64) (dup bool, snap int32) {
	snap = p.heads[j]
	if snap == 0 {
		return false, 0
	}
	if uint64(uint32(p.k0[j]))|uint64(uint32(p.k1[j]))<<32 == k {
		return true, snap
	}
	n := p.next[j]
	if n == 0 {
		return false, snap
	}
	return walkTail64(sp, n, k), snap
}

// walkTail64 scans a chain from node locator n (already past the preloaded
// first node) for k. Kept out of line so walk's length-≤1 fast path inlines
// into the batch loops.
//
//go:noinline
func walkTail64(sp [][]int32, n int32, k uint64) bool {
	for n != 0 {
		chunk, o := nodeAt64(sp, n-1)
		if uint64(uint32(chunk[o]))|uint64(uint32(chunk[o+1]))<<32 == k {
			return true
		}
		n = chunk[o+2]
	}
	return false
}

// bucketIndexBatch computes the bucket index of each key — the branch-free
// hash phase. bidx must hold len(keys) entries.
func (t *Table64) bucketIndexBatch(keys []uint64, bidx []int32) {
	mask := t.mask
	bidx = bidx[:len(keys)]
	for i, k := range keys {
		k ^= k >> 33
		k *= fibMult
		k ^= k >> 29
		bidx[i] = int32((k >> 16) & mask)
	}
}

// ProbeBatch reports, for each key, whether it is present. bidx is caller
// scratch of at least len(keys) entries; hits must hold len(keys) entries.
// Safe to run concurrently with inserts (like Contains, a probe may miss
// keys inserted after the batch starts).
func (t *Table64) ProbeBatch(keys []uint64, bidx []int32, hits []bool) {
	t.bucketIndexBatch(keys, bidx)
	hits = hits[:len(keys)]
	var pre nodePre64
	for off := 0; off < len(keys); off += headBatch {
		bn := len(keys) - off
		if bn > headBatch {
			bn = headBatch
		}
		sp := pre.loadAtomic(t, bidx, off, bn)
		for j := 0; j < bn; j++ {
			hit, _ := pre.walk(sp, j, keys[off+j])
			hits[off+j] = hit
		}
	}
}

// InsertBatchLocal inserts every absent key of the batch and appends the
// batch-relative index (offset by base) of each newly inserted key to sel,
// returning the extended selection vector. Single-writer: the caller must
// be the only goroutine touching the table for the duration of the batch.
// Duplicates within the batch are deduplicated (the first occurrence wins).
func (t *Table64) InsertBatchLocal(keys []uint64, bidx []int32, arena *Arena64, base int32, sel []int32) []int32 {
	t.bucketIndexBatch(keys, bidx)
	inserted := int64(0)
	var pre nodePre64
	for off := 0; off < len(keys); off += headBatch {
		bn := len(keys) - off
		if bn > headBatch {
			bn = headBatch
		}
		sp := pre.load(t, bidx, off, bn)
		for j := 0; j < bn; j++ {
			i := off + j
			k := keys[i]
			dup, snap := pre.walk(sp, j, k)
			if dup {
				continue
			}
			b := &t.buckets[bidx[i]]
			head := *b
			// A preceding key of this sub-batch may have grown the chain
			// past the preloaded snapshot (a same-bucket duplicate the stale
			// walk cannot see); re-check just the new prefix. Those prefix
			// nodes may live in a chunk younger than sp, so this walk goes
			// through the table's own spine.
			for n := head; n != snap && n != 0; {
				chunk, o := t.node(n - 1)
				if uint64(uint32(chunk[o]))|uint64(uint32(chunk[o+1]))<<32 == k {
					dup = true
					break
				}
				n = chunk[o+2]
			}
			if dup {
				continue
			}
			fresh, fc, fo := arena.newAt(t, k)
			fc[fo+2] = head
			*b = fresh + 1
			inserted++
			sel = append(sel, base+int32(i))
		}
	}
	t.size.Add(inserted)
	return sel
}

// InsertBatchBuild links every key into the table without any duplicate
// check — the bulk-build kernel for sources the engine guarantees distinct
// (R's blocks when seeding an OPSD diff table: the fixpoint relation is
// maintained duplicate-free). Single-writer, like InsertBatchLocal. The
// head preload warms the bucket lines; the link pass re-reads each head
// from the (now cache-resident) bucket itself, so two same-bucket keys of
// one sub-batch chain correctly.
func (t *Table64) InsertBatchBuild(keys []uint64, bidx []int32, arena *Arena64) {
	t.bucketIndexBatch(keys, bidx)
	var heads [headBatch]int32
	for off := 0; off < len(keys); off += headBatch {
		bn := len(keys) - off
		if bn > headBatch {
			bn = headBatch
		}
		bx := bidx[off : off+bn]
		for j, bi := range bx {
			heads[j] = t.buckets[bi]
		}
		for j, bi := range bx {
			// heads[j] is only the prefetch; the link reads the bucket itself
			// (an L1 hit now) so same-bucket keys of one sub-batch chain
			// correctly.
			_ = heads[j]
			b := &t.buckets[bi]
			fresh, fc, fo := arena.newAt(t, keys[off+j])
			fc[fo+2] = *b
			*b = fresh + 1
		}
	}
	t.size.Add(int64(len(keys)))
}

// InsertBatch is InsertBatchLocal for shared tables: node publication goes
// through the bucket-head CAS, so any number of workers may run batches
// concurrently. Semantics otherwise match InsertBatchLocal.
func (t *Table64) InsertBatch(keys []uint64, bidx []int32, arena *Arena64, base int32, sel []int32) []int32 {
	t.bucketIndexBatch(keys, bidx)
	inserted := int64(0)
	var pre nodePre64
	for off := 0; off < len(keys); off += headBatch {
		bn := len(keys) - off
		if bn > headBatch {
			bn = headBatch
		}
		sp := pre.loadAtomic(t, bidx, off, bn)
		for j := 0; j < bn; j++ {
			i := off + j
			k := keys[i]
			b := &t.buckets[bidx[i]]
			// First attempt walks the preloaded chain; a hit there is final
			// (chains only grow), and a miss publishes via CAS against the
			// walked head, so any interleaved insert — another worker's or an
			// earlier key of this sub-batch — fails the CAS and retries the
			// full walk on a fresh load (through the table's own spine: the
			// fresh chain may reach chunks younger than sp).
			dup, head := pre.walk(sp, j, k)
			if dup {
				continue
			}
			fresh, fc, fo := arena.newAt(t, k)
			fresh++
			for {
				fc[fo+2] = head
				if atomic.CompareAndSwapInt32(b, head, fresh) {
					inserted++
					sel = append(sel, base+int32(i))
					break
				}
				head = atomic.LoadInt32(b)
				dup = false
				for n := head; n != 0; {
					chunk, o := t.node(n - 1)
					if uint64(uint32(chunk[o]))|uint64(uint32(chunk[o+1]))<<32 == k {
						dup = true
						break
					}
					n = chunk[o+2]
				}
				if dup {
					break
				}
			}
		}
	}
	t.size.Add(inserted)
	return sel
}

// bucketIndexBatch is the 128-bit hash phase over parallel lo/hi key slices.
func (t *Table128) bucketIndexBatch(lo, hi []uint64, bidx []int32) {
	mask := t.mask
	hi = hi[:len(lo)]
	bidx = bidx[:len(lo)]
	for i, l := range lo {
		h := hi[i]
		h ^= h >> 33
		h *= fibMult
		h ^= h >> 29
		k := l ^ h
		k ^= k >> 33
		k *= fibMult
		k ^= k >> 29
		bidx[i] = int32((k >> 16) & mask)
	}
}

// ProbeBatch reports presence of each (lo[i], hi[i]) key.
func (t *Table128) ProbeBatch(lo, hi []uint64, bidx []int32, hits []bool) {
	t.bucketIndexBatch(lo, hi, bidx)
	hits = hits[:len(lo)]
	var heads [headBatch]int32
	for off := 0; off < len(lo); off += headBatch {
		bn := len(lo) - off
		if bn > headBatch {
			bn = headBatch
		}
		for j := 0; j < bn; j++ {
			heads[j] = atomic.LoadInt32(&t.buckets[bidx[off+j]])
		}
		for j := 0; j < bn; j++ {
			i := off + j
			key := Key128{Hi: hi[i], Lo: lo[i]}
			hit := false
			for n := heads[j]; n != 0; {
				chunk, o := t.node(n - 1)
				if matches128(chunk, o, key) {
					hit = true
					break
				}
				n = chunk[o+4]
			}
			hits[i] = hit
		}
	}
}

// InsertBatchLocal is the single-writer batched insert for 128-bit keys.
func (t *Table128) InsertBatchLocal(lo, hi []uint64, bidx []int32, arena *Arena128, base int32, sel []int32) []int32 {
	t.bucketIndexBatch(lo, hi, bidx)
	inserted := int64(0)
	var heads [headBatch]int32
	for off := 0; off < len(lo); off += headBatch {
		bn := len(lo) - off
		if bn > headBatch {
			bn = headBatch
		}
		for j := 0; j < bn; j++ {
			heads[j] = t.buckets[bidx[off+j]]
		}
		for j := 0; j < bn; j++ {
			i := off + j
			key := Key128{Hi: hi[i], Lo: lo[i]}
			snap := heads[j]
			dup := false
			for n := snap; n != 0; {
				chunk, o := t.node(n - 1)
				if matches128(chunk, o, key) {
					dup = true
					break
				}
				n = chunk[o+4]
			}
			if dup {
				continue
			}
			b := &t.buckets[bidx[i]]
			head := *b
			// Re-check the prefix a same-bucket predecessor of this
			// sub-batch may have added past the snapshot.
			for n := head; n != snap && n != 0; {
				chunk, o := t.node(n - 1)
				if matches128(chunk, o, key) {
					dup = true
					break
				}
				n = chunk[o+4]
			}
			if dup {
				continue
			}
			fresh := arena.new(t, key) + 1
			fc, fo := t.node(fresh - 1)
			fc[fo+4] = head
			*b = fresh
			inserted++
			sel = append(sel, base+int32(i))
		}
	}
	t.size.Add(inserted)
	return sel
}

// InsertBatchBuild is the 128-bit no-duplicate-check bulk build (see the
// Table64 variant for the contract).
func (t *Table128) InsertBatchBuild(lo, hi []uint64, bidx []int32, arena *Arena128) {
	t.bucketIndexBatch(lo, hi, bidx)
	var heads [headBatch]int32
	for off := 0; off < len(lo); off += headBatch {
		bn := len(lo) - off
		if bn > headBatch {
			bn = headBatch
		}
		bx := bidx[off : off+bn]
		for j, bi := range bx {
			heads[j] = t.buckets[bi]
		}
		for j, bi := range bx {
			_ = heads[j]
			b := &t.buckets[bi]
			fresh := arena.new(t, Key128{Hi: hi[off+j], Lo: lo[off+j]}) + 1
			fc, fo := t.node(fresh - 1)
			fc[fo+4] = *b
			*b = fresh
		}
	}
	t.size.Add(int64(len(lo)))
}

// InsertBatch is the concurrent batched insert for 128-bit keys.
func (t *Table128) InsertBatch(lo, hi []uint64, bidx []int32, arena *Arena128, base int32, sel []int32) []int32 {
	t.bucketIndexBatch(lo, hi, bidx)
	inserted := int64(0)
	var heads [headBatch]int32
	for off := 0; off < len(lo); off += headBatch {
		bn := len(lo) - off
		if bn > headBatch {
			bn = headBatch
		}
		for j := 0; j < bn; j++ {
			heads[j] = atomic.LoadInt32(&t.buckets[bidx[off+j]])
		}
		for j := 0; j < bn; j++ {
			i := off + j
			key := Key128{Hi: hi[i], Lo: lo[i]}
			b := &t.buckets[bidx[i]]
			// As in Table64.InsertBatch: the first walk uses the preloaded
			// head, and the CAS against that head catches every interleaved
			// publish.
			head := heads[j]
			fresh := int32(0)
			for {
				dup := false
				for n := head; n != 0; {
					chunk, o := t.node(n - 1)
					if matches128(chunk, o, key) {
						dup = true
						break
					}
					n = chunk[o+4]
				}
				if dup {
					break
				}
				if fresh == 0 {
					fresh = arena.new(t, key) + 1
				}
				fc, fo := t.node(fresh - 1)
				fc[fo+4] = head
				if atomic.CompareAndSwapInt32(b, head, fresh) {
					inserted++
					sel = append(sel, base+int32(i))
					break
				}
				head = atomic.LoadInt32(b)
			}
		}
	}
	t.size.Add(inserted)
	return sel
}
