package gscht

import (
	"fmt"
	"testing"
)

// batchWindowBench mirrors the executor's batch window (kernels.BatchRows).
const batchWindowBench = 1024

// Batched-vs-scalar insert microbenchmarks across table footprints: "small"
// sits in L2 (the per-partition regime of a fanned-out delta step), "large"
// spills to L3/DRAM (the shared-table regime), which is where the preload
// passes' memory-level parallelism should separate the two paths. Keys are
// fibMix-scrambled so bucket order is random, and half the stream is
// duplicates — the delta-step steady state.
func BenchmarkInsertBatchLocal(b *testing.B) {
	for _, distinct := range []int{1 << 15, 1 << 20} {
		label := "small"
		if distinct >= 1<<20 {
			label = "large"
		}
		keys := make([]uint64, 2*distinct)
		for i := range keys {
			// i%distinct gives every key exactly one duplicate.
			keys[i] = fibMix(uint64(i%distinct)) | 1
		}
		bidx := make([]int32, batchWindowBench)
		sel := make([]int32, 0, batchWindowBench)
		b.Run(fmt.Sprintf("batch/%s", label), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				t := NewTable64(distinct)
				var arena Arena64
				for off := 0; off < len(keys); off += batchWindowBench {
					bn := min(batchWindowBench, len(keys)-off)
					sel = t.InsertBatchLocal(keys[off:off+bn], bidx, &arena, 0, sel[:0])
				}
				if t.Len() != distinct {
					b.Fatalf("inserted %d keys, want %d", t.Len(), distinct)
				}
			}
			b.SetBytes(int64(len(keys) * 8))
		})
		b.Run(fmt.Sprintf("scalar/%s", label), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				t := NewTable64(distinct)
				var arena Arena64
				for _, k := range keys {
					t.InsertIfAbsent(k, &arena)
				}
				if t.Len() != distinct {
					b.Fatalf("inserted %d keys, want %d", t.Len(), distinct)
				}
			}
			b.SetBytes(int64(len(keys) * 8))
		})
	}
}
