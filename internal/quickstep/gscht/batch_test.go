package gscht

import (
	"math/rand"
	"sync"
	"testing"
)

func batchKeys64(r *rand.Rand, n, domain int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(r.Intn(domain))<<32 | uint64(r.Intn(domain))
	}
	return keys
}

func TestInsertBatchLocalMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 255, 1024, 1025} {
		keys := batchKeys64(r, n, 64) // small domain forces in-batch duplicates
		ref := NewTable64(n)
		var refAr Arena64
		var wantSel []int32
		for i, k := range keys {
			if ref.InsertIfAbsent(k, &refAr) {
				wantSel = append(wantSel, int32(i))
			}
		}

		tab := NewTable64(n)
		var ar Arena64
		bidx := make([]int32, n)
		sel := tab.InsertBatchLocal(keys, bidx, &ar, 0, nil)
		if len(sel) != len(wantSel) {
			t.Fatalf("n=%d: batch inserted %d, scalar %d", n, len(sel), len(wantSel))
		}
		for i := range sel {
			if sel[i] != wantSel[i] {
				t.Fatalf("n=%d i=%d: sel %d want %d", n, i, sel[i], wantSel[i])
			}
		}
		if tab.Len() != ref.Len() {
			t.Fatalf("n=%d: Len %d want %d", n, tab.Len(), ref.Len())
		}
		for _, k := range keys {
			if !tab.Contains(k) {
				t.Fatalf("n=%d: key %#x missing after batch insert", n, k)
			}
		}
	}
}

func TestProbeBatch64(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 1023
	keys := batchKeys64(r, n, 1000)
	tab := NewTable64(n)
	var ar Arena64
	for i := 0; i < n; i += 2 {
		tab.InsertIfAbsent(keys[i], &ar)
	}
	bidx := make([]int32, n)
	hits := make([]bool, n)
	tab.ProbeBatch(keys, bidx, hits)
	for i, k := range keys {
		if hits[i] != tab.Contains(k) {
			t.Fatalf("i=%d key %#x: ProbeBatch %v, Contains %v", i, k, hits[i], tab.Contains(k))
		}
	}
	// Empty batch is a no-op.
	tab.ProbeBatch(nil, bidx, hits)
}

func TestInsertBatchConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const workers = 8
	const perWorker = 4096
	shared := batchKeys64(r, 512, 400) // overlap across workers
	tab := NewTable64(workers * perWorker)
	distinct := make(map[uint64]struct{})
	batches := make([][]uint64, workers)
	for w := range batches {
		keys := make([]uint64, perWorker)
		for i := range keys {
			if r.Intn(2) == 0 {
				keys[i] = shared[r.Intn(len(shared))]
			} else {
				keys[i] = uint64(w)<<48 | uint64(i)
			}
			distinct[keys[i]] = struct{}{}
		}
		batches[w] = keys
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(keys []uint64) {
			defer wg.Done()
			var ar Arena64
			bidx := make([]int32, 256)
			for off := 0; off < len(keys); off += 256 {
				end := off + 256
				if end > len(keys) {
					end = len(keys)
				}
				tab.InsertBatch(keys[off:end], bidx, &ar, int32(off), nil)
			}
		}(batches[w])
	}
	wg.Wait()
	if tab.Len() != len(distinct) {
		t.Fatalf("Len %d, want %d distinct", tab.Len(), len(distinct))
	}
	for k := range distinct {
		if !tab.Contains(k) {
			t.Fatalf("key %#x missing after concurrent batch insert", k)
		}
	}
}

func batchKeys128(r *rand.Rand, n, domain int) (lo, hi []uint64) {
	lo = make([]uint64, n)
	hi = make([]uint64, n)
	for i := range lo {
		lo[i] = uint64(r.Intn(domain))<<32 | uint64(r.Intn(domain))
		hi[i] = uint64(r.Intn(domain))
	}
	return lo, hi
}

func TestInsertBatchLocal128MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 7, 255, 513} {
		lo, hi := batchKeys128(r, n, 32)
		ref := NewTable128(n)
		var refAr Arena128
		var wantSel []int32
		for i := range lo {
			if ref.InsertIfAbsent(Key128{Hi: hi[i], Lo: lo[i]}, &refAr) {
				wantSel = append(wantSel, int32(i))
			}
		}

		tab := NewTable128(n)
		var ar Arena128
		bidx := make([]int32, n)
		sel := tab.InsertBatchLocal(lo, hi, bidx, &ar, 0, nil)
		if len(sel) != len(wantSel) {
			t.Fatalf("n=%d: batch inserted %d, scalar %d", n, len(sel), len(wantSel))
		}
		for i := range sel {
			if sel[i] != wantSel[i] {
				t.Fatalf("n=%d i=%d: sel %d want %d", n, i, sel[i], wantSel[i])
			}
		}
		if tab.Len() != ref.Len() {
			t.Fatalf("n=%d: Len %d want %d", n, tab.Len(), ref.Len())
		}
	}
}

func TestProbeAndInsertBatch128Concurrent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 2048
	lo, hi := batchKeys128(r, n, 64)
	distinct := make(map[Key128]struct{})
	for i := range lo {
		distinct[Key128{Hi: hi[i], Lo: lo[i]}] = struct{}{}
	}
	tab := NewTable128(n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			var ar Arena128
			bidx := make([]int32, 512)
			part := n / 4
			// Overlapping halves so workers race on the same keys.
			a, b := off*part/2, off*part/2+part
			tab.InsertBatch(lo[a:b], hi[a:b], bidx, &ar, int32(a), nil)
		}(w)
	}
	wg.Wait()
	bidx := make([]int32, n)
	hits := make([]bool, n)
	tab.ProbeBatch(lo, hi, bidx, hits)
	for i := range lo {
		want := tab.Contains(Key128{Hi: hi[i], Lo: lo[i]})
		if hits[i] != want {
			t.Fatalf("i=%d: ProbeBatch %v, Contains %v", i, hits[i], want)
		}
	}
}
