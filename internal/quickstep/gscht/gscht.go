// Package gscht implements the Compact-Concatenated-Key Global Separate
// Chaining Hash Table (CCK-GSCHT) from the RecStep paper's FAST-DEDUP
// optimization (Section 5.2, Figure 5).
//
// Tuples of small fixed arity are packed into a compact concatenated key —
// 8 bytes for up to two int32 attributes, 16 bytes for up to four — so the
// key is the tuple: no separate ⟨key,value⟩ pair, no pointer back to the
// original row, and no stored hash code. Buckets hold only a head index and
// are pre-allocated from an estimated distinct count, minimizing chain
// conflicts. Inserts are latch-free: a compare-and-swap on the bucket head
// publishes each node, and losers re-walk the chain so duplicates are never
// admitted (the "conflict with memory contention → wait until the other one
// finishes insertion" arrow in Figure 5 becomes a CAS retry).
//
// Chain nodes live in int32 slabs and link by slab index rather than
// pointer, so both the bucket array and the node storage allocate through a
// storage.Lifecycle: tables built by the engine are budget-accounted by the
// memory manager and their arrays are recycled on Release instead of landing
// on the Go heap — and the garbage collector never scans a chain.
package gscht

import (
	"sync"
	"sync/atomic"

	"recstep/internal/quickstep/kernels"
	"recstep/internal/quickstep/storage"
)

// PackKey64 concatenates up to two int32 attributes into one 64-bit compact
// key. Attribute order is significant: (x, y) and (y, x) pack differently.
func PackKey64(tuple []int32) uint64 {
	switch len(tuple) {
	case 1:
		return uint64(uint32(tuple[0]))
	case 2:
		return uint64(uint32(tuple[0]))<<32 | uint64(uint32(tuple[1]))
	default:
		panic("gscht: PackKey64 requires arity 1 or 2")
	}
}

// UnpackKey64 reverses PackKey64 into the supplied tuple buffer.
func UnpackKey64(key uint64, tuple []int32) {
	switch len(tuple) {
	case 1:
		tuple[0] = int32(uint32(key))
	case 2:
		tuple[0] = int32(uint32(key >> 32))
		tuple[1] = int32(uint32(key))
	default:
		panic("gscht: UnpackKey64 requires arity 1 or 2")
	}
}

// Key128 is a compact concatenated key for tuples of three or four int32
// attributes.
type Key128 struct {
	Hi, Lo uint64
}

// PackKey128 concatenates three or four int32 attributes.
func PackKey128(tuple []int32) Key128 {
	switch len(tuple) {
	case 3:
		return Key128{Hi: uint64(uint32(tuple[0])), Lo: uint64(uint32(tuple[1]))<<32 | uint64(uint32(tuple[2]))}
	case 4:
		return Key128{
			Hi: uint64(uint32(tuple[0]))<<32 | uint64(uint32(tuple[1])),
			Lo: uint64(uint32(tuple[2]))<<32 | uint64(uint32(tuple[3])),
		}
	default:
		panic("gscht: PackKey128 requires arity 3 or 4")
	}
}

// Node slab layout. Nodes are fixed-stride runs of int32s inside 4096-int32
// (16 KiB) chunks — exactly one block-pool size class, so recycled chunk
// arrays carry no padding waste. The stride is a power of two so locating a
// node is two shifts, no division.
//
//	node64:  [keyLo, keyHi, next, _]                      stride 4
//	node128: [loLo, loHi, hiLo, hiHi, next, _, _, _]      stride 8
//
// next holds the successor's node index + 1 (0 terminates the chain), the
// same encoding bucket heads use, so an empty bucket array is all zeros —
// cleared with one memclr when a recycled array is adopted.
const (
	chunkInt32s   = 4096
	chunkShift64  = 10 // 1024 nodes of stride 4 per chunk
	chunkShift128 = 9  // 512 nodes of stride 8 per chunk
)

// slabs owns the node storage of one table: a copy-on-grow spine of fixed
// size chunks. The spine pointer is swapped atomically so readers chasing a
// just-published node index always observe the chunk that holds it (the
// chunk is appended and the spine published before any node inside it can
// win a bucket CAS).
type slabs struct {
	mu    sync.Mutex
	spine atomic.Pointer[[][]int32]
	next  int32 // first unassigned node index (guarded by mu)
}

// grow appends one chunk and returns the base index of its nodes. The
// spine's backing array is shared between successive published headers:
// readers never index past their own header's length, so writing the next
// slot in place is safe, and the array is copied only on capacity doubling
// — O(chunks) total spine work instead of O(chunks²).
func (s *slabs) grow(lc storage.Lifecycle, cat storage.Category, nodesPerChunk int32) (chunk []int32, base int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunk = allocInt32s(lc, cat, chunkInt32s)
	var sp [][]int32
	if old := s.spine.Load(); old != nil {
		sp = *old
	}
	if len(sp) == cap(sp) {
		grown := make([][]int32, len(sp), 2*len(sp)+4)
		copy(grown, sp)
		sp = grown
	}
	sp = append(sp, chunk)
	s.spine.Store(&sp)
	base = s.next
	if base > 1<<31-1-nodesPerChunk {
		// Node indexes are int32 (half the footprint of pointers); a single
		// table needing more than 2^31 nodes (~34 GB of slabs) should fail
		// loudly here, not wrap negative and corrupt a chain.
		panic("gscht: table exceeds 2^31 chain nodes")
	}
	s.next += nodesPerChunk
	return chunk, base
}

// release returns every chunk to the lifecycle pool.
func (s *slabs) release(lc storage.Lifecycle, cat storage.Category) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp := s.spine.Load(); sp != nil {
		for _, chunk := range *sp {
			freeInt32s(lc, cat, chunk)
		}
	}
	s.spine.Store(nil)
	s.next = 0
}

// allocInt32s hands out a full-length array of n int32s through lc (nil
// selects the Go heap). Pool arrays come back with stale contents; callers
// that need zeroed memory clear it themselves.
func allocInt32s(lc storage.Lifecycle, cat storage.Category, n int) []int32 {
	if lc == nil {
		return make([]int32, n)
	}
	arr := lc.AllocData(cat, n)
	return arr[:n]
}

func freeInt32s(lc storage.Lifecycle, cat storage.Category, arr []int32) {
	if lc != nil && arr != nil {
		lc.FreeData(cat, arr)
	}
}

// Arena64 is the per-worker allocation cursor for 64-bit chain nodes: each
// worker claims chunk-sized runs of the table's index space under a short
// lock, then bump-allocates privately. The zero value is ready to use; an
// arena re-targets itself when first used against a different table (the
// unused tail of the previous chunk stays owned — and accounted — by that
// table until its Release).
type Arena64 struct {
	owner *Table64
	chunk []int32
	base  int32
	used  int32
}

// new claims one node, writes the key, and returns its index.
func (a *Arena64) new(t *Table64, key uint64) int32 {
	idx, _, _ := a.newAt(t, key)
	return idx
}

// newAt is new plus the node's chunk and offset, so batch inserts can write
// the link field directly instead of re-resolving the index through the
// spine (an atomic load and two dependent derefs per node).
func (a *Arena64) newAt(t *Table64, key uint64) (idx int32, chunk []int32, off int) {
	if a.owner != t || a.used >= 1<<chunkShift64 {
		a.chunk, a.base = t.nodes.grow(t.lc, t.cat, 1<<chunkShift64)
		a.owner, a.used = t, 0
	}
	idx = a.base + a.used
	off = int(a.used) << 2
	a.chunk[off] = int32(uint32(key))
	a.chunk[off+1] = int32(uint32(key >> 32))
	a.used++
	return idx, a.chunk, off
}

// Table64 is the CCK-GSCHT for 64-bit compact keys.
type Table64 struct {
	lc      storage.Lifecycle
	cat     storage.Category
	buckets []int32 // head node index + 1; 0 = empty chain; atomic access
	mask    uint64
	size    atomic.Int64
	nodes   slabs
}

// NewTable64 pre-allocates buckets for roughly estDistinct keys on the Go
// heap. Per the paper the bucket array is sized "as large as possible when
// there is enough memory" to minimize conflicts; we allocate the next power
// of two above 2×estDistinct (min 1024).
func NewTable64(estDistinct int) *Table64 {
	return NewTable64In(nil, storage.CatIntermediate, estDistinct)
}

// NewTable64In is NewTable64 with the bucket array and node slabs allocated
// through lc under cat — budget-accounted and, on Release, recycled.
func NewTable64In(lc storage.Lifecycle, cat storage.Category, estDistinct int) *Table64 {
	n := bucketCount(estDistinct)
	b := allocInt32s(lc, cat, n)
	clear(b)
	return &Table64{lc: lc, cat: cat, buckets: b, mask: uint64(n - 1)}
}

func bucketCount(estDistinct int) int {
	n := nextPow2(2 * estDistinct)
	if n < 1024 {
		n = 1024
	}
	return n
}

// fibMix spreads a compact key across buckets. The compact key itself *is*
// the hash value — no hash of the tuple contents is computed, per the paper
// — the mix only redistributes its bits. A plain Fibonacci multiply is not
// enough here: for a packed x<<32|y key the high half shifts out of the
// product's low bits, so bucket bits would depend on y alone — and under a
// join-key-carried partitioning a partition holds only a handful of
// distinct y values, collapsing the table onto a few chains. The xor-folds
// around the multiply (the murmur-style finalizer) give every key bit
// influence over every bucket bit for the cost of two shifts.
const fibMult = 0x9E3779B97F4A7C15

// fibMix delegates to the shared kernels definition so the scalar insert
// path and the batched kernels agree bit-for-bit on bucket choice.
func fibMix(key uint64) uint64 { return kernels.Mix64(key) }

func (t *Table64) bucketIndex(key uint64) uint64 {
	return (fibMix(key) >> 16) & t.mask
}

// node locates node idx inside the slab spine: chunk data plus the node's
// int32 offset within it.
func (t *Table64) node(idx int32) ([]int32, int) {
	sp := *t.nodes.spine.Load()
	return sp[idx>>chunkShift64], int(idx&(1<<chunkShift64-1)) << 2
}

// spine snapshots the slab spine for a run of node lookups. A snapshot taken
// after a bucket head was read covers every node reachable from that head
// (chunks are published to the spine before any node inside them can win a
// bucket CAS), so batch loops hoist the atomic spine load out of their chain
// walks. Nil only while the table has no nodes at all.
func (t *Table64) spine() [][]int32 {
	if sp := t.nodes.spine.Load(); sp != nil {
		return *sp
	}
	return nil
}

// nodeAt is node against a hoisted spine snapshot.
func nodeAt64(sp [][]int32, idx int32) ([]int32, int) {
	return sp[idx>>chunkShift64], int(idx&(1<<chunkShift64-1)) << 2
}

// InsertIfAbsent adds key if not present, returning true when the key was
// newly inserted. Safe for concurrent use; nodes come from the caller's
// arena.
func (t *Table64) InsertIfAbsent(key uint64, arena *Arena64) bool {
	b := &t.buckets[t.bucketIndex(key)]
	fresh := int32(0)
	for {
		head := atomic.LoadInt32(b)
		for n := head; n != 0; {
			chunk, off := t.node(n - 1)
			if uint64(uint32(chunk[off]))|uint64(uint32(chunk[off+1]))<<32 == key {
				return false
			}
			n = chunk[off+2]
		}
		if fresh == 0 {
			fresh = arena.new(t, key) + 1
		}
		fc, fo := t.node(fresh - 1)
		fc[fo+2] = head
		if atomic.CompareAndSwapInt32(b, head, fresh) {
			t.size.Add(1)
			return true
		}
		// CAS lost: another worker inserted concurrently (possibly this very
		// key); re-walk the chain from the new head.
	}
}

// Contains reports whether key is present. Safe to run concurrently with
// inserts (it may miss keys inserted after the call starts).
func (t *Table64) Contains(key uint64) bool {
	for n := atomic.LoadInt32(&t.buckets[t.bucketIndex(key)]); n != 0; {
		chunk, off := t.node(n - 1)
		if uint64(uint32(chunk[off]))|uint64(uint32(chunk[off+1]))<<32 == key {
			return true
		}
		n = chunk[off+2]
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (t *Table64) Len() int { return int(t.size.Load()) }

// Buckets returns the bucket count (for tests and memory accounting).
func (t *Table64) Buckets() int { return len(t.buckets) }

// Release returns the bucket array and every node slab to the table's
// lifecycle pool. The table must be quiescent; it is unusable afterwards.
// Heap-backed tables (nil lifecycle) leave reclamation to the collector.
func (t *Table64) Release() {
	t.nodes.release(t.lc, t.cat)
	freeInt32s(t.lc, t.cat, t.buckets)
	t.buckets = nil
	t.mask = 0
}

// ObserveChains samples up to maxBuckets bucket chain lengths (stride
// sampling over the bucket array) and reports each sampled length — empty
// buckets included — through observe. The table must be quiescent (call at
// release time, not mid-insert). Sampling keeps the cost bounded no matter
// how large the table grew.
func (t *Table64) ObserveChains(maxBuckets int, observe func(chainLen int)) {
	stride := chainStride(len(t.buckets), maxBuckets)
	if stride == 0 {
		return
	}
	sp := t.spine()
	for i := 0; i < len(t.buckets); i += stride {
		n := t.buckets[i]
		length := 0
		for ; n != 0; length++ {
			chunk, off := nodeAt64(sp, n-1)
			n = chunk[off+2]
		}
		observe(length)
	}
}

// chainStride picks the bucket-scan stride so at most maxBuckets buckets are
// visited; 0 means nothing to scan.
func chainStride(buckets, maxBuckets int) int {
	if buckets == 0 {
		return 0
	}
	if maxBuckets <= 0 || buckets <= maxBuckets {
		return 1
	}
	return (buckets + maxBuckets - 1) / maxBuckets
}

// Arena128 is the per-worker allocation cursor for 128-bit chain nodes.
type Arena128 struct {
	owner *Table128
	chunk []int32
	base  int32
	used  int32
}

func (a *Arena128) new(t *Table128, key Key128) int32 {
	if a.owner != t || a.used >= 1<<chunkShift128 {
		a.chunk, a.base = t.nodes.grow(t.lc, t.cat, 1<<chunkShift128)
		a.owner, a.used = t, 0
	}
	idx := a.base + a.used
	off := int(a.used) << 3
	a.chunk[off] = int32(uint32(key.Lo))
	a.chunk[off+1] = int32(uint32(key.Lo >> 32))
	a.chunk[off+2] = int32(uint32(key.Hi))
	a.chunk[off+3] = int32(uint32(key.Hi >> 32))
	a.used++
	return idx
}

// Table128 is the CCK-GSCHT for 128-bit compact keys (arity 3–4).
type Table128 struct {
	lc      storage.Lifecycle
	cat     storage.Category
	buckets []int32
	mask    uint64
	size    atomic.Int64
	nodes   slabs
}

// NewTable128 pre-allocates buckets as NewTable64 does, on the Go heap.
func NewTable128(estDistinct int) *Table128 {
	return NewTable128In(nil, storage.CatIntermediate, estDistinct)
}

// NewTable128In allocates the table through lc under cat.
func NewTable128In(lc storage.Lifecycle, cat storage.Category, estDistinct int) *Table128 {
	n := bucketCount(estDistinct)
	b := allocInt32s(lc, cat, n)
	clear(b)
	return &Table128{lc: lc, cat: cat, buckets: b, mask: uint64(n - 1)}
}

func (t *Table128) bucketIndex(k Key128) uint64 {
	return (fibMix(k.Lo^fibMix(k.Hi)) >> 16) & t.mask
}

func (t *Table128) node(idx int32) ([]int32, int) {
	sp := *t.nodes.spine.Load()
	return sp[idx>>chunkShift128], int(idx&(1<<chunkShift128-1)) << 3
}

func matches128(chunk []int32, off int, key Key128) bool {
	return uint64(uint32(chunk[off]))|uint64(uint32(chunk[off+1]))<<32 == key.Lo &&
		uint64(uint32(chunk[off+2]))|uint64(uint32(chunk[off+3]))<<32 == key.Hi
}

// InsertIfAbsent adds key if not present, returning true when newly inserted.
func (t *Table128) InsertIfAbsent(key Key128, arena *Arena128) bool {
	b := &t.buckets[t.bucketIndex(key)]
	fresh := int32(0)
	for {
		head := atomic.LoadInt32(b)
		for n := head; n != 0; {
			chunk, off := t.node(n - 1)
			if matches128(chunk, off, key) {
				return false
			}
			n = chunk[off+4]
		}
		if fresh == 0 {
			fresh = arena.new(t, key) + 1
		}
		fc, fo := t.node(fresh - 1)
		fc[fo+4] = head
		if atomic.CompareAndSwapInt32(b, head, fresh) {
			t.size.Add(1)
			return true
		}
	}
}

// Contains reports whether key is present.
func (t *Table128) Contains(key Key128) bool {
	for n := atomic.LoadInt32(&t.buckets[t.bucketIndex(key)]); n != 0; {
		chunk, off := t.node(n - 1)
		if matches128(chunk, off, key) {
			return true
		}
		n = chunk[off+4]
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (t *Table128) Len() int { return int(t.size.Load()) }

// ObserveChains is Table64.ObserveChains for 128-bit tables.
func (t *Table128) ObserveChains(maxBuckets int, observe func(chainLen int)) {
	stride := chainStride(len(t.buckets), maxBuckets)
	if stride == 0 {
		return
	}
	for i := 0; i < len(t.buckets); i += stride {
		n := t.buckets[i]
		length := 0
		for ; n != 0; length++ {
			chunk, off := t.node(n - 1)
			n = chunk[off+4]
		}
		observe(length)
	}
}

// Release returns the table's arrays to its lifecycle pool.
func (t *Table128) Release() {
	t.nodes.release(t.lc, t.cat)
	freeInt32s(t.lc, t.cat, t.buckets)
	t.buckets = nil
	t.mask = 0
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
