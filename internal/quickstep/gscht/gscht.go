// Package gscht implements the Compact-Concatenated-Key Global Separate
// Chaining Hash Table (CCK-GSCHT) from the RecStep paper's FAST-DEDUP
// optimization (Section 5.2, Figure 5).
//
// Tuples of small fixed arity are packed into a compact concatenated key —
// 8 bytes for up to two int32 attributes, 16 bytes for up to four — so the
// key is the tuple: no separate ⟨key,value⟩ pair, no pointer back to the
// original row, and no stored hash code. Buckets hold only a head pointer and
// are pre-allocated from an estimated distinct count, minimizing chain
// conflicts. Inserts are latch-free: a compare-and-swap on the bucket head
// publishes each node, and losers re-walk the chain so duplicates are never
// admitted (the "conflict with memory contention → wait until the other one
// finishes insertion" arrow in Figure 5 becomes a CAS retry).
package gscht

import (
	"sync/atomic"
)

// PackKey64 concatenates up to two int32 attributes into one 64-bit compact
// key. Attribute order is significant: (x, y) and (y, x) pack differently.
func PackKey64(tuple []int32) uint64 {
	switch len(tuple) {
	case 1:
		return uint64(uint32(tuple[0]))
	case 2:
		return uint64(uint32(tuple[0]))<<32 | uint64(uint32(tuple[1]))
	default:
		panic("gscht: PackKey64 requires arity 1 or 2")
	}
}

// UnpackKey64 reverses PackKey64 into the supplied tuple buffer.
func UnpackKey64(key uint64, tuple []int32) {
	switch len(tuple) {
	case 1:
		tuple[0] = int32(uint32(key))
	case 2:
		tuple[0] = int32(uint32(key >> 32))
		tuple[1] = int32(uint32(key))
	default:
		panic("gscht: UnpackKey64 requires arity 1 or 2")
	}
}

// Key128 is a compact concatenated key for tuples of three or four int32
// attributes.
type Key128 struct {
	Hi, Lo uint64
}

// PackKey128 concatenates three or four int32 attributes.
func PackKey128(tuple []int32) Key128 {
	switch len(tuple) {
	case 3:
		return Key128{Hi: uint64(uint32(tuple[0])), Lo: uint64(uint32(tuple[1]))<<32 | uint64(uint32(tuple[2]))}
	case 4:
		return Key128{
			Hi: uint64(uint32(tuple[0]))<<32 | uint64(uint32(tuple[1])),
			Lo: uint64(uint32(tuple[2]))<<32 | uint64(uint32(tuple[3])),
		}
	default:
		panic("gscht: PackKey128 requires arity 3 or 4")
	}
}

type node64 struct {
	key  uint64
	next *node64
}

// Arena64 is a per-worker slab allocator for chain nodes. Handing each
// worker its own arena keeps the hot insert path allocation-free and avoids
// false sharing between threads, while nodes stay reachable for the table's
// lifetime.
type Arena64 struct {
	slab []node64
}

func (a *Arena64) new(key uint64) *node64 {
	if len(a.slab) == 0 {
		a.slab = make([]node64, 1024)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	n.key = key
	return n
}

// Table64 is the CCK-GSCHT for 64-bit compact keys.
type Table64 struct {
	buckets []atomic.Pointer[node64]
	mask    uint64
	size    atomic.Int64
}

// NewTable64 pre-allocates buckets for roughly estDistinct keys. Per the
// paper the bucket array is sized "as large as possible when there is enough
// memory" to minimize conflicts; we allocate the next power of two above
// 2×estDistinct (min 1024).
func NewTable64(estDistinct int) *Table64 {
	n := nextPow2(2 * estDistinct)
	if n < 1024 {
		n = 1024
	}
	return &Table64{buckets: make([]atomic.Pointer[node64], n), mask: uint64(n - 1)}
}

// fibMix spreads a compact key across buckets with one multiply-shift
// (Fibonacci hashing). The compact key itself *is* the hash value — no hash
// of the tuple contents is computed, per the paper — the multiply only
// redistributes its bits so that structured keys (e.g. the x<<32|y pairs of
// a transitive closure, where x and y are correlated) do not collapse onto
// a few chains.
const fibMult = 0x9E3779B97F4A7C15

func fibMix(key uint64) uint64 { return key * fibMult }

func (t *Table64) bucketIndex(key uint64) uint64 {
	return (fibMix(key) >> 16) & t.mask
}

// InsertIfAbsent adds key if not present, returning true when the key was
// newly inserted. Safe for concurrent use; nodes come from the caller's
// arena.
func (t *Table64) InsertIfAbsent(key uint64, arena *Arena64) bool {
	b := &t.buckets[t.bucketIndex(key)]
	var fresh *node64
	for {
		head := b.Load()
		for n := head; n != nil; n = n.next {
			if n.key == key {
				return false
			}
		}
		if fresh == nil {
			fresh = arena.new(key)
		}
		fresh.next = head
		if b.CompareAndSwap(head, fresh) {
			t.size.Add(1)
			return true
		}
		// CAS lost: another worker inserted concurrently (possibly this very
		// key); re-walk the chain from the new head.
	}
}

// Contains reports whether key is present. Safe to run concurrently with
// inserts (it may miss keys inserted after the call starts).
func (t *Table64) Contains(key uint64) bool {
	for n := t.buckets[t.bucketIndex(key)].Load(); n != nil; n = n.next {
		if n.key == key {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (t *Table64) Len() int { return int(t.size.Load()) }

// Buckets returns the bucket count (for tests and memory accounting).
func (t *Table64) Buckets() int { return len(t.buckets) }

type node128 struct {
	key  Key128
	next *node128
}

// Arena128 is the per-worker slab allocator for 128-bit chain nodes.
type Arena128 struct {
	slab []node128
}

func (a *Arena128) new(key Key128) *node128 {
	if len(a.slab) == 0 {
		a.slab = make([]node128, 1024)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	n.key = key
	return n
}

// Table128 is the CCK-GSCHT for 128-bit compact keys (arity 3–4).
type Table128 struct {
	buckets []atomic.Pointer[node128]
	mask    uint64
	size    atomic.Int64
}

// NewTable128 pre-allocates buckets as NewTable64 does.
func NewTable128(estDistinct int) *Table128 {
	n := nextPow2(2 * estDistinct)
	if n < 1024 {
		n = 1024
	}
	return &Table128{buckets: make([]atomic.Pointer[node128], n), mask: uint64(n - 1)}
}

func (t *Table128) bucketIndex(k Key128) uint64 {
	return (fibMix(k.Lo^fibMix(k.Hi)) >> 16) & t.mask
}

// InsertIfAbsent adds key if not present, returning true when newly inserted.
func (t *Table128) InsertIfAbsent(key Key128, arena *Arena128) bool {
	b := &t.buckets[t.bucketIndex(key)]
	var fresh *node128
	for {
		head := b.Load()
		for n := head; n != nil; n = n.next {
			if n.key == key {
				return false
			}
		}
		if fresh == nil {
			fresh = arena.new(key)
		}
		fresh.next = head
		if b.CompareAndSwap(head, fresh) {
			t.size.Add(1)
			return true
		}
	}
}

// Contains reports whether key is present.
func (t *Table128) Contains(key Key128) bool {
	for n := t.buckets[t.bucketIndex(key)].Load(); n != nil; n = n.next {
		if n.key == key {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (t *Table128) Len() int { return int(t.size.Load()) }

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
