package gscht

import (
	"recstep/internal/quickstep/storage"

	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPackUnpackKey64RoundTrip(t *testing.T) {
	f := func(x, y int32) bool {
		k := PackKey64([]int32{x, y})
		out := make([]int32, 2)
		UnpackKey64(k, out)
		return out[0] == x && out[1] == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackKey64Arity1(t *testing.T) {
	k := PackKey64([]int32{-5})
	out := make([]int32, 1)
	UnpackKey64(k, out)
	if out[0] != -5 {
		t.Fatalf("round trip gave %d, want -5", out[0])
	}
}

func TestPackKey64OrderMatters(t *testing.T) {
	if PackKey64([]int32{1, 2}) == PackKey64([]int32{2, 1}) {
		t.Fatal("(1,2) and (2,1) must pack to different keys")
	}
}

func TestPackKey128Distinct(t *testing.T) {
	a := PackKey128([]int32{1, 2, 3})
	b := PackKey128([]int32{3, 2, 1})
	if a == b {
		t.Fatal("(1,2,3) and (3,2,1) must pack differently")
	}
	c := PackKey128([]int32{1, 2, 3, 4})
	d := PackKey128([]int32{1, 2, 4, 3})
	if c == d {
		t.Fatal("(1,2,3,4) and (1,2,4,3) must pack differently")
	}
}

func TestPackKeyPanicsOnWrongArity(t *testing.T) {
	for _, fn := range []func(){
		func() { PackKey64([]int32{1, 2, 3}) },
		func() { PackKey128([]int32{1, 2}) },
		func() { UnpackKey64(0, make([]int32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on wrong arity")
				}
			}()
			fn()
		}()
	}
}

func TestTable64InsertIfAbsent(t *testing.T) {
	tab := NewTable64(16)
	var a Arena64
	if !tab.InsertIfAbsent(42, &a) {
		t.Fatal("first insert should succeed")
	}
	if tab.InsertIfAbsent(42, &a) {
		t.Fatal("second insert of same key should fail")
	}
	if !tab.Contains(42) {
		t.Fatal("Contains(42) should be true")
	}
	if tab.Contains(43) {
		t.Fatal("Contains(43) should be false")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tab.Len())
	}
}

func TestTable64ManyKeysWithCollisions(t *testing.T) {
	// Undersized bucket array (1024 buckets for 50k keys) forces long chains;
	// correctness must not depend on bucket count.
	tab := NewTable64(0)
	var a Arena64
	const n = 50000
	for i := 0; i < n; i++ {
		if !tab.InsertIfAbsent(uint64(i), &a) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	for i := 0; i < n; i++ {
		if !tab.Contains(uint64(i)) {
			t.Fatalf("Contains(%d) = false", i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
}

func TestTable64ConcurrentDistinctCount(t *testing.T) {
	// All workers insert the same key universe; the table must end with
	// exactly the distinct count regardless of interleaving.
	const universe = 10000
	const workers = 8
	tab := NewTable64(universe)
	var wg sync.WaitGroup
	inserted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var arena Arena64
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < universe*4; i++ {
				k := uint64(rng.Intn(universe))
				if tab.InsertIfAbsent(k, &arena) {
					inserted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range inserted {
		total += c
	}
	if total != tab.Len() {
		t.Fatalf("sum of per-worker inserts %d != Len() %d", total, tab.Len())
	}
	if tab.Len() > universe {
		t.Fatalf("Len() = %d exceeds universe %d (duplicate admitted)", tab.Len(), universe)
	}
	// Every key that was ever inserted must be present.
	missing := 0
	for k := 0; k < universe; k++ {
		if !tab.Contains(uint64(k)) {
			missing++
		}
	}
	// With 4×universe random draws per worker the chance any key is missed is
	// negligible but nonzero; only fail if inserts claim full coverage.
	if tab.Len() == universe && missing != 0 {
		t.Fatalf("%d keys missing despite full Len()", missing)
	}
}

func TestTable128InsertContains(t *testing.T) {
	tab := NewTable128(16)
	var a Arena128
	k1 := PackKey128([]int32{1, 2, 3})
	k2 := PackKey128([]int32{1, 2, 4})
	if !tab.InsertIfAbsent(k1, &a) || tab.InsertIfAbsent(k1, &a) {
		t.Fatal("k1 insert semantics wrong")
	}
	if !tab.InsertIfAbsent(k2, &a) {
		t.Fatal("k2 should insert")
	}
	if !tab.Contains(k1) || !tab.Contains(k2) {
		t.Fatal("Contains should find both keys")
	}
	if tab.Contains(PackKey128([]int32{9, 9, 9})) {
		t.Fatal("Contains found absent key")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", tab.Len())
	}
}

func TestTable128ConcurrentInsert(t *testing.T) {
	const n = 20000
	tab := NewTable128(n)
	var wg sync.WaitGroup
	var counts [4]int
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var arena Arena128
			for i := 0; i < n; i++ {
				k := PackKey128([]int32{int32(i), int32(i >> 3), int32(i % 7)})
				if tab.InsertIfAbsent(k, &arena) {
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total != n {
		t.Fatalf("total successful inserts %d, want %d", total, n)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: inserting a multiset of random keys yields Len == distinct count.
func TestTable64DistinctProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		tab := NewTable64(len(keys))
		var a Arena64
		distinct := make(map[uint64]bool)
		for _, k := range keys {
			tab.InsertIfAbsent(uint64(k), &a)
			distinct[uint64(k)] = true
		}
		return tab.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// countingLifecycle is a minimal storage.Lifecycle for accounting tests.
type countingLifecycle struct {
	mu     sync.Mutex
	live   int64
	allocs int
	frees  int
}

func (c *countingLifecycle) AllocData(cat storage.Category, capInt32s int) []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.allocs++
	c.live += int64(capInt32s) * 4
	return make([]int32, 0, capInt32s)
}

func (c *countingLifecycle) FreeData(cat storage.Category, data []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frees++
	c.live -= int64(cap(data)) * 4
}

func (c *countingLifecycle) Recat(from, to storage.Category, bytes int64) {}

// A lifecycle-backed table must charge every bucket array and node slab to
// the lifecycle and credit all of it back on Release — the contract the
// memory manager's budget accounting relies on.
func TestTable64LifecycleAccounting(t *testing.T) {
	lc := &countingLifecycle{}
	tab := NewTable64In(lc, storage.CatIntermediate, 1<<12)
	var a Arena64
	const n = 30000 // spans many node chunks
	for i := 0; i < n; i++ {
		tab.InsertIfAbsent(uint64(i*7), &a)
	}
	if lc.live <= 0 {
		t.Fatalf("live bytes %d, want > 0 while table alive", lc.live)
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	tab.Release()
	if lc.live != 0 {
		t.Fatalf("live bytes %d after Release, want 0", lc.live)
	}
	if lc.frees != lc.allocs {
		t.Fatalf("frees %d != allocs %d after Release", lc.frees, lc.allocs)
	}
}

func TestTable128LifecycleAccounting(t *testing.T) {
	lc := &countingLifecycle{}
	tab := NewTable128In(lc, storage.CatIntermediate, 1<<10)
	var a Arena128
	const n = 5000
	for i := 0; i < n; i++ {
		tab.InsertIfAbsent(PackKey128([]int32{int32(i), int32(i * 3), int32(i * 5)}), &a)
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	tab.Release()
	if lc.live != 0 {
		t.Fatalf("live bytes %d after Release, want 0", lc.live)
	}
}

// One arena reused against several tables (the fused delta pass creates up
// to three sets per partition) must re-target cleanly; the abandoned chunk
// tail stays owned by its original table and is reclaimed by its Release.
func TestArenaRetargetsAcrossTables(t *testing.T) {
	lc := &countingLifecycle{}
	t1 := NewTable64In(lc, storage.CatIntermediate, 16)
	t2 := NewTable64In(lc, storage.CatIntermediate, 16)
	var a Arena64
	for i := 0; i < 100; i++ {
		t1.InsertIfAbsent(uint64(i), &a)
		t2.InsertIfAbsent(uint64(i)<<20, &a)
	}
	if t1.Len() != 100 || t2.Len() != 100 {
		t.Fatalf("lens = %d, %d, want 100, 100", t1.Len(), t2.Len())
	}
	for i := 0; i < 100; i++ {
		if !t1.Contains(uint64(i)) || !t2.Contains(uint64(i)<<20) {
			t.Fatalf("key %d missing after arena re-targeting", i)
		}
	}
	t1.Release()
	t2.Release()
	if lc.live != 0 {
		t.Fatalf("live bytes %d after both releases, want 0", lc.live)
	}
}
