// Package kernels provides the batch-at-a-time primitives of the columnar
// execution path: key packing, hash mixing, selection-vector filtering and
// row gathering over flat int32 column slices. Each kernel is a tight loop
// with the bounds checks hoisted to a single slice reslice up front, no
// per-element function calls and no branches in the arithmetic phases, so
// the compiler can keep the loop bodies in registers (and, under
// GOAMD64=v3, vectorize the multiply-mix loops). Operators process blocks
// in fixed-size batches through these kernels instead of per-row closures —
// the CPU translation of the GPU-Datalog insight that fixpoint inner loops
// want dense column-major layouts and data-parallel kernels, applied to the
// paper's semi-naive pipeline.
//
// The package is a leaf: it depends on nothing inside the engine, so the
// hash-table (gscht), storage and exec layers can all share one definition
// of the key layouts and the bucket mix.
package kernels

// BatchRows is the number of rows operators feed through a kernel at once.
// Large enough to amortize the per-batch setup (slice reslicing, scratch
// reuse), small enough that a batch's key/selection scratch (~20 KiB) stays
// in L1/L2 alongside the column data it reads.
const BatchRows = 1024

// Mix64 redistributes the bits of a compact key across a 64-bit hash — the
// murmur-style finalizer shared by the CCK-GSCHT bucket choice. The compact
// key itself is the hash input; the xor-folds around the Fibonacci multiply
// give every key bit influence over every bucket bit.
func Mix64(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9E3779B97F4A7C15
	key ^= key >> 29
	return key
}

// MixBatch applies Mix64 to a batch of keys in place-or-apart: dst[i] =
// Mix64(keys[i]). dst and keys may alias. The loop is branch-free and
// call-free, so it vectorizes under GOAMD64=v3.
func MixBatch(keys, dst []uint64) {
	dst = dst[:len(keys)]
	for i, k := range keys {
		k ^= k >> 33
		k *= 0x9E3779B97F4A7C15
		k ^= k >> 29
		dst[i] = k
	}
}

// PackKeys1 packs an arity-1 column batch into 64-bit compact keys:
// dst[i] = uint64(uint32(c0[i])) — the gscht.PackKey64 layout for one
// attribute.
func PackKeys1(c0 []int32, dst []uint64) {
	dst = dst[:len(c0)]
	for i, v := range c0 {
		dst[i] = uint64(uint32(v))
	}
}

// PackKeys2 packs a two-column batch into 64-bit compact keys with the
// gscht.PackKey64 layout: dst[i] = c0[i]<<32 | c1[i]. The columns must have
// equal length.
func PackKeys2(c0, c1 []int32, dst []uint64) {
	c1 = c1[:len(c0)]
	dst = dst[:len(c0)]
	for i, v := range c0 {
		dst[i] = uint64(uint32(v))<<32 | uint64(uint32(c1[i]))
	}
}

// PackKeys3 packs a three-column batch into the gscht.PackKey128 layout:
// hi[i] = c0[i], lo[i] = c1[i]<<32 | c2[i].
func PackKeys3(c0, c1, c2 []int32, hi, lo []uint64) {
	c1 = c1[:len(c0)]
	c2 = c2[:len(c0)]
	hi = hi[:len(c0)]
	lo = lo[:len(c0)]
	for i, v := range c0 {
		hi[i] = uint64(uint32(v))
		lo[i] = uint64(uint32(c1[i]))<<32 | uint64(uint32(c2[i]))
	}
}

// PackKeys4 packs a four-column batch into the gscht.PackKey128 layout:
// hi[i] = c0[i]<<32 | c1[i], lo[i] = c2[i]<<32 | c3[i].
func PackKeys4(c0, c1, c2, c3 []int32, hi, lo []uint64) {
	c1 = c1[:len(c0)]
	c2 = c2[:len(c0)]
	c3 = c3[:len(c0)]
	hi = hi[:len(c0)]
	lo = lo[:len(c0)]
	for i, v := range c0 {
		hi[i] = uint64(uint32(v))<<32 | uint64(uint32(c1[i]))
		lo[i] = uint64(uint32(c2[i]))<<32 | uint64(uint32(c3[i]))
	}
}

// PackKeyCols packs a batch of rows, given as per-column slices already
// offset to the batch window, into 64-bit compact keys (1–2 columns). It
// dispatches once per batch, not per row.
func PackKeyCols(cols [][]int32, dst []uint64) {
	switch len(cols) {
	case 1:
		PackKeys1(cols[0], dst)
	case 2:
		PackKeys2(cols[0], cols[1], dst)
	default:
		panic("kernels: PackKeyCols wants 1 or 2 columns")
	}
}

// PackKeyCols128 packs a batch into 128-bit compact keys (3–4 columns).
func PackKeyCols128(cols [][]int32, hi, lo []uint64) {
	switch len(cols) {
	case 3:
		PackKeys3(cols[0], cols[1], cols[2], hi, lo)
	case 4:
		PackKeys4(cols[0], cols[1], cols[2], cols[3], hi, lo)
	default:
		panic("kernels: PackKeyCols128 wants 3 or 4 columns")
	}
}

// PackRows64 packs a row-major run of tuples (arity 1 or 2) into 64-bit
// compact keys — the one-pass variant for data scanned exactly once, where
// a column transpose would cost more than the strided reads it saves.
func PackRows64(rows []int32, arity int, dst []uint64) {
	switch arity {
	case 1:
		PackKeys1(rows, dst)
	case 2:
		n := len(rows) / 2
		dst = dst[:n]
		for i := range dst {
			dst[i] = uint64(uint32(rows[2*i]))<<32 | uint64(uint32(rows[2*i+1]))
		}
	default:
		panic("kernels: PackRows64 wants arity 1 or 2")
	}
}

// PackRows128 packs a row-major run of tuples (arity 3 or 4) into 128-bit
// compact keys with the gscht layout.
func PackRows128(rows []int32, arity int, hi, lo []uint64) {
	switch arity {
	case 3:
		n := len(rows) / 3
		hi = hi[:n]
		lo = lo[:n]
		for i := range hi {
			hi[i] = uint64(uint32(rows[3*i]))
			lo[i] = uint64(uint32(rows[3*i+1]))<<32 | uint64(uint32(rows[3*i+2]))
		}
	case 4:
		n := len(rows) / 4
		hi = hi[:n]
		lo = lo[:n]
		for i := range hi {
			hi[i] = uint64(uint32(rows[4*i]))<<32 | uint64(uint32(rows[4*i+1]))
			lo[i] = uint64(uint32(rows[4*i+2]))<<32 | uint64(uint32(rows[4*i+3]))
		}
	default:
		panic("kernels: PackRows128 wants arity 3 or 4")
	}
}

// SelectMisses appends to sel the indices (offset by base) whose hits entry
// is false — the anti-probe companion of a batched table probe.
func SelectMisses(hits []bool, base int32, sel []int32) []int32 {
	for i, h := range hits {
		if !h {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// SelectHits is SelectMisses for the rows a probe found.
func SelectHits(hits []bool, base int32, sel []int32) []int32 {
	for i, h := range hits {
		if h {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// Comparison codes for FilterCmp, mirroring expr.CmpOp's operator set
// without importing it (kernels stays a leaf package).
const (
	CmpEQ = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// FilterEq appends to sel the indices i (offset by base) where col[i] ==
// val, returning the extended selection vector. The common equality case of
// FilterCmp, kept separate so the comparison is a single branch-free
// compare in the loop.
func FilterEq(col []int32, val int32, base int32, sel []int32) []int32 {
	for i, v := range col {
		if v == val {
			sel = append(sel, base+int32(i))
		}
	}
	return sel
}

// FilterCmp appends to sel the indices (offset by base) where col[i] <op>
// val holds. op is one of the Cmp* codes.
func FilterCmp(col []int32, op int, val int32, base int32, sel []int32) []int32 {
	switch op {
	case CmpEQ:
		return FilterEq(col, val, base, sel)
	case CmpNE:
		for i, v := range col {
			if v != val {
				sel = append(sel, base+int32(i))
			}
		}
	case CmpLT:
		for i, v := range col {
			if v < val {
				sel = append(sel, base+int32(i))
			}
		}
	case CmpLE:
		for i, v := range col {
			if v <= val {
				sel = append(sel, base+int32(i))
			}
		}
	case CmpGT:
		for i, v := range col {
			if v > val {
				sel = append(sel, base+int32(i))
			}
		}
	case CmpGE:
		for i, v := range col {
			if v >= val {
				sel = append(sel, base+int32(i))
			}
		}
	default:
		panic("kernels: unknown comparison code")
	}
	return sel
}

// RefineCmp keeps only the selection-vector entries whose column value
// satisfies col[sel[i]] <op> val — the conjunctive step of a multi-predicate
// filter. The refinement is done in place; the shortened vector is returned.
func RefineCmp(col []int32, op int, val int32, sel []int32) []int32 {
	out := sel[:0]
	switch op {
	case CmpEQ:
		for _, s := range sel {
			if col[s] == val {
				out = append(out, s)
			}
		}
	case CmpNE:
		for _, s := range sel {
			if col[s] != val {
				out = append(out, s)
			}
		}
	case CmpLT:
		for _, s := range sel {
			if col[s] < val {
				out = append(out, s)
			}
		}
	case CmpLE:
		for _, s := range sel {
			if col[s] <= val {
				out = append(out, s)
			}
		}
	case CmpGT:
		for _, s := range sel {
			if col[s] > val {
				out = append(out, s)
			}
		}
	case CmpGE:
		for _, s := range sel {
			if col[s] >= val {
				out = append(out, s)
			}
		}
	default:
		panic("kernels: unknown comparison code")
	}
	return out
}

// GatherRows materializes the selected rows of a set of columns into a
// row-major buffer: for each selection entry s, the output row is
// (cols[0][s], cols[1][s], …). dst must hold len(sel)*len(cols) values; the
// written prefix is returned. Gathering column-by-column keeps each inner
// loop reading one contiguous column and writing a fixed stride.
func GatherRows(cols [][]int32, sel []int32, dst []int32) []int32 {
	w := len(cols)
	if len(sel) == 0 {
		return dst[:0]
	}
	dst = dst[: len(sel)*w : len(sel)*w]
	for k, col := range cols {
		out := dst[k:]
		for j, s := range sel {
			out[j*w] = col[s]
		}
	}
	return dst
}

// GatherSelect materializes the selected rows of a row-major source into a
// row-major buffer — the gather companion for operators that keep their
// input row-major (the scalar-layout ablation never needs it; the batch
// path uses it when a block's column slab is not worth building). dst must
// hold len(sel)*arity values; the written prefix is returned.
func GatherSelect(src []int32, arity int, sel []int32, dst []int32) []int32 {
	dst = dst[: len(sel)*arity : len(sel)*arity]
	for j, s := range sel {
		copy(dst[j*arity:(j+1)*arity], src[int(s)*arity:(int(s)+1)*arity])
	}
	return dst
}

// partitionMult is the Fibonacci multiplier of the radix-partition hash,
// mirroring storage.PartitionHash (kernels cannot import storage).
const partitionMult = 0x9E3779B97F4A7C15

// HashColumns computes the radix-partition hash of a batch of rows given as
// per-column key slices — dst[i] matches storage.PartitionHash of row i over
// the same key columns. One multiply-mix per key column per row, no per-row
// call, and each pass reads one contiguous column.
func HashColumns(cols [][]int32, dst []uint64) {
	if len(cols) == 0 {
		return
	}
	n := len(cols[0])
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0x9E3779B9
	}
	for _, col := range cols {
		col = col[:n]
		for i, v := range col {
			dst[i] = (dst[i] ^ uint64(uint32(v))) * partitionMult
		}
	}
}

// HashRows is HashColumns over a row-major run: dst[i] matches
// storage.PartitionHash of row i over key columns cols. The one-column case
// — every linear-recursive join keys on a single column — runs a dedicated
// strided loop with the seed mix folded in.
func HashRows(rows []int32, arity int, cols []int, dst []uint64) {
	n := len(rows) / arity
	dst = dst[:n]
	if len(cols) == 1 {
		c := cols[0]
		for i := range dst {
			dst[i] = (0x9E3779B9 ^ uint64(uint32(rows[i*arity+c]))) * partitionMult
		}
		return
	}
	for i := range dst {
		h := uint64(0x9E3779B9)
		r := i * arity
		for _, c := range cols {
			h = (h ^ uint64(uint32(rows[r+c]))) * partitionMult
		}
		dst[i] = h
	}
}
