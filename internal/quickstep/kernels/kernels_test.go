package kernels

import (
	"math/rand"
	"testing"
)

func mixRef(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9E3779B97F4A7C15
	key ^= key >> 29
	return key
}

// batchSizes exercises empty batches, odd sizes, and sizes straddling the
// nominal BatchRows granule.
var batchSizes = []int{0, 1, 3, 7, 64, 255, 1023, 1024, 1025}

func randCols(r *rand.Rand, arity, n int) [][]int32 {
	cols := make([][]int32, arity)
	for c := range cols {
		cols[c] = make([]int32, n)
		for i := range cols[c] {
			cols[c][i] = int32(r.Uint32())
		}
	}
	return cols
}

func rowOf(cols [][]int32, i int) []int32 {
	row := make([]int32, len(cols))
	for c := range cols {
		row[c] = cols[c][i]
	}
	return row
}

func TestMixBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range batchSizes {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		dst := make([]uint64, n)
		MixBatch(keys, dst)
		for i, k := range keys {
			if dst[i] != mixRef(k) {
				t.Fatalf("n=%d i=%d: got %#x want %#x", n, i, dst[i], mixRef(k))
			}
		}
		// In-place aliasing must give the same result.
		MixBatch(keys, keys)
		for i := range keys {
			if keys[i] != dst[i] {
				t.Fatalf("n=%d i=%d: in-place mix diverged", n, i)
			}
		}
	}
}

func TestPackKeys64(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, arity := range []int{1, 2} {
		for _, n := range batchSizes {
			cols := randCols(r, arity, n)
			dst := make([]uint64, n)
			PackKeyCols(cols, dst)
			for i := 0; i < n; i++ {
				var want uint64
				if arity == 1 {
					want = uint64(uint32(cols[0][i]))
				} else {
					want = uint64(uint32(cols[0][i]))<<32 | uint64(uint32(cols[1][i]))
				}
				if dst[i] != want {
					t.Fatalf("arity=%d n=%d i=%d: got %#x want %#x", arity, n, i, dst[i], want)
				}
			}
		}
	}
}

func TestPackKeys128(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, arity := range []int{3, 4} {
		for _, n := range batchSizes {
			cols := randCols(r, arity, n)
			hi := make([]uint64, n)
			lo := make([]uint64, n)
			PackKeyCols128(cols, hi, lo)
			for i := 0; i < n; i++ {
				var wantHi, wantLo uint64
				if arity == 3 {
					wantHi = uint64(uint32(cols[0][i]))
					wantLo = uint64(uint32(cols[1][i]))<<32 | uint64(uint32(cols[2][i]))
				} else {
					wantHi = uint64(uint32(cols[0][i]))<<32 | uint64(uint32(cols[1][i]))
					wantLo = uint64(uint32(cols[2][i]))<<32 | uint64(uint32(cols[3][i]))
				}
				if hi[i] != wantHi || lo[i] != wantLo {
					t.Fatalf("arity=%d n=%d i=%d: got (%#x,%#x) want (%#x,%#x)",
						arity, n, i, hi[i], lo[i], wantHi, wantLo)
				}
			}
		}
	}
}

func holds(v int32, op int, val int32) bool {
	switch op {
	case CmpEQ:
		return v == val
	case CmpNE:
		return v != val
	case CmpLT:
		return v < val
	case CmpLE:
		return v <= val
	case CmpGT:
		return v > val
	case CmpGE:
		return v >= val
	}
	panic("bad op")
}

func TestFilterCmpAndRefine(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ops := []int{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	for _, n := range batchSizes {
		col := make([]int32, n)
		for i := range col {
			col[i] = int32(r.Intn(8)) // small domain so every op selects something
		}
		for _, op := range ops {
			val := int32(r.Intn(8))
			sel := FilterCmp(col, op, val, 100, nil)
			var want []int32
			for i, v := range col {
				if holds(v, op, val) {
					want = append(want, 100+int32(i))
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("n=%d op=%d: got %d selected, want %d", n, op, len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("n=%d op=%d i=%d: got %d want %d", n, op, i, sel[i], want[i])
				}
			}

			// Refine an all-rows selection by the same predicate (base 0).
			all := make([]int32, n)
			for i := range all {
				all[i] = int32(i)
			}
			ref := RefineCmp(col, op, val, all)
			if len(ref) != len(want) {
				t.Fatalf("refine n=%d op=%d: got %d selected, want %d", n, op, len(ref), len(want))
			}
			for i := range ref {
				if ref[i] != want[i]-100 {
					t.Fatalf("refine n=%d op=%d i=%d: got %d want %d", n, op, i, ref[i], want[i]-100)
				}
			}
		}
	}
}

func TestGatherRows(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, arity := range []int{1, 2, 3, 4} {
		for _, n := range batchSizes {
			cols := randCols(r, arity, n)
			var sel []int32
			for i := 0; i < n; i += 2 {
				sel = append(sel, int32(i))
			}
			dst := make([]int32, len(sel)*arity)
			out := GatherRows(cols, sel, dst)
			if len(out) != len(sel)*arity {
				t.Fatalf("arity=%d n=%d: gathered %d values, want %d", arity, n, len(out), len(sel)*arity)
			}
			for j, s := range sel {
				want := rowOf(cols, int(s))
				for c := 0; c < arity; c++ {
					if out[j*arity+c] != want[c] {
						t.Fatalf("arity=%d n=%d row %d col %d: got %d want %d",
							arity, n, j, c, out[j*arity+c], want[c])
					}
				}
			}
		}
	}
}

func TestGatherSelect(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, arity := range []int{1, 2, 3, 4} {
		for _, n := range batchSizes {
			src := make([]int32, n*arity)
			for i := range src {
				src[i] = int32(r.Uint32())
			}
			var sel []int32
			for i := 0; i < n; i += 3 {
				sel = append(sel, int32(i))
			}
			dst := make([]int32, len(sel)*arity)
			out := GatherSelect(src, arity, sel, dst)
			for j, s := range sel {
				for c := 0; c < arity; c++ {
					if out[j*arity+c] != src[int(s)*arity+c] {
						t.Fatalf("arity=%d n=%d row %d col %d mismatch", arity, n, j, c)
					}
				}
			}
		}
	}
}

func partitionHashRef(row []int32) uint64 {
	h := uint64(0x9E3779B9)
	for _, v := range row {
		h = (h ^ uint64(uint32(v))) * 0x9E3779B97F4A7C15
	}
	return h
}

func TestHashColumns(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, arity := range []int{1, 2, 3, 4} {
		for _, n := range batchSizes {
			cols := randCols(r, arity, n)
			dst := make([]uint64, n)
			HashColumns(cols, dst)
			for i := 0; i < n; i++ {
				if want := partitionHashRef(rowOf(cols, i)); dst[i] != want {
					t.Fatalf("arity=%d n=%d i=%d: got %#x want %#x", arity, n, i, dst[i], want)
				}
			}
		}
	}
}

// PackRows64/PackRows128 are the row-major one-pass variants: over the same
// tuples they must produce exactly the keys the columnar packers do.
func TestPackRowsMatchesPackKeys(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for arity := 1; arity <= 4; arity++ {
		for _, n := range batchSizes {
			cols := randCols(r, arity, n)
			rows := make([]int32, 0, n*arity)
			for i := 0; i < n; i++ {
				rows = append(rows, rowOf(cols, i)...)
			}
			if arity <= 2 {
				want := make([]uint64, n)
				got := make([]uint64, n)
				if arity == 1 {
					PackKeys1(cols[0], want)
				} else {
					PackKeys2(cols[0], cols[1], want)
				}
				PackRows64(rows, arity, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("arity=%d n=%d: row-major key %d = %#x, columnar %#x", arity, n, i, got[i], want[i])
					}
				}
				continue
			}
			wantHi := make([]uint64, n)
			wantLo := make([]uint64, n)
			gotHi := make([]uint64, n)
			gotLo := make([]uint64, n)
			if arity == 3 {
				PackKeys3(cols[0], cols[1], cols[2], wantHi, wantLo)
			} else {
				PackKeys4(cols[0], cols[1], cols[2], cols[3], wantHi, wantLo)
			}
			PackRows128(rows, arity, gotHi, gotLo)
			for i := range wantHi {
				if gotHi[i] != wantHi[i] || gotLo[i] != wantLo[i] {
					t.Fatalf("arity=%d n=%d: row-major key %d = (%#x,%#x), columnar (%#x,%#x)",
						arity, n, i, gotHi[i], gotLo[i], wantHi[i], wantLo[i])
				}
			}
		}
	}
}

// SelectMisses and SelectHits must partition the index range exactly, offset
// every emitted index by base, and append to (not clobber) the selection
// they are handed.
func TestSelectMissesAndHits(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range batchSizes {
		hits := make([]bool, n)
		for i := range hits {
			hits[i] = r.Intn(2) == 0
		}
		const base = int32(7000)
		preload := []int32{-1, -2}
		misses := SelectMisses(hits, base, append([]int32(nil), preload...))
		hitSel := SelectHits(hits, base, append([]int32(nil), preload...))
		if misses[0] != -1 || misses[1] != -2 || hitSel[0] != -1 || hitSel[1] != -2 {
			t.Fatalf("n=%d: preloaded selection clobbered", n)
		}
		misses, hitSel = misses[2:], hitSel[2:]
		if len(misses)+len(hitSel) != n {
			t.Fatalf("n=%d: %d misses + %d hits != %d rows", n, len(misses), len(hitSel), n)
		}
		seen := make(map[int32]bool, n)
		for _, idx := range misses {
			if hits[idx-base] {
				t.Fatalf("n=%d: index %d reported as miss but hits[%d] is true", n, idx, idx-base)
			}
			seen[idx] = true
		}
		for _, idx := range hitSel {
			if !hits[idx-base] {
				t.Fatalf("n=%d: index %d reported as hit but hits[%d] is false", n, idx, idx-base)
			}
			seen[idx] = true
		}
		if len(seen) != n {
			t.Fatalf("n=%d: selections cover %d distinct indices, want %d", n, len(seen), n)
		}
	}
}

// HashRows must agree with HashColumns over the same rows for every keyset
// shape, including the dedicated one-column loop.
func TestHashRowsMatchesHashColumns(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, arity := range []int{1, 2, 4} {
		for _, keyCols := range [][]int{{0}, {arity - 1}, allUpTo(arity)} {
			for _, n := range batchSizes {
				cols := randCols(r, arity, n)
				rows := make([]int32, 0, n*arity)
				for i := 0; i < n; i++ {
					rows = append(rows, rowOf(cols, i)...)
				}
				kcols := make([][]int32, len(keyCols))
				for ci, c := range keyCols {
					kcols[ci] = cols[c]
				}
				want := make([]uint64, n)
				got := make([]uint64, n)
				HashColumns(kcols, want)
				HashRows(rows, arity, keyCols, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("arity=%d keys=%v n=%d: row-major hash %d = %#x, columnar %#x",
							arity, keyCols, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func allUpTo(arity int) []int {
	out := make([]int, arity)
	for i := range out {
		out[i] = i
	}
	return out
}
