package memory

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"recstep/internal/faultinject"
	"recstep/internal/quickstep/storage"
	"recstep/internal/relio"
)

// spillOneBlock allocates one 2-column block of n rows through m, spills it,
// and returns the token (the spill-file path), the file path, and the rows
// that went in.
func spillOneBlock(t *testing.T, m *Manager, n int) (tok any, path string, want []int32) {
	t.Helper()
	b := storage.NewBlockIn(m, storage.CatIDB, 2, n)
	for i := 0; i < n; i++ {
		row := []int32{int32(i), int32(i * 3)}
		b.Append(row)
		want = append(want, row...)
	}
	tok, bytes, err := m.SpillBlocks(2, []*storage.Block{b})
	if err != nil {
		t.Fatalf("SpillBlocks: %v", err)
	}
	if bytes <= 0 {
		t.Fatalf("SpillBlocks reported %d bytes", bytes)
	}
	b.Release()
	return tok, tok.(string), want
}

func faultedRows(t *testing.T, m *Manager, tok any) []int32 {
	t.Helper()
	blocks, err := m.FaultBlocks(tok, m, storage.CatIDB, 2)
	if err != nil {
		t.Fatalf("FaultBlocks: %v", err)
	}
	var got []int32
	for _, b := range blocks {
		got = append(got, b.Data()...)
		b.Release()
	}
	return got
}

// A truncated or bit-flipped spill file must surface as a descriptive
// relio.ErrCorrupt without retries, record the fatal run error, and leave
// the file and token valid so the slot survives; repairing the file makes
// the same token readable again.
func TestFaultBlocksDetectsCorruption(t *testing.T) {
	corrupt := map[string]func([]byte) []byte{
		"truncate": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40 // payload byte: caught by the CRC trailer
			return c
		},
	}
	for name, mutate := range corrupt {
		t.Run(name, func(t *testing.T) {
			m := NewManager(Config{SpillDir: t.TempDir()})
			defer m.Close()
			var handled error
			m.SetFailHandler(func(err error) { handled = err })

			tok, path, want := spillOneBlock(t, m, 300)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading spill file: %v", err)
			}
			if err := os.WriteFile(path, mutate(orig), 0o644); err != nil {
				t.Fatalf("corrupting spill file: %v", err)
			}

			_, ferr := m.FaultBlocks(tok, m, storage.CatIDB, 2)
			if ferr == nil {
				t.Fatal("FaultBlocks succeeded on a corrupt file")
			}
			if !errors.Is(ferr, relio.ErrCorrupt) {
				t.Fatalf("error %v does not wrap relio.ErrCorrupt", ferr)
			}
			if !strings.Contains(ferr.Error(), path) {
				t.Fatalf("error %v does not name the spill file", ferr)
			}
			if m.RunError() == nil {
				t.Fatal("failed fault not recorded as the run error")
			}
			if handled == nil {
				t.Fatal("fail handler not invoked")
			}
			if s := m.Snapshot(); s.SpillRetries != 0 {
				t.Fatalf("corruption was retried %d times; must fail immediately", s.SpillRetries)
			}

			// The file and token survive the failure: repair the bytes and
			// the same token faults back the original tuples.
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatalf("repairing spill file: %v", err)
			}
			if got := faultedRows(t, m, tok); !reflect.DeepEqual(got, want) {
				t.Fatal("repaired file returned different tuples than were spilled")
			}
		})
	}
}

// A corrupt spilled partition must not take down the relation: the failed
// partition reports the sticky fault error, while resident partitions stay
// fully readable and later reads do not panic.
func TestCorruptSpillLeavesResidentPartitionsUsable(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{BudgetBytes: 1, SpillDir: dir})
	defer m.Close()
	const parts, rows = 4, 200
	r, _ := buildCarried(m, parts, rows)
	m.Register(r)
	m.EndEpoch()
	m.EndEpoch()
	if r.SpilledPartitions() != parts {
		t.Fatalf("expected all %d partitions spilled, got %d", parts, r.SpilledPartitions())
	}

	v, ok := r.CarriedView(storage.AllCols(2), parts)
	if !ok {
		t.Fatal("carried view lost")
	}
	// Fault partitions 0 and 1 back in; their files are consumed.
	readPart := func(p int) []int32 {
		var got []int32
		for _, b := range v.Blocks(p) {
			got = append(got, b.Data()...)
		}
		return got
	}
	for p := 0; p < 2; p++ {
		if got := readPart(p); len(got) != rows*2 {
			t.Fatalf("partition %d: %d ints faulted back, want %d", p, len(got), rows*2)
		}
	}

	// Corrupt the files still on disk (partitions 2 and 3).
	files, err := filepath.Glob(filepath.Join(dir, "part-*.spill"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no remaining spill files (err=%v)", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		if err := os.WriteFile(f, b[:len(b)/2], 0o644); err != nil {
			t.Fatalf("truncating %s: %v", f, err)
		}
	}

	// The corrupt partition yields no tuples and records the sticky error.
	if got := readPart(2); len(got) != 0 {
		t.Fatalf("corrupt partition returned %d ints", len(got))
	}
	if ferr := r.FaultError(); ferr == nil {
		t.Fatal("relation did not record the fault error")
	} else if !errors.Is(ferr, relio.ErrCorrupt) {
		t.Fatalf("relation fault error %v does not wrap relio.ErrCorrupt", ferr)
	}
	if rerr := m.RunError(); rerr == nil || !errors.Is(rerr, relio.ErrCorrupt) {
		t.Fatalf("manager run error = %v, want a corruption error", rerr)
	}

	// Resident partitions stay byte-identical, and re-reading the broken
	// ones neither panics nor re-attempts the read.
	for p := 0; p < 2; p++ {
		got := readPart(p)
		if len(got) != rows*2 {
			t.Fatalf("resident partition %d unreadable after fault failure", p)
		}
		for i := 0; i < len(got); i += 2 {
			if got[i] != int32(p) {
				t.Fatalf("resident partition %d returned foreign tuple %v", p, got[i:i+2])
			}
		}
	}
	if got := readPart(3); len(got) != 0 {
		t.Fatalf("second broken partition returned %d ints", len(got))
	}
}

// A transient injected spill-write failure is absorbed by the retry loop:
// the spill succeeds, the retry is counted, and spilling is not parked.
func TestSpillWriteTransientFailureIsRetried(t *testing.T) {
	inj := faultinject.New(1).FailNth(faultinject.SpillWrite, 1)
	m := NewManager(Config{SpillDir: t.TempDir(), FaultInject: inj})
	defer m.Close()

	tok, _, want := spillOneBlock(t, m, 200)
	s := m.Snapshot()
	if s.SpillRetries < 1 {
		t.Fatalf("SpillRetries = %d, want >= 1", s.SpillRetries)
	}
	if s.SpillsParked || m.SpillsParked() {
		t.Fatal("transient failure parked spilling")
	}
	if m.RunError() != nil {
		t.Fatalf("transient failure recorded as fatal: %v", m.RunError())
	}
	if got := faultedRows(t, m, tok); !reflect.DeepEqual(got, want) {
		t.Fatal("retried spill did not round-trip")
	}
}

// A transient injected fault-read failure is likewise retried to success.
func TestFaultReadTransientFailureIsRetried(t *testing.T) {
	inj := faultinject.New(1).FailNth(faultinject.FaultRead, 1)
	m := NewManager(Config{SpillDir: t.TempDir(), FaultInject: inj})
	defer m.Close()

	tok, _, want := spillOneBlock(t, m, 200)
	if got := faultedRows(t, m, tok); !reflect.DeepEqual(got, want) {
		t.Fatal("retried fault did not round-trip")
	}
	if s := m.Snapshot(); s.SpillRetries < 1 {
		t.Fatalf("SpillRetries = %d, want >= 1", s.SpillRetries)
	}
	if m.RunError() != nil {
		t.Fatalf("transient failure recorded as fatal: %v", m.RunError())
	}
}

// A persistent spill-write failure parks spilling: the write errors out
// after the retry budget, the engine is NOT aborted (degraded in-memory
// operation), the effective budget tightens, and later spill attempts fail
// fast without touching the injector again.
func TestPersistentSpillWriteParksSpilling(t *testing.T) {
	inj := faultinject.New(1).FailEvery(faultinject.SpillWrite, 1)
	const budget = 1 << 20
	m := NewManager(Config{BudgetBytes: budget, SpillDir: t.TempDir(), FaultInject: inj})
	defer m.Close()
	before := m.Headroom()

	b := storage.NewBlockIn(m, storage.CatIDB, 2, 100)
	b.Append([]int32{1, 2})
	_, _, err := m.SpillBlocks(2, []*storage.Block{b})
	if err == nil {
		t.Fatal("SpillBlocks succeeded under a persistent write fault")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
	if !m.SpillsParked() {
		t.Fatal("persistent failure did not park spilling")
	}
	if m.RunError() != nil {
		t.Fatalf("parking recorded as fatal run error: %v", m.RunError())
	}
	if s := m.Snapshot(); !s.SpillsParked || s.SpillRetries != ioAttempts-1 {
		t.Fatalf("snapshot %+v: want SpillsParked and %d retries", s, ioAttempts-1)
	}
	if after := m.Headroom(); before-after < budget/4 {
		t.Fatalf("parked headroom %d not tightened from %d by budget/4", after, before)
	}

	calls := inj.Calls(faultinject.SpillWrite)
	if _, _, err := m.SpillBlocks(2, []*storage.Block{b}); err == nil {
		t.Fatal("parked SpillBlocks succeeded")
	}
	if inj.Calls(faultinject.SpillWrite) != calls {
		t.Fatal("parked SpillBlocks reached the write path instead of failing fast")
	}
	b.Release()
}

// An unwritable spill directory parks spilling on first use instead of
// failing the run.
func TestUnwritableSpillDirParksSpilling(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{SpillDir: filepath.Join(file, "spill")})
	defer m.Close()

	b := storage.NewBlockIn(m, storage.CatIDB, 2, 10)
	b.Append([]int32{1, 2})
	defer b.Release()
	if _, _, err := m.SpillBlocks(2, []*storage.Block{b}); err == nil {
		t.Fatal("SpillBlocks succeeded with an unwritable spill dir")
	}
	if !m.SpillsParked() {
		t.Fatal("unwritable spill dir did not park spilling")
	}
	if m.RunError() != nil {
		t.Fatalf("degraded mode recorded as fatal: %v", m.RunError())
	}
}

// An injected allocation failure is the engine's model of allocation
// pressure: the allocation itself still succeeds (no unwinding mid-operator,
// so no pooled state leaks) but the run error is recorded and forwarded, so
// the engine aborts at the next boundary.
func TestAllocInjectionIsFatalWithoutUnwinding(t *testing.T) {
	inj := faultinject.New(1).FailNth(faultinject.Alloc, 1)
	m := NewManager(Config{FaultInject: inj})
	defer m.Close()
	var handled error
	m.SetFailHandler(func(err error) { handled = err })

	data := m.AllocData(storage.CatDelta, 128)
	if data == nil || cap(data) < 128 {
		t.Fatalf("injected alloc failure broke the allocation itself: %v", data)
	}
	err := m.RunError()
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("RunError = %v, want injected alloc failure", err)
	}
	if handled == nil {
		t.Fatal("fail handler not invoked for injected alloc failure")
	}
	m.FreeData(storage.CatDelta, data)
	if s := m.Snapshot(); s.LiveTotal != 0 {
		t.Fatalf("LiveTotal = %d after free, want 0", s.LiveTotal)
	}
}
