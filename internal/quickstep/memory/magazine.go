package memory

import "recstep/internal/quickstep/storage"

// Magazine capacity tuning. A magazine parks at most magCap arrays per size
// class; a refill moves up to magRefill arrays in one shard visit, and a
// flush (triggered at magCap) returns half, keeping the other half resident
// for the next alloc burst. Small on purpose: a magazine's parked bytes are
// outside the shard retention accounting, so per-worker residency must stay
// bounded (≤ magCap arrays of whatever classes the pass touches).
const (
	magCap    = 16
	magRefill = 8
)

// Magazine is a single-owner storage.Lifecycle front-end to a Manager: a
// per-worker free-array cache in the style of slab-allocator CPU magazines.
// Allocation and free hit the private per-class stacks with no locks or
// atomics; only refills and flushes touch the manager's sharded free lists,
// moving arrays in batches so shard lock traffic drops by ~an order of
// magnitude at high worker counts. Budget and live-byte accounting still go
// through the Manager on every alloc/free — a magazine caches arrays, never
// accounting.
//
// A Magazine is NOT safe for concurrent use. It is meant for pass-private
// churn (dedup tables, GSCHT node chunks) whose alloc and free both happen
// on the owning worker within one partition pass; blocks that outlive the
// pass should allocate from the Manager directly.
type Magazine struct {
	m     *Manager
	slots [numClasses][][]int32
	// Local counters, flushed to the manager's atomics on Release so the hot
	// path stays free of shared-cache-line traffic.
	hits, refills int64
}

// AcquireMagazine implements storage.MagazineSource.
func (m *Manager) AcquireMagazine() storage.Lifecycle {
	return &Magazine{m: m}
}

// ReleaseMagazine implements storage.MagazineSource: flush every parked
// array back to the sharded pool and fold the local counters in. The
// magazine is unusable afterwards. Lifecycles that are not magazines (e.g.
// the Manager itself, handed out when magazines are disabled) pass through.
func (m *Manager) ReleaseMagazine(lc storage.Lifecycle) {
	g, ok := lc.(*Magazine)
	if !ok || g == nil {
		return
	}
	for c := range g.slots {
		g.flushClass(c, len(g.slots[c]))
		g.slots[c] = nil
	}
	m.magHits.Add(g.hits)
	m.magRefills.Add(g.refills)
	g.hits, g.refills = 0, 0
	g.m = nil
}

// AllocData implements storage.Lifecycle. Class-sized requests are served
// from the magazine, refilling it with one batched shard visit on a miss;
// oversized requests pass through to the Manager.
func (g *Magazine) AllocData(cat storage.Category, capInt32s int) []int32 {
	c := classOf(capInt32s)
	if c < 0 {
		return g.m.AllocData(cat, capInt32s)
	}
	list := g.slots[c]
	if len(list) == 0 {
		g.refill(c)
		list = g.slots[c]
	}
	var arr []int32
	if n := len(list); n > 0 {
		arr = list[n-1][:0]
		list[n-1] = nil
		g.slots[c] = list[:n-1]
		g.hits++
		g.m.poolHits.Add(1)
	} else {
		arr = make([]int32, 0, classCap(c))
		g.m.poolMisses.Add(1)
	}
	bytes := int64(cap(arr)) * 4
	g.m.ensureHeadroom(bytes)
	g.m.accountAlloc(cat, bytes)
	return arr
}

// FreeData implements storage.Lifecycle: credit the accounting and park the
// array in the magazine, spilling half the stack back to one shard when the
// magazine is full.
func (g *Magazine) FreeData(cat storage.Category, data []int32) {
	if data == nil {
		return
	}
	n := cap(data)
	c := classOf(n)
	if c < 0 || classCap(c) != n || g.m.closed.Load() {
		g.m.FreeData(cat, data)
		return
	}
	g.m.accountFree(cat, int64(n)*4)
	g.m.frees.Add(1)
	g.slots[c] = append(g.slots[c], data)
	if len(g.slots[c]) >= magCap {
		g.flushClass(c, magCap/2)
	}
}

// Recat implements storage.Lifecycle.
func (g *Magazine) Recat(from, to storage.Category, bytes int64) {
	g.m.Recat(from, to, bytes)
}

// refill restocks class c with up to magRefill arrays using one batched
// visit per shard, stopping at the first shard that yields anything.
func (g *Magazine) refill(c int) {
	m := g.m
	start := m.rr.Add(1)
	for i := uint32(0); i < numShards; i++ {
		m.shardGets.Add(1)
		if m.shards[(start+i)%numShards].getBatch(c, &g.slots[c], magRefill) > 0 {
			break
		}
	}
	g.refills++
}

// flushClass returns up to n parked arrays of class c to one shard in a
// single batched visit; arrays the shard's retention cap rejects are dropped
// to the garbage collector.
func (g *Magazine) flushClass(c, n int) {
	list := g.slots[c]
	if n > len(list) {
		n = len(list)
	}
	if n == 0 {
		return
	}
	m := g.m
	back := list[len(list)-n:]
	if !m.closed.Load() {
		m.shardPuts.Add(1)
		m.shards[m.rr.Add(1)%numShards].putBatch(c, back, m.perShard)
	}
	for i := range back {
		back[i] = nil
	}
	g.slots[c] = list[: len(list)-n : len(list)-n]
	g.refills++
}
