package memory

import (
	"sync"
	"testing"

	"recstep/internal/quickstep/storage"
)

func TestMagazineAllocFreeAccounting(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mag := m.AcquireMagazine()
	// Churn alloc/free pairs with a small working set, the pass-private
	// pattern magazines serve: after the first few misses every alloc is a
	// magazine hit.
	var held [][]int32
	for i := 0; i < 100; i++ {
		held = append(held, mag.AllocData(storage.CatIntermediate, 1024))
		if len(held) > 4 {
			mag.FreeData(storage.CatIntermediate, held[0])
			held = held[1:]
		}
	}
	if got, want := m.Snapshot().LiveTotal, int64(len(held)*1024*4); got != want {
		t.Fatalf("live %d, want %d", got, want)
	}
	for _, a := range held {
		mag.FreeData(storage.CatIntermediate, a)
	}
	if got := m.Snapshot().LiveTotal; got != 0 {
		t.Fatalf("live %d after frees, want 0", got)
	}
	m.ReleaseMagazine(mag)
	s := m.Snapshot()
	if s.MagHits == 0 {
		t.Fatal("no magazine hits recorded")
	}
	// 100 alloc/free pairs through the magazine must cost far fewer shard
	// visits than the 200 a direct path would pay.
	if s.ShardGets+s.ShardPuts >= 100 {
		t.Fatalf("magazine did not batch shard traffic: gets=%d puts=%d", s.ShardGets, s.ShardPuts)
	}
}

func TestMagazineOversizedPassThrough(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mag := m.AcquireMagazine()
	defer m.ReleaseMagazine(mag)
	big := mag.AllocData(storage.CatIntermediate, (1<<maxClassBits)+1)
	if cap(big) < (1<<maxClassBits)+1 {
		t.Fatalf("oversized alloc cap %d", cap(big))
	}
	mag.FreeData(storage.CatIntermediate, big)
	if got := m.Snapshot().LiveTotal; got != 0 {
		t.Fatalf("live %d after oversized free, want 0", got)
	}
}

// TestMagazineConcurrentWorkers is the -race exercise: many workers each
// own a private magazine and churn alloc/free against the one shared
// manager, with refills and flushes hitting the same shards.
func TestMagazineConcurrentWorkers(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			mag := m.AcquireMagazine()
			defer m.ReleaseMagazine(mag)
			var held [][]int32
			for i := 0; i < 2000; i++ {
				n := 64 << (uint(seed+i) % 5)
				arr := mag.AllocData(storage.CatIntermediate, n)
				arr = arr[:cap(arr)]
				arr[0] = int32(i) // touch to catch double-handed arrays
				held = append(held, arr)
				if len(held) > 20 {
					mag.FreeData(storage.CatIntermediate, held[0])
					held = held[1:]
				}
			}
			for _, a := range held {
				mag.FreeData(storage.CatIntermediate, a)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Snapshot().LiveTotal; got != 0 {
		t.Fatalf("live %d after all workers done, want 0", got)
	}
}

// TestMagazineBlockPoison checks the refcount/poison contract end to end
// through a magazine: a released block's data is nil'd and its bytes
// credited, and a recycled array handed back out is independent.
func TestMagazineBlockPoison(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mag := m.AcquireMagazine()
	defer m.ReleaseMagazine(mag)
	b := storage.NewBlockIn(mag, storage.CatDelta, 2, 64)
	b.Append([]int32{1, 2})
	b.Retain()
	b.Release()
	if b.Rows() != 1 {
		t.Fatal("block lost data while still referenced")
	}
	b.Release()
	if b.Data() != nil {
		t.Fatal("block data not poisoned after final release")
	}
	if got := m.Snapshot().LiveBytes[storage.CatDelta]; got != 0 {
		t.Fatalf("delta live %d after release, want 0", got)
	}
	// The freed array must come back from the magazine for the next block.
	hitsBefore := m.Snapshot().PoolHits
	b2 := storage.NewBlockIn(mag, storage.CatDelta, 2, 64)
	if got := m.Snapshot().PoolHits; got <= hitsBefore {
		t.Fatalf("expected a magazine pool hit, hits %d -> %d", hitsBefore, got)
	}
	b2.Release()
}
