package memory

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"recstep/internal/faultinject"
	"recstep/internal/obs"
	"recstep/internal/quickstep/storage"
	"recstep/internal/relio"
)

// Config sizes a Manager.
type Config struct {
	// BudgetBytes bounds live pool bytes; exceeding it triggers cold-partition
	// spilling of registered relations. 0 disables the budget (and spilling).
	BudgetBytes int64
	// SpillDir receives spilled-partition files; empty selects a fresh temp
	// directory created lazily on first spill and removed by Close.
	SpillDir string
	// PoolBytes caps how many bytes the recycling free lists may retain.
	// 0 selects BudgetBytes/4 when a budget is set, 256 MiB otherwise.
	PoolBytes int64
	// FaultInject is the chaos-test fault injector (nil in production). Its
	// spill.write / fault.read sites fire inside SpillBlocks / FaultBlocks
	// ahead of the real I/O; its alloc site fires in the allocation
	// accounting choke point, where an injected failure is recorded as the
	// fatal run error (the engine's model of a failed allocation: the query
	// aborts, the process survives).
	FaultInject *faultinject.Injector
}

// Spill-path retry policy: a transient I/O failure (full page cache, a
// momentary EINTR/ENOSPC blip, an injected chaos fault) is retried with
// exponential backoff before the manager gives up. Corruption
// (relio.ErrCorrupt) is never retried — bad bytes do not get better.
const (
	ioAttempts    = 4
	ioBackoffBase = 200 * time.Microsecond
)

// errSpillParked is returned by SpillBlocks while spilling is parked after a
// persistent write failure; the engine keeps running in-memory.
var errSpillParked = errors.New("memory: spilling parked after persistent spill-write failure")

// Manager owns all tuple-block memory of one database instance: it is the
// storage.Lifecycle every operator allocates through, the accountant that
// tracks live bytes per category against the budget, and the storage.Pager
// that spills and faults cold partitions. All methods are safe for
// concurrent use.
type Manager struct {
	budget    int64
	poolCap   int64
	perShard  int64
	spillBase string
	ownsDir   bool

	shards [numShards]shard
	rr     atomic.Uint32

	// Gauges and counters use the obs types (which embed atomic.Int64, so
	// every update site is a plain atomic op) and can be registered on a
	// metrics registry via RegisterMetrics.
	live      [storage.NumCategories]atomic.Int64
	liveTotal obs.Gauge
	peak      obs.Gauge

	poolHits   obs.Counter
	poolMisses obs.Counter
	frees      obs.Counter

	// Shard-traffic and magazine counters. shardGets/shardPuts count free-list
	// lock acquisitions (the contention the magazines exist to reduce);
	// magHits counts allocations served from a magazine without touching a
	// shard, magRefills the batched shard visits that restock them.
	shardGets  obs.Counter
	shardPuts  obs.Counter
	magHits    obs.Counter
	magRefills obs.Counter

	epoch          atomic.Int64
	spills         obs.Counter
	faults         obs.Counter
	secondaryDrops obs.Counter
	spilledBytes   obs.Counter
	spilledNow     obs.Gauge
	fileSeq        atomic.Int64

	// obsExec/obsTracer/obsStep feed spill/fault phase attribution; all nil
	// when observability is off.
	obsExec   *obs.ExecMetrics
	obsTracer *obs.Tracer
	obsStep   func() obs.Step

	dirOnce sync.Once
	dirErr  error

	reclaimMu  sync.Mutex
	sealed     atomic.Bool
	regMu      sync.Mutex
	spillables []*storage.Relation

	closed atomic.Bool

	// Failure containment. spillRetries counts retried spill/fault I/O
	// attempts; parked flips when spill writes keep failing past the retry
	// budget (graceful degradation: the engine continues in-memory with a
	// tightened effective budget). runErr holds the first fatal error of the
	// run — an unreadable spilled partition or an injected alloc failure —
	// and onFail forwards it to the pool's abort flag so worker loops drain.
	spillRetries obs.Counter
	parked       atomic.Bool
	runErr       atomic.Pointer[runError]
	onFail       func(error)
	// inject is the chaos-test fault injector from Config (nil in
	// production); all its methods are nil-safe.
	inject *faultinject.Injector
}

// runError is the first-error-wins record of a fatal manager failure.
type runError struct{ err error }

// NewManager creates a manager.
func NewManager(cfg Config) *Manager {
	pool := cfg.PoolBytes
	if pool <= 0 {
		if cfg.BudgetBytes > 0 {
			pool = cfg.BudgetBytes / 4
		} else {
			pool = 256 << 20
		}
	}
	return &Manager{
		budget:    cfg.BudgetBytes,
		poolCap:   pool,
		perShard:  pool/numShards + 1,
		spillBase: cfg.SpillDir,
		inject:    cfg.FaultInject,
	}
}

// SetFailHandler installs the callback fatal run errors are forwarded to
// (the database wires it to the pool's abort flag). Call before evaluation;
// the handler fires at most once.
func (m *Manager) SetFailHandler(fn func(error)) { m.onFail = fn }

// RunError returns the first fatal error recorded by the manager — an
// unreadable spilled partition or an injected allocation failure — or nil.
// The engine polls it at query and iteration boundaries.
func (m *Manager) RunError() error {
	if e := m.runErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// noteRunErr records err as the run's fatal error (first error wins) and
// forwards it to the fail handler so the pool drains its worker loops.
func (m *Manager) noteRunErr(err error) {
	if m.runErr.CompareAndSwap(nil, &runError{err: err}) {
		if m.onFail != nil {
			m.onFail(err)
		}
	}
}

// ResetRunError clears the recorded fatal run error so a resident database
// can accept new work after a failed incremental update was rolled back.
// Spill parking is deliberately not reset — a persistently failing spill
// path does not heal because an update was retried.
func (m *Manager) ResetRunError() { m.runErr.Store(nil) }

// SpillsParked reports whether spilling is parked after a persistent
// spill-write failure (the engine is running in-memory degraded mode).
func (m *Manager) SpillsParked() bool { return m.parked.Load() }

// parkSpilling permanently disables spill writes after a persistent failure.
// Not fatal: the engine keeps evaluating in memory, Headroom() tightens the
// effective budget so fan-out choosers shed harder, and the parked gauge
// records the degradation for operators to see.
func (m *Manager) parkSpilling() { m.parked.Store(true) }

// withRetry runs op up to ioAttempts times with exponential backoff,
// counting each retry. Corruption errors are returned immediately.
func (m *Manager) withRetry(op func() error) error {
	backoff := ioBackoffBase
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || errors.Is(err, relio.ErrCorrupt) || attempt == ioAttempts-1 {
			return err
		}
		m.spillRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Budget returns the configured byte budget (0 = unlimited).
func (m *Manager) Budget() int64 { return m.budget }

// SetObs installs the exec metrics and tracer spill/fault passes report to,
// plus the step provider that stamps trace spans with the current fixpoint
// position (all may be nil).
func (m *Manager) SetObs(em *obs.ExecMetrics, tr *obs.Tracer, step func() obs.Step) {
	m.obsExec = em
	m.obsTracer = tr
	m.obsStep = step
}

// phase opens a wall-time span for a spill or fault pass.
func (m *Manager) phase(ph obs.Phase) func() {
	em, tr := m.obsExec, m.obsTracer
	if em == nil && tr == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		if em != nil {
			em.Phase.Add(ph, d)
		}
		if tr != nil {
			var step obs.Step
			if m.obsStep != nil {
				step = m.obsStep()
			}
			tr.Complete(ph.String(), 0, t0, d, step, -1)
		}
	}
}

// RegisterMetrics exposes the manager's gauges and counters on reg. Live
// bytes are additionally broken down by block category.
func (m *Manager) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterGauge("recstep_mem_live_bytes", "Live (allocated, unreleased) pool bytes across all categories.", &m.liveTotal)
	reg.RegisterGauge("recstep_mem_peak_live_bytes", "Peak live pool bytes observed so far.", &m.peak)
	reg.RegisterGaugeFunc("recstep_mem_budget_bytes", "Configured live-byte budget (0 = unlimited).", func() float64 { return float64(m.budget) })
	reg.RegisterSampleFunc("recstep_mem_live_bytes_by_category", "Live pool bytes per block category.", "gauge", func() []obs.Sample {
		out := make([]obs.Sample, 0, storage.NumCategories)
		for c := range m.live {
			out = append(out, obs.Sample{
				Labels: []obs.LabelPair{{Key: "category", Value: storage.Category(c).String()}},
				Value:  float64(m.live[c].Load()),
			})
		}
		return out
	})
	reg.RegisterCounter("recstep_mem_pool_hits_total", "Block-array allocations served from the recycling pool.", &m.poolHits)
	reg.RegisterCounter("recstep_mem_pool_misses_total", "Block-array allocations that fell through to the heap.", &m.poolMisses)
	reg.RegisterCounter("recstep_mem_frees_total", "Block arrays returned to the pool.", &m.frees)
	reg.RegisterCounter("recstep_mem_shard_gets_total", "Free-list shard lock acquisitions on the alloc path.", &m.shardGets)
	reg.RegisterCounter("recstep_mem_shard_puts_total", "Free-list shard lock acquisitions on the free path.", &m.shardPuts)
	reg.RegisterCounter("recstep_mem_magazine_hits_total", "Allocations served by a per-worker magazine with no shard traffic.", &m.magHits)
	reg.RegisterCounter("recstep_mem_magazine_refills_total", "Batched shard visits that restocked or flushed a magazine.", &m.magRefills)
	reg.RegisterCounter("recstep_mem_spills_total", "Cold partitions spilled to disk under budget pressure.", &m.spills)
	reg.RegisterCounter("recstep_mem_faults_total", "Spilled partitions faulted back in on demand.", &m.faults)
	reg.RegisterCounter("recstep_mem_secondary_drops_total", "Secondary carried views dropped under budget pressure.", &m.secondaryDrops)
	reg.RegisterCounter("recstep_mem_spilled_bytes_total", "Cumulative bytes written to spill files.", &m.spilledBytes)
	reg.RegisterGauge("recstep_mem_spilled_now_bytes", "Bytes currently held in spill files on disk.", &m.spilledNow)
	reg.RegisterCounter("recstep_mem_spill_retries_total", "Retried spill-write and fault-read I/O attempts (transient failures, backed off exponentially).", &m.spillRetries)
	reg.RegisterGaugeFunc("recstep_mem_spills_parked", "1 while spilling is parked after a persistent spill-write failure (in-memory degraded mode), else 0.", func() float64 {
		if m.parked.Load() {
			return 1
		}
		return 0
	})
	reg.RegisterGaugeFunc("recstep_mem_epoch", "Current reclamation epoch (fixpoint iteration count).", func() float64 { return float64(m.epoch.Load()) })
}

// Headroom returns how many bytes remain under the budget; negative when
// over, and a very large value when no budget is configured. The optimizer
// consults it to shrink radix fan-out under pressure. While spilling is
// parked (persistent spill-write failure) the effective budget is tightened
// by a quarter: with eviction unavailable, the only remaining pressure valve
// is making the fan-out and secondary-carry choosers shed earlier.
func (m *Manager) Headroom() int64 {
	if m.budget <= 0 {
		return 1 << 62
	}
	b := m.budget
	if m.parked.Load() {
		b -= b / 4
	}
	return b - m.liveTotal.Load()
}

// AllocData implements storage.Lifecycle: hand out a zero-length array with
// at least capInt32s capacity, recycled when a matching class is pooled.
// Under a budget, headroom for the allocation is reclaimed *first* (evicting
// cold partitions), so the live-byte gauge — and its recorded peak — stays
// under the budget whenever anything evictable remains.
func (m *Manager) AllocData(cat storage.Category, capInt32s int) []int32 {
	sizeBytes := int64(capInt32s) * 4
	if c := classOf(capInt32s); c >= 0 {
		sizeBytes = int64(classCap(c)) * 4
	}
	m.ensureHeadroom(sizeBytes)
	var arr []int32
	if c := classOf(capInt32s); c >= 0 {
		want := classCap(c)
		// Try the round-robin shard first, then sweep the others: a miss on
		// the striped shard must not strand recycled arrays elsewhere.
		start := m.rr.Add(1)
		for i := uint32(0); i < numShards; i++ {
			m.shardGets.Add(1)
			if got := m.shards[(start+i)%numShards].get(c); got != nil {
				arr = got[:0]
				break
			}
		}
		if arr != nil {
			m.poolHits.Add(1)
		} else {
			arr = make([]int32, 0, want)
			m.poolMisses.Add(1)
		}
	} else {
		arr = make([]int32, 0, capInt32s)
		m.poolMisses.Add(1)
	}
	m.accountAlloc(cat, int64(cap(arr))*4)
	return arr
}

// accountAlloc charges an allocation to the live gauges and records the
// peak. Shared by the direct path and the per-worker magazines. It is also
// the alloc fault-injection choke point: an injected allocation failure is
// recorded as the fatal run error — the allocation itself still succeeds
// (no mid-kernel unwind, so no pass-private state leaks) and the fixpoint
// aborts at its next boundary check, the way a real engine turns OOM into a
// query error rather than a crash.
func (m *Manager) accountAlloc(cat storage.Category, bytes int64) {
	if m.inject != nil {
		if err := m.inject.Fail(faultinject.Alloc); err != nil {
			m.noteRunErr(fmt.Errorf("memory: block allocation failed: %w", err))
		}
	}
	m.live[cat].Add(bytes)
	total := m.liveTotal.Add(bytes)
	for {
		p := m.peak.Load()
		if total <= p || m.peak.CompareAndSwap(p, total) {
			break
		}
	}
}

// accountFree credits a free against the live gauges.
func (m *Manager) accountFree(cat storage.Category, bytes int64) {
	m.live[cat].Add(-bytes)
	m.liveTotal.Add(-bytes)
}

// ensureHeadroom evicts cold partitions until the budget has room for an
// allocation of want bytes. Over-budget allocators serialize on the reclaim
// mutex — compounding a burst of concurrent allocations on top of an
// in-flight eviction is exactly how a peak overshoots the budget. The wait
// is bounded: a reclaimer that finds nothing evictable returns, and the
// allocation proceeds over budget (correctness first — the budget is a
// target the engine sheds toward, not a hard failure).
func (m *Manager) ensureHeadroom(want int64) {
	if m.budget <= 0 {
		return
	}
	target := m.budget - want
	if target < 0 {
		target = 0
	}
	if m.liveTotal.Load() <= target {
		return
	}
	m.reclaimMu.Lock()
	defer m.reclaimMu.Unlock()
	if m.liveTotal.Load() <= target {
		return
	}
	m.reclaimTo(target)
}

// FreeData implements storage.Lifecycle: return an array to the pool (or the
// heap when the retention cap is reached) and credit the accounting.
func (m *Manager) FreeData(cat storage.Category, data []int32) {
	if data == nil {
		return
	}
	m.accountFree(cat, int64(cap(data))*4)
	m.frees.Add(1)
	n := cap(data)
	if c := classOf(n); c >= 0 && classCap(c) == n && !m.closed.Load() {
		sh := &m.shards[m.rr.Add(1)%numShards]
		m.shardPuts.Add(1)
		sh.put(c, data, m.perShard)
	}
}

// Recat implements storage.Lifecycle: move bytes between category gauges.
func (m *Manager) Recat(from, to storage.Category, bytes int64) {
	m.live[from].Add(-bytes)
	m.live[to].Add(bytes)
}

// Register makes a relation's cold carried-view partitions evictable when
// the budget is exceeded. The engine registers the full recursive relations
// (R of Algorithm 1); everything else stays purely in memory.
func (m *Manager) Register(r *storage.Relation) {
	r.EnableSpill(m)
	m.regMu.Lock()
	defer m.regMu.Unlock()
	m.spillables = append(m.spillables, r)
}

// OverBudget reports whether live pool bytes currently exceed the budget
// (always false with no budget, or once eviction is sealed). The engine
// consults it at quiescent points to decide whether to shed the cheapest
// redundancy first — secondary carried views — before EndEpoch's
// cold-partition spilling pays disk I/O.
func (m *Manager) OverBudget() bool {
	return m.budget > 0 && !m.sealed.Load() && m.liveTotal.Load() > m.budget
}

// NoteSecondaryDrop records one secondary carried view dropped under budget
// pressure — the eviction that must precede any primary-partition spill.
func (m *Manager) NoteSecondaryDrop() { m.secondaryDrops.Add(1) }

// StopSpilling permanently disables eviction — the engine calls it when the
// fixpoint is done, before restoring result relations: without it, faulting
// one result back in could push the budget over and re-evict another result
// that was just restored.
func (m *Manager) StopSpilling() { m.sealed.Store(true) }

// EndEpoch advances the reclamation epoch — the engine calls it once per
// fixpoint iteration, at a quiescent point. Partitions untouched since the
// previous epoch become eligible for eviction; a budget overshoot is
// reclaimed immediately.
func (m *Manager) EndEpoch() {
	m.epoch.Add(1)
	if m.budget > 0 && m.liveTotal.Load() > m.budget {
		m.reclaimMu.Lock()
		m.reclaimTo(m.budget)
		m.reclaimMu.Unlock()
	}
}

// Epoch implements storage.Pager.
func (m *Manager) Epoch() int64 { return m.epoch.Load() }

// reclaimTo evicts least-recently-probed partitions until live bytes drop
// to target or nothing evictable remains. Callers hold reclaimMu;
// TryLock-style relation locking inside ColdestPartition/SpillPartition
// keeps it deadlock-free against allocators that already hold a relation
// mutex (they skip that relation and move on).
func (m *Manager) reclaimTo(target int64) {
	if m.sealed.Load() {
		return
	}
	// Eviction order: secondary carried views go first. They are pure
	// redundancy — a second scatter copy of data the primary layout already
	// holds — so they are retired (recycled at the next quiescent epoch,
	// since an in-flight operator may still scan them) before any primary
	// partition pays a disk write. Dropping also keeps the dual-route
	// pipeline from rebuilding them while pressure lasts: a relation whose
	// secondary is gone ignores incoming ∆R secondaries on merge.
	m.regMu.Lock()
	spillables := append([]*storage.Relation(nil), m.spillables...)
	m.regMu.Unlock()
	for _, r := range spillables {
		if r.TryDropSecondaryView() {
			m.secondaryDrops.Add(1)
		}
	}
	cur := m.epoch.Load()
	// Candidate scans use TryLock against relations an operator may be
	// touching right now; a miss is usually transient contention, not a lack
	// of cold data, so retry briefly before concluding nothing is evictable.
	misses := 0
	for m.liveTotal.Load() > target {
		if m.parked.Load() {
			// Spill writes keep failing: secondary drops above were the last
			// reclaim lever. The allocation proceeds over budget — degraded
			// but correct.
			return
		}
		m.regMu.Lock()
		rels := append([]*storage.Relation(nil), m.spillables...)
		m.regMu.Unlock()
		var victim *storage.Relation
		victimPart := -1
		var victimTouch int64
		for _, r := range rels {
			p, touch, bytes, ok := r.ColdestPartition(cur)
			if !ok || bytes == 0 {
				continue
			}
			if victim == nil || touch < victimTouch {
				victim, victimPart, victimTouch = r, p, touch
			}
		}
		ok := false
		if victim != nil {
			_, ok = victim.SpillPartition(victimPart, m)
		}
		if ok {
			misses = 0
			continue
		}
		misses++
		if misses > 8 {
			return
		}
		runtime.Gosched()
	}
}

// SpillBlocks implements storage.Pager: persist one partition's blocks to a
// spill file, retrying transient write failures with backoff. A write that
// keeps failing past the retry budget — or an unwritable spill directory —
// parks spilling for the rest of the run: the partition stays resident, the
// engine keeps evaluating in memory, and Headroom() tightens the effective
// budget. Spill failures are never fatal; no data has left memory yet.
func (m *Manager) SpillBlocks(arity int, blocks []*storage.Block) (any, int64, error) {
	defer m.phase(obs.PhaseSpill)()
	if m.parked.Load() {
		return nil, 0, errSpillParked
	}
	dir, err := m.spillDir()
	if err != nil {
		m.parkSpilling()
		return nil, 0, fmt.Errorf("memory: spill directory unavailable (spilling parked, continuing in-memory): %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("part-%06d.spill", m.fileSeq.Add(1)))
	var bytes int64
	err = m.withRetry(func() error {
		if ierr := m.inject.Fail(faultinject.SpillWrite); ierr != nil {
			return ierr
		}
		var werr error
		bytes, werr = relio.WriteBlocksFile(path, arity, blocks)
		if werr != nil {
			os.Remove(path)
		}
		return werr
	})
	if err != nil {
		m.parkSpilling()
		return nil, 0, fmt.Errorf("memory: spill write failed after %d attempts (spilling parked, continuing in-memory): %w", ioAttempts, err)
	}
	m.spills.Add(1)
	m.spilledBytes.Add(bytes)
	m.spilledNow.Add(bytes)
	return path, bytes, nil
}

// FaultBlocks implements storage.Pager: restore a spilled partition,
// allocating through lc, and discard the file. Transient read failures are
// retried with backoff; corruption (relio.ErrCorrupt — truncated or
// bit-flipped file) is not retried. A fault that ultimately fails is fatal
// for the run — the partition's tuples are unavailable, so continuing would
// compute wrong results — and is recorded as the run error; the file and the
// caller's token stay valid, so the relation keeps the slot and unspilled
// partitions remain fully usable.
func (m *Manager) FaultBlocks(token any, lc storage.Lifecycle, cat storage.Category, arity int) ([]*storage.Block, error) {
	defer m.phase(obs.PhaseFault)()
	path := token.(string)
	var blocks []*storage.Block
	err := m.withRetry(func() error {
		if ierr := m.inject.Fail(faultinject.FaultRead); ierr != nil {
			return ierr
		}
		var rerr error
		blocks, rerr = relio.ReadBlocksFile(path, lc, cat, arity)
		return rerr
	})
	if err != nil {
		err = fmt.Errorf("memory: faulting spilled partition %s: %w", path, err)
		m.noteRunErr(err)
		return nil, err
	}
	var sz int64
	if fi, err := os.Stat(path); err == nil {
		sz = fi.Size()
	}
	os.Remove(path)
	m.faults.Add(1)
	m.spilledNow.Add(-sz)
	return blocks, nil
}

// DropSpill implements storage.Pager: discard a spilled partition that will
// never be read again.
func (m *Manager) DropSpill(token any) {
	path := token.(string)
	if fi, err := os.Stat(path); err == nil {
		m.spilledNow.Add(-fi.Size())
	}
	os.Remove(path)
}

// spillDir lazily creates the spill directory.
func (m *Manager) spillDir() (string, error) {
	m.dirOnce.Do(func() {
		if m.spillBase != "" {
			m.dirErr = os.MkdirAll(m.spillBase, 0o755)
			return
		}
		d, err := os.MkdirTemp("", "recstep-mem-*")
		if err != nil {
			m.dirErr = err
			return
		}
		m.spillBase, m.ownsDir = d, true
	})
	return m.spillBase, m.dirErr
}

// Close drains the pool and removes the spill directory (when owned).
func (m *Manager) Close() error {
	m.closed.Store(true)
	for i := range m.shards {
		m.shards[i].drain()
	}
	if m.ownsDir && m.spillBase != "" {
		return os.RemoveAll(m.spillBase)
	}
	return nil
}

// Snapshot is a point-in-time reading of the manager's gauges and counters,
// surfaced through engine Stats and IterInfo.
type Snapshot struct {
	// LiveBytes is the per-category live (allocated, unreleased) pool bytes.
	LiveBytes [storage.NumCategories]int64
	// LiveTotal and PeakLive aggregate across categories.
	LiveTotal, PeakLive int64
	// Budget echoes the configured budget (0 = unlimited).
	Budget int64
	// PoolHits/PoolMisses count recycled vs fresh block-array allocations;
	// Frees counts arrays returned.
	PoolHits, PoolMisses, Frees int64
	// ShardGets/ShardPuts count free-list shard lock acquisitions; MagHits
	// counts allocations served by a per-worker magazine without any shard
	// traffic, MagRefills the batched refills/flushes that restock them.
	// Magazines working: MagHits high, ShardGets/ShardPuts low.
	ShardGets, ShardPuts, MagHits, MagRefills int64
	// Spills/Faults count partition evictions and restorations;
	// SpilledBytes is the cumulative volume written, SpilledNowBytes the
	// volume currently on disk.
	Spills, Faults                int64
	SpilledBytes, SpilledNowBytes int64
	// SecondaryDrops counts secondary carried views dropped under budget
	// pressure — the eviction step that runs before any partition spills.
	SecondaryDrops int64
	// SpillRetries counts retried spill-write/fault-read I/O attempts;
	// SpillsParked reports in-memory degraded mode after a persistent
	// spill-write failure.
	SpillRetries int64
	SpillsParked bool
	// Epoch is the current reclamation epoch (fixpoint iteration count).
	Epoch int64
}

// Snapshot reads the gauges.
func (m *Manager) Snapshot() Snapshot {
	s := Snapshot{
		LiveTotal:       m.liveTotal.Load(),
		PeakLive:        m.peak.Load(),
		Budget:          m.budget,
		PoolHits:        m.poolHits.Load(),
		PoolMisses:      m.poolMisses.Load(),
		Frees:           m.frees.Load(),
		ShardGets:       m.shardGets.Load(),
		ShardPuts:       m.shardPuts.Load(),
		MagHits:         m.magHits.Load(),
		MagRefills:      m.magRefills.Load(),
		Spills:          m.spills.Load(),
		Faults:          m.faults.Load(),
		SecondaryDrops:  m.secondaryDrops.Load(),
		SpillRetries:    m.spillRetries.Load(),
		SpillsParked:    m.parked.Load(),
		SpilledBytes:    m.spilledBytes.Load(),
		SpilledNowBytes: m.spilledNow.Load(),
		Epoch:           m.epoch.Load(),
	}
	for c := range s.LiveBytes {
		s.LiveBytes[c] = m.live[c].Load()
	}
	return s
}

// Sub returns counter deltas since an earlier snapshot (gauges are copied
// from the receiver).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := s
	d.PoolHits -= o.PoolHits
	d.PoolMisses -= o.PoolMisses
	d.Frees -= o.Frees
	d.ShardGets -= o.ShardGets
	d.ShardPuts -= o.ShardPuts
	d.MagHits -= o.MagHits
	d.MagRefills -= o.MagRefills
	d.Spills -= o.Spills
	d.Faults -= o.Faults
	d.SecondaryDrops -= o.SecondaryDrops
	d.SpillRetries -= o.SpillRetries
	d.SpilledBytes -= o.SpilledBytes
	return d
}
