package memory

import (
	"reflect"
	"testing"

	"recstep/internal/quickstep/storage"
)

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, cap int }{
		{1, 64}, {64, 64}, {65, 128}, {128, 128}, {1000, 1024},
		{1 << 20, 1 << 20}, {1<<22 - 1, 1 << 22}, {1 << 22, 1 << 22},
	}
	for _, c := range cases {
		cl := classOf(c.n)
		if cl < 0 {
			t.Fatalf("classOf(%d) = %d", c.n, cl)
		}
		if got := classCap(cl); got != c.cap {
			t.Errorf("classOf(%d) -> cap %d, want %d", c.n, got, c.cap)
		}
	}
	if classOf(1<<22+1) != -1 {
		t.Error("oversized request should be unpooled")
	}
}

func TestAccountingAndRecycling(t *testing.T) {
	m := NewManager(Config{})
	a := m.AllocData(storage.CatDelta, 1000)
	if cap(a) < 1000 {
		t.Fatalf("cap %d < 1000", cap(a))
	}
	s := m.Snapshot()
	if s.LiveBytes[storage.CatDelta] != int64(cap(a))*4 || s.LiveTotal != int64(cap(a))*4 {
		t.Fatalf("accounting after alloc: %+v", s)
	}
	m.Recat(storage.CatDelta, storage.CatIDB, int64(cap(a))*4)
	s = m.Snapshot()
	if s.LiveBytes[storage.CatDelta] != 0 || s.LiveBytes[storage.CatIDB] != int64(cap(a))*4 {
		t.Fatalf("recat did not move gauges: %+v", s)
	}
	m.FreeData(storage.CatIDB, a)
	s = m.Snapshot()
	if s.LiveTotal != 0 || s.LiveBytes[storage.CatIDB] != 0 {
		t.Fatalf("accounting after free: %+v", s)
	}
	// A same-class alloc must be served from the free list.
	hitsBefore := s.PoolHits
	b := m.AllocData(storage.CatIntermediate, 1000)
	if cap(b) != cap(a) {
		t.Fatalf("recycled cap %d, want %d", cap(b), cap(a))
	}
	if got := m.Snapshot().PoolHits; got != hitsBefore+1 {
		t.Fatalf("pool hits %d, want %d", got, hitsBefore+1)
	}
	if peak := m.Snapshot().PeakLive; peak != int64(cap(a))*4 {
		t.Fatalf("peak %d, want %d", peak, int64(cap(a))*4)
	}
}

// buildCarried assembles a relation that carries a whole-tuple partitioned
// view with pool-allocated blocks — the shape of the fixpoint's full
// relation R.
func buildCarried(m *Manager, parts, rowsPerPart int) (*storage.Relation, []int32) {
	blocks := make([][]*storage.Block, parts)
	var all []int32
	for p := 0; p < parts; p++ {
		b := storage.NewBlockIn(m, storage.CatIDB, 2, rowsPerPart)
		for i := 0; i < rowsPerPart; i++ {
			row := []int32{int32(p), int32(i)}
			b.Append(row)
			all = append(all, row...)
		}
		blocks[p] = []*storage.Block{b}
	}
	r := storage.NewRelation("r", storage.NumberedColumns(2))
	r.SetLifecycle(m, storage.CatIDB)
	r.AdoptPartitioned(storage.NewPartitionedView(storage.AllCols(2), parts, blocks))
	return r, all
}

func TestSpillFaultRoundTrip(t *testing.T) {
	m := NewManager(Config{BudgetBytes: 1}) // everything over budget
	defer m.Close()
	const parts, rows = 8, 500
	r, want := buildCarried(m, parts, rows)
	m.Register(r)

	// Partitions become evictable one epoch after their last touch.
	m.EndEpoch()
	m.EndEpoch()
	if s := m.Snapshot(); s.Spills == 0 {
		t.Fatalf("no spills under a 1-byte budget: %+v", s)
	}
	if r.SpilledPartitions() == 0 {
		t.Fatal("no partitions recorded as spilled")
	}

	// Reading every partition through the carried view faults the data back
	// in, byte-identical.
	v, ok := r.CarriedView(storage.AllCols(2), parts)
	if !ok {
		t.Fatal("carried view lost")
	}
	got := make([]int32, 0, len(want))
	for p := 0; p < parts; p++ {
		for _, b := range v.Blocks(p) {
			got = append(got, b.Data()...)
		}
	}
	sortRows := func(d []int32) []int32 {
		rel := storage.NewRelation("s", storage.NumberedColumns(2))
		rel.AppendRows(d)
		return rel.SortedRows()
	}
	if !reflect.DeepEqual(sortRows(got), sortRows(want)) {
		t.Fatal("fault-back returned different tuples than were spilled")
	}
	if s := m.Snapshot(); s.Faults == 0 {
		t.Fatalf("faults not counted: %+v", s)
	}
	if r.SpilledPartitions() != 0 {
		t.Fatal("partitions still marked spilled after fault-back")
	}
}

func TestFlatScanFaultsEverything(t *testing.T) {
	m := NewManager(Config{BudgetBytes: 1})
	defer m.Close()
	r, want := buildCarried(m, 4, 200)
	m.Register(r)
	m.EndEpoch()
	m.EndEpoch()
	if r.SpilledPartitions() == 0 {
		t.Fatal("setup: nothing spilled")
	}
	wantRel := storage.NewRelation("w", storage.NumberedColumns(2))
	wantRel.AppendRows(want)
	if !reflect.DeepEqual(r.SortedRows(), wantRel.SortedRows()) {
		t.Fatal("flat scan after spill lost tuples")
	}
	if r.SpilledPartitions() != 0 {
		t.Fatal("flat scan should fault every partition")
	}
}

func TestHeadroom(t *testing.T) {
	m := NewManager(Config{BudgetBytes: 1 << 20})
	if m.Headroom() != 1<<20 {
		t.Fatalf("headroom %d", m.Headroom())
	}
	a := m.AllocData(storage.CatIntermediate, 1<<18)
	if got := m.Headroom(); got != 1<<20-int64(cap(a))*4 {
		t.Fatalf("headroom %d after alloc", got)
	}
	un := NewManager(Config{})
	if un.Headroom() < 1<<60 {
		t.Fatal("unbudgeted headroom should be effectively infinite")
	}
}
