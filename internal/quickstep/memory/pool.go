// Package memory is the block-lifecycle subsystem of the QuickStep-like
// substrate: a size-classed, sharded pool that recycles sealed storage
// blocks, per-category live-byte accounting against a configurable budget,
// and a spill manager that evicts cold partitions of full relations to temp
// files when the budget is exceeded. It is the engine-side answer to the
// paper's central observation that scaling in-memory Datalog is bounded by
// memory, not CPU: QuickStep's block-based storage manager lets RecStep
// aggressively reclaim evaluation intermediates, and this package gives our
// engine the same lever.
package memory

import (
	"math/bits"
	"sync"
)

// Size classes are powers of two in int32 units: 2^minClassBits (256 B) up
// to 2^maxClassBits (16 MiB). The smallest classes exist for compacted
// near-convergence delta blocks (a handful of rows per partition); requests
// above the largest class are allocated exactly and never pooled (they are
// rare: a single block never exceeds DefaultBlockRows rows).
const (
	minClassBits = 6
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

// numShards spreads free-list contention across workers. Block allocation
// happens once per ~16k emitted rows, so a small fixed shard count suffices.
const numShards = 8

// classOf returns the size-class index for a request of n int32s, or -1 when
// the request exceeds the largest class.
func classOf(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

// classCap returns the capacity (in int32s) of class c.
func classCap(c int) int { return 1 << (minClassBits + c) }

// shard is one lock-striped set of per-class free lists.
type shard struct {
	mu      sync.Mutex
	classes [numClasses][][]int32
	bytes   int64 // bytes currently parked in this shard
}

// get pops a recycled array of class c, or nil.
func (s *shard) get(c int) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.classes[c]
	if len(list) == 0 {
		return nil
	}
	arr := list[len(list)-1]
	s.classes[c] = list[:len(list)-1]
	s.bytes -= int64(cap(arr)) * 4
	return arr
}

// put parks an array for reuse unless the shard is at its retention cap.
func (s *shard) put(c int, arr []int32, capBytes int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bytes+int64(cap(arr))*4 > capBytes {
		return false
	}
	s.classes[c] = append(s.classes[c], arr)
	s.bytes += int64(cap(arr)) * 4
	return true
}

// getBatch pops up to want recycled arrays of class c under one lock
// acquisition, appending them to *dst. Returns the number popped. The
// per-worker magazines refill through this so a refill costs one shard
// lock regardless of how many arrays it moves.
func (s *shard) getBatch(c int, dst *[][]int32, want int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.classes[c]
	n := want
	if n > len(list) {
		n = len(list)
	}
	if n == 0 {
		return 0
	}
	taken := list[len(list)-n:]
	*dst = append(*dst, taken...)
	for i := range taken {
		s.bytes -= int64(cap(taken[i])) * 4
		taken[i] = nil
	}
	s.classes[c] = list[: len(list)-n : len(list)-n]
	return n
}

// putBatch parks as many of the arrays as the retention cap allows under one
// lock acquisition, returning how many were parked (the rest are the
// caller's to drop to the garbage collector).
func (s *shard) putBatch(c int, arrs [][]int32, capBytes int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	parked := 0
	for _, arr := range arrs {
		if s.bytes+int64(cap(arr))*4 > capBytes {
			break
		}
		s.classes[c] = append(s.classes[c], arr)
		s.bytes += int64(cap(arr)) * 4
		parked++
	}
	return parked
}

// drain empties the shard, returning the bytes dropped.
func (s *shard) drain() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := s.bytes
	s.classes = [numClasses][][]int32{}
	s.bytes = 0
	return freed
}
