package optimizer

import (
	"recstep/internal/quickstep/plan"
)

// JoinStrategy names the executor path chosen for one branch.
type JoinStrategy int

// Join strategies, in increasing order of machinery.
const (
	// JoinTextual is the ablation: a left-deep chain in FROM order.
	JoinTextual JoinStrategy = iota
	// JoinGreedy is a left-deep chain in connectivity-driven greedy order.
	JoinGreedy
	// JoinWCOJ is the leapfrog multi-way intersection for cyclic bodies.
	JoinWCOJ
)

// String renders the strategy for stats and debug logs.
func (s JoinStrategy) String() string {
	switch s {
	case JoinGreedy:
		return "greedy"
	case JoinWCOJ:
		return "wcoj"
	}
	return "textual"
}

// ChooseJoinStrategy picks the executor path for a branch. Cyclic bodies of
// three or more atoms go to the leapfrog join when enabled: every pairwise
// order of a cyclic pattern (triangle, clique) materializes an intermediate
// asymptotically larger than the output, which no ordering fixes. Aggregate
// and anti-join branches stay on the chain — the leapfrog path emits set
// semantics, which is only sound when the output feeds the dedup'd delta
// step directly.
func ChooseJoinStrategy(br *plan.Branch, joinOrder, wcoj bool) JoinStrategy {
	if wcoj && len(br.Tables) >= 3 && len(br.Aggs) == 0 && len(br.AntiJoins) == 0 && plan.Cyclic(br) {
		return JoinWCOJ
	}
	if joinOrder && len(br.Tables) >= 2 {
		return JoinGreedy
	}
	return JoinTextual
}

// OrderJoins greedily orders a branch's atoms by connectivity, statistics-
// light in the janus-datalog style: seed from the most selective literal
// (smallest cardinality, filtered atoms first on ties), then repeatedly pick
// the remaining atom sharing the most variable classes with the placed
// prefix, breaking ties by cardinality. Atoms sharing nothing (cross
// products) go last. cards[i] is the live tuple count of Tables[i] — for
// ∆-relations that is this iteration's delta count, so the order adapts as
// deltas shrink. The result depends only on the atom multiset (names,
// cardinalities, filters, connectivity), not on the textual order.
func OrderJoins(br *plan.Branch, cards []int) []int {
	n := len(br.Tables)
	if n <= 1 {
		return plan.IdentityOrder(n)
	}
	classes := br.VarClasses()
	classSet := make([]map[int]bool, n)
	for t := 0; t < n; t++ {
		classSet[t] = make(map[int]bool, br.Arities[t])
		for c := 0; c < br.Arities[t]; c++ {
			classSet[t][classes[br.Offsets[t]+c]] = true
		}
	}
	filtered := func(t int) bool { return len(br.PreFilter[t]) > 0 }
	// seedLess orders by selectivity; name then index keep it deterministic
	// and (up to identical atoms) invariant to textual permutation.
	seedLess := func(a, b int) bool {
		if cards[a] != cards[b] {
			return cards[a] < cards[b]
		}
		if filtered(a) != filtered(b) {
			return filtered(a)
		}
		if br.Tables[a] != br.Tables[b] {
			return br.Tables[a] < br.Tables[b]
		}
		return a < b
	}
	placed := make([]bool, n)
	placedClasses := map[int]bool{}
	order := make([]int, 0, n)
	place := func(t int) {
		placed[t] = true
		order = append(order, t)
		for k := range classSet[t] {
			placedClasses[k] = true
		}
	}
	seed := -1
	for t := 0; t < n; t++ {
		if seed < 0 || seedLess(t, seed) {
			seed = t
		}
	}
	place(seed)
	for len(order) < n {
		best, bestConn := -1, -1
		for t := 0; t < n; t++ {
			if placed[t] {
				continue
			}
			conn := 0
			for k := range classSet[t] {
				if placedClasses[k] {
					conn++
				}
			}
			if best < 0 || conn > bestConn || (conn == bestConn && seedLess(t, best)) {
				best, bestConn = t, conn
			}
		}
		place(best)
	}
	return order
}
