package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"recstep/internal/quickstep/plan"
	"recstep/internal/quickstep/sql"
)

var joinOrderSchema = func(table string) ([]string, bool) {
	switch table {
	case "pointsTo", "pointsTo_delta", "load", "assign", "arc":
		return []string{"c0", "c1"}, true
	}
	return nil, false
}

// joinOrderAtom is one FROM item: a table and the variable names its two
// columns bind (shared names become equi-join edges).
type joinOrderAtom struct {
	table string
	vars  [2]string
}

// atomSQL renders a SELECT joining the atoms in the given textual order,
// with one equality per consecutive occurrence of each variable.
func atomSQL(atoms []joinOrderAtom) string {
	var from, where []string
	occ := map[string][]string{} // var -> "tN.cM" references in order
	for i, a := range atoms {
		from = append(from, fmt.Sprintf("%s AS t%d", a.table, i))
		for c, v := range a.vars {
			occ[v] = append(occ[v], fmt.Sprintf("t%d.c%d", i, c))
		}
	}
	for _, refs := range occ {
		for i := 1; i < len(refs); i++ {
			where = append(where, refs[i-1]+" = "+refs[i])
		}
	}
	return "SELECT t0.c0, t0.c1 FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
}

func bindBranch(t *testing.T, q string) *plan.Branch {
	t.Helper()
	st, err := sql.Parse(q, joinOrderSchema)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return st.(plan.SelectStmt).Query.Branches[0]
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// OrderJoins must be a function of the join structure and cardinalities
// only: every textual permutation of the same body must come back in the
// same table order.
func TestOrderJoinsInvariantToTextualOrder(t *testing.T) {
	// The aawide shape: ∆pointsTo(x,z) ⋈ pointsTo(z,w) ⋈ load(y,x).
	atoms := []joinOrderAtom{
		{"pointsTo_delta", [2]string{"x", "z"}},
		{"pointsTo", [2]string{"z", "w"}},
		{"load", [2]string{"y", "x"}},
	}
	cardOf := map[string]int{"pointsTo_delta": 5, "pointsTo": 1000, "load": 40}

	var want []string
	for _, perm := range permutations(len(atoms)) {
		permuted := make([]joinOrderAtom, len(atoms))
		for i, j := range perm {
			permuted[i] = atoms[j]
		}
		br := bindBranch(t, atomSQL(permuted))
		cards := make([]int, len(br.Tables))
		for i, tab := range br.Tables {
			cards[i] = cardOf[tab]
		}
		order := OrderJoins(br, cards)
		names := make([]string, len(order))
		for i, idx := range order {
			names[i] = br.Tables[idx]
		}
		if want == nil {
			want = names
			continue
		}
		if strings.Join(names, ",") != strings.Join(want, ",") {
			t.Fatalf("permutation %v ordered %v, want %v", perm, names, want)
		}
	}
	if want[0] != "pointsTo_delta" {
		t.Fatalf("seed = %s, want the smallest relation pointsTo_delta (order %v)", want[0], want)
	}
	// load connects to the seed through x and is far smaller than pointsTo:
	// connectivity + cardinality must place it second.
	if want[1] != "load" {
		t.Fatalf("second atom = %s, want load (order %v)", want[1], want)
	}
}

// The strategy chooser must route cyclic ≥3-atom bodies to the leapfrog
// join and leave chains on the (ordered) pairwise pipeline.
func TestChooseJoinStrategy(t *testing.T) {
	triangle := bindBranch(t, atomSQL([]joinOrderAtom{
		{"arc", [2]string{"x", "y"}},
		{"arc", [2]string{"y", "z"}},
		{"arc", [2]string{"x", "z"}},
	}))
	chain := bindBranch(t, atomSQL([]joinOrderAtom{
		{"pointsTo_delta", [2]string{"x", "z"}},
		{"pointsTo", [2]string{"z", "w"}},
		{"load", [2]string{"y", "x"}},
	}))
	if got := ChooseJoinStrategy(triangle, true, true); got != JoinWCOJ {
		t.Fatalf("triangle: %v, want wcoj", got)
	}
	if got := ChooseJoinStrategy(triangle, true, false); got != JoinGreedy {
		t.Fatalf("triangle with wcoj off: %v, want greedy", got)
	}
	if got := ChooseJoinStrategy(chain, true, true); got != JoinGreedy {
		t.Fatalf("chain: %v, want greedy", got)
	}
	if got := ChooseJoinStrategy(chain, false, false); got != JoinTextual {
		t.Fatalf("chain with ordering off: %v, want textual", got)
	}
}
