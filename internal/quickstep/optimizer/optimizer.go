// Package optimizer holds the lightweight cost-based decisions RecStep's
// Optimization-On-the-Fly refreshes every iteration: hash-join build-side
// selection and the Dynamic Set Difference (DSD) choice between OPSD and
// TPSD, including the Appendix A cost model and the offline α calibration.
package optimizer

import (
	"math/rand"
	"sort"

	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/storage"
)

// ChooseBuildLeft reports whether the left join input should build the hash
// table: the smaller side builds. Called with the latest ANALYZE statistics,
// so stale statistics (OOF-NA) produce stale — possibly wrong — choices.
func ChooseBuildLeft(leftTuples, rightTuples int) bool {
	return leftTuples <= rightTuples
}

// carriedBuildFactor bounds the keyset-aware build-side override: a side
// whose carried partitioning matches its join keys is preferred over the
// strictly smaller side only while it is at most this many times larger.
// Building in place costs ~α per tuple over the carried side; building the
// other side costs ~α per tuple *plus* a scatter copy (≈ one probe, so
// ≈ α+1 per tuple with α≈2) — the in-place build wins until the carried
// side is roughly (α+1)/α ≈ 1.5× larger, and 2× keeps a margin for the
// statistics being estimates.
const carriedBuildFactor = 2

// PreferCarriedBuild applies the keyset-aware build-side override on top of
// ChooseBuildLeft: when exactly one join input already carries a
// partitioning on its join keys and the cardinalities are close (within
// carriedBuildFactor), the carried side builds — its hash tables are
// indexed straight over carried partition blocks with zero tuple movement,
// which beats a slightly smaller build that must pay a scatter pass first.
// With no carried side (or both carried) the pure size rule decides.
func PreferCarriedBuild(leftTuples, rightTuples int, leftCarried, rightCarried bool) bool {
	buildLeft := ChooseBuildLeft(leftTuples, rightTuples)
	if leftCarried == rightCarried || leftTuples <= 0 || rightTuples <= 0 {
		return buildLeft
	}
	if leftCarried && rightTuples*carriedBuildFactor >= leftTuples {
		return true
	}
	if rightCarried && leftTuples*carriedBuildFactor >= rightTuples {
		return false
	}
	return buildLeft
}

// Partition-count tiers for the radix-partitioned parallel build. The build
// side must be large enough to amortize one scatter pass before fan-out pays
// off, and past that the count grows with cardinality so per-partition
// tables stay cache-resident.
const (
	// partitionMinTuples is the smallest build side worth partitioning.
	partitionMinTuples = 1 << 14
	// partitionMidTuples upgrades the fan-out from 16 to 64.
	partitionMidTuples = 1 << 18
	// partitionBigTuples upgrades the fan-out from 64 to 256.
	partitionBigTuples = 1 << 22
)

// ChoosePartitions picks the radix partition count (1, 16, 64 or 256) for a
// hash build from the build side's cardinality estimate. Like the build-side
// choice, it is driven by the latest ANALYZE statistics, so OOF keeps it
// correct as delta sizes shift across iterations. A single worker gets no
// benefit from contention-free builds, so it always runs unpartitioned.
func ChoosePartitions(buildTuples, workers int) int {
	if workers == 1 {
		return 1
	}
	switch {
	case buildTuples < partitionMinTuples:
		return 1
	case buildTuples < partitionMidTuples:
		return 16
	case buildTuples < partitionBigTuples:
		return 64
	default:
		return 256
	}
}

// Memory-headroom tiers for fan-out under budget pressure. Every partition
// costs workers × open-block overhead during a scatter, so when the memory
// manager reports little room under its budget the fan-out steps down
// instead of letting scatter buffers push the run over — the paper's theme
// of trading parallel granularity for fitting in RAM.
const (
	// headroomTight caps hash-build fan-out at 16.
	headroomTight = 8 << 20
	// headroomLow caps it at 64.
	headroomLow = 64 << 20
	// headroomMinPartition disables partitioning for plain hash builds
	// entirely.
	headroomMinPartition = 2 << 20
)

// capFanout applies the headroom tiers to a chosen partition count.
func capFanout(parts int, headroom int64) int {
	switch {
	case headroom < headroomTight:
		if parts > 16 {
			parts = 16
		}
	case headroom < headroomLow:
		if parts > 64 {
			parts = 64
		}
	}
	return parts
}

// ChoosePartitionsBudget is ChoosePartitions constrained by the memory
// manager's remaining headroom: under pressure the fan-out shrinks, and with
// almost no room the build runs unpartitioned (one shared table allocates no
// scatter copies at all).
func ChoosePartitionsBudget(buildTuples, workers int, headroom int64) int {
	if headroom < headroomMinPartition {
		return 1
	}
	return capFanout(ChoosePartitions(buildTuples, workers), headroom)
}

// ChooseDeltaPartitionsBudget is ChooseDeltaPartitions under a headroom
// constraint. Unlike plain hash builds, the delta fan-out never drops below
// 16 while partitioning is warranted at all: the carried whole-tuple
// partitions are the unit of cold-partition spilling, so collapsing to a
// flat layout under pressure would remove the engine's only way to shed
// memory.
func ChooseDeltaPartitionsBudget(rTuples, prevTmpTuples, workers int, headroom int64) int {
	parts := ChooseDeltaPartitions(rTuples, prevTmpTuples, workers)
	if parts <= 1 {
		// The cardinality tiers would run flat — but when the full relation
		// alone threatens the remaining headroom, partition it anyway:
		// carried partitions are the unit of cold-partition spilling, and a
		// flat R under a tight budget has no way to shed memory at all.
		if int64(rTuples)*8 > headroom/4 {
			return 16
		}
		return parts
	}
	return capFanout(parts, headroom)
}

// ChooseUpdateDeltaPartitioning picks the delta layout for incremental
// update evaluation. Update deltas are tiny relative to R, so the batch
// cardinality tiers would usually run them flat — but an incremental delta
// whose partitioning differs from R's carried view forces AppendRelation
// into a flat-mutation rebuild of the *full* relation on every update,
// which dwarfs any scatter savings on the delta itself. So when the full
// relation carries a partitioned view, mirror it exactly (key columns and
// fan-out both); only an uncarried R falls back to the batch heuristic.
func ChooseUpdateDeltaPartitioning(carried storage.Partitioning, hasCarried bool, rTuples, prevTmpTuples, workers int, headroom int64, arity int) storage.Partitioning {
	if hasCarried {
		return carried
	}
	parts := ChooseDeltaPartitionsBudget(rTuples, prevTmpTuples, workers, headroom)
	return storage.Partitioning{KeyCols: storage.AllCols(arity), Parts: parts}
}

// ChooseJoinKeyCols reconciles the delta pipeline's partitioning keyset with
// the join builds of the coming iterations: given the join-key column sets
// under which a recursive predicate's relations (∆R and R) enter hash
// builds directly (collected from the bound recursive plans, once per
// stratum), it picks the key columns the carried partitioning should route
// on. Any non-empty keyset co-locates equal tuples, so the delta step's
// dedup and set difference are correct under every candidate; the choice is
// purely about which downstream build gets served scatter-free:
//
//   - One keyset used everywhere → carry exactly it. ∆R exits the delta
//     step scattered on the keys the next iteration's build probes, and the
//     build indexes the carried blocks in place (zero re-scatter — the
//     FlowLog observation that carrying index structure across incremental
//     iterations beats rebuilding it).
//   - Conflicting keysets (the predicate joins on different columns in
//     different rules, e.g. same-generation's sg(p,q) joined on p and on q)
//     → fall back to the whole-tuple layout: no single partitioning can
//     serve both builds, and whole-tuple routing at least spreads skewed
//     key values across partitions for the delta pass itself.
//   - No direct join usage → whole-tuple layout.
func ChooseJoinKeyCols(arity int, keysets [][]int) []int {
	var chosen []int
	for _, ks := range keysets {
		if len(ks) == 0 {
			continue
		}
		if chosen == nil {
			chosen = ks
			continue
		}
		if !storage.KeyColsEqual(chosen, ks) {
			return storage.AllCols(arity)
		}
	}
	if chosen == nil {
		return storage.AllCols(arity)
	}
	return append([]int(nil), chosen...)
}

// RankJoinKeysets returns the distinct non-empty keysets of a predicate's
// direct hash-build usage, ranked by how many builds each serves per
// iteration (occurrence count, descending; ties keep first-appearance
// order). The count is the copy-accounting estimate behind the carry
// choice: every occurrence is one hash build per iteration that a carried
// partitioning on that keyset serves with zero tuple movement.
func RankJoinKeysets(keysets [][]int) [][]int {
	type ranked struct {
		keys  []int
		count int
		order int
	}
	var distinct []ranked
	for _, ks := range keysets {
		if len(ks) == 0 {
			continue
		}
		found := false
		for i := range distinct {
			if storage.KeyColsEqual(distinct[i].keys, ks) {
				distinct[i].count++
				found = true
				break
			}
		}
		if !found {
			distinct = append(distinct, ranked{keys: append([]int(nil), ks...), count: 1, order: len(distinct)})
		}
	}
	sort.SliceStable(distinct, func(a, b int) bool {
		if distinct[a].count != distinct[b].count {
			return distinct[a].count > distinct[b].count
		}
		return distinct[a].order < distinct[b].order
	})
	out := make([][]int, len(distinct))
	for i, d := range distinct {
		out[i] = d.keys
	}
	return out
}

// ChooseCarryKeysets is the ranked, two-view generalization of
// ChooseJoinKeyCols: instead of falling back to the whole-tuple layout when
// a predicate's recursive joins build on conflicting keysets, it selects up
// to two of them — the primary (most builds served), which routes the delta
// pipeline and becomes R's carried partitioning, and a secondary, which R
// and ∆R maintain as an extra carried view via the dual-route delta step.
//
// The cost cutoff comes from copy accounting: maintaining a secondary view
// costs one extra scatter copy of ∆R per iteration (the dual route) plus one
// initial scatter of R, while every build it serves saves a scatter of the
// *build side* (R or ∆R, both at least ∆R-sized) per iteration. A secondary
// keyset with at least one direct build use therefore always at least breaks
// even, and strictly wins whenever the build side is the accumulated R —
// so the cutoff is one use; keysets ranked third or lower stay unserved
// (their builds re-scatter, exactly as under the whole-tuple fallback).
// With no conflict the choice degenerates to ChooseJoinKeyCols: primary =
// the consensus keyset (or the whole tuple), no secondary.
func ChooseCarryKeysets(arity int, keysets [][]int) (primary, secondary []int) {
	ranked := RankJoinKeysets(keysets)
	if len(ranked) == 0 {
		return storage.AllCols(arity), nil
	}
	if len(ranked) == 1 {
		return ranked[0], nil
	}
	return ranked[0], ranked[1]
}

// ChooseDeltaPartitions picks the whole-tuple radix fan-out one recursive
// predicate uses for one fixpoint iteration. A single count is shared by
// every stage of the delta pipeline — the fused scatter of the join output,
// the fused dedup/set-difference pass, ∆R's materialization, and the carried
// partitioning R accumulates — so partitioned output produced by one stage
// is consumed by the next without a re-scatter. The fan-out is sized by the
// larger of the two inputs the delta pass touches: the full relation R and
// the join output Rt (approximated by the previous iteration's size, the
// same slowly-changing heuristic DSD uses for µ).
func ChooseDeltaPartitions(rTuples, prevTmpTuples, workers int) int {
	n := rTuples
	if prevTmpTuples > n {
		n = prevTmpTuples
	}
	return ChoosePartitions(n, workers)
}

// DefaultAlpha is the build/probe cost ratio used when no calibration has
// run. Hash-table construction costs roughly twice a probe in this engine.
const DefaultAlpha = 2.0

// DiffChooser implements DSD for one recursive relation. α=Cb/Cp is fixed
// (offline calibration); µ=|Rδ|/|r| is carried over from the previous
// iteration, per the paper's heuristic that µ changes slowly between
// consecutive iterations.
type DiffChooser struct {
	Alpha  float64
	prevMu float64
	hasMu  bool
}

// NewDiffChooser returns a chooser with the given α (≤0 selects
// DefaultAlpha).
func NewDiffChooser(alpha float64) *DiffChooser {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	return &DiffChooser{Alpha: alpha}
}

// Choose picks the set-difference algorithm for ∆R ← Rδ − R given the
// current sizes (from ANALYZE). Decision regions from Appendix A:
//
//	β ≤ 1               → OPSD (R is the smaller table)
//	β ≥ 2α/(α−1)        → TPSD
//	1 < β < 2α/(α−1)    → sign of eq. (5) using the previous iteration's µ
func (c *DiffChooser) Choose(rTuples, rdeltaTuples int) exec.DiffAlgorithm {
	if rdeltaTuples == 0 || rTuples <= rdeltaTuples {
		return exec.OPSD
	}
	if c.Alpha <= 1 {
		// Building is no more expensive than probing; avoiding the build on R
		// can never pay off.
		return exec.OPSD
	}
	beta := float64(rTuples) / float64(rdeltaTuples)
	threshold := 2 * c.Alpha / (c.Alpha - 1)
	if beta >= threshold {
		return exec.TPSD
	}
	// Uncertain region: approximate µ with the previous iteration's value.
	mu := c.prevMu
	if !c.hasMu || mu <= 0 {
		mu = 1 // |r| ≤ |Rδ| ⇒ µ ≥ 1; the conservative lower bound
	}
	// Cost(OPSD) − Cost(TPSD) ∝ β(α−1) − (α + α/µ); positive favours TPSD.
	if beta*(c.Alpha-1)-(c.Alpha+c.Alpha/mu) > 0 {
		return exec.TPSD
	}
	return exec.OPSD
}

// Observe records the intersection size of the finished iteration so µ can
// seed the next choice. |r| = |Rδ| − |∆R| because ∆R = Rδ − (R ∩ Rδ).
func (c *DiffChooser) Observe(rdeltaTuples, interTuples int) {
	if interTuples <= 0 {
		c.hasMu = false
		return
	}
	c.prevMu = float64(rdeltaTuples) / float64(interTuples)
	c.hasMu = true
}

// CalibrateAlpha estimates α = Cb/Cp by the offline training procedure of
// eq. (7): for each configured pair size it generates a build table R and a
// probe table S with |R| ≤ |S|, measures build and probe cost over `runs`
// repetitions, and averages the per-tuple cost ratios.
func CalibrateAlpha(pool *exec.Pool, pairSizes [][2]int, runs int) float64 {
	if runs <= 0 {
		runs = 3
	}
	if len(pairSizes) == 0 {
		pairSizes = [][2]int{{1 << 12, 1 << 14}, {1 << 14, 1 << 16}, {1 << 15, 1 << 15}}
	}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	var count int
	for _, ps := range pairSizes {
		rn, sn := ps[0], ps[1]
		if rn > sn {
			rn, sn = sn, rn // ensure the hash table is built on the smaller R
		}
		build := synthetic(rng, "calib_r", rn)
		probe := synthetic(rng, "calib_s", sn)
		for j := 0; j < runs; j++ {
			bc, pc := exec.MeasureBuildProbe(pool, build, probe)
			if bc > 0 && pc > 0 {
				sum += bc / pc
				count++
			}
		}
	}
	if count == 0 {
		return DefaultAlpha
	}
	alpha := sum / float64(count)
	if alpha < 1.05 {
		// A degenerate measurement would disable TPSD entirely; clamp to a
		// mildly build-dominant ratio.
		alpha = 1.05
	}
	return alpha
}

func synthetic(rng *rand.Rand, name string, n int) *storage.Relation {
	r := storage.NewRelation(name, []string{"x", "y"})
	rows := make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		rows = append(rows, int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	r.AppendRows(rows)
	return r
}

// UseBatchKernels is the planner-facing layout choice of the batch
// execution path: whether a pass over rows tuples of the given arity should
// run the batch kernels against a columnar read layout. The arity bound is
// hard — the compact-key kernels pack at most four attributes — while the
// row bound is the cached-transpose break-even (exec.MinColumnarRows):
// below it a transpose costs more than the strided reads it replaces, so
// the batch path reads row-major and only the kernel batching itself
// applies.
func UseBatchKernels(arity, rows int) bool {
	return arity >= 1 && arity <= 4 && rows >= exec.MinColumnarRows
}
