package optimizer

import (
	"testing"
	"testing/quick"

	"recstep/internal/quickstep/exec"
)

func TestChooseBuildLeft(t *testing.T) {
	if !ChooseBuildLeft(10, 20) {
		t.Fatal("smaller left should build")
	}
	if ChooseBuildLeft(20, 10) {
		t.Fatal("larger left should not build")
	}
	if !ChooseBuildLeft(10, 10) {
		t.Fatal("ties go to the left")
	}
}

func TestDiffChooserRegions(t *testing.T) {
	c := NewDiffChooser(2) // α=2 → TPSD threshold 2α/(α−1) = 4
	// β ≤ 1: R not larger than Rδ → OPSD.
	if got := c.Choose(100, 100); got != exec.OPSD {
		t.Fatalf("β=1: %v, want OPSD", got)
	}
	if got := c.Choose(50, 100); got != exec.OPSD {
		t.Fatalf("β<1: %v, want OPSD", got)
	}
	// β ≥ 4 → TPSD.
	if got := c.Choose(400, 100); got != exec.TPSD {
		t.Fatalf("β=4: %v, want TPSD", got)
	}
	if got := c.Choose(4000, 100); got != exec.TPSD {
		t.Fatalf("β=40: %v, want TPSD", got)
	}
}

func TestDiffChooserUncertainRegionUsesMu(t *testing.T) {
	c := NewDiffChooser(2)
	// β = 3 ∈ (1, 4). With the default µ=1 lower bound:
	// β(α−1) − (α+α/µ) = 3 − 4 < 0 → OPSD.
	if got := c.Choose(300, 100); got != exec.OPSD {
		t.Fatalf("uncertain region with µ=1: %v, want OPSD", got)
	}
	// Large observed µ (tiny intersection): |Rδ|=100, |r|=1 → µ=100.
	// 3·1 − (2 + 0.02) > 0 → TPSD.
	c.Observe(100, 1)
	if got := c.Choose(300, 100); got != exec.TPSD {
		t.Fatalf("uncertain region with µ=100: %v, want TPSD", got)
	}
	// Zero intersection resets µ to the conservative bound.
	c.Observe(100, 0)
	if got := c.Choose(300, 100); got != exec.OPSD {
		t.Fatalf("after µ reset: %v, want OPSD", got)
	}
}

func TestDiffChooserAlphaEdgeCases(t *testing.T) {
	// α ≤ 1: building is cheap, never TPSD.
	c := NewDiffChooser(0.5)
	// NewDiffChooser replaces non-positive alpha only; 0.5 is kept.
	if got := c.Choose(1_000_000, 10); got != exec.OPSD {
		t.Fatalf("α≤1: %v, want OPSD", got)
	}
	// Non-positive alpha falls back to the default.
	d := NewDiffChooser(0)
	if d.Alpha != DefaultAlpha {
		t.Fatalf("Alpha = %f, want default %f", d.Alpha, DefaultAlpha)
	}
	// Empty delta: nothing to diff, OPSD trivially.
	if got := d.Choose(100, 0); got != exec.OPSD {
		t.Fatalf("empty delta: %v, want OPSD", got)
	}
}

// Property: for any sizes the chooser returns a valid algorithm and respects
// the closed-form regions.
func TestDiffChooserRegionProperty(t *testing.T) {
	c := NewDiffChooser(2)
	f := func(r, rd uint16) bool {
		rT, rdT := int(r)+1, int(rd)+1
		got := c.Choose(rT, rdT)
		beta := float64(rT) / float64(rdT)
		if beta <= 1 && got != exec.OPSD {
			return false
		}
		if beta >= 4 && got != exec.TPSD {
			return false
		}
		return got == exec.OPSD || got == exec.TPSD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateAlpha(t *testing.T) {
	pool := exec.NewPool(2)
	alpha := CalibrateAlpha(pool, [][2]int{{1 << 10, 1 << 12}}, 2)
	if alpha < 1.05 {
		t.Fatalf("alpha = %f, want ≥ 1.05 (clamped)", alpha)
	}
	if alpha > 100 {
		t.Fatalf("alpha = %f looks implausible", alpha)
	}
	// Defaults path.
	if a := CalibrateAlpha(pool, nil, 0); a < 1.05 {
		t.Fatalf("default calibration alpha = %f", a)
	}
}

func TestChoosePartitionsTiers(t *testing.T) {
	cases := []struct {
		tuples, workers, want int
	}{
		{100, 8, 1},       // too small to amortize the scatter
		{1 << 14, 8, 16},  // first tier boundary
		{1 << 17, 8, 16},  // mid tier
		{1 << 18, 8, 64},  // second tier boundary
		{1 << 21, 8, 64},  // big tier
		{1 << 22, 8, 256}, // largest tier boundary
		{1 << 30, 8, 256}, // capped fan-out
		{1 << 30, 1, 1},   // single worker never partitions
	}
	for _, c := range cases {
		if got := ChoosePartitions(c.tuples, c.workers); got != c.want {
			t.Fatalf("ChoosePartitions(%d, %d) = %d, want %d", c.tuples, c.workers, got, c.want)
		}
	}
}

func TestChooseJoinKeyCols(t *testing.T) {
	cases := []struct {
		name    string
		arity   int
		keysets [][]int
		want    []int
	}{
		{"consensus single col", 2, [][]int{{1}, {1}}, []int{1}},
		{"conflict falls back to whole tuple", 2, [][]int{{0}, {1}}, []int{0, 1}},
		{"no usage falls back", 3, nil, []int{0, 1, 2}},
		{"empty keysets ignored", 2, [][]int{{}, {1}}, []int{1}},
		{"multi-col consensus", 3, [][]int{{0, 2}, {0, 2}}, []int{0, 2}},
		{"order conflict falls back", 2, [][]int{{0, 1}, {1, 0}}, []int{0, 1}},
	}
	for _, c := range cases {
		got := ChooseJoinKeyCols(c.arity, c.keysets)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}
}
