package optimizer

import (
	"testing"
	"testing/quick"

	"recstep/internal/quickstep/exec"
)

func TestChooseBuildLeft(t *testing.T) {
	if !ChooseBuildLeft(10, 20) {
		t.Fatal("smaller left should build")
	}
	if ChooseBuildLeft(20, 10) {
		t.Fatal("larger left should not build")
	}
	if !ChooseBuildLeft(10, 10) {
		t.Fatal("ties go to the left")
	}
}

func TestDiffChooserRegions(t *testing.T) {
	c := NewDiffChooser(2) // α=2 → TPSD threshold 2α/(α−1) = 4
	// β ≤ 1: R not larger than Rδ → OPSD.
	if got := c.Choose(100, 100); got != exec.OPSD {
		t.Fatalf("β=1: %v, want OPSD", got)
	}
	if got := c.Choose(50, 100); got != exec.OPSD {
		t.Fatalf("β<1: %v, want OPSD", got)
	}
	// β ≥ 4 → TPSD.
	if got := c.Choose(400, 100); got != exec.TPSD {
		t.Fatalf("β=4: %v, want TPSD", got)
	}
	if got := c.Choose(4000, 100); got != exec.TPSD {
		t.Fatalf("β=40: %v, want TPSD", got)
	}
}

func TestDiffChooserUncertainRegionUsesMu(t *testing.T) {
	c := NewDiffChooser(2)
	// β = 3 ∈ (1, 4). With the default µ=1 lower bound:
	// β(α−1) − (α+α/µ) = 3 − 4 < 0 → OPSD.
	if got := c.Choose(300, 100); got != exec.OPSD {
		t.Fatalf("uncertain region with µ=1: %v, want OPSD", got)
	}
	// Large observed µ (tiny intersection): |Rδ|=100, |r|=1 → µ=100.
	// 3·1 − (2 + 0.02) > 0 → TPSD.
	c.Observe(100, 1)
	if got := c.Choose(300, 100); got != exec.TPSD {
		t.Fatalf("uncertain region with µ=100: %v, want TPSD", got)
	}
	// Zero intersection resets µ to the conservative bound.
	c.Observe(100, 0)
	if got := c.Choose(300, 100); got != exec.OPSD {
		t.Fatalf("after µ reset: %v, want OPSD", got)
	}
}

func TestDiffChooserAlphaEdgeCases(t *testing.T) {
	// α ≤ 1: building is cheap, never TPSD.
	c := NewDiffChooser(0.5)
	// NewDiffChooser replaces non-positive alpha only; 0.5 is kept.
	if got := c.Choose(1_000_000, 10); got != exec.OPSD {
		t.Fatalf("α≤1: %v, want OPSD", got)
	}
	// Non-positive alpha falls back to the default.
	d := NewDiffChooser(0)
	if d.Alpha != DefaultAlpha {
		t.Fatalf("Alpha = %f, want default %f", d.Alpha, DefaultAlpha)
	}
	// Empty delta: nothing to diff, OPSD trivially.
	if got := d.Choose(100, 0); got != exec.OPSD {
		t.Fatalf("empty delta: %v, want OPSD", got)
	}
}

// Property: for any sizes the chooser returns a valid algorithm and respects
// the closed-form regions.
func TestDiffChooserRegionProperty(t *testing.T) {
	c := NewDiffChooser(2)
	f := func(r, rd uint16) bool {
		rT, rdT := int(r)+1, int(rd)+1
		got := c.Choose(rT, rdT)
		beta := float64(rT) / float64(rdT)
		if beta <= 1 && got != exec.OPSD {
			return false
		}
		if beta >= 4 && got != exec.TPSD {
			return false
		}
		return got == exec.OPSD || got == exec.TPSD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateAlpha(t *testing.T) {
	pool := exec.NewPool(2)
	alpha := CalibrateAlpha(pool, [][2]int{{1 << 10, 1 << 12}}, 2)
	if alpha < 1.05 {
		t.Fatalf("alpha = %f, want ≥ 1.05 (clamped)", alpha)
	}
	if alpha > 100 {
		t.Fatalf("alpha = %f looks implausible", alpha)
	}
	// Defaults path.
	if a := CalibrateAlpha(pool, nil, 0); a < 1.05 {
		t.Fatalf("default calibration alpha = %f", a)
	}
}

func TestChoosePartitionsTiers(t *testing.T) {
	cases := []struct {
		tuples, workers, want int
	}{
		{100, 8, 1},       // too small to amortize the scatter
		{1 << 14, 8, 16},  // first tier boundary
		{1 << 17, 8, 16},  // mid tier
		{1 << 18, 8, 64},  // second tier boundary
		{1 << 21, 8, 64},  // big tier
		{1 << 22, 8, 256}, // largest tier boundary
		{1 << 30, 8, 256}, // capped fan-out
		{1 << 30, 1, 1},   // single worker never partitions
	}
	for _, c := range cases {
		if got := ChoosePartitions(c.tuples, c.workers); got != c.want {
			t.Fatalf("ChoosePartitions(%d, %d) = %d, want %d", c.tuples, c.workers, got, c.want)
		}
	}
}

func TestChooseJoinKeyCols(t *testing.T) {
	cases := []struct {
		name    string
		arity   int
		keysets [][]int
		want    []int
	}{
		{"consensus single col", 2, [][]int{{1}, {1}}, []int{1}},
		{"conflict falls back to whole tuple", 2, [][]int{{0}, {1}}, []int{0, 1}},
		{"no usage falls back", 3, nil, []int{0, 1, 2}},
		{"empty keysets ignored", 2, [][]int{{}, {1}}, []int{1}},
		{"multi-col consensus", 3, [][]int{{0, 2}, {0, 2}}, []int{0, 2}},
		{"order conflict falls back", 2, [][]int{{0, 1}, {1, 0}}, []int{0, 1}},
	}
	for _, c := range cases {
		got := ChooseJoinKeyCols(c.arity, c.keysets)
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func keysetsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestRankJoinKeysets(t *testing.T) {
	cases := []struct {
		name    string
		keysets [][]int
		want    [][]int
	}{
		{"empty", nil, nil},
		{"single", [][]int{{1}}, [][]int{{1}}},
		{"dedup keeps one", [][]int{{1}, {1}, {1}}, [][]int{{1}}},
		{"majority first", [][]int{{1}, {0}, {0}, {1}, {0}}, [][]int{{0}, {1}}},
		{"tie keeps first-seen order", [][]int{{1}, {0}}, [][]int{{1}, {0}}},
		{"empty keysets ignored", [][]int{{}, {0}, {}}, [][]int{{0}}},
		{"order-sensitive distinctness", [][]int{{0, 1}, {1, 0}, {0, 1}}, [][]int{{0, 1}, {1, 0}}},
		{"three ranked", [][]int{{2}, {0}, {0}, {1}, {1}, {0}}, [][]int{{0}, {1}, {2}}},
	}
	for _, c := range cases {
		if got := RankJoinKeysets(c.keysets); !keysetsEqual(got, c.want) {
			t.Fatalf("%s: RankJoinKeysets(%v) = %v, want %v", c.name, c.keysets, got, c.want)
		}
	}
}

func TestChooseCarryKeysets(t *testing.T) {
	cases := []struct {
		name          string
		arity         int
		keysets       [][]int
		wantPrimary   []int
		wantSecondary []int
	}{
		{"no usage falls back to whole tuple, no secondary", 3, nil, []int{0, 1, 2}, nil},
		{"consensus keeps single keyset, no secondary", 2, [][]int{{1}, {1}}, []int{1}, nil},
		// The CSPA valueFlow shape: column 0 serves four builds per
		// iteration, column 1 serves two — rank picks 0 as the delta route
		// and maintains 1 as the secondary carried view.
		{"conflict ranks by builds served", 2, [][]int{{0}, {0}, {1}, {0}, {1}, {0}}, []int{0}, []int{1}},
		{"tie breaks by first appearance", 2, [][]int{{1}, {0}}, []int{1}, []int{0}},
		// Third-ranked keysets stay unserved: only the top two carry.
		{"only top two carry", 2, [][]int{{0}, {0}, {1}, {1}, {0, 1}}, []int{0}, []int{1}},
	}
	for _, c := range cases {
		p, s := ChooseCarryKeysets(c.arity, c.keysets)
		got := [][]int{p}
		want := [][]int{c.wantPrimary}
		if s != nil {
			got = append(got, s)
		}
		if c.wantSecondary != nil {
			want = append(want, c.wantSecondary)
		}
		if !keysetsEqual(got, want) {
			t.Fatalf("%s: ChooseCarryKeysets(%d, %v) = (%v, %v), want (%v, %v)",
				c.name, c.arity, c.keysets, p, s, c.wantPrimary, c.wantSecondary)
		}
	}
}

func TestPreferCarriedBuild(t *testing.T) {
	cases := []struct {
		name                      string
		left, right               int
		leftCarried, rightCarried bool
		wantBuildLeft             bool
	}{
		{"no carried side: smaller builds", 10, 20, false, false, true},
		{"both carried: smaller builds", 10, 20, true, true, true},
		{"carried left, close sizes: left builds despite being larger", 30, 20, true, false, true},
		{"carried right, close sizes: right builds despite being larger", 20, 30, false, true, false},
		{"carried side too large: size rule wins", 50, 20, true, false, false},
		{"carried side at the 2x boundary still builds", 40, 20, true, false, true},
		{"carried side smaller anyway", 10, 20, true, false, true},
		{"zero cardinality disables the override", 0, 20, false, true, true},
	}
	for _, c := range cases {
		if got := PreferCarriedBuild(c.left, c.right, c.leftCarried, c.rightCarried); got != c.wantBuildLeft {
			t.Fatalf("%s: PreferCarriedBuild(%d, %d, %v, %v) = %v, want %v",
				c.name, c.left, c.right, c.leftCarried, c.rightCarried, got, c.wantBuildLeft)
		}
	}
}

func TestUseBatchKernels(t *testing.T) {
	cases := []struct {
		arity, rows int
		want        bool
	}{
		{1, exec.MinColumnarRows, true},
		{2, 1 << 20, true},
		{4, exec.MinColumnarRows, true},
		{5, 1 << 20, false},                  // beyond compact-key packing
		{2, exec.MinColumnarRows - 1, false}, // transpose below break-even
		{0, 1 << 20, false},
	}
	for _, c := range cases {
		if got := UseBatchKernels(c.arity, c.rows); got != c.want {
			t.Errorf("UseBatchKernels(%d, %d) = %v, want %v", c.arity, c.rows, got, c.want)
		}
	}
}
