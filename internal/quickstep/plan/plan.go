// Package plan defines the bound query representation produced by the SQL
// binder and executed by the database facade. A Query is a UNION ALL of
// branches; each branch is a left-deep join pipeline (in FROM order) with
// pushed-down single-table filters, residual predicates, optional anti-joins
// (from NOT EXISTS, i.e. stratified negation), optional grouped aggregation,
// and a final projection.
package plan

import (
	"recstep/internal/quickstep/exec"
	"recstep/internal/quickstep/expr"
)

// Query is one SELECT statement after binding: a UNION ALL of branches, all
// with the same output arity.
type Query struct {
	Branches []*Branch
	// OutCols names the output columns (taken from the first branch's
	// select-list aliases).
	OutCols []string
}

// Branch is one UNION ALL arm.
type Branch struct {
	// Tables lists the FROM items in declaration order; Offsets[i] is the
	// starting column of table i in the combined row.
	Tables  []string
	Offsets []int
	Arities []int

	// PreFilter holds single-table predicates pushed below the joins,
	// expressed over that table's own row (indices 0..arity-1).
	PreFilter map[int][]expr.Cmp

	// Joins holds len(Tables)-1 steps; step i joins the combined prefix of
	// tables 0..i with table i+1.
	Joins []JoinStep

	// AntiJoins are applied after all positive joins, in order.
	AntiJoins []AntiJoinStep

	// Projs is the select list over the final combined row. When Aggs is
	// non-empty, Projs is unused and GroupBy/Aggs/SelectOrder drive output.
	Projs []expr.Expr

	// GroupBy holds combined-row column indices; Aggs the aggregate specs.
	GroupBy []int
	Aggs    []exec.AggSpec
	// SelectOrder maps each select-list position to either a group column
	// (IsAgg=false, Index into GroupBy) or an aggregate (IsAgg=true, Index
	// into Aggs), so output column order follows the SQL text.
	SelectOrder []SelectOut
}

// SelectOut maps one select-list position to its source in an aggregate
// query: a GROUP BY column (IsAgg=false) or an aggregate (IsAgg=true).
type SelectOut struct {
	IsAgg bool
	Index int
}

// JoinStep describes one binary join of the running prefix with the next
// table.
type JoinStep struct {
	// LeftKeys index into the combined prefix row; RightKeys into the new
	// table's row. Empty keys produce a cross product.
	LeftKeys, RightKeys []int
	// Residual predicates over the (prefix ++ new table) combined row.
	Residual []expr.Cmp
}

// AntiJoinStep removes combined rows that have a match in Table (the bound
// form of NOT EXISTS).
type AntiJoinStep struct {
	Table string
	// OuterKeys index the combined row; InnerKeys the inner table's row.
	OuterKeys, InnerKeys []int
	// InnerPreFilter restricts the inner table before the existence check
	// (constant predicates inside the subquery).
	InnerPreFilter []expr.Cmp
}

// Statement is the bound form of any SQL statement.
type Statement interface{ stmt() }

// CreateTable creates an empty table.
type CreateTable struct {
	Name string
	Cols []string
}

// DropTable removes a table.
type DropTable struct {
	Name     string
	IfExists bool
}

// InsertValues appends literal tuples.
type InsertValues struct {
	Table  string
	Tuples [][]int32
}

// InsertSelect appends a query result (bag semantics — UNION ALL append, no
// implicit dedup, exactly as RecStep requires).
type InsertSelect struct {
	Table string
	Query *Query
}

// SelectStmt evaluates a query and returns its result relation.
type SelectStmt struct {
	Query *Query
}

func (CreateTable) stmt()  {}
func (DropTable) stmt()    {}
func (InsertValues) stmt() {}
func (InsertSelect) stmt() {}
func (SelectStmt) stmt()   {}
